// Package nimbus_bench wraps the experiment harness (internal/bench) as
// testing.B benchmarks — one per table and figure of the paper's
// evaluation — plus ablation benchmarks for the design choices DESIGN.md
// calls out. Run:
//
//	go test -bench=. -benchmem
//
// Each benchmark reports the experiment's headline quantity as a custom
// metric and logs the full regenerated table once (use -v to see it).
// These run at quick scale; cmd/nimbus-bench -scale paper runs the full
// configuration.
package nimbus_bench

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/app/lr"
	"nimbus/internal/bench"
	"nimbus/internal/cluster"
	"nimbus/internal/command"
	"nimbus/internal/controller"
	"nimbus/internal/core"
	"nimbus/internal/datastore"
	"nimbus/internal/driver"
	"nimbus/internal/flow"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
	"nimbus/internal/worker"
)

// runTable executes one experiment per benchmark run and logs its table.
var tableOnce sync.Map

func runTable(b *testing.B, name string, f func(bench.Scale) (*bench.Table, error)) {
	b.Helper()
	s := bench.Quick()
	s.Iterations = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := f(s)
		if err != nil {
			b.Fatalf("%s: %v", name, err)
		}
		if _, logged := tableOnce.LoadOrStore(name, true); !logged {
			b.Logf("\n%s", t.Format())
		}
	}
}

func BenchmarkFig1ControlPlaneBottleneck(b *testing.B) { runTable(b, "fig1", bench.Fig1) }
func BenchmarkTable1Install(b *testing.B)              { runTable(b, "table1", bench.Table1) }
func BenchmarkTable2Instantiate(b *testing.B)          { runTable(b, "table2", bench.Table2) }
func BenchmarkTable3Edits(b *testing.B)                { runTable(b, "table3", bench.Table3) }
func BenchmarkFig7Iteration(b *testing.B)              { runTable(b, "fig7", bench.Fig7) }
func BenchmarkFig8Throughput(b *testing.B)             { runTable(b, "fig8", bench.Fig8) }
func BenchmarkFig9Adaptation(b *testing.B)             { runTable(b, "fig9", bench.Fig9) }
func BenchmarkFig10Migration(b *testing.B)             { runTable(b, "fig10", bench.Fig10) }
func BenchmarkFig11WaterSim(b *testing.B)              { runTable(b, "fig11", bench.Fig11) }
func BenchmarkShuffle(b *testing.B)                    { runTable(b, "shuffle", bench.Shuffle) }

// ---------------------------------------------------------------------------
// Micro-benchmarks of the core template operations (no cluster, pure
// controller-side costs). These are the tightest loops behind Table 2.

// benchStages is the LR-shaped stage triple the template micro-benchmarks
// build (gradient, reduce, apply).
func benchStages(parts, fan int) []*proto.SubmitStage {
	return []*proto.SubmitStage{
		{Stage: 1, Fn: fn.FuncSim, Tasks: parts,
			Refs: []proto.VarRef{
				{Var: 1, Pattern: proto.OnePerTask},
				{Var: 2, Pattern: proto.Shared},
				{Var: 3, Write: true, Pattern: proto.OnePerTask},
			}},
		{Stage: 2, Fn: fn.FuncSim, Tasks: parts / fan,
			Refs: []proto.VarRef{
				{Var: 3, Pattern: proto.Grouped},
				{Var: 4, Write: true, Pattern: proto.OnePerTask},
			}},
		{Stage: 3, Fn: fn.FuncSim, Tasks: 1,
			Refs: []proto.VarRef{
				{Var: 4, Pattern: proto.Grouped},
				{Var: 2, Pattern: proto.Shared},
				{Var: 2, Write: true, Pattern: proto.Shared},
			}},
	}
}

func benchPlacement(workers, parts, fan int) *core.StaticPlacement {
	place := core.NewStaticPlacement(workers)
	place.Define(1, parts)
	place.Define(2, 1)
	place.Define(3, parts)
	place.Define(4, parts/fan)
	return place
}

func buildAssignment(b *testing.B, workers, parts, fan int) (*core.Assignment, *flow.Directory, map[ids.WorkerID]*flow.Ledger) {
	b.Helper()
	place := benchPlacement(workers, parts, fan)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	bld := core.NewBuilder(dir, place)
	for _, s := range benchStages(parts, fan) {
		if err := bld.AddStage(s); err != nil {
			b.Fatal(err)
		}
	}
	a := bld.Finalize(1)
	ledgers := make(map[ids.WorkerID]*flow.Ledger, workers)
	for w := 1; w <= workers; w++ {
		ledgers[ids.WorkerID(w)] = flow.NewLedger(ids.WorkerID(w))
	}
	for _, pc := range a.Preconds {
		if dir.Latest(pc.Logical) == 0 {
			dir.RecordWrite(pc.Logical, pc.Worker)
		} else if !dir.IsLatest(pc.Logical, pc.Worker) {
			dir.RecordCopy(pc.Logical, pc.Worker)
		}
	}
	return a, dir, ledgers
}

// BenchmarkTemplateBuild measures building an 8000-task template (the
// controller-template install cost of Table 1), serial against the
// sharded multi-core build the off-loop pipeline uses.
func BenchmarkTemplateBuild(b *testing.B) {
	run := func(b *testing.B, par int) {
		place := benchPlacement(100, 8000, 80)
		stages := benchStages(8000, 80)
		var alloc ids.ObjectIDs
		dir := flow.NewDirectory(&alloc)
		// Warm the instance table so iterations measure construction, not
		// first-touch allocation.
		if _, err := core.BuildAssignment(1, dir, place, stages, par); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildAssignment(1, dir, place, stages, par); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/8101, "ns/task")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkRetargetAll measures SetActive over a cluster with several
// installed templates — the Figure 9 revoke/restore slow path — with the
// assignment cache invalidated every iteration so each SetActive rebuilds
// every template. serial pins the controller's build pool to one
// goroutine; parallel uses the default GOMAXPROCS pool.
func BenchmarkRetargetAll(b *testing.B) {
	run := func(b *testing.B, par int) {
		c, err := cluster.Start(cluster.Options{
			Workers: 8, Slots: 8, BuildParallelism: par,
			Registry: fn.NewRegistry(),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer c.Stop()
		d, err := c.Driver("retarget-bench")
		if err != nil {
			b.Fatal(err)
		}
		defer d.Close()
		const tmpls, parts = 8, 512
		for i := 0; i < tmpls; i++ {
			name := fmt.Sprintf("blk%d", i)
			v := d.MustVar(name, parts)
			if err := d.BeginTemplate(name); err != nil {
				b.Fatal(err)
			}
			if err := d.Submit(fn.FuncNop, parts, nil, v.Write()); err != nil {
				b.Fatal(err)
			}
			if err := d.EndTemplate(name); err != nil {
				b.Fatal(err)
			}
		}
		if err := d.Barrier(); err != nil {
			b.Fatal(err)
		}
		var all []ids.WorkerID
		c.Controller.Do(func() { all = c.Controller.ActiveWorkers() })
		sets := [][]ids.WorkerID{all, all[:len(all)/2]}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var rerr error
			set := sets[i%2]
			c.Controller.Do(func() {
				c.Controller.InvalidateAssignmentCache()
				rerr = c.Controller.SetActive(set)
			})
			if rerr != nil {
				b.Fatal(rerr)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(tmpls*parts), "ns/task")
	}
	b.Run("serial", func(b *testing.B) { run(b, 1) })
	b.Run("parallel", func(b *testing.B) { run(b, 0) })
}

// BenchmarkTemplateValidate measures full precondition validation.
func BenchmarkTemplateValidate(b *testing.B) {
	a, dir, _ := buildAssignment(b, 100, 8000, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := a.Validate(dir); len(v) != 0 {
			b.Fatalf("violations: %d", len(v))
		}
	}
}

// BenchmarkTemplateApplyEffects measures the controller-side instantiation
// bookkeeping (Table 2's 0.2µs/task path).
func BenchmarkTemplateApplyEffects(b *testing.B) {
	a, dir, ledgers := buildAssignment(b, 100, 8000, 80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.ApplyEffects(ids.CommandID(uint64(i+1)*100000), dir, ledgers)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/8000, "ns/task")
}

// BenchmarkWorkerMaterialize measures the worker-side instantiation cost:
// translating cached entries to concrete commands (Table 2's 1.7µs/task).
func BenchmarkWorkerMaterialize(b *testing.B) {
	a, _, _ := buildAssignment(b, 100, 8000, 80)
	idxs := a.PerWorker[1]
	entries := make([]*command.TemplateEntry, len(idxs))
	for i, idx := range idxs {
		entries[i] = &a.Entries[idx]
	}
	out := make([]command.Command, len(entries))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		base := ids.CommandID(uint64(i+1) * 100000)
		for j, e := range entries {
			e.Materialize(base, nil, &out[j])
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(entries)), "ns/task")
}

// BenchmarkRebuildDiff measures edit generation (rebuild + provenance
// diff) for a single-partition migration on an 8000-task template.
func BenchmarkRebuildDiff(b *testing.B) {
	place := core.NewStaticPlacement(100)
	place.Define(1, 8000)
	place.Define(2, 1)
	place.Define(3, 8000)
	place.Define(4, 100)
	stages := []*proto.SubmitStage{
		{Stage: 1, Fn: fn.FuncSim, Tasks: 8000,
			Refs: []proto.VarRef{
				{Var: 1, Pattern: proto.OnePerTask},
				{Var: 2, Pattern: proto.Shared},
				{Var: 3, Write: true, Pattern: proto.OnePerTask},
			}},
		{Stage: 2, Fn: fn.FuncSim, Tasks: 100,
			Refs: []proto.VarRef{
				{Var: 3, Pattern: proto.Grouped},
				{Var: 4, Write: true, Pattern: proto.OnePerTask},
			}},
	}
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	tmpl := &core.Template{ID: 1, Name: "b", Stages: stages}
	bld := core.NewBuilder(dir, place)
	for _, s := range stages {
		if err := bld.AddStage(s); err != nil {
			b.Fatal(err)
		}
	}
	prev := bld.Finalize(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Move the partition to a worker other than its current owner.
		place.Reassign(1, i%8000, ids.WorkerID(1+(i+1)%100))
		place.Reassign(3, i%8000, ids.WorkerID(1+(i+1)%100))
		next, err := tmpl.Rebuild(1, dir, place, prev)
		if err != nil {
			b.Fatal(err)
		}
		d := core.Diff(prev, next)
		if d.Changed == 0 {
			b.Fatal("no edits generated")
		}
		prev = next
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §6)

// BenchmarkAblationNoAutoValidate quantifies what auto-validation saves:
// per-instantiation controller cost with and without skipping validation.
func BenchmarkAblationNoAutoValidate(b *testing.B) {
	a, dir, ledgers := buildAssignment(b, 100, 8000, 80)
	b.Run("auto", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Tight loop: effects only (validation skipped).
			a.ApplyEffects(ids.CommandID(uint64(i+1)*100000), dir, ledgers)
		}
	})
	b.Run("validate-every-time", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if v := a.Validate(dir); len(v) != 0 {
				b.Fatal("unexpected violations")
			}
			a.ApplyEffects(ids.CommandID(uint64(i+1)*100000), dir, ledgers)
		}
	})
}

// BenchmarkAblationIDArray compares the base+index command-ID encoding
// against materializing explicit per-task ID arrays (what a naive
// template would ship per instantiation).
func BenchmarkAblationIDArray(b *testing.B) {
	a, _, _ := buildAssignment(b, 100, 8000, 80)
	n := a.MaxIndex()
	b.Run("base-plus-index", func(b *testing.B) {
		var sink ids.CommandID
		for i := 0; i < b.N; i++ {
			base := ids.CommandID(uint64(i) * 100000)
			for idx := 0; idx < n; idx++ {
				sink = base + ids.CommandID(idx)
			}
		}
		_ = sink
	})
	b.Run("explicit-array", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			arr := make([]ids.CommandID, n)
			base := ids.CommandID(uint64(i) * 100000)
			for idx := range arr {
				arr[idx] = base + ids.CommandID(idx)
			}
			// Shipping the array would also serialize ~10 bytes/task.
		}
	})
}

// BenchmarkAblationPatchCache measures patch construction vs cached patch
// lookup for a broadcast-shaped violation set.
func BenchmarkAblationPatchCache(b *testing.B) {
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	const l ids.LogicalID = 1
	dir.Instance(l, 1)
	dir.RecordWrite(l, 1)
	var viols []core.Violation
	for w := ids.WorkerID(2); w <= 100; w++ {
		viols = append(viols, core.Violation{
			Precond: core.Precond{Logical: l, Worker: w, Object: dir.Instance(l, w)},
			Holder:  1,
		})
	}
	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := core.BuildPatch(ids.PatchID(i+1), dir, viols); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached-lookup", func(b *testing.B) {
		cache := core.NewPatchCache()
		p, _ := core.BuildPatch(1, dir, viols)
		tr := core.Transition{Prev: 1, Next: 2}
		cache.Store(tr, p)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if cache.Lookup(tr, dir, viols) == nil {
				b.Fatal("cache miss")
			}
		}
	})
}

// BenchmarkEndToEndIteration is the headline number: steady-state
// templated iteration time on a quick-scale cluster, reported as
// tasks/second through the control plane.
func BenchmarkEndToEndIteration(b *testing.B) {
	reg := fn.NewRegistry()
	lr.Register(reg)
	c, err := cluster.Start(cluster.Options{
		Workers: 8, Slots: 8, Registry: reg, Mode: controller.ModeNimbus,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	d, err := c.Driver("bench")
	if err != nil {
		b.Fatal(err)
	}
	j, err := lr.Setup(d, lr.Config{
		Partitions: 160, ReduceFan: 8, Simulated: true,
		TaskDuration: 500 * time.Microsecond, ReduceDuration: 100 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := j.InstallTemplates(); err != nil {
		b.Fatal(err)
	}
	if err := j.Optimize(); err != nil {
		b.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Optimize(); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	tasksPerIter := 160 + 20 + 1
	b.ReportMetric(float64(tasksPerIter)*float64(b.N)/b.Elapsed().Seconds(), "tasks/s")
}

// ---------------------------------------------------------------------------
// Control-plane fast path (DESIGN.md §"Control-plane fast path"). The
// companion smoke tests (internal/proto TestMarshalSteadyStateZeroAlloc,
// internal/cluster TestSteadyStateFanoutOneFramePerWorker) assert the two
// properties these benchmarks measure; BenchmarkWatermark lives next to the
// tracker in internal/controller.

// BenchmarkMarshalSteadyState measures re-encoding the steady-state
// instantiation message into a pooled buffer — the controller's per-worker
// marshal cost during templated iteration. Run with -benchmem: the point of
// the pooled path is 0 allocs/op.
func BenchmarkMarshalSteadyState(b *testing.B) {
	msg := &proto.InstantiateTemplate{
		Template: 7, Instance: 941, Base: 1 << 40, DoneWatermark: 1<<40 - 8101,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := proto.GetBuf()
		buf = proto.MarshalAppend(buf, msg)
		proto.PutBuf(buf)
	}
}

// BenchmarkInstantiateFanout measures a steady-state InstantiateBlock
// fan-out over a Mem cluster end to end, reporting the frames each
// instantiation puts on the wire (one per participating worker). The
// 4job variant runs four concurrent LR jobs on the same cluster,
// round-robining instantiations across them: multi-tenancy must not
// change the per-instantiation frame count (the job rides in each frame
// as one varint).
func BenchmarkInstantiateFanout(b *testing.B) {
	for _, jobs := range []int{1, 4} {
		b.Run(fmt.Sprintf("%djob", jobs), func(b *testing.B) {
			const workers = 16
			reg := fn.NewRegistry()
			lr.Register(reg)
			c, err := cluster.Start(cluster.Options{Workers: workers, Slots: 8, Registry: reg})
			if err != nil {
				b.Fatal(err)
			}
			defer c.Stop()
			type tenant struct {
				d *driver.Driver
				j *lr.Job
			}
			ts := make([]tenant, jobs)
			for k := range ts {
				d, err := c.Driver(fmt.Sprintf("bench-%d", k))
				if err != nil {
					b.Fatal(err)
				}
				j, err := lr.Setup(d, lr.Config{
					Partitions: 64, ReduceFan: 4, Simulated: true,
					TaskDuration: 50 * time.Microsecond, ReduceDuration: 20 * time.Microsecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := j.InstallTemplates(); err != nil {
					b.Fatal(err)
				}
				for i := 0; i < 2; i++ { // warm-up: validation + patching
					if err := j.Optimize(); err != nil {
						b.Fatal(err)
					}
				}
				if err := d.Barrier(); err != nil {
					b.Fatal(err)
				}
				ts[k] = tenant{d: d, j: j}
			}
			frames0 := c.Controller.Stats.FramesToWorkers.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ts[i%jobs].j.Optimize(); err != nil {
					b.Fatal(err)
				}
			}
			for _, t := range ts {
				if err := t.d.Barrier(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			frames := c.Controller.Stats.FramesToWorkers.Load() - frames0
			b.ReportMetric(float64(frames)/float64(b.N), "frames/op")
		})
	}
}

// ---------------------------------------------------------------------------
// Worker instantiation fast path (DESIGN.md §"Worker instantiation fast
// path"). The companion ceiling test (internal/worker
// TestInstantiateAllocCeiling) guards the allocation bound these
// benchmarks measure.

// workerTemplate builds an n-entry inline (Destroy) template with a
// 1-fan-out dependency shape; Destroy of absent objects is a no-op, so
// the benchmark isolates scheduling cost from execution cost.
func workerTemplate(id ids.TemplateID, n int) *proto.InstallTemplate {
	entries := make([]command.TemplateEntry, n)
	for i := range entries {
		entries[i] = command.TemplateEntry{
			Index: int32(i), Kind: command.Destroy,
			Writes:    []ids.ObjectID{ids.ObjectID(i + 1)},
			ParamSlot: command.NoParamSlot,
		}
		if i > 0 {
			entries[i].BeforeIdx = []int32{0}
		}
	}
	return &proto.InstallTemplate{Template: id, Name: "bench", Entries: entries}
}

// BenchmarkWorkerInstantiate measures the worker-side steady-state
// instantiation path: install once, instantiate N times. "compiled" is
// the live path (compiled template → pooled arena → inline completion →
// BlockDone); "mapbased" replays the pre-compilation cost model — map-
// ordered Materialize into fresh Commands plus the per-command
// pending/done/waiters map traffic the old scheduler paid — as the
// baseline the ≥5x allocs/op criterion is judged against. "edited" runs
// the compiled path with a persistent edit on every instantiation
// (recompile included).
func BenchmarkWorkerInstantiate(b *testing.B) {
	for _, n := range []int{64, 1024} {
		b.Run(fmt.Sprintf("compiled-%d", n), func(b *testing.B) {
			bl := worker.NewBenchLoop(1)
			defer bl.Close()
			bl.Apply(workerTemplate(1, n))
			span := uint64(n)
			run := func(i uint64) {
				bl.Apply(&proto.InstantiateTemplate{
					Template: 1, Instance: i + 1, Base: ids.CommandID(1 + i*span),
					DoneWatermark: ids.CommandID(1 + i*span),
				})
			}
			for i := uint64(0); i < 8; i++ {
				run(i)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run(uint64(i) + 8)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/cmd")
		})
		b.Run(fmt.Sprintf("mapbased-%d", n), func(b *testing.B) {
			install := workerTemplate(1, n)
			entries := make(map[int32]*command.TemplateEntry, n)
			for i := range install.Entries {
				e := install.Entries[i]
				entries[e.Index] = &e
			}
			type oldPcmd struct {
				cmd     *command.Command
				seq     uint64
				missing int
				unit    *struct{}
				epoch   uint64
			}
			pending := make(map[ids.CommandID]*oldPcmd)
			done := make(map[ids.CommandID]struct{})
			waiters := make(map[ids.CommandID][]*oldPcmd)
			doneLow := ids.CommandID(0)
			span := uint64(n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				base := ids.CommandID(1 + uint64(i)*span)
				// Prune below the watermark, as the old instantiate did.
				doneLow = base
				for id := range done {
					if id < doneLow {
						delete(done, id)
					}
				}
				cmds := make([]*command.Command, 0, len(entries))
				for _, e := range entries {
					c := &command.Command{}
					e.Materialize(base, nil, c)
					cmds = append(cmds, c)
				}
				for _, c := range cmds {
					pc := &oldPcmd{cmd: c, seq: uint64(i)}
					pending[c.ID] = pc
					for _, dep := range c.Before {
						if _, ok := done[dep]; ok || dep < doneLow {
							continue
						}
						waiters[dep] = append(waiters[dep], pc)
						pc.missing++
					}
				}
				for _, c := range cmds {
					delete(pending, c.ID)
					done[c.ID] = struct{}{}
					if ws := waiters[c.ID]; len(ws) > 0 {
						delete(waiters, c.ID)
						for _, wpc := range ws {
							wpc.missing--
						}
					}
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/cmd")
		})
	}
	// compiled-4job: the multi-tenant steady state — four jobs installed
	// the same-shaped (and same-ID) template in their own namespaces, and
	// instantiations round-robin across them. Per-job cost must match the
	// single-job compiled path: the namespace lookup is one map probe and
	// the arena pool is shared, so allocs/op and ns/cmd hold the
	// single-job ceiling.
	b.Run("compiled-4job-1024", func(b *testing.B) {
		bl := worker.NewBenchLoop(1)
		defer bl.Close()
		const n = 1024
		const jobs = 4
		for j := 1; j <= jobs; j++ {
			msg := workerTemplate(1, n)
			msg.Job = ids.JobID(j)
			bl.Apply(msg)
		}
		span := uint64(n)
		insts := make([]uint64, jobs+1)
		run := func(k int) {
			job := ids.JobID(k%jobs + 1)
			insts[job]++
			i := insts[job]
			bl.Apply(&proto.InstantiateTemplate{
				Job: job, Template: 1, Instance: i, Base: ids.CommandID(1 + i*span),
				DoneWatermark: ids.CommandID(1 + i*span),
			})
		}
		for k := 0; k < 8*jobs; k++ {
			run(k)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for k := 0; k < b.N; k++ {
			run(k)
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n), "ns/cmd")
	})
	b.Run("edited-1024", func(b *testing.B) {
		bl := worker.NewBenchLoop(1)
		defer bl.Close()
		const n = 1024
		bl.Apply(workerTemplate(1, n))
		span := uint64(n + b.N + 8)
		b.ReportAllocs()
		b.ResetTimer()
		// Each instantiation carries one persistent edit (remove last
		// round's added entry, add a fresh one), so the template stays
		// n/n+1 entries and every iteration pays one recompile.
		for i := 0; i < b.N; i++ {
			idx := int32(n + i)
			ed := command.Edit{
				Add: []command.TemplateEntry{{
					Index: idx, Kind: command.Destroy,
					Writes:    []ids.ObjectID{ids.ObjectID(idx)},
					BeforeIdx: []int32{0},
					ParamSlot: command.NoParamSlot,
				}},
			}
			if i > 0 {
				ed.Remove = []int32{idx - 1}
			}
			bl.Apply(&proto.InstantiateTemplate{
				Template: 1, Instance: uint64(i + 1), Base: ids.CommandID(1 + uint64(i)*span),
				DoneWatermark: ids.CommandID(1 + uint64(i)*span),
				Edits:         []command.Edit{ed},
			})
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(n+1), "ns/cmd")
	})
}

// BenchmarkDriverLoop measures the three ways a driver can run an
// N-iteration data-dependent loop over one template (driver API v2,
// DESIGN.md §"Driver API v2"):
//
//	sync      — v1 pattern: Instantiate + blocking Get per iteration
//	            (one driver↔controller round trip each);
//	pipelined — Instantiate + GetAsync per iteration, futures awaited at
//	            the end (requests overlap; replies resolve out of order);
//	predicate — one InstantiateWhile: the controller evaluates the loop
//	            predicate after each iteration and replies once.
//
// The probe variable is Put once and never written by the template, so
// the predicate always holds and every variant runs exactly loopIters
// iterations. drvframes/op counts frames the driver put on the wire per
// loop: 2N sync/pipelined, 1 predicate.
func BenchmarkDriverLoop(b *testing.B) {
	const loopIters = 8
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: 4, Slots: 4, Registry: reg})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Stop()
	ct := transport.NewCounting(c.Transport)
	d, err := driver.Connect(ct, cluster.ControlAddr, "loop-bench")
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	j, err := kmeans.Setup(d, kmeans.Config{
		Partitions: 8, Simulated: true,
		TaskDuration: 20 * time.Microsecond, ReduceDuration: 10 * time.Microsecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	probe := d.MustVar("loop-probe", 1)
	if err := d.PutFloats(probe, 0, []float64{1}); err != nil {
		b.Fatal(err)
	}
	if err := j.InstallTemplate(); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2; i++ { // warm-up: validation + patching
		if err := j.Iterate(); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Barrier(); err != nil {
		b.Fatal(err)
	}

	run := func(b *testing.B, loop func() error) {
		b.Helper()
		frames0 := ct.Sends()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := loop(); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(ct.Sends()-frames0)/float64(b.N), "drvframes/op")
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/loopIters, "ns/iter")
	}
	b.Run("sync", func(b *testing.B) {
		run(b, func() error {
			for k := 0; k < loopIters; k++ {
				if err := j.Iterate(); err != nil {
					return err
				}
				if _, err := d.GetFloats(probe, 0); err != nil {
					return err
				}
			}
			return nil
		})
	})
	b.Run("pipelined", func(b *testing.B) {
		futs := make([]*driver.Future[[]float64], 0, loopIters)
		run(b, func() error {
			futs = futs[:0]
			for k := 0; k < loopIters; k++ {
				if err := j.Iterate(); err != nil {
					return err
				}
				futs = append(futs, d.GetFloatsAsync(probe, 0))
			}
			for _, f := range futs {
				if _, err := f.Wait(); err != nil {
					return err
				}
			}
			return nil
		})
	})
	b.Run("predicate", func(b *testing.B) {
		run(b, func() error {
			res, err := d.InstantiateWhile(kmeans.IterateBlock, probe.AtLeast(0, 0.5), loopIters)
			if err != nil {
				return err
			}
			if res.Iters != loopIters {
				return fmt.Errorf("predicate loop ran %d iterations, want %d", res.Iters, loopIters)
			}
			return nil
		})
	})
}

// BenchmarkStoreParallelGet measures executor-side object resolution with
// parallel readers against the sharded store and the single-lock baseline
// (NewSharded(1) is the pre-sharding layout).
func BenchmarkStoreParallelGet(b *testing.B) {
	const objects = 4096
	for _, cfg := range []struct {
		name   string
		shards int
	}{{"single-lock", 1}, {"sharded", datastore.DefaultShards}} {
		b.Run(cfg.name, func(b *testing.B) {
			s := datastore.NewSharded(cfg.shards)
			for i := 1; i <= objects; i++ {
				s.Install(ids.ObjectID(i), ids.LogicalID(i), 1, []byte{byte(i)})
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if s.Get(ids.ObjectID(i&(objects-1)+1)) == nil {
						b.Fail()
					}
					i++
				}
			})
		})
	}
}

// BenchmarkProtoCodec measures the wire codec on the hot instantiation
// message.
func BenchmarkProtoCodec(b *testing.B) {
	msg := &proto.InstantiateTemplate{
		Template: 7, Instance: 9, Base: 123456,
		ParamArray:    nil,
		DoneWatermark: 123000,
	}
	b.Run("marshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = proto.Marshal(msg)
		}
	})
	raw := proto.Marshal(msg)
	b.Run("unmarshal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := proto.Unmarshal(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}
