package driver

// This file implements the driver-side half of the gateway front door:
// session multiplexing over a small pool of shared transport connections.
//
// A Mux is itself a transport.Transport whose Dial returns a lightweight
// virtual connection (vconn) instead of a dedicated wire. Each vconn is
// one driver session; its frames ride a shared gateway connection inside
// MuxData envelopes, keyed by a session ID the mux allocates. The
// controller's front door (internal/controller/frontdoor.go) demuxes the
// envelopes back into per-job events, so the protocol inside a session is
// byte-identical to a dedicated connection — RegisterDriver, the op
// stream, JobEnd — and driver.Connect* work unchanged on top of a Mux.
//
// Two goroutines per shared connection do the heavy lifting:
//
//   - the writer drains a queue of envelopes accumulated by every vconn
//     on the connection and coalesces them into one batch frame per
//     wakeup, so 10k chatty sessions cost amortized one transport send
//     per flush rather than one per message;
//   - the reader unpacks inbound batch frames and routes each envelope
//     to its vconn's inbox, an unbounded FIFO mirroring the in-memory
//     transport's queue semantics.
//
// Failure semantics: a shared connection dying fails exactly the sessions
// riding it — each vconn's Recv returns the error, and the driver's
// normal reattach path re-dials through the Mux, landing the session on a
// surviving (or fresh) shared connection. Sessions on other connections
// never observe a neighbor connection's faults; the isolation tests pin
// this invariant under chaos wire faults.

import (
	"errors"
	"fmt"
	"sync"

	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// DefaultMaxConns is the shared-connection pool bound when MuxOpts leaves
// it zero: the front-door benchmark drives 10k sessions over this many
// wires.
const DefaultMaxConns = 16

// Mux multiplexes many driver sessions over at most maxConns shared
// connections to a controller gateway. It implements transport.Transport:
// pass it to Connect/ConnectOpts wherever a transport is expected. Dial
// opens a new session; Listen is not supported.
//
// A Mux is safe for concurrent use; the Drivers opened through it remain
// single-goroutine clients individually.
type Mux struct {
	tr       transport.Transport
	maxConns int

	mu       sync.Mutex
	conns    []*muxConn
	nextSess uint64
	closed   bool
}

// NewMux returns a session mux dialing through tr, bounded to maxConns
// shared connections (<= 0 means DefaultMaxConns).
func NewMux(tr transport.Transport, maxConns int) *Mux {
	if maxConns <= 0 {
		maxConns = DefaultMaxConns
	}
	return &Mux{tr: tr, maxConns: maxConns}
}

// Dial opens a new virtual session channel to the gateway at addr. The
// first maxConns sessions each open a shared connection; later sessions
// ride the least-loaded live one.
func (m *Mux) Dial(addr string) (transport.Conn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, transport.ErrClosed
	}
	// Prune connections that died since the last Dial so their slots are
	// reusable and load counts ignore dead weight.
	live := m.conns[:0]
	for _, mc := range m.conns {
		if !mc.isDead() {
			live = append(live, mc)
		}
	}
	m.conns = live
	var mc *muxConn
	if len(m.conns) < m.maxConns {
		var err error
		if mc, err = m.dialConn(addr); err != nil {
			return nil, err
		}
		m.conns = append(m.conns, mc)
	} else {
		for _, c := range m.conns {
			if mc == nil || c.load() < mc.load() {
				mc = c
			}
		}
		if mc == nil {
			return nil, fmt.Errorf("driver: mux has no live gateway connections")
		}
	}
	m.nextSess++
	return mc.open(m.nextSess)
}

// Listen is unsupported: a Mux is a client-side front door only.
func (m *Mux) Listen(string) (transport.Listener, error) {
	return nil, fmt.Errorf("driver: mux does not support Listen")
}

// Conns reports the number of live shared connections in the pool.
func (m *Mux) Conns() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, mc := range m.conns {
		if !mc.isDead() {
			n++
		}
	}
	return n
}

// Sessions reports the number of live sessions across all shared
// connections.
func (m *Mux) Sessions() int {
	m.mu.Lock()
	conns := append([]*muxConn(nil), m.conns...)
	m.mu.Unlock()
	n := 0
	for _, mc := range conns {
		n += mc.load()
	}
	return n
}

// Close fails every session and closes every shared connection.
func (m *Mux) Close() error {
	m.mu.Lock()
	m.closed = true
	conns := m.conns
	m.conns = nil
	m.mu.Unlock()
	for _, mc := range conns {
		mc.fail(transport.ErrClosed)
	}
	return nil
}

// dialConn opens one shared gateway connection: dial, announce with
// GatewayHello (so the controller's handshake routes the connection to
// the front door instead of expecting a registration), start the pumps.
func (m *Mux) dialConn(addr string) (*muxConn, error) {
	conn, err := m.tr.Dial(addr)
	if err != nil {
		return nil, err
	}
	buf := proto.MarshalAppend(proto.GetBuf(), &proto.GatewayHello{})
	owned, err := transport.SendOwned(conn, buf)
	if !owned {
		proto.PutBuf(buf)
	}
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("driver: gateway hello: %w", err)
	}
	mc := &muxConn{conn: conn, sessions: make(map[uint64]*vconn)}
	mc.cond = sync.NewCond(&mc.mu)
	go mc.readLoop()
	go mc.writeLoop()
	return mc, nil
}

// muxConn is one shared gateway connection: a session table, an outbound
// envelope queue drained by the coalescing writer, and the demuxing
// reader.
type muxConn struct {
	conn transport.Conn

	mu       sync.Mutex
	cond     *sync.Cond
	sessions map[uint64]*vconn
	// outq accumulates outbound messages — MuxData envelopes whose Raw
	// buffers this muxConn owns, plus top-level SessionClose notices — in
	// send order. The writer drains it whole into one batch frame.
	outq []proto.Msg
	dead error

	// sendSeq/recvSeq are the per-direction envelope counters (see
	// proto.MuxData.Seq). sendSeq is owned by the writer, recvSeq by the
	// reader; neither needs mc.mu.
	sendSeq uint64
	recvSeq uint64
}

func (mc *muxConn) isDead() bool {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.dead != nil
}

func (mc *muxConn) load() int {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return len(mc.sessions)
}

// open registers a new session on this connection.
func (mc *muxConn) open(sess uint64) (*vconn, error) {
	vc := &vconn{mc: mc, sess: sess}
	vc.cond = sync.NewCond(&vc.mu)
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if mc.dead != nil {
		return nil, mc.dead
	}
	mc.sessions[sess] = vc
	return vc, nil
}

// enqueue appends one outbound message and wakes the writer. It takes
// ownership of any MuxData Raw buffer; on failure the buffer is released
// here.
func (mc *muxConn) enqueue(m proto.Msg) error {
	mc.mu.Lock()
	if mc.dead != nil {
		err := mc.dead
		mc.mu.Unlock()
		if md, ok := m.(*proto.MuxData); ok {
			proto.PutBuf(md.Raw)
		}
		return err
	}
	mc.outq = append(mc.outq, m)
	mc.cond.Signal()
	mc.mu.Unlock()
	return nil
}

// writeLoop coalesces queued envelopes into one batch frame per wakeup.
// A session sending a burst while another flush is in flight finds all
// its messages folded into the next frame — the per-session analogue of
// the controller's per-worker send coalescing.
func (mc *muxConn) writeLoop() {
	for {
		mc.mu.Lock()
		for len(mc.outq) == 0 && mc.dead == nil {
			mc.cond.Wait()
		}
		if mc.dead != nil {
			mc.mu.Unlock()
			return
		}
		batch := mc.outq
		mc.outq = nil
		mc.mu.Unlock()
		for _, m := range batch {
			if md, ok := m.(*proto.MuxData); ok {
				mc.sendSeq++
				md.Seq = mc.sendSeq
			}
		}
		buf := proto.AppendBatch(proto.GetBuf(), batch)
		for _, m := range batch {
			if md, ok := m.(*proto.MuxData); ok {
				proto.PutBuf(md.Raw)
			}
		}
		owned, err := transport.SendOwned(mc.conn, buf)
		if !owned {
			proto.PutBuf(buf)
		}
		if err != nil {
			mc.fail(err)
			return
		}
	}
}

// readLoop demuxes inbound frames: each MuxData envelope lands in its
// session's inbox; a SessionClose retires the session (the controller
// ended its job). Anything top-level and unaddressed — a controller
// Shutdown racing the gateway handshake, a corrupt frame — fails the
// whole connection, which fails exactly the sessions riding it.
func (mc *muxConn) readLoop() {
	for {
		raw, err := mc.conn.Recv()
		if err != nil {
			mc.fail(fmt.Errorf("driver: gateway connection lost: %w", err))
			return
		}
		err = proto.ForEachMsg(raw, func(m proto.Msg) error {
			switch m := m.(type) {
			case *proto.MuxData:
				mc.recvSeq++
				if m.Seq != mc.recvSeq {
					return fmt.Errorf("driver: gateway envelope seq %d, want %d: frame lost or reordered on shared connection", m.Seq, mc.recvSeq)
				}
				mc.mu.Lock()
				vc := mc.sessions[m.Session]
				mc.mu.Unlock()
				if vc != nil {
					vc.push(m.Raw)
				}
			case *proto.SessionClose:
				mc.mu.Lock()
				vc := mc.sessions[m.Session]
				delete(mc.sessions, m.Session)
				mc.mu.Unlock()
				if vc != nil {
					vc.closeWith(transport.ErrClosed)
				}
			case *proto.Shutdown:
				return errors.New("driver: controller shut down")
			default:
				return fmt.Errorf("driver: unexpected top-level %s on gateway connection", m.Kind())
			}
			return nil
		})
		proto.PutBuf(raw)
		if err != nil {
			mc.fail(err)
			return
		}
	}
}

// fail marks the connection dead, closes the wire, and fails every
// session riding it with err. Idempotent.
func (mc *muxConn) fail(err error) {
	mc.mu.Lock()
	if mc.dead != nil {
		mc.mu.Unlock()
		return
	}
	mc.dead = err
	sessions := mc.sessions
	mc.sessions = make(map[uint64]*vconn)
	mc.cond.Broadcast()
	mc.mu.Unlock()
	mc.conn.Close()
	for _, vc := range sessions {
		vc.closeWith(err)
	}
}

// vconn is one session's virtual channel over a shared connection. It
// implements transport.Conn and transport.OwnedSender, so the Driver's
// pooled-buffer send path works unchanged.
type vconn struct {
	mc   *muxConn
	sess uint64

	mu   sync.Mutex
	cond *sync.Cond
	// inbox holds delivered frames not yet consumed; head indexes the
	// next one so consumption is O(1) without shifting.
	inbox [][]byte
	head  int
	err   error
	// closed is set by the local Close; inbound frames for a locally
	// closed session are dropped.
	closed bool
}

// Send enqueues one frame, copying b (the Conn contract: b is not
// retained).
func (vc *vconn) Send(b []byte) error {
	return vc.SendOwned(append(proto.GetBuf(), b...))
}

// SendOwned enqueues one frame, taking ownership of b. The envelope's
// buffer is released by the writer after coalescing.
func (vc *vconn) SendOwned(b []byte) error {
	vc.mu.Lock()
	if vc.err != nil || vc.closed {
		err := vc.err
		if err == nil {
			err = transport.ErrClosed
		}
		vc.mu.Unlock()
		proto.PutBuf(b)
		return err
	}
	vc.mu.Unlock()
	return vc.mc.enqueue(&proto.MuxData{Session: vc.sess, Raw: b})
}

// Recv blocks until a frame arrives or the session ends.
func (vc *vconn) Recv() ([]byte, error) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	for {
		if vc.head < len(vc.inbox) {
			b := vc.inbox[vc.head]
			vc.inbox[vc.head] = nil
			vc.head++
			if vc.head == len(vc.inbox) {
				vc.inbox = vc.inbox[:0]
				vc.head = 0
			}
			return b, nil
		}
		if vc.err != nil {
			return nil, vc.err
		}
		if vc.closed {
			return nil, transport.ErrClosed
		}
		vc.cond.Wait()
	}
}

// Close retires the session locally and tells the gateway, so the
// controller unbinds the session without tearing down the shared
// connection. The driver sends its JobEnd before Close, exactly as on a
// dedicated connection.
func (vc *vconn) Close() error {
	vc.mu.Lock()
	if vc.closed || vc.err != nil {
		vc.mu.Unlock()
		return nil
	}
	vc.closed = true
	vc.cond.Broadcast()
	vc.mu.Unlock()
	mc := vc.mc
	mc.mu.Lock()
	delete(mc.sessions, vc.sess)
	mc.mu.Unlock()
	mc.enqueue(&proto.SessionClose{Session: vc.sess})
	return nil
}

// push delivers one inbound frame to the session's inbox.
func (vc *vconn) push(b []byte) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.closed || vc.err != nil {
		return
	}
	vc.inbox = append(vc.inbox, b)
	vc.cond.Signal()
}

// closeWith fails the session: pending and future Recvs return err after
// draining frames already delivered.
func (vc *vconn) closeWith(err error) {
	vc.mu.Lock()
	defer vc.mu.Unlock()
	if vc.err == nil {
		vc.err = err
	}
	vc.cond.Broadcast()
}
