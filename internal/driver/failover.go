package driver

import (
	"errors"
	"fmt"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// This file implements driver-side controller-failover continuity. The
// driver keeps a journal of every logged fire-and-forget operation it has
// issued (send in driver.go) and remembers the request message behind
// every in-flight future (request in future.go). When the connection to
// the controller dies, recover walks the session's endpoint list — the
// primary first, then the failover endpoints passed to ConnectFailover —
// reattaches to whichever controller answers for the job, reconciles the
// journal against the applied-operation count that controller reports,
// and re-issues the unresolved futures under their original seqs. The
// controller dedupes re-issued request seqs, so a request that survived
// on a live controller (a transient driver-side disconnect) is answered
// once, not twice.

// journalEntry is one logged fire-and-forget operation, retained as a
// marshaled copy so it can be resent verbatim after a reattach. index is
// the operation's 1-based position in the session's history — the same
// counter the controller's per-job applied count mirrors.
type journalEntry struct {
	index uint64
	buf   []byte
}

// ErrLoopInterrupted deterministically fails an InstantiateWhile future
// interrupted by a failover: controller-evaluated loop state (iteration
// count, pending predicate fetch) is not replicated, so re-issuing the
// loop could re-run iterations the old controller already executed and
// logged. The application re-issues the loop itself if it wants to
// continue; already-run iterations persist on the workers.
var ErrLoopInterrupted = errors.New(
	"driver: controller-evaluated loop interrupted by controller failover; completed iterations persist, re-issue to continue")

// ErrCheckpointFailed resolves a Checkpoint future whose commit the
// controller aborted because a worker's durable Save errored (disk full,
// torn write). The previous checkpoint and the operation log stay
// authoritative — recovery is unaffected — and the caller may retry.
var ErrCheckpointFailed = errors.New("driver: checkpoint failed")

// errRecovered is recvMsg's signal that the connection was lost and
// reattached mid-receive with no message to show for it yet. Recovery
// resolves some pending entries locally, so receive loops must recheck
// what they are blocked on before reading again.
var errRecovered = errors.New("driver: session recovered mid-receive")

// reattachRounds bounds how many passes over the endpoint list recover
// makes before declaring the session dead. Each dial within a pass is
// itself retried with backoff for up to reattachDialTimeout.
const (
	reattachRounds      = 3
	reattachDialTimeout = 2 * time.Second
)

// recover reattaches the session after a connection failure. It returns
// nil when the session is live again on a (possibly different) controller
// with its journal reconciled and its futures re-issued, and the sticky
// session error when every endpoint was exhausted — in which case fail()
// has already resolved all pending futures with it.
func (d *Driver) recover(cause error) error {
	if d.dead != nil {
		return d.dead
	}
	if d.job == ids.NoJob {
		// Failed during admission: there is no job to reattach to.
		d.fail(cause)
		return d.dead
	}
	d.conn.Close()
	for round := 0; round < reattachRounds; round++ {
		for _, addr := range d.addrs {
			ack, conn, rest, err := d.reattach(addr)
			if err != nil {
				continue
			}
			d.conn = conn
			// Messages decoded before the failure are consumed first, then
			// anything that rode in the reattach handshake frame.
			live := d.inbox[d.inboxHead:]
			merged := make([]proto.Msg, 0, len(live)+len(rest))
			merged = append(append(merged, live...), rest...)
			d.inbox, d.inboxHead = merged, 0
			if err := d.resendJournal(ack.Applied); err != nil {
				d.conn.Close()
				continue
			}
			d.reissuePending()
			return nil
		}
	}
	d.fail(fmt.Errorf("driver: reattach failed after %d rounds over %v: %w",
		reattachRounds, d.addrs, cause))
	return d.dead
}

// reattach dials one endpoint and performs the DriverReattach handshake.
// On success it returns the controller's ack, the new connection, and any
// further messages decoded from the handshake frame.
func (d *Driver) reattach(addr string) (*proto.ReattachAck, transport.Conn, []proto.Msg, error) {
	conn, err := transport.DialRetry(d.tr, addr, transport.Backoff{}, 0, reattachDialTimeout, nil)
	if err != nil {
		return nil, nil, nil, err
	}
	buf := proto.MarshalAppend(proto.GetBuf(),
		&proto.DriverReattach{Job: d.job, Name: d.name, Weight: d.weight})
	owned, err := transport.SendOwned(conn, buf)
	if !owned {
		proto.PutBuf(buf)
	}
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	raw, err := conn.Recv()
	if err != nil {
		conn.Close()
		return nil, nil, nil, err
	}
	var msgs []proto.Msg
	err = proto.ForEachMsg(raw, func(m proto.Msg) error {
		msgs = append(msgs, m)
		return nil
	})
	proto.PutBuf(raw)
	if err != nil || len(msgs) == 0 {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("driver: reattach %s: bad handshake frame (%v)", addr, err)
	}
	ack, ok := msgs[0].(*proto.ReattachAck)
	if !ok {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("driver: reattach %s: unexpected %s", addr, msgs[0].Kind())
	}
	if !ack.Ok {
		conn.Close()
		return nil, nil, nil, fmt.Errorf("driver: reattach %s: %s", addr, ack.Err)
	}
	return ack, conn, msgs[1:], nil
}

// resendJournal reconciles the journal against the applied count the
// reattached controller reported: entries at or below it were applied
// (directly, or via oplog replay during the standby's takeover) and are
// dropped; everything past it is resent in order. Copies are sent — the
// journal must keep its buffers for a possible later failover.
func (d *Driver) resendJournal(applied uint64) error {
	i := 0
	for i < len(d.journal) && d.journal[i].index <= applied {
		i++
	}
	d.journal = d.journal[i:]
	for _, e := range d.journal {
		buf := append(proto.GetBuf(), e.buf...)
		owned, err := transport.SendOwned(d.conn, buf)
		if !owned {
			proto.PutBuf(buf)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// truncateJournal releases journal entries at or below applied — the
// count the controller reports as guaranteed on every possible reattach
// target (BarrierDone.Applied). Without it the journal grows for the
// session's lifetime, one marshaled copy per logged op. The suffix is
// copied into a fresh slice so the dropped entries' buffers are really
// released instead of staying pinned by the old backing array.
func (d *Driver) truncateJournal(applied uint64) {
	i := 0
	for i < len(d.journal) && d.journal[i].index <= applied {
		i++
	}
	if i == 0 {
		return
	}
	if i == len(d.journal) {
		d.journal = nil
		return
	}
	d.journal = append([]journalEntry(nil), d.journal[i:]...)
}

// reissuePending re-sends every unresolved expect-reply request under its
// original seq. The controller dedupes seqs it already holds (a surviving
// controller may still be working on the original), so at most one reply
// arrives per seq. InstantiateWhile is the exception: its loop state died
// with the old controller, so its future fails deterministically instead
// of silently restarting the loop from iteration zero.
func (d *Driver) reissuePending() {
	for seq, p := range d.pending {
		if p.resolved || p.req == nil {
			continue
		}
		if _, isLoop := p.req.(*proto.InstantiateWhile); isLoop {
			delete(d.pending, seq)
			d.resolve(p, ErrLoopInterrupted)
			continue
		}
		if err := d.rawSend(p.req); err != nil {
			// The fresh connection died under us; the next recvMsg or send
			// runs recover again and retries the remainder.
			return
		}
	}
}
