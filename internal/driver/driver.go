// Package driver is the application-facing Nimbus client library.
//
// A driver program declares partitioned variables, submits stages
// (parallel operations that expand into one task per partition), and marks
// basic blocks for execution templates: code between BeginTemplate and
// EndTemplate is recorded by the controller while it executes, and
// Instantiate re-executes the whole block with a single message
// (paper §2.2). Data-dependent control flow — while loops over error
// values — reads back reduced results with Get, which is a
// synchronization point (paper §2.4).
//
// The pseudocode of paper Figure 3 maps onto this API as:
//
//	for Get(error) > threshE {
//	    for Get(gradient) > threshG {
//	        d.Instantiate("optimize", coeffParams)   // inner basic block
//	    }
//	    d.Instantiate("estimate", modelParams)       // outer basic block
//	}
//
// Drivers are single-goroutine clients: methods must not be called
// concurrently.
package driver

import (
	"fmt"

	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// Driver is a connected driver session. Each session is one job on the
// controller: admission hands back a JobID, and every piece of
// control-plane state the session creates is scoped to it, isolated from
// other concurrent driver sessions sharing the same cluster.
type Driver struct {
	conn      transport.Conn
	job       ids.JobID
	seq       uint64
	nextVar   ids.VariableID
	nextStage ids.StageID
	// inbox holds messages decoded from a batch frame but not yet
	// consumed by recvUntil; inboxHead indexes the next message so
	// consumption is O(1) without shifting.
	inbox     []proto.Msg
	inboxHead int
}

// Var is a declared application variable.
type Var struct {
	ID         ids.VariableID
	Name       string
	Partitions int
}

// Ref is one variable access in a stage submission.
type Ref struct{ proto.VarRef }

// Read accesses partition t of the variable from task t.
func (v Var) Read() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.OnePerTask}}
}

// Write writes partition t of the variable from task t.
func (v Var) Write() Ref {
	return Ref{proto.VarRef{Var: v.ID, Write: true, Pattern: proto.OnePerTask}}
}

// ReadShared reads partition 0 from every task (broadcast reads of
// scalars such as model parameters).
func (v Var) ReadShared() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.Shared}}
}

// WriteShared writes partition 0 (single-writer scalars; use with
// one-task stages).
func (v Var) WriteShared() Ref {
	return Ref{proto.VarRef{Var: v.ID, Write: true, Pattern: proto.Shared}}
}

// ReadGrouped reads the contiguous group of partitions assigned to each
// task (reduction trees: a stage with T tasks over a variable with T*K
// partitions gives task t partitions [t*K, (t+1)*K)).
func (v Var) ReadGrouped() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.Grouped}}
}

// ReadStencil reads partitions [t-1, t+1] (clamped) from task t — halo
// exchange for grid codes partitioned into strips.
func (v Var) ReadStencil() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.Stencil, Fixed: 1}}
}

// ReadAt reads one fixed partition from every task.
func (v Var) ReadAt(p int) Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.FixedPartition, Fixed: p}}
}

// WriteAt writes one fixed partition (single-writer).
func (v Var) WriteAt(p int) Ref {
	return Ref{proto.VarRef{Var: v.ID, Write: true, Pattern: proto.FixedPartition, Fixed: p}}
}

// Connect dials the controller and registers a driver session with the
// default fair-share weight. It blocks until the controller admits the
// job and returns its handle.
func Connect(tr transport.Transport, addr, name string) (*Driver, error) {
	return ConnectWeighted(tr, addr, name, 1)
}

// ConnectWeighted is Connect with an explicit fair-share weight: a job
// with weight 2 receives twice the executor-slot share of a weight-1 job
// on every worker.
func ConnectWeighted(tr transport.Transport, addr, name string, weight int) (*Driver, error) {
	conn, err := tr.Dial(addr)
	if err != nil {
		return nil, fmt.Errorf("driver: dial %s: %w", addr, err)
	}
	d := &Driver{conn: conn}
	if err := d.send(&proto.RegisterDriver{Name: name, Weight: weight}); err != nil {
		conn.Close()
		return nil, err
	}
	m, err := d.recvUntil(func(m proto.Msg) bool {
		_, ok := m.(*proto.RegisterDriverAck)
		return ok
	})
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("driver: awaiting admission: %w", err)
	}
	d.job = m.(*proto.RegisterDriverAck).Job
	return d, nil
}

// Job returns the controller-assigned job handle for this session.
func (d *Driver) Job() ids.JobID { return d.job }

func (d *Driver) send(m proto.Msg) error {
	buf := proto.MarshalAppend(proto.GetBuf(), m)
	owned, err := transport.SendOwned(d.conn, buf)
	if !owned {
		proto.PutBuf(buf)
	}
	return err
}

// recvMsg returns the next controller message, unpacking batch frames.
func (d *Driver) recvMsg() (proto.Msg, error) {
	for d.inboxHead >= len(d.inbox) {
		d.inbox = d.inbox[:0]
		d.inboxHead = 0
		raw, err := d.conn.Recv()
		if err != nil {
			return nil, fmt.Errorf("driver: connection lost: %w", err)
		}
		err = proto.ForEachMsg(raw, func(m proto.Msg) error {
			d.inbox = append(d.inbox, m)
			return nil
		})
		proto.PutBuf(raw)
		if err != nil {
			// Drop any messages decoded before the frame was rejected:
			// delivering a corrupt frame's prefix as valid would
			// desynchronize request/response matching.
			d.inbox = d.inbox[:0]
			d.inboxHead = 0
			return nil, err
		}
	}
	m := d.inbox[d.inboxHead]
	d.inbox[d.inboxHead] = nil
	d.inboxHead++
	return m, nil
}

// recvUntil reads messages until pred accepts one, surfacing controller
// errors.
func (d *Driver) recvUntil(pred func(proto.Msg) bool) (proto.Msg, error) {
	for {
		m, err := d.recvMsg()
		if err != nil {
			return nil, err
		}
		if e, ok := m.(*proto.ErrorMsg); ok {
			return nil, fmt.Errorf("driver: controller error: %s", e.Text)
		}
		if _, ok := m.(*proto.Shutdown); ok {
			return nil, fmt.Errorf("driver: controller shut down")
		}
		if pred(m) {
			return m, nil
		}
	}
}

// DefineVariable declares a variable with the given partition count.
func (d *Driver) DefineVariable(name string, partitions int) (Var, error) {
	d.nextVar++
	v := Var{ID: d.nextVar, Name: name, Partitions: partitions}
	err := d.send(&proto.DefineVariable{Var: v.ID, Name: name, Partitions: partitions})
	return v, err
}

// MustVar is DefineVariable that panics on error (setup-time use).
func (d *Driver) MustVar(name string, partitions int) Var {
	v, err := d.DefineVariable(name, partitions)
	if err != nil {
		panic(err)
	}
	return v
}

// Put uploads one partition's initial contents. Puts are asynchronous;
// Barrier or Get forces completion.
func (d *Driver) Put(v Var, partition int, data []byte) error {
	return d.send(&proto.Put{Var: v.ID, Partition: partition, Data: data})
}

// PutFloats uploads a float64 slice via the params encoding.
func (d *Driver) PutFloats(v Var, partition int, vals []float64) error {
	return d.Put(v, partition, params.NewEncoder(8*len(vals)+8).Floats(vals).Blob())
}

// Get reads one partition's current contents. It synchronizes: the result
// reflects all previously submitted work.
func (d *Driver) Get(v Var, partition int) ([]byte, error) {
	d.seq++
	seq := d.seq
	if err := d.send(&proto.Get{Seq: seq, Var: v.ID, Partition: partition}); err != nil {
		return nil, err
	}
	m, err := d.recvUntil(func(m proto.Msg) bool {
		g, ok := m.(*proto.GetResult)
		return ok && g.Seq == seq
	})
	if err != nil {
		return nil, err
	}
	return m.(*proto.GetResult).Data, nil
}

// GetFloats reads a float64 slice written via the params encoding.
func (d *Driver) GetFloats(v Var, partition int) ([]float64, error) {
	raw, err := d.Get(v, partition)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, nil
	}
	dec := params.NewDecoder(params.Blob(raw))
	vals := dec.Floats()
	return vals, dec.Err()
}

// Submit submits one stage: fn runs as one task per partition with the
// given accesses and a shared parameter blob.
func (d *Driver) Submit(fnID ids.FunctionID, tasks int, p params.Blob, refs ...Ref) error {
	d.nextStage++
	spec := &proto.SubmitStage{
		Stage: d.nextStage, Fn: fnID, Tasks: tasks, Params: p,
		Refs: make([]proto.VarRef, len(refs)),
	}
	for i, r := range refs {
		spec.Refs[i] = r.VarRef
	}
	return d.send(spec)
}

// SubmitPerTask submits a stage whose tasks take distinct parameters
// (data-generation stages; not recordable into templates).
func (d *Driver) SubmitPerTask(fnID ids.FunctionID, tasks int, perTask []params.Blob, refs ...Ref) error {
	d.nextStage++
	spec := &proto.SubmitStage{
		Stage: d.nextStage, Fn: fnID, Tasks: tasks, PerTask: perTask,
		Refs: make([]proto.VarRef, len(refs)),
	}
	for i, r := range refs {
		spec.Refs[i] = r.VarRef
	}
	return d.send(spec)
}

// BeginTemplate marks the start of a basic block. The stages submitted
// until EndTemplate execute normally and are simultaneously recorded.
func (d *Driver) BeginTemplate(name string) error {
	return d.send(&proto.TemplateStart{Name: name})
}

// EndTemplate finishes recording; the controller builds and installs the
// controller and worker templates.
func (d *Driver) EndTemplate(name string) error {
	return d.send(&proto.TemplateEnd{Name: name})
}

// Instantiate re-executes a recorded basic block. paramArray supplies one
// blob per parameterized stage, in submission order; pass nothing to reuse
// the recorded parameters.
func (d *Driver) Instantiate(name string, paramArray ...params.Blob) error {
	return d.send(&proto.InstantiateBlock{Name: name, ParamArray: paramArray})
}

// Barrier blocks until all submitted work has completed.
func (d *Driver) Barrier() error {
	d.seq++
	seq := d.seq
	if err := d.send(&proto.Barrier{Seq: seq}); err != nil {
		return err
	}
	_, err := d.recvUntil(func(m proto.Msg) bool {
		b, ok := m.(*proto.BarrierDone)
		return ok && b.Seq == seq
	})
	return err
}

// Checkpoint requests a checkpoint and blocks until it commits.
func (d *Driver) Checkpoint() error {
	d.seq++
	seq := d.seq
	if err := d.send(&proto.CheckpointReq{Seq: seq}); err != nil {
		return err
	}
	_, err := d.recvUntil(func(m proto.Msg) bool {
		b, ok := m.(*proto.BarrierDone)
		return ok && b.Seq == seq
	})
	return err
}

// Close ends the driver session and its job: the controller tears down
// the job's templates, outstanding builds, directory entries and
// worker-side namespaces. Other jobs sharing the cluster are unaffected,
// and Close does not shut the cluster down. The explicit JobEnd makes
// teardown deterministic; a dropped connection triggers the same teardown
// on the controller's side.
func (d *Driver) Close() error {
	_ = d.send(&proto.JobEnd{Job: d.job})
	return d.conn.Close()
}

// Abort drops the connection without the graceful JobEnd, simulating a
// crashed driver. The controller detects the disconnect and tears the job
// down the same way (fault-injection and tests).
func (d *Driver) Abort() error {
	return d.conn.Close()
}
