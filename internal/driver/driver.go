// Package driver is the application-facing Nimbus client library (API
// v2: asynchronous).
//
// A driver program declares partitioned variables, submits stages
// (parallel operations that expand into one task per partition), and marks
// basic blocks for execution templates: code between BeginTemplate and
// EndTemplate is recorded by the controller while it executes, and
// Instantiate re-executes the whole block with a single message
// (paper §2.2). Data-dependent control flow — while loops over error
// values — reads back reduced results with Get, which is a
// synchronization point (paper §2.4).
//
// The v2 surface removes the two round-trip taxes v1 paid for that
// control flow:
//
//   - Futures. Get, Barrier and Checkpoint have non-blocking variants
//     (GetAsync, BarrierAsync, CheckpointAsync) returning a Future[T]
//     backed by a seq-keyed pending-reply table, so many reads pipeline
//     in flight and resolve in whatever order the controller answers.
//     The blocking methods are thin wrappers (Async().Wait()).
//   - Controller-evaluated predicates. InstantiateWhile submits a whole
//     loop: the controller re-instantiates the template back-to-back,
//     evaluating a predicate over the reduced scalar after each
//     completion, and reports once — one round trip per loop instead of
//     one per iteration.
//
// The pseudocode of paper Figure 3 maps onto this API as:
//
//	for Get(error) > threshE {                            // outer loop
//	    d.InstantiateWhile("optimize",                    // inner loop:
//	        gradient.AtLeast(0, threshG), maxInner)       // one message
//	    d.Instantiate("estimate", modelParams)
//	}
//
// Drivers are single-goroutine clients: methods — including Future.Wait —
// must not be called concurrently.
package driver

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// Driver is a connected driver session. Each session is one job on the
// controller: admission hands back a JobID, and every piece of
// control-plane state the session creates is scoped to it, isolated from
// other concurrent driver sessions sharing the same cluster.
type Driver struct {
	conn      transport.Conn
	job       ids.JobID
	seq       uint64
	nextVar   ids.VariableID
	nextStage ids.StageID
	// Failover state (failover.go): the transport and full endpoint list
	// (primary first) for reattach dials, the registration identity the
	// reattach re-presents, the journal of logged fire-and-forget ops
	// (marshaled copies, indexed by opsSent), and opsSent itself — the
	// count the controller's per-job applied counter mirrors.
	tr       transport.Transport
	addrs    []string
	name     string
	weight   int
	tenant   string
	priority uint8
	journal  []journalEntry
	opsSent  uint64
	// inbox holds messages decoded from a batch frame but not yet
	// consumed; inboxHead indexes the next message so consumption is O(1)
	// without shifting.
	inbox     []proto.Msg
	inboxHead int
	// pending is the seq-keyed reply table: every in-flight Get, Barrier,
	// Checkpoint and InstantiateWhile awaits its reply here.
	pending map[uint64]*pendingReply
	// dead is the sticky fatal session error (connection lost, controller
	// shutdown); once set, every pending and future request fails with it.
	dead error
}

// Var is a declared application variable.
type Var struct {
	ID         ids.VariableID
	Name       string
	Partitions int
}

// Ref is one variable access in a stage submission.
type Ref struct{ proto.VarRef }

// Read accesses partition t of the variable from task t.
func (v Var) Read() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.OnePerTask}}
}

// Write writes partition t of the variable from task t.
func (v Var) Write() Ref {
	return Ref{proto.VarRef{Var: v.ID, Write: true, Pattern: proto.OnePerTask}}
}

// ReadShared reads partition 0 from every task (broadcast reads of
// scalars such as model parameters).
func (v Var) ReadShared() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.Shared}}
}

// WriteShared writes partition 0 (single-writer scalars; use with
// one-task stages).
func (v Var) WriteShared() Ref {
	return Ref{proto.VarRef{Var: v.ID, Write: true, Pattern: proto.Shared}}
}

// ReadGrouped reads the contiguous group of partitions assigned to each
// task (reduction trees: a stage with T tasks over a variable with T*K
// partitions gives task t partitions [t*K, (t+1)*K)).
func (v Var) ReadGrouped() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.Grouped}}
}

// ReadStencil reads partitions [t-1, t+1] (clamped) from task t — halo
// exchange for grid codes partitioned into strips.
func (v Var) ReadStencil() Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.Stencil, Fixed: 1}}
}

// ReadAt reads one fixed partition from every task.
func (v Var) ReadAt(p int) Ref {
	return Ref{proto.VarRef{Var: v.ID, Pattern: proto.FixedPartition, Fixed: p}}
}

// WriteAt writes one fixed partition (single-writer).
func (v Var) WriteAt(p int) Ref {
	return Ref{proto.VarRef{Var: v.ID, Write: true, Pattern: proto.FixedPartition, Fixed: p}}
}

// Pred is a controller-evaluated loop predicate: the first float64 of one
// partition's contents compared against a threshold. Construct one with
// Var.AtLeast/Above/AtMost/Below; the comparison is the loop's CONTINUE
// condition.
type Pred struct{ proto.Pred }

// AtLeast continues the loop while partition p's scalar is >= threshold.
func (v Var) AtLeast(p int, threshold float64) Pred {
	return Pred{proto.Pred{Var: v.ID, Partition: p, Op: proto.PredGE, Threshold: threshold}}
}

// Above continues the loop while partition p's scalar is > threshold.
func (v Var) Above(p int, threshold float64) Pred {
	return Pred{proto.Pred{Var: v.ID, Partition: p, Op: proto.PredGT, Threshold: threshold}}
}

// AtMost continues the loop while partition p's scalar is <= threshold.
func (v Var) AtMost(p int, threshold float64) Pred {
	return Pred{proto.Pred{Var: v.ID, Partition: p, Op: proto.PredLE, Threshold: threshold}}
}

// Below continues the loop while partition p's scalar is < threshold.
func (v Var) Below(p int, threshold float64) Pred {
	return Pred{proto.Pred{Var: v.ID, Partition: p, Op: proto.PredLT, Threshold: threshold}}
}

// Connect dials the controller and registers a driver session with the
// default fair-share weight. It blocks until the controller admits the
// job and returns its handle.
func Connect(tr transport.Transport, addr, name string) (*Driver, error) {
	return ConnectContext(context.Background(), tr, addr, name, 1)
}

// ConnectFailover is Connect with additional endpoints to reattach
// through when the controller at addr dies: a promoted standby re-binds
// addr itself on shared-memory transports, but on TCP it listens on its
// own address, which the driver must know in advance.
func ConnectFailover(tr transport.Transport, addr, name string, failover ...string) (*Driver, error) {
	return ConnectContext(context.Background(), tr, addr, name, 1, failover...)
}

// ConnectWeighted is Connect with an explicit fair-share weight: a job
// with weight 2 receives twice the executor-slot share of a weight-1 job
// on every worker.
func ConnectWeighted(tr transport.Transport, addr, name string, weight int) (*Driver, error) {
	return ConnectContext(context.Background(), tr, addr, name, weight)
}

// ConnectContext is ConnectWeighted with a deadline over the whole
// connection handshake — dial plus admission. v1's Connect blocked
// forever when the controller accepted the connection but never acked
// admission; cancelling ctx closes the half-open connection and returns
// ctx's error. Transports' Dial is not context-aware: if ctx fires while
// the dial itself is still blocked, ConnectContext returns immediately
// but the dialing goroutine lingers until the transport's own dial
// timeout (the OS's, for TCP) fires, at which point it closes any
// connection it made and exits.
func ConnectContext(ctx context.Context, tr transport.Transport, addr, name string, weight int, failover ...string) (*Driver, error) {
	return ConnectOpts(ctx, tr, addr, Opts{Name: name, Weight: weight, Failover: failover})
}

// Opts bundles the session parameters for ConnectOpts. Name and Weight
// mirror ConnectWeighted; the rest are front-door extras.
type Opts struct {
	// Name labels the session in controller logs and replication records.
	Name string
	// Weight is the fair-share weight among the tenant's jobs (<= 0 means
	// 1): within a tenant, a weight-2 job receives twice the executor
	// slots of a weight-1 job.
	Weight int
	// Tenant groups sessions for hierarchical fair share and per-tenant
	// admission rate limits; empty means the default tenant.
	Tenant string
	// Priority orders the controller's bounded admission queue when the
	// job cap is reached: higher admits first, FIFO within a band.
	Priority uint8
	// Failover lists additional controller endpoints to reattach through,
	// as in ConnectFailover.
	Failover []string
}

// ErrAdmissionRejected is the sentinel matched (via errors.Is) by every
// typed admission rejection: queue full, job cap reached with no queue,
// per-tenant rate limit, controller shutting down. Callers never block
// forever on a saturated controller — they get this, usually wrapped in a
// *RejectError carrying the retry-after hint.
var ErrAdmissionRejected = errors.New("driver: admission rejected")

// RejectError is a typed admission rejection from the controller's
// bounded front door. It matches ErrAdmissionRejected under errors.Is.
type RejectError struct {
	// Code is the proto.Reject* reason.
	Code uint8
	// RetryAfter is the controller's backoff hint (zero when retrying is
	// pointless, e.g. shutdown).
	RetryAfter time.Duration
	// Reason is the controller's human-readable explanation.
	Reason string
}

func (e *RejectError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("driver: admission rejected: %s (retry after %v)", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("driver: admission rejected: %s", e.Reason)
}

// Is matches the ErrAdmissionRejected sentinel.
func (e *RejectError) Is(target error) bool { return target == ErrAdmissionRejected }

// ConnectOpts is the full-surface connect: ConnectContext's deadline
// semantics plus the front-door session parameters (tenant, priority).
// Pass a *Mux as tr to multiplex the session over a shared gateway
// connection pool instead of a dedicated connection.
func ConnectOpts(ctx context.Context, tr transport.Transport, addr string, o Opts) (*Driver, error) {
	if o.Weight <= 0 {
		o.Weight = 1
	}
	type result struct {
		d   *Driver
		err error
	}
	ch := make(chan result, 1)
	var mu sync.Mutex
	var conn transport.Conn
	var abandoned bool
	go func() {
		// The controller may not be listening yet; retry briefly with the
		// shared backoff helper, bailing out if ctx cancels the connect.
		c, err := transport.DialRetry(tr, addr, transport.Backoff{}, 0, 2*time.Second, ctx.Done())
		if err != nil {
			ch <- result{err: fmt.Errorf("driver: dial %s: %w", addr, err)}
			return
		}
		mu.Lock()
		if abandoned {
			mu.Unlock()
			c.Close()
			return
		}
		conn = c
		mu.Unlock()
		d := &Driver{
			conn: c, pending: make(map[uint64]*pendingReply),
			tr: tr, addrs: append([]string{addr}, o.Failover...),
			name: o.Name, weight: o.Weight,
			tenant: o.Tenant, priority: o.Priority,
		}
		if err := d.rawSend(&proto.RegisterDriver{
			Name: o.Name, Weight: o.Weight, Tenant: o.Tenant, Priority: o.Priority,
		}); err != nil {
			c.Close()
			ch <- result{err: err}
			return
		}
		job, err := d.awaitAdmission()
		if err != nil {
			c.Close()
			ch <- result{err: fmt.Errorf("driver: awaiting admission: %w", err)}
			return
		}
		d.job = job
		ch <- result{d: d}
	}()
	select {
	case r := <-ch:
		return r.d, r.err
	case <-ctx.Done():
		mu.Lock()
		abandoned = true
		c := conn
		mu.Unlock()
		if c != nil {
			c.Close() // unblocks the admission Recv; the goroutine exits
		}
		return nil, fmt.Errorf("driver: connect %s: %w", addr, ctx.Err())
	}
}

// awaitAdmission reads until the controller's RegisterDriverAck.
func (d *Driver) awaitAdmission() (ids.JobID, error) {
	for {
		m, err := d.recvMsg()
		if err != nil {
			return ids.NoJob, err
		}
		switch m := m.(type) {
		case *proto.RegisterDriverAck:
			return m.Job, nil
		case *proto.AdmissionReject:
			return ids.NoJob, &RejectError{
				Code:       m.Code,
				RetryAfter: time.Duration(m.RetryAfterMillis) * time.Millisecond,
				Reason:     m.Err,
			}
		case *proto.ErrorMsg:
			return ids.NoJob, fmt.Errorf("controller error: %s", m.Text)
		case *proto.Shutdown:
			return ids.NoJob, fmt.Errorf("controller shut down")
		}
	}
}

// Job returns the controller-assigned job handle for this session.
func (d *Driver) Job() ids.JobID { return d.job }

// rawSend marshals and sends one message on the current connection, with
// no journaling and no reattach on failure.
func (d *Driver) rawSend(m proto.Msg) error {
	buf := proto.MarshalAppend(proto.GetBuf(), m)
	owned, err := transport.SendOwned(d.conn, buf)
	if !owned {
		proto.PutBuf(buf)
	}
	return err
}

// send journals one logged fire-and-forget operation (the controller
// logs, counts and replicates exactly these) and sends it. On a
// connection failure the journal entry survives: reattach reconciliation
// (failover.go) resends every entry past the applied count the new
// controller reports, so the op is delivered exactly once whether or not
// the dead controller processed it.
func (d *Driver) send(m proto.Msg) error {
	if d.dead != nil {
		return d.dead
	}
	d.opsSent++
	d.journal = append(d.journal, journalEntry{index: d.opsSent, buf: proto.Marshal(m)})
	if err := d.rawSend(m); err != nil {
		return d.recover(err)
	}
	return nil
}

// OpsSent reports how many logged operations this session has issued; a
// controller that has applied the session's full history reports the same
// count. Failover tests assert the two match after a takeover.
func (d *Driver) OpsSent() uint64 { return d.opsSent }

// JournalLen reports how many logged operations the failover journal
// currently retains. Barrier and checkpoint commits trim it to the
// controller's safe applied count, so tests pin that a long checkpointed
// run keeps it bounded instead of growing one entry per op.
func (d *Driver) JournalLen() int { return len(d.journal) }

// recvMsg returns the next controller message, unpacking batch frames.
// Connection loss is fatal (the session fails); a corrupt frame is a
// transient error — its decoded prefix is dropped so a half-valid frame
// cannot desynchronize reply matching.
func (d *Driver) recvMsg() (proto.Msg, error) {
	for d.inboxHead >= len(d.inbox) {
		d.inbox = d.inbox[:0]
		d.inboxHead = 0
		raw, err := d.conn.Recv()
		if err != nil {
			// Reattach through the endpoint list; any messages decoded
			// during the handshake were spliced into the inbox.
			if rerr := d.recover(fmt.Errorf("driver: connection lost: %w", err)); rerr != nil {
				return nil, rerr
			}
			// Recovery can resolve pending entries locally (an interrupted
			// InstantiateWhile fails rather than restart), so hand control
			// back instead of blocking on the new connection: a waitFor
			// whose entry was just resolved must notice before reading a
			// message the controller may never owe it.
			return nil, errRecovered
		}
		err = proto.ForEachMsg(raw, func(m proto.Msg) error {
			d.inbox = append(d.inbox, m)
			return nil
		})
		proto.PutBuf(raw)
		if err != nil {
			d.inbox = d.inbox[:0]
			d.inboxHead = 0
			return nil, err
		}
	}
	m := d.inbox[d.inboxHead]
	d.inbox[d.inboxHead] = nil
	d.inboxHead++
	return m, nil
}

// DefineVariable declares a variable with the given partition count.
func (d *Driver) DefineVariable(name string, partitions int) (Var, error) {
	d.nextVar++
	v := Var{ID: d.nextVar, Name: name, Partitions: partitions}
	err := d.send(&proto.DefineVariable{Var: v.ID, Name: name, Partitions: partitions})
	return v, err
}

// MustVar is DefineVariable that panics on error (setup-time use).
func (d *Driver) MustVar(name string, partitions int) Var {
	v, err := d.DefineVariable(name, partitions)
	if err != nil {
		panic(err)
	}
	return v
}

// Put uploads one partition's initial contents. Puts are asynchronous;
// Barrier or Get forces completion.
func (d *Driver) Put(v Var, partition int, data []byte) error {
	return d.send(&proto.Put{Var: v.ID, Partition: partition, Data: data})
}

// PutFloats uploads a float64 slice via the params encoding.
func (d *Driver) PutFloats(v Var, partition int, vals []float64) error {
	return d.Put(v, partition, params.NewEncoder(8*len(vals)+8).Floats(vals).Blob())
}

// GetAsync requests one partition's current contents without blocking.
// The controller answers after all previously submitted work that writes
// the partition has completed; many GetAsyncs may be in flight at once
// and resolve out of order.
func (d *Driver) GetAsync(v Var, partition int) *Future[[]byte] {
	p := d.register()
	d.request(p, &proto.Get{Seq: p.seq, Var: v.ID, Partition: partition})
	return &Future[[]byte]{d: d, p: p, conv: func(p *pendingReply) ([]byte, error) {
		return p.data, nil
	}}
}

// Get reads one partition's current contents. It synchronizes: the result
// reflects all previously submitted work.
func (d *Driver) Get(v Var, partition int) ([]byte, error) {
	return d.GetAsync(v, partition).Wait()
}

// GetFloatsAsync is GetAsync decoding the result through the params
// encoding.
func (d *Driver) GetFloatsAsync(v Var, partition int) *Future[[]float64] {
	p := d.register()
	d.request(p, &proto.Get{Seq: p.seq, Var: v.ID, Partition: partition})
	return &Future[[]float64]{d: d, p: p, conv: func(p *pendingReply) ([]float64, error) {
		return params.DecodeFloats(p.data)
	}}
}

// GetFloats reads a float64 slice written via the params encoding.
func (d *Driver) GetFloats(v Var, partition int) ([]float64, error) {
	return d.GetFloatsAsync(v, partition).Wait()
}

// Submit submits one stage: fn runs as one task per partition with the
// given accesses and a shared parameter blob.
func (d *Driver) Submit(fnID ids.FunctionID, tasks int, p params.Blob, refs ...Ref) error {
	d.nextStage++
	spec := &proto.SubmitStage{
		Stage: d.nextStage, Fn: fnID, Tasks: tasks, Params: p,
		Refs: make([]proto.VarRef, len(refs)),
	}
	for i, r := range refs {
		spec.Refs[i] = r.VarRef
	}
	return d.send(spec)
}

// SubmitPerTask submits a stage whose tasks take distinct parameters
// (data-generation stages; not recordable into templates).
func (d *Driver) SubmitPerTask(fnID ids.FunctionID, tasks int, perTask []params.Blob, refs ...Ref) error {
	d.nextStage++
	spec := &proto.SubmitStage{
		Stage: d.nextStage, Fn: fnID, Tasks: tasks, PerTask: perTask,
		Refs: make([]proto.VarRef, len(refs)),
	}
	for i, r := range refs {
		spec.Refs[i] = r.VarRef
	}
	return d.send(spec)
}

// BeginTemplate marks the start of a basic block. The stages submitted
// until EndTemplate execute normally and are simultaneously recorded.
func (d *Driver) BeginTemplate(name string) error {
	return d.send(&proto.TemplateStart{Name: name})
}

// EndTemplate finishes recording; the controller builds and installs the
// controller and worker templates.
func (d *Driver) EndTemplate(name string) error {
	return d.send(&proto.TemplateEnd{Name: name})
}

// Instantiate re-executes a recorded basic block. paramArray supplies one
// blob per parameterized stage, in submission order; pass nothing to reuse
// the recorded parameters.
func (d *Driver) Instantiate(name string, paramArray ...params.Blob) error {
	return d.send(&proto.InstantiateBlock{Name: name, ParamArray: paramArray})
}

// LoopResult reports a finished controller-evaluated loop: how many
// template iterations ran and the scalar the final predicate evaluation
// saw.
type LoopResult struct {
	Iters     int
	LastValue float64
}

// InstantiateWhileAsync submits a whole data-dependent loop without
// blocking: the controller instantiates the named template back-to-back,
// re-evaluating pred against the reduced scalar after each completion,
// and answers once. The loop runs at least one and at most maxIters
// (>= 1) iterations, continuing while pred holds; paramArray is passed to
// every iteration.
func (d *Driver) InstantiateWhileAsync(name string, pred Pred, maxIters int, paramArray ...params.Blob) *Future[LoopResult] {
	p := d.register()
	d.request(p, &proto.InstantiateWhile{
		Seq: p.seq, Name: name, Pred: pred.Pred, MaxIters: maxIters, ParamArray: paramArray,
	})
	return &Future[LoopResult]{d: d, p: p, conv: func(p *pendingReply) (LoopResult, error) {
		res := LoopResult{Iters: p.iters, LastValue: p.lastValue}
		if p.loopErr != "" {
			return res, fmt.Errorf("driver: loop failed: %s", p.loopErr)
		}
		return res, nil
	}}
}

// InstantiateWhile submits a loop and blocks until it exits. Against the
// v1 pattern — Instantiate + Get per iteration — it costs one
// driver↔controller round trip for the whole loop instead of one per
// iteration.
func (d *Driver) InstantiateWhile(name string, pred Pred, maxIters int, paramArray ...params.Blob) (LoopResult, error) {
	return d.InstantiateWhileAsync(name, pred, maxIters, paramArray...).Wait()
}

// BarrierAsync asks for completion of all submitted work without blocking.
func (d *Driver) BarrierAsync() *Future[struct{}] {
	p := d.register()
	d.request(p, &proto.Barrier{Seq: p.seq})
	return &Future[struct{}]{d: d, p: p}
}

// Barrier blocks until all submitted work has completed.
func (d *Driver) Barrier() error {
	_, err := d.BarrierAsync().Wait()
	return err
}

// CheckpointAsync requests a checkpoint without blocking.
func (d *Driver) CheckpointAsync() *Future[struct{}] {
	p := d.register()
	d.request(p, &proto.CheckpointReq{Seq: p.seq})
	return &Future[struct{}]{d: d, p: p}
}

// Checkpoint requests a checkpoint and blocks until it commits.
func (d *Driver) Checkpoint() error {
	_, err := d.CheckpointAsync().Wait()
	return err
}

// Close ends the driver session and its job: the controller tears down
// the job's templates, outstanding builds, directory entries and
// worker-side namespaces. Other jobs sharing the cluster are unaffected,
// and Close does not shut the cluster down. The explicit JobEnd makes
// teardown deterministic, and its send error is propagated so callers
// learn when the goodbye never reached the controller — the connection
// drop still triggers the same teardown there.
func (d *Driver) Close() error {
	var sendErr error
	if d.dead == nil {
		sendErr = d.rawSend(&proto.JobEnd{Job: d.job})
	}
	closeErr := d.conn.Close()
	if sendErr != nil {
		return fmt.Errorf("driver: sending job end: %w", sendErr)
	}
	return closeErr
}

// Abort drops the connection without the graceful JobEnd, simulating a
// crashed driver. The controller detects the disconnect and tears the job
// down the same way (fault-injection and tests).
func (d *Driver) Abort() error {
	return d.conn.Close()
}
