package driver

import (
	"errors"
	"fmt"

	"nimbus/internal/proto"
)

// This file implements the v2 reply machinery: a seq-keyed pending-reply
// table and typed futures over it. Every request that expects a reply
// (Get, Barrier, Checkpoint, InstantiateWhile) registers a table entry;
// replies resolve entries by Seq, in whatever order they arrive, so many
// reads can pipeline in flight. The table replaces the v1 recvUntil
// scan-and-drop loop, which silently discarded any reply whose Seq the
// caller was no longer waiting on and desynchronized every concurrent-read
// pattern.

// pendingReply is one in-flight request in the driver's reply table.
type pendingReply struct {
	seq      uint64
	resolved bool
	err      error
	// Reply payloads, by kind: data for GetResult, iters/lastValue/
	// loopErr for LoopDone. BarrierDone carries nothing.
	data      []byte
	iters     int
	lastValue float64
	loopErr   string
	// req is the original request message, retained so a controller
	// failover can re-issue the request under the same seq (failover.go).
	req proto.Msg
}

// Future is the pending result of an asynchronous driver operation. Like
// the Driver itself it is single-goroutine: Wait pumps the connection on
// the caller's goroutine, resolving every reply it reads along the way,
// so other in-flight futures may become Ready while one is waited on.
type Future[T any] struct {
	d    *Driver
	p    *pendingReply
	conv func(*pendingReply) (T, error)
	done bool
	val  T
	err  error
}

// Ready reports whether Wait would return without reading the connection.
func (f *Future[T]) Ready() bool { return f.done || f.p.resolved }

// Wait blocks until the reply arrives and returns the result. Transient
// receive problems (a corrupt frame, an orphan reply) are returned as
// errors without consuming the future: the request is still in flight and
// Wait may be called again. Connection loss and controller errors resolve
// the future permanently.
func (f *Future[T]) Wait() (T, error) {
	if !f.done {
		if !f.p.resolved {
			if err := f.d.waitFor(f.p); err != nil {
				var zero T
				return zero, err
			}
		}
		f.done = true
		if f.p.err != nil {
			f.err = f.p.err
		} else if f.conv != nil {
			f.val, f.err = f.conv(f.p)
		}
	}
	return f.val, f.err
}

// register allocates the next request seq and its table entry.
func (d *Driver) register() *pendingReply {
	d.seq++
	p := &pendingReply{seq: d.seq}
	d.pending[d.seq] = p
	return p
}

// request sends an expect-reply message for p, resolving p immediately
// when the session is already dead. Requests are not journaled (the
// controller neither logs nor counts them); instead the message is
// retained on p so a failover can re-issue it under the same seq. A send
// failure runs reattach recovery — on success p was re-issued, on
// failure fail() resolved it.
func (d *Driver) request(p *pendingReply, m proto.Msg) {
	if d.dead != nil {
		delete(d.pending, p.seq)
		d.resolve(p, d.dead)
		return
	}
	p.req = m
	if err := d.rawSend(m); err != nil {
		d.recover(err)
	}
}

func (d *Driver) resolve(p *pendingReply, err error) {
	p.resolved = true
	p.err = err
}

// fail marks the session dead and resolves every pending reply with the
// fatal error. Later requests resolve immediately with the same error.
func (d *Driver) fail(err error) {
	if d.dead == nil {
		d.dead = err
	}
	for seq, p := range d.pending {
		if !p.resolved {
			d.resolve(p, d.dead)
		}
		delete(d.pending, seq)
	}
}

// waitFor pumps the connection until p resolves. A nil return means p is
// resolved (possibly with an error recorded in it); a non-nil return is a
// transient condition — corrupt frame, orphan reply — that leaves p in
// flight.
func (d *Driver) waitFor(p *pendingReply) error {
	for !p.resolved {
		if d.dead != nil {
			d.resolve(p, d.dead)
			return nil
		}
		m, err := d.recvMsg()
		if err != nil {
			if errors.Is(err, errRecovered) {
				continue // recovery may have resolved p; loop rechecks
			}
			if d.dead != nil {
				continue // fail() already resolved p; loop exits
			}
			return err
		}
		if err := d.dispatch(m, p); err != nil {
			return err
		}
	}
	return nil
}

// dispatch routes one controller message through the pending table.
// waiting is the entry the caller is blocked on: controller-level errors
// are not seq-addressed, so they resolve it — matching v1, where errors
// surfaced on the blocked operation.
func (d *Driver) dispatch(m proto.Msg, waiting *pendingReply) error {
	switch m := m.(type) {
	case *proto.GetResult:
		return d.deliver(m.Seq, m.Kind(), func(p *pendingReply) { p.data = m.Data })
	case *proto.BarrierDone:
		// A resolved barrier (or checkpoint) carries the controller's safe
		// applied count: journal entries at or below it can never need
		// resending on any reattach, so they are released.
		d.truncateJournal(m.Applied)
		if m.Err != "" {
			// A checkpoint that failed to commit (a worker's durable Save
			// errored). The previous checkpoint stays authoritative; the
			// caller may simply retry.
			err := fmt.Errorf("%w: %s", ErrCheckpointFailed, m.Err)
			return d.deliver(m.Seq, m.Kind(), func(p *pendingReply) { p.err = err })
		}
		return d.deliver(m.Seq, m.Kind(), func(*pendingReply) {})
	case *proto.LoopDone:
		return d.deliver(m.Seq, m.Kind(), func(p *pendingReply) {
			p.iters, p.lastValue, p.loopErr = m.Iters, m.LastValue, m.Err
		})
	case *proto.ErrorMsg:
		// The entry stays in the table as a resolved tombstone: if the
		// controller later answers the request anyway, the reply is
		// swallowed instead of surfacing as an orphan.
		d.resolve(waiting, fmt.Errorf("driver: controller error: %s", m.Text))
		return nil
	case *proto.Shutdown:
		d.fail(fmt.Errorf("driver: controller shut down"))
		return nil
	default:
		return fmt.Errorf("driver: unexpected %s from controller", m.Kind())
	}
}

// deliver resolves the table entry for seq. A reply with no entry is an
// orphan — the controller answered a request this session never made (or
// already consumed), which v1 silently dropped and v2 surfaces.
func (d *Driver) deliver(seq uint64, kind proto.MsgKind, fill func(*pendingReply)) error {
	p := d.pending[seq]
	if p == nil {
		return fmt.Errorf("driver: orphan %s for seq %d (no pending request)", kind, seq)
	}
	delete(d.pending, seq)
	if p.resolved {
		return nil // tombstone: the request already failed; drop the late reply
	}
	fill(p)
	p.resolved = true
	return nil
}
