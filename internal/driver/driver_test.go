package driver_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"nimbus/internal/controller"
	"nimbus/internal/driver"
	"nimbus/internal/durable"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
	"nimbus/internal/worker"
)

const (
	fnDouble ids.FunctionID = fn.FirstAppFunc + iota
	fnSum
)

// startHarness runs a controller and n workers over the in-memory
// transport and returns a connected driver.
func startHarness(t *testing.T, n int) *driver.Driver {
	t.Helper()
	reg := fn.NewRegistry()
	reg.MustRegister(fnDouble, "test/double", func(c *fn.Ctx) error {
		in := params.NewDecoder(params.Blob(c.Read(0))).Floats()
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = 2 * v
		}
		c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
		return nil
	})
	reg.MustRegister(fnSum, "test/sum", func(c *fn.Ctx) error {
		sum := 0.0
		for i := 0; i < c.NumReads(); i++ {
			for _, v := range params.NewDecoder(params.Blob(c.Read(i))).Floats() {
				sum += v
			}
		}
		c.SetWrite(0, params.NewEncoder(16).Floats([]float64{sum}).Blob())
		return nil
	})

	const addr = "drivertest/controller"
	tr := transport.NewMem(0)
	dur := durable.NewMem()
	ctrl := controller.New(controller.Config{
		ControlAddr: addr,
		Transport:   tr,
		Logf:        t.Logf,
	})
	if err := ctrl.Start(); err != nil {
		t.Fatalf("controller: %v", err)
	}
	var workers []*worker.Worker
	for i := 0; i < n; i++ {
		w := worker.New(worker.Config{
			ControlAddr: addr,
			DataAddr:    fmt.Sprintf("drivertest/data/%d", i),
			Transport:   tr,
			Slots:       4,
			Registry:    reg,
			Durable:     dur,
			Logf:        t.Logf,
		})
		if err := w.Start(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers = append(workers, w)
	}
	t.Cleanup(func() {
		ctrl.Stop()
		for _, w := range workers {
			w.Stop()
		}
	})

	d, err := driver.Connect(tr, addr, "driver-test")
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestSubmitGetRoundTrip covers the basic driver session: define, put,
// submit, synchronized get.
func TestSubmitGetRoundTrip(t *testing.T) {
	d := startHarness(t, 2)
	const parts = 4
	x, err := d.DefineVariable("x", parts)
	if err != nil {
		t.Fatalf("define: %v", err)
	}
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p + 1)}); err != nil {
			t.Fatalf("put %d: %v", p, err)
		}
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := d.Submit(fnSum, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatalf("submit sum: %v", err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	// 2*(1+2+3+4) = 20.
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("sum = %v, want [20]", got)
	}
	// Raw Get of one partition decodes through the params framing.
	raw, err := d.Get(x, 2)
	if err != nil {
		t.Fatalf("raw get: %v", err)
	}
	vals := params.NewDecoder(params.Blob(raw)).Floats()
	if len(vals) != 1 || vals[0] != 6 {
		t.Fatalf("x[2] = %v, want [6]", vals)
	}
}

// TestTemplateBlockRoundTrip covers the basic-block API: record,
// instantiate repeatedly, barrier.
func TestTemplateBlockRoundTrip(t *testing.T) {
	d := startHarness(t, 2)
	const parts = 4
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSum, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	want := float64(2 * parts)
	for i := 0; i < 3; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatalf("instantiate %d: %v", i, err)
		}
		want *= 2
		got, err := d.GetFloats(sum, 0)
		if err != nil || len(got) != 1 || got[0] != want {
			t.Fatalf("iteration %d: sum = %v (err %v), want [%v]", i, got, err, want)
		}
	}
}

// TestPerTaskParams covers SubmitPerTask (distinct parameters per task)
// outside templates.
func TestPerTaskParams(t *testing.T) {
	d := startHarness(t, 2)
	const parts = 3
	x := d.MustVar("x", parts)
	perTask := make([]params.Blob, parts)
	for p := range perTask {
		perTask[p] = params.NewEncoder(16).Floats([]float64{float64(10 * (p + 1))}).Blob()
	}
	// FuncSim carries its payload through: use the double function over
	// put data instead, then overwrite with per-task creates via Put.
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SubmitPerTask(fnDouble, parts, perTask, x.Read(), x.Write()); err != nil {
		t.Fatalf("submit per-task: %v", err)
	}
	got, err := d.GetFloats(x, 2)
	if err != nil || len(got) != 1 || got[0] != 4 {
		t.Fatalf("x[2] = %v (err %v), want [4]", got, err)
	}
}

// TestControllerErrorSurfaced: controller errors reach the driver on the
// next synchronous operation instead of wedging the session.
func TestControllerErrorSurfaced(t *testing.T) {
	d := startHarness(t, 2)
	if err := d.Instantiate("missing"); err != nil {
		t.Fatal(err)
	}
	err := d.Barrier()
	if err == nil || !strings.Contains(err.Error(), "unknown template") {
		t.Fatalf("barrier error = %v, want unknown-template", err)
	}
}

// TestEmptyGet: reading a never-written partition returns empty data, and
// GetFloats maps it to nil.
func TestEmptyGet(t *testing.T) {
	d := startHarness(t, 1)
	x := d.MustVar("x", 2)
	got, err := d.GetFloats(x, 1)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got != nil {
		t.Fatalf("unwritten partition = %v, want nil", got)
	}
}

// ---------------------------------------------------------------------------
// v2 reply-table tests against a scripted fake controller: the fake owns
// the server side of the connection, so tests control reply order, inject
// orphan replies and corrupt frames, and script admission behavior.

// fakeController is the server end of one driver connection.
type fakeController struct {
	t    *testing.T
	conn transport.Conn
}

// startFake listens on a fresh Mem transport, admits one driver as job 1,
// and returns both ends.
func startFake(t *testing.T) (*fakeController, *driver.Driver) {
	t.Helper()
	tr := transport.NewMem(0)
	lis, err := tr.Listen("fake/controller")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	f := &fakeController{t: t}
	accepted := make(chan error, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			accepted <- err
			return
		}
		f.conn = conn
		if _, ok := f.recv().(*proto.RegisterDriver); !ok {
			accepted <- fmt.Errorf("handshake was not RegisterDriver")
			return
		}
		f.reply(&proto.RegisterDriverAck{Job: 1})
		accepted <- nil
	}()
	d, err := driver.Connect(tr, "fake/controller", "fake-test")
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	if err := <-accepted; err != nil {
		t.Fatalf("fake accept: %v", err)
	}
	t.Cleanup(func() { f.conn.Close(); lis.Close() })
	return f, d
}

// recv decodes the next driver frame (single message).
func (f *fakeController) recv() proto.Msg {
	f.t.Helper()
	raw, err := f.conn.Recv()
	if err != nil {
		f.t.Fatalf("fake recv: %v", err)
	}
	m, err := proto.Unmarshal(raw)
	if err != nil {
		f.t.Fatalf("fake decode: %v", err)
	}
	return m
}

// recvGet asserts the next driver message is a Get and returns its seq.
func (f *fakeController) recvGet() uint64 {
	f.t.Helper()
	m, ok := f.recv().(*proto.Get)
	if !ok {
		f.t.Fatalf("expected Get")
	}
	return m.Seq
}

func (f *fakeController) reply(m proto.Msg) {
	f.t.Helper()
	if err := f.conn.Send(proto.Marshal(m)); err != nil {
		f.t.Fatalf("fake send: %v", err)
	}
}

func floats(vals ...float64) []byte {
	return params.NewEncoder(8*len(vals) + 8).Floats(vals).Blob()
}

// TestAsyncGetsResolveOutOfOrder pins the pending-table contract: two
// GetAsyncs in flight, replies arrive in reverse order, and waiting on
// the second resolves the first along the way.
func TestAsyncGetsResolveOutOfOrder(t *testing.T) {
	f, d := startFake(t)
	x := driver.Var{ID: 1}
	f1 := d.GetFloatsAsync(x, 0)
	f2 := d.GetFloatsAsync(x, 1)
	s1, s2 := f.recvGet(), f.recvGet()
	if s1 == s2 {
		t.Fatalf("both gets used seq %d", s1)
	}
	// Answer in reverse order: f2's reply first, f1's second.
	f.reply(&proto.GetResult{Seq: s2, Data: floats(2)})
	f.reply(&proto.GetResult{Seq: s1, Data: floats(1)})

	// Waiting on f1 pumps past f2's (earlier) reply, buffering it into
	// f2's table entry instead of dropping it as v1's recvUntil did.
	got1, err := f1.Wait()
	if err != nil || len(got1) != 1 || got1[0] != 1 {
		t.Fatalf("f1 = %v (err %v), want [1]", got1, err)
	}
	if !f2.Ready() {
		t.Fatalf("f2 not resolved after f1's wait pumped past its reply")
	}
	got2, err := f2.Wait()
	if err != nil || len(got2) != 1 || got2[0] != 2 {
		t.Fatalf("f2 = %v (err %v), want [2]", got2, err)
	}
}

// TestOrphanReplySurfaces: a reply whose seq nothing waits on is an
// error (v1 silently dropped it), and the real reply still resolves the
// future afterwards.
func TestOrphanReplySurfaces(t *testing.T) {
	f, d := startFake(t)
	fut := d.GetFloatsAsync(driver.Var{ID: 1}, 0)
	seq := f.recvGet()
	f.reply(&proto.GetResult{Seq: seq + 100, Data: floats(9)}) // orphan
	f.reply(&proto.GetResult{Seq: seq, Data: floats(3)})

	if _, err := fut.Wait(); err == nil || !strings.Contains(err.Error(), "orphan") {
		t.Fatalf("orphan reply error = %v, want orphan", err)
	}
	got, err := fut.Wait() // transient error: the future is still in flight
	if err != nil || len(got) != 1 || got[0] != 3 {
		t.Fatalf("after orphan: got %v (err %v), want [3]", got, err)
	}
}

// TestCorruptFrameKeepsPendingFutures: a corrupt frame surfaces as an
// error on the in-progress wait without resolving (or desynchronizing)
// the pending futures; subsequent frames resolve them normally.
func TestCorruptFrameKeepsPendingFutures(t *testing.T) {
	f, d := startFake(t)
	x := driver.Var{ID: 1}
	f1 := d.GetFloatsAsync(x, 0)
	f2 := d.GetFloatsAsync(x, 1)
	s1, s2 := f.recvGet(), f.recvGet()
	if err := f.conn.Send([]byte{0xEE}); err != nil { // unknown kind: corrupt frame
		t.Fatal(err)
	}
	f.reply(&proto.GetResult{Seq: s1, Data: floats(1)})
	f.reply(&proto.GetResult{Seq: s2, Data: floats(2)})

	if _, err := f1.Wait(); err == nil {
		t.Fatalf("corrupt frame did not surface")
	}
	got1, err := f1.Wait()
	if err != nil || len(got1) != 1 || got1[0] != 1 {
		t.Fatalf("f1 after corrupt frame = %v (err %v), want [1]", got1, err)
	}
	got2, err := f2.Wait()
	if err != nil || len(got2) != 1 || got2[0] != 2 {
		t.Fatalf("f2 after corrupt frame = %v (err %v), want [2]", got2, err)
	}
}

// TestErrorMsgTombstone: a controller error fails the waited future, and
// the late reply for it is swallowed instead of desynchronizing later
// requests.
func TestErrorMsgTombstone(t *testing.T) {
	f, d := startFake(t)
	x := driver.Var{ID: 1}
	f1 := d.GetFloatsAsync(x, 0)
	s1 := f.recvGet()
	f.reply(&proto.ErrorMsg{Text: "boom"})
	if _, err := f1.Wait(); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("f1 error = %v, want controller boom", err)
	}

	f2 := d.GetFloatsAsync(x, 1)
	s2 := f.recvGet()
	f.reply(&proto.GetResult{Seq: s1, Data: floats(1)}) // late reply for the errored get
	f.reply(&proto.GetResult{Seq: s2, Data: floats(2)})
	got, err := f2.Wait()
	if err != nil || len(got) != 1 || got[0] != 2 {
		t.Fatalf("f2 = %v (err %v), want [2] — the tombstoned reply must be swallowed", got, err)
	}
}

// TestLoopDoneResolvesFuture: InstantiateWhileAsync round-trips the loop
// request and resolves from a LoopDone.
func TestLoopDoneResolvesFuture(t *testing.T) {
	f, d := startFake(t)
	x := driver.Var{ID: 4}
	fut := d.InstantiateWhileAsync("blk", x.AtLeast(0, 0.5), 10)
	m, ok := f.recv().(*proto.InstantiateWhile)
	if !ok {
		t.Fatalf("expected InstantiateWhile")
	}
	if m.Name != "blk" || m.MaxIters != 10 || m.Pred.Op != proto.PredGE || m.Pred.Threshold != 0.5 {
		t.Fatalf("loop request = %+v", m)
	}
	f.reply(&proto.LoopDone{Seq: m.Seq, Iters: 7, LastValue: 0.25})
	res, err := fut.Wait()
	if err != nil || res.Iters != 7 || res.LastValue != 0.25 {
		t.Fatalf("loop result = %+v (err %v), want 7 iters, 0.25", res, err)
	}
}

// TestConnectContextDeadline: admission that never acks must not block
// Connect forever.
func TestConnectContextDeadline(t *testing.T) {
	tr := transport.NewMem(0)
	lis, err := tr.Listen("fake/deaf")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		// Accept and read the handshake, then never ack.
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		conn.Recv()
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := driver.ConnectContext(ctx, tr, "fake/deaf", "deaf", 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("connect error = %v, want deadline exceeded", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("connect blocked %v past its deadline", time.Since(start))
	}
}

// TestCloseReportsJobEndSendError: when the connection is already dead,
// Close must surface that the JobEnd goodbye was never delivered.
func TestCloseReportsJobEndSendError(t *testing.T) {
	f, d := startFake(t)
	f.conn.Close() // controller side drops first
	if err := d.Close(); err == nil {
		t.Fatalf("close over a dead connection reported success")
	}
}
