package driver_test

import (
	"fmt"
	"strings"
	"testing"

	"nimbus/internal/controller"
	"nimbus/internal/driver"
	"nimbus/internal/durable"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/transport"
	"nimbus/internal/worker"
)

const (
	fnDouble ids.FunctionID = fn.FirstAppFunc + iota
	fnSum
)

// startHarness runs a controller and n workers over the in-memory
// transport and returns a connected driver.
func startHarness(t *testing.T, n int) *driver.Driver {
	t.Helper()
	reg := fn.NewRegistry()
	reg.MustRegister(fnDouble, "test/double", func(c *fn.Ctx) error {
		in := params.NewDecoder(params.Blob(c.Read(0))).Floats()
		out := make([]float64, len(in))
		for i, v := range in {
			out[i] = 2 * v
		}
		c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
		return nil
	})
	reg.MustRegister(fnSum, "test/sum", func(c *fn.Ctx) error {
		sum := 0.0
		for i := 0; i < c.NumReads(); i++ {
			for _, v := range params.NewDecoder(params.Blob(c.Read(i))).Floats() {
				sum += v
			}
		}
		c.SetWrite(0, params.NewEncoder(16).Floats([]float64{sum}).Blob())
		return nil
	})

	const addr = "drivertest/controller"
	tr := transport.NewMem(0)
	dur := durable.NewMem()
	ctrl := controller.New(controller.Config{
		ControlAddr: addr,
		Transport:   tr,
		Logf:        t.Logf,
	})
	if err := ctrl.Start(); err != nil {
		t.Fatalf("controller: %v", err)
	}
	var workers []*worker.Worker
	for i := 0; i < n; i++ {
		w := worker.New(worker.Config{
			ControlAddr: addr,
			DataAddr:    fmt.Sprintf("drivertest/data/%d", i),
			Transport:   tr,
			Slots:       4,
			Registry:    reg,
			Durable:     dur,
			Logf:        t.Logf,
		})
		if err := w.Start(); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		workers = append(workers, w)
	}
	t.Cleanup(func() {
		ctrl.Stop()
		for _, w := range workers {
			w.Stop()
		}
	})

	d, err := driver.Connect(tr, addr, "driver-test")
	if err != nil {
		t.Fatalf("connect: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// TestSubmitGetRoundTrip covers the basic driver session: define, put,
// submit, synchronized get.
func TestSubmitGetRoundTrip(t *testing.T) {
	d := startHarness(t, 2)
	const parts = 4
	x, err := d.DefineVariable("x", parts)
	if err != nil {
		t.Fatalf("define: %v", err)
	}
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p + 1)}); err != nil {
			t.Fatalf("put %d: %v", p, err)
		}
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if err := d.Submit(fnSum, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatalf("submit sum: %v", err)
	}
	got, err := d.GetFloats(sum, 0)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	// 2*(1+2+3+4) = 20.
	if len(got) != 1 || got[0] != 20 {
		t.Fatalf("sum = %v, want [20]", got)
	}
	// Raw Get of one partition decodes through the params framing.
	raw, err := d.Get(x, 2)
	if err != nil {
		t.Fatalf("raw get: %v", err)
	}
	vals := params.NewDecoder(params.Blob(raw)).Floats()
	if len(vals) != 1 || vals[0] != 6 {
		t.Fatalf("x[2] = %v, want [6]", vals)
	}
}

// TestTemplateBlockRoundTrip covers the basic-block API: record,
// instantiate repeatedly, barrier.
func TestTemplateBlockRoundTrip(t *testing.T) {
	d := startHarness(t, 2)
	const parts = 4
	x := d.MustVar("x", parts)
	sum := d.MustVar("sum", 1)
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.BeginTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnDouble, parts, nil, x.Read(), x.Write()); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(fnSum, 1, nil, x.ReadGrouped(), sum.WriteShared()); err != nil {
		t.Fatal(err)
	}
	if err := d.EndTemplate("blk"); err != nil {
		t.Fatal(err)
	}
	if err := d.Barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
	want := float64(2 * parts)
	for i := 0; i < 3; i++ {
		if err := d.Instantiate("blk"); err != nil {
			t.Fatalf("instantiate %d: %v", i, err)
		}
		want *= 2
		got, err := d.GetFloats(sum, 0)
		if err != nil || len(got) != 1 || got[0] != want {
			t.Fatalf("iteration %d: sum = %v (err %v), want [%v]", i, got, err, want)
		}
	}
}

// TestPerTaskParams covers SubmitPerTask (distinct parameters per task)
// outside templates.
func TestPerTaskParams(t *testing.T) {
	d := startHarness(t, 2)
	const parts = 3
	x := d.MustVar("x", parts)
	perTask := make([]params.Blob, parts)
	for p := range perTask {
		perTask[p] = params.NewEncoder(16).Floats([]float64{float64(10 * (p + 1))}).Blob()
	}
	// FuncSim carries its payload through: use the double function over
	// put data instead, then overwrite with per-task creates via Put.
	for p := 0; p < parts; p++ {
		if err := d.PutFloats(x, p, []float64{float64(p)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.SubmitPerTask(fnDouble, parts, perTask, x.Read(), x.Write()); err != nil {
		t.Fatalf("submit per-task: %v", err)
	}
	got, err := d.GetFloats(x, 2)
	if err != nil || len(got) != 1 || got[0] != 4 {
		t.Fatalf("x[2] = %v (err %v), want [4]", got, err)
	}
}

// TestControllerErrorSurfaced: controller errors reach the driver on the
// next synchronous operation instead of wedging the session.
func TestControllerErrorSurfaced(t *testing.T) {
	d := startHarness(t, 2)
	if err := d.Instantiate("missing"); err != nil {
		t.Fatal(err)
	}
	err := d.Barrier()
	if err == nil || !strings.Contains(err.Error(), "unknown template") {
		t.Fatalf("barrier error = %v, want unknown-template", err)
	}
}

// TestEmptyGet: reading a never-written partition returns empty data, and
// GetFloats maps it to nil.
func TestEmptyGet(t *testing.T) {
	d := startHarness(t, 1)
	x := d.MustVar("x", 2)
	got, err := d.GetFloats(x, 1)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if got != nil {
		t.Fatalf("unwritten partition = %v, want nil", got)
	}
}
