package stream

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"nimbus/internal/proto"
)

func chunk(xfer uint64, seq uint32, last bool, total uint64, raw []byte) *proto.DataChunk {
	return &proto.DataChunk{Xfer: xfer, Seq: seq, Last: last, Total: total, Raw: raw}
}

func TestReassembleInOrder(t *testing.T) {
	data := make([]byte, 1000)
	for i := range data {
		data[i] = byte(i)
	}
	ra := &Reassembler{Xfer: 7, Total: 1000, ChunkSize: 400}
	var got []byte
	for off := 0; off < len(data); off += 400 {
		end := off + 400
		if end > len(data) {
			end = len(data)
		}
		raw, err := ra.Accept(chunk(7, uint32(off/400), end == len(data), 1000, data[off:end]))
		if err != nil {
			t.Fatalf("chunk at %d: %v", off, err)
		}
		got = append(got, raw...)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("reassembled bytes differ from input")
	}
	if ra.Got() != 1000 {
		t.Fatalf("Got() = %d, want 1000", ra.Got())
	}
}

func TestReassembleCompressed(t *testing.T) {
	data := bytes.Repeat([]byte("nimbus "), 4096)
	comp := Compress(data)
	if comp == nil {
		t.Fatal("repetitive data should compress")
	}
	if len(comp) >= len(data) {
		t.Fatalf("compressed %d >= raw %d", len(comp), len(data))
	}
	ra := &Reassembler{Xfer: 1, Total: uint64(len(data)), ChunkSize: len(data)}
	c := chunk(1, 0, true, uint64(len(data)), comp)
	c.Flags = proto.ChunkCompressed
	raw, err := ra.Accept(c)
	if err != nil {
		t.Fatalf("accept compressed: %v", err)
	}
	if !bytes.Equal(raw, data) {
		t.Fatal("inflated bytes differ from input")
	}
}

func TestCompressIncompressible(t *testing.T) {
	data := make([]byte, 4096)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(data)
	if Compress(data) != nil {
		t.Fatal("random data should be reported incompressible")
	}
}

// Out-of-order Seq (a gap) must abort the transfer — on an ordered
// connection it can only mean sender or frame corruption.
func TestHostileChunkSeqGap(t *testing.T) {
	ra := &Reassembler{Xfer: 1, Total: 100, ChunkSize: 50}
	if _, err := ra.Accept(chunk(1, 1, false, 100, make([]byte, 50))); err == nil || errors.Is(err, ErrDup) {
		t.Fatalf("sequence gap not rejected: %v", err)
	}
}

// Duplicate Seq is dropped silently (ErrDup): a sender that redialed
// mid-transfer replays the prefix the receiver already landed.
func TestHostileChunkDupSeq(t *testing.T) {
	ra := &Reassembler{Xfer: 1, Total: 100, ChunkSize: 50}
	if _, err := ra.Accept(chunk(1, 0, false, 100, make([]byte, 50))); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	if _, err := ra.Accept(chunk(1, 0, false, 100, make([]byte, 50))); !errors.Is(err, ErrDup) {
		t.Fatalf("duplicate chunk: got %v, want ErrDup", err)
	}
	// The duplicate must not advance state: the true next chunk lands.
	if _, err := ra.Accept(chunk(1, 1, true, 100, make([]byte, 50))); err != nil {
		t.Fatalf("chunk after duplicate: %v", err)
	}
}

// Truncated Raw: a Last chunk that closes the transfer short of Total.
func TestHostileChunkTruncated(t *testing.T) {
	ra := &Reassembler{Xfer: 1, Total: 100, ChunkSize: 100}
	if _, err := ra.Accept(chunk(1, 0, true, 100, make([]byte, 40))); err == nil {
		t.Fatal("short final chunk not rejected")
	}
}

// Corrupt compressed Raw must error, not panic or return garbage.
func TestHostileChunkCorruptCompressed(t *testing.T) {
	ra := &Reassembler{Xfer: 1, Total: 100, ChunkSize: 100}
	c := chunk(1, 0, true, 100, []byte{0xff, 0x00, 0xab, 0x13})
	c.Flags = proto.ChunkCompressed
	if _, err := ra.Accept(c); err == nil {
		t.Fatal("corrupt flate stream not rejected")
	}
}

// A compressed chunk must not inflate past the chunk-size bound.
func TestHostileChunkInflateBomb(t *testing.T) {
	comp := Compress(make([]byte, 1<<20)) // zeros compress absurdly well
	if comp == nil {
		t.Fatal("zeros should compress")
	}
	ra := &Reassembler{Xfer: 1, Total: 1 << 20, ChunkSize: 1 << 10}
	c := chunk(1, 0, false, 1<<20, comp)
	c.Flags = proto.ChunkCompressed
	if _, err := ra.Accept(c); err == nil {
		t.Fatal("inflate past chunk size not rejected")
	}
}

// Chunks overflowing the declared Total must abort.
func TestHostileChunkTotalOverflow(t *testing.T) {
	ra := &Reassembler{Xfer: 1, Total: 60, ChunkSize: 50}
	if _, err := ra.Accept(chunk(1, 0, false, 60, make([]byte, 50))); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	if _, err := ra.Accept(chunk(1, 1, false, 60, make([]byte, 50))); err == nil {
		t.Fatal("overflow past Total not rejected")
	}
}

// A mid-transfer change of the declared Total is a protocol violation.
func TestHostileChunkTotalFlip(t *testing.T) {
	ra := &Reassembler{Xfer: 1, Total: 100, ChunkSize: 50}
	if _, err := ra.Accept(chunk(1, 0, false, 100, make([]byte, 50))); err != nil {
		t.Fatalf("first chunk: %v", err)
	}
	if _, err := ra.Accept(chunk(1, 1, false, 999, make([]byte, 50))); err == nil {
		t.Fatal("total flip not rejected")
	}
}

// An uncompressed chunk larger than the negotiated chunk size is refused
// (it would bypass the per-chunk memory bound credits account in).
func TestHostileChunkOversized(t *testing.T) {
	ra := &Reassembler{Xfer: 1, Total: 1 << 20, ChunkSize: 1 << 10}
	if _, err := ra.Accept(chunk(1, 0, false, 1<<20, make([]byte, 1<<16))); err == nil {
		t.Fatal("oversized chunk not rejected")
	}
}
