// Package stream implements the chunked data-plane transfer discipline
// shared by the worker↔worker push path and the worker→controller fetch
// path: slicing large objects into fixed-size chunks, optional per-chunk
// flate compression, and strict in-order reassembly with hostile-input
// validation.
//
// The protocol is deliberately minimal. A transfer is a sender-allocated
// Xfer ID plus a run of DataChunk frames with consecutive Seq numbers; the
// final chunk carries Last. Chunks are sent in order on an ordered
// connection, so the receiver accepts exactly the next sequence number,
// drops duplicates silently (a sender that redialed mid-transfer restarts
// from zero), and treats a gap as corruption. Flow control (DataCredit)
// and spill policy live with the endpoints; this package only validates
// and decodes.
package stream

import (
	"bytes"
	"compress/flate"
	"errors"
	"fmt"
	"io"
	"sync"

	"nimbus/internal/proto"
)

// DefaultChunkSize is the default transfer chunk size. It matches the
// proto buffer pool's maximum pooled capacity, so every chunk frame the
// sender marshals comes from — and returns to — the pool.
const DefaultChunkSize = 256 << 10

// InitWindow is the number of chunks a sender may have in flight before
// the first DataCredit arrives: every transfer starts with this implicit
// grant, so short transfers never wait on a credit round trip.
const InitWindow = 8

// MaxWindow clamps a sender's accumulated credit. A hostile or buggy
// receiver granting absurd credit (uint32 overflow games) cannot open the
// window beyond this.
const MaxWindow = 1024

// ErrDup marks a chunk already landed (a redial replays a transfer's
// prefix); the receiver drops it silently.
var ErrDup = errors.New("stream: duplicate chunk")

var flateWriters = sync.Pool{New: func() any {
	w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
	return w
}}

// Compress flate-compresses raw, returning nil if the result is not
// smaller than the input (incompressible data rides uncompressed — paying
// inflate cost for zero byte savings helps no one).
func Compress(raw []byte) []byte {
	var buf bytes.Buffer
	buf.Grow(len(raw) / 2)
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(&buf)
	if _, err := fw.Write(raw); err != nil {
		flateWriters.Put(fw)
		return nil
	}
	if err := fw.Close(); err != nil {
		flateWriters.Put(fw)
		return nil
	}
	flateWriters.Put(fw)
	if buf.Len() >= len(raw) {
		return nil
	}
	return buf.Bytes()
}

// Decompress inflates raw, refusing to produce more than limit bytes —
// the chunk-size bound the sender committed to — so a hostile compressed
// chunk cannot balloon receiver memory.
func Decompress(raw []byte, limit int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(raw))
	out := make([]byte, 0, limit)
	buf := make([]byte, 32<<10)
	for {
		n, err := fr.Read(buf)
		if n > 0 {
			if len(out)+n > limit {
				return nil, fmt.Errorf("stream: inflated chunk exceeds %d bytes", limit)
			}
			out = append(out, buf[:n]...)
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("stream: inflate: %w", err)
		}
	}
}

// Reassembler validates one transfer's chunk run. It tracks ordering and
// size only; the caller owns accumulation (RAM buffer or spill file), so
// the same validation serves both the worker's budgeted receive path and
// the controller's fetch-reply path.
type Reassembler struct {
	Xfer  uint64
	Total uint64
	// ChunkSize bounds each chunk's decoded size (zero means
	// DefaultChunkSize); decompression refuses to inflate past it.
	ChunkSize int

	next uint32
	got  uint64
}

// Got reports the bytes landed so far.
func (ra *Reassembler) Got() uint64 { return ra.got }

// Accept validates chunk c and returns its decoded bytes for the caller
// to append. A nil result with ErrDup means the chunk was already landed
// (drop silently); any other error is a protocol violation and the caller
// must abort the transfer.
func (ra *Reassembler) Accept(c *proto.DataChunk) ([]byte, error) {
	if c.Xfer != ra.Xfer {
		return nil, fmt.Errorf("stream: chunk for transfer %d on reassembler %d", c.Xfer, ra.Xfer)
	}
	if c.Seq < ra.next {
		return nil, ErrDup
	}
	if c.Seq > ra.next {
		return nil, fmt.Errorf("stream: sequence gap: got chunk %d, want %d", c.Seq, ra.next)
	}
	if c.Total != ra.Total {
		return nil, fmt.Errorf("stream: chunk total %d disagrees with transfer total %d", c.Total, ra.Total)
	}
	limit := ra.ChunkSize
	if limit <= 0 {
		limit = DefaultChunkSize
	}
	raw := c.Raw
	if c.Flags&proto.ChunkCompressed != 0 {
		var err error
		raw, err = Decompress(raw, limit)
		if err != nil {
			return nil, err
		}
	} else if len(raw) > limit {
		return nil, fmt.Errorf("stream: chunk of %d bytes exceeds chunk size %d", len(raw), limit)
	}
	if ra.got+uint64(len(raw)) > ra.Total {
		return nil, fmt.Errorf("stream: transfer overflows declared total %d", ra.Total)
	}
	if c.Last && ra.got+uint64(len(raw)) != ra.Total {
		return nil, fmt.Errorf("stream: last chunk closes transfer at %d of %d bytes",
			ra.got+uint64(len(raw)), ra.Total)
	}
	ra.next++
	ra.got += uint64(len(raw))
	return raw, nil
}
