package fn

import (
	"testing"
	"time"

	"nimbus/internal/ids"
)

func TestRegistry(t *testing.T) {
	r := NewRegistry()
	if r.Lookup(FuncSim) == nil || r.Lookup(FuncNop) == nil {
		t.Fatal("built-ins missing")
	}
	const id ids.FunctionID = FirstAppFunc
	called := false
	if err := r.Register(id, "test/f", func(*Ctx) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(id, "test/other", nil); err == nil {
		t.Fatal("duplicate id must fail")
	}
	if err := r.Register(id+1, "test/f", nil); err == nil {
		t.Fatal("duplicate name must fail")
	}
	if r.ID("test/f") != id || r.Name(id) != "test/f" {
		t.Fatal("name/id lookup broken")
	}
	if err := r.Lookup(id)(nil); err != nil || !called {
		t.Fatal("lookup did not return the function")
	}
}

func TestCtxReadWrite(t *testing.T) {
	reads := [][]byte{{1}, {2}}
	writes := [][]byte{{3}}
	c := NewCtx(1, nil, reads, writes)
	if c.NumReads() != 2 || c.Read(1)[0] != 2 {
		t.Fatal("reads broken")
	}
	if c.NumWrites() != 1 || c.WriteBuf(0)[0] != 3 {
		t.Fatal("write buf broken")
	}
	// In-place mutation is visible without SetWrite.
	c.WriteBuf(0)[0] = 9
	data, replaced := c.Result(0)
	if replaced || data[0] != 9 {
		t.Fatal("in-place mutation lost")
	}
	c.SetWrite(0, []byte{7, 7})
	data, replaced = c.Result(0)
	if !replaced || len(data) != 2 {
		t.Fatal("SetWrite lost")
	}
}

func TestSimSleeps(t *testing.T) {
	c := NewCtx(1, SimParams(20*time.Millisecond), nil, nil)
	start := time.Now()
	if err := Sim(c); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("sim returned after %v", d)
	}
}

func TestSimParamsRoundTrip(t *testing.T) {
	if got := SimDuration(SimParams(3 * time.Second)); got != 3*time.Second {
		t.Fatalf("duration = %v", got)
	}
}
