// Package fn defines the application function interface and registry.
//
// Task commands name a FunctionID; workers resolve it through a Registry
// shared (by construction, at process start) between the application and
// every worker. Functions receive a Ctx exposing the task's read buffers,
// write buffers and parameter blob. Two built-in functions support the
// scaling experiments: Sim occupies an executor slot for a parameterized
// duration without burning CPU (so a hundred simulated workers can share
// one machine), and Spin busy-waits for callers that want real occupancy.
package fn

import (
	"fmt"
	"sync"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// Ctx is the execution context handed to an application function.
type Ctx struct {
	// Worker identifies the executing worker.
	Worker ids.WorkerID
	// Params is the task's parameter blob.
	Params params.Blob

	reads  [][]byte
	writes [][]byte
	// wrote tracks which write buffers the function replaced.
	wrote []bool
}

// NewCtx builds a context; the worker runtime uses it.
func NewCtx(worker ids.WorkerID, p params.Blob, reads, writes [][]byte) *Ctx {
	c := &Ctx{}
	c.Reset(worker, p, reads, writes)
	return c
}

// Reset re-initializes a context in place, reusing its tracking storage,
// so worker runtimes can pool Ctx values across tasks. Functions must not
// retain the context (or its buffers) after returning.
func (c *Ctx) Reset(worker ids.WorkerID, p params.Blob, reads, writes [][]byte) {
	c.Worker = worker
	c.Params = p
	c.reads = reads
	c.writes = writes
	if n := len(writes); cap(c.wrote) < n {
		c.wrote = make([]bool, n)
	} else {
		c.wrote = c.wrote[:n]
		for i := range c.wrote {
			c.wrote[i] = false
		}
	}
}

// NumReads returns the number of read objects.
func (c *Ctx) NumReads() int { return len(c.reads) }

// Read returns read object i's contents. The buffer must not be mutated.
func (c *Ctx) Read(i int) []byte { return c.reads[i] }

// NumWrites returns the number of write objects.
func (c *Ctx) NumWrites() int { return len(c.writes) }

// WriteBuf returns write object i's current contents for in-place
// mutation (Nimbus objects are mutable, paper §3.3).
func (c *Ctx) WriteBuf(i int) []byte { return c.writes[i] }

// SetWrite replaces write object i's contents.
func (c *Ctx) SetWrite(i int, data []byte) {
	c.writes[i] = data
	c.wrote[i] = true
}

// Result returns write object i's final contents and whether it was
// replaced (as opposed to mutated in place).
func (c *Ctx) Result(i int) ([]byte, bool) { return c.writes[i], c.wrote[i] }

// Func is an application function.
type Func func(*Ctx) error

// Registry maps function IDs to implementations. Registration happens at
// process start; lookups are concurrent.
type Registry struct {
	mu     sync.RWMutex
	byID   map[ids.FunctionID]Func
	byName map[string]ids.FunctionID
	names  map[ids.FunctionID]string
}

// NewRegistry returns a registry preloaded with the built-in functions.
func NewRegistry() *Registry {
	r := &Registry{
		byID:   make(map[ids.FunctionID]Func),
		byName: make(map[string]ids.FunctionID),
		names:  make(map[ids.FunctionID]string),
	}
	r.MustRegister(FuncSim, "builtin/sim", Sim)
	r.MustRegister(FuncSpin, "builtin/spin", Spin)
	r.MustRegister(FuncNop, "builtin/nop", func(*Ctx) error { return nil })
	return r
}

// Built-in function IDs. Application IDs start at FirstAppFunc.
const (
	FuncSim ids.FunctionID = iota + 1
	FuncSpin
	FuncNop
	// FirstAppFunc is the first ID available to applications.
	FirstAppFunc ids.FunctionID = 100
)

// Register adds a function under the given ID and name.
func (r *Registry) Register(id ids.FunctionID, name string, f Func) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byID[id]; ok {
		return fmt.Errorf("fn: function %s already registered", id)
	}
	if _, ok := r.byName[name]; ok {
		return fmt.Errorf("fn: function name %q already registered", name)
	}
	r.byID[id] = f
	r.byName[name] = id
	r.names[id] = name
	return nil
}

// MustRegister is Register that panics on conflict (init-time use).
func (r *Registry) MustRegister(id ids.FunctionID, name string, f Func) {
	if err := r.Register(id, name, f); err != nil {
		panic(err)
	}
}

// Lookup returns the function for id, or nil.
func (r *Registry) Lookup(id ids.FunctionID) Func {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byID[id]
}

// Name returns the registered name of id.
func (r *Registry) Name(id ids.FunctionID) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.names[id]
}

// ID returns the function ID registered under name, or 0.
func (r *Registry) ID(name string) ids.FunctionID {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.byName[name]
}

// SimParams encodes a Sim/Spin task's duration.
func SimParams(d time.Duration) params.Blob {
	return params.NewEncoder(16).Duration(d).Blob()
}

// SimDuration decodes a Sim/Spin task's duration.
func SimDuration(p params.Blob) time.Duration {
	return params.NewDecoder(p).Duration()
}

// Sim models a computation of the parameterized duration by sleeping: the
// executor slot stays occupied but the CPU is free, letting many simulated
// workers share one machine. Scaling experiments calibrate the duration to
// the paper's workloads (≈5ms per LR task).
func Sim(c *Ctx) error {
	if d := SimDuration(c.Params); d > 0 {
		time.Sleep(d)
	}
	return nil
}

// Spin busy-waits for the parameterized duration, modeling a computation
// that really occupies a core. Use only with few concurrent workers.
func Spin(c *Ctx) error {
	d := SimDuration(c.Params)
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
	return nil
}
