package chaos

import (
	"sync"
	"time"

	"nimbus/internal/durable"
	"nimbus/internal/ids"
)

// FaultStore wraps a durable.Store with runtime-controlled fault
// injection for checkpoint error paths: failed saves (ENOSPC), torn
// writes (the object lands truncated, so a later Load reports it
// corrupt) and slow fsync (each Save stalls).
type FaultStore struct {
	inner durable.Store

	mu        sync.Mutex
	saveErr   error
	tornBytes int
	saveDelay time.Duration
	loadErr   error
	faults    int
}

// NewFaultStore wraps inner. With no faults armed it is transparent.
func NewFaultStore(inner durable.Store) *FaultStore {
	return &FaultStore{inner: inner}
}

// FailSaves makes every Save return err (e.g. a synthetic ENOSPC)
// without writing anything.
func (s *FaultStore) FailSaves(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saveErr = err
}

// TearSaves makes every Save persist only the first n bytes of the
// object but still report success — a torn write the next Load trips
// over.
func (s *FaultStore) TearSaves(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tornBytes = n
}

// SlowSaves stalls every Save for d, modelling a slow fsync.
func (s *FaultStore) SlowSaves(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saveDelay = d
}

// FailLoads makes every Load return err.
func (s *FaultStore) FailLoads(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.loadErr = err
}

// Heal disarms all faults.
func (s *FaultStore) Heal() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.saveErr, s.loadErr = nil, nil
	s.tornBytes = 0
	s.saveDelay = 0
}

// Faults counts operations a fault perturbed.
func (s *FaultStore) Faults() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.faults
}

// Save implements durable.Store.
func (s *FaultStore) Save(job ids.JobID, ckpt uint64, logical ids.LogicalID, version uint64, data []byte) error {
	s.mu.Lock()
	errSave, torn, delay := s.saveErr, s.tornBytes, s.saveDelay
	if errSave != nil || torn > 0 || delay > 0 {
		s.faults++
	}
	s.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if errSave != nil {
		return errSave
	}
	if torn > 0 && torn < len(data) {
		data = data[:torn]
	}
	return s.inner.Save(job, ckpt, logical, version, data)
}

// Load implements durable.Store.
func (s *FaultStore) Load(job ids.JobID, ckpt uint64, logical ids.LogicalID) ([]byte, uint64, error) {
	s.mu.Lock()
	errLoad := s.loadErr
	if errLoad != nil {
		s.faults++
	}
	s.mu.Unlock()
	if errLoad != nil {
		return nil, 0, errLoad
	}
	return s.inner.Load(job, ckpt, logical)
}
