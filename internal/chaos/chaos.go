// Package chaos is a seeded, deterministic fault-injection layer for
// Nimbus tests. It wraps any transport.Transport and perturbs traffic on
// selected listen addresses according to per-link fault schedules — drop,
// delay, duplicate, reorder, byte-truncate — plus runtime-controlled
// half-open partitions, blackholes and connection severing.
//
// Determinism contract: whether fault f fires for the n-th frame sent on
// a link is a pure function of (seed, listen address, direction, fault
// tag, n). It does not depend on wall-clock time, goroutine scheduling or
// the frame's bytes, so a test that replays the same message sequence
// under the same seed sees the identical fault schedule every run.
// ScheduleDigest folds a prefix of every rule's schedule into one value
// so tests can assert two runs (or two engines) share a schedule before
// trusting a reproduction.
//
// Wrapped connections deliberately do NOT implement transport.OwnedSender:
// transport.SendOwned falls back to the copying Send path, so pooled
// buffers stay owned by the caller even when chaos drops or duplicates a
// frame.
package chaos

import (
	"sync"
	"time"

	"nimbus/internal/transport"
)

// Direction labels one flow of a link relative to its listener.
type Direction byte

const (
	// ToListener covers frames sent by the dialing side (worker/driver →
	// controller, or data sender → receiving worker).
	ToListener Direction = 'd'
	// FromListener covers frames sent by the accepting side.
	FromListener Direction = 'l'
)

// Rule programs the fault schedule for every link dialed to one listen
// address. Probabilities are in [0,1] and evaluated per frame, in the
// order drop, duplicate, reorder, truncate, delay; the first that fires
// wins (a frame suffers at most one fault).
type Rule struct {
	// Addr is the listen address the rule governs.
	Addr string
	// Drop silently discards the frame.
	Drop float64
	// Dup delivers the frame twice.
	Dup float64
	// Reorder holds the frame back and emits it after the next one.
	Reorder float64
	// Truncate cuts a schedule-derived suffix off the frame, modelling a
	// torn write on the wire.
	Truncate float64
	// DelayProb stalls the link for Delay before the frame is sent.
	DelayProb float64
	Delay     time.Duration
}

type action int

const (
	actNone action = iota
	actDrop
	actDup
	actReorder
	actTruncate
	actDelay
)

// Transport wraps an inner transport with fault injection. All methods
// are safe for concurrent use.
type Transport struct {
	inner transport.Transport
	seed  uint64
	rules map[string]Rule
	order []string // rule addresses in insertion order, for the digest

	mu      sync.Mutex
	blocked map[string]blockState
	conns   map[string][]*faultConn
}

type blockState struct {
	toListener   bool
	fromListener bool
}

// New wraps inner with the given seed and per-address rules. Addresses
// without a rule pass traffic through untouched (but still honour
// partitions and Sever).
func New(inner transport.Transport, seed uint64, rules ...Rule) *Transport {
	t := &Transport{
		inner:   inner,
		seed:    seed,
		rules:   make(map[string]Rule, len(rules)),
		blocked: make(map[string]blockState),
		conns:   make(map[string][]*faultConn),
	}
	for _, r := range rules {
		if _, dup := t.rules[r.Addr]; !dup {
			t.order = append(t.order, r.Addr)
		}
		t.rules[r.Addr] = r
	}
	return t
}

// Seed returns the schedule seed.
func (t *Transport) Seed() uint64 { return t.seed }

// Dial implements transport.Transport.
func (t *Transport) Dial(addr string) (transport.Conn, error) {
	c, err := t.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return t.wrap(c, addr, ToListener), nil
}

// Listen implements transport.Transport.
func (t *Transport) Listen(addr string) (transport.Listener, error) {
	l, err := t.inner.Listen(addr)
	if err != nil {
		return nil, err
	}
	return &faultListener{t: t, inner: l, addr: addr}, nil
}

func (t *Transport) wrap(c transport.Conn, addr string, dir Direction) *faultConn {
	fc := &faultConn{t: t, inner: c, addr: addr, dir: dir}
	t.mu.Lock()
	t.conns[addr] = append(t.conns[addr], fc)
	t.mu.Unlock()
	return fc
}

func (t *Transport) untrack(fc *faultConn) {
	t.mu.Lock()
	defer t.mu.Unlock()
	live := t.conns[fc.addr]
	for i, c := range live {
		if c == fc {
			live[i] = live[len(live)-1]
			t.conns[fc.addr] = live[:len(live)-1]
			return
		}
	}
}

// Partition blackholes traffic on links to addr: frames in a blocked
// direction are silently discarded (the sender sees success — a half-open
// network partition, not a connection error). Blocking one direction
// models a half-open partition; blocking both is a full blackhole.
func (t *Transport) Partition(addr string, dirs ...Direction) {
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.blocked[addr]
	if len(dirs) == 0 {
		b.toListener, b.fromListener = true, true
	}
	for _, d := range dirs {
		switch d {
		case ToListener:
			b.toListener = true
		case FromListener:
			b.fromListener = true
		}
	}
	t.blocked[addr] = b
}

// Heal lifts any partition on addr.
func (t *Transport) Heal(addr string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.blocked, addr)
}

// Sever closes every live connection on addr (both sides observe a
// connection error, like a reset link). New dials proceed normally, so
// reconnect/reattach loops recover through the ordinary retry paths.
func (t *Transport) Sever(addr string) {
	t.mu.Lock()
	live := append([]*faultConn(nil), t.conns[addr]...)
	t.mu.Unlock()
	for _, c := range live {
		_ = c.Close()
	}
}

func (t *Transport) isBlocked(addr string, dir Direction) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.blocked[addr]
	if !ok {
		return false
	}
	if dir == ToListener {
		return b.toListener
	}
	return b.fromListener
}

// prob derives the schedule coin for fault `tag` on frame n of a link:
// an FNV-1a fold of (seed, addr, direction, tag, n) mapped into [0,1).
func (t *Transport) prob(addr string, dir Direction, tag byte, n uint64) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	for i := 0; i < 8; i++ {
		mix(byte(t.seed >> (8 * i)))
	}
	for i := 0; i < len(addr); i++ {
		mix(addr[i])
	}
	mix(byte(dir))
	mix(tag)
	for i := 0; i < 8; i++ {
		mix(byte(n >> (8 * i)))
	}
	return float64(h>>11) / float64(1<<53)
}

// decide returns the scheduled action for frame n on (addr, dir).
func (t *Transport) decide(addr string, dir Direction, n uint64) (action, time.Duration) {
	r, ok := t.rules[addr]
	if !ok {
		return actNone, 0
	}
	switch {
	case r.Drop > 0 && t.prob(addr, dir, 'D', n) < r.Drop:
		return actDrop, 0
	case r.Dup > 0 && t.prob(addr, dir, 'U', n) < r.Dup:
		return actDup, 0
	case r.Reorder > 0 && t.prob(addr, dir, 'R', n) < r.Reorder:
		return actReorder, 0
	case r.Truncate > 0 && t.prob(addr, dir, 'T', n) < r.Truncate:
		return actTruncate, 0
	case r.DelayProb > 0 && t.prob(addr, dir, 'L', n) < r.DelayProb:
		return actDelay, r.Delay
	}
	return actNone, 0
}

// digestWindow is how many per-link frame slots ScheduleDigest folds.
const digestWindow = 64

// ScheduleDigest folds the first digestWindow scheduled actions of every
// rule, in both directions, into a single value. Two Transports with the
// same seed and rules produce the same digest; tests assert it to prove a
// reproduction runs under the identical fault schedule.
func (t *Transport) ScheduleDigest() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, addr := range t.order {
		for _, dir := range []Direction{ToListener, FromListener} {
			for n := uint64(0); n < digestWindow; n++ {
				act, _ := t.decide(addr, dir, n)
				h ^= uint64(act) + 1
				h *= prime64
			}
		}
	}
	return h
}

// truncCut picks how many trailing bytes a truncate fault removes from a
// frame of size sz — at least 1, never the whole frame's first byte.
func (t *Transport) truncCut(addr string, dir Direction, n uint64, sz int) int {
	if sz <= 1 {
		return 0
	}
	max := sz - 1
	if max > 16 {
		max = 16
	}
	return 1 + int(uint64(t.prob(addr, dir, 'C', n)*float64(1<<20)))%max
}

// faultListener wraps accepted connections.
type faultListener struct {
	t     *Transport
	inner transport.Listener
	addr  string
}

func (l *faultListener) Accept() (transport.Conn, error) {
	c, err := l.inner.Accept()
	if err != nil {
		return nil, err
	}
	return l.t.wrap(c, l.addr, FromListener), nil
}

func (l *faultListener) Close() error { return l.inner.Close() }

func (l *faultListener) Addr() string { return l.inner.Addr() }

// faultConn applies the schedule to outbound frames. It intentionally
// implements only transport.Conn, never transport.OwnedSender — see the
// package comment.
type faultConn struct {
	t     *Transport
	inner transport.Conn
	addr  string
	dir   Direction

	mu   sync.Mutex
	n    uint64 // frames offered to Send on this side
	held []byte // frame parked by a reorder fault
}

func (c *faultConn) Send(b []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.n
	c.n++
	if c.t.isBlocked(c.addr, c.dir) {
		// Half-open partition: the sender sees success, the frame is gone.
		return nil
	}
	act, delay := c.t.decide(c.addr, c.dir, n)
	switch act {
	case actDrop:
		return nil
	case actDup:
		if err := c.inner.Send(b); err != nil {
			return err
		}
		if err := c.inner.Send(b); err != nil {
			return err
		}
		return c.flushHeld()
	case actReorder:
		if c.held != nil {
			// Already holding one frame; emit oldest-first rather than
			// parking unboundedly.
			if err := c.flushHeld(); err != nil {
				return err
			}
		}
		c.held = append([]byte(nil), b...)
		return nil
	case actTruncate:
		cut := c.t.truncCut(c.addr, c.dir, n, len(b))
		if err := c.inner.Send(b[:len(b)-cut]); err != nil {
			return err
		}
		return c.flushHeld()
	case actDelay:
		time.Sleep(delay)
	}
	if err := c.inner.Send(b); err != nil {
		return err
	}
	return c.flushHeld()
}

// flushHeld emits a reorder-parked frame after its successor has gone out
// (a one-frame transposition). Caller holds c.mu.
func (c *faultConn) flushHeld() error {
	if c.held == nil {
		return nil
	}
	b := c.held
	c.held = nil
	return c.inner.Send(b)
}

func (c *faultConn) Recv() ([]byte, error) { return c.inner.Recv() }

func (c *faultConn) Close() error {
	c.t.untrack(c)
	return c.inner.Close()
}
