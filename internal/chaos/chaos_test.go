package chaos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"nimbus/internal/durable"
	"nimbus/internal/transport"
)

// link opens one wrapped listener/dialer pair on tr at addr, with the
// accepted side read on a goroutine feeding recvd.
func link(t *testing.T, tr transport.Transport, addr string) (transport.Conn, <-chan []byte) {
	t.Helper()
	lis, err := tr.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- c
	}()
	dial, err := tr.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	srv, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	recvd := make(chan []byte, 1024)
	go func() {
		defer close(recvd)
		for {
			b, err := srv.Recv()
			if err != nil {
				return
			}
			recvd <- b
		}
	}()
	t.Cleanup(func() {
		dial.Close()
		srv.Close()
		lis.Close()
	})
	return dial, recvd
}

// drain collects frames until the link is quiet for 50ms.
func drain(ch <-chan []byte) [][]byte {
	var out [][]byte
	for {
		select {
		case b, ok := <-ch:
			if !ok {
				return out
			}
			out = append(out, b)
		case <-time.After(50 * time.Millisecond):
			return out
		}
	}
}

func sendN(t *testing.T, c transport.Conn, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := c.Send([]byte(fmt.Sprintf("frame-%03d", i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
}

func TestChaosScheduleDigestReproducible(t *testing.T) {
	rules := []Rule{
		{Addr: "a", Drop: 0.2, Dup: 0.1, Reorder: 0.1},
		{Addr: "b", Truncate: 0.3, DelayProb: 0.5, Delay: time.Millisecond},
	}
	d1 := New(transport.NewMem(0), 42, rules...).ScheduleDigest()
	d2 := New(transport.NewMem(0), 42, rules...).ScheduleDigest()
	if d1 != d2 {
		t.Fatalf("same seed, different digests: %x vs %x", d1, d2)
	}
	d3 := New(transport.NewMem(0), 43, rules...).ScheduleDigest()
	if d1 == d3 {
		t.Fatalf("different seeds, same digest %x", d1)
	}
	// The digest covers the rule set, not just the seed.
	d4 := New(transport.NewMem(0), 42, Rule{Addr: "a", Drop: 0.9}).ScheduleDigest()
	if d1 == d4 {
		t.Fatalf("different rules, same digest %x", d1)
	}
}

// TestChaosScheduleReplaysIdentically runs the same frame sequence under
// the same seed twice and asserts the surviving frames — identity, order
// and byte content — match exactly: the fault schedule is a function of
// the seed, not of timing.
func TestChaosScheduleReplaysIdentically(t *testing.T) {
	run := func(seed uint64) [][]byte {
		ct := New(transport.NewMem(0), seed,
			Rule{Addr: "x", Drop: 0.25, Dup: 0.15, Reorder: 0.2, Truncate: 0.1})
		dial, recvd := link(t, ct, "x")
		sendN(t, dial, 200)
		return drain(recvd)
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d frames", len(a), len(b))
	}
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("replay diverged at %d: %q vs %q", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if !bytes.Equal(a[i], c[i]) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault outcomes over 200 frames")
	}
}

func TestChaosDropLosesFrames(t *testing.T) {
	ct := New(transport.NewMem(0), 1, Rule{Addr: "x", Drop: 0.5})
	dial, recvd := link(t, ct, "x")
	sendN(t, dial, 100)
	got := drain(recvd)
	if len(got) == 0 || len(got) >= 100 {
		t.Fatalf("drop 0.5 delivered %d/100 frames", len(got))
	}
}

func TestChaosDupDeliversTwice(t *testing.T) {
	ct := New(transport.NewMem(0), 1, Rule{Addr: "x", Dup: 1})
	dial, recvd := link(t, ct, "x")
	sendN(t, dial, 5)
	got := drain(recvd)
	if len(got) != 10 {
		t.Fatalf("dup 1.0 delivered %d frames, want 10", len(got))
	}
	for i := 0; i < 10; i += 2 {
		if !bytes.Equal(got[i], got[i+1]) {
			t.Fatalf("frames %d/%d not duplicates: %q vs %q", i, i+1, got[i], got[i+1])
		}
	}
}

func TestChaosReorderTransposesNeighbours(t *testing.T) {
	ct := New(transport.NewMem(0), 3, Rule{Addr: "x", Reorder: 0.3})
	dial, recvd := link(t, ct, "x")
	sendN(t, dial, 100)
	got := drain(recvd)
	if len(got) < 90 {
		t.Fatalf("reorder lost frames: %d/100 (only a trailing held frame may be dropped)", len(got))
	}
	inverted := 0
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) > 0 {
			inverted++
		}
	}
	if inverted == 0 {
		t.Fatal("reorder 0.3 over 100 frames produced no inversions")
	}
}

func TestChaosTruncateShortensFrames(t *testing.T) {
	ct := New(transport.NewMem(0), 1, Rule{Addr: "x", Truncate: 1})
	dial, recvd := link(t, ct, "x")
	sendN(t, dial, 10)
	got := drain(recvd)
	if len(got) != 10 {
		t.Fatalf("truncate delivered %d/10", len(got))
	}
	for i, b := range got {
		if len(b) >= len("frame-000") {
			t.Fatalf("frame %d not truncated: %q", i, b)
		}
		if len(b) == 0 {
			t.Fatalf("frame %d truncated to nothing", i)
		}
	}
}

func TestChaosPartitionHealAndBlackhole(t *testing.T) {
	ct := New(transport.NewMem(0), 1)
	dial, recvd := link(t, ct, "x")

	ct.Partition("x", ToListener)
	sendN(t, dial, 5)
	if got := drain(recvd); len(got) != 0 {
		t.Fatalf("half-open partition leaked %d frames", len(got))
	}

	ct.Heal("x")
	if err := dial.Send([]byte("after-heal")); err != nil {
		t.Fatal(err)
	}
	got := drain(recvd)
	if len(got) != 1 || string(got[0]) != "after-heal" {
		t.Fatalf("after heal got %q", got)
	}

	// Full blackhole blocks both directions.
	ct.Partition("x")
	if !ct.isBlocked("x", ToListener) || !ct.isBlocked("x", FromListener) {
		t.Fatal("Partition with no directions must blackhole both")
	}
}

func TestChaosSeverClosesLiveConns(t *testing.T) {
	ct := New(transport.NewMem(0), 1)
	dial, recvd := link(t, ct, "x")
	ct.Sever("x")
	if err := dial.Send([]byte("post-sever")); err == nil {
		t.Fatal("send on severed conn succeeded")
	}
	if got := drain(recvd); len(got) != 0 {
		t.Fatalf("severed link delivered %d frames", len(got))
	}
	// A fresh dial works: Sever cuts connections, not the listener.
	c2, err := ct.Dial("x")
	if err != nil {
		t.Fatalf("dial after sever: %v", err)
	}
	c2.Close()
}

func TestChaosConnIsNotOwnedSender(t *testing.T) {
	ct := New(transport.NewMem(0), 1)
	dial, _ := link(t, ct, "x")
	if _, ok := dial.(transport.OwnedSender); ok {
		t.Fatal("chaos conns must not implement OwnedSender: pooled buffers would leak on drop/dup")
	}
}

func TestFaultStoreSaveFaults(t *testing.T) {
	fs := NewFaultStore(durable.NewMem())
	if err := fs.Save(1, 1, 1, 1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	enospc := errors.New("no space left on device")
	fs.FailSaves(enospc)
	if err := fs.Save(1, 1, 2, 1, []byte("x")); !errors.Is(err, enospc) {
		t.Fatalf("failed save returned %v", err)
	}
	fs.Heal()
	if err := fs.Save(1, 1, 3, 1, []byte("y")); err != nil {
		t.Fatalf("save after heal: %v", err)
	}
	if fs.Faults() != 1 {
		t.Fatalf("faults = %d, want 1", fs.Faults())
	}
}

func TestFaultStoreTornSave(t *testing.T) {
	fs := NewFaultStore(durable.NewMem())
	fs.TearSaves(2)
	if err := fs.Save(1, 1, 1, 7, []byte("full-object-body")); err != nil {
		t.Fatalf("torn save must report success (that is the fault): %v", err)
	}
	data, ver, err := fs.Load(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 7 || string(data) != "fu" {
		t.Fatalf("torn object = %q v%d, want %q v7", data, ver, "fu")
	}
}

func TestFaultStoreSlowAndFailedLoads(t *testing.T) {
	fs := NewFaultStore(durable.NewMem())
	fs.SlowSaves(10 * time.Millisecond)
	start := time.Now()
	if err := fs.Save(1, 1, 1, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("slow save returned in %v", d)
	}
	bad := errors.New("read error")
	fs.FailLoads(bad)
	if _, _, err := fs.Load(1, 1, 1); !errors.Is(err, bad) {
		t.Fatalf("failed load returned %v", err)
	}
	fs.Heal()
	if _, _, err := fs.Load(1, 1, 1); err != nil {
		t.Fatalf("load after heal: %v", err)
	}
}

// BenchmarkChaosConnOverhead measures the wrapper's per-frame cost with
// no faults armed — the price every chaos-enabled harness run pays.
func BenchmarkChaosConnOverhead(b *testing.B) {
	ct := New(transport.NewMem(0), 1)
	lis, err := ct.Listen("bench")
	if err != nil {
		b.Fatal(err)
	}
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, _ := lis.Accept()
		accepted <- c
	}()
	dial, err := ct.Dial("bench")
	if err != nil {
		b.Fatal(err)
	}
	srv := <-accepted
	go func() {
		for {
			if _, err := srv.Recv(); err != nil {
				return
			}
		}
	}()
	frame := make([]byte, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dial.Send(frame); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	dial.Close()
	srv.Close()
	lis.Close()
}
