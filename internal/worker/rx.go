package worker

import (
	"errors"

	"nimbus/internal/datastore"
	"nimbus/internal/proto"
	"nimbus/internal/stream"
	"nimbus/internal/transport"
)

// This file is the receive side of the streaming data plane. Each
// accepted data-plane connection gets a pump goroutine that decodes
// frames itself: single-frame DataPayloads forward straight to the event
// loop (the small-object fast path stays untouched), while DataChunk runs
// reassemble here, off the event loop, under two bounds:
//
//   - Flow control: credit is granted back to the sender as chunks land,
//     so the sender's window — not receiver goodwill — limits what is in
//     flight per transfer.
//
//   - Memory: all in-flight reassembly buffers share one worker-wide byte
//     budget. A transfer that pushes past it switches to a spill file and
//     releases its RAM; the completed object installs disk-backed and is
//     faulted in on first read. Receiver memory stays bounded no matter
//     how large the shuffle.
//
// Protocol violations (sequence gaps, total mismatches, oversized or
// corrupt chunks) abort the transfer with an XferAbort on the reverse
// path; transfer state is per-connection, so a connection's death cleans
// up everything it was reassembling.

// rxXfer is one inbound transfer being reassembled.
type rxXfer struct {
	ra   stream.Reassembler
	hdr  proto.DataChunk // routing fields, copied from the first chunk
	buf  []byte          // in-memory accumulation (nil once spilled)
	sw   *datastore.SpillWriter
	held int64  // bytes charged against the worker's receive budget
	owed uint32 // chunks landed since the last credit grant
}

// rxConn is the receive state of one accepted data-plane connection.
type rxConn struct {
	w     *Worker
	conn  transport.Conn
	xfers map[uint64]*rxXfer
}

// dataPump drains one inbound data-plane connection: chunks reassemble
// here, everything else forwards to the event loop.
func (w *Worker) dataPump(conn transport.Conn) {
	defer w.wg.Done()
	rx := &rxConn{w: w, conn: conn, xfers: make(map[uint64]*rxXfer)}
	defer rx.teardown()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		err = proto.ForEachMsg(raw, func(msg proto.Msg) error {
			if c, ok := msg.(*proto.DataChunk); ok {
				return rx.handleChunk(c)
			}
			return w.postData(msg)
		})
		proto.PutBuf(raw)
		if errors.Is(err, errPumpStopped) {
			return
		}
		if err != nil {
			w.cfg.Logf("worker %s: bad data message: %v", w.id, err)
		}
	}
}

func (w *Worker) postData(msg proto.Msg) error {
	select {
	case w.events <- event{kind: evData, msg: msg}:
		return nil
	case <-w.stopped:
		return errPumpStopped
	}
}

func (rx *rxConn) handleChunk(c *proto.DataChunk) error {
	w := rx.w
	x, ok := rx.xfers[c.Xfer]
	if !ok {
		if c.Seq != 0 {
			// Mid-stream chunk for a transfer we know nothing about —
			// hostile input or the stale tail of state this connection
			// never had. Tell the sender to stop wasting the link.
			rx.abort(c.Xfer, "unknown transfer")
			return nil
		}
		x = &rxXfer{
			ra:  stream.Reassembler{Xfer: c.Xfer, Total: c.Total, ChunkSize: w.chunkSize},
			hdr: *c,
		}
		x.hdr.Raw = nil // the header copy must not pin the first frame
		rx.xfers[c.Xfer] = x
	}
	raw, err := x.ra.Accept(c)
	if err != nil {
		if errors.Is(err, stream.ErrDup) {
			return nil // a redialed sender replayed a landed prefix
		}
		rx.drop(c.Xfer, x)
		rx.abort(c.Xfer, err.Error())
		return nil
	}
	w.Stats.ChunksRecv.Add(1)
	if err := x.land(w, raw); err != nil {
		w.cfg.Logf("worker %s: transfer %d: %v", w.id, c.Xfer, err)
		rx.drop(c.Xfer, x)
		rx.abort(c.Xfer, "spill failure")
		return nil
	}
	if !c.Last {
		// Replenish the sender's window as chunks land, batched so the
		// reverse path is not one frame per chunk.
		x.owed++
		if x.owed >= stream.InitWindow/2 {
			rx.credit(c.Xfer, x.owed)
			x.owed = 0
		}
		return nil
	}
	delete(rx.xfers, c.Xfer)
	return rx.deliver(x)
}

// land appends decoded bytes, spilling the transfer to disk when total
// in-flight reassembly exceeds the worker's receive budget.
func (x *rxXfer) land(w *Worker, raw []byte) error {
	if x.sw != nil {
		if err := x.sw.Write(raw); err != nil {
			return err
		}
		w.Stats.SpilledBytes.Add(uint64(len(raw)))
		return nil
	}
	if w.rxBytes.Add(int64(len(raw))) <= w.recvBudget {
		x.held += int64(len(raw))
		x.buf = append(x.buf, raw...)
		return nil
	}
	sw, err := w.spill.NewWriter()
	if err != nil {
		// Disk refused; keep buffering in RAM — the budget is a target,
		// not a reason to lose data.
		w.cfg.Logf("worker %s: spill unavailable, buffering in memory: %v", w.id, err)
		x.held += int64(len(raw))
		x.buf = append(x.buf, raw...)
		return nil
	}
	x.sw = sw
	if len(x.buf) > 0 {
		if err := sw.Write(x.buf); err != nil {
			// The tipping chunk was charged by the budget check above but
			// never reached x.held; discard() only releases held, so it
			// must be uncharged here or the abort leaks receive budget.
			w.rxBytes.Add(-int64(len(raw)))
			return err
		}
	}
	if err := sw.Write(raw); err != nil {
		w.rxBytes.Add(-int64(len(raw)))
		return err
	}
	// The transfer's RAM charge (and the chunk that tipped it over) moves
	// to disk.
	w.rxBytes.Add(-(x.held + int64(len(raw))))
	x.held = 0
	x.buf = nil
	w.Stats.Spills.Add(1)
	w.Stats.SpilledBytes.Add(uint64(sw.Size()))
	return nil
}

// deliver hands a completed transfer to the event loop as a payload —
// in-memory, or a finalized spill handle the CopyRecv will install
// disk-backed.
func (rx *rxConn) deliver(x *rxXfer) error {
	w := rx.w
	var sp *datastore.Spilled
	if x.sw != nil {
		var err error
		sp, err = x.sw.Finalize()
		x.sw = nil
		if err != nil {
			w.cfg.Logf("worker %s: spill finalize: %v", w.id, err)
			return nil
		}
	} else {
		// The event loop owns the buffer now; it stops counting as
		// in-flight reassembly.
		w.rxBytes.Add(-x.held)
		x.held = 0
	}
	w.Stats.XfersRecv.Add(1)
	p := &proto.DataPayload{
		Job:        x.hdr.Job,
		DstCommand: x.hdr.DstCommand,
		Object:     x.hdr.Object,
		Logical:    x.hdr.Logical,
		Version:    x.hdr.Version,
		Data:       x.buf,
	}
	select {
	case w.events <- event{kind: evData, msg: p, spill: sp}:
		return nil
	case <-w.stopped:
		if sp != nil {
			sp.Remove()
		}
		return errPumpStopped
	}
}

// credit grants the sender more window on the reverse path. Send failures
// are ignored: a dying connection tears the whole pump down moments
// later, and the sender restarts the transfer on redial.
func (rx *rxConn) credit(xfer uint64, n uint32) {
	buf := proto.MarshalAppend(proto.GetBuf(), &proto.DataCredit{Xfer: xfer, Chunks: n})
	if owned, _ := transport.SendOwned(rx.conn, buf); !owned {
		proto.PutBuf(buf)
	}
}

func (rx *rxConn) abort(xfer uint64, reason string) {
	rx.w.Stats.RxAborts.Add(1)
	buf := proto.MarshalAppend(proto.GetBuf(), &proto.XferAbort{Xfer: xfer, Reason: reason})
	if owned, _ := transport.SendOwned(rx.conn, buf); !owned {
		proto.PutBuf(buf)
	}
}

// drop discards a transfer's partial state after a protocol violation.
func (rx *rxConn) drop(xfer uint64, x *rxXfer) {
	delete(rx.xfers, xfer)
	x.discard(rx.w)
}

func (x *rxXfer) discard(w *Worker) {
	if x.sw != nil {
		x.sw.Abort()
		x.sw = nil
	}
	w.rxBytes.Add(-x.held)
	x.held = 0
	x.buf = nil
}

// teardown releases every incomplete transfer when the connection dies:
// budget uncharged, partial spill files removed.
func (rx *rxConn) teardown() {
	for _, x := range rx.xfers {
		x.discard(rx.w)
	}
	rx.xfers = nil
}
