package worker

import (
	"bytes"
	"errors"
	"testing"

	"nimbus/internal/datastore"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// Receiver-side disk-fault tests: the spill filesystem refuses service at
// each of its three touch points (create, write, sync) while chunked
// transfers reassemble. ENOSPC at create degrades to RAM buffering; a
// mid-spill write failure aborts the one transfer with XferAbort and
// releases its budget; a sync failure at finalize drops the one delivery.
// In every case the connection stays usable and rxBytes returns to zero —
// a disk fault must never poison the data plane.

// chaosRxHarness builds a loop worker with a faultable spill FS and a
// piped rxConn driven directly by the test.
func chaosRxHarness(t *testing.T, budgetChunks int) (*Worker, *datastore.SpillFS, *rxConn, transport.Conn) {
	t.Helper()
	const chunk = 1 << 10
	w := newLoopWorker(t, Config{
		ControlAddr: "c", DataAddr: "d",
		ChunkSize:  chunk,
		RecvBudget: int64(budgetChunks) * chunk,
	})
	fs, err := datastore.NewSpillFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w.spill = fs
	a, b := transport.Pipe(0)
	t.Cleanup(func() { a.Close(); b.Close() })
	return w, fs, &rxConn{w: w, conn: a, xfers: make(map[uint64]*rxXfer)}, b
}

// sendXfer streams one complete transfer of n chunks into rx.
func sendXfer(t *testing.T, rx *rxConn, xfer uint64, n int) []byte {
	t.Helper()
	const chunk = 1 << 10
	data := make([]byte, n*chunk)
	for i := range data {
		data[i] = byte(i*13 + int(xfer))
	}
	for off, seq := 0, uint32(0); off < len(data); seq++ {
		end := off + chunk
		if err := rx.handleChunk(&proto.DataChunk{
			Job: 1, Xfer: xfer, Seq: seq, Last: end == len(data),
			DstCommand: 42, Object: 9, Logical: 9, Version: 2,
			Total: uint64(len(data)), Raw: data[off:end],
		}); err != nil {
			t.Fatalf("xfer %d chunk %d: %v", xfer, seq, err)
		}
		off = end
	}
	return data
}

// expectDelivery asserts exactly one payload event with body equal to
// want, spilled or in RAM according to wantSpill.
func expectDelivery(t *testing.T, w *Worker, want []byte, wantSpill bool) {
	t.Helper()
	select {
	case ev := <-w.events:
		if ev.kind != evData {
			t.Fatalf("event kind = %d, want evData", ev.kind)
		}
		if (ev.spill != nil) != wantSpill {
			t.Fatalf("spill handle = %v, want spilled=%v", ev.spill, wantSpill)
		}
		var got []byte
		if ev.spill != nil {
			var err error
			got, err = ev.spill.Read()
			if err != nil {
				t.Fatal(err)
			}
			ev.spill.Remove()
		} else {
			got = ev.msg.(*proto.DataPayload).Data
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("delivered body differs from sent bytes (%d vs %d)", len(got), len(want))
		}
	default:
		t.Fatal("no payload delivered")
	}
}

// TestChaosSpillCreateFaultFallsBackToRAM: ENOSPC at spill-file creation
// must not lose the transfer — the receiver keeps buffering in RAM past
// its budget and delivers bit-identically.
func TestChaosSpillCreateFaultFallsBackToRAM(t *testing.T) {
	w, fs, rx, _ := chaosRxHarness(t, 2)
	enospc := errors.New("no space left on device")
	fs.SetFault(func(op string) error {
		if op == "create" {
			return enospc
		}
		return nil
	})
	data := sendXfer(t, rx, 3, 8)
	expectDelivery(t, w, data, false)
	if got := w.Stats.Spills.Load(); got != 0 {
		t.Fatalf("Spills = %d with creation failing", got)
	}
	if got := w.rxBytes.Load(); got != 0 {
		t.Fatalf("rxBytes = %d after delivery, want 0", got)
	}
}

// TestChaosSpillWriteFaultAbortsWithoutPoison: a spill write failing
// mid-reassembly (disk filled under us) aborts that transfer — XferAbort
// on the reverse path, budget released, no delivery — and the very next
// transfer on the same connection streams through untouched.
func TestChaosSpillWriteFaultAbortsWithoutPoison(t *testing.T) {
	w, fs, rx, rev := chaosRxHarness(t, 2)
	fs.SetFault(func(op string) error {
		if op == "write" {
			return errors.New("no space left on device")
		}
		return nil
	})
	// Stream chunks until the receiver gives up: the third chunk tips the
	// budget, opens the spill file, and hits the write fault. A real
	// sender stops on the XferAbort, so the stream ends there.
	const chunk = 1 << 10
	for seq := uint32(0); seq < 3; seq++ {
		if err := rx.handleChunk(&proto.DataChunk{
			Job: 1, Xfer: 5, Seq: seq, Total: 8 * chunk, Raw: make([]byte, chunk),
		}); err != nil {
			t.Fatalf("chunk %d: %v", seq, err)
		}
	}
	select {
	case ev := <-w.events:
		t.Fatalf("faulted transfer delivered an event: %+v", ev)
	default:
	}
	if got := w.Stats.RxAborts.Load(); got != 1 {
		t.Fatalf("RxAborts = %d, want 1", got)
	}
	if got := w.rxBytes.Load(); got != 0 {
		t.Fatalf("rxBytes = %d after abort, want 0: the aborted transfer leaked budget", got)
	}
	raw, err := rev.Recv()
	if err != nil {
		t.Fatal(err)
	}
	m, err := proto.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if ab, ok := m.(*proto.XferAbort); !ok || ab.Xfer != 5 {
		t.Fatalf("reverse path sent %v, want XferAbort for xfer 5", m)
	}
	if len(rx.xfers) != 0 {
		t.Fatal("aborted transfer left reassembly state behind")
	}

	// The disk recovers; the same connection carries the next transfer to
	// a spilled delivery.
	fs.SetFault(nil)
	data := sendXfer(t, rx, 6, 8)
	expectDelivery(t, w, data, true)
	if got := w.rxBytes.Load(); got != 0 {
		t.Fatalf("rxBytes = %d after recovery transfer, want 0", got)
	}
}

// TestChaosSpillSyncFaultDropsOnlyThatDelivery: fsync failing at
// finalize loses that one transfer (logged, no event — the sender's
// redial path re-requests it) without corrupting budget accounting or
// the connection.
func TestChaosSpillSyncFaultDropsOnlyThatDelivery(t *testing.T) {
	w, fs, rx, _ := chaosRxHarness(t, 2)
	fs.SetFault(func(op string) error {
		if op == "sync" {
			return errors.New("fsync: input/output error")
		}
		return nil
	})
	sendXfer(t, rx, 7, 8)
	select {
	case ev := <-w.events:
		t.Fatalf("failed finalize delivered an event: %+v", ev)
	default:
	}
	if got := w.rxBytes.Load(); got != 0 {
		t.Fatalf("rxBytes = %d after finalize failure, want 0", got)
	}

	fs.SetFault(nil)
	data := sendXfer(t, rx, 8, 8)
	expectDelivery(t, w, data, true)
}
