package worker

import (
	"sync"

	"nimbus/internal/datastore"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/stream"
	"nimbus/internal/transport"
)

// This file is the sender side of the streaming data plane. Workers
// exchange data directly — the controller is never on the data path
// (control-plane requirement 2, paper §3.1) — and copy commands use
// asynchronous I/O so they never block a worker thread (§3.4). Three
// disciplines keep that asynchrony bounded:
//
//   - The per-peer queue is byte-accounted and bounded. A send into a full
//     queue does not block the event loop and does not copy anything: the
//     CopySend command parks, holding only its pcmd, and is retried when
//     the writer drains below the low-water mark (evPeerSpace).
//
//   - Objects larger than one chunk stream as DataChunk runs under a
//     credit window granted by the receiver (DataCredit on the reverse
//     path of the same connection), so a slow receiver stalls the writer
//     goroutine, not the event loop, and sender memory stays bounded by
//     the queue cap — the queue holds a reference to the object's buffer,
//     never a second copy.
//
//   - A chunked CopySend completes only after its last chunk is handed to
//     the transport (the writer posts evDone). Until then the object's
//     buffer is shared with the store, which is safe because before sets
//     order any writer of the object after the copy's completion.

// peerItem is one queue entry: a pre-marshaled single frame (small
// payloads, at most one chunk) or a chunked transfer descriptor.
type peerItem struct {
	frame []byte
	xfer  *txXfer
	size  int64
}

// txXfer describes one outbound chunked transfer. hdr carries the routing
// fields every chunk repeats; data is shared with the datastore object.
type txXfer struct {
	hdr  proto.DataChunk
	data []byte
	done *pcmd // CopySend to complete once the last chunk is sent
}

// admission results of peerConn.enqueue.
type admit uint8

const (
	admitOK   admit = iota
	admitFull       // queue over its byte budget; park the sender
	admitDead       // writer exited or queue closed; count a drop
)

// awaitCredit results.
const (
	creditOK      = iota
	creditAborted // receiver aborted the transfer; skip its remaining chunks
	creditClosed  // worker stopping
)

// peerConn is the asynchronous outbound data-plane connection to one peer
// worker: a bounded queue drained by a writer goroutine.
//
// The queue is consumed head-index-first with slot clearing (same
// discipline as the scheduler's runnable ring), so drained entries pin
// nothing; when it empties, head and length reset to reuse the backing
// array.
type peerConn struct {
	w    *Worker
	dst  ids.WorkerID
	addr string

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []peerItem
	head    int
	pending int64 // bytes admitted and not yet released by the writer
	closed  bool
	dead    bool // writer goroutine exited; sends are rejected
	notify  bool // a parked sender wants an evPeerSpace when space frees

	// Credit window for the transfer the writer is currently streaming.
	// The writer sets it (beginXfer) and consumes it (awaitCredit); the
	// creditPump goroutine refills it from the receiver's DataCredit
	// frames and flags XferAbort.
	curXfer uint64
	window  int64
	aborted bool

	// parked holds CopySend commands waiting for queue space. Event-loop
	// confined: only sendPeer appends and retryParked drains.
	parked []*pcmd
}

func newPeerConn(w *Worker, dst ids.WorkerID, addr string) *peerConn {
	pc := &peerConn{w: w, dst: dst, addr: addr}
	pc.cond = sync.NewCond(&pc.mu)
	return pc
}

// enqueue admits one item against the byte budget. An over-budget queue
// rejects with admitFull — unless it is empty, so a single item larger
// than the whole budget still moves. A rejected caller owns the item.
func (pc *peerConn) enqueue(it peerItem) admit {
	pc.mu.Lock()
	if pc.closed || pc.dead {
		pc.mu.Unlock()
		return admitDead
	}
	if pc.pending > 0 && pc.pending+it.size > pc.w.peerQueueBytes {
		pc.notify = true
		pc.mu.Unlock()
		return admitFull
	}
	pc.pending += it.size
	pc.queue = append(pc.queue, it)
	pc.cond.Broadcast()
	pc.mu.Unlock()
	return admitOK
}

func (pc *peerConn) next() (peerItem, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for pc.head == len(pc.queue) && !pc.closed {
		pc.cond.Wait()
	}
	if pc.head == len(pc.queue) {
		return peerItem{}, false
	}
	it := pc.queue[pc.head]
	pc.queue[pc.head] = peerItem{} // do not pin the item once popped
	pc.head++
	if pc.head == len(pc.queue) {
		// Drained: reuse the backing array from the start.
		pc.queue = pc.queue[:0]
		pc.head = 0
	}
	return it, true
}

// release returns an item's bytes to the budget once the writer is done
// with it, waking parked senders through the event loop when the queue
// drains below the low-water mark.
func (pc *peerConn) release(n int64) {
	pc.mu.Lock()
	pc.pending -= n
	post := pc.notify && pc.pending <= pc.w.peerQueueBytes/2
	if post {
		pc.notify = false
	}
	pc.mu.Unlock()
	if post {
		pc.postSpace()
	}
}

func (pc *peerConn) postSpace() {
	select {
	case pc.w.events <- event{kind: evPeerSpace, peer: pc}:
	case <-pc.w.stopped:
	}
}

// close shuts the queue down and recycles whatever it still holds.
func (pc *peerConn) close() {
	pc.mu.Lock()
	pc.closed = true
	pc.drainLocked()
	pc.cond.Broadcast()
	pc.mu.Unlock()
}

// markDead rejects all sends after the writer goroutine exits and flushes
// what it left behind. The evPeerSpace nudge makes parked senders retry
// immediately, resolving them as counted drops instead of waiting forever
// on a queue nobody drains.
func (pc *peerConn) markDead() {
	pc.mu.Lock()
	pc.dead = true
	pc.drainLocked()
	pc.cond.Broadcast()
	pc.mu.Unlock()
	pc.postSpace()
}

func (pc *peerConn) drainLocked() {
	for i := pc.head; i < len(pc.queue); i++ {
		if f := pc.queue[i].frame; f != nil {
			proto.PutBuf(f)
		}
		pc.queue[i] = peerItem{}
	}
	pc.queue = pc.queue[:0]
	pc.head = 0
	pc.pending = 0
}

// beginXfer resets the credit window for a transfer (also after a redial
// restart, discarding credit granted by the previous connection's
// receiver state).
func (pc *peerConn) beginXfer(x uint64) {
	pc.mu.Lock()
	pc.curXfer = x
	pc.window = stream.InitWindow
	pc.aborted = false
	pc.mu.Unlock()
}

// awaitCredit blocks the writer until the receiver's window admits the
// next chunk.
func (pc *peerConn) awaitCredit() int {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for pc.window <= 0 && !pc.closed && !pc.aborted {
		pc.cond.Wait()
	}
	if pc.closed {
		return creditClosed
	}
	if pc.aborted {
		return creditAborted
	}
	pc.window--
	return creditOK
}

// grant applies a DataCredit. Credit for a transfer that is not current
// (already finished, or not yet started after a redial) is dropped, and
// the accumulated window is clamped so a hostile receiver granting absurd
// credit cannot unbound the sender.
func (pc *peerConn) grant(x uint64, n uint32) {
	pc.mu.Lock()
	if x == pc.curXfer && !pc.aborted {
		pc.window += int64(n)
		if pc.window > stream.MaxWindow {
			pc.window = stream.MaxWindow
		}
		pc.cond.Broadcast()
	}
	pc.mu.Unlock()
}

func (pc *peerConn) abortXfer(x uint64, reason string) {
	pc.mu.Lock()
	hit := x == pc.curXfer && !pc.aborted
	if hit {
		pc.aborted = true
		pc.cond.Broadcast()
	}
	pc.mu.Unlock()
	if hit {
		pc.w.cfg.Logf("worker %s: peer %s aborted transfer %d: %s", pc.w.id, pc.dst, x, reason)
	}
}

// sendPeer routes one CopySend's object to a peer worker, dialing its
// data-plane address on first use. It reports whether the command
// completed synchronously: a payload of at most one chunk completes at
// admission (its frame is snapshotted into the queue), a chunked transfer
// completes when the writer finishes streaming it (evDone), and a send
// into a full queue parks the command until space frees (evPeerSpace).
func (w *Worker) sendPeer(dst ids.WorkerID, snd *pcmd, obj *datastore.Object) bool {
	c := &snd.cmd
	pc, ok := w.peerConns[dst]
	if !ok {
		addr, have := w.peers[dst]
		if !have {
			w.cfg.Logf("worker %s: no data-plane address for peer %s, dropping copy-send %s", w.id, dst, c.ID)
			w.Stats.PeerSendDrops.Add(1)
			return true
		}
		pc = newPeerConn(w, dst, addr)
		w.peerConns[dst] = pc
		w.wg.Add(1)
		go w.peerWriter(pc)
	}
	js := snd.unit.js
	if len(obj.Data) <= w.chunkSize {
		// Small-object fast path: one DataPayload frame, no transfer or
		// credit bookkeeping. The queue owns the encoded frame; the writer
		// transfers it to the transport when possible (Mem) so it is not
		// copied a second time, and recycles it otherwise.
		p := &proto.DataPayload{
			Job:        js.id,
			DstCommand: c.DstCommand,
			Object:     c.Reads[0],
			Logical:    c.Logical,
			Version:    obj.Version,
			Data:       obj.Data,
		}
		frame := proto.MarshalAppend(proto.GetBuf(), p)
		switch pc.enqueue(peerItem{frame: frame, size: int64(len(frame))}) {
		case admitOK:
			w.Stats.CopiesSent.Add(1)
			return true
		case admitFull:
			proto.PutBuf(frame)
			pc.parked = append(pc.parked, snd)
			w.Stats.ParkedSends.Add(1)
			return false
		default:
			proto.PutBuf(frame)
			w.Stats.PeerSendDrops.Add(1)
			return true
		}
	}
	w.xferSeq++
	t := &txXfer{
		hdr: proto.DataChunk{
			Job:        js.id,
			Xfer:       w.xferSeq,
			DstCommand: c.DstCommand,
			Object:     c.Reads[0],
			Logical:    c.Logical,
			Version:    obj.Version,
			Total:      uint64(len(obj.Data)),
		},
		data: obj.Data,
		done: snd,
	}
	switch pc.enqueue(peerItem{xfer: t, size: int64(len(obj.Data))}) {
	case admitOK:
		w.Stats.CopiesSent.Add(1)
		return false
	case admitFull:
		pc.parked = append(pc.parked, snd)
		w.Stats.ParkedSends.Add(1)
		return false
	default:
		w.Stats.PeerSendDrops.Add(1)
		return true
	}
}

// retryParked re-attempts CopySends that parked on a full queue, in
// arrival order, once the writer signals space (or permanent death — then
// they resolve as drops). Runs on the event loop.
func (w *Worker) retryParked(pc *peerConn) {
	parked := pc.parked
	pc.parked = nil
	for _, snd := range parked {
		js := snd.unit.js
		if snd.epoch != js.haltEpoch {
			// The job was halted while the send waited; the epoch path in
			// handleDone discards it without touching flushed state.
			w.handleDone(snd)
			continue
		}
		if w.execSend(js, snd) {
			w.handleDone(snd)
		}
	}
	w.dispatch()
}

// peerWriter drains one peer's queue. It dials with unbounded retry —
// giving up only at worker shutdown — so a peer that is slow to come up
// (or mid-restart) costs latency, not data.
func (w *Worker) peerWriter(pc *peerConn) {
	defer w.wg.Done()
	defer pc.markDead()
	conn, err := transport.DialRetry(w.cfg.Transport, pc.addr, transport.Backoff{}, 0, 0, w.stopped)
	if err != nil {
		return // worker stopping
	}
	w.wg.Add(1)
	go w.creditPump(conn, pc)
	defer func() { conn.Close() }()
	for {
		it, ok := pc.next()
		if !ok {
			return
		}
		if it.xfer == nil {
			alive := w.sendFrame(pc, &conn, it.frame)
			pc.release(it.size)
			if !alive {
				return
			}
			continue
		}
		alive := w.sendXfer(pc, &conn, it.xfer)
		pc.release(it.size)
		if it.xfer.done != nil {
			// Deferred CopySend completion: the object's buffer was shared
			// with the store for the duration of the stream; only now may
			// the command complete and unblock writers of the object.
			w.postDone(it.xfer.done)
		}
		if !alive {
			return
		}
	}
}

// redialPeer replaces a failed connection, retrying until the worker
// stops. Each fresh connection gets its own creditPump (the old one exits
// with its connection).
func (w *Worker) redialPeer(pc *peerConn, connp *transport.Conn) bool {
	(*connp).Close()
	conn, err := transport.DialRetry(w.cfg.Transport, pc.addr, transport.Backoff{}, 0, 0, w.stopped)
	if err != nil {
		return false
	}
	w.Stats.PeerRedials.Add(1)
	*connp = conn
	w.wg.Add(1)
	go w.creditPump(conn, pc)
	return true
}

// sendFrame delivers one pre-marshaled frame, redialing on failure. A
// frame a failing transport consumed (owned) cannot be resent — that one
// payload is dropped and counted, but the connection still recovers for
// subsequent traffic. Returns false when the worker is stopping.
func (w *Worker) sendFrame(pc *peerConn, connp *transport.Conn, b []byte) bool {
	for {
		owned, err := transport.SendOwned(*connp, b)
		if err == nil {
			if !owned {
				proto.PutBuf(b)
			}
			return true
		}
		if owned {
			w.Stats.PeerSendDrops.Add(1)
			w.cfg.Logf("worker %s: frame to peer %s lost: %v", w.id, pc.dst, err)
		}
		if !w.redialPeer(pc, connp) {
			if !owned {
				proto.PutBuf(b)
			}
			return false
		}
		if owned {
			return true
		}
	}
}

// sendXfer streams one object as a run of DataChunk frames under the
// receiver's credit window, optionally flate-compressing each chunk. A
// connection failure mid-transfer redials and restarts from Seq 0: the
// fresh connection starts with fresh receiver state (the partial
// reassembly died with the old connection), so the replay lands cleanly.
// Returns false when the worker is stopping.
func (w *Worker) sendXfer(pc *peerConn, connp *transport.Conn, t *txXfer) bool {
	m := t.hdr
	for {
		pc.beginXfer(t.hdr.Xfer)
		off := 0
		for seq := uint32(0); ; seq++ {
			switch pc.awaitCredit() {
			case creditClosed:
				return false
			case creditAborted:
				return true // receiver refused the rest; the command still completes
			}
			end := off + w.chunkSize
			if end > len(t.data) {
				end = len(t.data)
			}
			raw := t.data[off:end]
			m.Seq = seq
			m.Last = end == len(t.data)
			m.Flags = 0
			m.Raw = raw
			if w.compress {
				if c := stream.Compress(raw); c != nil {
					m.Flags = proto.ChunkCompressed
					m.Raw = c
				}
			}
			buf := proto.MarshalAppend(proto.GetBuf(), &m)
			owned, err := transport.SendOwned(*connp, buf)
			if !owned {
				proto.PutBuf(buf)
			}
			if err != nil {
				if !w.redialPeer(pc, connp) {
					return false
				}
				break // restart the transfer from Seq 0 on the fresh connection
			}
			w.Stats.ChunksSent.Add(1)
			if m.Last {
				w.Stats.XfersSent.Add(1)
				return true
			}
			off = end
		}
	}
}

// creditPump drains the receiver's flow-control frames (DataCredit,
// XferAbort) from the reverse direction of the outbound connection and
// applies them to the writer's window. One pump runs per dialed
// connection and exits with it.
func (w *Worker) creditPump(conn transport.Conn, pc *peerConn) {
	defer w.wg.Done()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		err = proto.ForEachMsg(raw, func(msg proto.Msg) error {
			switch m := msg.(type) {
			case *proto.DataCredit:
				pc.grant(m.Xfer, m.Chunks)
			case *proto.XferAbort:
				pc.abortXfer(m.Xfer, m.Reason)
			}
			return nil
		})
		proto.PutBuf(raw)
		if err != nil {
			w.cfg.Logf("worker %s: bad flow-control frame from peer %s: %v", w.id, pc.dst, err)
		}
	}
}
