package worker

import (
	"sync"

	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// peerConn is an asynchronous outbound data-plane connection to one peer
// worker. Sends enqueue without blocking the event loop (the paper's copy
// commands use asynchronous I/O so they never block a worker thread,
// §3.4); a writer goroutine drains the queue.
//
// The queue is consumed head-index-first with slot nil'ing (same
// discipline as the scheduler's runnable ring): popping by reslicing kept
// every sent payload reachable through the backing array until append
// happened to wrap, pinning megabytes of drained frames. When the queue
// empties, head and length reset so the backing array is reused instead of
// regrown.
type peerConn struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  [][]byte
	head   int
	closed bool
}

func newPeerConn() *peerConn {
	pc := &peerConn{}
	pc.cond = sync.NewCond(&pc.mu)
	return pc
}

func (pc *peerConn) send(b []byte) {
	pc.mu.Lock()
	if pc.closed {
		pc.mu.Unlock()
		// The queue owns frames it accepts; a rejected frame is recycled
		// here instead of leaking.
		proto.PutBuf(b)
		return
	}
	pc.queue = append(pc.queue, b)
	pc.cond.Signal()
	pc.mu.Unlock()
}

func (pc *peerConn) next() ([]byte, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	for pc.head == len(pc.queue) && !pc.closed {
		pc.cond.Wait()
	}
	if pc.head == len(pc.queue) {
		return nil, false
	}
	b := pc.queue[pc.head]
	pc.queue[pc.head] = nil // do not pin the frame once sent
	pc.head++
	if pc.head == len(pc.queue) {
		// Drained: reuse the backing array from the start.
		pc.queue = pc.queue[:0]
		pc.head = 0
	}
	return b, true
}

// close shuts the queue down and recycles any frames that will never be
// sent.
func (pc *peerConn) close() {
	pc.mu.Lock()
	pc.closed = true
	for i := pc.head; i < len(pc.queue); i++ {
		proto.PutBuf(pc.queue[i])
		pc.queue[i] = nil
	}
	pc.queue = pc.queue[:0]
	pc.head = 0
	pc.cond.Broadcast()
	pc.mu.Unlock()
}

// sendPeer routes one payload to a peer worker, dialing its data-plane
// address on first use. Workers exchange data directly — the controller is
// never on the data path (control-plane requirement 2, paper §3.1). The
// payload carries its JobID so the receiver lands it in the right
// namespace.
func (w *Worker) sendPeer(dst ids.WorkerID, p *proto.DataPayload) {
	pc, ok := w.peerConns[dst]
	if !ok {
		addr, have := w.peers[dst]
		if !have {
			w.cfg.Logf("worker %s: no data-plane address for peer %s", w.id, dst)
			return
		}
		pc = newPeerConn()
		w.peerConns[dst] = pc
		w.wg.Add(1)
		go w.peerWriter(pc, addr, dst)
	}
	// The queue owns the encoded frame; the writer transfers it to the
	// transport when possible (Mem) so megabyte payloads are not copied a
	// second time, and recycles it otherwise.
	pc.send(proto.MarshalAppend(proto.GetBuf(), p))
}

func (w *Worker) peerWriter(pc *peerConn, addr string, dst ids.WorkerID) {
	defer w.wg.Done()
	conn, err := w.cfg.Transport.Dial(addr)
	if err != nil {
		w.cfg.Logf("worker %s: dialing peer %s at %s: %v", w.id, dst, addr, err)
		pc.close()
		return
	}
	defer conn.Close()
	for {
		b, ok := pc.next()
		if !ok {
			return
		}
		owned, err := transport.SendOwned(conn, b)
		if !owned {
			proto.PutBuf(b)
		}
		if err != nil {
			w.cfg.Logf("worker %s: sending to peer %s: %v", w.id, dst, err)
			pc.close()
			return
		}
	}
}
