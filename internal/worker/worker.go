// Package worker implements the Nimbus worker node.
//
// A worker satisfies the control-plane requirements of paper §3.1:
//
//  1. It maintains a queue of commands and determines locally when they
//     are runnable, by resolving before sets against its own completion
//     set — no round trips to the controller.
//  2. It exchanges data directly with peer workers over the data plane,
//     using the explicit routing carried by copy commands.
//  3. It executes fine-grained tasks through a slot-limited executor pool.
//
// The worker is multi-tenant: it serves every job admitted by the
// controller from one executor pool. All mutable scheduling state —
// installed templates and patches, in-flight arenas, completion records,
// buffered payloads, barrier arrival counters and the datastore — lives in
// a per-job namespace (jstate), so two jobs can install same-named
// templates, reuse the same per-job command and object IDs, and a
// job-scoped halt (one job's recovery) never flushes another job's
// in-flight arenas. The executor pool is shared, with per-job slot quotas
// assigned by the controller's fair-share allocator and enforced by a
// round-robin dispatcher, so one hot tenant cannot starve the rest.
//
// The worker also caches worker templates and patches: an
// InstantiateTemplate message materializes thousands of commands from the
// cached structure with a single base ID and a parameter array
// (paper §4.1), applying any attached edits first (paper §4.3).
//
// Instantiation runs on a compiled fast path (DESIGN.md "Worker
// instantiation fast path"): templates are compiled to a dense immutable
// form at install/edit time, instances are materialized into pooled arenas
// of inline command slots, intra-instance dependencies are wired by array
// index, and barrier accounting uses prefix arrival counters — the
// steady-state path performs no per-command allocation and no map inserts.
//
// All mutable state is confined to a single event loop goroutine; executor
// goroutines, connection pumps and timers communicate with it through the
// event channel.
package worker

import (
	"errors"
	"fmt"
	"log"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/datastore"
	"nimbus/internal/durable"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/stream"
	"nimbus/internal/transport"
)

// Config configures a worker.
type Config struct {
	// ControlAddr is the controller's control-plane address.
	ControlAddr string
	// DataAddr is this worker's data-plane listen address.
	DataAddr string
	// Transport connects the control and data planes.
	Transport transport.Transport
	// Slots is the executor concurrency (paper testbed: 8 cores). Zero
	// defaults to 8.
	Slots int
	// Registry resolves task functions. Nil defaults to the built-ins.
	Registry *fn.Registry
	// Durable backs checkpoint save/load commands.
	Durable durable.Store
	// HeartbeatEvery is the heartbeat period (zero disables heartbeats;
	// the controller then relies on connection liveness).
	HeartbeatEvery time.Duration
	// CompletionBatch caps how many completions accumulate before a
	// report is flushed in batched mode. Zero defaults to 64.
	CompletionBatch int
	// ChunkSize is the data-plane transfer chunk size in bytes; payloads
	// larger than one chunk stream as credit-controlled DataChunk runs.
	// Zero defaults to stream.DefaultChunkSize (256 KiB).
	ChunkSize int
	// PeerQueueBytes bounds each outbound peer queue. A CopySend into a
	// full queue parks (no copy held) until the writer drains. Zero
	// defaults to 32 MiB.
	PeerQueueBytes int64
	// RecvBudget bounds the worker's total in-flight receive reassembly
	// memory; transfers past it spill to disk. Zero defaults to 64 MiB.
	RecvBudget int64
	// SpillDir is where receive-side spill files live. Empty means a
	// private temp directory, removed at Stop.
	SpillDir string
	// CompressChunks flate-compresses data-plane chunks when that shrinks
	// them (incompressible chunks ride raw).
	CompressChunks bool
	// FleetJoin selects the elastic-fleet handshake: the worker announces
	// itself (FleetAnnounce) instead of registering, is warmed with every
	// live job's templates before taking traffic, and honors drain /
	// decommission orders. Ready() closes once the controller admits it
	// into the active set.
	FleetJoin bool
	// Logf receives diagnostics. Nil defaults to log.Printf.
	Logf func(format string, args ...any)
}

// Stats exposes worker counters (read with atomic loads).
type Stats struct {
	TasksRun       atomic.Uint64
	CopiesSent     atomic.Uint64
	CopiesRecv     atomic.Uint64
	CommandsDone   atomic.Uint64
	TemplatesSeen  atomic.Uint64
	Instantiations atomic.Uint64
	EditsApplied   atomic.Uint64
	PatchesRun     atomic.Uint64
	// JobsEnded counts job namespaces dropped by JobEnd teardown.
	JobsEnded atomic.Uint64
	// QuotaDeferrals counts dispatch decisions that skipped a job with
	// runnable tasks, while free executor slots existed, because the
	// job's quota was exhausted — the fairness mechanism visibly doing
	// its work.
	QuotaDeferrals atomic.Uint64

	// InstallNanos / InstantiateNanos accumulate worker-side time in
	// template install and instantiation (paper Tables 1-2).
	InstallNanos     atomic.Uint64
	InstantiateNanos atomic.Uint64

	// InstantiateCmds counts commands materialized through the compiled
	// fast path; InstantiateNanos/InstantiateCmds is the per-command
	// instantiation cost cmd/nimbus-bench reports.
	InstantiateCmds atomic.Uint64
	// Activations counts units admitted into execution (template
	// instances, patches and spawned batches). Failover tests use it to
	// confirm the worker made progress before — and during — an outage.
	Activations atomic.Uint64
	// Outage counters. OutageDone counts commands completed while the
	// control connection was down (last-known-good autonomy);
	// Reconnects counts successful control-plane reattachments;
	// BufferedReports / ReplayedReports / DroppedReports account the
	// outage buffer of control frames (completions, block-dones, fetch
	// echoes) replayed on reconnect.
	OutageDone      atomic.Uint64
	Reconnects      atomic.Uint64
	BufferedReports atomic.Uint64
	ReplayedReports atomic.Uint64
	DroppedReports  atomic.Uint64
	// Data-plane counters. PeerSendDrops counts payloads dropped on the
	// floor (no peer address, or a dead/consumed frame on a failed
	// connection); ParkedSends counts CopySends that waited for queue
	// space; PeerRedials counts data-plane reconnects. ChunksSent /
	// ChunksRecv / XfersSent / XfersRecv account the chunked path, Spills
	// / SpilledBytes the receive-side disk overflow, and RxAborts the
	// transfers refused for protocol violations.
	PeerSendDrops atomic.Uint64
	ParkedSends   atomic.Uint64
	PeerRedials   atomic.Uint64
	ChunksSent    atomic.Uint64
	ChunksRecv    atomic.Uint64
	XfersSent     atomic.Uint64
	XfersRecv     atomic.Uint64
	Spills        atomic.Uint64
	SpilledBytes  atomic.Uint64
	RxAborts      atomic.Uint64
	// TemplateCompiles / CompileNanos account (re)compilations of
	// installed templates into their dense immutable form (once per
	// install or edit batch, never in steady state).
	TemplateCompiles atomic.Uint64
	CompileNanos     atomic.Uint64
	// UnitsReused counts instantiations served from the arena pool
	// (steady state: every instantiation after the first few).
	UnitsReused atomic.Uint64
}

// Worker is one Nimbus worker node.
type Worker struct {
	cfg   Config
	id    ids.WorkerID
	eager bool

	ctrl    transport.Conn
	events  chan event
	stopped chan struct{}
	stopErr error
	wg      sync.WaitGroup

	reg     *fn.Registry
	durable durable.Store

	// Per-job namespaces. The event loop is the only writer; jobsMu
	// exists so accessors (Store, tests) can read the map from other
	// goroutines. jobList mirrors the map for the round-robin dispatcher
	// and is event-loop confined.
	jobsMu  sync.RWMutex
	jobs    map[ids.JobID]*jstate
	jobList []*jstate
	rr      int
	// deadJobs tombstones ended jobs (the controller never reuses a
	// JobID). Control-channel messages are FIFO behind the JobEnd, so
	// only the independent data plane can race teardown: a late payload
	// for a tombstoned job is dropped instead of resurrecting an empty
	// namespace that nothing would ever tear down again.
	deadJobs map[ids.JobID]struct{}

	// Shared executor accounting: freeSlots counts unoccupied executor
	// slots across all jobs; per-job concurrency is additionally bounded
	// by each jstate's quota.
	freeSlots int

	// unitPool recycles instance arenas (units and their pcmd slots)
	// across jobs. Event-loop confined: units are only acquired and
	// released there.
	unitPool []*unit

	peers     map[ids.WorkerID]string
	peerConns map[ids.WorkerID]*peerConn

	// Streaming data-plane configuration (resolved defaults) and state.
	// xferSeq allocates transfer IDs (event-loop confined — sendPeer and
	// fetchObject both run there); rxBytes is the shared in-flight
	// reassembly budget the receive pumps account against.
	chunkSize      int
	peerQueueBytes int64
	recvBudget     int64
	compress       bool
	spill          *datastore.SpillFS
	spillOwned     bool
	spillClean     sync.Once
	xferSeq        uint64
	rxBytes        atomic.Int64

	// dataMu guards dataConns, the accepted inbound data-plane
	// connections, closed at shutdown so their pumps exit. dataClosed
	// marks that teardown already swept the list: a conn the accept loop
	// raced past the sweep must be closed by the acceptor itself, or its
	// pump outlives Stop.
	dataMu     sync.Mutex
	dataConns  []transport.Conn
	dataClosed bool

	// bdMsg is the reused BlockDone scratch message (event-loop
	// confined; sendCtrl marshals synchronously).
	bdMsg proto.BlockDone

	// Outage state (event-loop confined). While the control connection is
	// down the worker keeps draining its installed work autonomously:
	// outage gates sendCtrl into the bounded outbuf of marshaled frames,
	// replayed in order once the reconnect loop reattaches — to the same
	// controller after a transient drop, or to a promoted standby.
	outage bool
	outbuf [][]byte

	// Fleet lifecycle. drainFlag marks a FleetDrain received — in-flight
	// work keeps executing, and a reconnect after failover clears it
	// (drain-abort). readyCh closes when the worker enters the active set
	// (at registration for fixed-fleet workers, at FleetReady for elastic
	// joins). Both are observable off the event loop by tests.
	drainFlag atomic.Bool
	readyCh   chan struct{}
	readyOnce sync.Once

	// Stats is exported for tests and metrics.
	Stats Stats
}

// jstate is one job's namespace on the worker. Everything the scheduler
// mutates on behalf of a job lives here, so job teardown is a map delete
// and a job-scoped halt touches nothing outside it.
//
// Completion tracking is split by command provenance. Non-template
// commands record completions in the done map. Template and patch
// instance commands never touch the maps: while an instance is in flight
// its completion state lives in the arena (liveUnits); once it finishes,
// the whole instance is summarized as one doneRange, and the job's
// watermark eventually retires the range. waiters holds only cross-unit
// and non-template dependents — intra-instance edges are wired through
// the compiled template's index lists.
type jstate struct {
	id    ids.JobID
	store *datastore.Store

	waiters    map[ids.CommandID][]*pcmd
	done       map[ids.CommandID]struct{}
	doneLow    ids.CommandID
	doneRanges []doneRange
	liveUnits  []*unit
	payloads   map[ids.CommandID]inPayload
	payWait    map[ids.CommandID]*pcmd
	units      []*unit // queued barrier units awaiting activation, FIFO
	unfin      int     // activated, unfinished commands
	runnable   pcmdRing
	haltEpoch  uint64
	halted     bool

	// Prefix arrival counters (barrier accounting), per job so one job's
	// barrier never waits on — and one job's halt never discards — another
	// job's arrivals. Every admitted command takes the job's next arrival
	// index; arrRing marks completed indexes and arrLow is the low
	// watermark: every command with index < arrLow is done. A queued
	// barrier unit stores the arrival prefix it must outwait (mark); it
	// activates exactly when arrLow reaches its mark — O(1) amortized per
	// completion.
	cmdArrived uint64
	arrLow     uint64
	arrRing    []bool // power-of-two capacity, indexed by arrival index

	templates map[ids.TemplateID]*wtemplate
	patches   map[ids.PatchID]*command.CompiledTemplate

	completions []ids.CommandID

	// quota is the job's executor-slot share (fair-share assigned by the
	// controller; defaults to the full slot count until a JobQuota
	// arrives). Atomic only so QuotaOf can read it off-loop; all writes
	// happen on the event loop. running counts the job's tasks currently
	// on executors.
	quota   atomic.Int32
	running int
}

// doneRange summarizes one completed template/patch instance: command id
// is done iff id-base indexes a real entry of the compilation the instance
// ran with. Compilations are immutable, so edits applied after the
// instance completed cannot disturb the record.
type doneRange struct {
	base ids.CommandID
	ct   *command.CompiledTemplate
}

// pcmd is a command in flight on the worker. The command itself is stored
// inline — template instantiation materializes directly into the slot, so
// the steady-state path allocates neither Command nor pcmd.
type pcmd struct {
	cmd    command.Command
	arrIdx uint64 // job-local arrival index (barrier accounting)
	epoch  uint64
	unit   *unit
	// local is the command's position in unit.ct.Entries, or -1 for
	// non-template commands.
	local   int32
	missing int32
	state   uint8
	// needPayload marks a CopyRecv still waiting for its data.
	needPayload bool
}

// pcmd states. A pcmd participates in dependency accounting only while
// active; completions observed before a sibling activates are seen through
// the psDone state instead of a waiter registration.
const (
	psInit uint8 = iota
	psActive
	psDone
)

// unit groups commands that entered together: a template or patch
// instance (ct != nil, arena-backed and pooled) or a spawned batch. Every
// unit belongs to exactly one job (js). Barrier units activate only after
// every command of the same job that arrived before them completes.
type unit struct {
	js        *jstate
	barrier   bool
	instance  uint64 // template instance ID for BlockDone (0 otherwise)
	mark      uint64 // arrival prefix this barrier unit must outwait
	base      ids.CommandID
	ct        *command.CompiledTemplate
	pcs       []pcmd
	remaining int
	activated bool
}

// inPayload is one received object body awaiting its CopyRecv: either an
// in-memory payload, or a spilled one whose bytes wait on disk.
type inPayload struct {
	msg   *proto.DataPayload
	spill *datastore.Spilled
}

type event struct {
	kind eventKind
	msg  proto.Msg
	// msgs carries the trailing messages of a reconnect handshake frame
	// (the controller batches the ack with quotas, halts, etc.).
	msgs []proto.Msg
	cmd  *pcmd
	err  error
	conn transport.Conn
	// spill rides an evData payload whose body is disk-backed.
	spill *datastore.Spilled
	// peer identifies the queue an evPeerSpace wakes parked sends on.
	peer *peerConn
}

type eventKind uint8

const (
	evCtrl eventKind = iota + 1
	evData
	evDone
	evTick
	evClosed
	evReconn
	evPeerSpace
)

// pcmdRing is a job's runnable queue: a growable power-of-two ring buffer.
// Slots are cleared on pop so a drained queue pins no completed pcmds
// (the old slice-pop-front retained the whole backing array).
type pcmdRing struct {
	buf  []*pcmd
	head int
	n    int
}

func (r *pcmdRing) push(pc *pcmd) {
	if r.n == len(r.buf) {
		size := len(r.buf) * 2
		if size == 0 {
			size = 64
		}
		buf := make([]*pcmd, size)
		for i := 0; i < r.n; i++ {
			buf[i] = r.buf[(r.head+i)&(len(r.buf)-1)]
		}
		r.buf = buf
		r.head = 0
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = pc
	r.n++
}

func (r *pcmdRing) pop() *pcmd {
	pc := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return pc
}

func (r *pcmdRing) reset() {
	for i := range r.buf {
		r.buf[i] = nil
	}
	r.head, r.n = 0, 0
}

// New creates a worker; Start connects and runs it.
func New(cfg Config) *Worker {
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.Registry == nil {
		cfg.Registry = fn.NewRegistry()
	}
	if cfg.CompletionBatch <= 0 {
		cfg.CompletionBatch = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.ChunkSize <= 0 {
		cfg.ChunkSize = stream.DefaultChunkSize
	}
	if cfg.PeerQueueBytes <= 0 {
		cfg.PeerQueueBytes = 32 << 20
	}
	if cfg.RecvBudget <= 0 {
		cfg.RecvBudget = 64 << 20
	}
	return &Worker{
		cfg:            cfg,
		events:         make(chan event, 1024),
		stopped:        make(chan struct{}),
		readyCh:        make(chan struct{}),
		reg:            cfg.Registry,
		durable:        cfg.Durable,
		jobs:           make(map[ids.JobID]*jstate),
		deadJobs:       make(map[ids.JobID]struct{}),
		freeSlots:      cfg.Slots,
		peers:          make(map[ids.WorkerID]string),
		peerConns:      make(map[ids.WorkerID]*peerConn),
		chunkSize:      cfg.ChunkSize,
		peerQueueBytes: cfg.PeerQueueBytes,
		recvBudget:     cfg.RecvBudget,
		compress:       cfg.CompressChunks,
	}
}

// job returns the namespace for one job, creating it on first use (event
// loop only).
func (w *Worker) job(id ids.JobID) *jstate {
	if js, ok := w.jobs[id]; ok {
		return js
	}
	js := &jstate{
		id:        id,
		store:     datastore.New(),
		waiters:   make(map[ids.CommandID][]*pcmd),
		done:      make(map[ids.CommandID]struct{}),
		payloads:  make(map[ids.CommandID]inPayload),
		payWait:   make(map[ids.CommandID]*pcmd),
		arrRing:   make([]bool, 1024),
		templates: make(map[ids.TemplateID]*wtemplate),
		patches:   make(map[ids.PatchID]*command.CompiledTemplate),
	}
	js.quota.Store(int32(w.cfg.Slots))
	w.jobsMu.Lock()
	w.jobs[id] = js
	w.jobsMu.Unlock()
	w.jobList = append(w.jobList, js)
	return js
}

// dropJob tears one job's namespace down (event loop only). In-flight
// executor tasks of the job drain through the stale-epoch path.
func (w *Worker) dropJob(id ids.JobID) {
	js, ok := w.jobs[id]
	if !ok {
		return
	}
	js.haltEpoch++
	js.halted = true
	js.runnable.reset()
	// The namespace is going away entirely; disk-backed state must not
	// outlive it. Undelivered spilled payloads and spilled store objects
	// both hold files.
	for _, ip := range js.payloads {
		if ip.spill != nil {
			ip.spill.Remove()
		}
	}
	js.store.Clear()
	w.deadJobs[id] = struct{}{}
	// Bound the tombstone map under sustained job churn: JobIDs are
	// monotonic and a dead job's late payloads are in flight only
	// briefly, so tombstones far below the newest ended job can go. A
	// payload outliving this horizon would recreate a phantom namespace,
	// which is the lesser evil against unbounded growth.
	if len(w.deadJobs) > 4096 {
		for old := range w.deadJobs {
			if old+1024 < id {
				delete(w.deadJobs, old)
			}
		}
	}
	w.jobsMu.Lock()
	delete(w.jobs, id)
	w.jobsMu.Unlock()
	for i, j := range w.jobList {
		if j == js {
			w.jobList = append(w.jobList[:i], w.jobList[i+1:]...)
			break
		}
	}
	w.Stats.JobsEnded.Add(1)
}

// ID returns the controller-assigned worker ID (valid after Start).
func (w *Worker) ID() ids.WorkerID { return w.id }

// Spill exposes the worker's spill allocator (valid after Start); chaos
// tests arm its fault hook to reach the spill error paths.
func (w *Worker) Spill() *datastore.SpillFS { return w.spill }

// QuotaOf reports one job's assigned executor-slot quota on this worker
// (fair-share tests); zero if the job has no namespace here.
func (w *Worker) QuotaOf(job ids.JobID) int {
	w.jobsMu.RLock()
	defer w.jobsMu.RUnlock()
	if js, ok := w.jobs[job]; ok {
		return int(js.quota.Load())
	}
	return 0
}

// StoreOf exposes one job's object store (tests and Gets); nil if the job
// has no namespace on this worker.
func (w *Worker) StoreOf(job ids.JobID) *datastore.Store {
	w.jobsMu.RLock()
	defer w.jobsMu.RUnlock()
	if js, ok := w.jobs[job]; ok {
		return js.store
	}
	return nil
}

// Start connects to the controller, registers, and launches the event
// loop. It returns once registration completes.
func (w *Worker) Start() error {
	dir := w.cfg.SpillDir
	if dir == "" {
		d, err := os.MkdirTemp("", "nimbus-spill-")
		if err != nil {
			return fmt.Errorf("worker: spill dir: %w", err)
		}
		w.spillOwned = true
		dir = d
	}
	fs, err := datastore.NewSpillFS(dir)
	if err != nil {
		if w.spillOwned {
			os.RemoveAll(dir)
		}
		return err
	}
	w.spill = fs
	// Data plane first, so the address is live before the controller
	// distributes it.
	dl, err := w.cfg.Transport.Listen(w.cfg.DataAddr)
	if err != nil {
		w.removeSpillDir()
		return fmt.Errorf("worker: data listen: %w", err)
	}
	// The controller may not be listening yet (or may be mid-failover):
	// retry with backoff for a bounded window instead of failing hard.
	ctrl, err := transport.DialRetry(w.cfg.Transport, w.cfg.ControlAddr, transport.Backoff{}, 0, 2*time.Second, w.stopped)
	if err != nil {
		dl.Close()
		w.removeSpillDir()
		return fmt.Errorf("worker: control dial: %w", err)
	}
	w.ctrl = ctrl
	if w.cfg.FleetJoin {
		return w.startFleet(ctrl, dl)
	}
	if err := w.sendCtrl(&proto.RegisterWorker{DataAddr: w.cfg.DataAddr, Slots: w.cfg.Slots}); err != nil {
		dl.Close()
		w.removeSpillDir()
		return fmt.Errorf("worker: register: %w", err)
	}
	raw, err := ctrl.Recv()
	if err != nil {
		dl.Close()
		w.removeSpillDir()
		return fmt.Errorf("worker: awaiting registration ack: %w", err)
	}
	msg, err := proto.Unmarshal(raw)
	proto.PutBuf(raw)
	if err != nil {
		dl.Close()
		w.removeSpillDir()
		return err
	}
	ack, ok := msg.(*proto.RegisterWorkerAck)
	if !ok {
		dl.Close()
		w.removeSpillDir()
		return fmt.Errorf("worker: expected registration ack, got %s", msg.Kind())
	}
	w.id = ack.Worker
	w.eager = ack.Eager
	for id, addr := range ack.Peers {
		w.peers[id] = addr
	}
	// Registered workers are in the active set from the first event-loop
	// turn; there is no warm phase to wait out.
	w.readyOnce.Do(func() { close(w.readyCh) })

	w.wg.Add(3)
	go w.ctrlPump(ctrl)
	go w.acceptLoop(dl)
	go w.run(dl)
	if w.cfg.HeartbeatEvery > 0 {
		w.wg.Add(1)
		go w.heartbeatLoop()
	}
	return nil
}

// startFleet runs the elastic-join handshake: announce, await admission.
// The controller coalesces its whole admission turn into one frame, so
// the admit may arrive with template installs and the FleetWarm probe
// behind it. Those extras are fed into the event loop in order BEFORE the
// control pump starts, preserving controller message order — the warm ack
// the controller is waiting for must only be sent after every install in
// the same frame has been applied.
func (w *Worker) startFleet(ctrl transport.Conn, dl transport.Listener) error {
	fail := func(err error) error {
		ctrl.Close()
		dl.Close()
		w.removeSpillDir()
		return err
	}
	if err := w.sendCtrl(&proto.FleetAnnounce{DataAddr: w.cfg.DataAddr, Slots: w.cfg.Slots}); err != nil {
		return fail(fmt.Errorf("worker: fleet announce: %w", err))
	}
	raw, err := ctrl.Recv()
	if err != nil {
		return fail(fmt.Errorf("worker: awaiting fleet admission: %w", err))
	}
	var msgs []proto.Msg
	err = proto.ForEachMsg(raw, func(m proto.Msg) error {
		msgs = append(msgs, m)
		return nil
	})
	proto.PutBuf(raw)
	if err != nil {
		return fail(err)
	}
	if len(msgs) == 0 {
		return fail(fmt.Errorf("worker: empty fleet admission frame"))
	}
	admit, ok := msgs[0].(*proto.FleetAdmit)
	if !ok {
		return fail(fmt.Errorf("worker: expected fleet admit, got %s", msgs[0].Kind()))
	}
	w.id = admit.Worker
	w.eager = admit.Eager
	for id, addr := range admit.Peers {
		w.peers[id] = addr
	}
	w.wg.Add(2)
	go w.acceptLoop(dl)
	go w.run(dl)
	// The event loop is live and draining, so these sends cannot deadlock
	// even if the admission frame outruns the channel buffer.
	for _, m := range msgs[1:] {
		w.events <- event{kind: evCtrl, msg: m}
	}
	w.wg.Add(1)
	go w.ctrlPump(ctrl)
	if w.cfg.HeartbeatEvery > 0 {
		w.wg.Add(1)
		go w.heartbeatLoop()
	}
	return nil
}

// Ready is closed once the controller has entered this worker into the
// active set: immediately after registration for fixed-fleet workers, at
// FleetReady (warm complete) for elastic joins.
func (w *Worker) Ready() <-chan struct{} { return w.readyCh }

// Draining reports whether a FleetDrain order is in effect.
func (w *Worker) Draining() bool { return w.drainFlag.Load() }

// Stop shuts the worker down and waits for its goroutines.
func (w *Worker) Stop() {
	select {
	case w.events <- event{kind: evClosed}:
	case <-w.stopped:
	}
	w.wg.Wait()
	w.removeSpillDir()
}

// Wait blocks until the worker stops (controller shutdown or error).
func (w *Worker) Wait() error {
	<-w.stopped
	w.wg.Wait()
	w.removeSpillDir()
	return w.stopErr
}

// removeSpillDir discards the worker's spill root if the worker created
// it (spill files are cache, not durability). Runs after wg.Wait so no
// pump is still writing into it.
func (w *Worker) removeSpillDir() {
	if !w.spillOwned || w.spill == nil {
		return
	}
	w.spillClean.Do(func() { os.RemoveAll(w.spill.Dir()) })
}

func (w *Worker) sendCtrl(m proto.Msg) error {
	if w.outage {
		w.bufferCtrl(m)
		return nil
	}
	buf := proto.MarshalAppend(proto.GetBuf(), m)
	owned, err := transport.SendOwned(w.ctrl, buf)
	if !owned {
		proto.PutBuf(buf)
	}
	return err
}

// outbufCap bounds the outage buffer. Overflow drops the oldest frame:
// the newest completions are the ones a reattached controller could still
// be waiting on.
const outbufCap = 1024

// bufferCtrl marshals a control frame into the outage buffer. Heartbeats
// are skipped — there is nobody to read them, and replaying stale ones
// would be noise.
func (w *Worker) bufferCtrl(m proto.Msg) {
	if _, ok := m.(*proto.Heartbeat); ok {
		return
	}
	if len(w.outbuf) >= outbufCap {
		w.outbuf = w.outbuf[1:]
		w.Stats.DroppedReports.Add(1)
	}
	w.outbuf = append(w.outbuf, proto.Marshal(m))
	w.Stats.BufferedReports.Add(1)
}

// errPumpStopped aborts a frame iteration when the worker shuts down
// mid-batch.
var errPumpStopped = errors.New("pump stopped")

func (w *Worker) ctrlPump(conn transport.Conn) {
	defer w.wg.Done()
	w.pump(conn, evCtrl, "control")
}

// pump forwards a connection's messages into the event loop, unpacking
// batch frames and recycling each frame buffer after decode. Only the
// control connection's loss is an event; data connections come and go.
func (w *Worker) pump(conn transport.Conn, kind eventKind, label string) {
	for {
		raw, err := conn.Recv()
		if err != nil {
			if kind == evCtrl {
				select {
				case w.events <- event{kind: evClosed, err: err}:
				case <-w.stopped:
				}
			}
			return
		}
		err = proto.ForEachMsg(raw, func(msg proto.Msg) error {
			select {
			case w.events <- event{kind: kind, msg: msg}:
				return nil
			case <-w.stopped:
				return errPumpStopped
			}
		})
		proto.PutBuf(raw)
		if errors.Is(err, errPumpStopped) {
			return
		}
		if err != nil {
			w.cfg.Logf("worker %s: bad %s message: %v", w.id, label, err)
		}
	}
}

func (w *Worker) acceptLoop(dl transport.Listener) {
	defer w.wg.Done()
	for {
		conn, err := dl.Accept()
		if err != nil {
			return
		}
		w.dataMu.Lock()
		if w.dataClosed {
			w.dataMu.Unlock()
			conn.Close()
			continue
		}
		w.dataConns = append(w.dataConns, conn)
		w.dataMu.Unlock()
		w.wg.Add(1)
		go w.dataPump(conn)
	}
}

func (w *Worker) heartbeatLoop() {
	defer w.wg.Done()
	t := time.NewTicker(w.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			select {
			case w.events <- event{kind: evTick}:
			case <-w.stopped:
				return
			}
		case <-w.stopped:
			return
		}
	}
}

// run is the event loop owning all control state.
func (w *Worker) run(dl transport.Listener) {
	defer w.wg.Done()
	defer func() {
		dl.Close()
		w.closePeers()
		w.dataMu.Lock()
		w.dataClosed = true
		conns := w.dataConns
		w.dataConns = nil
		w.dataMu.Unlock()
		for _, conn := range conns {
			conn.Close()
		}
	}()
	for ev := range w.events {
		switch ev.kind {
		case evCtrl:
			if shutdown := w.handleCtrl(ev.msg); shutdown {
				w.finish(nil)
				return
			}
		case evData:
			if p, ok := ev.msg.(*proto.DataPayload); ok {
				w.handlePayload(p, ev.spill)
			}
		case evPeerSpace:
			w.retryParked(ev.peer)
		case evDone:
			w.handleDone(ev.cmd)
		case evTick:
			if w.outage {
				break
			}
			pending := 0
			for _, js := range w.jobList {
				pending += js.unfin
			}
			_ = w.sendCtrl(&proto.Heartbeat{
				Worker:  w.id,
				Pending: pending,
				Done:    w.Stats.CommandsDone.Load(),
			})
		case evClosed:
			if ev.err != nil {
				// The control connection dropped without a Shutdown: the
				// controller crashed (or the link did). Keep executing —
				// installed templates, queued instances and the data plane
				// need no controller — and reattach in the background.
				w.enterOutage(ev.err)
				break
			}
			w.finish(ev.err)
			return
		case evReconn:
			if shutdown := w.completeReconnect(ev.conn, ev.msg.(*proto.RegisterWorkerAck), ev.msgs); shutdown {
				w.finish(nil)
				return
			}
		}
	}
}

func (w *Worker) finish(err error) {
	w.stopErr = err
	close(w.stopped)
	w.ctrl.Close()
}

// enterOutage switches the worker to autonomous mode after losing the
// control connection: control frames buffer, local execution continues,
// and a background loop redials until a controller — the same one, or a
// promoted standby on the same address — accepts a reconnect.
func (w *Worker) enterOutage(err error) {
	if w.outage {
		return
	}
	w.cfg.Logf("worker %s: control connection lost, running autonomously: %v", w.id, err)
	w.outage = true
	w.ctrl.Close()
	w.wg.Add(1)
	go w.reconnectLoop()
}

// reconnectLoop redials the control endpoint with backoff until a
// controller acks a WorkerReconnect under this worker's existing identity.
// It gives up only when the worker stops.
func (w *Worker) reconnectLoop() {
	defer w.wg.Done()
	for {
		conn, err := transport.DialRetry(w.cfg.Transport, w.cfg.ControlAddr, transport.Backoff{}, 0, 0, w.stopped)
		if err != nil {
			return // stopped
		}
		ack, extra, err := w.reconnectHandshake(conn)
		if err != nil {
			conn.Close()
			select {
			case <-w.stopped:
				return
			case <-time.After(transport.Backoff{}.Delay(3, nil)):
				continue
			}
		}
		select {
		case w.events <- event{kind: evReconn, msg: ack, msgs: extra, conn: conn}:
		case <-w.stopped:
			conn.Close()
		}
		return
	}
}

// reconnectHandshake runs the reattach exchange on a fresh connection:
// announce the prior identity, await the ack. The controller batches its
// event-loop turn into one frame, so the ack may arrive with quota, halt
// or other control messages behind it — those are returned for the event
// loop to process in order after the swap. A watcher unblocks the Recv if
// the worker stops mid-handshake.
func (w *Worker) reconnectHandshake(conn transport.Conn) (*proto.RegisterWorkerAck, []proto.Msg, error) {
	buf := proto.MarshalAppend(proto.GetBuf(), &proto.WorkerReconnect{
		Worker: w.id, DataAddr: w.cfg.DataAddr, Slots: w.cfg.Slots,
	})
	if owned, err := transport.SendOwned(conn, buf); err != nil {
		if !owned {
			proto.PutBuf(buf)
		}
		return nil, nil, err
	} else if !owned {
		proto.PutBuf(buf)
	}
	hsDone := make(chan struct{})
	go func() {
		select {
		case <-w.stopped:
			conn.Close()
		case <-hsDone:
		}
	}()
	raw, err := conn.Recv()
	close(hsDone)
	if err != nil {
		return nil, nil, err
	}
	var msgs []proto.Msg
	err = proto.ForEachMsg(raw, func(m proto.Msg) error {
		msgs = append(msgs, m)
		return nil
	})
	proto.PutBuf(raw)
	if err != nil {
		return nil, nil, err
	}
	if len(msgs) == 0 {
		return nil, nil, fmt.Errorf("worker: empty reconnect handshake frame")
	}
	ack, ok := msgs[0].(*proto.RegisterWorkerAck)
	if !ok {
		return nil, nil, fmt.Errorf("worker: expected reconnect ack, got %s", msgs[0].Kind())
	}
	return ack, msgs[1:], nil
}

// completeReconnect replays the outage buffer on the fresh connection and
// swaps it in as the control connection. The controller reconciles:
// replayed completions for commands its takeover recovery discarded fall
// out of its outstanding tables as unknown IDs, so nothing double-applies,
// while reports it was still waiting on land exactly once. A send failure
// mid-replay means the fresh connection died under us: the unsent suffix
// goes back into the outage buffer — never silently dropped — and the
// worker stays in outage with a new reconnect loop running.
func (w *Worker) completeReconnect(conn transport.Conn, ack *proto.RegisterWorkerAck, extra []proto.Msg) (shutdown bool) {
	// A promoted standby readmits this worker as a plain active member —
	// fleet phases are not replicated — so any drain in flight is aborted
	// and a join mid-warm completes as a plain registration.
	w.drainFlag.Store(false)
	w.readyOnce.Do(func() { close(w.readyCh) })
	w.eager = ack.Eager
	for id, addr := range ack.Peers {
		w.peers[id] = addr
	}
	out := w.outbuf
	w.outbuf = nil
	for i, buf := range out {
		owned, err := transport.SendOwned(conn, buf)
		if err != nil {
			w.cfg.Logf("worker %s: outage replay: %v", w.id, err)
			rest := out[i:]
			if owned {
				// The transport consumed the frame as it failed; that one
				// report is genuinely gone.
				rest = out[i+1:]
				w.Stats.DroppedReports.Add(1)
			}
			w.outbuf = append(w.outbuf, rest...)
			conn.Close()
			w.wg.Add(1)
			go w.reconnectLoop()
			return false
		}
		w.Stats.ReplayedReports.Add(1)
	}
	w.ctrl = conn
	w.outage = false
	w.Stats.Reconnects.Add(1)
	w.cfg.Logf("worker %s: reattached to controller, %d buffered frames replayed", w.id, len(out))
	// Process the rest of the handshake frame (quotas, halts) before the
	// pump delivers anything newer, preserving controller message order.
	for _, m := range extra {
		if shutdown := w.handleCtrl(m); shutdown {
			return true
		}
	}
	w.wg.Add(1)
	go w.ctrlPump(conn)
	return false
}

func (w *Worker) closePeers() {
	for _, pc := range w.peerConns {
		pc.close()
	}
}

// handleCtrl dispatches one controller message; it reports whether the
// worker should shut down. Job-scoped messages resolve their namespace
// here, creating it on first use.
func (w *Worker) handleCtrl(msg proto.Msg) bool {
	switch m := msg.(type) {
	case *proto.RegisterWorkerAck:
		// Peer updates arrive as repeated acks with the full peer map.
		for id, addr := range m.Peers {
			w.peers[id] = addr
		}
	case *proto.SpawnCommands:
		js := w.job(m.Job)
		w.enqueue(w.newBatchUnit(js, m.Cmds, m.Barrier))
	case *proto.InstallTemplate:
		w.installTemplate(w.job(m.Job), m)
	case *proto.InstantiateTemplate:
		w.instantiate(w.job(m.Job), m)
	case *proto.InstallPatch:
		w.installPatch(w.job(m.Job), m)
	case *proto.InstantiatePatch:
		w.instantiatePatch(w.job(m.Job), m)
	case *proto.FetchObject:
		w.fetchObject(m)
	case *proto.Halt:
		w.halt(w.job(m.Job), m)
	case *proto.Resume:
		w.job(m.Job).halted = false
	case *proto.JobQuota:
		w.setQuota(m)
	case *proto.JobEnd:
		w.dropJob(m.Job)
	case *proto.FleetWarm:
		// All installs in the warm frame precede this message, so acking
		// here certifies every template compiled before traffic arrives.
		_ = w.sendCtrl(&proto.FleetWarmAck{Worker: w.id, Seq: m.Seq})
	case *proto.FleetReady:
		w.readyOnce.Do(func() { close(w.readyCh) })
	case *proto.FleetDrain:
		w.drainFlag.Store(true)
	case *proto.FleetDecommission:
		return true
	case *proto.Shutdown:
		return true
	default:
		w.cfg.Logf("worker %s: unexpected control message %s", w.id, msg.Kind())
	}
	return false
}

// setQuota applies a fair-share slot assignment. A quota below 1 is
// clamped: every admitted job must be able to make progress.
func (w *Worker) setQuota(m *proto.JobQuota) {
	js := w.job(m.Job)
	q := m.Slots
	if q < 1 {
		q = 1
	}
	if q > w.cfg.Slots {
		q = w.cfg.Slots
	}
	js.quota.Store(int32(q))
	// A raised quota may unblock deferred tasks immediately.
	w.dispatch()
}

// getUnit acquires an arena of n command slots for one job, reusing a
// pooled unit when possible (steady state: always, after the first
// instantiation at a given shape). The pool is shared across jobs: arenas
// are zeroed on release, so reuse leaks nothing between tenants.
func (w *Worker) getUnit(js *jstate, n int) *unit {
	var u *unit
	if k := len(w.unitPool); k > 0 {
		u = w.unitPool[k-1]
		w.unitPool[k-1] = nil
		w.unitPool = w.unitPool[:k-1]
		w.Stats.UnitsReused.Add(1)
	} else {
		u = &unit{}
	}
	u.js = js
	if cap(u.pcs) < n {
		u.pcs = make([]pcmd, n)
	} else {
		u.pcs = u.pcs[:n]
	}
	return u
}

// releaseUnit returns an arena to the pool. Callers must guarantee no
// outstanding references to the unit's pcmds: a unit is released only when
// remaining hits zero, at which point every executor goroutine has posted
// its completion and every waiter registration has been consumed.
func (w *Worker) releaseUnit(u *unit) {
	u.js = nil
	u.ct = nil
	u.base = 0
	u.instance = 0
	u.barrier = false
	u.activated = false
	u.remaining = 0
	u.mark = 0
	// Zero the slots so a pooled arena pins no command payloads (param
	// blobs, access sets) from its previous instance — same discipline
	// as the runnable ring and the task scratch.
	for i := range u.pcs {
		u.pcs[i] = pcmd{}
	}
	u.pcs = u.pcs[:0]
	w.unitPool = append(w.unitPool, u)
}

// newBatchUnit wraps decoded spawn commands in an arena unit. The commands
// are copied into the arena's inline slots, so the batch path shares the
// template path's scheduling machinery (one slab instead of two heap
// objects per command).
func (w *Worker) newBatchUnit(js *jstate, cmds []*command.Command, barrier bool) *unit {
	u := w.getUnit(js, len(cmds))
	u.barrier = barrier
	for i, c := range cmds {
		u.pcs[i].cmd = *c
		u.pcs[i].local = -1
	}
	return u
}

// halt implements the recovery protocol (paper §4.4) for one job:
// terminate the job's ongoing work, flush its queues, acknowledge. Other
// jobs' arenas, payloads and barriers are untouched — that containment is
// the point of job-scoped halts.
func (w *Worker) halt(js *jstate, m *proto.Halt) {
	js.haltEpoch++
	js.halted = true
	// Completions recorded inside flushed in-flight arenas must survive
	// the flush (the map-based path kept them in the done map): sweep
	// them into the done map before dropping the arenas. Queued units
	// have no completions yet. Flushed arenas are abandoned to the GC,
	// not pooled — stale executor goroutines may still hold their pcmds.
	for _, u := range js.liveUnits {
		if !u.activated {
			continue
		}
		for i := range u.pcs {
			if u.pcs[i].state == psDone {
				js.done[u.pcs[i].cmd.ID] = struct{}{}
			}
		}
	}
	js.liveUnits = nil
	js.waiters = make(map[ids.CommandID][]*pcmd)
	// Flushed payloads that spilled hold disk files; release them with the
	// buffer.
	for _, ip := range js.payloads {
		if ip.spill != nil {
			ip.spill.Remove()
		}
	}
	js.payloads = make(map[ids.CommandID]inPayload)
	js.payWait = make(map[ids.CommandID]*pcmd)
	js.units = nil
	js.runnable.reset()
	js.unfin = 0
	// freeSlots and js.running are NOT reset: in-flight tasks still occupy
	// real executor goroutines and return their slots through the
	// stale-epoch path as they drain, preserving freeSlots + running ==
	// Slots. (The old reset-plus-credit double-counted and let the
	// concurrency limit creep past cfg.Slots after every recovery.)
	js.completions = js.completions[:0]
	// Arrival accounting restarts empty: nothing admitted before the
	// halt can complete anymore.
	js.arrLow = js.cmdArrived
	for i := range js.arrRing {
		js.arrRing[i] = false
	}
	_ = w.sendCtrl(&proto.HaltAck{Job: js.id, Seq: m.Seq, Worker: w.id})
}

func (w *Worker) fetchObject(m *proto.FetchObject) {
	var data []byte
	var version uint64
	if js, ok := w.jobs[m.Job]; ok {
		if o := js.store.Get(m.Object); o != nil {
			data = o.Data
			version = o.Version
		}
	}
	if len(data) <= w.chunkSize {
		_ = w.sendCtrl(&proto.ObjectData{Seq: m.Seq, Object: m.Object, Version: version, Data: data})
		return
	}
	// Large fetch replies ride the chunked path over the control
	// connection, marked ChunkFetch and keyed by the fetch sequence so the
	// controller's reassembler can synthesize the ObjectData. No credits:
	// fetches are controller-requested and rare, not a shuffle.
	w.xferSeq++
	ck := proto.DataChunk{
		Job:     m.Job,
		Xfer:    w.xferSeq,
		Flags:   proto.ChunkFetch,
		Object:  m.Object,
		Version: version,
		Fetch:   m.Seq,
		Total:   uint64(len(data)),
	}
	for off, seq := 0, uint32(0); off < len(data); seq++ {
		end := off + w.chunkSize
		if end > len(data) {
			end = len(data)
		}
		ck.Seq = seq
		ck.Last = end == len(data)
		ck.Raw = data[off:end]
		if err := w.sendCtrl(&ck); err != nil {
			return
		}
		off = end
	}
}
