package worker

import (
	"testing"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// fakeController drives a single worker directly, asserting on the raw
// protocol: it plays the controller role over the in-memory transport.
type fakeController struct {
	t    *testing.T
	lis  transport.Listener
	conn transport.Conn
	w    *Worker
	// inbox is fed by a single persistent reader so sequential recvUntil
	// calls never compete for messages.
	inbox chan proto.Msg
}

func startWorkerHarness(t *testing.T) *fakeController {
	t.Helper()
	tr := transport.NewMem(0)
	lis, err := tr.Listen("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeController{t: t, lis: lis}
	accepted := make(chan transport.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	w := New(Config{
		ControlAddr: "ctrl",
		DataAddr:    "data/1",
		Transport:   tr,
		Slots:       2,
		Registry:    fn.NewRegistry(),
		Logf:        t.Logf,
	})
	errc := make(chan error, 1)
	go func() { errc <- w.Start() }()
	conn := <-accepted
	// Consume the registration and ack it.
	raw, err := conn.Recv()
	if err != nil {
		t.Fatal(err)
	}
	msg, err := proto.Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := msg.(*proto.RegisterWorker); !ok {
		t.Fatalf("first message = %s", msg.Kind())
	}
	if err := conn.Send(proto.Marshal(&proto.RegisterWorkerAck{Worker: 1})); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("worker start: %v", err)
	}
	fc.conn = conn
	fc.w = w
	fc.inbox = make(chan proto.Msg, 256)
	go func() {
		for {
			raw, err := conn.Recv()
			if err != nil {
				close(fc.inbox)
				return
			}
			if m, err := proto.Unmarshal(raw); err == nil {
				fc.inbox <- m
			}
		}
	}()
	t.Cleanup(func() {
		w.Stop()
		lis.Close()
	})
	return fc
}

func (fc *fakeController) send(m proto.Msg) {
	fc.t.Helper()
	if err := fc.conn.Send(proto.Marshal(m)); err != nil {
		fc.t.Fatal(err)
	}
}

// recvUntil consumes controller-bound messages until pred matches.
func (fc *fakeController) recvUntil(timeout time.Duration, pred func(proto.Msg) bool) proto.Msg {
	fc.t.Helper()
	deadline := time.After(timeout)
	for {
		select {
		case m, ok := <-fc.inbox:
			if !ok {
				fc.t.Fatal("connection closed while waiting")
			}
			if pred(m) {
				return m
			}
		case <-deadline:
			fc.t.Fatal("timed out waiting for message")
		}
	}
}

// TestWorkerDependencyOrder spawns two commands where the second depends
// on the first and verifies both complete (local resolution, requirement
// 1 of §3.1).
func TestWorkerDependencyOrder(t *testing.T) {
	fc := startWorkerHarness(t)
	fc.send(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 2, Kind: command.Task, Function: fn.FuncNop,
			Writes: []ids.ObjectID{1}, Before: []ids.CommandID{1}},
		{ID: 1, Kind: command.Task, Function: fn.FuncNop,
			Writes: []ids.ObjectID{1}},
	}})
	seen := make(map[ids.CommandID]bool)
	fc.recvUntil(5*time.Second, func(m proto.Msg) bool {
		if c, ok := m.(*proto.Complete); ok {
			for _, id := range c.IDs {
				seen[id] = true
			}
		}
		return seen[1] && seen[2]
	})
	if fc.w.Stats.TasksRun.Load() != 2 {
		t.Fatalf("tasks run = %d", fc.w.Stats.TasksRun.Load())
	}
}

// TestWorkerTemplateLifecycle installs a template, instantiates it twice,
// applies an edit, and verifies BlockDone reporting each time.
func TestWorkerTemplateLifecycle(t *testing.T) {
	fc := startWorkerHarness(t)
	fc.send(&proto.InstallTemplate{
		Template: 7, Name: "blk",
		Entries: []command.TemplateEntry{
			{Index: 0, Kind: command.Task, Function: fn.FuncNop,
				Writes: []ids.ObjectID{1}, ParamSlot: command.NoParamSlot},
			{Index: 1, Kind: command.Task, Function: fn.FuncNop,
				Reads: []ids.ObjectID{1}, BeforeIdx: []int32{0},
				ParamSlot: command.NoParamSlot},
		},
	})
	waitBlock := func(instance uint64) {
		fc.recvUntil(5*time.Second, func(m proto.Msg) bool {
			bd, ok := m.(*proto.BlockDone)
			return ok && bd.Instance == instance
		})
	}
	fc.send(&proto.InstantiateTemplate{Template: 7, Instance: 1, Base: 100})
	waitBlock(1)
	fc.send(&proto.InstantiateTemplate{Template: 7, Instance: 2, Base: 200})
	waitBlock(2)
	if got := fc.w.Stats.TasksRun.Load(); got != 4 {
		t.Fatalf("tasks run = %d, want 4", got)
	}
	// Edit: remove entry 1, add entry 2.
	fc.send(&proto.InstantiateTemplate{
		Template: 7, Instance: 3, Base: 300,
		Edits: []command.Edit{{
			Remove: []int32{1},
			Add: []command.TemplateEntry{
				{Index: 2, Kind: command.Task, Function: fn.FuncNop,
					Reads: []ids.ObjectID{1}, BeforeIdx: []int32{0},
					ParamSlot: command.NoParamSlot},
			},
		}},
	})
	waitBlock(3)
	if got := fc.w.Stats.EditsApplied.Load(); got != 2 {
		t.Fatalf("edits applied = %d, want 2", got)
	}
	// The edit is persistent: the next instance runs the edited shape.
	fc.send(&proto.InstantiateTemplate{Template: 7, Instance: 4, Base: 400})
	waitBlock(4)
	if got := fc.w.Stats.TasksRun.Load(); got != 8 {
		t.Fatalf("tasks run = %d, want 8", got)
	}
}

// TestWorkerHaltFlushesQueues verifies Halt discards pending work and
// acknowledges (recovery protocol, §4.4).
func TestWorkerHaltFlushesQueues(t *testing.T) {
	fc := startWorkerHarness(t)
	// A command that can never run (dependency never arrives).
	fc.send(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 10, Kind: command.Task, Function: fn.FuncNop,
			Before: []ids.CommandID{9999}},
	}})
	fc.send(&proto.Halt{Seq: 1})
	fc.recvUntil(5*time.Second, func(m proto.Msg) bool {
		ha, ok := m.(*proto.HaltAck)
		return ok && ha.Seq == 1
	})
	fc.send(&proto.Resume{})
	// Fresh work after resume runs normally.
	fc.send(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 11, Kind: command.Task, Function: fn.FuncNop},
	}})
	fc.recvUntil(5*time.Second, func(m proto.Msg) bool {
		c, ok := m.(*proto.Complete)
		return ok && len(c.IDs) > 0 && c.IDs[0] == 11
	})
}

// TestWorkerBarrierUnit verifies a barrier unit (template instance) waits
// for previously enqueued work: a slow task spawned first must complete
// before the instance's commands run.
func TestWorkerBarrierUnit(t *testing.T) {
	fc := startWorkerHarness(t)
	fc.send(&proto.InstallTemplate{
		Template: 3, Name: "b",
		Entries: []command.TemplateEntry{
			{Index: 0, Kind: command.Task, Function: fn.FuncNop,
				Writes: []ids.ObjectID{5}, ParamSlot: command.NoParamSlot},
		},
	})
	// Slow simulated task first.
	fc.send(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 20, Kind: command.Task, Function: fn.FuncSim,
			Params: fn.SimParams(100 * time.Millisecond), Writes: []ids.ObjectID{5}},
	}})
	start := time.Now()
	fc.send(&proto.InstantiateTemplate{Template: 3, Instance: 9, Base: 500})
	fc.recvUntil(5*time.Second, func(m proto.Msg) bool {
		bd, ok := m.(*proto.BlockDone)
		return ok && bd.Instance == 9
	})
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("instance completed in %v; barrier did not wait for prior work", d)
	}
}
