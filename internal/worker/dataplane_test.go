package worker

import (
	"bytes"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/datastore"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/stream"
	"nimbus/internal/transport"
)

// newLoopWorker builds a worker whose event loop is driven by the test
// itself (no Start, no controller): the test plays the event loop, so it
// may call event-loop-confined methods directly.
func newLoopWorker(t *testing.T, cfg Config) *Worker {
	t.Helper()
	if cfg.Transport == nil {
		cfg.Transport = transport.NewMem(0)
	}
	cfg.Registry = fn.NewRegistry()
	cfg.Logf = t.Logf
	w := New(cfg)
	w.id = 1
	return w
}

// copySendCmd builds an in-flight CopySend pcmd against a fresh unit.
func copySendCmd(w *Worker, js *jstate, id ids.CommandID, obj ids.ObjectID, dst ids.WorkerID) *pcmd {
	u := w.getUnit(js, 1)
	pc := &u.pcs[0]
	pc.cmd = command.Command{
		ID:         id,
		Kind:       command.CopySend,
		Reads:      []ids.ObjectID{obj},
		DstWorker:  dst,
		DstCommand: id + 1000,
		Logical:    ids.LogicalID(obj),
	}
	pc.unit = u
	pc.epoch = js.haltEpoch
	pc.local = -1
	return pc
}

// TestPeerConnConcurrentRace hammers one peerConn from concurrent
// producers, a consumer, a credit granter and a closer under -race.
func TestPeerConnConcurrentRace(t *testing.T) {
	w := newLoopWorker(t, Config{ControlAddr: "c", DataAddr: "d", PeerQueueBytes: 1 << 16})
	pc := newPeerConn(w, 2, "peer")
	quit := make(chan struct{})
	go func() { // drain evPeerSpace posts so postSpace never blocks
		for {
			select {
			case <-w.events:
			case <-quit:
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for p := 0; p < 4; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				frame := append(proto.GetBuf(), make([]byte, 64)...)
				switch pc.enqueue(peerItem{frame: frame, size: 64}) {
				case admitOK:
				default:
					proto.PutBuf(frame)
				}
			}
		}()
	}
	wg.Add(1)
	go func() { // consumer
		defer wg.Done()
		for {
			it, ok := pc.next()
			if !ok {
				return
			}
			proto.PutBuf(it.frame)
			pc.release(it.size)
		}
	}()
	wg.Add(1)
	go func() { // credit traffic against the window state
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			pc.beginXfer(uint64(i))
			pc.grant(uint64(i), 3)
			pc.abortXfer(uint64(i), "test")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	pc.close()
	wg.Wait()
	pc.markDead()
	if got := pc.enqueue(peerItem{size: 1}); got != admitDead {
		t.Fatalf("enqueue after close/dead = %v, want admitDead", got)
	}
	close(quit)
}

// TestPeerSendAfterWriterExit is the satellite bugfix check: a peerConn
// whose writer goroutine has exited must reject further sends (recycling
// their frames) and count them as drops, not accept frames into a queue
// nobody will ever drain.
func TestPeerSendAfterWriterExit(t *testing.T) {
	w := newLoopWorker(t, Config{ControlAddr: "c", DataAddr: "d"})
	pc := newPeerConn(w, 2, "peer")
	w.peers[2] = "peer"
	w.peerConns[2] = pc
	pc.markDead() // what the writer's defer does on exit

	js := w.job(1)
	js.store.Install(5, 5, 1, []byte("small"))
	snd := copySendCmd(w, js, 1, 5, 2)
	if !w.execSend(js, snd) {
		t.Fatal("send to dead conn should complete (as a drop), not park")
	}
	if got := w.Stats.PeerSendDrops.Load(); got != 1 {
		t.Fatalf("PeerSendDrops = %d, want 1", got)
	}
}

// TestPeerSendNoAddress: a CopySend with no data-plane address for the
// destination completes as a counted drop (the old path dropped the
// payload silently with nothing in Stats).
func TestPeerSendNoAddress(t *testing.T) {
	w := newLoopWorker(t, Config{ControlAddr: "c", DataAddr: "d"})
	js := w.job(1)
	js.store.Install(5, 5, 1, []byte("small"))
	if !w.execSend(js, copySendCmd(w, js, 1, 5, 7)) {
		t.Fatal("send with no peer address should complete as a drop")
	}
	if got := w.Stats.PeerSendDrops.Load(); got != 1 {
		t.Fatalf("PeerSendDrops = %d, want 1", got)
	}
}

// TestCreditOverflowClamped: hostile credit grants (uint32 max, repeated)
// cannot open the sender's window past MaxWindow.
func TestCreditOverflowClamped(t *testing.T) {
	w := newLoopWorker(t, Config{ControlAddr: "c", DataAddr: "d"})
	pc := newPeerConn(w, 2, "peer")
	pc.beginXfer(1)
	pc.grant(1, math.MaxUint32)
	pc.grant(1, math.MaxUint32)
	pc.mu.Lock()
	win := pc.window
	pc.mu.Unlock()
	if win != stream.MaxWindow {
		t.Fatalf("window = %d, want clamp at %d", win, stream.MaxWindow)
	}
	// Credit for a transfer that is not current is dropped entirely.
	pc.beginXfer(2)
	pc.grant(1, 50)
	pc.mu.Lock()
	win = pc.window
	pc.mu.Unlock()
	if win != stream.InitWindow {
		t.Fatalf("window after stale grant = %d, want %d", win, stream.InitWindow)
	}
}

// TestStalledReceiverBoundsSender is the flow-control acceptance check: a
// receiver that grants no credit stalls the sender at InitWindow chunks,
// a second large send parks instead of growing the queue, and granting
// credit drains everything.
func TestStalledReceiverBoundsSender(t *testing.T) {
	tr := transport.NewMem(0)
	lis, err := tr.Listen("peer")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()

	const chunk = 4 << 10
	const chunks = 16
	w := newLoopWorker(t, Config{
		ControlAddr: "c", DataAddr: "d", Transport: tr,
		ChunkSize: chunk,
		// Budget fits one transfer, not two: the second send must park.
		PeerQueueBytes: chunk * chunks,
	})

	var chunksSeen atomic.Int64
	var crediting atomic.Bool
	var connMu sync.Mutex
	var peerSide transport.Conn
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			return
		}
		connMu.Lock()
		peerSide = conn
		connMu.Unlock()
		for {
			raw, err := conn.Recv()
			if err != nil {
				return
			}
			proto.ForEachMsg(raw, func(m proto.Msg) error {
				if c, ok := m.(*proto.DataChunk); ok {
					chunksSeen.Add(1)
					if crediting.Load() && !c.Last {
						conn.Send(proto.Marshal(&proto.DataCredit{Xfer: c.Xfer, Chunks: 1}))
					}
				}
				return nil
			})
			proto.PutBuf(raw)
		}
	}()

	js := w.job(1)
	data1 := bytes.Repeat([]byte{1}, chunk*chunks)
	data2 := bytes.Repeat([]byte{2}, chunk*chunks)
	js.store.Install(5, 5, 1, data1)
	js.store.Install(6, 6, 1, data2)
	w.peers[2] = "peer"

	snd1 := copySendCmd(w, js, 1, 5, 2)
	snd2 := copySendCmd(w, js, 2, 6, 2)
	if w.execSend(js, snd1) {
		t.Fatal("large send completed synchronously")
	}
	if w.execSend(js, snd2) {
		t.Fatal("second large send should park, not complete")
	}
	if got := w.Stats.ParkedSends.Load(); got != 1 {
		t.Fatalf("ParkedSends = %d, want 1", got)
	}

	// With no credit the sender must stop at the initial window.
	deadline := time.Now().Add(2 * time.Second)
	for chunksSeen.Load() < stream.InitWindow && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond) // would overrun here if uncontrolled
	if got := chunksSeen.Load(); got != stream.InitWindow {
		t.Fatalf("receiver saw %d chunks while stalled, want %d", got, stream.InitWindow)
	}

	// Open the window: everything drains, the parked send retries through
	// the evPeerSpace the writer posts, and both transfers complete.
	crediting.Store(true)
	connMu.Lock()
	conn := peerSide
	connMu.Unlock()
	if err := conn.Send(proto.Marshal(&proto.DataCredit{Xfer: snd1xfer(w), Chunks: chunks})); err != nil {
		t.Fatal(err)
	}

	done := map[ids.CommandID]bool{}
	for len(done) < 2 {
		select {
		case ev := <-w.events:
			switch ev.kind {
			case evDone:
				done[ev.cmd.cmd.ID] = true
			case evPeerSpace:
				w.retryParked(ev.peer)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("transfers stuck: done=%v chunks=%d", done, chunksSeen.Load())
		}
	}
	// evDone means the writer handed the last chunk to the transport; the
	// receiver counts asynchronously, so poll for the tail to land.
	deadline = time.Now().Add(2 * time.Second)
	for chunksSeen.Load() < 2*chunks && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := chunksSeen.Load(); got != 2*chunks {
		t.Fatalf("receiver saw %d chunks, want %d", got, 2*chunks)
	}
	if got := w.Stats.XfersSent.Load(); got != 2 {
		t.Fatalf("XfersSent = %d, want 2", got)
	}
	close(w.stopped) // unblock the writer goroutines for Cleanup
}

// snd1xfer returns the transfer ID the first execSend allocated (the
// event loop allocates sequentially from 1).
func snd1xfer(w *Worker) uint64 { return 1 }

// TestReceiverSpillsOverBudget drives the receive pump directly: chunks
// past the worker's receive budget switch the transfer to a spill file,
// and the delivered payload carries the spill handle with the body
// bit-identical on fault-in.
func TestReceiverSpillsOverBudget(t *testing.T) {
	const chunk = 1 << 10
	w := newLoopWorker(t, Config{
		ControlAddr: "c", DataAddr: "d",
		ChunkSize:  chunk,
		RecvBudget: 2 * chunk, // third chunk tips every transfer to disk
	})
	fs, err := datastore.NewSpillFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	w.spill = fs

	a, b := transport.Pipe(0)
	defer a.Close()
	defer b.Close()
	rx := &rxConn{w: w, conn: a, xfers: make(map[uint64]*rxXfer)}

	data := make([]byte, 8*chunk)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for off, seq := 0, uint32(0); off < len(data); seq++ {
		end := off + chunk
		if err := rx.handleChunk(&proto.DataChunk{
			Job: 1, Xfer: 3, Seq: seq, Last: end == len(data),
			DstCommand: 42, Object: 9, Logical: 9, Version: 2,
			Total: uint64(len(data)), Raw: data[off:end],
		}); err != nil {
			t.Fatal(err)
		}
		off = end
	}
	if got := w.Stats.Spills.Load(); got != 1 {
		t.Fatalf("Spills = %d, want 1", got)
	}
	select {
	case ev := <-w.events:
		if ev.kind != evData || ev.spill == nil {
			t.Fatalf("expected spilled payload event, got kind=%d spill=%v", ev.kind, ev.spill)
		}
		got, err := ev.spill.Read()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("spilled body differs from sent bytes")
		}
		ev.spill.Remove()
	default:
		t.Fatal("no payload delivered")
	}
	if got := w.rxBytes.Load(); got != 0 {
		t.Fatalf("rxBytes = %d after delivery, want 0", got)
	}
	// Credits for the receiver's window replenishment went out on the
	// reverse path.
	if raw, err := b.Recv(); err != nil {
		t.Fatal(err)
	} else {
		m, err := proto.Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		if c, ok := m.(*proto.DataCredit); !ok || c.Xfer != 3 {
			t.Fatalf("reverse path sent %v, want DataCredit for xfer 3", m)
		}
	}
}

// TestReceiverHostileChunks covers the rx state machine against hostile
// input the stream package cannot see alone: a mid-stream chunk for an
// unknown transfer, and a sequence gap on a live transfer — both must
// abort with XferAbort and drop state, never deliver.
func TestReceiverHostileChunks(t *testing.T) {
	const chunk = 1 << 10
	w := newLoopWorker(t, Config{ControlAddr: "c", DataAddr: "d", ChunkSize: chunk})
	a, b := transport.Pipe(0)
	defer a.Close()
	defer b.Close()
	rx := &rxConn{w: w, conn: a, xfers: make(map[uint64]*rxXfer)}

	expectAbort := func(wantXfer uint64) {
		t.Helper()
		raw, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		m, err := proto.Unmarshal(raw)
		if err != nil {
			t.Fatal(err)
		}
		ab, ok := m.(*proto.XferAbort)
		if !ok || ab.Xfer != wantXfer {
			t.Fatalf("reverse path sent %v, want XferAbort for %d", m, wantXfer)
		}
	}

	// Unknown transfer mid-stream.
	if err := rx.handleChunk(&proto.DataChunk{Xfer: 9, Seq: 3, Total: 4 * chunk, Raw: make([]byte, chunk)}); err != nil {
		t.Fatal(err)
	}
	expectAbort(9)
	if len(rx.xfers) != 0 {
		t.Fatal("unknown-transfer chunk created state")
	}

	// Live transfer, then a gap.
	if err := rx.handleChunk(&proto.DataChunk{Xfer: 4, Seq: 0, Total: 4 * chunk, Raw: make([]byte, chunk)}); err != nil {
		t.Fatal(err)
	}
	if err := rx.handleChunk(&proto.DataChunk{Xfer: 4, Seq: 2, Total: 4 * chunk, Raw: make([]byte, chunk)}); err != nil {
		t.Fatal(err)
	}
	expectAbort(4)
	if len(rx.xfers) != 0 {
		t.Fatal("gap did not drop transfer state")
	}
	if got := w.rxBytes.Load(); got != 0 {
		t.Fatalf("rxBytes = %d after aborts, want 0", got)
	}
	if got := w.Stats.RxAborts.Load(); got != 2 {
		t.Fatalf("RxAborts = %d, want 2", got)
	}
	select {
	case ev := <-w.events:
		t.Fatalf("hostile chunks delivered an event: %+v", ev)
	default:
	}
}

// TestSmallSendAllocCeiling pins the small-object fast path's allocation
// bill: one DataPayload header per send (the frame itself is pooled), no
// transfer or credit bookkeeping.
func TestSmallSendAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates sync.Pool allocation counts")
	}
	w := newLoopWorker(t, Config{ControlAddr: "c", DataAddr: "d"})
	pc := newPeerConn(w, 2, "peer")
	w.peers[2] = "peer"
	w.peerConns[2] = pc // no writer goroutine; the test drains by hand
	js := w.job(1)
	js.store.Install(5, 5, 1, bytes.Repeat([]byte{3}, 512))
	snd := copySendCmd(w, js, 1, 5, 2)

	// Warm the buffer pool.
	for i := 0; i < 8; i++ {
		if !w.execSend(js, snd) {
			t.Fatal("small send did not complete synchronously")
		}
		it, _ := pc.next()
		proto.PutBuf(it.frame)
		pc.release(it.size)
	}
	allocs := testing.AllocsPerRun(200, func() {
		w.execSend(js, snd)
		it, _ := pc.next()
		proto.PutBuf(it.frame)
		pc.release(it.size)
	})
	// One alloc for the DataPayload header; everything else is pooled.
	// (The pre-streaming path paid the same header, so small objects got
	// no more expensive.)
	if allocs > 1 {
		t.Fatalf("small-object send path allocs/op = %v, want <= 1", allocs)
	}
}

// TestWorkerChunkedCopyEndToEnd runs a single worker against the fake
// controller and a fake peer receiver: a CopySend of a multi-chunk object
// streams as DataChunk frames that reassemble bit-identically.
func TestWorkerChunkedCopyEndToEnd(t *testing.T) {
	fc := startWorkerHarness(t)
	w := fc.w

	// A second worker's data plane, played by the test.
	lis, err := w.cfg.Transport.Listen("data/2")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	type result struct {
		data []byte
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		conn, err := lis.Accept()
		if err != nil {
			resc <- result{err: err}
			return
		}
		var ra *stream.Reassembler
		var buf []byte
		for {
			raw, err := conn.Recv()
			if err != nil {
				resc <- result{err: err}
				return
			}
			done := false
			err = proto.ForEachMsg(raw, func(m proto.Msg) error {
				c, ok := m.(*proto.DataChunk)
				if !ok {
					return fmt.Errorf("unexpected %s on data plane", m.Kind())
				}
				if ra == nil {
					ra = &stream.Reassembler{Xfer: c.Xfer, Total: c.Total, ChunkSize: w.chunkSize}
				}
				piece, err := ra.Accept(c)
				if err != nil {
					return err
				}
				buf = append(buf, piece...)
				if !c.Last {
					conn.Send(proto.Marshal(&proto.DataCredit{Xfer: c.Xfer, Chunks: 1}))
				} else {
					done = true
				}
				return nil
			})
			proto.PutBuf(raw)
			if err != nil {
				resc <- result{err: err}
				return
			}
			if done {
				resc <- result{data: buf}
				return
			}
		}
	}()

	// Tell the worker about the peer, install the object, send it.
	fc.send(&proto.RegisterWorkerAck{Worker: 1, Peers: map[ids.WorkerID]string{2: "data/2"}})
	data := make([]byte, 3*w.chunkSize+123)
	for i := range data {
		data[i] = byte(i * 13)
	}
	fc.send(&proto.SpawnCommands{Job: 1, Cmds: []*command.Command{
		{ID: 1, Kind: command.Create, Writes: []ids.ObjectID{5}, Logical: 5, Params: data},
		{ID: 2, Kind: command.CopySend, Reads: []ids.ObjectID{5}, Logical: 5,
			DstWorker: 2, DstCommand: 77, Before: []ids.CommandID{1}},
	}})

	select {
	case res := <-resc:
		if res.err != nil {
			t.Fatal(res.err)
		}
		if !bytes.Equal(res.data, data) {
			t.Fatal("reassembled object differs from source")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("chunked copy never arrived")
	}
	// The CopySend completes only after the writer streamed the last
	// chunk (deferred completion).
	fc.recvUntil(5*time.Second, func(m proto.Msg) bool {
		c, ok := m.(*proto.Complete)
		if !ok {
			return false
		}
		for _, id := range c.IDs {
			if id == 2 {
				return true
			}
		}
		return false
	})
	if got := w.Stats.XfersSent.Load(); got != 1 {
		t.Fatalf("XfersSent = %d, want 1", got)
	}
}
