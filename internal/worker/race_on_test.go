//go:build race

package worker

// raceEnabled reports that this build runs under the race detector, whose
// sync.Pool instrumentation randomly drops puts — making pool-based
// allocation-ceiling guarantees unverifiable.
const raceEnabled = true
