package worker

import (
	"testing"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// jobRecvTemplate is a one-entry CopyRecv template install scoped to a
// job: instantiating it stalls the instance on its payload, holding an
// arena in flight.
func jobRecvTemplate(job ids.JobID, id ids.TemplateID, obj ids.ObjectID) *proto.InstallTemplate {
	return &proto.InstallTemplate{
		Job: job, Template: id, Name: "recv",
		Entries: []command.TemplateEntry{{
			Index: 0, Kind: command.CopyRecv,
			Writes: []ids.ObjectID{obj}, Logical: ids.LogicalID(obj),
			ParamSlot: command.NoParamSlot,
		}},
	}
}

// TestHaltIsJobScoped is the worker-side failure-containment guarantee:
// halting one job (its recovery) flushes only that job's in-flight
// arenas, buffered payloads and barriers. Another job's stalled instance
// survives the halt and completes normally when its payload lands.
func TestHaltIsJobScoped(t *testing.T) {
	b := NewBenchLoop(1)
	defer b.Close()
	// Two jobs, each with a template instance stalled on its payload.
	b.Apply(jobRecvTemplate(1, 7, 11))
	b.Apply(jobRecvTemplate(2, 7, 11)) // same template ID and name: namespaced
	b.Apply(&proto.InstantiateTemplate{Job: 1, Template: 7, Instance: 1, Base: 100})
	b.Apply(&proto.InstantiateTemplate{Job: 2, Template: 7, Instance: 1, Base: 100})
	j1, j2 := b.Job(1), b.Job(2)
	if j1.unfin != 1 || j2.unfin != 1 {
		t.Fatalf("unfin = %d/%d, want 1/1", j1.unfin, j2.unfin)
	}

	// Halt job 1 (its recovery). Job 2's arena must be untouched.
	b.Apply(&proto.Halt{Job: 1, Seq: 1})
	if j1.unfin != 0 || len(j1.liveUnits) != 0 || len(j1.payWait) != 0 {
		t.Fatalf("job 1 not flushed: unfin=%d live=%d wait=%d", j1.unfin, len(j1.liveUnits), len(j1.payWait))
	}
	if j2.unfin != 1 || len(j2.liveUnits) != 1 || len(j2.payWait) != 1 {
		t.Fatalf("halt of job 1 flushed job 2: unfin=%d live=%d wait=%d", j2.unfin, len(j2.liveUnits), len(j2.payWait))
	}

	// Job 2's payload completes its instance; same (job-local) command ID
	// delivered to job 1 lands in a flushed namespace and resurrects
	// nothing.
	b.Apply(&proto.Resume{Job: 1})
	w2payload := &proto.DataPayload{Job: 2, DstCommand: 100, Object: 11, Logical: 11, Version: 3, Data: []byte{2}}
	b.W.handlePayload(w2payload, nil)
	if !j2.isDone(100) {
		t.Fatal("job 2 instance did not complete after its payload")
	}
	if o := j2.store.Get(11); o == nil || o.Version != 3 {
		t.Fatalf("job 2 store missing payload: %+v", o)
	}
	b.W.handlePayload(&proto.DataPayload{Job: 1, DstCommand: 100, Object: 11, Logical: 11, Version: 9, Data: []byte{1}}, nil)
	if j1.isDone(100) {
		t.Fatal("flushed job 1 command resurrected by late payload")
	}
	if j1.store.Get(11) != nil {
		t.Fatal("late payload installed into halted job 1")
	}
}

// TestJobEndDropsNamespace: JobEnd tears down exactly one job's
// templates, datastore and completion records; other jobs keep theirs.
func TestJobEndDropsNamespace(t *testing.T) {
	b := NewBenchLoop(1)
	defer b.Close()
	for _, job := range []ids.JobID{1, 2} {
		b.Apply(&proto.InstallTemplate{
			Job: job, Template: 3, Name: "blk",
			Entries: []command.TemplateEntry{{
				Index: 0, Kind: command.Create, Writes: []ids.ObjectID{5},
				ParamSlot: command.NoParamSlot, Fixed: []byte{byte(job)},
			}},
		})
		b.Apply(&proto.InstantiateTemplate{Job: job, Template: 3, Instance: 1, Base: 50})
	}
	if got := b.Job(1).store.Get(5).Data[0]; got != 1 {
		t.Fatalf("job 1 object = %d, want 1", got)
	}
	if got := b.Job(2).store.Get(5).Data[0]; got != 2 {
		t.Fatalf("job 2 object = %d, want 2 (namespace cross-talk)", got)
	}
	b.Apply(&proto.JobEnd{Job: 1})
	if b.W.StoreOf(1) != nil {
		t.Fatal("job 1 namespace survived JobEnd")
	}
	if b.W.StoreOf(2) == nil || b.W.StoreOf(2).Get(5) == nil {
		t.Fatal("JobEnd of job 1 dropped job 2's state")
	}
	if got := b.W.Stats.JobsEnded.Load(); got != 1 {
		t.Fatalf("jobs ended = %d, want 1", got)
	}
	// A late data-plane payload for the torn-down job is dropped: it must
	// not resurrect an empty namespace that nothing would ever tear down
	// again (the data plane is not FIFO-ordered behind the JobEnd).
	b.W.handlePayload(&proto.DataPayload{Job: 1, DstCommand: 51, Object: 9, Version: 1, Data: []byte{1}}, nil)
	if b.W.StoreOf(1) != nil {
		t.Fatal("late payload resurrected ended job 1")
	}
}

// TestQuotaFairShare: with two jobs contending for the executor pool, the
// round-robin dispatcher throttles a job back to its quota as soon as the
// other wants slots — and the overflow path remains work-conserving when
// only one job has runnable work.
func TestQuotaFairShare(t *testing.T) {
	b := NewBenchLoop(4)
	defer b.Close()
	b.Apply(&proto.JobQuota{Job: 1, Slots: 2})
	b.Apply(&proto.JobQuota{Job: 2, Slots: 2})
	slow := func(job ids.JobID, base ids.CommandID, n int) *proto.SpawnCommands {
		cmds := make([]*command.Command, n)
		for i := range cmds {
			cmds[i] = &command.Command{
				ID: base + ids.CommandID(i), Kind: command.Task,
				Function: fn.FuncSim, Params: fn.SimParams(20 * time.Millisecond),
			}
		}
		return &proto.SpawnCommands{Job: job, Cmds: cmds}
	}
	// Job 1 alone: work-conserving overflow uses all 4 slots despite a
	// quota of 2 (idle slots help no one).
	b.Apply(slow(1, 100, 8))
	if got := b.Job(1).running; got != 4 {
		t.Fatalf("sole job running = %d, want 4 (work-conserving overflow)", got)
	}
	// Job 2 arrives: nothing free yet.
	b.Apply(slow(2, 200, 8))
	if got := b.Job(2).running; got != 0 {
		t.Fatalf("job 2 running = %d with full pool", got)
	}
	// As job 1's tasks drain, the freed slots must go to job 2 (job 1 is
	// over quota), until both sit at their fair share.
	for b.Job(2).running < 2 {
		ev := <-b.W.events
		if ev.kind == evDone {
			b.W.handleDone(ev.cmd)
		}
	}
	if got := b.Job(1).running; got > 2 {
		t.Fatalf("job 1 running = %d after contention, want <= quota 2", got)
	}
	if b.W.Stats.QuotaDeferrals.Load() == 0 {
		t.Fatal("no quota deferrals recorded under contention")
	}
	b.Drain()
	if got := b.W.Stats.TasksRun.Load(); got != 16 {
		t.Fatalf("tasks run = %d, want 16", got)
	}
}

// TestQuotaOverflowWorkConserving: quota truncation (e.g. 8 slots over 3
// jobs → share 2 each, sum 6) must not idle the remainder — once every
// runnable job is at quota, free slots are handed out past quota.
func TestQuotaOverflowWorkConserving(t *testing.T) {
	b := NewBenchLoop(8)
	defer b.Close()
	for j := 1; j <= 3; j++ {
		b.Apply(&proto.JobQuota{Job: ids.JobID(j), Slots: 2})
	}
	for j := 1; j <= 3; j++ {
		cmds := make([]*command.Command, 4)
		for i := range cmds {
			cmds[i] = &command.Command{
				ID: ids.CommandID(100*j + i), Kind: command.Task,
				Function: fn.FuncSim, Params: fn.SimParams(20 * time.Millisecond),
			}
		}
		b.Apply(&proto.SpawnCommands{Job: ids.JobID(j), Cmds: cmds})
	}
	if b.W.freeSlots != 0 {
		t.Fatalf("free slots = %d with 12 runnable tasks over 3 jobs, want 0 (work-conserving)", b.W.freeSlots)
	}
	b.Drain()
	if got := b.W.Stats.TasksRun.Load(); got != 12 {
		t.Fatalf("tasks run = %d, want 12", got)
	}
}

// TestInstantiateAllocCeilingFourJobs extends the steady-state allocation
// guard to multi-tenancy: four jobs interleaving 1024-entry instantiates
// must stay under the same per-instantiate ceiling as a single job — the
// per-job namespace lookup and arena pooling add no per-command cost.
func TestInstantiateAllocCeilingFourJobs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector pool instrumentation defeats allocation accounting")
	}
	b := NewBenchLoop(1)
	defer b.Close()
	const entries = 1024
	const jobs = 4
	for j := 1; j <= jobs; j++ {
		msg := destroyTemplate(7, entries)
		msg.Job = ids.JobID(j)
		b.Apply(msg)
	}
	const span = uint64(entries)
	insts := make([]uint64, jobs+1)
	next := 0
	run := func() {
		job := ids.JobID(next%jobs + 1)
		next++
		insts[job]++
		i := insts[job]
		b.Apply(&proto.InstantiateTemplate{
			Job: job, Template: 7, Instance: i, Base: ids.CommandID(1 + i*span),
			DoneWatermark: ids.CommandID(1 + i*span),
		})
	}
	for i := 0; i < 16*jobs; i++ { // warm pools and ring capacities per job
		run()
	}
	avg := testing.AllocsPerRun(64, run)
	if avg > 16 {
		t.Fatalf("allocs per 1024-entry instantiate across 4 jobs = %.1f, want <= 16", avg)
	}
}
