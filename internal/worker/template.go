package worker

import (
	"time"

	"nimbus/internal/command"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// wtemplate is an installed worker template: the worker's slice of a basic
// block with index-based structure, cached for cheap re-instantiation
// (paper §4.1, Figure 5b). Entries are addressed by their global index;
// removed entries (edits) leave nil holes.
type wtemplate struct {
	id      ids.TemplateID
	name    string
	entries map[int32]*command.TemplateEntry
}

func (w *Worker) installTemplate(m *proto.InstallTemplate) {
	start := time.Now()
	t := &wtemplate{
		id:      m.Template,
		name:    m.Name,
		entries: make(map[int32]*command.TemplateEntry, len(m.Entries)),
	}
	for i := range m.Entries {
		e := m.Entries[i]
		t.entries[e.Index] = &e
	}
	w.templates[m.Template] = t
	w.Stats.TemplatesSeen.Add(1)
	w.Stats.InstallNanos.Add(uint64(time.Since(start)))
}

// instantiate materializes one template instance: apply edits (persistent,
// paper §4.3), prune the completion set by the watermark, translate every
// cached entry into a concrete command with IDs base+index, and enqueue
// the lot as one barrier unit.
func (w *Worker) instantiate(m *proto.InstantiateTemplate) {
	start := time.Now()
	t, ok := w.templates[m.Template]
	if !ok {
		w.cfg.Logf("worker %s: instantiate of unknown template %s", w.id, m.Template)
		_ = w.sendCtrl(&proto.ErrorMsg{Text: "unknown template"})
		return
	}
	for i := range m.Edits {
		w.applyEdit(t, &m.Edits[i])
	}
	if m.DoneWatermark > w.doneLow {
		w.pruneDone(m.DoneWatermark)
	}
	cmds := make([]*command.Command, 0, len(t.entries))
	for _, e := range t.entries {
		c := &command.Command{}
		e.Materialize(m.Base, m.ParamArray, c)
		cmds = append(cmds, c)
	}
	w.Stats.Instantiations.Add(1)
	w.Stats.InstantiateNanos.Add(uint64(time.Since(start)))
	w.enqueue(&unit{barrier: true, instance: m.Instance, cmds: cmds})
}

func (w *Worker) applyEdit(t *wtemplate, e *command.Edit) {
	for _, idx := range e.Remove {
		delete(t.entries, idx)
	}
	for i := range e.Add {
		ne := e.Add[i]
		t.entries[ne.Index] = &ne
	}
	w.Stats.EditsApplied.Add(uint64(len(e.Remove) + len(e.Add)))
}

// instantiatePatch materializes a cached patch as a barrier unit; patch
// entries carry no before sets because the barrier orders them against
// surrounding template instances (paper §4.2).
func (w *Worker) instantiatePatch(m *proto.InstantiatePatch) {
	entries, ok := w.patches[m.Patch]
	if !ok {
		w.cfg.Logf("worker %s: instantiate of unknown patch %s", w.id, m.Patch)
		_ = w.sendCtrl(&proto.ErrorMsg{Text: "unknown patch"})
		return
	}
	cmds := make([]*command.Command, 0, len(entries))
	for i := range entries {
		c := &command.Command{}
		entries[i].Materialize(m.Base, nil, c)
		cmds = append(cmds, c)
	}
	w.Stats.PatchesRun.Add(1)
	w.enqueue(&unit{barrier: true, cmds: cmds})
}

// pruneDone drops completion records below the watermark: the controller
// guarantees every command with a lower ID has been fully accounted for,
// so membership tests can answer by comparison.
func (w *Worker) pruneDone(mark ids.CommandID) {
	w.doneLow = mark
	for id := range w.done {
		if id < mark {
			delete(w.done, id)
		}
	}
	for id := range w.payloads {
		if id < mark {
			delete(w.payloads, id)
		}
	}
}
