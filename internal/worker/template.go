package worker

import (
	"time"

	"nimbus/internal/command"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// wtemplate is an installed worker template: the worker's slice of a basic
// block with index-based structure, cached for cheap re-instantiation
// (paper §4.1, Figure 5b). Templates live inside one job's namespace, so
// two jobs may install same-named (or same-ID) templates without
// colliding. The entry map (addressed by global index; removed entries
// leave holes) is the editable master; compiled is the dense immutable
// form instantiation runs from, rebuilt lazily after edits. Compilations
// are never mutated in place, so completed-instance records can safely
// outlive an edit.
type wtemplate struct {
	id       ids.TemplateID
	name     string
	entries  map[int32]*command.TemplateEntry
	compiled *command.CompiledTemplate
}

func (w *Worker) installTemplate(js *jstate, m *proto.InstallTemplate) {
	start := time.Now()
	t := &wtemplate{
		id:      m.Template,
		name:    m.Name,
		entries: make(map[int32]*command.TemplateEntry, len(m.Entries)),
	}
	for i := range m.Entries {
		e := m.Entries[i]
		t.entries[e.Index] = &e
	}
	js.templates[m.Template] = t
	w.Stats.TemplatesSeen.Add(1)
	w.Stats.InstallNanos.Add(uint64(time.Since(start)))
	// Compile at install time so the first instantiation is already on
	// the fast path (compile time is accounted separately).
	t.compile(w)
}

// compile returns the template's dense form, rebuilding it if edits
// invalidated the cache. Compilation happens at install/edit time only —
// steady-state instantiation always finds it cached.
func (t *wtemplate) compile(w *Worker) *command.CompiledTemplate {
	if t.compiled == nil {
		start := time.Now()
		list := make([]*command.TemplateEntry, 0, len(t.entries))
		for _, e := range t.entries {
			list = append(list, e)
		}
		t.compiled = command.Compile(list)
		w.Stats.TemplateCompiles.Add(1)
		w.Stats.CompileNanos.Add(uint64(time.Since(start)))
	}
	return t.compiled
}

// instantiate materializes one template instance in its job's namespace:
// apply edits (persistent, paper §4.3), prune the job's completion set by
// the watermark, then patch base ID and parameters into a pooled arena of
// pre-shaped commands — one slot per compiled entry, intra-instance
// ordering already wired by index — and enqueue the arena as one barrier
// unit. Steady state is O(parameters) bookkeeping plus a memcpy-shaped
// pass over the arena: no per-command allocation, no map inserts, and the
// only multi-tenancy overhead is the job-namespace lookup already done by
// the dispatcher.
func (w *Worker) instantiate(js *jstate, m *proto.InstantiateTemplate) {
	start := time.Now()
	t, ok := js.templates[m.Template]
	if !ok {
		w.cfg.Logf("worker %s: instantiate of unknown template %s (%s)", w.id, m.Template, js.id)
		_ = w.sendCtrl(&proto.ErrorMsg{Text: "unknown template"})
		return
	}
	for i := range m.Edits {
		w.applyEdit(t, &m.Edits[i])
	}
	if m.DoneWatermark > js.doneLow {
		js.pruneDone(m.DoneWatermark)
	}
	// Recompiles (edit-carrying instantiations) are accounted in
	// CompileNanos only; keep InstantiateNanos disjoint so the two
	// stats sum meaningfully.
	cs := time.Now()
	ct := t.compile(w)
	compileDur := time.Since(cs)
	u := w.getUnit(js, len(ct.Entries))
	u.barrier = true
	u.instance = m.Instance
	u.ct = ct
	u.base = m.Base
	for i := range ct.Entries {
		ct.Entries[i].MaterializeInto(m.Base, m.ParamArray, &u.pcs[i].cmd)
		u.pcs[i].local = int32(i)
	}
	w.Stats.Instantiations.Add(1)
	w.Stats.InstantiateCmds.Add(uint64(len(ct.Entries)))
	w.Stats.InstantiateNanos.Add(uint64(time.Since(start) - compileDur))
	w.enqueue(u)
}

func (w *Worker) applyEdit(t *wtemplate, e *command.Edit) {
	for _, idx := range e.Remove {
		delete(t.entries, idx)
	}
	for i := range e.Add {
		ne := e.Add[i]
		t.entries[ne.Index] = &ne
	}
	t.compiled = nil
	w.Stats.EditsApplied.Add(uint64(len(e.Remove) + len(e.Add)))
}

func (w *Worker) installPatch(js *jstate, m *proto.InstallPatch) {
	list := make([]*command.TemplateEntry, len(m.Entries))
	for i := range m.Entries {
		list[i] = &m.Entries[i]
	}
	js.patches[m.Patch] = command.Compile(list)
}

// instantiatePatch materializes a cached patch as a barrier unit; patch
// entries carry no before sets because the barrier orders them against
// surrounding template instances of the same job (paper §4.2). Patches
// share the compiled arena path (compiled once at install — patches have
// no edits).
func (w *Worker) instantiatePatch(js *jstate, m *proto.InstantiatePatch) {
	ct, ok := js.patches[m.Patch]
	if !ok {
		w.cfg.Logf("worker %s: instantiate of unknown patch %s (%s)", w.id, m.Patch, js.id)
		_ = w.sendCtrl(&proto.ErrorMsg{Text: "unknown patch"})
		return
	}
	u := w.getUnit(js, len(ct.Entries))
	u.barrier = true
	u.ct = ct
	u.base = m.Base
	for i := range ct.Entries {
		ct.Entries[i].MaterializeInto(m.Base, nil, &u.pcs[i].cmd)
		u.pcs[i].local = int32(i)
	}
	w.Stats.PatchesRun.Add(1)
	w.enqueue(u)
}

// pruneDone drops one job's completion records below the watermark: the
// controller guarantees every command of the job with a lower ID has been
// fully accounted for, so membership tests can answer by comparison.
// Instance done-ranges retire wholesale once their ID block sinks below
// the mark; buffered payloads addressed below the mark are stale (their
// receive has been accounted for) and must not resurrect a completed
// command. Per-job command IDs make the per-job watermark sound: another
// job's older IDs live in a different namespace entirely.
func (js *jstate) pruneDone(mark ids.CommandID) {
	js.doneLow = mark
	for id := range js.done {
		if id < mark {
			delete(js.done, id)
		}
	}
	kept := js.doneRanges[:0]
	for _, dr := range js.doneRanges {
		if dr.base+ids.CommandID(dr.ct.Span) > mark {
			kept = append(kept, dr)
		}
	}
	for i := len(kept); i < len(js.doneRanges); i++ {
		js.doneRanges[i] = doneRange{}
	}
	js.doneRanges = kept
	for id := range js.payloads {
		if id < mark {
			delete(js.payloads, id)
		}
	}
}
