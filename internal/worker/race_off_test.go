//go:build !race

package worker

// raceEnabled reports whether this build runs under the race detector.
const raceEnabled = false
