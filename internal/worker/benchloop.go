package worker

import (
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// BenchLoop drives a single worker's scheduler synchronously, without the
// event-loop goroutine: control messages are applied directly on the
// caller's goroutine, so benchmarks and allocation-ceiling tests can
// measure the instantiate→activate→complete path in isolation. Outbound
// control traffic (BlockDone, Complete) goes to a drain goroutine that
// recycles the frame buffers, keeping the codec pool primed exactly as a
// live controller connection would.
//
// BenchLoop is for measurement only: it must not be mixed with Start, and
// templates should avoid Task entries unless the caller dispatches the
// resulting executor goroutines itself.
type BenchLoop struct {
	W     *Worker
	drain transport.Conn
}

// NewBenchLoop builds a loopback worker with the given executor slot
// count.
func NewBenchLoop(slots int) *BenchLoop {
	w := New(Config{Slots: slots})
	local, remote := transport.Pipe(0)
	w.ctrl = local
	w.id = 1
	b := &BenchLoop{W: w, drain: remote}
	go func() {
		for {
			raw, err := remote.Recv()
			if err != nil {
				return
			}
			proto.PutBuf(raw)
		}
	}()
	return b
}

// Apply feeds one controller message straight into the worker's handler
// on the caller's goroutine.
func (b *BenchLoop) Apply(m proto.Msg) { b.W.handleCtrl(m) }

// Job exposes one job's namespace (created on first use), for assertions
// on per-job scheduler state. Messages without an explicit Job land in
// namespace 0.
func (b *BenchLoop) Job(id ids.JobID) *jstate { return b.W.job(id) }

// busy reports whether any job still has unfinished, runnable or queued
// work.
func (b *BenchLoop) busy() bool {
	for _, js := range b.W.jobList {
		if js.unfin > 0 || js.runnable.n > 0 || len(js.units) > 0 {
			return true
		}
	}
	return false
}

// Drain processes completion events posted by executor goroutines until
// no job has unfinished commands (for callers that do run tasks).
func (b *BenchLoop) Drain() {
	for b.busy() {
		ev := <-b.W.events
		if ev.kind == evDone {
			b.W.handleDone(ev.cmd)
		}
	}
}

// Close tears the loopback down.
func (b *BenchLoop) Close() {
	b.drain.Close()
	b.W.ctrl.Close()
}
