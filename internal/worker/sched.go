package worker

import (
	"math"
	"sync"

	"nimbus/internal/command"
	"nimbus/internal/datastore"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
)

// enqueue admits a unit of work into its job's namespace. Non-barrier
// batches activate immediately; barrier units (template instances and
// patches) wait until every command of the same job that arrived before
// them has completed. Barrier accounting uses per-job prefix arrival
// counters: every command takes the job's next arrival index, a barrier
// unit records the prefix it must outwait (mark), and the completion
// watermark arrLow advances over completed indexes — so a completion costs
// O(1) amortized instead of a scan over the queued units, commands
// arriving *after* a queued unit (which may legitimately depend on the
// unit's own commands) can never deadlock its activation, and one job's
// barrier never waits on another job's in-flight work.
func (w *Worker) enqueue(u *unit) {
	js := u.js
	if js.halted {
		w.releaseUnit(u)
		return
	}
	n := len(u.pcs)
	u.mark = js.cmdArrived
	u.remaining = n
	u.activated = false
	js.arrReserve(n)
	for i := range u.pcs {
		pc := &u.pcs[i]
		pc.unit = u
		pc.epoch = js.haltEpoch
		pc.arrIdx = u.mark + uint64(i)
		pc.state = psInit
		pc.missing = 0
		pc.needPayload = false
	}
	js.cmdArrived += uint64(n)
	if u.ct != nil {
		js.liveUnits = append(js.liveUnits, u)
	}
	if !u.barrier {
		w.activate(u)
		w.dispatch()
		return
	}
	if len(js.units) == 0 && js.arrLow >= u.mark {
		w.activate(u)
	} else {
		js.units = append(js.units, u)
	}
	w.dispatch()
}

// arrReserve grows the job's arrival ring so the next n indexes have
// slots. The ring must cover [arrLow, cmdArrived+n).
func (js *jstate) arrReserve(n int) {
	need := js.cmdArrived + uint64(n) - js.arrLow
	if need <= uint64(len(js.arrRing)) {
		return
	}
	size := uint64(len(js.arrRing))
	for size < need {
		size *= 2
	}
	ring := make([]bool, size)
	oldMask := uint64(len(js.arrRing) - 1)
	for i := js.arrLow; i < js.cmdArrived; i++ {
		ring[i&(size-1)] = js.arrRing[i&oldMask]
	}
	js.arrRing = ring
}

// arrDone marks an arrival index complete and advances the job's low
// watermark over the completed prefix.
func (js *jstate) arrDone(idx uint64) {
	mask := uint64(len(js.arrRing) - 1)
	js.arrRing[idx&mask] = true
	for js.arrLow < js.cmdArrived && js.arrRing[js.arrLow&mask] {
		js.arrRing[js.arrLow&mask] = false
		js.arrLow++
	}
}

// activate admits a unit's commands into its job's unfinished set,
// resolving their before sets against the job's completion state
// (control-plane requirement 1: workers determine runnability locally).
func (w *Worker) activate(u *unit) {
	js := u.js
	u.activated = true
	w.Stats.Activations.Add(1)
	if len(u.pcs) == 0 {
		w.completeUnit(u)
		return
	}
	if u.ct != nil {
		w.activateCompiled(u)
		return
	}
	for i := range u.pcs {
		pc := &u.pcs[i]
		pc.state = psActive
		js.unfin++
		for _, dep := range pc.cmd.Before {
			if js.isDone(dep) {
				continue
			}
			js.waiters[dep] = append(js.waiters[dep], pc)
			pc.missing++
		}
		js.checkPayload(pc)
		if pc.missing == 0 {
			w.makeRunnable(pc)
		}
	}
}

// activateCompiled resolves a template/patch instance's dependencies
// against the arena: intra-instance edges are pre-resolved entry positions
// (no map traffic), external edges — dangling references edits can leave —
// fall back to the job's completion state like any other before set.
// Inline commands may complete while later slots are still being
// activated; their psDone state is what a later slot's local-edge check
// observes, mirroring the isDone check of the map-based path.
func (w *Worker) activateCompiled(u *unit) {
	js := u.js
	entries := u.ct.Entries
	for i := range u.pcs {
		pc := &u.pcs[i]
		pc.state = psActive
		js.unfin++
		e := &entries[i]
		for _, lp := range e.LocalBefore {
			if u.pcs[lp].state != psDone {
				pc.missing++
			}
		}
		for _, gi := range e.ExtBefore {
			dep := u.base + ids.CommandID(gi)
			if js.isDone(dep) {
				continue
			}
			js.waiters[dep] = append(js.waiters[dep], pc)
			pc.missing++
		}
		js.checkPayload(pc)
		if pc.missing == 0 {
			w.makeRunnable(pc)
		}
	}
}

// checkPayload registers a CopyRecv for its data payload if it has not
// already arrived (payloads may outrun commands because the data plane is
// independent of the control plane).
func (js *jstate) checkPayload(pc *pcmd) {
	if pc.cmd.Kind != command.CopyRecv {
		return
	}
	if _, ok := js.payloads[pc.cmd.ID]; !ok {
		pc.needPayload = true
		js.payWait[pc.cmd.ID] = pc
		pc.missing++
	}
}

// isDone reports whether a command is known complete within this job:
// below the watermark, recorded in the done map (non-template commands),
// inside a completed instance's range, or completed within a live arena.
// The instance cases answer by ID arithmetic and a position-table probe —
// no hashing.
func (js *jstate) isDone(id ids.CommandID) bool {
	if id < js.doneLow {
		return true
	}
	if _, ok := js.done[id]; ok {
		return true
	}
	// doneRanges is sorted by base and instance ID blocks are disjoint,
	// so one binary search finds the only candidate range — the probe at
	// lo covers hostile negative entry indexes (IDs just below a base).
	lo, hi := 0, len(js.doneRanges)
	for lo < hi {
		mid := (lo + hi) / 2
		if js.doneRanges[mid].base <= id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for _, i := range [2]int{lo - 1, lo} {
		if i < 0 || i >= len(js.doneRanges) {
			continue
		}
		dr := &js.doneRanges[i]
		if idx, ok := entryIndex(id, dr.base); ok && dr.ct.Has(idx) {
			return true
		}
	}
	for _, u := range js.liveUnits {
		if idx, ok := entryIndex(id, u.base); ok {
			if p := u.ct.PosOf(idx); p >= 0 && u.pcs[p].state == psDone {
				return true
			}
		}
	}
	return false
}

// entryIndex recovers the template entry index a command ID encodes
// relative to an instance base (ID arithmetic is modular, so a negative
// index — hostile but tolerated — round-trips too).
func entryIndex(id, base ids.CommandID) (int32, bool) {
	off := int64(id - base)
	if off < math.MinInt32 || off > math.MaxInt32 {
		return 0, false
	}
	return int32(off), true
}

// makeRunnable routes a dependency-free command: tasks queue for executor
// slots in their job's runnable ring; control commands (copies, data,
// file) execute inline — they are bookkeeping and I/O initiation, not
// computation.
func (w *Worker) makeRunnable(pc *pcmd) {
	if pc.cmd.Kind == command.Task {
		pc.unit.js.runnable.push(pc)
		return
	}
	w.execInline(pc)
}

// dispatch starts queued tasks while executor slots are free, visiting
// jobs round-robin so the shared pool is split fairly. A job at its quota
// is skipped while free slots exist — that headroom belongs to tenants
// below their share — but the dispatcher is work-conserving: once no
// under-quota job wants a slot, remaining slots are handed out
// round-robin past quota rather than idling (quota floors and fair-share
// truncation can leave the shares summing below the slot count).
func (w *Worker) dispatch() {
	n := len(w.jobList)
	if n == 0 {
		return
	}
	for w.freeSlots > 0 {
		progressed := false
		deferred := false
		for k := 0; k < n; k++ {
			js := w.jobList[(w.rr+k)%n]
			if js.runnable.n == 0 {
				continue
			}
			if js.running >= int(js.quota.Load()) {
				// Only a skip while slots were actually free is a
				// deferral; with the pool exhausted the job lost nothing
				// to fairness enforcement.
				if w.freeSlots > 0 {
					deferred = true
				}
				continue
			}
			if w.freeSlots == 0 {
				break
			}
			w.startTask(js.runnable.pop())
			progressed = true
		}
		w.rr = (w.rr + 1) % n
		if progressed {
			// An at-quota job was passed over while another actually took
			// a slot: fairness enforcement happened. (A skip that the
			// work-conserving overflow below immediately overrides is not
			// a deferral and is not counted.)
			if deferred {
				w.Stats.QuotaDeferrals.Add(1)
			}
			continue
		}
		if !deferred || w.freeSlots == 0 {
			return
		}
		// Work-conserving overflow: every runnable job is at (or past)
		// its quota and slots are still free — hand them out round-robin
		// past quota. Idle slots help no one.
		for k := 0; k < n && w.freeSlots > 0; k++ {
			js := w.jobList[(w.rr+k)%n]
			if js.runnable.n > 0 {
				w.startTask(js.runnable.pop())
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// startTask claims a slot and launches one task on an executor goroutine.
func (w *Worker) startTask(pc *pcmd) {
	pc.unit.js.running++
	w.freeSlots--
	w.wg.Add(1)
	go w.runTask(pc)
}

// taskScratch is an executor goroutine's reusable working set: resolved
// read/write buffers and the function context. Pooled so steady-state task
// execution does not allocate per command.
type taskScratch struct {
	reads  [][]byte
	objs   []*datastore.Object
	writes [][]byte
	ctx    fn.Ctx
}

var scratchPool = sync.Pool{New: func() any { return new(taskScratch) }}

// runTask executes one task command on an executor goroutine, against its
// job's object store.
func (w *Worker) runTask(pc *pcmd) {
	defer w.wg.Done()
	c := &pc.cmd
	store := pc.unit.js.store
	f := w.reg.Lookup(c.Function)
	if f == nil {
		w.cfg.Logf("worker %s: unknown function %s", w.id, c.Function)
		w.postDone(pc)
		return
	}
	sc := scratchPool.Get().(*taskScratch)
	nr, nw := len(c.Reads), len(c.Writes)
	if cap(sc.reads) < nr {
		sc.reads = make([][]byte, nr)
	}
	sc.reads = sc.reads[:nr]
	for i, obj := range c.Reads {
		sc.reads[i] = store.Ensure(obj, ids.NoLogical).Data
	}
	if cap(sc.objs) < nw {
		sc.objs = make([]*datastore.Object, nw)
		sc.writes = make([][]byte, nw)
	}
	sc.objs = sc.objs[:nw]
	sc.writes = sc.writes[:nw]
	for i, obj := range c.Writes {
		o := store.Ensure(obj, ids.NoLogical)
		sc.objs[i] = o
		sc.writes[i] = o.Data
	}
	sc.ctx.Reset(w.id, c.Params, sc.reads, sc.writes)
	if err := f(&sc.ctx); err != nil {
		w.cfg.Logf("worker %s: task %s (%s) failed: %v", w.id, c.ID, c.Function, err)
	}
	for i, o := range sc.objs {
		data, _ := sc.ctx.Result(i)
		o.Data = data
		o.Version++
	}
	// Drop buffer references before pooling so an idle scratch pins no
	// object data.
	for i := range sc.reads {
		sc.reads[i] = nil
	}
	for i := range sc.writes {
		sc.writes[i] = nil
	}
	for i := range sc.objs {
		sc.objs[i] = nil
	}
	sc.ctx.Reset(0, nil, nil, nil)
	scratchPool.Put(sc)
	w.Stats.TasksRun.Add(1)
	w.postDone(pc)
}

// postDone reports a command completion back to the event loop.
func (w *Worker) postDone(pc *pcmd) {
	select {
	case w.events <- event{kind: evDone, cmd: pc}:
	case <-w.stopped:
	}
}

// execInline runs a non-task command synchronously on the event loop and
// completes it. Completion cascades (handleDone may make further inline
// commands runnable) are handled by direct recursion.
func (w *Worker) execInline(pc *pcmd) {
	c := &pc.cmd
	js := pc.unit.js
	switch c.Kind {
	case command.CopySend:
		// A chunked or parked send completes asynchronously (evDone from
		// the writer, or a retry on evPeerSpace); only the synchronous
		// paths fall through to handleDone.
		if w.execSend(js, pc) {
			w.handleDone(pc)
		}
		return
	case command.CopyRecv:
		w.execRecv(js, c)
	case command.LocalCopy:
		if src := js.store.Get(c.Reads[0]); src != nil {
			buf := make([]byte, len(src.Data))
			copy(buf, src.Data)
			js.store.Install(c.Writes[0], c.Logical, src.Version, buf)
		}
	case command.Create:
		buf := make([]byte, len(c.Params))
		copy(buf, c.Params)
		js.store.Install(c.Writes[0], c.Logical, c.Version, buf)
	case command.Destroy:
		js.store.Destroy(c.Writes[0])
	case command.Save:
		w.execSave(js, c)
	case command.Load:
		w.execLoad(js, c)
	default:
		w.cfg.Logf("worker %s: inline command %s has unexpected kind %s", w.id, c.ID, c.Kind)
	}
	w.handleDone(pc)
}

// execSend initiates one CopySend, reporting whether it completed
// synchronously (self-delivery, a small payload admitted to the queue, or
// a drop). false means the command finishes later — evDone once the
// writer streams the last chunk, or an evPeerSpace retry if it parked.
func (w *Worker) execSend(js *jstate, snd *pcmd) bool {
	c := &snd.cmd
	obj := js.store.Get(c.Reads[0])
	if obj == nil {
		w.cfg.Logf("worker %s: copy-send %s: missing object %s", w.id, c.ID, c.Reads[0])
		obj = js.store.Ensure(c.Reads[0], c.Logical)
	}
	if c.DstWorker == w.id {
		// Self-delivery without a network round trip.
		buf := make([]byte, len(obj.Data))
		copy(buf, obj.Data)
		w.Stats.CopiesSent.Add(1)
		w.handlePayload(&proto.DataPayload{
			Job:        js.id,
			DstCommand: c.DstCommand,
			Object:     c.Reads[0],
			Logical:    c.Logical,
			Version:    obj.Version,
			Data:       buf,
		}, nil)
		return true
	}
	return w.sendPeer(c.DstWorker, snd, obj)
}

func (w *Worker) execRecv(js *jstate, c *command.Command) {
	ip, ok := js.payloads[c.ID]
	if !ok {
		w.cfg.Logf("worker %s: copy-recv %s activated without payload", w.id, c.ID)
		return
	}
	delete(js.payloads, c.ID)
	logical := c.Logical
	if logical == ids.NoLogical {
		logical = ip.msg.Logical
	}
	if ip.spill != nil {
		// The body streamed to disk under receive-budget pressure; install
		// it disk-backed and let the first reader fault it in.
		js.store.InstallSpilled(c.Writes[0], logical, ip.msg.Version, ip.spill)
	} else {
		js.store.Install(c.Writes[0], logical, ip.msg.Version, ip.msg.Data)
	}
	w.Stats.CopiesRecv.Add(1)
}

func (w *Worker) execSave(js *jstate, c *command.Command) {
	if w.durable == nil {
		w.cfg.Logf("worker %s: save %s: no durable store configured", w.id, c.ID)
		return
	}
	ckpt := params.NewDecoder(c.Params).Uint()
	obj := js.store.Get(c.Reads[0])
	if obj == nil {
		w.cfg.Logf("worker %s: save %s: missing object %s", w.id, c.ID, c.Reads[0])
		w.reportSaveFailed(js, ckpt, c, "missing object")
		return
	}
	if err := w.durable.Save(js.id, ckpt, c.Logical, obj.Version, obj.Data); err != nil {
		w.cfg.Logf("worker %s: save %s: %v", w.id, c.ID, err)
		w.reportSaveFailed(js, ckpt, c, err.Error())
	}
}

// reportSaveFailed tells the controller a checkpoint Save errored. It is
// sent immediately rather than batched so it precedes the command's
// Complete on the FIFO control link: the controller must veto the commit
// before the completion that would otherwise let it go through.
func (w *Worker) reportSaveFailed(js *jstate, ckpt uint64, c *command.Command, reason string) {
	if err := w.sendCtrl(&proto.SaveFailed{Job: js.id, Ckpt: ckpt, Logical: c.Logical, Err: reason}); err != nil {
		w.cfg.Logf("worker %s: save-failed report: %v", w.id, err)
	}
}

func (w *Worker) execLoad(js *jstate, c *command.Command) {
	if w.durable == nil {
		w.cfg.Logf("worker %s: load %s: no durable store configured", w.id, c.ID)
		return
	}
	ckpt := params.NewDecoder(c.Params).Uint()
	data, version, err := w.durable.Load(js.id, ckpt, c.Logical)
	if err != nil {
		w.cfg.Logf("worker %s: load %s: %v", w.id, c.ID, err)
		return
	}
	js.store.Install(c.Writes[0], c.Logical, version, data)
}

// handlePayload routes an arriving data payload into its job's namespace:
// wake the waiting receive command, or buffer the payload until its
// command activates (payloads may outrun commands because the data plane
// is independent of the control plane).
func (w *Worker) handlePayload(p *proto.DataPayload, sp *datastore.Spilled) {
	if _, dead := w.deadJobs[p.Job]; dead {
		if sp != nil {
			sp.Remove() // late spilled data must not leak its file
		}
		return // late data for a torn-down job; never resurrect it
	}
	js := w.job(p.Job)
	ip := inPayload{msg: p, spill: sp}
	if pc, ok := js.payWait[p.DstCommand]; ok {
		delete(js.payWait, p.DstCommand)
		js.payloads[p.DstCommand] = ip
		pc.missing--
		if pc.missing == 0 {
			w.makeRunnable(pc)
			w.dispatch()
		}
		return
	}
	js.payloads[p.DstCommand] = ip
}

// handleDone retires a completed command: record completion in its job's
// namespace, wake waiters (intra-instance ones through the compiled
// reverse edges, cross-unit ones through the job's waiter map), advance
// the job's arrival watermark, credit the executor slot, report to the
// controller, and activate any unit whose barrier cleared.
func (w *Worker) handleDone(pc *pcmd) {
	js := pc.unit.js
	if pc.epoch != js.haltEpoch {
		// Completed after a halt (or teardown) flushed the job's queues;
		// the command's state was already discarded, but the task still
		// held its executor slot — return it now. Halt leaves freeSlots
		// alone for exactly this reason (invariant: freeSlots + running
		// tasks == Slots), so stale completions cannot push the count
		// past the limit.
		if pc.cmd.Kind == command.Task {
			w.freeSlots++
			js.running--
			w.dispatch()
		}
		return
	}
	id := pc.cmd.ID
	pc.state = psDone
	js.unfin--
	w.Stats.CommandsDone.Add(1)
	if w.outage {
		w.Stats.OutageDone.Add(1)
	}
	if pc.cmd.Kind == command.Task {
		w.freeSlots++
		js.running--
	}
	js.arrDone(pc.arrIdx)

	u := pc.unit
	if u.ct != nil {
		for _, wi := range u.ct.Entries[pc.local].LocalWaiters {
			wpc := &u.pcs[wi]
			if wpc.state != psActive {
				// Not yet activated: it will observe this completion
				// through the psDone state instead.
				continue
			}
			wpc.missing--
			if wpc.missing == 0 {
				w.makeRunnable(wpc)
			}
		}
	} else {
		js.done[id] = struct{}{}
	}
	if len(js.waiters) > 0 {
		if ws := js.waiters[id]; len(ws) > 0 {
			delete(js.waiters, id)
			for _, wpc := range ws {
				wpc.missing--
				if wpc.missing == 0 {
					w.makeRunnable(wpc)
				}
			}
		}
	}

	// The unit may be recycled by completeUnit; capture what the
	// completion report needs first.
	instance := u.instance
	u.remaining--
	if u.remaining == 0 {
		w.completeUnit(u)
	}

	// Completion reporting: per-command in eager (central) mode; batched
	// in Nimbus mode, with instance commands elided entirely — BlockDone
	// subsumes them (paper §2.2: n+1 messages per steady-state block).
	if instance == 0 {
		js.completions = append(js.completions, id)
		if w.eager || len(js.completions) >= w.cfg.CompletionBatch || js.unfin == 0 {
			w.flushCompletions(js)
		}
	} else if js.unfin == 0 && len(js.completions) > 0 {
		w.flushCompletions(js)
	}

	w.tryActivateUnits(js)
	w.dispatch()
}

// completeUnit retires a finished unit: report BlockDone for template
// instances, fold instance completions into the job's done ranges, and
// recycle the arena. No references to the unit's pcmds survive this point
// (every command has completed and been unregistered), so pooling is safe.
func (w *Worker) completeUnit(u *unit) {
	js := u.js
	if u.instance != 0 {
		w.bdMsg = proto.BlockDone{Job: js.id, Worker: w.id, Instance: u.instance}
		_ = w.sendCtrl(&w.bdMsg)
	}
	if u.ct != nil {
		// Insert keeping doneRanges sorted by base (isDone binary-searches
		// it). Instances usually complete in base order, so the insertion
		// point is almost always the end.
		i := len(js.doneRanges)
		for i > 0 && js.doneRanges[i-1].base > u.base {
			i--
		}
		js.doneRanges = append(js.doneRanges, doneRange{})
		copy(js.doneRanges[i+1:], js.doneRanges[i:])
		js.doneRanges[i] = doneRange{base: u.base, ct: u.ct}
		for i, lu := range js.liveUnits {
			if lu == u {
				last := len(js.liveUnits) - 1
				js.liveUnits[i] = js.liveUnits[last]
				js.liveUnits[last] = nil
				js.liveUnits = js.liveUnits[:last]
				break
			}
		}
	}
	w.releaseUnit(u)
}

func (w *Worker) flushCompletions(js *jstate) {
	if len(js.completions) == 0 {
		return
	}
	msg := &proto.Complete{Job: js.id, Worker: w.id, IDs: js.completions}
	_ = w.sendCtrl(msg)
	// sendCtrl marshals synchronously, so the backing array can be
	// reused for the next batch.
	js.completions = js.completions[:0]
}

// tryActivateUnits activates one job's queued units, in order, whose
// barriers have cleared: the head's arrival-prefix mark has been overtaken
// by the job's completion watermark.
func (w *Worker) tryActivateUnits(js *jstate) {
	for len(js.units) > 0 {
		head := js.units[0]
		if js.arrLow < head.mark {
			return
		}
		js.units[0] = nil
		js.units = js.units[1:]
		if len(js.units) == 0 {
			js.units = nil
		}
		w.activate(head)
	}
}
