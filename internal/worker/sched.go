package worker

import (
	"nimbus/internal/command"
	"nimbus/internal/datastore"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
)

// enqueue admits a unit of work. Non-barrier batches activate immediately;
// barrier units (template instances and patches) wait until every command
// that arrived before them has completed. The per-unit wait count is
// maintained against arrival sequence numbers so that commands arriving
// *after* a queued unit — which may legitimately depend on the unit's own
// commands — can never deadlock its activation.
func (w *Worker) enqueue(u *unit) {
	if w.halted {
		return
	}
	u.seq = w.arrival
	w.arrival++
	u.remaining = len(u.cmds)
	if !u.barrier {
		w.activate(u)
		w.dispatch()
		return
	}
	u.waitCount = w.unfin
	for _, q := range w.units {
		if !q.activated {
			u.waitCount += len(q.cmds)
		}
	}
	if u.waitCount == 0 && len(w.units) == 0 {
		w.activate(u)
	} else {
		w.units = append(w.units, u)
	}
	w.dispatch()
}

// activate admits a unit's commands into the pending set, resolving their
// before sets against the local completion state (control-plane
// requirement 1: workers determine runnability locally).
func (w *Worker) activate(u *unit) {
	u.activated = true
	if len(u.cmds) == 0 {
		w.completeUnit(u)
		return
	}
	for _, c := range u.cmds {
		pc := &pcmd{cmd: c, seq: u.seq, unit: u, epoch: w.haltEpoch}
		w.pending[c.ID] = pc
		w.unfin++
		for _, dep := range c.Before {
			if w.isDone(dep) {
				continue
			}
			w.waiters[dep] = append(w.waiters[dep], pc)
			pc.missing++
		}
		if c.Kind == command.CopyRecv {
			if _, ok := w.payloads[c.ID]; !ok {
				pc.needPayload = true
				w.payWait[c.ID] = pc
				pc.missing++
			}
		}
		if pc.missing == 0 {
			w.makeRunnable(pc)
		}
	}
}

func (w *Worker) isDone(id ids.CommandID) bool {
	if id < w.doneLow {
		return true
	}
	_, ok := w.done[id]
	return ok
}

// makeRunnable routes a dependency-free command: tasks queue for executor
// slots; control commands (copies, data, file) execute inline — they are
// bookkeeping and I/O initiation, not computation.
func (w *Worker) makeRunnable(pc *pcmd) {
	if pc.cmd.Kind == command.Task {
		w.runnable = append(w.runnable, pc)
		return
	}
	w.execInline(pc)
}

// dispatch starts queued tasks while executor slots are free.
func (w *Worker) dispatch() {
	for w.freeSlots > 0 && len(w.runnable) > 0 {
		pc := w.runnable[0]
		w.runnable = w.runnable[1:]
		w.freeSlots--
		w.wg.Add(1)
		go w.runTask(pc)
	}
}

// runTask executes one task command on an executor goroutine.
func (w *Worker) runTask(pc *pcmd) {
	defer w.wg.Done()
	c := pc.cmd
	f := w.reg.Lookup(c.Function)
	if f == nil {
		w.cfg.Logf("worker %s: unknown function %s", w.id, c.Function)
		w.postDone(pc)
		return
	}
	reads := make([][]byte, len(c.Reads))
	for i, obj := range c.Reads {
		reads[i] = w.store.Ensure(obj, ids.NoLogical).Data
	}
	writeObjs := make([]*datastore.Object, len(c.Writes))
	writes := make([][]byte, len(c.Writes))
	for i, obj := range c.Writes {
		o := w.store.Ensure(obj, ids.NoLogical)
		writeObjs[i] = o
		writes[i] = o.Data
	}
	ctx := fn.NewCtx(w.id, c.Params, reads, writes)
	if err := f(ctx); err != nil {
		w.cfg.Logf("worker %s: task %s (%s) failed: %v", w.id, c.ID, c.Function, err)
	}
	for i, o := range writeObjs {
		data, _ := ctx.Result(i)
		o.Data = data
		o.Version++
	}
	w.Stats.TasksRun.Add(1)
	w.postDone(pc)
}

// postDone reports a command completion back to the event loop.
func (w *Worker) postDone(pc *pcmd) {
	select {
	case w.events <- event{kind: evDone, cmd: pc}:
	case <-w.stopped:
	}
}

// execInline runs a non-task command synchronously on the event loop and
// completes it. Completion cascades (handleDone may make further inline
// commands runnable) are handled by direct recursion.
func (w *Worker) execInline(pc *pcmd) {
	c := pc.cmd
	switch c.Kind {
	case command.CopySend:
		w.execSend(c)
	case command.CopyRecv:
		w.execRecv(c)
	case command.LocalCopy:
		if src := w.store.Get(c.Reads[0]); src != nil {
			buf := make([]byte, len(src.Data))
			copy(buf, src.Data)
			w.store.Install(c.Writes[0], c.Logical, src.Version, buf)
		}
	case command.Create:
		buf := make([]byte, len(c.Params))
		copy(buf, c.Params)
		w.store.Install(c.Writes[0], c.Logical, c.Version, buf)
	case command.Destroy:
		w.store.Destroy(c.Writes[0])
	case command.Save:
		w.execSave(c)
	case command.Load:
		w.execLoad(c)
	default:
		w.cfg.Logf("worker %s: inline command %s has unexpected kind %s", w.id, c.ID, c.Kind)
	}
	w.handleDone(pc)
}

func (w *Worker) execSend(c *command.Command) {
	obj := w.store.Get(c.Reads[0])
	if obj == nil {
		w.cfg.Logf("worker %s: copy-send %s: missing object %s", w.id, c.ID, c.Reads[0])
		obj = w.store.Ensure(c.Reads[0], c.Logical)
	}
	p := &proto.DataPayload{
		DstCommand: c.DstCommand,
		Object:     c.Reads[0],
		Logical:    c.Logical,
		Version:    obj.Version,
		Data:       obj.Data,
	}
	w.Stats.CopiesSent.Add(1)
	if c.DstWorker == w.id {
		// Self-delivery without a network round trip.
		buf := make([]byte, len(obj.Data))
		copy(buf, obj.Data)
		p.Data = buf
		w.handlePayload(p)
		return
	}
	w.sendPeer(c.DstWorker, p)
}

func (w *Worker) execRecv(c *command.Command) {
	p, ok := w.payloads[c.ID]
	if !ok {
		w.cfg.Logf("worker %s: copy-recv %s activated without payload", w.id, c.ID)
		return
	}
	delete(w.payloads, c.ID)
	logical := c.Logical
	if logical == ids.NoLogical {
		logical = p.Logical
	}
	w.store.Install(c.Writes[0], logical, p.Version, p.Data)
	w.Stats.CopiesRecv.Add(1)
}

func (w *Worker) execSave(c *command.Command) {
	if w.durable == nil {
		w.cfg.Logf("worker %s: save %s: no durable store configured", w.id, c.ID)
		return
	}
	ckpt := params.NewDecoder(c.Params).Uint()
	obj := w.store.Get(c.Reads[0])
	if obj == nil {
		w.cfg.Logf("worker %s: save %s: missing object %s", w.id, c.ID, c.Reads[0])
		return
	}
	if err := w.durable.Save(ckpt, c.Logical, obj.Version, obj.Data); err != nil {
		w.cfg.Logf("worker %s: save %s: %v", w.id, c.ID, err)
	}
}

func (w *Worker) execLoad(c *command.Command) {
	if w.durable == nil {
		w.cfg.Logf("worker %s: load %s: no durable store configured", w.id, c.ID)
		return
	}
	ckpt := params.NewDecoder(c.Params).Uint()
	data, version, err := w.durable.Load(ckpt, c.Logical)
	if err != nil {
		w.cfg.Logf("worker %s: load %s: %v", w.id, c.ID, err)
		return
	}
	w.store.Install(c.Writes[0], c.Logical, version, data)
}

// handlePayload routes an arriving data payload: wake the waiting receive
// command, or buffer the payload until its command activates (payloads may
// outrun commands because the data plane is independent of the control
// plane).
func (w *Worker) handlePayload(p *proto.DataPayload) {
	if pc, ok := w.payWait[p.DstCommand]; ok {
		delete(w.payWait, p.DstCommand)
		w.payloads[p.DstCommand] = p
		pc.missing--
		if pc.missing == 0 {
			w.makeRunnable(pc)
			w.dispatch()
		}
		return
	}
	w.payloads[p.DstCommand] = p
}

// handleDone retires a completed command: record completion, wake waiters,
// advance barrier counts, credit the executor slot, report to the
// controller, and activate any unit whose barrier cleared.
func (w *Worker) handleDone(pc *pcmd) {
	if pc.epoch != w.haltEpoch {
		// Completed after a halt flushed the queues; the command's state
		// was already discarded.
		if pc.cmd.Kind == command.Task {
			w.freeSlots++
			w.dispatch()
		}
		return
	}
	id := pc.cmd.ID
	delete(w.pending, id)
	w.done[id] = struct{}{}
	w.unfin--
	w.Stats.CommandsDone.Add(1)
	if pc.cmd.Kind == command.Task {
		w.freeSlots++
	}

	// Advance barriers of units that arrived after this command.
	for _, u := range w.units {
		if !u.activated && u.seq > pc.seq {
			u.waitCount--
		}
	}

	if ws := w.waiters[id]; len(ws) > 0 {
		delete(w.waiters, id)
		for _, wpc := range ws {
			wpc.missing--
			if wpc.missing == 0 {
				w.makeRunnable(wpc)
			}
		}
	}

	if u := pc.unit; u != nil {
		u.remaining--
		if u.remaining == 0 {
			w.completeUnit(u)
		}
	}

	// Completion reporting: per-command in eager (central) mode; batched
	// in Nimbus mode, with instance commands elided entirely — BlockDone
	// subsumes them (paper §2.2: n+1 messages per steady-state block).
	if pc.unit == nil || pc.unit.instance == 0 {
		w.completions = append(w.completions, id)
		if w.eager || len(w.completions) >= w.cfg.CompletionBatch || w.unfin == 0 {
			w.flushCompletions()
		}
	} else if w.unfin == 0 && len(w.completions) > 0 {
		w.flushCompletions()
	}

	w.tryActivateUnits()
	w.dispatch()
}

func (w *Worker) completeUnit(u *unit) {
	if u.instance != 0 {
		_ = w.sendCtrl(&proto.BlockDone{Worker: w.id, Instance: u.instance})
	}
}

func (w *Worker) flushCompletions() {
	if len(w.completions) == 0 {
		return
	}
	msg := &proto.Complete{Worker: w.id, IDs: w.completions}
	_ = w.sendCtrl(msg)
	w.completions = nil
}

// tryActivateUnits activates queued units, in order, whose barriers have
// cleared.
func (w *Worker) tryActivateUnits() {
	for len(w.units) > 0 {
		head := w.units[0]
		if head.waitCount > 0 {
			return
		}
		w.units = w.units[1:]
		w.activate(head)
	}
}
