package worker

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// destroyTemplate builds an n-entry template of inline Destroy commands:
// entry 0 first, the rest depending on it. Destroy of a missing object is
// a no-op, so the whole instance exercises the scheduler — materialize,
// activate, inline cascade, barrier completion — without task goroutines
// or data allocation.
func destroyTemplate(id ids.TemplateID, n int) *proto.InstallTemplate {
	entries := make([]command.TemplateEntry, n)
	for i := range entries {
		entries[i] = command.TemplateEntry{
			Index: int32(i), Kind: command.Destroy,
			Writes:    []ids.ObjectID{ids.ObjectID(i + 1)},
			ParamSlot: command.NoParamSlot,
		}
		if i > 0 {
			entries[i].BeforeIdx = []int32{0}
		}
	}
	return &proto.InstallTemplate{Template: id, Name: "destroy", Entries: entries}
}

// TestInstantiateAllocCeiling is the steady-state guard (analogous to
// proto's TestMarshalSteadyStateZeroAlloc): instantiating and fully
// completing a 1024-entry instance must stay under a small constant
// allocation ceiling — no per-command Command/pcmd allocations, no map
// inserts, pooled arenas and codec buffers. The map-based path allocated
// 2+ objects per command (>2000 allocs per instance at this size).
func TestInstantiateAllocCeiling(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector pool instrumentation defeats allocation accounting")
	}
	b := NewBenchLoop(1)
	defer b.Close()
	const entries = 1024
	b.Apply(destroyTemplate(7, entries))
	const span = uint64(entries)
	inst := uint64(0)
	run := func() {
		inst++
		b.Apply(&proto.InstantiateTemplate{
			Template: 7, Instance: inst, Base: ids.CommandID(1 + inst*span),
			DoneWatermark: ids.CommandID(1 + inst*span), // everything before this instance
		})
	}
	for i := 0; i < 16; i++ { // warm pools and ring capacities
		run()
	}
	if got := len(b.Job(0).doneRanges); got > 2 {
		t.Fatalf("done ranges not pruned by watermark: %d", got)
	}
	avg := testing.AllocsPerRun(64, run)
	// Per instance the path may allocate a handful of transient frames
	// (BlockDone transport item, amortized queue growth); 16 leaves slack
	// while still catching any per-command regression (which would cost
	// 1000+).
	if avg > 16 {
		t.Fatalf("allocs per 1024-entry instantiate = %.1f, want <= 16", avg)
	}
}

// refModel mirrors the installed template the way the pre-compilation
// map-based path held it, and materializes instances through
// TemplateEntry.Materialize — the reference semantics the compiled path
// must reproduce.
type refModel struct {
	entries map[int32]*command.TemplateEntry
}

func (r *refModel) applyEdit(e *command.Edit) {
	for _, idx := range e.Remove {
		delete(r.entries, idx)
	}
	for i := range e.Add {
		ne := e.Add[i]
		r.entries[ne.Index] = &ne
	}
}

func (r *refModel) materialize(base ids.CommandID) map[ids.CommandID][]ids.CommandID {
	out := make(map[ids.CommandID][]ids.CommandID, len(r.entries))
	for _, e := range r.entries {
		var c command.Command
		e.Materialize(base, nil, &c)
		out[c.ID] = append([]ids.CommandID(nil), c.Before...)
	}
	return out
}

// recordEntry builds a recording-task entry whose Fixed params carry its
// own global index, so the executed order can be reconstructed.
func recordEntry(idx int32, recID ids.FunctionID, before []int32) command.TemplateEntry {
	return command.TemplateEntry{
		Index: idx, Kind: command.Task, Function: recID,
		ParamSlot: command.NoParamSlot,
		Fixed:     []byte{byte(idx), byte(idx >> 8)},
		BeforeIdx: before,
	}
}

// TestSchedulerEquivalence is the scheduler-level half of the equivalence
// property: across random templates, random persistent edits and advancing
// watermarks, the compiled arena path must execute exactly the command set
// the map-based path would materialize, respect every before edge, and
// keep whole-instance barrier ordering.
func TestSchedulerEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(271828))
	for trial := 0; trial < 25; trial++ {
		reg := fn.NewRegistry()
		var mu sync.Mutex
		var order []int32 // executed entry indexes, in completion order
		recID := fn.FirstAppFunc
		reg.MustRegister(recID, "test/record", func(c *fn.Ctx) error {
			mu.Lock()
			order = append(order, int32(c.Params[0])|int32(c.Params[1])<<8)
			mu.Unlock()
			return nil
		})

		b := NewBenchLoop(1) // one slot: serial execution, total order
		b.W.reg = reg

		// Random DAG template: every entry a recording task with random
		// backward edges.
		n := r.Intn(24) + 2
		entries := make([]command.TemplateEntry, n)
		referenced := map[int32]bool{}
		for i := range entries {
			var before []int32
			for k := 0; k < r.Intn(3) && i > 0; k++ {
				dep := int32(r.Intn(i))
				before = append(before, dep)
				referenced[dep] = true
			}
			entries[i] = recordEntry(int32(i), recID, before)
		}
		ref := &refModel{entries: make(map[int32]*command.TemplateEntry)}
		for i := range entries {
			e := entries[i]
			ref.entries[e.Index] = &e
		}
		b.Apply(&proto.InstallTemplate{Template: 1, Name: "rand", Entries: entries})

		const instances = 5
		span := uint64(n + instances + 1) // room for edit-added indexes
		type instRef struct {
			base ids.CommandID
			want map[ids.CommandID][]ids.CommandID
		}
		var wants []instRef
		nextIdx := int32(n)
		for k := 0; k < instances; k++ {
			base := ids.CommandID(1 + uint64(k)*span)
			msg := &proto.InstantiateTemplate{
				Template: 1, Instance: uint64(k + 1), Base: base,
			}
			if k > 0 {
				msg.DoneWatermark = base // prune everything before this instance
			}
			// Random persistent edit on some instances: remove an
			// unreferenced entry, add one depending on a survivor.
			if k > 0 && r.Intn(2) == 0 {
				var victims []int32
				for idx := range ref.entries {
					if !referenced[idx] {
						victims = append(victims, idx)
					}
				}
				if len(victims) > 1 {
					sort.Slice(victims, func(i, j int) bool { return victims[i] < victims[j] })
					victim := victims[r.Intn(len(victims))]
					var survivors []int32
					for idx := range ref.entries {
						if idx != victim {
							survivors = append(survivors, idx)
						}
					}
					sort.Slice(survivors, func(i, j int) bool { return survivors[i] < survivors[j] })
					dep := survivors[r.Intn(len(survivors))]
					referenced[dep] = true
					ed := command.Edit{
						Remove: []int32{victim},
						Add:    []command.TemplateEntry{recordEntry(nextIdx, recID, []int32{dep})},
					}
					nextIdx++
					msg.Edits = []command.Edit{ed}
					ref.applyEdit(&ed)
				}
			}
			wants = append(wants, instRef{base: base, want: ref.materialize(base)})
			b.Apply(msg)
			b.Drain()
		}

		// Same command set, instance by instance, in barrier order.
		mu.Lock()
		got := append([]int32(nil), order...)
		mu.Unlock()
		off := 0
		for k, w := range wants {
			if len(got) < off+len(w.want) {
				t.Fatalf("trial %d: executed %d commands, want >= %d", trial, len(got), off+len(w.want))
			}
			window := got[off : off+len(w.want)]
			pos := make(map[ids.CommandID]int, len(window))
			for j, idx := range window {
				id := w.base + ids.CommandID(idx)
				if _, dup := pos[id]; dup {
					t.Fatalf("trial %d inst %d: command %s executed twice", trial, k, id)
				}
				pos[id] = off + j
			}
			for id, before := range w.want {
				p, ok := pos[id]
				if !ok {
					t.Fatalf("trial %d inst %d: command %s missing or outside its barrier window", trial, k, id)
				}
				for _, dep := range before {
					dp, ok := pos[dep]
					if !ok {
						t.Fatalf("trial %d inst %d: dep %s of %s not in window", trial, k, dep, id)
					}
					if dp >= p {
						t.Fatalf("trial %d inst %d: %s (at %d) ran before its dep %s (at %d)",
							trial, k, id, p, dep, dp)
					}
				}
			}
			off += len(w.want)
		}
		if off != len(got) {
			t.Fatalf("trial %d: executed %d commands, want %d", trial, len(got), off)
		}
		b.Close()
	}
}

// TestBarrierIgnoresLateArrivals pins the prefix-counter semantics the
// old per-unit scan implemented: completions of commands that arrived
// *after* a queued barrier unit must not count toward its barrier, even
// when they finish first.
func TestBarrierIgnoresLateArrivals(t *testing.T) {
	b := NewBenchLoop(1)
	defer b.Close()
	// An unrunnable task holds the arrival watermark down.
	b.Apply(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 10, Kind: command.Task, Function: fn.FuncNop, Before: []ids.CommandID{9999}},
	}})
	b.Apply(destroyTemplate(3, 4))
	b.Apply(&proto.InstantiateTemplate{Template: 3, Instance: 1, Base: 100})
	if len(b.Job(0).units) != 1 {
		t.Fatalf("queued units = %d, want 1", len(b.Job(0).units))
	}
	// Late non-barrier commands complete immediately — and must not
	// unblock the queued instance.
	for i := 0; i < 8; i++ {
		b.Apply(&proto.SpawnCommands{Cmds: []*command.Command{
			{ID: ids.CommandID(20 + i), Kind: command.Destroy, Writes: []ids.ObjectID{1}},
		}})
	}
	if len(b.Job(0).units) != 1 || b.Job(0).units[0].activated {
		t.Fatal("barrier unit activated by late arrivals")
	}
	// Satisfy the stalled task's dependency; the cascade must activate
	// and complete the instance.
	b.Apply(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 9999, Kind: command.Destroy, Writes: []ids.ObjectID{2}},
	}})
	b.Drain()
	if len(b.Job(0).units) != 0 {
		t.Fatalf("queued units = %d after drain", len(b.Job(0).units))
	}
	if !b.Job(0).isDone(100) || !b.Job(0).isDone(103) {
		t.Fatal("instance commands not recorded done")
	}
}

// TestCrossUnitWaitOnInstanceCommand exercises the waiter-map fallback for
// dependencies on live arena commands: a spawned command depending on an
// in-flight instance's receive must wake when the payload lands, and a
// dependency on an already-completed instance must resolve through the
// done-range lookup.
func TestCrossUnitWaitOnInstanceCommand(t *testing.T) {
	b := NewBenchLoop(1)
	defer b.Close()
	b.Apply(&proto.InstallTemplate{
		Template: 5, Name: "recv",
		Entries: []command.TemplateEntry{{
			Index: 0, Kind: command.CopyRecv,
			Writes: []ids.ObjectID{41}, Logical: 41, ParamSlot: command.NoParamSlot,
		}},
	})
	b.Apply(&proto.InstantiateTemplate{Template: 5, Instance: 1, Base: 500})
	// The instance stalls on its payload; a non-barrier command depending
	// on the receive registers in the waiter map.
	b.Apply(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 900, Kind: command.Destroy, Writes: []ids.ObjectID{41}, Before: []ids.CommandID{500}},
	}})
	if b.Job(0).isDone(900) {
		t.Fatal("dependent ran before the receive completed")
	}
	b.W.handlePayload(&proto.DataPayload{DstCommand: 500, Object: 41, Logical: 41, Version: 3, Data: []byte{9}}, nil)
	if !b.Job(0).isDone(900) {
		t.Fatal("dependent did not wake on instance completion")
	}
	// A later dependency on the completed instance resolves through the
	// done range (the arena is already recycled).
	b.Apply(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 901, Kind: command.Destroy, Writes: []ids.ObjectID{41}, Before: []ids.CommandID{500}},
	}})
	if !b.Job(0).isDone(901) {
		t.Fatal("dependency on completed instance did not resolve")
	}
}

// TestHostilePayloadOrdering covers the data-plane races around buffered
// payloads and the watermark (paper's push-model data plane: payloads may
// arrive in any order relative to control).
func TestHostilePayloadOrdering(t *testing.T) {
	recvTemplate := func(id ids.TemplateID, obj ids.ObjectID) *proto.InstallTemplate {
		return &proto.InstallTemplate{
			Template: id, Name: fmt.Sprintf("recv%d", id),
			Entries: []command.TemplateEntry{{
				Index: 0, Kind: command.CopyRecv,
				Writes: []ids.ObjectID{obj}, Logical: ids.LogicalID(obj),
				ParamSlot: command.NoParamSlot,
			}},
		}
	}

	t.Run("payload-before-command", func(t *testing.T) {
		b := NewBenchLoop(1)
		defer b.Close()
		b.Apply(recvTemplate(1, 11))
		b.W.handlePayload(&proto.DataPayload{DstCommand: 100, Object: 11, Version: 7, Data: []byte{1}}, nil)
		b.Apply(&proto.InstantiateTemplate{Template: 1, Instance: 1, Base: 100})
		o := b.Job(0).store.Get(11)
		if o == nil || o.Version != 7 {
			t.Fatalf("buffered payload not consumed: %+v", o)
		}
		if len(b.Job(0).payloads) != 0 || len(b.Job(0).payWait) != 0 {
			t.Fatal("payload bookkeeping leaked")
		}
	})

	t.Run("command-before-payload", func(t *testing.T) {
		b := NewBenchLoop(1)
		defer b.Close()
		b.Apply(recvTemplate(1, 12))
		b.Apply(&proto.InstantiateTemplate{Template: 1, Instance: 1, Base: 200})
		if b.Job(0).store.Get(12) != nil {
			t.Fatal("receive ran without payload")
		}
		b.W.handlePayload(&proto.DataPayload{DstCommand: 200, Object: 12, Version: 9, Data: []byte{2}}, nil)
		o := b.Job(0).store.Get(12)
		if o == nil || o.Version != 9 {
			t.Fatalf("late payload not installed: %+v", o)
		}
	})

	t.Run("duplicate-payload-no-resurrect", func(t *testing.T) {
		b := NewBenchLoop(1)
		defer b.Close()
		b.Apply(recvTemplate(1, 13))
		b.Apply(&proto.InstantiateTemplate{Template: 1, Instance: 1, Base: 300})
		b.W.handlePayload(&proto.DataPayload{DstCommand: 300, Object: 13, Version: 5, Data: []byte{3}}, nil)
		if o := b.Job(0).store.Get(13); o == nil || o.Version != 5 {
			t.Fatalf("first payload not installed: %+v", o)
		}
		// Duplicate for the completed receive: buffers, must not
		// re-install.
		b.W.handlePayload(&proto.DataPayload{DstCommand: 300, Object: 13, Version: 99, Data: []byte{9}}, nil)
		if o := b.Job(0).store.Get(13); o.Version != 5 {
			t.Fatalf("duplicate payload resurrected completed receive: version %d", o.Version)
		}
		// The watermark retires both the completion record and the stale
		// buffer.
		b.Apply(&proto.InstantiateTemplate{Template: 1, Instance: 2, Base: 400, DoneWatermark: 301})
		if len(b.Job(0).payloads) != 0 {
			t.Fatalf("stale payload survived the watermark: %d buffered", len(b.Job(0).payloads))
		}
		if !b.Job(0).isDone(300) { // below doneLow now
			t.Fatal("watermark lost the completion")
		}
		if o := b.Job(0).store.Get(13); o.Version != 5 {
			t.Fatalf("pruning re-ran the receive: version %d", o.Version)
		}
		// Complete the second instance for a tidy shutdown.
		b.W.handlePayload(&proto.DataPayload{DstCommand: 400, Object: 13, Version: 6, Data: []byte{4}}, nil)
	})

	t.Run("stale-payload-below-watermark", func(t *testing.T) {
		b := NewBenchLoop(1)
		defer b.Close()
		b.Apply(recvTemplate(1, 14))
		// A payload addressed far below any future command arrives first.
		b.W.handlePayload(&proto.DataPayload{DstCommand: 50, Object: 14, Version: 1, Data: []byte{5}}, nil)
		// The instantiation's watermark is above it: the buffer must be
		// dropped, and the new receive must still wait for its own
		// payload rather than consume the stale one.
		b.Apply(&proto.InstantiateTemplate{Template: 1, Instance: 1, Base: 600, DoneWatermark: 100})
		if len(b.Job(0).payloads) != 0 {
			t.Fatal("stale payload survived the watermark")
		}
		if b.Job(0).store.Get(14) != nil {
			t.Fatal("receive consumed a stale payload")
		}
		b.W.handlePayload(&proto.DataPayload{DstCommand: 600, Object: 14, Version: 2, Data: []byte{6}}, nil)
		if o := b.Job(0).store.Get(14); o == nil || o.Version != 2 {
			t.Fatalf("fresh payload not installed: %+v", o)
		}
	})
}

// TestRunnableRingDoesNotPin is the regression test for the old
// pop-front-by-reslice leak: a drained runnable queue must hold no
// references to completed pcmds.
func TestRunnableRingDoesNotPin(t *testing.T) {
	var r pcmdRing
	pcs := make([]pcmd, 100)
	for i := range pcs {
		r.push(&pcs[i])
	}
	for r.n > 0 {
		if r.pop() == nil {
			t.Fatal("pop returned nil with items queued")
		}
	}
	for i, slot := range r.buf {
		if slot != nil {
			t.Fatalf("drained ring pins pcmd at slot %d", i)
		}
	}
	// Wrap-around: interleaved push/pop crosses the ring boundary and
	// must still clear every vacated slot.
	for round := 0; round < 50; round++ {
		r.push(&pcs[round%len(pcs)])
		r.push(&pcs[(round+1)%len(pcs)])
		r.pop()
		r.pop()
	}
	for i, slot := range r.buf {
		if slot != nil {
			t.Fatalf("ring pins pcmd at slot %d after wrap-around", i)
		}
	}
}

// TestHaltDoesNotOverCreditSlots: halt restores the full executor slot
// count while tasks are still in flight; their stale completions must not
// push freeSlots past the configured limit (which would permanently raise
// the worker's concurrency).
func TestHaltDoesNotOverCreditSlots(t *testing.T) {
	b := NewBenchLoop(2)
	defer b.Close()
	b.Apply(&proto.SpawnCommands{Cmds: []*command.Command{
		{ID: 1, Kind: command.Task, Function: fn.FuncSim, Params: fn.SimParams(30 * time.Millisecond)},
		{ID: 2, Kind: command.Task, Function: fn.FuncSim, Params: fn.SimParams(30 * time.Millisecond)},
	}})
	if b.W.freeSlots != 0 {
		t.Fatalf("free slots = %d with 2 tasks in flight", b.W.freeSlots)
	}
	b.Apply(&proto.Halt{Seq: 1})
	if b.W.freeSlots != 0 {
		t.Fatalf("free slots after halt = %d, want 0 (tasks still occupy executors)", b.W.freeSlots)
	}
	for i := 0; i < 2; i++ {
		ev := <-b.W.events
		if ev.kind != evDone {
			t.Fatalf("unexpected event kind %d", ev.kind)
		}
		b.W.handleDone(ev.cmd)
	}
	if b.W.freeSlots != 2 {
		t.Fatalf("free slots after stale completions = %d, want 2", b.W.freeSlots)
	}
}

// TestUnitPoolReuse verifies steady-state instantiations are served from
// the arena pool rather than fresh allocations.
func TestUnitPoolReuse(t *testing.T) {
	b := NewBenchLoop(1)
	defer b.Close()
	b.Apply(destroyTemplate(9, 64))
	for i := uint64(0); i < 10; i++ {
		b.Apply(&proto.InstantiateTemplate{
			Template: 9, Instance: i + 1, Base: ids.CommandID(1 + i*64),
			DoneWatermark: ids.CommandID(1 + i*64),
		})
	}
	if got := b.W.Stats.UnitsReused.Load(); got < 8 {
		t.Fatalf("units reused = %d, want >= 8", got)
	}
	if got := b.W.Stats.InstantiateCmds.Load(); got != 640 {
		t.Fatalf("instantiate cmds = %d, want 640", got)
	}
}
