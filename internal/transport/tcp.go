package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
)

// maxFrame bounds a single framed message. Data-plane payloads in this
// reproduction are partition-sized (megabytes at most); anything larger
// indicates a corrupted stream.
const maxFrame = 1 << 28 // 256 MiB

// TCP is a Transport over real sockets using 4-byte big-endian length
// framing. It serves the standalone daemons (cmd/nimbus-controller,
// cmd/nimbus-worker) and the TCP integration tests.
type TCP struct{}

// Dial implements Transport.
func (TCP) Dial(addr string) (Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return newTCPConn(nc), nil
}

// Listen implements Transport.
func (TCP) Listen(addr string) (Listener, error) {
	nl, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return &tcpListener{nl: nl}, nil
}

type tcpListener struct {
	nl net.Listener
}

func (l *tcpListener) Accept() (Conn, error) {
	nc, err := l.nl.Accept()
	if err != nil {
		if errors.Is(err, net.ErrClosed) {
			return nil, ErrClosed
		}
		return nil, err
	}
	return newTCPConn(nc), nil
}

func (l *tcpListener) Close() error { return l.nl.Close() }
func (l *tcpListener) Addr() string { return l.nl.Addr().String() }

// tcpConn frames messages over a net.Conn. Sends are serialized by a mutex
// and flushed immediately: control-plane messages are small and latency
// sensitive, so batching is left to callers.
//
// tcpConn deliberately does not implement OwnedSender: Send copies into the
// bufio writer and returns without retaining b, so a pooled caller buffer
// is already reusable the moment Send returns — taking ownership would only
// move the recycle from the sender (which has the pool warm) to nobody.
type tcpConn struct {
	nc net.Conn

	sendMu sync.Mutex
	bw     *bufio.Writer

	recvMu sync.Mutex
	br     *bufio.Reader
	hdr    [4]byte
}

func newTCPConn(nc net.Conn) *tcpConn {
	if tc, ok := nc.(*net.TCPConn); ok {
		// Control messages are small; Nagle would add tens of ms.
		_ = tc.SetNoDelay(true)
	}
	return &tcpConn{
		nc: nc,
		bw: bufio.NewWriterSize(nc, 64<<10),
		br: bufio.NewReaderSize(nc, 64<<10),
	}
}

func (c *tcpConn) Send(b []byte) error {
	if len(b) > maxFrame {
		return fmt.Errorf("transport: frame of %d bytes exceeds limit", len(b))
	}
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := c.bw.Write(hdr[:]); err != nil {
		return c.sendErr(err)
	}
	if _, err := c.bw.Write(b); err != nil {
		return c.sendErr(err)
	}
	if err := c.bw.Flush(); err != nil {
		return c.sendErr(err)
	}
	return nil
}

func (c *tcpConn) sendErr(err error) error {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.ErrClosedPipe) {
		return ErrClosed
	}
	return err
}

func (c *tcpConn) Recv() ([]byte, error) {
	c.recvMu.Lock()
	defer c.recvMu.Unlock()
	if _, err := io.ReadFull(c.br, c.hdr[:]); err != nil {
		return nil, c.recvErr(err)
	}
	n := binary.BigEndian.Uint32(c.hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(c.br, buf); err != nil {
		return nil, c.recvErr(err)
	}
	return buf, nil
}

func (c *tcpConn) recvErr(err error) error {
	if errors.Is(err, net.ErrClosed) || errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) {
		return ErrClosed
	}
	return err
}

func (c *tcpConn) Close() error { return c.nc.Close() }
