package transport

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

// TestBackoffDelayCappedAndJittered pins the delay envelope: exponential
// growth from Base, capped at Max, with at most Jitter fraction shaved
// off — never zero, never above the cap.
func TestBackoffDelayCappedAndJittered(t *testing.T) {
	b := Backoff{Base: 4 * time.Millisecond, Max: 32 * time.Millisecond, Factor: 2, Jitter: 0.5}
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 12; attempt++ {
		full := 4 * time.Millisecond << uint(attempt)
		if full > 32*time.Millisecond {
			full = 32 * time.Millisecond
		}
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(attempt, rng)
			if d > full {
				t.Fatalf("attempt %d: delay %v above cap %v", attempt, d, full)
			}
			if d < full/2 {
				t.Fatalf("attempt %d: delay %v below jitter floor %v", attempt, d, full/2)
			}
		}
	}
}

// TestDialRetryWaitsForListener starts the dial before any listener
// exists: the retry loop must connect once the listener appears.
func TestDialRetryWaitsForListener(t *testing.T) {
	m := NewMem(0)
	done := make(chan error, 1)
	go func() {
		conn, err := DialRetry(m, "late", Backoff{Base: time.Millisecond}, 0, 2*time.Second, nil)
		if conn != nil {
			conn.Close()
		}
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	lis, err := m.Listen("late")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	if err := <-done; err != nil {
		t.Fatalf("dial retry: %v", err)
	}
}

// TestDialRetryAttemptLimit fails deterministically after the attempt
// budget, wrapping the last dial error.
func TestDialRetryAttemptLimit(t *testing.T) {
	m := NewMem(0)
	_, err := DialRetry(m, "nowhere", Backoff{Base: time.Microsecond}, 3, 0, nil)
	if err == nil {
		t.Fatal("dial to nowhere succeeded")
	}
	if !strings.Contains(err.Error(), "after 3 attempts") {
		t.Fatalf("error %q does not name the attempt budget", err)
	}
}

// TestDialRetryCancel unblocks promptly when the cancel channel closes.
func TestDialRetryCancel(t *testing.T) {
	m := NewMem(0)
	cancel := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		_, err := DialRetry(m, "nowhere", Backoff{Base: time.Hour}, 0, 0, cancel)
		done <- err
	}()
	close(cancel)
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("canceled dial reported success")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled dial did not return")
	}
}

// TestListenRetryWaitsForRelease mirrors a takeover: the old listener
// holds the address, the new controller's ListenRetry binds as soon as it
// is released.
func TestListenRetryWaitsForRelease(t *testing.T) {
	m := NewMem(0)
	old, err := m.Listen("ctrl")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		old.Close()
	}()
	lis, err := ListenRetry(m, "ctrl", Backoff{Base: time.Millisecond}, 2*time.Second, nil)
	if err != nil {
		t.Fatalf("listen retry: %v", err)
	}
	lis.Close()
}
