package transport

import (
	"fmt"
	"math/rand"
	"time"
)

// This file is the shared dial-retry helper: capped exponential backoff
// with jitter. A refused connection is an expected, transient condition in
// this system — a worker may start before the controller listens, and
// during a controller failover every worker and driver races the standby's
// promotion to the listen endpoint — so the dial paths retry instead of
// failing hard. Jitter desynchronizes the reconnect stampede after an
// outage (every worker notices the dead controller within microseconds of
// each other).

// Backoff computes capped exponential backoff delays with jitter. The
// zero value uses the defaults noted on each field.
type Backoff struct {
	// Base is the first delay (default 2ms).
	Base time.Duration
	// Max caps the delay growth (default 250ms).
	Max time.Duration
	// Factor is the per-attempt growth multiplier (default 2).
	Factor float64
	// Jitter is the fraction of each delay that is randomized: the delay
	// for attempt n is uniform in [d*(1-Jitter), d] where d is the capped
	// exponential value (default 0.5).
	Jitter float64
}

func (b Backoff) base() time.Duration { return defDur(b.Base, 2*time.Millisecond) }
func (b Backoff) max() time.Duration  { return defDur(b.Max, 250*time.Millisecond) }
func (b Backoff) factor() float64 {
	if b.Factor <= 1 {
		return 2
	}
	return b.Factor
}
func (b Backoff) jitter() float64 {
	if b.Jitter < 0 || b.Jitter > 1 {
		return 0.5
	}
	if b.Jitter == 0 {
		return 0.5
	}
	return b.Jitter
}

func defDur(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

// Delay returns the backoff delay for the given zero-based attempt,
// drawing jitter from rng (which may be nil for an unseeded source).
func (b Backoff) Delay(attempt int, rng *rand.Rand) time.Duration {
	d := float64(b.base())
	cap := float64(b.max())
	for i := 0; i < attempt && d < cap; i++ {
		d *= b.factor()
	}
	if d > cap {
		d = cap
	}
	j := b.jitter()
	var u float64
	if rng != nil {
		u = rng.Float64()
	} else {
		u = rand.Float64()
	}
	d *= 1 - j*u
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// DialRetry dials addr through tr, retrying transient failures with
// backoff until it succeeds, attempts dials have failed (attempts <= 0
// means no attempt limit), deadline passes (zero means no deadline), or
// cancel is closed. It returns the last dial error wrapped with the
// attempt count.
func DialRetry(tr Transport, addr string, b Backoff, attempts int, deadline time.Duration, cancel <-chan struct{}) (Conn, error) {
	var (
		last  error
		timer <-chan time.Time
	)
	if deadline > 0 {
		t := time.NewTimer(deadline)
		defer t.Stop()
		timer = t.C
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 0; ; attempt++ {
		conn, err := tr.Dial(addr)
		if err == nil {
			return conn, nil
		}
		last = err
		if attempts > 0 && attempt+1 >= attempts {
			return nil, fmt.Errorf("transport: dial %s failed after %d attempts: %w", addr, attempt+1, last)
		}
		select {
		case <-time.After(b.Delay(attempt, rng)):
		case <-timer:
			return nil, fmt.Errorf("transport: dial %s deadline exceeded: %w", addr, last)
		case <-cancel:
			return nil, fmt.Errorf("transport: dial %s canceled: %w", addr, last)
		}
	}
}

// ListenRetry binds addr through tr, retrying with backoff while the
// address is still held (a deposed controller's listener being torn down,
// or a TCP port in TIME_WAIT). Zero deadline means a single attempt's
// default budget of one second.
func ListenRetry(tr Transport, addr string, b Backoff, deadline time.Duration, cancel <-chan struct{}) (Listener, error) {
	if deadline <= 0 {
		deadline = time.Second
	}
	var last error
	t := time.NewTimer(deadline)
	defer t.Stop()
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for attempt := 0; ; attempt++ {
		lis, err := tr.Listen(addr)
		if err == nil {
			return lis, nil
		}
		last = err
		select {
		case <-time.After(b.Delay(attempt, rng)):
		case <-t.C:
			return nil, fmt.Errorf("transport: listen %s deadline exceeded: %w", addr, last)
		case <-cancel:
			return nil, fmt.Errorf("transport: listen %s canceled: %w", addr, last)
		}
	}
}
