// Package transport abstracts the message transport connecting Nimbus
// nodes: driver ↔ controller, controller ↔ workers, and worker ↔ worker
// (the data plane).
//
// Two implementations are provided:
//
//   - Mem: an in-process transport with configurable one-way latency. This
//     is the cluster substitute used by the scaling experiments — the
//     control-plane code paths (encoding, queueing, dispatch) are identical
//     to a real deployment; only the wire is a channel plus a latency
//     model.
//   - TCP: a length-prefixed framing layer over net.TCPConn for real
//     multi-process deployments (cmd/nimbus-controller, cmd/nimbus-worker).
//
// Both present the same Conn interface: ordered, reliable, message-oriented
// byte frames.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrClosed is returned by operations on a closed connection or listener.
var ErrClosed = errors.New("transport: closed")

// Conn is an ordered, reliable, message-oriented connection.
type Conn interface {
	// Send enqueues one message. It must not retain b after returning.
	Send(b []byte) error
	// Recv blocks until a message arrives or the connection closes.
	Recv() ([]byte, error)
	// Close releases the connection. Pending Recv calls return ErrClosed.
	Close() error
}

// OwnedSender is implemented by Conns that can take ownership of a send
// buffer instead of copying it. Mem implements it: Send's must-not-retain
// contract forces a defensive copy of every frame, which is pure overhead
// when the caller hands over a pooled buffer it will never touch again.
type OwnedSender interface {
	// SendOwned enqueues b, taking ownership. The caller must not use b
	// afterwards, even on error. Delivery hands the same slice to the
	// receiver's Recv.
	SendOwned(b []byte) error
}

// SendOwned sends b over c, transferring buffer ownership when c supports
// it. It reports whether ownership moved: true means the receiver now owns
// b (recycle it there); false means the Conn copied (or flushed) b and the
// caller still owns it — typically to return it to a pool.
func SendOwned(c Conn, b []byte) (owned bool, err error) {
	if os, ok := c.(OwnedSender); ok {
		return true, os.SendOwned(b)
	}
	return false, c.Send(b)
}

// Listener accepts inbound connections at an address.
type Listener interface {
	// Accept blocks until an inbound connection arrives.
	Accept() (Conn, error)
	// Close stops the listener.
	Close() error
	// Addr returns the listen address.
	Addr() string
}

// Transport creates and accepts connections.
type Transport interface {
	// Dial connects to the listener at addr.
	Dial(addr string) (Conn, error)
	// Listen starts accepting connections at addr.
	Listen(addr string) (Listener, error)
}

// Mem is an in-process Transport. Connections deliver messages after the
// configured one-way Latency while preserving per-connection FIFO order.
// The zero value is usable with zero latency; use NewMem to set one.
type Mem struct {
	// Latency is the one-way message delay. The default of zero delivers
	// immediately. 100µs approximates an EC2 placement-group hop (the
	// paper's testbed).
	Latency time.Duration

	mu        sync.Mutex
	listeners map[string]*memListener
}

// NewMem returns an in-process transport with the given one-way latency.
func NewMem(latency time.Duration) *Mem {
	return &Mem{Latency: latency}
}

// Listen implements Transport.
func (m *Mem) Listen(addr string) (Listener, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.listeners == nil {
		m.listeners = make(map[string]*memListener)
	}
	if _, ok := m.listeners[addr]; ok {
		return nil, fmt.Errorf("transport: address %q already in use", addr)
	}
	l := &memListener{
		mem:    m,
		addr:   addr,
		accept: make(chan Conn, 16),
		done:   make(chan struct{}),
	}
	m.listeners[addr] = l
	return l, nil
}

// Dial implements Transport.
func (m *Mem) Dial(addr string) (Conn, error) {
	m.mu.Lock()
	l := m.listeners[addr]
	m.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("transport: no listener at %q", addr)
	}
	a, b := Pipe(m.Latency)
	select {
	case l.accept <- b:
		return a, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

type memListener struct {
	mem    *Mem
	addr   string
	accept chan Conn
	done   chan struct{}
	once   sync.Once
}

func (l *memListener) Accept() (Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, ErrClosed
	}
}

func (l *memListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.mem.mu.Lock()
		delete(l.mem.listeners, l.addr)
		l.mem.mu.Unlock()
	})
	return nil
}

func (l *memListener) Addr() string { return l.addr }

// Pipe returns a connected pair of in-process connections with the given
// one-way latency. It is exported for tests and for wiring single-process
// clusters without going through Listen/Dial.
func Pipe(latency time.Duration) (Conn, Conn) {
	ab := newMemQueue(latency)
	ba := newMemQueue(latency)
	a := &memConn{in: ba, out: ab}
	b := &memConn{in: ab, out: ba}
	return a, b
}

// memQueue is an unbounded FIFO that releases messages after a latency.
// Senders never block (matching the asynchronous push model of the Nimbus
// data plane) and delivery order is preserved because due times are
// monotone in enqueue order.
type memQueue struct {
	latency time.Duration

	mu     sync.Mutex
	cond   *sync.Cond
	queue  []memItem
	closed bool
}

type memItem struct {
	due     time.Time
	payload []byte
}

func newMemQueue(latency time.Duration) *memQueue {
	q := &memQueue{latency: latency}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *memQueue) push(b []byte) error {
	buf := make([]byte, len(b))
	copy(buf, b)
	return q.pushOwned(buf)
}

// pushOwned enqueues b without copying; the queue owns it from here and
// delivery hands the same slice to the reader.
func (q *memQueue) pushOwned(b []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.queue = append(q.queue, memItem{due: time.Now().Add(q.latency), payload: b})
	q.cond.Signal()
	return nil
}

func (q *memQueue) pop() ([]byte, error) {
	q.mu.Lock()
	for {
		if len(q.queue) > 0 {
			item := q.queue[0]
			now := time.Now()
			if wait := item.due.Sub(now); wait > 0 {
				// Sleep outside the lock, then re-check; only this reader
				// pops, so the head cannot change out from under us except
				// by growing.
				q.mu.Unlock()
				time.Sleep(wait)
				q.mu.Lock()
				continue
			}
			q.queue = q.queue[1:]
			q.mu.Unlock()
			return item.payload, nil
		}
		if q.closed {
			q.mu.Unlock()
			return nil, ErrClosed
		}
		q.cond.Wait()
	}
}

func (q *memQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

type memConn struct {
	in  *memQueue
	out *memQueue
}

func (c *memConn) Send(b []byte) error      { return c.out.push(b) }
func (c *memConn) SendOwned(b []byte) error { return c.out.pushOwned(b) }
func (c *memConn) Recv() ([]byte, error)    { return c.in.pop() }
func (c *memConn) Close() error {
	c.in.close()
	c.out.close()
	return nil
}
