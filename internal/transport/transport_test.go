package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testConnPair(t *testing.T, tr Transport, addr string) (Conn, Conn) {
	t.Helper()
	l, err := tr.Listen(addr)
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	var server Conn
	done := make(chan struct{})
	go func() {
		defer close(done)
		server, _ = l.Accept()
	}()
	client, err := tr.Dial(l.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	<-done
	if server == nil {
		t.Fatal("accept failed")
	}
	return client, server
}

func exerciseConn(t *testing.T, a, b Conn) {
	t.Helper()
	const n = 100
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := a.Send([]byte(fmt.Sprintf("msg-%d", i))); err != nil {
				t.Errorf("send %d: %v", i, err)
				return
			}
		}
	}()
	for i := 0; i < n; i++ {
		got, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if want := fmt.Sprintf("msg-%d", i); string(got) != want {
			t.Fatalf("message %d = %q, want %q (ordering broken)", i, got, want)
		}
	}
	wg.Wait()
	a.Close()
	if _, err := b.Recv(); err == nil {
		t.Fatal("recv after close should fail")
	}
}

func TestMemOrderingAndClose(t *testing.T) {
	a, b := testConnPair(t, NewMem(0), "t1")
	exerciseConn(t, a, b)
}

func TestTCPOrderingAndClose(t *testing.T) {
	a, b := testConnPair(t, TCP{}, "127.0.0.1:0")
	exerciseConn(t, a, b)
}

func TestMemLatency(t *testing.T) {
	const lat = 5 * time.Millisecond
	a, b := Pipe(lat)
	defer a.Close()
	defer b.Close()
	start := time.Now()
	if err := a.Send([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < lat {
		t.Fatalf("delivered in %v, want >= %v", d, lat)
	}
}

func TestMemSendDoesNotRetainBuffer(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	buf := []byte{1, 2, 3}
	if err := a.Send(buf); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Fatal("transport aliases the sender's buffer")
	}
}

func TestMemDuplicateListen(t *testing.T) {
	m := NewMem(0)
	if _, err := m.Listen("dup"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Listen("dup"); err == nil {
		t.Fatal("duplicate listen should fail")
	}
}

func TestMemDialUnknown(t *testing.T) {
	m := NewMem(0)
	if _, err := m.Dial("nowhere"); err == nil {
		t.Fatal("dial to unknown address should fail")
	}
}

func TestTCPLargeFrame(t *testing.T) {
	a, b := testConnPair(t, TCP{}, "127.0.0.1:0")
	defer a.Close()
	defer b.Close()
	big := make([]byte, 1<<20)
	for i := range big {
		big[i] = byte(i)
	}
	if err := a.Send(big); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(big) || got[12345] != big[12345] {
		t.Fatal("large frame corrupted")
	}
}

// TestSendOwnedMem verifies the zero-copy hand-off: Mem takes ownership of
// the buffer and delivers the identical slice to the receiver, interleaved
// in order with copied Sends.
func TestSendOwnedMem(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()

	owned := []byte("owned-frame")
	taken, err := SendOwned(a, owned)
	if err != nil {
		t.Fatalf("SendOwned: %v", err)
	}
	if !taken {
		t.Fatal("Mem conn did not take ownership")
	}
	if err := a.Send([]byte("copied-frame")); err != nil {
		t.Fatal(err)
	}

	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if &got[0] != &owned[0] {
		t.Error("owned frame was copied in transit")
	}
	got2, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got2) != "copied-frame" {
		t.Fatalf("second frame = %q; ordering broken", got2)
	}
}

// TestSendOwnedFallback verifies the helper's contract on conns without
// OwnedSender support: the caller keeps ownership (owned=false) and the
// receiver sees an independent copy.
func TestSendOwnedFallback(t *testing.T) {
	a, b := Pipe(0)
	defer a.Close()
	defer b.Close()
	// sendOnlyConn (not embedding) hides memConn's SendOwned method.
	c := sendOnlyConn{a}
	buf := []byte("frame")
	taken, err := SendOwned(c, buf)
	if err != nil {
		t.Fatal(err)
	}
	if taken {
		t.Fatal("non-OwnedSender reported ownership transfer")
	}
	buf[0] = 'X' // caller still owns the buffer; receiver must be unaffected
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "frame" {
		t.Fatalf("got %q, want %q (copy-on-send violated)", got, "frame")
	}
}

// sendOnlyConn narrows a Conn to hide any OwnedSender implementation.
type sendOnlyConn struct{ c Conn }

func (s sendOnlyConn) Send(b []byte) error   { return s.c.Send(b) }
func (s sendOnlyConn) Recv() ([]byte, error) { return s.c.Recv() }
func (s sendOnlyConn) Close() error          { return s.c.Close() }

// BenchmarkMemSend quantifies what SendOwned saves: Send pays a defensive
// copy of every frame to honor the must-not-retain contract; SendOwned
// moves the slice.
func BenchmarkMemSend(b *testing.B) {
	frame := make([]byte, 512)
	run := func(b *testing.B, send func(Conn, []byte) error) {
		a, peer := Pipe(0)
		defer a.Close()
		defer peer.Close()
		go func() {
			for {
				if _, err := peer.Recv(); err != nil {
					return
				}
			}
		}()
		b.SetBytes(int64(len(frame)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := send(a, frame); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("copy", func(b *testing.B) {
		run(b, func(c Conn, buf []byte) error { return c.Send(buf) })
	})
	b.Run("owned", func(b *testing.B) {
		run(b, func(c Conn, buf []byte) error {
			_, err := SendOwned(c, buf)
			return err
		})
	})
}
