package transport

import "sync/atomic"

// Counting wraps a Transport and counts the frames sent over connections
// it dialed. Tests and benchmarks use it to assert frame budgets — e.g.
// that a controller-evaluated loop costs the driver one frame regardless
// of iteration count — without instrumenting the nodes themselves.
type Counting struct {
	Inner Transport
	sends atomic.Uint64
}

// NewCounting wraps inner.
func NewCounting(inner Transport) *Counting { return &Counting{Inner: inner} }

// Sends returns the number of frames sent over dialed connections.
func (c *Counting) Sends() uint64 { return c.sends.Load() }

// Dial implements Transport, wrapping the resulting connection.
func (c *Counting) Dial(addr string) (Conn, error) {
	conn, err := c.Inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return &countingConn{Conn: conn, sends: &c.sends}, nil
}

// Listen implements Transport. Accepted connections are not counted: the
// wrapper meters the dialing side only.
func (c *Counting) Listen(addr string) (Listener, error) { return c.Inner.Listen(addr) }

type countingConn struct {
	Conn
	sends *atomic.Uint64
}

func (c *countingConn) Send(b []byte) error {
	c.sends.Add(1)
	return c.Conn.Send(b)
}

// SendOwned preserves the inner connection's zero-copy hand-off.
func (c *countingConn) SendOwned(b []byte) error {
	c.sends.Add(1)
	if os, ok := c.Conn.(OwnedSender); ok {
		return os.SendOwned(b)
	}
	return c.Conn.Send(b)
}
