package durable

import (
	"os"
	"path/filepath"
	"testing"
)

func exerciseStore(t *testing.T, s Store) {
	t.Helper()
	if err := s.Save(1, 1, 10, 3, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 3 || len(data) != 3 || data[2] != 3 {
		t.Fatalf("load = %v v%d", data, ver)
	}
	// Overwrite within the same checkpoint.
	if err := s.Save(1, 1, 10, 4, []byte{9}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 1, 10)
	if ver != 4 || data[0] != 9 {
		t.Fatalf("overwrite failed: %v v%d", data, ver)
	}
	// Distinct checkpoints are independent.
	if err := s.Save(1, 2, 10, 5, []byte{5}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 1, 10)
	if ver != 4 {
		t.Fatal("checkpoint 1 clobbered by checkpoint 2")
	}
	// Distinct jobs are independent namespaces: the same (ckpt, logical)
	// under another job is a different object.
	if err := s.Save(2, 1, 10, 7, []byte{7, 7}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 1, 10)
	if ver != 4 {
		t.Fatal("job 1 checkpoint clobbered by job 2")
	}
	data, ver, err = s.Load(2, 1, 10)
	if err != nil || ver != 7 || len(data) != 2 {
		t.Fatalf("job 2 load = %v v%d (%v)", data, ver, err)
	}
	if _, _, err := s.Load(1, 9, 10); err == nil {
		t.Fatal("missing checkpoint should fail")
	}
	if _, _, err := s.Load(1, 1, 99); err == nil {
		t.Fatal("missing object should fail")
	}
	if _, _, err := s.Load(9, 1, 10); err == nil {
		t.Fatal("missing job should fail")
	}
}

func TestMem(t *testing.T) {
	s := NewMem()
	exerciseStore(t, s)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestMemCopies(t *testing.T) {
	s := NewMem()
	buf := []byte{1}
	s.Save(1, 1, 1, 1, buf)
	buf[0] = 99
	got, _, _ := s.Load(1, 1, 1)
	if got[0] != 1 {
		t.Fatal("store aliases caller buffer")
	}
	got[0] = 50
	again, _, _ := s.Load(1, 1, 1)
	if again[0] != 1 {
		t.Fatal("load aliases stored buffer")
	}
}

func TestFS(t *testing.T) {
	s := NewFS(t.TempDir())
	exerciseStore(t, s)
}

// TestFSSaveOverExisting pins overwrite semantics: a Save over an existing
// object replaces it atomically (no partial or appended state), and no
// temporary file survives.
func TestFSSaveOverExisting(t *testing.T) {
	s := NewFS(t.TempDir())
	if err := s.Save(1, 1, 5, 1, []byte("a long first payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(1, 1, 5, 2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 || string(data) != "x" {
		t.Fatalf("after overwrite: %q v%d", data, ver)
	}
	if _, err := os.Stat(s.path(1, 1, 5) + ".tmp"); !os.IsNotExist(err) {
		t.Fatalf("temp file left behind: %v", err)
	}
}

// TestFSCorruptHeader covers the failure paths Load must reject instead of
// returning garbage: a file shorter than the version header and a
// zero-byte file (what a non-durable rename could leave after power loss).
func TestFSCorruptHeader(t *testing.T) {
	s := NewFS(t.TempDir())
	if err := s.Save(3, 1, 7, 9, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p := s.path(3, 1, 7)
	for _, tc := range []struct {
		name  string
		bytes []byte
	}{
		{"truncated-header", []byte{0, 0, 1}},
		{"empty-file", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(p, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Load(3, 1, 7); err == nil {
				t.Fatal("corrupt object loaded without error")
			}
		})
	}
	// Exactly 8 bytes is a valid, empty object.
	if err := os.WriteFile(p, []byte{0, 0, 0, 0, 0, 0, 0, 42}, 0o644); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 42 || len(data) != 0 {
		t.Fatalf("header-only object = %v v%d", data, ver)
	}
}

// TestFSMissingDir covers Save/Load against a root that does not exist:
// Save creates the hierarchy; Load of anything unsaved fails cleanly. A
// root that cannot be created surfaces the error instead of panicking.
func TestFSMissingDir(t *testing.T) {
	root := filepath.Join(t.TempDir(), "not", "yet", "created")
	s := NewFS(root)
	if _, _, err := s.Load(1, 1, 1); err == nil {
		t.Fatal("load from missing root should fail")
	}
	if err := s.Save(1, 1, 1, 1, []byte{1}); err != nil {
		t.Fatalf("save should create the hierarchy: %v", err)
	}
	if _, _, err := s.Load(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	// A file where a directory must go makes MkdirAll fail: Save must
	// return the error.
	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(blocked, []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	sb := NewFS(blocked)
	if err := sb.Save(1, 1, 1, 1, []byte{1}); err == nil {
		t.Fatal("save under a file-as-root should fail")
	}
}
