package durable

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"nimbus/internal/ids"
)

func exerciseStore(t *testing.T, s Store) {
	t.Helper()
	if err := s.Save(1, 1, 10, 3, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 3 || len(data) != 3 || data[2] != 3 {
		t.Fatalf("load = %v v%d", data, ver)
	}
	// Overwrite within the same checkpoint.
	if err := s.Save(1, 1, 10, 4, []byte{9}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 1, 10)
	if ver != 4 || data[0] != 9 {
		t.Fatalf("overwrite failed: %v v%d", data, ver)
	}
	// Distinct checkpoints are independent.
	if err := s.Save(1, 2, 10, 5, []byte{5}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 1, 10)
	if ver != 4 {
		t.Fatal("checkpoint 1 clobbered by checkpoint 2")
	}
	// Distinct jobs are independent namespaces: the same (ckpt, logical)
	// under another job is a different object.
	if err := s.Save(2, 1, 10, 7, []byte{7, 7}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 1, 10)
	if ver != 4 {
		t.Fatal("job 1 checkpoint clobbered by job 2")
	}
	data, ver, err = s.Load(2, 1, 10)
	if err != nil || ver != 7 || len(data) != 2 {
		t.Fatalf("job 2 load = %v v%d (%v)", data, ver, err)
	}
	if _, _, err := s.Load(1, 9, 10); err == nil {
		t.Fatal("missing checkpoint should fail")
	}
	if _, _, err := s.Load(1, 1, 99); err == nil {
		t.Fatal("missing object should fail")
	}
	if _, _, err := s.Load(9, 1, 10); err == nil {
		t.Fatal("missing job should fail")
	}
}

func TestMem(t *testing.T) {
	s := NewMem()
	exerciseStore(t, s)
	if s.Len() != 3 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestMemCopies(t *testing.T) {
	s := NewMem()
	buf := []byte{1}
	s.Save(1, 1, 1, 1, buf)
	buf[0] = 99
	got, _, _ := s.Load(1, 1, 1)
	if got[0] != 1 {
		t.Fatal("store aliases caller buffer")
	}
	got[0] = 50
	again, _, _ := s.Load(1, 1, 1)
	if again[0] != 1 {
		t.Fatal("load aliases stored buffer")
	}
}

func TestFS(t *testing.T) {
	s := NewFS(t.TempDir())
	exerciseStore(t, s)
}

// TestFSSaveOverExisting pins overwrite semantics: a Save over an existing
// object replaces it atomically (no partial or appended state), and no
// temporary file survives.
func TestFSSaveOverExisting(t *testing.T) {
	s := NewFS(t.TempDir())
	if err := s.Save(1, 1, 5, 1, []byte("a long first payload")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(1, 1, 5, 2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 2 || string(data) != "x" {
		t.Fatalf("after overwrite: %q v%d", data, ver)
	}
	if tmps, _ := filepath.Glob(s.path(1, 1, 5) + ".tmp-*"); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
}

// TestFSCorruptHeader covers the failure paths Load must reject instead of
// returning garbage: a file shorter than the version header and a
// zero-byte file (what a non-durable rename could leave after power loss).
func TestFSCorruptHeader(t *testing.T) {
	s := NewFS(t.TempDir())
	if err := s.Save(3, 1, 7, 9, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	p := s.path(3, 1, 7)
	for _, tc := range []struct {
		name  string
		bytes []byte
	}{
		{"truncated-header", []byte{0, 0, 1}},
		{"empty-file", nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := os.WriteFile(p, tc.bytes, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, err := s.Load(3, 1, 7); err == nil {
				t.Fatal("corrupt object loaded without error")
			}
		})
	}
	// Exactly 8 bytes is a valid, empty object.
	if err := os.WriteFile(p, []byte{0, 0, 0, 0, 0, 0, 0, 42}, 0o644); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(3, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 42 || len(data) != 0 {
		t.Fatalf("header-only object = %v v%d", data, ver)
	}
}

// TestFSMissingDir covers Save/Load against a root that does not exist:
// Save creates the hierarchy; Load of anything unsaved fails cleanly. A
// root that cannot be created surfaces the error instead of panicking.
func TestFSMissingDir(t *testing.T) {
	root := filepath.Join(t.TempDir(), "not", "yet", "created")
	s := NewFS(root)
	if _, _, err := s.Load(1, 1, 1); err == nil {
		t.Fatal("load from missing root should fail")
	}
	if err := s.Save(1, 1, 1, 1, []byte{1}); err != nil {
		t.Fatalf("save should create the hierarchy: %v", err)
	}
	if _, _, err := s.Load(1, 1, 1); err != nil {
		t.Fatal(err)
	}
	// A file where a directory must go makes MkdirAll fail: Save must
	// return the error.
	blocked := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(blocked, []byte{1}, 0o644); err != nil {
		t.Fatal(err)
	}
	sb := NewFS(blocked)
	if err := sb.Save(1, 1, 1, 1, []byte{1}); err == nil {
		t.Fatal("save under a file-as-root should fail")
	}
}

// payloadFor derives a self-describing payload from a version: the version
// number followed by a run of bytes all equal to the version's low byte.
// Any mix of two such payloads is detectable, so a loader can pin the
// visibility contract: a Load during concurrent Saves returns some single
// complete Save's bytes with its matching version — never a torn hybrid.
func payloadFor(version uint64) []byte {
	buf := make([]byte, 8+64)
	binary.BigEndian.PutUint64(buf, version)
	for i := 8; i < len(buf); i++ {
		buf[i] = byte(version)
	}
	return buf
}

func checkPayload(t *testing.T, data []byte, ver uint64) {
	t.Helper()
	if len(data) != 8+64 {
		t.Fatalf("torn read: %d bytes (version %d)", len(data), ver)
	}
	if got := binary.BigEndian.Uint64(data); got != ver {
		t.Fatalf("version %d paired with payload stamped %d", ver, got)
	}
	if !bytes.Equal(data[8:], payloadFor(ver)[8:]) {
		t.Fatalf("torn read: payload for version %d has mixed bytes", ver)
	}
}

// exerciseConcurrent hammers one object with concurrent Saves while
// loaders continuously read it, then fans writers out across distinct
// objects. It pins the stores' visibility semantics:
//
//  1. A Load concurrent with Saves observes exactly one Save — matching
//     version and payload, full length (no torn or interleaved writes).
//  2. Once all Saves complete, a Load observes one of them (not a stale
//     pre-race value, not a mix).
//  3. Saves to distinct (job, ckpt, logical) keys never interfere.
func exerciseConcurrent(t *testing.T, s Store) {
	t.Helper()
	const (
		writers   = 8
		perWriter = 25
		readers   = 4
	)
	// Seed so loaders never see "not found" once the race starts.
	if err := s.Save(1, 1, 1, 1, payloadFor(1)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(2 + w*perWriter + i)
				if err := s.Save(1, 1, 1, v, payloadFor(v)); err != nil {
					select {
					case errc <- err:
					default:
					}
					return
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				data, ver, err := s.Load(1, 1, 1)
				if err != nil {
					t.Errorf("concurrent load: %v", err)
					return
				}
				checkPayload(t, data, ver)
			}
		}()
	}
	wg.Wait()
	close(stop)
	rg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	data, ver, err := s.Load(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ver < 1 || ver > 1+writers*perWriter {
		t.Fatalf("settled version %d outside any Save", ver)
	}
	checkPayload(t, data, ver)

	// Distinct keys in parallel: every object must land intact.
	var dg sync.WaitGroup
	for w := 0; w < writers; w++ {
		dg.Add(1)
		go func(w int) {
			defer dg.Done()
			for i := 0; i < perWriter; i++ {
				v := uint64(1000 + w*perWriter + i)
				if err := s.Save(2, 1, ids.LogicalID(v), v, payloadFor(v)); err != nil {
					t.Errorf("distinct-key save: %v", err)
					return
				}
			}
		}(w)
	}
	dg.Wait()
	for w := 0; w < writers; w++ {
		for i := 0; i < perWriter; i++ {
			v := uint64(1000 + w*perWriter + i)
			data, ver, err := s.Load(2, 1, ids.LogicalID(v))
			if err != nil {
				t.Fatal(err)
			}
			if ver != v {
				t.Fatalf("object %d has version %d", v, ver)
			}
			checkPayload(t, data, ver)
		}
	}
}

func TestMemConcurrentSaveLoad(t *testing.T) {
	exerciseConcurrent(t, NewMem())
}

// TestFSConcurrentSaveLoad would fail with torn reads if Save derived its
// temp-file name from the object path alone: two racing Saves of the same
// object would interleave writes into one shared temp file and rename the
// hybrid into place.
func TestFSConcurrentSaveLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("filesystem hammer in -short mode")
	}
	exerciseConcurrent(t, NewFS(t.TempDir()))
}

// TestChaosFSTornSaveKeepsPriorObject pins the torn-write contract the
// chaos harness leans on: a Save that dies before its rename (the crash
// leaves only a half-written temp file) must not disturb the committed
// object — Load returns the prior version bit-identical, never the torn
// bytes. Combined with TestFSCorruptHeader this is why a failed durable
// save can only ever fail the checkpoint, not corrupt recovery.
func TestChaosFSTornSaveKeepsPriorObject(t *testing.T) {
	s := NewFS(t.TempDir())
	if err := s.Save(2, 1, 4, 3, []byte("committed-v3")); err != nil {
		t.Fatal(err)
	}
	// A crashed overwrite: half of version 4's bytes in a temp file that
	// never reached its rename.
	p := s.path(2, 1, 4)
	torn := filepath.Base(p) + ".tmp-crashed"
	if err := os.WriteFile(filepath.Join(filepath.Dir(p), torn), []byte{0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 3 || string(data) != "committed-v3" {
		t.Fatalf("after torn overwrite: %q v%d, want %q v3", data, ver, "committed-v3")
	}
}
