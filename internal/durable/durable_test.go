package durable

import (
	"testing"
)

func exerciseStore(t *testing.T, s Store) {
	t.Helper()
	if err := s.Save(1, 10, 3, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	data, ver, err := s.Load(1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 3 || len(data) != 3 || data[2] != 3 {
		t.Fatalf("load = %v v%d", data, ver)
	}
	// Overwrite within the same checkpoint.
	if err := s.Save(1, 10, 4, []byte{9}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 10)
	if ver != 4 || data[0] != 9 {
		t.Fatalf("overwrite failed: %v v%d", data, ver)
	}
	// Distinct checkpoints are independent.
	if err := s.Save(2, 10, 5, []byte{5}); err != nil {
		t.Fatal(err)
	}
	data, ver, _ = s.Load(1, 10)
	if ver != 4 {
		t.Fatal("checkpoint 1 clobbered by checkpoint 2")
	}
	if _, _, err := s.Load(9, 10); err == nil {
		t.Fatal("missing checkpoint should fail")
	}
	if _, _, err := s.Load(1, 99); err == nil {
		t.Fatal("missing object should fail")
	}
}

func TestMem(t *testing.T) {
	s := NewMem()
	exerciseStore(t, s)
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestMemCopies(t *testing.T) {
	s := NewMem()
	buf := []byte{1}
	s.Save(1, 1, 1, buf)
	buf[0] = 99
	got, _, _ := s.Load(1, 1)
	if got[0] != 1 {
		t.Fatal("store aliases caller buffer")
	}
	got[0] = 50
	again, _, _ := s.Load(1, 1)
	if again[0] != 1 {
		t.Fatal("load aliases stored buffer")
	}
}

func TestFS(t *testing.T) {
	s := NewFS(t.TempDir())
	exerciseStore(t, s)
}
