// Package durable provides the durable storage backing checkpoints
// (paper §4.4: on a checkpoint, every worker writes its live data objects
// to durable storage; recovery loads the latest checkpoint back).
//
// Storage is addressed by (job, checkpoint, logical object): checkpoints
// are per-job so recovery of one failed job replays only that job's state
// and teardown of a job cannot disturb another's saved data.
//
// The in-memory implementation plays the role of the paper's shared
// storage service; a filesystem implementation is provided for the
// standalone daemons.
package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"nimbus/internal/ids"
)

// Store is durable object storage addressed by (job, checkpoint, logical
// object).
type Store interface {
	// Save persists one logical object's data under a job's checkpoint.
	Save(job ids.JobID, ckpt uint64, logical ids.LogicalID, version uint64, data []byte) error
	// Load retrieves one logical object from a job's checkpoint.
	Load(job ids.JobID, ckpt uint64, logical ids.LogicalID) (data []byte, version uint64, err error)
}

type memKey struct {
	job     ids.JobID
	ckpt    uint64
	logical ids.LogicalID
}

type memVal struct {
	version uint64
	data    []byte
}

// Mem is a shared in-memory Store, safe for concurrent use by all workers
// of an in-process cluster.
type Mem struct {
	mu sync.RWMutex
	m  map[memKey]memVal
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: make(map[memKey]memVal)}
}

// Save implements Store.
func (s *Mem) Save(job ids.JobID, ckpt uint64, logical ids.LogicalID, version uint64, data []byte) error {
	buf := make([]byte, len(data))
	copy(buf, data)
	s.mu.Lock()
	s.m[memKey{job, ckpt, logical}] = memVal{version: version, data: buf}
	s.mu.Unlock()
	return nil
}

// Load implements Store.
func (s *Mem) Load(job ids.JobID, ckpt uint64, logical ids.LogicalID) ([]byte, uint64, error) {
	s.mu.RLock()
	v, ok := s.m[memKey{job, ckpt, logical}]
	s.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("durable: no object %s in %s checkpoint %d", logical, job, ckpt)
	}
	out := make([]byte, len(v.data))
	copy(out, v.data)
	return out, v.version, nil
}

// Len reports the number of saved objects across all jobs and checkpoints.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FS is a filesystem-backed Store rooted at a directory. Object files are
// named <job>/<ckpt>/<logical> and carry an 8-byte version header.
type FS struct {
	Root string
	// rootSync makes the one-time durability walk above Root (Save may
	// have created Root and missing ancestors itself) happen once per
	// process instead of per object.
	rootSync sync.Once
}

// NewFS returns a filesystem store rooted at dir.
func NewFS(dir string) *FS { return &FS{Root: dir} }

func (s *FS) dir(job ids.JobID, ckpt uint64) string {
	return filepath.Join(s.Root, fmt.Sprintf("%d", uint32(job)), fmt.Sprintf("%d", ckpt))
}

func (s *FS) path(job ids.JobID, ckpt uint64, logical ids.LogicalID) string {
	return filepath.Join(s.dir(job, ckpt), fmt.Sprintf("%d", uint64(logical)))
}

// Save implements Store. It is crash-safe: the object bytes are written to
// a temporary file, fsynced, renamed over the final name, and the
// checkpoint directory is fsynced so the rename itself is durable — a
// checkpoint must not be able to survive a power loss as an empty or
// truncated file.
func (s *FS) Save(job ids.JobID, ckpt uint64, logical ids.LogicalID, version uint64, data []byte) error {
	p := s.path(job, ckpt, logical)
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	buf := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(buf, version)
	copy(buf[8:], data)
	// The temp name must be unique per Save, not derived from p alone:
	// concurrent Saves of the same object (a checkpoint racing a takeover
	// re-checkpoint) would otherwise interleave writes into one shared
	// ".tmp" file and rename a torn hybrid into place.
	f, err := os.CreateTemp(dir, filepath.Base(p)+".tmp-*")
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	tmp := f.Name()
	if err := f.Chmod(0o644); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("durable: sync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("durable: %w", err)
	}
	// The rename is durable only once the checkpoint dir is synced — and
	// the checkpoint and job dirs themselves (possibly just created by
	// MkdirAll) only once *their* parents are synced. Checkpoints are
	// rare; three fsyncs buy "a successful Save survives power loss".
	if err := syncDir(dir); err != nil {
		return err
	}
	if err := syncDir(filepath.Dir(dir)); err != nil {
		return err
	}
	if err := syncDir(s.Root); err != nil {
		return err
	}
	// MkdirAll may have created Root itself and missing ancestors above
	// it; their directory entries need flushing too or the whole store
	// can vanish on power loss. Pre-existing ancestors ("/", "/tmp") are
	// not ours — walk upward best-effort, once per process.
	s.rootSync.Do(func() {
		for d := filepath.Dir(filepath.Clean(s.Root)); ; {
			if syncDir(d) != nil {
				return
			}
			parent := filepath.Dir(d)
			if parent == d {
				return
			}
			d = parent
		}
	})
	return nil
}

// syncDir fsyncs a directory so a preceding rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: sync %s: %w", dir, err)
	}
	return nil
}

// Load implements Store.
func (s *FS) Load(job ids.JobID, ckpt uint64, logical ids.LogicalID) ([]byte, uint64, error) {
	buf, err := os.ReadFile(s.path(job, ckpt, logical))
	if err != nil {
		return nil, 0, fmt.Errorf("durable: %w", err)
	}
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("durable: corrupt object %s in %s checkpoint %d", logical, job, ckpt)
	}
	return buf[8:], binary.BigEndian.Uint64(buf), nil
}
