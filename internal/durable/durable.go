// Package durable provides the durable storage backing checkpoints
// (paper §4.4: on a checkpoint, every worker writes its live data objects
// to durable storage; recovery loads the latest checkpoint back).
//
// The in-memory implementation plays the role of the paper's shared
// storage service; a filesystem implementation is provided for the
// standalone daemons.
package durable

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"nimbus/internal/ids"
)

// Store is durable object storage addressed by (checkpoint, logical
// object).
type Store interface {
	// Save persists one logical object's data under a checkpoint.
	Save(ckpt uint64, logical ids.LogicalID, version uint64, data []byte) error
	// Load retrieves one logical object from a checkpoint.
	Load(ckpt uint64, logical ids.LogicalID) (data []byte, version uint64, err error)
}

type memKey struct {
	ckpt    uint64
	logical ids.LogicalID
}

type memVal struct {
	version uint64
	data    []byte
}

// Mem is a shared in-memory Store, safe for concurrent use by all workers
// of an in-process cluster.
type Mem struct {
	mu sync.RWMutex
	m  map[memKey]memVal
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{m: make(map[memKey]memVal)}
}

// Save implements Store.
func (s *Mem) Save(ckpt uint64, logical ids.LogicalID, version uint64, data []byte) error {
	buf := make([]byte, len(data))
	copy(buf, data)
	s.mu.Lock()
	s.m[memKey{ckpt, logical}] = memVal{version: version, data: buf}
	s.mu.Unlock()
	return nil
}

// Load implements Store.
func (s *Mem) Load(ckpt uint64, logical ids.LogicalID) ([]byte, uint64, error) {
	s.mu.RLock()
	v, ok := s.m[memKey{ckpt, logical}]
	s.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("durable: no object %s in checkpoint %d", logical, ckpt)
	}
	out := make([]byte, len(v.data))
	copy(out, v.data)
	return out, v.version, nil
}

// Len reports the number of saved objects across all checkpoints.
func (s *Mem) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.m)
}

// FS is a filesystem-backed Store rooted at a directory. Object files are
// named <ckpt>/<logical> and carry an 8-byte version header.
type FS struct {
	Root string
}

// NewFS returns a filesystem store rooted at dir.
func NewFS(dir string) *FS { return &FS{Root: dir} }

func (s *FS) path(ckpt uint64, logical ids.LogicalID) string {
	return filepath.Join(s.Root, fmt.Sprintf("%d", ckpt), fmt.Sprintf("%d", uint64(logical)))
}

// Save implements Store.
func (s *FS) Save(ckpt uint64, logical ids.LogicalID, version uint64, data []byte) error {
	p := s.path(ckpt, logical)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	buf := make([]byte, 8+len(data))
	binary.BigEndian.PutUint64(buf, version)
	copy(buf[8:], data)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	if err := os.Rename(tmp, p); err != nil {
		return fmt.Errorf("durable: %w", err)
	}
	return nil
}

// Load implements Store.
func (s *FS) Load(ckpt uint64, logical ids.LogicalID) ([]byte, uint64, error) {
	buf, err := os.ReadFile(s.path(ckpt, logical))
	if err != nil {
		return nil, 0, fmt.Errorf("durable: %w", err)
	}
	if len(buf) < 8 {
		return nil, 0, fmt.Errorf("durable: corrupt object %s in checkpoint %d", logical, ckpt)
	}
	return buf[8:], binary.BigEndian.Uint64(buf), nil
}
