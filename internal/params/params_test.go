package params

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Uint(77).Int(-5).Float(2.5).Floats([]float64{1, 2, 3}).
		Bytes([]byte{9, 8}).Bool(true).Duration(3 * time.Second).
		String("name").Uint64s([]uint64{4, 5})
	d := NewDecoder(e.Blob())
	if d.Uint() != 77 || d.Int() != -5 || d.Float() != 2.5 {
		t.Fatal("scalar mismatch")
	}
	fs := d.Floats()
	if len(fs) != 3 || fs[2] != 3 {
		t.Fatalf("floats = %v", fs)
	}
	if !bytes.Equal(d.Bytes(), []byte{9, 8}) {
		t.Fatal("bytes mismatch")
	}
	if !d.Bool() || d.Duration() != 3*time.Second {
		t.Fatal("bool/duration mismatch")
	}
	if d.String() != "name" {
		t.Fatal("string mismatch")
	}
	us := d.Uint64s()
	if len(us) != 2 || us[1] != 5 {
		t.Fatalf("uint64s = %v", us)
	}
	if d.Err() != nil {
		t.Fatalf("err = %v", d.Err())
	}
	if d.Remaining() {
		t.Fatal("leftover bytes")
	}
}

func TestTypeMismatch(t *testing.T) {
	e := NewEncoder(8)
	e.Uint(1)
	d := NewDecoder(e.Blob())
	if d.Float() != 0 {
		t.Fatal("mismatched decode should zero")
	}
	if d.Err() == nil {
		t.Fatal("expected type error")
	}
}

func TestEmptyBlob(t *testing.T) {
	d := NewDecoder(nil)
	if d.Floats() != nil || d.Err() == nil {
		t.Fatal("empty blob should fail cleanly")
	}
}

func TestQuickFloats(t *testing.T) {
	f := func(vals []float64) bool {
		for i, v := range vals {
			if math.IsNaN(v) {
				vals[i] = 0 // NaN != NaN; exclude from equality check
			}
		}
		e := NewEncoder(8 * len(vals))
		e.Floats(vals)
		got := NewDecoder(e.Blob()).Floats()
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEncoderReset(t *testing.T) {
	e := NewEncoder(16)
	e.Uint(1)
	e.Reset()
	e.Uint(2)
	d := NewDecoder(e.Blob())
	if d.Uint() != 2 || d.Remaining() {
		t.Fatal("reset did not clear")
	}
}
