// Package params implements the binary parameter blobs passed to tasks.
//
// A Nimbus command carries an opaque binary blob of parameters (paper §3.4).
// Execution templates separate a task's fixed structure from its per
// iteration parameters; the parameter blob is the part that changes between
// instantiations (for example the current model coefficients fed to a
// Gradient task). This package provides a small, allocation-conscious
// encoder/decoder for the value kinds the applications in this repository
// need: signed/unsigned integers, float64s, float64 slices, byte slices,
// bools and durations.
package params

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrCorrupt is returned when a blob cannot be decoded.
var ErrCorrupt = errors.New("params: corrupt parameter blob")

// Blob is an encoded parameter list. A nil Blob decodes as an empty list.
type Blob []byte

// kind tags for encoded values.
const (
	kindUint    = 0x01
	kindInt     = 0x02
	kindFloat   = 0x03
	kindFloats  = 0x04
	kindBytes   = 0x05
	kindBool    = 0x06
	kindDur     = 0x07
	kindString  = 0x08
	kindUint64s = 0x09
)

// Encoder builds a Blob. The zero value is ready to use.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an Encoder with capacity preallocated for n bytes.
func NewEncoder(n int) *Encoder {
	return &Encoder{buf: make([]byte, 0, n)}
}

// Reset discards any encoded values, retaining the buffer.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Blob returns the encoded blob. The returned slice aliases the encoder's
// buffer; callers that reuse the encoder must copy it first.
func (e *Encoder) Blob() Blob { return Blob(e.buf) }

// Uint appends an unsigned integer.
func (e *Encoder) Uint(v uint64) *Encoder {
	e.buf = append(e.buf, kindUint)
	e.buf = binary.AppendUvarint(e.buf, v)
	return e
}

// Int appends a signed integer.
func (e *Encoder) Int(v int64) *Encoder {
	e.buf = append(e.buf, kindInt)
	e.buf = binary.AppendVarint(e.buf, v)
	return e
}

// Float appends a float64.
func (e *Encoder) Float(v float64) *Encoder {
	e.buf = append(e.buf, kindFloat)
	e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(v))
	return e
}

// Floats appends a float64 slice.
func (e *Encoder) Floats(v []float64) *Encoder {
	e.buf = append(e.buf, kindFloats)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, f := range v {
		e.buf = binary.BigEndian.AppendUint64(e.buf, math.Float64bits(f))
	}
	return e
}

// Uint64s appends a uint64 slice.
func (e *Encoder) Uint64s(v []uint64) *Encoder {
	e.buf = append(e.buf, kindUint64s)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	for _, u := range v {
		e.buf = binary.AppendUvarint(e.buf, u)
	}
	return e
}

// Bytes appends a byte slice.
func (e *Encoder) Bytes(v []byte) *Encoder {
	e.buf = append(e.buf, kindBytes)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
	return e
}

// String appends a string.
func (e *Encoder) String(v string) *Encoder {
	e.buf = append(e.buf, kindString)
	e.buf = binary.AppendUvarint(e.buf, uint64(len(v)))
	e.buf = append(e.buf, v...)
	return e
}

// Bool appends a bool.
func (e *Encoder) Bool(v bool) *Encoder {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, kindBool, b)
	return e
}

// Duration appends a time.Duration. Scaling experiments use durations to
// describe simulated task compute times.
func (e *Encoder) Duration(v time.Duration) *Encoder {
	e.buf = append(e.buf, kindDur)
	e.buf = binary.AppendVarint(e.buf, int64(v))
	return e
}

// Decoder reads values back out of a Blob in the order they were encoded.
type Decoder struct {
	buf Blob
	off int
	err error
}

// NewDecoder returns a Decoder over blob.
func NewDecoder(blob Blob) *Decoder { return &Decoder{buf: blob} }

// Err returns the first decoding error encountered, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining reports whether undecoded bytes remain.
func (d *Decoder) Remaining() bool { return d.err == nil && d.off < len(d.buf) }

func (d *Decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: decoding %s at offset %d", ErrCorrupt, what, d.off)
	}
}

func (d *Decoder) expect(kind byte, what string) bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) || d.buf[d.off] != kind {
		d.fail(what)
		return false
	}
	d.off++
	return true
}

func (d *Decoder) uvarint(what string) uint64 {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

func (d *Decoder) varint(what string) int64 {
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail(what)
		return 0
	}
	d.off += n
	return v
}

// Uint decodes an unsigned integer.
func (d *Decoder) Uint() uint64 {
	if !d.expect(kindUint, "uint") {
		return 0
	}
	return d.uvarint("uint")
}

// Int decodes a signed integer.
func (d *Decoder) Int() int64 {
	if !d.expect(kindInt, "int") {
		return 0
	}
	return d.varint("int")
}

// Float decodes a float64.
func (d *Decoder) Float() float64 {
	if !d.expect(kindFloat, "float") {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("float")
		return 0
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v
}

// DecodeFloats decodes a raw buffer written via the Floats encoding;
// empty input decodes to nil. It is the one definition of the scalar
// framing both the driver's GetFloats and the controller's loop-predicate
// evaluation read, so the two can never disagree on the same bytes.
func DecodeFloats(raw []byte) ([]float64, error) {
	if len(raw) == 0 {
		return nil, nil
	}
	dec := NewDecoder(Blob(raw))
	vals := dec.Floats()
	return vals, dec.Err()
}

// Floats decodes a float64 slice.
func (d *Decoder) Floats() []float64 {
	if !d.expect(kindFloats, "floats") {
		return nil
	}
	n := d.uvarint("floats length")
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n*8 {
		d.fail("floats body")
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(d.buf[d.off:]))
		d.off += 8
	}
	return out
}

// Uint64s decodes a uint64 slice.
func (d *Decoder) Uint64s() []uint64 {
	if !d.expect(kindUint64s, "uint64s") {
		return nil
	}
	n := d.uvarint("uint64s length")
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) { // each element is at least one byte
		d.fail("uint64s body")
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.uvarint("uint64s element")
		if d.err != nil {
			return nil
		}
	}
	return out
}

// Bytes decodes a byte slice. The result aliases the blob.
func (d *Decoder) Bytes() []byte {
	if !d.expect(kindBytes, "bytes") {
		return nil
	}
	n := d.uvarint("bytes length")
	if d.err != nil {
		return nil
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("bytes body")
		return nil
	}
	out := d.buf[d.off : d.off+int(n)]
	d.off += int(n)
	return out
}

// String decodes a string.
func (d *Decoder) String() string {
	if !d.expect(kindString, "string") {
		return ""
	}
	n := d.uvarint("string length")
	if d.err != nil {
		return ""
	}
	if uint64(len(d.buf)-d.off) < n {
		d.fail("string body")
		return ""
	}
	out := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return out
}

// Bool decodes a bool.
func (d *Decoder) Bool() bool {
	if !d.expect(kindBool, "bool") {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("bool")
		return false
	}
	v := d.buf[d.off] != 0
	d.off++
	return v
}

// Duration decodes a time.Duration.
func (d *Decoder) Duration() time.Duration {
	if !d.expect(kindDur, "duration") {
		return 0
	}
	return time.Duration(d.varint("duration"))
}
