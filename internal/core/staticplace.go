package core

import (
	"nimbus/internal/ids"
)

// StaticPlacement is a self-contained Placement for standalone runtimes
// (the dataflow baseline and unit tests): round-robin partition
// assignment over a fixed worker set with its own logical-ID space.
type StaticPlacement struct {
	workers []ids.WorkerID
	logIDs  ids.LogicalIDs
	vars    map[ids.VariableID]*staticVar
}

type staticVar struct {
	partitions int
	logicals   []ids.LogicalID
	assign     []ids.WorkerID
}

// NewStaticPlacement returns a placement over workers 1..n.
func NewStaticPlacement(n int) *StaticPlacement {
	p := &StaticPlacement{vars: make(map[ids.VariableID]*staticVar)}
	for i := 1; i <= n; i++ {
		p.workers = append(p.workers, ids.WorkerID(i))
	}
	return p
}

// Define declares a variable with the given partition count and returns
// its ID unchanged (for chaining).
func (p *StaticPlacement) Define(v ids.VariableID, partitions int) ids.VariableID {
	sv := &staticVar{
		partitions: partitions,
		logicals:   make([]ids.LogicalID, partitions),
		assign:     make([]ids.WorkerID, partitions),
	}
	for i := 0; i < partitions; i++ {
		sv.logicals[i] = p.logIDs.Next()
		sv.assign[i] = p.workers[i%len(p.workers)]
	}
	p.vars[v] = sv
	return v
}

// Reassign moves one partition to another worker (for edit/migration
// tests and benchmarks).
func (p *StaticPlacement) Reassign(v ids.VariableID, partition int, w ids.WorkerID) {
	if sv, ok := p.vars[v]; ok && partition >= 0 && partition < len(sv.assign) {
		sv.assign[partition] = w
	}
}

// WorkerOf implements Placement.
func (p *StaticPlacement) WorkerOf(v ids.VariableID, partition int) ids.WorkerID {
	sv, ok := p.vars[v]
	if !ok || partition < 0 || partition >= len(sv.assign) {
		return ids.NoWorker
	}
	return sv.assign[partition]
}

// Logical implements Placement.
func (p *StaticPlacement) Logical(v ids.VariableID, partition int) ids.LogicalID {
	sv, ok := p.vars[v]
	if !ok || partition < 0 || partition >= len(sv.logicals) {
		return ids.NoLogical
	}
	return sv.logicals[partition]
}

// Partitions implements Placement.
func (p *StaticPlacement) Partitions(v ids.VariableID) int {
	if sv, ok := p.vars[v]; ok {
		return sv.partitions
	}
	return 0
}
