package core

import (
	"sort"

	"nimbus/internal/command"
	"nimbus/internal/ids"
)

// DiffResult is the outcome of comparing a rebuilt assignment against the
// one currently installed: per-worker edits for workers that keep their
// template, full installs for workers new to the assignment, and the list
// of workers that lose all their entries.
type DiffResult struct {
	// Edits maps workers to the in-place modifications of their installed
	// template (paper §4.3).
	Edits map[ids.WorkerID]*command.Edit
	// NewWorkers had no entries before and need a full install.
	NewWorkers []ids.WorkerID
	// EmptiedWorkers lost every entry; their cached template is stale but
	// harmless (it is simply never instantiated again until re-edited).
	EmptiedWorkers []ids.WorkerID
	// Changed counts entries added plus removed — the size of the
	// scheduling change, which the control-plane cost scales with.
	Changed int
}

// Diff computes the minimal per-worker edits transforming prev into next.
// next must have been produced by Template.Rebuild with prev as the remap
// reference, so unchanged entries share indexes.
func Diff(prev, next *Assignment) *DiffResult {
	res := &DiffResult{Edits: make(map[ids.WorkerID]*command.Edit)}
	max := len(next.Entries)
	if len(prev.Entries) > max {
		max = len(prev.Entries)
	}
	editOf := func(w ids.WorkerID) *command.Edit {
		e, ok := res.Edits[w]
		if !ok {
			e = &command.Edit{}
			res.Edits[w] = e
		}
		return e
	}
	for i := 0; i < max; i++ {
		var oldE, newE *command.TemplateEntry
		var oldW, newW ids.WorkerID
		if i < len(prev.Entries) && prev.Entries[i].Kind != 0 {
			oldE = &prev.Entries[i]
			oldW = prev.WorkerOf[i]
		}
		if i < len(next.Entries) && next.Entries[i].Kind != 0 {
			newE = &next.Entries[i]
			newW = next.WorkerOf[i]
		}
		switch {
		case oldE == nil && newE == nil:
		case oldE == nil:
			editOf(newW).Add = append(editOf(newW).Add, *newE)
			res.Changed++
		case newE == nil:
			editOf(oldW).Remove = append(editOf(oldW).Remove, int32(i))
			res.Changed++
		case oldW == newW && entriesEqual(oldE, newE):
			// Unchanged.
		default:
			editOf(oldW).Remove = append(editOf(oldW).Remove, int32(i))
			editOf(newW).Add = append(editOf(newW).Add, *newE)
			res.Changed += 2
		}
	}
	// Workers appearing in next but absent from prev need installs, not
	// edits (they have no cached template to modify).
	prevWorkers := make(map[ids.WorkerID]bool, len(prev.PerWorker))
	for w, idxs := range prev.PerWorker {
		if len(idxs) > 0 {
			prevWorkers[w] = true
		}
	}
	for w, idxs := range next.PerWorker {
		if len(idxs) > 0 && !prevWorkers[w] {
			res.NewWorkers = append(res.NewWorkers, w)
			delete(res.Edits, w)
		}
	}
	sort.Slice(res.NewWorkers, func(i, j int) bool { return res.NewWorkers[i] < res.NewWorkers[j] })
	for w := range prevWorkers {
		if len(next.PerWorker[w]) == 0 {
			res.EmptiedWorkers = append(res.EmptiedWorkers, w)
		}
	}
	sort.Slice(res.EmptiedWorkers, func(i, j int) bool { return res.EmptiedWorkers[i] < res.EmptiedWorkers[j] })
	return res
}

// entriesEqual reports whether two entries are semantically identical.
func entriesEqual(a, b *command.TemplateEntry) bool {
	if a.Kind != b.Kind || a.Function != b.Function || a.Logical != b.Logical ||
		a.ParamSlot != b.ParamSlot || a.DstWorker != b.DstWorker || a.DstIdx != b.DstIdx {
		return false
	}
	if !objectsEqual(a.Reads, b.Reads) || !objectsEqual(a.Writes, b.Writes) {
		return false
	}
	if len(a.BeforeIdx) != len(b.BeforeIdx) {
		return false
	}
	// Before sets are order-insensitive; generation order is deterministic
	// but remapping can reorder indexes.
	if len(a.BeforeIdx) > 0 {
		as := append([]int32(nil), a.BeforeIdx...)
		bs := append([]int32(nil), b.BeforeIdx...)
		sort.Slice(as, func(i, j int) bool { return as[i] < as[j] })
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	if len(a.Fixed) != len(b.Fixed) {
		return false
	}
	for i := range a.Fixed {
		if a.Fixed[i] != b.Fixed[i] {
			return false
		}
	}
	return true
}

func objectsEqual(a, b []ids.ObjectID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ApplyEdit applies one worker's edit to the assignment's controller-half
// state (mirroring what the worker does to its installed template), so the
// controller's view stays consistent when it chooses the edit path instead
// of swapping whole assignments.
func (a *Assignment) ApplyEdit(w ids.WorkerID, e *command.Edit, prov map[int32]Provenance) {
	for _, idx := range e.Remove {
		if int(idx) < len(a.Entries) {
			if a.Entries[idx].Kind != 0 {
				a.live--
			}
			a.Entries[idx] = command.TemplateEntry{}
		}
	}
	for i := range e.Add {
		ne := e.Add[i]
		for int(ne.Index) >= len(a.Entries) {
			a.Entries = append(a.Entries, command.TemplateEntry{})
			a.WorkerOf = append(a.WorkerOf, ids.NoWorker)
			a.Prov = append(a.Prov, Provenance{})
		}
		if a.Entries[ne.Index].Kind == 0 && ne.Kind != 0 {
			a.live++
		} else if a.Entries[ne.Index].Kind != 0 && ne.Kind == 0 {
			a.live--
		}
		a.Entries[ne.Index] = ne
		a.WorkerOf[ne.Index] = w
		if p, ok := prov[ne.Index]; ok {
			a.Prov[ne.Index] = p
		}
	}
	// Rebuild the per-worker index lists.
	perWorker := make(map[ids.WorkerID][]int32)
	for i := range a.Entries {
		if a.Entries[i].Kind != 0 {
			perWorker[a.WorkerOf[i]] = append(perWorker[a.WorkerOf[i]], int32(i))
		}
	}
	a.PerWorker = perWorker
}
