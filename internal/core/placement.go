// Package core implements execution templates, the paper's primary
// contribution: parameterizable cached task graphs that let a centralized
// controller schedule hundreds of thousands of tasks per second while
// retaining per-task scheduling flexibility.
//
// A template captures the fixed structure of one basic block of the driver
// program — the tasks, their functions, data accesses, relative order and
// copy routing — and factors out what changes between executions: command
// identifiers (one base ID per instantiation) and task parameters (a slot
// array). The package provides:
//
//   - Builder: turns a recorded stage sequence into a controller template
//     and its per-worker worker templates (paper §4.1);
//   - Template/Assignment: the controller-half state, including cached
//     preconditions and instantiation effects;
//   - Validate/BuildPatch/PatchCache: dynamic control-flow support
//     (paper §2.4, §4.2);
//   - Rebalance: rebuilds an assignment under a new placement and emits
//     minimal edits against the old one (paper §2.3, §4.3).
package core

import (
	"fmt"

	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// Placement resolves the controller's data-placement decisions: which
// worker owns each partition of each variable, and the logical identity of
// every (variable, partition) pair. The controller implements it; the
// template machinery consults it so that recording, rebuilding and live
// scheduling all share one notion of placement.
type Placement interface {
	// WorkerOf returns the worker owning the given partition.
	WorkerOf(v ids.VariableID, partition int) ids.WorkerID
	// Logical returns the logical object for the given partition.
	Logical(v ids.VariableID, partition int) ids.LogicalID
	// Partitions returns the variable's partition count.
	Partitions(v ids.VariableID) int
}

// Access is one resolved data access of a task.
type Access struct {
	Logical ids.LogicalID
	Write   bool
}

// TaskAccesses resolves the reads and writes of task t of the given stage
// under the placement's partitioning. The returned slices are freshly
// allocated.
func TaskAccesses(spec *proto.SubmitStage, place Placement, t int) (reads, writes []ids.LogicalID, err error) {
	for i := range spec.Refs {
		ref := &spec.Refs[i]
		parts, err := refPartitions(ref, place, spec.Tasks, t)
		if err != nil {
			return nil, nil, fmt.Errorf("stage %s ref %d: %w", spec.Stage, i, err)
		}
		for _, p := range parts {
			l := place.Logical(ref.Var, p)
			if ref.Write {
				writes = append(writes, l)
			} else {
				reads = append(reads, l)
			}
		}
	}
	return reads, writes, nil
}

// refPartitions expands one variable reference into the partitions task t
// accesses.
func refPartitions(ref *proto.VarRef, place Placement, tasks, t int) ([]int, error) {
	total := place.Partitions(ref.Var)
	switch ref.Pattern {
	case proto.OnePerTask:
		if total != tasks {
			return nil, fmt.Errorf("one-per-task access of %s: %d partitions != %d tasks",
				ref.Var, total, tasks)
		}
		return []int{t}, nil
	case proto.Shared:
		return []int{0}, nil
	case proto.Grouped:
		if tasks <= 0 || total%tasks != 0 {
			return nil, fmt.Errorf("grouped access of %s: %d partitions not divisible by %d tasks",
				ref.Var, total, tasks)
		}
		k := total / tasks
		parts := make([]int, k)
		for j := range parts {
			parts[j] = t*k + j
		}
		return parts, nil
	case proto.FixedPartition:
		if ref.Fixed < 0 || ref.Fixed >= total {
			return nil, fmt.Errorf("fixed access of %s: partition %d out of %d",
				ref.Var, ref.Fixed, total)
		}
		return []int{ref.Fixed}, nil
	case proto.Stencil:
		if total != tasks {
			return nil, fmt.Errorf("stencil access of %s: %d partitions != %d tasks",
				ref.Var, total, tasks)
		}
		r := ref.Fixed
		if r <= 0 {
			r = 1
		}
		lo, hi := t-r, t+r
		if lo < 0 {
			lo = 0
		}
		if hi > total-1 {
			hi = total - 1
		}
		parts := make([]int, 0, hi-lo+1)
		for p := lo; p <= hi; p++ {
			parts = append(parts, p)
		}
		return parts, nil
	default:
		return nil, fmt.Errorf("unknown access pattern %d", ref.Pattern)
	}
}

// AnchorWorker returns the worker task t runs on: the owner of the task's
// first written partition (write-local placement). Stages with no writes
// anchor on their first read.
func AnchorWorker(spec *proto.SubmitStage, place Placement, t int) (ids.WorkerID, error) {
	anchor := func(ref *proto.VarRef) (ids.WorkerID, error) {
		parts, err := refPartitions(ref, place, spec.Tasks, t)
		if err != nil {
			return ids.NoWorker, err
		}
		return place.WorkerOf(ref.Var, parts[0]), nil
	}
	for i := range spec.Refs {
		if spec.Refs[i].Write {
			return anchor(&spec.Refs[i])
		}
	}
	for i := range spec.Refs {
		return anchor(&spec.Refs[i])
	}
	return ids.NoWorker, fmt.Errorf("stage %s has no variable references", spec.Stage)
}
