package core

import (
	"fmt"
	"sort"

	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// Template is a controller template: the cached result of scheduling one
// basic block (paper §2.2). It owns the recorded stage sequence (so
// assignments can be rebuilt under new placements) and a cache of
// assignments — per-placement worker-template sets. Workers cache multiple
// worker templates, so a controller can move between several schedules by
// invoking different assignments (paper §2.3).
type Template struct {
	ID   ids.TemplateID
	Name string
	// Stages is the recorded basic block, in submission order.
	Stages []*proto.SubmitStage
	// TaskCount is the number of task commands (not copies) per instance.
	TaskCount int
	// Assignments caches every worker-template set generated so far.
	Assignments []*Assignment
	// Active is the assignment new instantiations use.
	Active *Assignment
}

// Assignment is one worker-template set for a Template: the controller
// half (paper §4.1) holding the full entry array, the per-worker slices,
// the preconditions to validate and the cached instantiation effects.
type Assignment struct {
	ID ids.TemplateID
	// Entries is the global command array, indexed by entry Index. Edits
	// leave tombstones (Kind 0) at removed indexes.
	Entries  []command.TemplateEntry
	WorkerOf []ids.WorkerID
	Prov     []Provenance
	// PerWorker lists each worker's live entry indexes.
	PerWorker map[ids.WorkerID][]int32
	Preconds  []Precond
	Effects   Effects
	// Slots is the number of parameter slots (one per parameterized
	// stage).
	Slots int
	// Installed tracks which workers hold this worker template.
	Installed map[ids.WorkerID]bool
	// live counts non-tombstone entries, maintained incrementally by the
	// build, remap and edit paths so Size is O(1) instead of an
	// O(entries) tombstone scan.
	live int
}

// Size returns the number of live entries.
func (a *Assignment) Size() int { return a.live }

// recountLive recomputes the live-entry count from scratch (used by bulk
// rewrites of the entry array).
func (a *Assignment) recountLive() {
	n := 0
	for i := range a.Entries {
		if a.Entries[i].Kind != 0 {
			n++
		}
	}
	a.live = n
}

// Workers returns the sorted set of workers with at least one entry.
func (a *Assignment) Workers() []ids.WorkerID {
	out := make([]ids.WorkerID, 0, len(a.PerWorker))
	for w, idxs := range a.PerWorker {
		if len(idxs) > 0 {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// InstallMessage builds the InstallTemplate message for one worker.
func (a *Assignment) InstallMessage(w ids.WorkerID, name string) *proto.InstallTemplate {
	idxs := a.PerWorker[w]
	entries := make([]command.TemplateEntry, 0, len(idxs))
	for _, i := range idxs {
		if a.Entries[i].Kind != 0 {
			entries = append(entries, a.Entries[i])
		}
	}
	return &proto.InstallTemplate{Template: a.ID, Name: name, Entries: entries}
}

// Violation reports one failed precondition.
type Violation struct {
	Precond
	// Holder is a worker holding the latest version, or NoWorker if the
	// object has no live replica (requires recovery, not patching).
	Holder ids.WorkerID
}

// Validate checks every precondition against the directory and returns the
// violations (paper §4.2). A nil result means the assignment can be
// instantiated as-is.
func (a *Assignment) Validate(dir *flow.Directory) []Violation {
	var out []Violation
	for _, pc := range a.Preconds {
		if dir.IsLatest(pc.Logical, pc.Worker) {
			continue
		}
		out = append(out, Violation{Precond: pc, Holder: dir.LatestHolder(pc.Logical)})
	}
	return out
}

// ApplyEffects advances the controller's directory and ledgers past one
// instance of the assignment with the given command-ID base. This replaces
// the per-task bookkeeping a non-templated controller would do — it is the
// cached "results of dependency analysis and data lineage" of paper §2.2.
func (a *Assignment) ApplyEffects(base ids.CommandID, dir *flow.Directory, ledgers map[ids.WorkerID]*flow.Ledger) {
	for i := range a.Effects.Objects {
		oe := &a.Effects.Objects[i]
		dir.ApplyBlockEffect(oe.Logical, oe.Bumps, oe.FinalHolders)
	}
	var readers []ids.CommandID
	for w, les := range a.Effects.Ledger {
		led := ledgers[w]
		if led == nil {
			continue
		}
		for i := range les {
			le := &les[i]
			readers = readers[:0]
			for _, r := range le.Readers {
				readers = append(readers, base+ids.CommandID(r))
			}
			if le.LastWriterIdx >= 0 {
				led.SetState(le.Object, base+ids.CommandID(le.LastWriterIdx), readers)
			} else if len(readers) > 0 {
				// Read-only object: keep the pre-instance writer, replace
				// the reader set (older readers are ordered before the
				// instance by the worker's block barrier).
				led.SetState(le.Object, currentWriter(led, le.Object), readers)
			}
		}
	}
}

// currentWriter reads the ledger's existing last writer for o.
func currentWriter(led *flow.Ledger, o ids.ObjectID) ids.CommandID {
	// flow.Ledger does not expose its state directly; SetState with the
	// same writer is achieved via a read-modify helper.
	return led.LastWriter(o)
}

// MaxIndex returns the highest entry index in use plus one (the ID-block
// size an instantiation must reserve).
func (a *Assignment) MaxIndex() int {
	return len(a.Entries)
}

// NextTemplateOp describes what the controller must do to run an
// assignment on a worker: nothing (installed), or a full install.
type NextTemplateOp uint8

// Rebuild constructs a fresh assignment for the template's stages under
// the given placement, drawing object instances from inst (the live
// directory on-loop, or a snapshot build view off-loop). The new
// assignment's entry indexes are remapped by provenance against prev (if
// non-nil) so unchanged entries keep their indexes; see Diff.
func (t *Template) Rebuild(id ids.TemplateID, inst Instances, place Placement, prev *Assignment) (*Assignment, error) {
	return t.RebuildPar(id, inst, place, prev, 0)
}

// RebuildPar is Rebuild with an explicit goroutine-pool bound (0 =
// GOMAXPROCS, 1 = serial); the controller's build executor uses it to
// split cores between concurrent template builds.
func (t *Template) RebuildPar(id ids.TemplateID, inst Instances, place Placement, prev *Assignment, par int) (*Assignment, error) {
	a, err := BuildAssignment(id, inst, place, t.Stages, par)
	if err != nil {
		return nil, fmt.Errorf("core: rebuilding %q: %w", t.Name, err)
	}
	if prev != nil {
		remapByProvenance(a, prev)
	}
	return a, nil
}

// remapByProvenance renumbers a's entries so that entries with the same
// provenance as one of prev's keep prev's index. Genuinely new entries get
// fresh indexes past prev's maximum. BeforeIdx and DstIdx references are
// rewritten accordingly.
func remapByProvenance(a, prev *Assignment) {
	prevByProv := make(map[Provenance]int32, len(prev.Prov))
	for i := range prev.Prov {
		if prev.Entries[i].Kind != 0 {
			prevByProv[prev.Prov[i]] = int32(i)
		}
	}
	next := int32(len(prev.Entries))
	mapping := make([]int32, len(a.Entries)) // old builder index -> new index
	for i := range a.Entries {
		if pi, ok := prevByProv[a.Prov[i]]; ok {
			mapping[i] = pi
		} else {
			mapping[i] = next
			next++
		}
	}

	size := int(next)
	entries := make([]command.TemplateEntry, size)
	workerOf := make([]ids.WorkerID, size)
	prov := make([]Provenance, size)
	for i := range a.Entries {
		ni := mapping[i]
		e := a.Entries[i]
		e.Index = ni
		for j, b := range e.BeforeIdx {
			e.BeforeIdx[j] = mapping[b]
		}
		if e.Kind == command.CopySend {
			e.DstIdx = mapping[e.DstIdx]
		}
		entries[ni] = e
		workerOf[ni] = a.WorkerOf[i]
		prov[ni] = a.Prov[i]
	}
	a.Entries = entries
	a.WorkerOf = workerOf
	a.Prov = prov

	perWorker := make(map[ids.WorkerID][]int32)
	for i := range a.Entries {
		if a.Entries[i].Kind != 0 {
			perWorker[workerOf[i]] = append(perWorker[workerOf[i]], int32(i))
		}
	}
	a.PerWorker = perWorker

	// Ledger effect indexes must be remapped too; they were produced by
	// the builder in pre-remap numbering.
	for w, les := range a.Effects.Ledger {
		for i := range les {
			if les[i].LastWriterIdx >= 0 {
				les[i].LastWriterIdx = mapping[les[i].LastWriterIdx]
			}
			for j, r := range les[i].Readers {
				les[i].Readers[j] = mapping[r]
			}
		}
		a.Effects.Ledger[w] = les
	}
	a.recountLive()
}
