package core

import (
	"fmt"

	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
)

// Patch is a small block of copy commands that moves data so a worker
// template's preconditions hold (paper §2.4). Patches are cached on
// workers and keyed by control-flow transition, because dynamic control
// flow is typically narrow: the same basic-block boundary recurs, needing
// the same data movement (paper §4.2, optimization 2).
type Patch struct {
	ID ids.PatchID
	// Entries use patch-local indexes; instantiation reserves a fresh
	// command-ID block like templates do. Patch commands carry no before
	// edges: workers treat patch units as local barriers, which orders
	// them against surrounding instances.
	Entries   []command.TemplateEntry
	PerWorker map[ids.WorkerID][]int32
	Fixes     []PatchFix
	Installed map[ids.WorkerID]bool
}

// PatchFix records one data movement the patch performs.
type PatchFix struct {
	Logical ids.LogicalID
	Src     ids.WorkerID
	Dst     ids.WorkerID
	SrcObj  ids.ObjectID
	DstObj  ids.ObjectID
}

// BuildPatch constructs a patch fixing the given violations by copying
// each violated logical object from a latest holder to the requiring
// worker. It fails if any object has no live holder (that is a recovery
// situation, not a patching one).
func BuildPatch(id ids.PatchID, dir *flow.Directory, viols []Violation) (*Patch, error) {
	p := &Patch{
		ID:        id,
		PerWorker: make(map[ids.WorkerID][]int32),
		Installed: make(map[ids.WorkerID]bool),
	}
	for _, v := range viols {
		if v.Holder == ids.NoWorker {
			return nil, fmt.Errorf("core: cannot patch %s at %s: no live replica",
				v.Logical, v.Worker)
		}
		srcObj := dir.Instance(v.Logical, v.Holder)
		dstObj := dir.Instance(v.Logical, v.Worker)
		sendIdx := int32(len(p.Entries))
		recvIdx := sendIdx + 1
		p.Entries = append(p.Entries, command.TemplateEntry{
			Index:     sendIdx,
			Kind:      command.CopySend,
			Reads:     []ids.ObjectID{srcObj},
			ParamSlot: command.NoParamSlot,
			Logical:   v.Logical,
			DstWorker: v.Worker,
			DstIdx:    recvIdx,
		})
		p.Entries = append(p.Entries, command.TemplateEntry{
			Index:     recvIdx,
			Kind:      command.CopyRecv,
			Writes:    []ids.ObjectID{dstObj},
			ParamSlot: command.NoParamSlot,
			Logical:   v.Logical,
		})
		p.PerWorker[v.Holder] = append(p.PerWorker[v.Holder], sendIdx)
		p.PerWorker[v.Worker] = append(p.PerWorker[v.Worker], recvIdx)
		p.Fixes = append(p.Fixes, PatchFix{
			Logical: v.Logical, Src: v.Holder, Dst: v.Worker,
			SrcObj: srcObj, DstObj: dstObj,
		})
	}
	return p, nil
}

// Covers reports whether replaying this patch would correctly fix the
// given violations in the directory's current state: every violation must
// be fixed by some cached copy and every cached copy's source must still
// hold the latest version (stale sources would propagate stale data).
// Extra copies of latest data are harmless.
func (p *Patch) Covers(dir *flow.Directory, viols []Violation) bool {
	for _, f := range p.Fixes {
		if !dir.IsLatest(f.Logical, f.Src) {
			return false
		}
	}
	for _, v := range viols {
		fixed := false
		for _, f := range p.Fixes {
			if f.Logical == v.Logical && f.Dst == v.Worker {
				fixed = true
				break
			}
		}
		if !fixed {
			return false
		}
	}
	return true
}

// ApplyEffects advances the directory and ledgers past one instantiation
// of the patch with the given command-ID base.
func (p *Patch) ApplyEffects(base ids.CommandID, dir *flow.Directory, ledgers map[ids.WorkerID]*flow.Ledger) {
	for i, f := range p.Fixes {
		dir.RecordCopy(f.Logical, f.Dst)
		sendID := base + ids.CommandID(2*i)
		recvID := base + ids.CommandID(2*i+1)
		if led := ledgers[f.Src]; led != nil {
			led.Read(f.SrcObj, sendID, nil)
		}
		if led := ledgers[f.Dst]; led != nil {
			led.Write(f.DstObj, recvID, nil)
		}
	}
}

// Size returns the number of patch commands.
func (p *Patch) Size() int { return len(p.Entries) }

// Transition keys the patch cache: what executed before the template being
// instantiated. The paper indexes cached patches "by what executed before
// that template" (§4.2).
type Transition struct {
	Prev ids.TemplateID // NoTemplate when entering from non-templated code
	Next ids.TemplateID
}

// PatchCache caches patches by control-flow transition.
type PatchCache struct {
	patches map[Transition]*Patch
	// Hits and Misses instrument the cache (the paper reports very high
	// hit rates in practice).
	Hits   uint64
	Misses uint64
}

// NewPatchCache returns an empty cache.
func NewPatchCache() *PatchCache {
	return &PatchCache{patches: make(map[Transition]*Patch)}
}

// Lookup returns a cached patch that correctly fixes viols for the given
// transition, or nil. Hit/miss counters are updated.
func (c *PatchCache) Lookup(tr Transition, dir *flow.Directory, viols []Violation) *Patch {
	if p, ok := c.patches[tr]; ok && p.Covers(dir, viols) {
		c.Hits++
		return p
	}
	c.Misses++
	return nil
}

// Store caches p for the transition, replacing any previous patch.
func (c *PatchCache) Store(tr Transition, p *Patch) {
	c.patches[tr] = p
}

// Len returns the number of cached patches.
func (c *PatchCache) Len() int { return len(c.patches) }
