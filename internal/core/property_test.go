package core

import (
	"reflect"
	"testing"

	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// TestBuilderDeterminism: two builds from identical inputs must produce
// identical assignments — the controller relies on this when rebuilding
// for a previously seen placement.
func TestBuilderDeterminism(t *testing.T) {
	build := func() *Assignment {
		place := NewStaticPlacement(4)
		place.Define(1, 8)
		place.Define(2, 1)
		place.Define(3, 8)
		place.Define(4, 2)
		var alloc ids.ObjectIDs
		dir := flow.NewDirectory(&alloc)
		b := NewBuilder(dir, place)
		for _, s := range lrLikeStages(8, 4) {
			if err := b.AddStage(s); err != nil {
				t.Fatal(err)
			}
		}
		return b.Finalize(1)
	}
	a1, a2 := build(), build()
	if !reflect.DeepEqual(a1.Entries, a2.Entries) {
		t.Fatal("entries differ across identical builds")
	}
	if !reflect.DeepEqual(a1.WorkerOf, a2.WorkerOf) {
		t.Fatal("worker assignment differs across identical builds")
	}
	if !reflect.DeepEqual(a1.Preconds, a2.Preconds) {
		t.Fatal("preconditions differ across identical builds")
	}
	if !reflect.DeepEqual(a1.Effects, a2.Effects) {
		t.Fatal("effects differ across identical builds")
	}
}

// TestMaterializedGraphAcyclic: materializing a template instance must
// yield commands whose before edges reference lower-or-other entries
// without cycles (every BeforeIdx edge points to an already-emitted
// entry, since the builder appends in dependency order).
func TestMaterializedGraphAcyclic(t *testing.T) {
	a, _, _ := buildLRAssignment(t, 4, 8, 4)
	for i := range a.Entries {
		e := &a.Entries[i]
		if e.Kind == 0 {
			continue
		}
		for _, dep := range e.BeforeIdx {
			if dep >= e.Index {
				t.Fatalf("entry %d depends on later entry %d", e.Index, dep)
			}
		}
	}
}

// TestMaterializeConsistency: a materialized command's IDs must be
// base-relative and its structure must mirror the entry.
func TestMaterializeConsistency(t *testing.T) {
	a, _, _ := buildLRAssignment(t, 4, 8, 4)
	const base ids.CommandID = 5000
	var c command.Command
	for i := range a.Entries {
		e := &a.Entries[i]
		if e.Kind == 0 {
			continue
		}
		e.Materialize(base, nil, &c)
		if c.ID != base+ids.CommandID(e.Index) {
			t.Fatalf("entry %d: id %v", e.Index, c.ID)
		}
		for j, dep := range e.BeforeIdx {
			if c.Before[j] != base+ids.CommandID(dep) {
				t.Fatalf("entry %d: before[%d] = %v", e.Index, j, c.Before[j])
			}
		}
		if e.Kind == command.CopySend && c.DstCommand != base+ids.CommandID(e.DstIdx) {
			t.Fatalf("entry %d: dst %v", e.Index, c.DstCommand)
		}
	}
}

// TestRepeatedMigrationConverges: migrating a partition away and back
// must return the assignment to an equivalent schedule (same per-worker
// entry counts), and diffs must stay bounded.
func TestRepeatedMigrationConverges(t *testing.T) {
	place := NewStaticPlacement(4)
	place.Define(1, 8)
	place.Define(2, 1)
	place.Define(3, 8)
	place.Define(4, 2)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	stages := lrLikeStages(8, 4)
	tmpl := &Template{ID: 1, Name: "t", Stages: stages}
	b := NewBuilder(dir, place)
	for _, s := range stages {
		if err := b.AddStage(s); err != nil {
			t.Fatal(err)
		}
	}
	orig := b.Finalize(1)
	counts := func(a *Assignment) map[ids.WorkerID]int {
		out := make(map[ids.WorkerID]int)
		for w, idxs := range a.PerWorker {
			out[w] = len(idxs)
		}
		return out
	}
	origCounts := counts(orig)
	origWorker := place.WorkerOf(1, 1)

	cur := orig
	// Away...
	place.Reassign(1, 1, 1)
	place.Reassign(3, 1, 1)
	next, err := tmpl.Rebuild(1, dir, place, cur)
	if err != nil {
		t.Fatal(err)
	}
	if Diff(cur, next).Changed == 0 {
		t.Fatal("migration away produced no diff")
	}
	cur = next
	// ...and back.
	place.Reassign(1, 1, origWorker)
	place.Reassign(3, 1, origWorker)
	back, err := tmpl.Rebuild(1, dir, place, cur)
	if err != nil {
		t.Fatal(err)
	}
	if Diff(cur, back).Changed == 0 {
		t.Fatal("migration back produced no diff")
	}
	if !reflect.DeepEqual(counts(back), origCounts) {
		t.Fatalf("round-trip migration changed the schedule: %v vs %v",
			counts(back), origCounts)
	}
}

// TestPerTaskParamsRejected: stages with per-task parameters cannot be
// recorded into templates.
func TestPerTaskParamsRejected(t *testing.T) {
	place := NewStaticPlacement(2)
	place.Define(1, 2)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	b := NewBuilder(dir, place)
	spec := lrLikeStages(8, 4)[0]
	bad := *spec
	bad.Tasks = 2
	bad.PerTask = []params.Blob{{1}, {2}}
	if err := b.AddStage(&bad); err == nil {
		t.Fatal("per-task parameters must be rejected in templates")
	}
}
