package core

import (
	"reflect"
	"testing"

	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// lrLikeStages builds a gradient/reduce/apply stage triple over the given
// placement (the LR shape the paper benchmarks).
func lrLikeStages(parts, fan int) []*proto.SubmitStage {
	return []*proto.SubmitStage{
		{
			Stage: 1, Fn: fn.FuncSim, Tasks: parts,
			Refs: []proto.VarRef{
				{Var: 1, Pattern: proto.OnePerTask},              // tdata
				{Var: 2, Pattern: proto.Shared},                  // coeff
				{Var: 3, Write: true, Pattern: proto.OnePerTask}, // grad
			},
		},
		{
			Stage: 2, Fn: fn.FuncSim, Tasks: parts / fan,
			Refs: []proto.VarRef{
				{Var: 3, Pattern: proto.Grouped},
				{Var: 4, Write: true, Pattern: proto.OnePerTask}, // gsum
			},
		},
		{
			Stage: 3, Fn: fn.FuncSim, Tasks: 1,
			Refs: []proto.VarRef{
				{Var: 4, Pattern: proto.Grouped},
				{Var: 2, Pattern: proto.Shared},
				{Var: 2, Write: true, Pattern: proto.Shared},
			},
		},
	}
}

func buildLRAssignment(t *testing.T, workers, parts, fan int) (*Assignment, *flow.Directory, *StaticPlacement) {
	t.Helper()
	place := NewStaticPlacement(workers)
	place.Define(1, parts)
	place.Define(2, 1)
	place.Define(3, parts)
	place.Define(4, parts/fan)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	b := NewBuilder(dir, place)
	for _, s := range lrLikeStages(parts, fan) {
		if err := b.AddStage(s); err != nil {
			t.Fatalf("add stage: %v", err)
		}
	}
	return b.Finalize(1), dir, place
}

// TestBuilderStructure checks the template's invariants: every entry's
// before edges stay on the same worker, copy pairs route correctly, and
// restore copies make the postcondition cover the precondition.
func TestBuilderStructure(t *testing.T) {
	a, _, _ := buildLRAssignment(t, 4, 8, 4)
	workerOf := a.WorkerOf
	for i := range a.Entries {
		e := &a.Entries[i]
		if e.Kind == 0 {
			continue
		}
		for _, dep := range e.BeforeIdx {
			if workerOf[dep] != workerOf[i] {
				t.Errorf("entry %d: before edge to %d crosses workers %v->%v",
					i, dep, workerOf[i], workerOf[dep])
			}
		}
		if e.Kind == command.CopySend {
			recv := &a.Entries[e.DstIdx]
			if recv.Kind != command.CopyRecv {
				t.Errorf("send %d targets non-recv %d", i, e.DstIdx)
			}
			if workerOf[e.DstIdx] != e.DstWorker {
				t.Errorf("send %d: DstWorker %v but recv on %v", i, e.DstWorker, workerOf[e.DstIdx])
			}
		}
	}

	// Postcondition must cover the precondition: every precondition's
	// logical object, if written by the template, ends with the worker
	// among the final holders.
	finalHolders := make(map[ids.LogicalID]map[ids.WorkerID]bool)
	for _, oe := range a.Effects.Objects {
		m := make(map[ids.WorkerID]bool)
		for _, w := range oe.FinalHolders {
			m[w] = true
		}
		finalHolders[oe.Logical] = m
	}
	for _, pc := range a.Preconds {
		if hs, written := finalHolders[pc.Logical]; written && !hs[pc.Worker] {
			t.Errorf("precondition (%s,%s) not restored by template end", pc.Logical, pc.Worker)
		}
	}
}

// TestAutoValidation: applying the template's effects to a directory that
// satisfies its preconditions must leave them satisfied (the inductive
// property behind auto-validation, paper §4.2).
func TestAutoValidation(t *testing.T) {
	a, dir, _ := buildLRAssignment(t, 4, 8, 4)
	// Put initial data so preconditions hold: first writer creates the
	// version, later workers receive copies.
	for _, pc := range a.Preconds {
		if dir.Latest(pc.Logical) == 0 {
			dir.RecordWrite(pc.Logical, pc.Worker)
		} else if !dir.IsLatest(pc.Logical, pc.Worker) {
			dir.RecordCopy(pc.Logical, pc.Worker)
		}
	}
	if v := a.Validate(dir); len(v) != 0 {
		t.Fatalf("initial violations: %v", v)
	}
	ledgers := map[ids.WorkerID]*flow.Ledger{}
	for w := ids.WorkerID(1); w <= 4; w++ {
		ledgers[w] = flow.NewLedger(w)
	}
	for i := 0; i < 5; i++ {
		a.ApplyEffects(ids.CommandID(1000*(i+1)), dir, ledgers)
		if v := a.Validate(dir); len(v) != 0 {
			t.Fatalf("iteration %d: violations %v (auto-validation broken)", i, v)
		}
	}
}

// TestRebuildDiffStability: rebuilding under an unchanged placement must
// produce zero edits; moving one partition must produce a small diff.
func TestRebuildDiffStability(t *testing.T) {
	place := NewStaticPlacement(4)
	place.Define(1, 8)
	place.Define(2, 1)
	place.Define(3, 8)
	place.Define(4, 2)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	stages := lrLikeStages(8, 4)
	tmpl := &Template{ID: 1, Name: "t", Stages: stages}
	b := NewBuilder(dir, place)
	for _, s := range stages {
		if err := b.AddStage(s); err != nil {
			t.Fatal(err)
		}
	}
	prev := b.Finalize(1)

	same, err := tmpl.Rebuild(1, dir, place, prev)
	if err != nil {
		t.Fatal(err)
	}
	d := Diff(prev, same)
	if d.Changed != 0 {
		t.Fatalf("identical rebuild produced %d changes: %+v", d.Changed, d.Edits)
	}

	// Move partition 1 of tdata and grad to worker 1.
	place.Reassign(1, 1, 1)
	place.Reassign(3, 1, 1)
	next, err := tmpl.Rebuild(1, dir, place, prev)
	if err != nil {
		t.Fatal(err)
	}
	d = Diff(prev, next)
	if d.Changed == 0 {
		t.Fatal("migration produced no edits")
	}
	if d.Changed > 12 {
		t.Fatalf("single-partition migration produced %d changes; edits must stay proportional", d.Changed)
	}
}

// TestPatchCovers exercises the patch cache's correctness predicate.
func TestPatchCovers(t *testing.T) {
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	const l ids.LogicalID = 1
	dir.Instance(l, 1)
	dir.Instance(l, 2)
	dir.RecordWrite(l, 1)
	viols := []Violation{{Precond: Precond{Logical: l, Worker: 2, Object: dir.Instance(l, 2)}, Holder: 1}}
	p, err := BuildPatch(1, dir, viols)
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 {
		t.Fatalf("patch size = %d", p.Size())
	}
	if !p.Covers(dir, viols) {
		t.Fatal("fresh patch must cover its violations")
	}
	// If the source goes stale the patch must be rejected.
	dir.RecordWrite(l, 2)
	if p.Covers(dir, viols) {
		t.Fatal("patch with stale source must not cover")
	}
}

func TestPatchCacheHitMiss(t *testing.T) {
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	const l ids.LogicalID = 1
	dir.Instance(l, 1)
	dir.Instance(l, 2)
	dir.RecordWrite(l, 1)
	viols := []Violation{{Precond: Precond{Logical: l, Worker: 2, Object: dir.Instance(l, 2)}, Holder: 1}}
	cache := NewPatchCache()
	tr := Transition{Prev: 1, Next: 2}
	if cache.Lookup(tr, dir, viols) != nil {
		t.Fatal("empty cache hit")
	}
	p, _ := BuildPatch(1, dir, viols)
	cache.Store(tr, p)
	if cache.Lookup(tr, dir, viols) == nil {
		t.Fatal("cache miss after store")
	}
	if cache.Hits != 1 || cache.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", cache.Hits, cache.Misses)
	}
}

// TestStencilAccess verifies the stencil pattern's partition expansion.
func TestStencilAccess(t *testing.T) {
	place := NewStaticPlacement(2)
	place.Define(1, 4)
	place.Define(2, 4)
	spec := &proto.SubmitStage{
		Stage: 1, Fn: fn.FuncSim, Tasks: 4,
		Refs: []proto.VarRef{
			{Var: 1, Pattern: proto.Stencil, Fixed: 1},
			{Var: 2, Write: true, Pattern: proto.OnePerTask},
		},
	}
	wantReads := [][]int{{0, 1}, {0, 1, 2}, {1, 2, 3}, {2, 3}}
	for task, want := range wantReads {
		reads, writes, err := TaskAccesses(spec, place, task)
		if err != nil {
			t.Fatal(err)
		}
		if len(reads) != len(want) {
			t.Fatalf("task %d reads %d partitions, want %d", task, len(reads), len(want))
		}
		if len(writes) != 1 {
			t.Fatalf("task %d writes %d", task, len(writes))
		}
	}
}

// TestGroupedMismatch checks validation of inconsistent stage shapes.
func TestGroupedMismatch(t *testing.T) {
	place := NewStaticPlacement(2)
	place.Define(1, 7)
	spec := &proto.SubmitStage{
		Stage: 1, Fn: fn.FuncSim, Tasks: 2,
		Refs: []proto.VarRef{{Var: 1, Pattern: proto.Grouped}},
	}
	if _, _, err := TaskAccesses(spec, place, 0); err == nil {
		t.Fatal("grouped access with non-divisible partitions must fail")
	}
}

// TestBuildParallelMatchesSerial: the sharded build must be bit-identical
// to the serial build at every parallelism level — the controller relies
// on this when committing off-loop builds and diffing rebuilds.
func TestBuildParallelMatchesSerial(t *testing.T) {
	build := func(par int) *Assignment {
		place := NewStaticPlacement(8)
		place.Define(1, 64)
		place.Define(2, 1)
		place.Define(3, 64)
		place.Define(4, 16)
		var alloc ids.ObjectIDs
		dir := flow.NewDirectory(&alloc)
		a, err := BuildAssignment(1, dir, place, lrLikeStages(64, 4), par)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return a
	}
	serial := build(1)
	for _, par := range []int{2, 4, 8, 0} {
		p := build(par)
		if !reflect.DeepEqual(serial.Entries, p.Entries) {
			t.Fatalf("par=%d: entries differ from serial build", par)
		}
		if !reflect.DeepEqual(serial.Effects, p.Effects) {
			t.Fatalf("par=%d: effects differ from serial build", par)
		}
		if !reflect.DeepEqual(serial.Preconds, p.Preconds) {
			t.Fatalf("par=%d: preconditions differ from serial build", par)
		}
		if !reflect.DeepEqual(serial.PerWorker, p.PerWorker) {
			t.Fatalf("par=%d: per-worker lists differ from serial build", par)
		}
		if serial.Size() != p.Size() {
			t.Fatalf("par=%d: size %d != %d", par, p.Size(), serial.Size())
		}
	}
}

// TestAssignmentSizeLiveCount: Size must stay correct through edit and
// tombstone churn without rescanning the entry array.
func TestAssignmentSizeLiveCount(t *testing.T) {
	a, _, _ := buildLRAssignment(t, 4, 8, 4)
	recount := func() int {
		n := 0
		for i := range a.Entries {
			if a.Entries[i].Kind != 0 {
				n++
			}
		}
		return n
	}
	if a.Size() != recount() {
		t.Fatalf("fresh build: Size=%d recount=%d", a.Size(), recount())
	}

	next := int32(len(a.Entries))
	prov := map[int32]Provenance{}
	// Churn: remove a window, re-add one removed entry at its old index,
	// append fresh entries, double-remove, remove-missing, and overwrite a
	// live index in place.
	steps := []command.Edit{
		{Remove: []int32{0, 1, 2, 3}},
		{Add: []command.TemplateEntry{func() command.TemplateEntry {
			e := a.Entries[5]
			e.Index = 2
			e.Kind = command.Task
			return e
		}()}},
		{Add: []command.TemplateEntry{
			{Index: next, Kind: command.Task},
			{Index: next + 1, Kind: command.CopySend},
		}},
		{Remove: []int32{0, 0}},              // 0 already tombstoned
		{Remove: []int32{next + 100}},        // out of range: ignored
		{Remove: []int32{5}, Add: []command.TemplateEntry{{Index: 5, Kind: command.Task}}},
	}
	for i, e := range steps {
		a.ApplyEdit(1, &e, prov)
		if a.Size() != recount() {
			t.Fatalf("step %d: Size=%d recount=%d", i, a.Size(), recount())
		}
	}
}

// TestZeroTaskStageRecordable: a degenerate zero-task stage must validate
// and build to nothing, matching the live scheduling path.
func TestZeroTaskStageRecordable(t *testing.T) {
	place := NewStaticPlacement(2)
	place.Define(1, 4)
	spec := &proto.SubmitStage{
		Stage: 1, Fn: fn.FuncSim, Tasks: 0,
		Refs: []proto.VarRef{{Var: 1, Pattern: proto.OnePerTask}},
	}
	if err := ValidateStage(spec, place); err != nil {
		t.Fatalf("zero-task stage rejected: %v", err)
	}
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	a, err := BuildAssignment(1, dir, place, []*proto.SubmitStage{spec}, 0)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if a.Size() != 0 || len(a.Entries) != 0 {
		t.Fatalf("zero-task stage built %d entries", len(a.Entries))
	}
}
