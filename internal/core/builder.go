package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"nimbus/internal/command"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// provKind classifies an entry's provenance for the rebuild diff.
type provKind uint8

const (
	provTask provKind = iota + 1
	provSend
	provRecv
)

// restoreStage is the pseudo stage index of the restoring copies appended
// by the build so that a template's postcondition satisfies its own
// precondition (paper §4.2, optimization 1).
const restoreStage = -1

// Provenance identifies the semantic origin of a template entry,
// independent of its index or worker: which stage/task produced it, or
// which logical object a copy moves. The rebuild diff matches entries
// across placements by provenance so that unchanged entries keep their
// indexes and edits stay proportional to the actual change (paper §4.3:
// a replacement command assigned the same index leaves other commands
// untouched).
type Provenance struct {
	Kind    provKind
	Stage   int32
	Task    int32
	Logical ids.LogicalID
	// From/To disambiguate copies: From is the sending worker (sends
	// only), To the receiving worker.
	From ids.WorkerID
	To   ids.WorkerID
}

// Precond is one worker-template precondition: the worker's replica of the
// logical object must hold the latest version when the template is
// instantiated (paper §4.1).
type Precond struct {
	Logical ids.LogicalID
	Worker  ids.WorkerID
	Object  ids.ObjectID
}

// ObjectEffect summarizes what one template instance does to a logical
// object: how many versions it produces and which workers hold the final
// version. The controller applies effects to its directory at
// instantiation time instead of re-deriving them per task.
type ObjectEffect struct {
	Logical      ids.LogicalID
	Bumps        uint64
	FinalHolders []ids.WorkerID
}

// LedgerEffect summarizes the final ordering state of one physical object
// on one worker after a template instance: the in-template last writer
// (entry index, or -1 if the template only reads it) and the in-template
// readers since that write. Applying these keeps post-template commands'
// before sets correct without per-task bookkeeping.
type LedgerEffect struct {
	Object ids.ObjectID
	// LastWriterIdx is the entry index of the final in-template writer,
	// or -1 to preserve the pre-instance writer.
	LastWriterIdx int32
	Readers       []int32
}

// Effects is the full instantiation effect of an assignment.
type Effects struct {
	Objects []ObjectEffect
	Ledger  map[ids.WorkerID][]LedgerEffect
}

// Instances resolves the stable physical instance of a logical object on a
// worker, allocating one on first use. *flow.Directory implements it for
// on-loop builds; *flow.BuildView implements it for off-loop builds over a
// directory snapshot.
type Instances interface {
	Instance(l ids.LogicalID, w ids.WorkerID) ids.ObjectID
}

// ValidateStage checks that a stage can be recorded into a template under
// the given placement. Every build-time error is shape-dependent, not
// task-dependent (partition-count mismatches, divisibility, fixed-index
// bounds), so validating task 0 of each reference covers the whole stage;
// after ValidateStage succeeds a build of the stage cannot fail.
func ValidateStage(spec *proto.SubmitStage, place Placement) error {
	if len(spec.PerTask) > 0 {
		return fmt.Errorf("core: stage %s has per-task parameters and cannot be templated", spec.Stage)
	}
	if spec.Tasks <= 0 {
		// A degenerate zero-task stage records (and builds) to nothing,
		// matching the live scheduling path.
		return nil
	}
	if _, _, err := TaskAccesses(spec, place, 0); err != nil {
		return err
	}
	if _, err := AnchorWorker(spec, place, 0); err != nil {
		return err
	}
	return nil
}

// taskPlan is one task's resolved placement: what it reads and writes and
// where it runs. Pass A of the build produces one per task, in parallel.
type taskPlan struct {
	reads  []ids.LogicalID
	writes []ids.LogicalID
	worker ids.WorkerID
}

// buildState is the serial (pass B) state of one assignment build.
type buildState struct {
	inst  Instances
	place Placement

	entries  []command.TemplateEntry
	workerOf []ids.WorkerID
	prov     []Provenance

	holders  map[ids.LogicalID]*holderState
	preconds []Precond
	precondS map[precondKey]bool
	slots    int
}

type precondKey struct {
	l ids.LogicalID
	w ids.WorkerID
}

// holderState tracks a logical object's within-template placement: whether
// the template has written it, how many versions it produced, and which
// workers hold the template-current version.
type holderState struct {
	written bool
	bumps   uint64
	holders map[ids.WorkerID]bool
}

// idxLedger mirrors flow.Ledger with entry indexes instead of command IDs.
// Pass C keeps one per worker; per-worker ledgers are disjoint, which is
// what makes the dependency pass shardable.
type idxLedger struct {
	orders map[ids.ObjectID]*idxOrder
}

type idxOrder struct {
	lastWriter int32 // -1: no in-template writer
	readers    []int32
}

func (l *idxLedger) orderOf(o ids.ObjectID) *idxOrder {
	ord, ok := l.orders[o]
	if !ok {
		ord = &idxOrder{lastWriter: -1}
		l.orders[o] = ord
	}
	return ord
}

func (l *idxLedger) read(o ids.ObjectID, idx int32, deps []int32) []int32 {
	ord := l.orderOf(o)
	if ord.lastWriter >= 0 {
		deps = appendUniqueIdx(deps, ord.lastWriter)
	}
	ord.readers = append(ord.readers, idx)
	return deps
}

func (l *idxLedger) write(o ids.ObjectID, idx int32, deps []int32) []int32 {
	ord := l.orderOf(o)
	if ord.lastWriter >= 0 {
		deps = appendUniqueIdx(deps, ord.lastWriter)
	}
	for _, r := range ord.readers {
		if r != idx {
			deps = appendUniqueIdx(deps, r)
		}
	}
	ord.lastWriter = idx
	ord.readers = ord.readers[:0]
	return deps
}

func appendUniqueIdx(deps []int32, idx int32) []int32 {
	for _, d := range deps {
		if d == idx {
			return deps
		}
	}
	return append(deps, idx)
}

// BuildAssignment constructs an Assignment (the controller half of a
// worker-template set plus the controller template's command array) for the
// given stage sequence under a fixed placement. It is a pure function over
// its inputs: inst and place are only read (inst may allocate fresh
// instance IDs), so it can run off the controller's event loop against a
// directory snapshot while the loop keeps serving heartbeats, completions
// and other templates' dispatch.
//
// The build is a three-pass pipeline, sharded where state is disjoint:
//
//	A. resolve every task's accesses and anchor worker (pure over place) —
//	   parallel over tasks;
//	B. lay out the entry array: copy insertion, index assignment, instance
//	   resolution, preconditions and object effects (global holder state) —
//	   serial, but only map lookups per entry;
//	C. derive every entry's before set and the per-worker ledger effects —
//	   parallel over workers, since each entry depends only on its home
//	   worker's index ledger.
//
// par bounds the goroutine pool; par <= 0 uses GOMAXPROCS, par == 1 runs
// fully serially (no goroutines). Output is deterministic and identical
// across par values.
func BuildAssignment(id ids.TemplateID, inst Instances, place Placement, stages []*proto.SubmitStage, par int) (*Assignment, error) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}

	// Pass A: per-task placement resolution, sharded over the flattened
	// task list.
	total := 0
	offsets := make([]int, len(stages))
	for i, spec := range stages {
		if len(spec.PerTask) > 0 {
			return nil, fmt.Errorf("core: stage %s has per-task parameters and cannot be templated", spec.Stage)
		}
		offsets[i] = total
		total += spec.Tasks
	}
	plans := make([]taskPlan, total)
	var firstErr error
	var errMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	shard(total, par, func(lo, hi int) {
		si := sort.Search(len(offsets), func(i int) bool { return offsets[i] > lo }) - 1
		for flat := lo; flat < hi; flat++ {
			for si+1 < len(offsets) && flat >= offsets[si+1] {
				si++
			}
			spec, t := stages[si], flat-offsets[si]
			reads, writes, err := TaskAccesses(spec, place, t)
			if err != nil {
				fail(err)
				return
			}
			w, err := AnchorWorker(spec, place, t)
			if err != nil {
				fail(err)
				return
			}
			plans[flat] = taskPlan{reads: reads, writes: writes, worker: w}
		}
	})
	if firstErr != nil {
		return nil, firstErr
	}

	// Pass B: serial entry layout.
	b := &buildState{
		inst:     inst,
		place:    place,
		entries:  make([]command.TemplateEntry, 0, total+total/4),
		holders:  make(map[ids.LogicalID]*holderState),
		precondS: make(map[precondKey]bool),
	}
	for si, spec := range stages {
		slot := command.NoParamSlot
		if len(spec.Params) > 0 {
			slot = int32(b.slots)
			b.slots++
		}
		stageIdx := int32(si)
		for t := 0; t < spec.Tasks; t++ {
			p := &plans[offsets[si]+t]
			w := p.worker
			// First, materialize any copies the reads require so that copy
			// entries precede the task entry.
			for _, l := range p.reads {
				b.ensureReadable(l, w, stageIdx)
			}
			taskIdx := int32(len(b.entries))
			readObjs := make([]ids.ObjectID, len(p.reads))
			for i, l := range p.reads {
				readObjs[i] = b.inst.Instance(l, w)
			}
			writeObjs := make([]ids.ObjectID, len(p.writes))
			for i, l := range p.writes {
				writeObjs[i] = b.inst.Instance(l, w)
				hs := b.holderOf(l)
				hs.written = true
				hs.bumps++
				for h := range hs.holders {
					delete(hs.holders, h)
				}
				hs.holders[w] = true
			}
			b.append(command.TemplateEntry{
				Index:     taskIdx,
				Kind:      command.Task,
				Function:  spec.Fn,
				Reads:     readObjs,
				Writes:    writeObjs,
				ParamSlot: slot,
				Fixed:     spec.Params,
			}, w, Provenance{Kind: provTask, Stage: stageIdx, Task: int32(t)})
		}
	}
	// Restoring copies: a precondition (l, w) whose logical object the
	// template wrote must end with w holding the final version, so tight
	// loops auto-validate (paper §4.2).
	for _, pc := range b.preconds {
		hs, ok := b.holders[pc.Logical]
		if !ok || !hs.written || hs.holders[pc.Worker] {
			continue
		}
		b.insertCopy(pc.Logical, minHolder(hs.holders), pc.Worker, restoreStage)
		hs.holders[pc.Worker] = true
	}

	perWorker := make(map[ids.WorkerID][]int32)
	for i, w := range b.workerOf {
		perWorker[w] = append(perWorker[w], int32(i))
	}
	workers := make([]ids.WorkerID, 0, len(perWorker))
	for w := range perWorker {
		workers = append(workers, w)
	}
	sort.Slice(workers, func(i, j int) bool { return workers[i] < workers[j] })

	// Pass C: before sets and ledger effects, sharded over workers. Every
	// entry's dependencies come from its home worker's index ledger only,
	// so per-worker goroutines touch disjoint entries and ledgers.
	ledgerEff := make([][]LedgerEffect, len(workers))
	shard(len(workers), par, func(lo, hi int) {
		for wi := lo; wi < hi; wi++ {
			led := &idxLedger{orders: make(map[ids.ObjectID]*idxOrder)}
			for _, idx := range perWorker[workers[wi]] {
				e := &b.entries[idx]
				var deps []int32
				for _, o := range e.Reads {
					deps = led.read(o, idx, deps)
				}
				for _, o := range e.Writes {
					deps = led.write(o, idx, deps)
				}
				e.BeforeIdx = deps
			}
			objs := make([]ids.ObjectID, 0, len(led.orders))
			for o := range led.orders {
				objs = append(objs, o)
			}
			sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
			les := make([]LedgerEffect, 0, len(objs))
			for _, o := range objs {
				ord := led.orders[o]
				les = append(les, LedgerEffect{
					Object:        o,
					LastWriterIdx: ord.lastWriter,
					Readers:       append([]int32(nil), ord.readers...),
				})
			}
			ledgerEff[wi] = les
		}
	})

	eff := Effects{Ledger: make(map[ids.WorkerID][]LedgerEffect, len(workers))}
	for wi, w := range workers {
		eff.Ledger[w] = ledgerEff[wi]
	}
	logicals := make([]ids.LogicalID, 0, len(b.holders))
	for l, hs := range b.holders {
		if hs.written {
			logicals = append(logicals, l)
		}
	}
	sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })
	for _, l := range logicals {
		hs := b.holders[l]
		holders := make([]ids.WorkerID, 0, len(hs.holders))
		for w := range hs.holders {
			holders = append(holders, w)
		}
		sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
		eff.Objects = append(eff.Objects, ObjectEffect{Logical: l, Bumps: hs.bumps, FinalHolders: holders})
	}

	return &Assignment{
		ID:        id,
		Entries:   b.entries,
		WorkerOf:  b.workerOf,
		Prov:      b.prov,
		PerWorker: perWorker,
		Preconds:  b.preconds,
		Effects:   eff,
		Slots:     b.slots,
		Installed: make(map[ids.WorkerID]bool),
		live:      len(b.entries),
	}, nil
}

// shard splits [0, n) into at most par contiguous chunks and runs fn over
// them, inline when par == 1 or the range is trivial.
func shard(n, par int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		fn(0, n)
		return
	}
	chunk := (n + par - 1) / par
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

func (b *buildState) holderOf(l ids.LogicalID) *holderState {
	hs, ok := b.holders[l]
	if !ok {
		hs = &holderState{holders: make(map[ids.WorkerID]bool)}
		b.holders[l] = hs
	}
	return hs
}

// ensureReadable prepares logical object l for a read at worker w. If the
// template has already written l, the template-current version must reach
// w, so a copy pair is inserted when missing. Otherwise the read is an
// entry read: it becomes a worker-template precondition — patches, not
// cached copies, handle entry-time data movement (paper §2.4).
func (b *buildState) ensureReadable(l ids.LogicalID, w ids.WorkerID, stage int32) {
	hs, ok := b.holders[l]
	if !ok || !hs.written {
		key := precondKey{l, w}
		if !b.precondS[key] {
			b.precondS[key] = true
			b.preconds = append(b.preconds, Precond{
				Logical: l,
				Worker:  w,
				Object:  b.inst.Instance(l, w),
			})
		}
		return
	}
	if hs.holders[w] {
		return
	}
	b.insertCopy(l, minHolder(hs.holders), w, stage)
	hs.holders[w] = true
}

func minHolder(holders map[ids.WorkerID]bool) ids.WorkerID {
	var best ids.WorkerID
	for w := range holders {
		if best == ids.NoWorker || w < best {
			best = w
		}
	}
	return best
}

// insertCopy appends a send/receive pair moving the template-current
// version of l from src to dst. Before sets are filled by pass C.
func (b *buildState) insertCopy(l ids.LogicalID, src, dst ids.WorkerID, stage int32) (sendIdx, recvIdx int32) {
	srcObj := b.inst.Instance(l, src)
	dstObj := b.inst.Instance(l, dst)
	sendIdx = int32(len(b.entries))
	recvIdx = sendIdx + 1

	b.append(command.TemplateEntry{
		Index:     sendIdx,
		Kind:      command.CopySend,
		Reads:     []ids.ObjectID{srcObj},
		ParamSlot: command.NoParamSlot,
		Logical:   l,
		DstWorker: dst,
		DstIdx:    recvIdx,
	}, src, Provenance{Kind: provSend, Stage: stage, Logical: l, From: src, To: dst})

	b.append(command.TemplateEntry{
		Index:     recvIdx,
		Kind:      command.CopyRecv,
		Writes:    []ids.ObjectID{dstObj},
		ParamSlot: command.NoParamSlot,
		Logical:   l,
	}, dst, Provenance{Kind: provRecv, Stage: stage, Logical: l, To: dst})
	return sendIdx, recvIdx
}

func (b *buildState) append(e command.TemplateEntry, w ids.WorkerID, p Provenance) {
	b.entries = append(b.entries, e)
	b.workerOf = append(b.workerOf, w)
	b.prov = append(b.prov, p)
}

// Builder accumulates a stage sequence and builds it into an Assignment.
// It is the recording-time facade over BuildAssignment: AddStage validates
// each stage as the controller records it (so the driver hears about a
// non-templatable stage at submission time), and Finalize runs the full
// sharded construction.
type Builder struct {
	inst   Instances
	place  Placement
	stages []*proto.SubmitStage
	par    int
}

// NewBuilder returns a Builder resolving object instances from inst and
// placement through place.
func NewBuilder(inst Instances, place Placement) *Builder {
	return &Builder{inst: inst, place: place}
}

// SetParallelism bounds the goroutine pool Finalize uses (0 = GOMAXPROCS,
// 1 = fully serial).
func (b *Builder) SetParallelism(par int) { b.par = par }

// AddStage appends one stage to the template under construction after
// validating it can be templated under the builder's placement.
func (b *Builder) AddStage(spec *proto.SubmitStage) error {
	if err := ValidateStage(spec, b.place); err != nil {
		return err
	}
	b.stages = append(b.stages, spec)
	return nil
}

// Finalize builds the accumulated stages into an Assignment. Stages were
// validated by AddStage, so the build cannot fail.
func (b *Builder) Finalize(id ids.TemplateID) *Assignment {
	a, err := BuildAssignment(id, b.inst, b.place, b.stages, b.par)
	if err != nil {
		// Unreachable: every build-time error is caught by AddStage's
		// ValidateStage (errors are shape-, not task-dependent).
		panic(fmt.Sprintf("core: validated build failed: %v", err))
	}
	return a
}
