package core

import (
	"fmt"
	"sort"

	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// provKind classifies an entry's provenance for the rebuild diff.
type provKind uint8

const (
	provTask provKind = iota + 1
	provSend
	provRecv
)

// restoreStage is the pseudo stage index of the restoring copies appended
// by Finalize so that a template's postcondition satisfies its own
// precondition (paper §4.2, optimization 1).
const restoreStage = -1

// Provenance identifies the semantic origin of a template entry,
// independent of its index or worker: which stage/task produced it, or
// which logical object a copy moves. The rebuild diff matches entries
// across placements by provenance so that unchanged entries keep their
// indexes and edits stay proportional to the actual change (paper §4.3:
// a replacement command assigned the same index leaves other commands
// untouched).
type Provenance struct {
	Kind    provKind
	Stage   int32
	Task    int32
	Logical ids.LogicalID
	// From/To disambiguate copies: From is the sending worker (sends
	// only), To the receiving worker.
	From ids.WorkerID
	To   ids.WorkerID
}

// Precond is one worker-template precondition: the worker's replica of the
// logical object must hold the latest version when the template is
// instantiated (paper §4.1).
type Precond struct {
	Logical ids.LogicalID
	Worker  ids.WorkerID
	Object  ids.ObjectID
}

// ObjectEffect summarizes what one template instance does to a logical
// object: how many versions it produces and which workers hold the final
// version. The controller applies effects to its directory at
// instantiation time instead of re-deriving them per task.
type ObjectEffect struct {
	Logical      ids.LogicalID
	Bumps        uint64
	FinalHolders []ids.WorkerID
}

// LedgerEffect summarizes the final ordering state of one physical object
// on one worker after a template instance: the in-template last writer
// (entry index, or -1 if the template only reads it) and the in-template
// readers since that write. Applying these keeps post-template commands'
// before sets correct without per-task bookkeeping.
type LedgerEffect struct {
	Object ids.ObjectID
	// LastWriterIdx is the entry index of the final in-template writer,
	// or -1 to preserve the pre-instance writer.
	LastWriterIdx int32
	Readers       []int32
}

// Effects is the full instantiation effect of an assignment.
type Effects struct {
	Objects []ObjectEffect
	Ledger  map[ids.WorkerID][]LedgerEffect
}

// Builder constructs an Assignment (the controller half of a worker
// template set plus the controller template's command array) from a
// sequence of stages under a fixed placement. The controller runs a
// Builder while recording a basic block (paper §4.1) and again when
// rebuilding an assignment for a new placement.
type Builder struct {
	dir   *flow.Directory
	place Placement

	entries  []command.TemplateEntry
	workerOf []ids.WorkerID
	prov     []Provenance

	holders  map[ids.LogicalID]*holderState
	ledgers  map[ids.WorkerID]*idxLedger
	preconds []Precond
	precondS map[precondKey]bool
	slots    int
	stages   []*proto.SubmitStage
}

type precondKey struct {
	l ids.LogicalID
	w ids.WorkerID
}

// holderState tracks a logical object's within-template placement: whether
// the template has written it, how many versions it produced, and which
// workers hold the template-current version.
type holderState struct {
	written bool
	bumps   uint64
	holders map[ids.WorkerID]bool
}

// idxLedger mirrors flow.Ledger with entry indexes instead of command IDs.
type idxLedger struct {
	orders map[ids.ObjectID]*idxOrder
}

type idxOrder struct {
	lastWriter int32 // -1: no in-template writer
	readers    []int32
}

// NewBuilder returns a Builder allocating object instances from dir and
// resolving placement through place.
func NewBuilder(dir *flow.Directory, place Placement) *Builder {
	return &Builder{
		dir:      dir,
		place:    place,
		holders:  make(map[ids.LogicalID]*holderState),
		ledgers:  make(map[ids.WorkerID]*idxLedger),
		precondS: make(map[precondKey]bool),
	}
}

func (b *Builder) ledger(w ids.WorkerID) *idxLedger {
	l, ok := b.ledgers[w]
	if !ok {
		l = &idxLedger{orders: make(map[ids.ObjectID]*idxOrder)}
		b.ledgers[w] = l
	}
	return l
}

func (l *idxLedger) orderOf(o ids.ObjectID) *idxOrder {
	ord, ok := l.orders[o]
	if !ok {
		ord = &idxOrder{lastWriter: -1}
		l.orders[o] = ord
	}
	return ord
}

func (l *idxLedger) read(o ids.ObjectID, idx int32, deps []int32) []int32 {
	ord := l.orderOf(o)
	if ord.lastWriter >= 0 {
		deps = appendUniqueIdx(deps, ord.lastWriter)
	}
	ord.readers = append(ord.readers, idx)
	return deps
}

func (l *idxLedger) write(o ids.ObjectID, idx int32, deps []int32) []int32 {
	ord := l.orderOf(o)
	if ord.lastWriter >= 0 {
		deps = appendUniqueIdx(deps, ord.lastWriter)
	}
	for _, r := range ord.readers {
		if r != idx {
			deps = appendUniqueIdx(deps, r)
		}
	}
	ord.lastWriter = idx
	ord.readers = ord.readers[:0]
	return deps
}

func appendUniqueIdx(deps []int32, idx int32) []int32 {
	for _, d := range deps {
		if d == idx {
			return deps
		}
	}
	return append(deps, idx)
}

// AddStage appends one stage's tasks (and any data movement they imply) to
// the template under construction.
func (b *Builder) AddStage(spec *proto.SubmitStage) error {
	if len(spec.PerTask) > 0 {
		return fmt.Errorf("core: stage %s has per-task parameters and cannot be templated", spec.Stage)
	}
	slot := command.NoParamSlot
	if len(spec.Params) > 0 {
		slot = int32(b.slots)
		b.slots++
	}
	stageIdx := int32(len(b.stages))
	b.stages = append(b.stages, spec)

	for t := 0; t < spec.Tasks; t++ {
		reads, writes, err := TaskAccesses(spec, b.place, t)
		if err != nil {
			return err
		}
		w, err := AnchorWorker(spec, b.place, t)
		if err != nil {
			return err
		}
		// First, materialize any copies the reads require so that copy
		// entries precede the task entry.
		for _, l := range reads {
			b.ensureReadable(l, w, stageIdx)
		}
		taskIdx := int32(len(b.entries))
		var deps []int32
		led := b.ledger(w)
		readObjs := make([]ids.ObjectID, len(reads))
		for i, l := range reads {
			obj := b.dir.Instance(l, w)
			readObjs[i] = obj
			deps = led.read(obj, taskIdx, deps)
		}
		writeObjs := make([]ids.ObjectID, len(writes))
		for i, l := range writes {
			obj := b.dir.Instance(l, w)
			writeObjs[i] = obj
			deps = led.write(obj, taskIdx, deps)
			hs := b.holderOf(l)
			hs.written = true
			hs.bumps++
			for h := range hs.holders {
				delete(hs.holders, h)
			}
			hs.holders[w] = true
		}
		b.append(command.TemplateEntry{
			Index:     taskIdx,
			Kind:      command.Task,
			Function:  spec.Fn,
			Reads:     readObjs,
			Writes:    writeObjs,
			BeforeIdx: deps,
			ParamSlot: slot,
			Fixed:     spec.Params,
		}, w, Provenance{Kind: provTask, Stage: stageIdx, Task: int32(t)})
	}
	return nil
}

func (b *Builder) holderOf(l ids.LogicalID) *holderState {
	hs, ok := b.holders[l]
	if !ok {
		hs = &holderState{holders: make(map[ids.WorkerID]bool)}
		b.holders[l] = hs
	}
	return hs
}

// ensureReadable prepares logical object l for a read at worker w. If the
// template has already written l, the template-current version must reach
// w, so a copy pair is inserted when missing. Otherwise the read is an
// entry read: it becomes a worker-template precondition — patches, not
// cached copies, handle entry-time data movement (paper §2.4).
func (b *Builder) ensureReadable(l ids.LogicalID, w ids.WorkerID, stage int32) {
	hs, ok := b.holders[l]
	if !ok || !hs.written {
		key := precondKey{l, w}
		if !b.precondS[key] {
			b.precondS[key] = true
			b.preconds = append(b.preconds, Precond{
				Logical: l,
				Worker:  w,
				Object:  b.dir.Instance(l, w),
			})
		}
		return
	}
	if hs.holders[w] {
		return
	}
	b.insertCopy(l, minHolder(hs.holders), w, stage)
	hs.holders[w] = true
}

func minHolder(holders map[ids.WorkerID]bool) ids.WorkerID {
	var best ids.WorkerID
	for w := range holders {
		if best == ids.NoWorker || w < best {
			best = w
		}
	}
	return best
}

// insertCopy appends a send/receive pair moving the template-current
// version of l from src to dst.
func (b *Builder) insertCopy(l ids.LogicalID, src, dst ids.WorkerID, stage int32) (sendIdx, recvIdx int32) {
	srcObj := b.dir.Instance(l, src)
	dstObj := b.dir.Instance(l, dst)
	sendIdx = int32(len(b.entries))
	recvIdx = sendIdx + 1

	sendDeps := b.ledger(src).read(srcObj, sendIdx, nil)
	b.append(command.TemplateEntry{
		Index:     sendIdx,
		Kind:      command.CopySend,
		Reads:     []ids.ObjectID{srcObj},
		BeforeIdx: sendDeps,
		ParamSlot: command.NoParamSlot,
		Logical:   l,
		DstWorker: dst,
		DstIdx:    recvIdx,
	}, src, Provenance{Kind: provSend, Stage: stage, Logical: l, From: src, To: dst})

	recvDeps := b.ledger(dst).write(dstObj, recvIdx, nil)
	b.append(command.TemplateEntry{
		Index:     recvIdx,
		Kind:      command.CopyRecv,
		Writes:    []ids.ObjectID{dstObj},
		BeforeIdx: recvDeps,
		ParamSlot: command.NoParamSlot,
		Logical:   l,
	}, dst, Provenance{Kind: provRecv, Stage: stage, Logical: l, To: dst})
	return sendIdx, recvIdx
}

func (b *Builder) append(e command.TemplateEntry, w ids.WorkerID, p Provenance) {
	b.entries = append(b.entries, e)
	b.workerOf = append(b.workerOf, w)
	b.prov = append(b.prov, p)
}

// Finalize completes the build: it appends restoring copies so every
// precondition holds again when the template finishes (making tight loops
// auto-validate, paper §4.2), then assembles the Assignment with its
// per-worker entry lists, preconditions and instantiation effects.
func (b *Builder) Finalize(id ids.TemplateID) *Assignment {
	// Restoring copies: a precondition (l, w) whose logical object the
	// template wrote must end with w holding the final version.
	for _, pc := range b.preconds {
		hs, ok := b.holders[pc.Logical]
		if !ok || !hs.written || hs.holders[pc.Worker] {
			continue
		}
		b.insertCopy(pc.Logical, minHolder(hs.holders), pc.Worker, restoreStage)
		hs.holders[pc.Worker] = true
	}

	perWorker := make(map[ids.WorkerID][]int32)
	for i, w := range b.workerOf {
		perWorker[w] = append(perWorker[w], int32(i))
	}

	eff := Effects{Ledger: make(map[ids.WorkerID][]LedgerEffect, len(b.ledgers))}
	logicals := make([]ids.LogicalID, 0, len(b.holders))
	for l, hs := range b.holders {
		if hs.written {
			logicals = append(logicals, l)
		}
	}
	sort.Slice(logicals, func(i, j int) bool { return logicals[i] < logicals[j] })
	for _, l := range logicals {
		hs := b.holders[l]
		holders := make([]ids.WorkerID, 0, len(hs.holders))
		for w := range hs.holders {
			holders = append(holders, w)
		}
		sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
		eff.Objects = append(eff.Objects, ObjectEffect{Logical: l, Bumps: hs.bumps, FinalHolders: holders})
	}
	for w, led := range b.ledgers {
		objs := make([]ids.ObjectID, 0, len(led.orders))
		for o := range led.orders {
			objs = append(objs, o)
		}
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		les := make([]LedgerEffect, 0, len(objs))
		for _, o := range objs {
			ord := led.orders[o]
			les = append(les, LedgerEffect{
				Object:        o,
				LastWriterIdx: ord.lastWriter,
				Readers:       append([]int32(nil), ord.readers...),
			})
		}
		eff.Ledger[w] = les
	}

	return &Assignment{
		ID:        id,
		Entries:   b.entries,
		WorkerOf:  b.workerOf,
		Prov:      b.prov,
		PerWorker: perWorker,
		Preconds:  b.preconds,
		Effects:   eff,
		Slots:     b.slots,
		Installed: make(map[ids.WorkerID]bool),
	}
}
