package water

import (
	"fmt"
	"time"

	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// Config describes a water-simulation job.
type Config struct {
	// Rows, Cols is the global grid size; Partitions divides Rows.
	Rows, Cols, Partitions int
	// CFL, DtMax and FrameDt control the time stepping. Substep counts
	// per frame are data-dependent (the middle loop).
	CFL, DtMax, FrameDt float64
	// ReinitTol / PressTol are the inner loops' residual thresholds
	// (data-dependent termination); MaxReinit / MaxJacobi bound them.
	ReinitTol, PressTol  float64
	MaxReinit, MaxJacobi int
	// MaxSubsteps bounds the middle loop per frame.
	MaxSubsteps int
	// Simulated switches kernels to calibrated sleeps; the loops then run
	// fixed trip counts (SimReinit/SimJacobi/SimSubsteps).
	Simulated                         bool
	SimReinit, SimJacobi, SimSubsteps int
	// GridTaskDuration / ReduceTaskDuration calibrate simulated stages.
	// The paper's benchmark has a wide mix (median 13ms, 10% under 3ms,
	// tasks down to 100µs).
	GridTaskDuration   time.Duration
	ReduceTaskDuration time.Duration
}

func (c Config) withDefaults() Config {
	if c.Rows == 0 {
		c.Rows = 64
	}
	if c.Cols == 0 {
		c.Cols = 32
	}
	if c.Partitions == 0 {
		c.Partitions = 8
	}
	if c.CFL == 0 {
		c.CFL = 0.9
	}
	if c.DtMax == 0 {
		c.DtMax = 0.05
	}
	if c.FrameDt == 0 {
		c.FrameDt = 0.1
	}
	if c.ReinitTol == 0 {
		c.ReinitTol = 0.02
	}
	if c.PressTol == 0 {
		c.PressTol = 0.5
	}
	if c.MaxReinit == 0 {
		c.MaxReinit = 10
	}
	if c.MaxJacobi == 0 {
		c.MaxJacobi = 30
	}
	if c.MaxSubsteps == 0 {
		c.MaxSubsteps = 20
	}
	if c.SimReinit == 0 {
		c.SimReinit = 4
	}
	if c.SimJacobi == 0 {
		c.SimJacobi = 8
	}
	if c.SimSubsteps == 0 {
		c.SimSubsteps = 3
	}
	if c.GridTaskDuration == 0 {
		c.GridTaskDuration = 2 * time.Millisecond
	}
	if c.ReduceTaskDuration == 0 {
		c.ReduceTaskDuration = 100 * time.Microsecond
	}
	return c
}

// Var aliases driver.Var.
type Var = driver.Var

// Job is a set-up water simulation. It holds the 23 partitioned fields
// and 8 scalars of the benchmark.
type Job struct {
	Cfg Config
	D   *driver.Driver

	// Partitioned fields (strips).
	U, V, UStar, VStar, UForce, VForce     Var
	Phi, PhiTmp, PhiNext, Press, PressNext Var
	Div, RHS, Particles, PTmp, PCount      Var
	Speed, MaxSpd, Resid, Presid           Var
	Energy, Mass, Vort                     Var
	// Scalars.
	Dt, CflNum, ResidSum, PresidSum      Var
	EnergySum, MassSum, VortSum, SimTime Var
}

// SubstepStats reports one substep's data-dependent behavior.
type SubstepStats struct {
	Dt          float64
	ReinitIters int
	JacobiIters int
}

// Template (basic block) names: the five blocks of the substep, matching
// the paper's description of basic blocks separated by data-dependent
// branches.
const (
	BlockPre    = "water/pre"    // speed, dt, forces, advection, levelset transport
	BlockReinit = "water/reinit" // one redistancing iteration (inner loop 1)
	BlockMid    = "water/mid"    // extrapolation, divergence, Poisson RHS
	BlockJacobi = "water/jacobi" // one projection iteration (inner loop 2)
	BlockPost   = "water/post"   // projection apply, particles, diagnostics
)

// Setup declares the variables and initializes the fields on the workers.
func Setup(d *driver.Driver, cfg Config) (*Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Rows%cfg.Partitions != 0 {
		return nil, fmt.Errorf("water: rows %d not divisible by %d partitions",
			cfg.Rows, cfg.Partitions)
	}
	j := &Job{Cfg: cfg, D: d}
	var err error
	grid := func(name string) Var {
		if err != nil {
			return Var{}
		}
		var v Var
		v, err = d.DefineVariable("water/"+name, cfg.Partitions)
		return v
	}
	scalarVar := func(name string) Var {
		if err != nil {
			return Var{}
		}
		var v Var
		v, err = d.DefineVariable("water/"+name, 1)
		return v
	}
	j.U, j.V = grid("u"), grid("v")
	j.UStar, j.VStar = grid("ustar"), grid("vstar")
	j.UForce, j.VForce = grid("uforce"), grid("vforce")
	j.Phi, j.PhiTmp, j.PhiNext = grid("phi"), grid("phitmp"), grid("phinext")
	j.Press, j.PressNext = grid("press"), grid("pressnext")
	j.Div, j.RHS = grid("div"), grid("rhs")
	j.Particles, j.PTmp, j.PCount = grid("particles"), grid("ptmp"), grid("pcount")
	j.Speed, j.MaxSpd = grid("speed"), grid("maxspd")
	j.Resid, j.Presid = grid("resid"), grid("presid")
	j.Energy, j.Mass, j.Vort = grid("energy"), grid("mass"), grid("vort")
	j.Dt, j.CflNum = scalarVar("dt"), scalarVar("cflnum")
	j.ResidSum, j.PresidSum = scalarVar("residsum"), scalarVar("presidsum")
	j.EnergySum, j.MassSum = scalarVar("energysum"), scalarVar("masssum")
	j.VortSum, j.SimTime = scalarVar("vortsum"), scalarVar("simtime")
	if err != nil {
		return nil, err
	}

	// Scalars start at zero.
	for _, v := range []Var{j.Dt, j.CflNum, j.ResidSum, j.PresidSum,
		j.EnergySum, j.MassSum, j.VortSum, j.SimTime} {
		if err := d.PutFloats(v, 0, []float64{0}); err != nil {
			return nil, err
		}
	}

	// Initialize every strip field with its geometry (kind 0), the
	// levelset with the pour scene (kind 1), particles empty (kind 2).
	initStage := func(v Var, kind uint64) error {
		perTask := make([]params.Blob, cfg.Partitions)
		rows := cfg.Rows / cfg.Partitions
		for p := 0; p < cfg.Partitions; p++ {
			perTask[p] = params.NewEncoder(48).
				Uint(kind).
				Int(int64(p * rows)).
				Int(int64(rows)).
				Int(int64(cfg.Cols)).
				Int(int64(cfg.Rows)).
				Blob()
		}
		return d.SubmitPerTask(FnInitField, cfg.Partitions, perTask, v.Write())
	}
	zeroFields := []Var{j.U, j.V, j.UStar, j.VStar, j.UForce, j.VForce,
		j.PhiNext, j.Press, j.PressNext, j.Div, j.RHS, j.Speed}
	for _, v := range zeroFields {
		if err := initStage(v, 0); err != nil {
			return nil, err
		}
	}
	if err := initStage(j.Phi, 1); err != nil {
		return nil, err
	}
	if err := initStage(j.PhiTmp, 1); err != nil {
		return nil, err
	}
	for _, v := range []Var{j.Particles, j.PTmp} {
		if err := initStage(v, 2); err != nil {
			return nil, err
		}
	}
	return j, d.Barrier()
}

func (j *Job) fnOr(real ids.FunctionID) ids.FunctionID {
	if j.Cfg.Simulated {
		return fn.FuncSim
	}
	return real
}

func (j *Job) gridParams(real params.Blob) params.Blob {
	if j.Cfg.Simulated {
		return fn.SimParams(j.Cfg.GridTaskDuration)
	}
	return real
}

func (j *Job) reduceParams(real params.Blob) params.Blob {
	if j.Cfg.Simulated {
		return fn.SimParams(j.Cfg.ReduceTaskDuration)
	}
	return real
}

// SubmitPreStages submits the pre block (stages 1-8): CFL timestep,
// forces, velocity and levelset advection.
func (j *Job) SubmitPreStages() error {
	cfg := j.Cfg
	P := cfg.Partitions
	d := j.D
	steps := []func() error{
		func() error {
			return d.Submit(j.fnOr(FnComputeSpeed), P, j.gridParams(nil),
				j.U.Read(), j.V.Read(), j.Speed.Write(), j.MaxSpd.Write())
		},
		func() error {
			p := params.NewEncoder(32).Float(cfg.CFL).Float(1).Float(cfg.DtMax).Blob()
			return d.Submit(j.fnOr(FnReduceMaxSpeed), 1, j.reduceParams(p),
				j.MaxSpd.ReadGrouped(), j.Dt.WriteShared(), j.CflNum.WriteShared())
		},
		func() error {
			return d.Submit(j.fnOr(FnBodyForce), P, j.gridParams(nil),
				j.U.Read(), j.V.Read(), j.Dt.ReadShared(),
				j.UForce.Write(), j.VForce.Write())
		},
		func() error {
			return d.Submit(j.fnOr(FnAdvectU), P, j.gridParams(nil),
				j.UForce.ReadStencil(), j.VForce.ReadStencil(), j.Dt.ReadShared(),
				j.UStar.Write())
		},
		func() error {
			return d.Submit(j.fnOr(FnAdvectV), P, j.gridParams(nil),
				j.UForce.ReadStencil(), j.VForce.ReadStencil(), j.Dt.ReadShared(),
				j.VStar.Write())
		},
		func() error {
			p := params.NewEncoder(16).Int(int64(cfg.Rows)).Blob()
			return d.Submit(j.fnOr(FnVelocityBC), P, j.gridParams(p),
				j.UStar.Read(), j.VStar.Read(), j.UStar.Write(), j.VStar.Write())
		},
		func() error {
			return d.Submit(j.fnOr(FnAdvectPhi), P, j.gridParams(nil),
				j.Phi.ReadStencil(), j.U.Read(), j.V.Read(), j.Dt.ReadShared(),
				j.PhiTmp.Write())
		},
		func() error {
			return d.Submit(j.fnOr(FnPhiBC), P, j.gridParams(nil),
				j.PhiTmp.Read(), j.PhiTmp.Write())
		},
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return err
		}
	}
	return nil
}

// SubmitReinitStages submits one redistancing iteration (stages 9-11).
func (j *Job) SubmitReinitStages() error {
	cfg := j.Cfg
	d := j.D
	if err := d.Submit(j.fnOr(FnReinitStep), cfg.Partitions, j.gridParams(nil),
		j.PhiTmp.ReadStencil(), j.PhiNext.Write(), j.Resid.Write()); err != nil {
		return err
	}
	if err := d.Submit(j.fnOr(FnReinitCopy), cfg.Partitions, j.gridParams(nil),
		j.PhiNext.Read(), j.PhiTmp.Write()); err != nil {
		return err
	}
	return d.Submit(j.fnOr(FnReduceResid), 1, j.reduceParams(nil),
		j.Resid.ReadGrouped(), j.ResidSum.WriteShared())
}

// SubmitMidStages submits the mid block (stages 12-14).
func (j *Job) SubmitMidStages() error {
	cfg := j.Cfg
	d := j.D
	if err := d.Submit(j.fnOr(FnExtrapolate), cfg.Partitions, j.gridParams(nil),
		j.PhiTmp.Read(), j.UStar.Read(), j.VStar.Read(),
		j.UStar.Write(), j.VStar.Write()); err != nil {
		return err
	}
	if err := d.Submit(j.fnOr(FnComputeDiv), cfg.Partitions, j.gridParams(nil),
		j.UStar.ReadStencil(), j.VStar.ReadStencil(), j.Div.Write()); err != nil {
		return err
	}
	return d.Submit(j.fnOr(FnBuildRHS), cfg.Partitions, j.gridParams(nil),
		j.Div.Read(), j.Dt.ReadShared(), j.RHS.Write())
}

// SubmitJacobiStages submits one projection iteration (stages 15-17).
func (j *Job) SubmitJacobiStages() error {
	cfg := j.Cfg
	d := j.D
	if err := d.Submit(j.fnOr(FnJacobiStep), cfg.Partitions, j.gridParams(nil),
		j.Press.ReadStencil(), j.RHS.Read(), j.PressNext.Write(), j.Presid.Write()); err != nil {
		return err
	}
	if err := d.Submit(j.fnOr(FnJacobiCopy), cfg.Partitions, j.gridParams(nil),
		j.PressNext.Read(), j.Press.Write()); err != nil {
		return err
	}
	return d.Submit(j.fnOr(FnReducePresid), 1, j.reduceParams(nil),
		j.Presid.ReadGrouped(), j.PresidSum.WriteShared())
}

// SubmitPostStages submits the post block (stages 18-23).
func (j *Job) SubmitPostStages() error {
	cfg := j.Cfg
	P := cfg.Partitions
	d := j.D
	if err := d.Submit(j.fnOr(FnApplyPressure), P, j.gridParams(nil),
		j.Press.ReadStencil(), j.UStar.Read(), j.VStar.Read(), j.Dt.ReadShared(),
		j.U.Write(), j.V.Write()); err != nil {
		return err
	}
	if err := d.Submit(j.fnOr(FnAdvectParticles), P, j.gridParams(nil),
		j.Particles.ReadStencil(), j.U.Read(), j.V.Read(), j.Dt.ReadShared(),
		j.PTmp.Write(), j.PCount.Write()); err != nil {
		return err
	}
	if err := d.Submit(j.fnOr(FnParticleCorrect), P, j.gridParams(nil),
		j.PTmp.Read(), j.PhiTmp.Read(), j.Phi.Write()); err != nil {
		return err
	}
	if err := d.Submit(j.fnOr(FnReseedParticles), P, j.gridParams(nil),
		j.Phi.Read(), j.Particles.Write()); err != nil {
		return err
	}
	if err := d.Submit(j.fnOr(FnDiagnostics), P, j.gridParams(nil),
		j.U.Read(), j.V.Read(), j.Phi.Read(),
		j.Energy.Write(), j.Mass.Write(), j.Vort.Write()); err != nil {
		return err
	}
	return d.Submit(j.fnOr(FnReduceDiag), 1, j.reduceParams(nil),
		j.Energy.ReadGrouped(), j.Mass.ReadGrouped(), j.Vort.ReadGrouped(),
		j.Dt.ReadShared(), j.SimTime.ReadShared(),
		j.EnergySum.WriteShared(), j.MassSum.WriteShared(),
		j.VortSum.WriteShared(), j.SimTime.WriteShared())
}

// InstallTemplates records all five basic blocks, executing one substep
// (with one iteration of each inner solver) in the process.
func (j *Job) InstallTemplates() error {
	record := func(name string, submit func() error) error {
		if err := j.D.BeginTemplate(name); err != nil {
			return err
		}
		if err := submit(); err != nil {
			return err
		}
		return j.D.EndTemplate(name)
	}
	if err := record(BlockPre, j.SubmitPreStages); err != nil {
		return err
	}
	if err := record(BlockReinit, j.SubmitReinitStages); err != nil {
		return err
	}
	if err := record(BlockMid, j.SubmitMidStages); err != nil {
		return err
	}
	if err := record(BlockJacobi, j.SubmitJacobiStages); err != nil {
		return err
	}
	return record(BlockPost, j.SubmitPostStages)
}

func (j *Job) scalarValue(v Var) (float64, error) {
	vals, err := j.D.GetFloats(v, 0)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, nil
	}
	return vals[0], nil
}

// RunSubstep executes one CFL substep with data-dependent solver loops
// (or fixed trip counts in the simulated profile). Templates must be
// installed.
//
// The solver loops deliberately stay on the v1 explicit Get-per-iteration
// surface, as the counter-example to kmeans/lr's InstantiateWhile: the
// simulated profile's trip counts are not predicate-driven at all, and
// the real profile's exits mix a residual threshold with per-loop
// iteration statistics the driver wants to observe — control flow a
// single controller-evaluated predicate cannot express.
func (j *Job) RunSubstep() (SubstepStats, error) {
	var st SubstepStats
	cfg := j.Cfg
	if err := j.D.Instantiate(BlockPre); err != nil {
		return st, err
	}
	// Inner loop 1: redistancing until the residual settles.
	for {
		if err := j.D.Instantiate(BlockReinit); err != nil {
			return st, err
		}
		st.ReinitIters++
		if cfg.Simulated {
			if st.ReinitIters >= cfg.SimReinit {
				break
			}
			continue
		}
		r, err := j.scalarValue(j.ResidSum)
		if err != nil {
			return st, err
		}
		if r < cfg.ReinitTol || st.ReinitIters >= cfg.MaxReinit {
			break
		}
	}
	if err := j.D.Instantiate(BlockMid); err != nil {
		return st, err
	}
	// Inner loop 2: Jacobi projection until the residual settles.
	for {
		if err := j.D.Instantiate(BlockJacobi); err != nil {
			return st, err
		}
		st.JacobiIters++
		if cfg.Simulated {
			if st.JacobiIters >= cfg.SimJacobi {
				break
			}
			continue
		}
		r, err := j.scalarValue(j.PresidSum)
		if err != nil {
			return st, err
		}
		if r < cfg.PressTol || st.JacobiIters >= cfg.MaxJacobi {
			break
		}
	}
	if err := j.D.Instantiate(BlockPost); err != nil {
		return st, err
	}
	if !cfg.Simulated {
		dt, err := j.scalarValue(j.Dt)
		if err != nil {
			return st, err
		}
		st.Dt = dt
	}
	return st, nil
}

// FrameStats aggregates a frame's substeps.
type FrameStats struct {
	Substeps    int
	ReinitIters int
	JacobiIters int
	EndTime     float64
}

// RunFrame advances simulated time to the next frame boundary — the
// middle loop, whose trip count depends on the CFL timesteps the data
// produced.
func (j *Job) RunFrame(frame int) (FrameStats, error) {
	var fs FrameStats
	cfg := j.Cfg
	target := float64(frame) * cfg.FrameDt
	for {
		if cfg.Simulated {
			if fs.Substeps >= cfg.SimSubsteps {
				return fs, nil
			}
		} else {
			t, err := j.scalarValue(j.SimTime)
			if err != nil {
				return fs, err
			}
			fs.EndTime = t
			if t >= target || fs.Substeps >= cfg.MaxSubsteps {
				return fs, nil
			}
		}
		st, err := j.RunSubstep()
		if err != nil {
			return fs, err
		}
		fs.Substeps++
		fs.ReinitIters += st.ReinitIters
		fs.JacobiIters += st.JacobiIters
	}
}
