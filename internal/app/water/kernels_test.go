package water

import (
	"math"
	"testing"
	"testing/quick"

	"nimbus/internal/fn"
	"nimbus/internal/params"
)

func TestStripRoundTrip(t *testing.T) {
	s := Strip{Rows: 3, Cols: 4, FirstRow: 6, V: make([]float64, 12)}
	for i := range s.V {
		s.V[i] = float64(i) * 0.5
	}
	got := DecodeStrip(EncodeStrip(s))
	if got.Rows != 3 || got.Cols != 4 || got.FirstRow != 6 {
		t.Fatalf("geometry lost: %+v", got)
	}
	for i := range s.V {
		if got.V[i] != s.V[i] {
			t.Fatalf("value %d mismatch", i)
		}
	}
	if z := DecodeStrip(nil); z.Rows != 0 {
		t.Fatal("empty strip should decode to zero")
	}
}

func TestHaloClamping(t *testing.T) {
	mid := Strip{Rows: 2, Cols: 2, FirstRow: 2, V: []float64{1, 2, 3, 4}}
	above := Strip{Rows: 2, Cols: 2, FirstRow: 0, V: []float64{5, 6, 7, 8}}
	below := Strip{Rows: 2, Cols: 2, FirstRow: 4, V: []float64{9, 10, 11, 12}}
	h := assembleHalo([]Strip{above, mid, below}, 2)
	if h.get(-1, 0) != 7 { // last row of the strip above
		t.Fatalf("above halo = %v", h.get(-1, 0))
	}
	if h.get(2, 1) != 10 { // first row of the strip below
		t.Fatalf("below halo = %v", h.get(2, 1))
	}
	if h.get(0, -5) != h.get(0, 0) || h.get(0, 99) != h.get(0, 1) {
		t.Fatal("column clamping broken")
	}
	// Top boundary: no above strip clamps to row 0.
	hTop := assembleHalo([]Strip{mid, below}, 2)
	if hTop.get(-1, 0) != hTop.get(0, 0) {
		t.Fatal("boundary clamping broken")
	}
}

func TestInterpolate(t *testing.T) {
	h := halo{Strip: Strip{Rows: 2, Cols: 2, V: []float64{0, 1, 2, 3}}}
	if v := h.interpolate(0, 0); v != 0 {
		t.Fatalf("corner = %v", v)
	}
	if v := h.interpolate(0.5, 0.5); v != 1.5 {
		t.Fatalf("center = %v (bilinear of 0,1,2,3)", v)
	}
}

// TestJacobiReducesResidual: repeated Jacobi steps must drive the
// pressure residual down — the property the data-dependent projection
// loop depends on.
func TestJacobiReducesResidual(t *testing.T) {
	const rows, cols = 8, 8
	press := Strip{Rows: rows, Cols: cols, FirstRow: 0, V: make([]float64, rows*cols)}
	rhs := Strip{Rows: rows, Cols: cols, FirstRow: 0, V: make([]float64, rows*cols)}
	rhs.Set(4, 4, 1) // a point source
	var lastResid float64
	for iter := 0; iter < 30; iter++ {
		ctx := fn.NewCtx(1, nil,
			[][]byte{EncodeStrip(press), EncodeStrip(rhs)},
			[][]byte{EncodeStrip(press), scalar(0)})
		if err := jacobiStep(ctx); err != nil {
			t.Fatal(err)
		}
		out, _ := ctx.Result(0)
		press = DecodeStrip(out)
		res, _ := ctx.Result(1)
		r := scalarOf(res)
		if iter >= 5 && r > lastResid*1.5 {
			t.Fatalf("residual diverging at iter %d: %v -> %v", iter, lastResid, r)
		}
		lastResid = r
	}
	if lastResid > 0.01 {
		t.Fatalf("Jacobi did not converge: residual %v", lastResid)
	}
}

// TestReinitConverges: redistancing must settle (residual → small).
func TestReinitConverges(t *testing.T) {
	const rows, cols = 8, 8
	phi := Strip{Rows: rows, Cols: cols, FirstRow: 0, V: make([]float64, rows*cols)}
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			phi.Set(r, c, (float64(r)-4)*2) // badly scaled distance field
		}
	}
	var resid float64
	for iter := 0; iter < 40; iter++ {
		ctx := fn.NewCtx(1, nil,
			[][]byte{EncodeStrip(phi)},
			[][]byte{EncodeStrip(phi), scalar(0)})
		if err := reinitStep(ctx); err != nil {
			t.Fatal(err)
		}
		out, _ := ctx.Result(0)
		phi = DecodeStrip(out)
		res, _ := ctx.Result(1)
		resid = scalarOf(res)
	}
	if resid > 0.05 {
		t.Fatalf("reinit residual still %v after 40 iters", resid)
	}
	// Near the interface the gradient magnitude should approach 1.
	g := math.Abs(phi.At(5, 4) - phi.At(4, 4))
	if g < 0.5 || g > 1.6 {
		t.Fatalf("redistanced gradient = %v, want ~1", g)
	}
}

func TestParticlesRoundTrip(t *testing.T) {
	pts := []float64{1.5, 2.5, 3.5, 0.5}
	raw := encodeParticles(pts, 0, 4, 4)
	got, firstRow, rows, cols := decodeParticles(raw)
	if len(got) != 4 || got[0] != 1.5 || firstRow != 0 || rows != 4 || cols != 4 {
		t.Fatalf("particles round trip: %v %d %d %d", got, firstRow, rows, cols)
	}
}

// Property: computeSpeed's max is an upper bound of every cell speed.
func TestQuickComputeSpeedMax(t *testing.T) {
	f := func(raw []float64) bool {
		n := len(raw) / 2
		if n == 0 {
			return true
		}
		u := Strip{Rows: 1, Cols: n, V: raw[:n]}
		v := Strip{Rows: 1, Cols: n, V: raw[n : 2*n]}
		for i := 0; i < n; i++ {
			if math.IsNaN(u.V[i]) || math.IsInf(u.V[i], 0) ||
				math.IsNaN(v.V[i]) || math.IsInf(v.V[i], 0) {
				return true
			}
		}
		ctx := fn.NewCtx(1, nil,
			[][]byte{EncodeStrip(u), EncodeStrip(v)},
			[][]byte{nil, nil})
		if err := computeSpeed(ctx); err != nil {
			return false
		}
		maxRaw, _ := ctx.Result(1)
		maxS := scalarOf(maxRaw)
		speedRaw, _ := ctx.Result(0)
		speed := DecodeStrip(speedRaw)
		for i := 0; i < n; i++ {
			if speed.V[i] > maxS+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestScalarHelpers(t *testing.T) {
	if scalarOf(scalar(3.5)) != 3.5 {
		t.Fatal("scalar round trip")
	}
	if scalarOf(nil) != 0 {
		t.Fatal("empty scalar should read 0")
	}
	if scalarOf(params.NewEncoder(8).Uint(1).Blob()) != 0 {
		t.Fatal("mistyped scalar should read 0")
	}
}
