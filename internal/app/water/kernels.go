package water

import (
	"math"

	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// Function IDs for the 23 computational stages (the paper's benchmark has
// 21; the two extra are the copy-back halves of the iterative solvers,
// which PhysBAM folds into its solver stages).
const (
	FnInitField ids.FunctionID = 150 + iota
	FnComputeSpeed
	FnReduceMaxSpeed
	FnBodyForce
	FnAdvectU
	FnAdvectV
	FnVelocityBC
	FnAdvectPhi
	FnPhiBC
	FnReinitStep
	FnReinitCopy
	FnReduceResid
	FnExtrapolate
	FnComputeDiv
	FnBuildRHS
	FnJacobiStep
	FnJacobiCopy
	FnReducePresid
	FnApplyPressure
	FnAdvectParticles
	FnParticleCorrect
	FnReseedParticles
	FnDiagnostics
	FnReduceDiag
)

// Register installs the water kernels into a registry.
func Register(reg *fn.Registry) {
	reg.MustRegister(FnInitField, "water/init-field", initField)
	reg.MustRegister(FnComputeSpeed, "water/compute-speed", computeSpeed)
	reg.MustRegister(FnReduceMaxSpeed, "water/reduce-max-speed", reduceMaxSpeed)
	reg.MustRegister(FnBodyForce, "water/body-force", bodyForce)
	reg.MustRegister(FnAdvectU, "water/advect-u", advectComponent(0))
	reg.MustRegister(FnAdvectV, "water/advect-v", advectComponent(1))
	reg.MustRegister(FnVelocityBC, "water/velocity-bc", velocityBC)
	reg.MustRegister(FnAdvectPhi, "water/advect-phi", advectPhi)
	reg.MustRegister(FnPhiBC, "water/phi-bc", phiBC)
	reg.MustRegister(FnReinitStep, "water/reinit-step", reinitStep)
	reg.MustRegister(FnReinitCopy, "water/reinit-copy", copyStrip)
	reg.MustRegister(FnReduceResid, "water/reduce-resid", reduceScalarSum)
	reg.MustRegister(FnExtrapolate, "water/extrapolate", extrapolate)
	reg.MustRegister(FnComputeDiv, "water/compute-div", computeDiv)
	reg.MustRegister(FnBuildRHS, "water/build-rhs", buildRHS)
	reg.MustRegister(FnJacobiStep, "water/jacobi-step", jacobiStep)
	reg.MustRegister(FnJacobiCopy, "water/jacobi-copy", copyStrip)
	reg.MustRegister(FnReducePresid, "water/reduce-presid", reduceScalarSum)
	reg.MustRegister(FnApplyPressure, "water/apply-pressure", applyPressure)
	reg.MustRegister(FnAdvectParticles, "water/advect-particles", advectParticles)
	reg.MustRegister(FnParticleCorrect, "water/particle-correct", particleCorrect)
	reg.MustRegister(FnReseedParticles, "water/reseed-particles", reseedParticles)
	reg.MustRegister(FnDiagnostics, "water/diagnostics", diagnostics)
	reg.MustRegister(FnReduceDiag, "water/reduce-diag", reduceDiag)
}

// scalar encodes a scalar variable value.
func scalar(v ...float64) []byte {
	return params.NewEncoder(8*len(v) + 8).Floats(v).Blob()
}

// scalarOf decodes a scalar variable (0 if empty).
func scalarOf(raw []byte) float64 {
	vals := params.NewDecoder(params.Blob(raw)).Floats()
	if len(vals) == 0 {
		return 0
	}
	return vals[0]
}

// ownFirstRow reads the task's own strip geometry from its first write
// buffer (all strips of a partition share geometry, set at init).
func ownFirstRow(c *fn.Ctx) Strip { return DecodeStrip(c.WriteBuf(0)) }

// initField creates one strip of one field. Params: field kind, partition
// geometry.
func initField(c *fn.Ctx) error {
	dec := params.NewDecoder(c.Params)
	kind := dec.Uint()
	firstRow := int(dec.Int())
	rows := int(dec.Int())
	cols := int(dec.Int())
	totalRows := int(dec.Int())
	if err := dec.Err(); err != nil {
		return err
	}
	s := Strip{Rows: rows, Cols: cols, FirstRow: firstRow, V: make([]float64, rows*cols)}
	switch kind {
	case 0: // zero field (velocities, pressure, ...)
	case 1: // levelset: water fills the bottom third plus a falling column
		for r := 0; r < rows; r++ {
			for col := 0; col < cols; col++ {
				gr := float64(firstRow + r)
				surface := float64(totalRows) * 2 / 3
				d := surface - gr // positive above water in grid units
				// A pouring column near the left wall, upper region.
				cx, cy := float64(cols)/5, float64(totalRows)/5
				dc := math.Hypot(float64(col)-cx, gr-cy) - float64(cols)/10
				s.Set(r, col, math.Min(d, dc))
			}
		}
	case 2: // particles: seed near the interface, layout [n, r0,c0, ...]
		// Particles are re-derived in reseeding; start empty.
		c.SetWrite(0, encodeParticles(nil, firstRow, rows, cols))
		return nil
	}
	c.SetWrite(0, EncodeStrip(s))
	return nil
}

// computeSpeed writes per-cell speed and the strip's max speed.
func computeSpeed(c *fn.Ctx) error {
	u := DecodeStrip(c.Read(0))
	v := DecodeStrip(c.Read(1))
	speed := Strip{Rows: u.Rows, Cols: u.Cols, FirstRow: u.FirstRow,
		V: make([]float64, len(u.V))}
	maxS := 0.0
	for i := range u.V {
		s := math.Hypot(u.V[i], v.V[i])
		speed.V[i] = s
		if s > maxS {
			maxS = s
		}
	}
	c.SetWrite(0, EncodeStrip(speed))
	c.SetWrite(1, scalar(maxS))
	return nil
}

// reduceMaxSpeed turns the per-strip maxima into the CFL timestep.
// Params: cfl, h, dtMax.
func reduceMaxSpeed(c *fn.Ctx) error {
	dec := params.NewDecoder(c.Params)
	cfl := dec.Float()
	h := dec.Float()
	dtMax := dec.Float()
	maxS := 0.0
	for i := 0; i < c.NumReads(); i++ {
		if s := scalarOf(c.Read(i)); s > maxS {
			maxS = s
		}
	}
	dt := dtMax
	if maxS > 1e-9 {
		dt = math.Min(dtMax, cfl*h/maxS)
	}
	c.SetWrite(0, scalar(dt))
	c.SetWrite(1, scalar(maxS*dt/h)) // achieved CFL number
	return nil
}

// bodyForce applies gravity for dt.
func bodyForce(c *fn.Ctx) error {
	u := DecodeStrip(c.Read(0))
	v := DecodeStrip(c.Read(1))
	dt := scalarOf(c.Read(2))
	const g = 9.8
	uf := Strip{Rows: u.Rows, Cols: u.Cols, FirstRow: u.FirstRow, V: append([]float64(nil), u.V...)}
	vf := Strip{Rows: v.Rows, Cols: v.Cols, FirstRow: v.FirstRow, V: make([]float64, len(v.V))}
	for i := range v.V {
		vf.V[i] = v.V[i] + g*dt
	}
	c.SetWrite(0, EncodeStrip(uf))
	c.SetWrite(1, EncodeStrip(vf))
	return nil
}

// advectComponent returns a semi-Lagrangian advection kernel for velocity
// component comp (0 = u, 1 = v). Reads: uforce stencil ×3?, vforce
// stencil, dt — the stencil width is inferred from the read count.
func advectComponent(comp int) fn.Func {
	return func(c *fn.Ctx) error {
		own := ownFirstRow(c)
		n := (c.NumReads() - 1) / 2
		uh, next := decodeStencil(c.Read, 0, n, own.FirstRow)
		vh, _ := decodeStencil(c.Read, next, n, own.FirstRow)
		dt := scalarOf(c.Read(c.NumReads() - 1))
		src := &uh
		if comp == 1 {
			src = &vh
		}
		out := Strip{Rows: src.Rows, Cols: src.Cols, FirstRow: src.FirstRow,
			V: make([]float64, len(src.V))}
		for r := 0; r < src.Rows; r++ {
			for col := 0; col < src.Cols; col++ {
				// Backtrace the characteristic one step.
				ru := uh.get(r, col)
				rv := vh.get(r, col)
				out.Set(r, col, src.interpolate(float64(r)-dt*rv, float64(col)-dt*ru))
			}
		}
		c.SetWrite(0, EncodeStrip(out))
		return nil
	}
}

// velocityBC zeroes normal velocities at the domain walls. Params: total
// grid rows.
func velocityBC(c *fn.Ctx) error {
	totalRows := int(params.NewDecoder(c.Params).Int())
	u := DecodeStrip(c.Read(0))
	v := DecodeStrip(c.Read(1))
	for r := 0; r < u.Rows; r++ {
		u.Set(r, 0, 0)
		u.Set(r, u.Cols-1, 0)
	}
	for col := 0; col < v.Cols; col++ {
		if u.FirstRow == 0 {
			v.Set(0, col, 0)
		}
		if u.FirstRow+u.Rows == totalRows {
			v.Set(v.Rows-1, col, 0)
		}
	}
	c.SetWrite(0, EncodeStrip(u))
	c.SetWrite(1, EncodeStrip(v))
	return nil
}

// advectPhi semi-Lagrangian-advects the levelset.
func advectPhi(c *fn.Ctx) error {
	own := ownFirstRow(c)
	n := c.NumReads() - 3
	ph, next := decodeStencil(c.Read, 0, n, own.FirstRow)
	u := DecodeStrip(c.Read(next))
	v := DecodeStrip(c.Read(next + 1))
	dt := scalarOf(c.Read(c.NumReads() - 1))
	out := Strip{Rows: ph.Rows, Cols: ph.Cols, FirstRow: ph.FirstRow,
		V: make([]float64, len(ph.V))}
	for r := 0; r < ph.Rows; r++ {
		for col := 0; col < ph.Cols; col++ {
			out.Set(r, col, ph.interpolate(
				float64(r)-dt*v.At(r, col), float64(col)-dt*u.At(r, col)))
		}
	}
	c.SetWrite(0, EncodeStrip(out))
	return nil
}

// phiBC keeps the levelset bounded (air outside the walls).
func phiBC(c *fn.Ctx) error {
	p := DecodeStrip(c.Read(0))
	for i := range p.V {
		p.V[i] = clamp(p.V[i], -1e3, 1e3)
	}
	c.SetWrite(0, EncodeStrip(p))
	return nil
}

// reinitStep performs one redistancing iteration: pull |∇φ| toward 1 near
// the interface using Godunov upwind differences (central differences
// degenerate for the redistancing equation). Writes the next iterate and
// the strip's residual — the data the inner loop's termination reads.
func reinitStep(c *fn.Ctx) error {
	own := ownFirstRow(c)
	n := c.NumReads()
	ph, _ := decodeStencil(c.Read, 0, n, own.FirstRow)
	out := Strip{Rows: ph.Rows, Cols: ph.Cols, FirstRow: ph.FirstRow,
		V: make([]float64, len(ph.V))}
	const dtau = 0.3
	resid := 0.0
	sq := func(x float64) float64 { return x * x }
	for r := 0; r < ph.Rows; r++ {
		for col := 0; col < ph.Cols; col++ {
			p := ph.get(r, col)
			if math.Abs(p) >= 3 { // redistance near the interface only
				out.Set(r, col, p)
				continue
			}
			// One-sided differences toward each neighbor.
			a := p - ph.get(r, col-1) // backward x
			bb := ph.get(r, col+1) - p
			cc := p - ph.get(r-1, col) // backward y
			dd := ph.get(r+1, col) - p
			var g2 float64
			if p > 0 {
				g2 = math.Max(sq(math.Max(a, 0)), sq(math.Min(bb, 0))) +
					math.Max(sq(math.Max(cc, 0)), sq(math.Min(dd, 0)))
			} else {
				g2 = math.Max(sq(math.Min(a, 0)), sq(math.Max(bb, 0))) +
					math.Max(sq(math.Min(cc, 0)), sq(math.Max(dd, 0)))
			}
			grad := math.Sqrt(g2)
			sign := p / math.Sqrt(p*p+1)
			np := p - dtau*sign*(grad-1)
			out.Set(r, col, np)
			resid += math.Abs(np - p)
		}
	}
	c.SetWrite(0, EncodeStrip(out))
	c.SetWrite(1, scalar(resid/float64(len(ph.V)+1)))
	return nil
}

// copyStrip copies its read strip to its write strip (solver copy-back).
func copyStrip(c *fn.Ctx) error {
	c.SetWrite(0, append([]byte(nil), c.Read(0)...))
	return nil
}

// reduceScalarSum sums per-strip scalars into one scalar.
func reduceScalarSum(c *fn.Ctx) error {
	sum := 0.0
	for i := 0; i < c.NumReads(); i++ {
		sum += scalarOf(c.Read(i))
	}
	c.SetWrite(0, scalar(sum))
	return nil
}

// extrapolate damps velocity in the air region (φ > band).
func extrapolate(c *fn.Ctx) error {
	ph := DecodeStrip(c.Read(0))
	u := DecodeStrip(c.Read(1))
	v := DecodeStrip(c.Read(2))
	for i := range ph.V {
		if ph.V[i] > 2 {
			u.V[i] *= 0.5
			v.V[i] *= 0.5
		}
	}
	c.SetWrite(0, EncodeStrip(u))
	c.SetWrite(1, EncodeStrip(v))
	return nil
}

// computeDiv computes the velocity divergence.
func computeDiv(c *fn.Ctx) error {
	own := ownFirstRow(c)
	n := c.NumReads() / 2
	uh, next := decodeStencil(c.Read, 0, n, own.FirstRow)
	vh, _ := decodeStencil(c.Read, next, n, own.FirstRow)
	out := Strip{Rows: uh.Rows, Cols: uh.Cols, FirstRow: uh.FirstRow,
		V: make([]float64, len(uh.V))}
	for r := 0; r < uh.Rows; r++ {
		for col := 0; col < uh.Cols; col++ {
			dudx := (uh.get(r, col+1) - uh.get(r, col-1)) / 2
			dvdy := (vh.get(r+1, col) - vh.get(r-1, col)) / 2
			out.Set(r, col, dudx+dvdy)
		}
	}
	c.SetWrite(0, EncodeStrip(out))
	return nil
}

// buildRHS scales the divergence into the Poisson right-hand side.
func buildRHS(c *fn.Ctx) error {
	div := DecodeStrip(c.Read(0))
	dt := scalarOf(c.Read(1))
	if dt <= 1e-9 {
		dt = 1e-9
	}
	out := Strip{Rows: div.Rows, Cols: div.Cols, FirstRow: div.FirstRow,
		V: make([]float64, len(div.V))}
	for i := range div.V {
		out.V[i] = div.V[i] / dt
	}
	c.SetWrite(0, EncodeStrip(out))
	return nil
}

// jacobiStep performs one Jacobi iteration of the pressure Poisson solve,
// writing the next iterate and the strip residual (the projection loop's
// termination data).
func jacobiStep(c *fn.Ctx) error {
	own := ownFirstRow(c)
	n := c.NumReads() - 1
	ph, next := decodeStencil(c.Read, 0, n, own.FirstRow)
	rhs := DecodeStrip(c.Read(next))
	out := Strip{Rows: ph.Rows, Cols: ph.Cols, FirstRow: ph.FirstRow,
		V: make([]float64, len(ph.V))}
	resid := 0.0
	for r := 0; r < ph.Rows; r++ {
		for col := 0; col < ph.Cols; col++ {
			nb := ph.get(r-1, col) + ph.get(r+1, col) + ph.get(r, col-1) + ph.get(r, col+1)
			np := (nb - rhs.At(r, col)) / 4
			out.Set(r, col, np)
			resid += math.Abs(np - ph.get(r, col))
		}
	}
	c.SetWrite(0, EncodeStrip(out))
	c.SetWrite(1, scalar(resid/float64(len(ph.V)+1)))
	return nil
}

// applyPressure subtracts the pressure gradient from the starred
// velocities.
func applyPressure(c *fn.Ctx) error {
	own := ownFirstRow(c)
	n := c.NumReads() - 3
	ph, next := decodeStencil(c.Read, 0, n, own.FirstRow)
	u := DecodeStrip(c.Read(next))
	v := DecodeStrip(c.Read(next + 1))
	dt := scalarOf(c.Read(c.NumReads() - 1))
	for r := 0; r < u.Rows; r++ {
		for col := 0; col < u.Cols; col++ {
			gx := (ph.get(r, col+1) - ph.get(r, col-1)) / 2
			gy := (ph.get(r+1, col) - ph.get(r-1, col)) / 2
			u.Set(r, col, u.At(r, col)-dt*gx)
			v.Set(r, col, v.At(r, col)-dt*gy)
		}
	}
	c.SetWrite(0, EncodeStrip(u))
	c.SetWrite(1, EncodeStrip(v))
	return nil
}

// Particle strips: [n, firstRow, rows, cols, r0, c0, r1, c1, ...] with
// global row coordinates.
func encodeParticles(pts []float64, firstRow, rows, cols int) []byte {
	out := make([]float64, 0, 4+len(pts))
	out = append(out, float64(len(pts)/2), float64(firstRow), float64(rows), float64(cols))
	out = append(out, pts...)
	return params.NewEncoder(8*len(out) + 8).Floats(out).Blob()
}

func decodeParticles(raw []byte) (pts []float64, firstRow, rows, cols int) {
	vals := params.NewDecoder(params.Blob(raw)).Floats()
	if len(vals) < 4 {
		return nil, 0, 0, 0
	}
	n := int(vals[0])
	if 4+2*n > len(vals) {
		n = (len(vals) - 4) / 2
	}
	return vals[4 : 4+2*n], int(vals[1]), int(vals[2]), int(vals[3])
}

// advectParticles moves marker particles with the flow; particles landing
// in this task's strip (from it or its neighbors) are kept. Reads:
// particles stencil, u, v, dt. Writes: ptmp, pcount.
func advectParticles(c *fn.Ctx) error {
	ownPts, ownFirst, ownRows, cols := decodeParticles(c.WriteBuf(0))
	_ = ownPts
	n := c.NumReads() - 3
	u := DecodeStrip(c.Read(n))
	v := DecodeStrip(c.Read(n + 1))
	dt := scalarOf(c.Read(c.NumReads() - 1))
	if ownRows == 0 {
		ownFirst, ownRows, cols = u.FirstRow, u.Rows, u.Cols
	}
	var kept []float64
	for i := 0; i < n; i++ {
		pts, _, _, _ := decodeParticles(c.Read(i))
		for p := 0; p+1 < len(pts); p += 2 {
			gr, gc := pts[p], pts[p+1]
			lr := gr - float64(u.FirstRow)
			var du, dv float64
			if lr >= 0 && int(lr) < u.Rows && int(gc) >= 0 && int(gc) < u.Cols {
				du = u.At(int(lr), int(gc))
				dv = v.At(int(lr), int(gc))
			}
			nr, nc := gr+dt*dv, clamp(gc+dt*du, 0, float64(cols-1))
			if nr >= float64(ownFirst) && nr < float64(ownFirst+ownRows) {
				kept = append(kept, nr, nc)
			}
		}
	}
	c.SetWrite(0, encodeParticles(kept, ownFirst, ownRows, cols))
	c.SetWrite(1, scalar(float64(len(kept)/2)))
	return nil
}

// particleCorrect nudges the levelset toward the marker particles
// (the "particle" half of the particle-levelset method).
func particleCorrect(c *fn.Ctx) error {
	pts, _, _, _ := decodeParticles(c.Read(0))
	ph := DecodeStrip(c.Read(1))
	out := Strip{Rows: ph.Rows, Cols: ph.Cols, FirstRow: ph.FirstRow,
		V: append([]float64(nil), ph.V...)}
	for p := 0; p+1 < len(pts); p += 2 {
		lr := int(pts[p]) - ph.FirstRow
		lc := int(pts[p+1])
		if lr >= 0 && lr < ph.Rows && lc >= 0 && lc < ph.Cols {
			// Particles ride the interface; pull φ toward zero there.
			out.Set(lr, lc, out.At(lr, lc)*0.9)
		}
	}
	c.SetWrite(0, EncodeStrip(out))
	return nil
}

// reseedParticles re-seeds markers on interface cells.
func reseedParticles(c *fn.Ctx) error {
	ph := DecodeStrip(c.Read(0))
	var pts []float64
	for r := 0; r < ph.Rows; r++ {
		for col := 0; col < ph.Cols; col++ {
			if math.Abs(ph.At(r, col)) < 1 {
				pts = append(pts, float64(ph.FirstRow+r), float64(col))
			}
		}
	}
	c.SetWrite(0, encodeParticles(pts, ph.FirstRow, ph.Rows, ph.Cols))
	return nil
}

// diagnostics computes per-strip kinetic energy, liquid mass and
// vorticity magnitude.
func diagnostics(c *fn.Ctx) error {
	u := DecodeStrip(c.Read(0))
	v := DecodeStrip(c.Read(1))
	ph := DecodeStrip(c.Read(2))
	energy, mass, vort := 0.0, 0.0, 0.0
	for r := 0; r < u.Rows; r++ {
		for col := 0; col < u.Cols; col++ {
			i := r*u.Cols + col
			energy += (u.V[i]*u.V[i] + v.V[i]*v.V[i]) / 2
			if ph.V[i] < 0 {
				mass++
			}
			if col+1 < u.Cols && r+1 < u.Rows {
				vort += math.Abs((v.At(r, col+1) - v.At(r, col)) - (u.At(r+1, col) - u.At(r, col)))
			}
		}
	}
	c.SetWrite(0, scalar(energy))
	c.SetWrite(1, scalar(mass))
	c.SetWrite(2, scalar(vort))
	return nil
}

// reduceDiag reduces the diagnostics and advances simulated time by dt.
// Reads: energy grouped, mass grouped, vort grouped, dt, simtime(rw).
// Writes: energysum, masssum, vortsum, simtime.
func reduceDiag(c *fn.Ctx) error {
	n := (c.NumReads() - 2) / 3
	e, m, w := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		e += scalarOf(c.Read(i))
		m += scalarOf(c.Read(n + i))
		w += scalarOf(c.Read(2*n + i))
	}
	dt := scalarOf(c.Read(3 * n))
	t := scalarOf(c.Read(3*n + 1))
	c.SetWrite(0, scalar(e))
	c.SetWrite(1, scalar(m))
	c.SetWrite(2, scalar(w))
	c.SetWrite(3, scalar(t+dt))
	return nil
}
