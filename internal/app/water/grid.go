// Package water implements the paper's complex-application workload
// (§5.5): a particle-levelset fluid simulation in the mold of PhysBAM's
// water benchmark, reduced to a 2D grid but preserving exactly the control
// structure the paper stresses:
//
//   - a triply nested loop: frames → CFL-limited substeps (data-dependent
//     step count) → iterative levelset reinitialization and pressure
//     projection (data-dependent iteration counts);
//   - 21 named computational stages per substep;
//   - 40 variables (23 strip-partitioned grids/particle sets plus 17
//     scalars);
//   - a wide task-length distribution with tasks down to the ~100µs range
//     on small strips.
//
// The grid is split into horizontal strips, one task per strip, with halo
// exchange expressed through the Stencil access pattern — the implied
// copies live inside the worker templates. The kernels are deliberately
// simple numerics (semi-Lagrangian advection, Jacobi projection,
// Eikonal-style redistancing) but are real data-dependent computations:
// solver iteration counts and substep counts come out of the data.
package water

import (
	"math"

	"nimbus/internal/params"
)

// Strip is one horizontal slab of a scalar field: Rows x Cols values plus
// its first global row, so kernels can identify neighbors and boundaries.
type Strip struct {
	Rows, Cols int
	FirstRow   int
	V          []float64
}

// EncodeStrip serializes a strip.
func EncodeStrip(s Strip) []byte {
	out := make([]float64, 0, 3+len(s.V))
	out = append(out, float64(s.Rows), float64(s.Cols), float64(s.FirstRow))
	out = append(out, s.V...)
	return params.NewEncoder(8*len(out) + 8).Floats(out).Blob()
}

// DecodeStrip deserializes a strip; a zero strip decodes from empty data.
func DecodeStrip(raw []byte) Strip {
	vals := params.NewDecoder(params.Blob(raw)).Floats()
	if len(vals) < 3 {
		return Strip{}
	}
	return Strip{
		Rows:     int(vals[0]),
		Cols:     int(vals[1]),
		FirstRow: int(vals[2]),
		V:        vals[3:],
	}
}

// At reads cell (r, c) of the strip (local row index).
func (s *Strip) At(r, c int) float64 { return s.V[r*s.Cols+c] }

// Set writes cell (r, c).
func (s *Strip) Set(r, c int, v float64) { s.V[r*s.Cols+c] = v }

// halo is a strip plus its neighbor rows, assembled from a stencil read:
// row -1 is the last row of the strip above, row Rows is the first row of
// the strip below; at domain boundaries the edge row is clamped.
type halo struct {
	Strip
	above []float64 // row -1, nil at the top boundary
	below []float64 // row Rows, nil at the bottom boundary
}

// get reads with halo and boundary clamping: r may be -1..Rows, c is
// clamped to [0, Cols-1].
func (h *halo) get(r, c int) float64 {
	if c < 0 {
		c = 0
	}
	if c >= h.Cols {
		c = h.Cols - 1
	}
	switch {
	case r < 0:
		if h.above == nil {
			return h.At(0, c)
		}
		return h.above[c]
	case r >= h.Rows:
		if h.below == nil {
			return h.At(h.Rows-1, c)
		}
		return h.below[c]
	default:
		return h.At(r, c)
	}
}

// assembleHalo builds a halo view from the strips of one stencil read
// (2 or 3 strips, sorted by FirstRow; the middle one — identified by
// matching firstRow — is the task's own).
func assembleHalo(strips []Strip, ownFirstRow int) halo {
	var h halo
	for i := range strips {
		if strips[i].FirstRow == ownFirstRow {
			h.Strip = strips[i]
		}
	}
	for i := range strips {
		s := &strips[i]
		switch {
		case s.FirstRow+s.Rows == ownFirstRow && s.Rows > 0:
			h.above = s.V[(s.Rows-1)*s.Cols : s.Rows*s.Cols]
		case h.Rows > 0 && s.FirstRow == ownFirstRow+h.Rows && s.Rows > 0:
			h.below = s.V[0:s.Cols]
		}
	}
	return h
}

// decodeStencil decodes n consecutive stencil strips from a task's reads.
func decodeStencil(reads func(int) []byte, start, n int, ownFirstRow int) (halo, int) {
	strips := make([]Strip, n)
	for i := 0; i < n; i++ {
		strips[i] = DecodeStrip(reads(start + i))
	}
	return assembleHalo(strips, ownFirstRow), start + n
}

// clamp limits v to [lo, hi].
func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// interpolate samples a halo bilinearly at fractional local coordinates.
func (h *halo) interpolate(r, c float64) float64 {
	r = clamp(r, -1, float64(h.Rows))
	c = clamp(c, 0, float64(h.Cols-1))
	r0 := math.Floor(r)
	c0 := math.Floor(c)
	fr := r - r0
	fc := c - c0
	ir, ic := int(r0), int(c0)
	v00 := h.get(ir, ic)
	v01 := h.get(ir, ic+1)
	v10 := h.get(ir+1, ic)
	v11 := h.get(ir+1, ic+1)
	return v00*(1-fr)*(1-fc) + v01*(1-fr)*fc + v10*fr*(1-fc) + v11*fr*fc
}
