package water_test

import (
	"math"
	"testing"

	"nimbus/internal/app/water"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func startWater(t *testing.T, workers int, cfg water.Config) (*cluster.Cluster, *water.Job) {
	t.Helper()
	reg := fn.NewRegistry()
	water.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: workers, Registry: reg, Logf: t.Logf})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Stop)
	d, err := c.Driver("water-test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	j, err := water.Setup(d, cfg)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	return c, j
}

// TestSimulationRuns drives two frames of the triply nested loop and
// checks the physics stays sane: finite diagnostics, liquid present, and
// genuinely data-dependent inner-loop counts.
func TestSimulationRuns(t *testing.T) {
	c, j := startWater(t, 4, water.Config{Rows: 32, Cols: 16, Partitions: 8})
	if err := j.InstallTemplates(); err != nil {
		t.Fatalf("templates: %v", err)
	}
	totalJacobi := 0
	for frame := 1; frame <= 2; frame++ {
		fs, err := j.RunFrame(frame)
		if err != nil {
			t.Fatalf("frame %d: %v", frame, err)
		}
		if fs.Substeps == 0 {
			t.Fatalf("frame %d took no substeps", frame)
		}
		totalJacobi += fs.JacobiIters
	}
	mass, err := j.D.GetFloats(j.MassSum, 0)
	if err != nil {
		t.Fatalf("mass: %v", err)
	}
	if len(mass) == 0 || mass[0] <= 0 {
		t.Errorf("liquid mass vanished: %v", mass)
	}
	energy, err := j.D.GetFloats(j.EnergySum, 0)
	if err != nil {
		t.Fatalf("energy: %v", err)
	}
	if len(energy) == 0 || math.IsNaN(energy[0]) || math.IsInf(energy[0], 0) {
		t.Errorf("energy diverged: %v", energy)
	}
	if totalJacobi <= 2 {
		t.Errorf("projection solver barely iterated (%d): loop not data-dependent?", totalJacobi)
	}
	// Five basic blocks must have been recorded, and the repeated solver
	// iterations must hit the fast path.
	var built, inst uint64
	c.Controller.Do(func() {
		built = c.Controller.Stats.TemplatesBuilt.Load()
		inst = c.Controller.Stats.Instantiations.Load()
	})
	if built != 5 {
		t.Errorf("templates built = %d, want 5", built)
	}
	if inst < 10 {
		t.Errorf("instantiations = %d, expected the nested loops to reuse templates", inst)
	}
}

// TestSimulatedProfile runs the calibrated-sleep profile (used by the
// Figure 11 benchmark) for one frame.
func TestSimulatedProfile(t *testing.T) {
	_, j := startWater(t, 4, water.Config{
		Rows: 32, Cols: 16, Partitions: 8,
		Simulated: true, SimSubsteps: 2, SimReinit: 2, SimJacobi: 3,
		GridTaskDuration: 200e3, ReduceTaskDuration: 50e3, // 200µs / 50µs
	})
	if err := j.InstallTemplates(); err != nil {
		t.Fatalf("templates: %v", err)
	}
	fs, err := j.RunFrame(1)
	if err != nil {
		t.Fatalf("frame: %v", err)
	}
	if fs.Substeps != 2 || fs.ReinitIters != 4 || fs.JacobiIters != 6 {
		t.Errorf("simulated trip counts wrong: %+v", fs)
	}
}

// TestTimeAdvances checks the middle loop's controlling quantity moves.
func TestTimeAdvances(t *testing.T) {
	_, j := startWater(t, 2, water.Config{Rows: 16, Cols: 8, Partitions: 4})
	if err := j.InstallTemplates(); err != nil {
		t.Fatalf("templates: %v", err)
	}
	st, err := j.RunSubstep()
	if err != nil {
		t.Fatalf("substep: %v", err)
	}
	if st.Dt <= 0 {
		t.Errorf("dt = %v, want > 0", st.Dt)
	}
	tv, err := j.D.GetFloats(j.SimTime, 0)
	if err != nil || len(tv) == 0 {
		t.Fatalf("simtime: %v %v", tv, err)
	}
	if tv[0] <= 0 {
		t.Errorf("simulated time did not advance: %v", tv[0])
	}
}
