package lr_test

import (
	"reflect"
	"testing"
	"time"

	"nimbus/internal/app/lr"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func startLR(t *testing.T, workers int, cfg lr.Config) (*cluster.Cluster, *lr.Job) {
	t.Helper()
	reg := fn.NewRegistry()
	lr.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: workers, Registry: reg, Logf: t.Logf})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Stop)
	d, err := c.Driver("lr-test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	j, err := lr.Setup(d, cfg)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	return c, j
}

// TestTrainingConverges checks that the real-math profile actually learns:
// the gradient norm shrinks and the held-out error beats chance by a wide
// margin.
func TestTrainingConverges(t *testing.T) {
	_, j := startLR(t, 4, lr.Config{Partitions: 8, Features: 4, RowsPerPart: 200})
	if err := j.InstallTemplates(); err != nil {
		t.Fatalf("templates: %v", err)
	}
	var first, last float64
	for i := 0; i < 20; i++ {
		if err := j.Optimize(); err != nil {
			t.Fatalf("optimize %d: %v", i, err)
		}
		g, err := j.GradNorm()
		if err != nil {
			t.Fatalf("grad norm: %v", err)
		}
		if i == 0 {
			first = g
		}
		last = g
	}
	if !(last < first) {
		t.Errorf("gradient norm did not shrink: first %v, last %v", first, last)
	}
	if err := j.Estimate(); err != nil {
		t.Fatalf("estimate: %v", err)
	}
	e, err := j.ErrorValue()
	if err != nil {
		t.Fatalf("error value: %v", err)
	}
	if e >= 0.35 {
		t.Errorf("held-out error %v, want < 0.35", e)
	}
}

// TestNestedLoopTrain runs the full data-dependent nested loop of paper
// Figure 3a end to end.
func TestNestedLoopTrain(t *testing.T) {
	c, j := startLR(t, 4, lr.Config{Partitions: 8, Features: 4, RowsPerPart: 150})
	outer, inner, err := j.Train(0.02, 0.2, 5, 25)
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	if outer < 1 || inner < 1 {
		t.Fatalf("train ran outer=%d inner=%d", outer, inner)
	}
	// The alternation between the optimize and estimate blocks exercises
	// the patch machinery; tight inner loops must auto-validate.
	var auto, validations uint64
	c.Controller.Do(func() {
		auto = c.Controller.Stats.AutoValidations.Load()
		validations = c.Controller.Stats.Validations.Load()
	})
	if auto == 0 {
		t.Errorf("inner loop iterations should auto-validate (got 0 auto, %d full)", validations)
	}
}

// TestTrainPredicateMatchesExplicit runs the same training job twice on
// fresh clusters with the same seed: once with the controller-evaluated
// inner loop (Train) and once with the per-iteration GradNorm Get loop
// (TrainExplicit). Iteration counts and learned coefficients must match
// exactly.
func TestTrainPredicateMatchesExplicit(t *testing.T) {
	cfg := lr.Config{Partitions: 8, Features: 4, RowsPerPart: 150, Seed: 5}
	const gradTh, errTh, maxOuter, maxInner = 0.02, 0.2, 5, 25

	_, j1 := startLR(t, 4, cfg)
	predOuter, predInner, err := j1.Train(gradTh, errTh, maxOuter, maxInner)
	if err != nil {
		t.Fatalf("predicate train: %v", err)
	}
	predCoeff, err := j1.CoeffValue()
	if err != nil {
		t.Fatalf("predicate coeff: %v", err)
	}

	_, j2 := startLR(t, 4, cfg)
	explOuter, explInner, err := j2.TrainExplicit(gradTh, errTh, maxOuter, maxInner)
	if err != nil {
		t.Fatalf("explicit train: %v", err)
	}
	explCoeff, err := j2.CoeffValue()
	if err != nil {
		t.Fatalf("explicit coeff: %v", err)
	}

	if predOuter != explOuter || predInner != explInner {
		t.Fatalf("predicate train ran outer=%d inner=%d, explicit outer=%d inner=%d",
			predOuter, predInner, explOuter, explInner)
	}
	if !reflect.DeepEqual(predCoeff, explCoeff) {
		t.Fatalf("coefficients diverge:\n predicate %v\n explicit  %v", predCoeff, explCoeff)
	}
}

// TestSimulatedProfile checks the calibrated-sleep profile preserves the
// stage structure (it is what the scaling experiments run).
func TestSimulatedProfile(t *testing.T) {
	_, j := startLR(t, 4, lr.Config{
		Partitions: 8, Simulated: true,
		TaskDuration: 100 * time.Microsecond, ReduceDuration: 50 * time.Microsecond,
	})
	if err := j.InstallTemplates(); err != nil {
		t.Fatalf("templates: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Optimize(); err != nil {
			t.Fatalf("optimize: %v", err)
		}
	}
	if err := j.D.Barrier(); err != nil {
		t.Fatalf("barrier: %v", err)
	}
}
