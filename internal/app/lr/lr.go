// Package lr implements the paper's running example (Figure 3): training
// logistic regression with a nested loop — an inner loop optimizing the
// coefficients by gradient descent and an outer loop updating model
// parameters from a held-out estimation error.
//
// The stage structure matches the paper's evaluation workload: a parallel
// Gradient stage over the training partitions, a two-level reduction tree
// (application-level, as in the Naiad and Nimbus implementations of §5.1),
// a coefficient update, and an Estimate stage over held-out data with its
// own reduction.
//
// Two profiles are provided:
//
//   - Real: tasks compute actual logistic gradients over synthetic data;
//     used by the examples and correctness tests.
//   - Simulated: tasks occupy executor slots for a calibrated duration
//     (fn.Sim) without burning CPU; used by the scaling experiments where
//     hundreds of simulated workers share one machine.
package lr

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// Function IDs (stable across controller and workers).
const (
	FnGenData ids.FunctionID = 110 + iota
	FnGradient
	FnReduceGrad
	FnApplyGrad
	FnEstimate
	FnReduceErr
	FnUpdateModel
)

// Config describes an LR job.
type Config struct {
	// Partitions is the number of training partitions (= gradient tasks).
	Partitions int
	// Features is the model dimensionality.
	Features int
	// RowsPerPart is the number of training rows per partition.
	RowsPerPart int
	// ReduceFan is the first-level reduction fan-in: Partitions must be
	// divisible by it. The reduction tree has Partitions/ReduceFan
	// level-one tasks and one root task.
	ReduceFan int
	// LearningRate scales gradient steps.
	LearningRate float64
	// Seed makes data generation deterministic.
	Seed int64
	// Simulated switches task bodies to calibrated sleeps.
	Simulated bool
	// TaskDuration is the simulated Gradient/Estimate task time
	// (paper-calibrated default: 5ms — 100GB over 8000 tasks on
	// c3.2xlarge cores).
	TaskDuration time.Duration
	// ReduceDuration is the simulated reduction task time (default 1ms).
	ReduceDuration time.Duration
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Partitions == 0 {
		c.Partitions = 8
	}
	if c.Features == 0 {
		c.Features = 8
	}
	if c.RowsPerPart == 0 {
		c.RowsPerPart = 64
	}
	if c.ReduceFan == 0 {
		c.ReduceFan = reduceFanFor(c.Partitions)
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.5
	}
	if c.TaskDuration == 0 {
		c.TaskDuration = 5 * time.Millisecond
	}
	if c.ReduceDuration == 0 {
		c.ReduceDuration = time.Millisecond
	}
	return c
}

// reduceFanFor picks a first-level fan-in that divides p, near sqrt(p).
func reduceFanFor(p int) int {
	best := 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			best = f
		}
	}
	if best < 1 {
		best = 1
	}
	return best
}

// Job is a set-up LR job bound to a driver session.
type Job struct {
	Cfg Config
	D   *driver.Driver

	TData Var // training data, Partitions
	EData Var // estimation data, Partitions
	Coeff Var // coefficients, scalar
	Param Var // model parameters (outer loop), scalar
	Grad  Var // per-partition gradients
	GSum  Var // level-one gradient sums (Partitions/ReduceFan)
	GNorm Var // gradient norm, scalar
	Errs  Var // per-partition errors
	ESum  Var // level-one error sums
	Error Var // scalar error
}

// Var aliases driver.Var for brevity.
type Var = driver.Var

// Register installs the LR functions into a registry.
func Register(reg *fn.Registry) {
	reg.MustRegister(FnGenData, "lr/gen-data", genData)
	reg.MustRegister(FnGradient, "lr/gradient", gradient)
	reg.MustRegister(FnReduceGrad, "lr/reduce-grad", reduceVecs)
	reg.MustRegister(FnApplyGrad, "lr/apply-grad", applyGrad)
	reg.MustRegister(FnEstimate, "lr/estimate", estimate)
	reg.MustRegister(FnReduceErr, "lr/reduce-err", reduceVecs)
	reg.MustRegister(FnUpdateModel, "lr/update-model", updateModel)
}

// Setup declares the job's variables and generates its data on the
// workers (generation runs as per-task parameterized stages, outside any
// template).
func Setup(d *driver.Driver, cfg Config) (*Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions%cfg.ReduceFan != 0 {
		return nil, fmt.Errorf("lr: partitions %d not divisible by reduce fan %d",
			cfg.Partitions, cfg.ReduceFan)
	}
	j := &Job{Cfg: cfg, D: d}
	var err error
	define := func(name string, parts int) Var {
		if err != nil {
			return Var{}
		}
		var v Var
		v, err = d.DefineVariable("lr/"+name, parts)
		return v
	}
	l1 := cfg.Partitions / cfg.ReduceFan
	j.TData = define("tdata", cfg.Partitions)
	j.EData = define("edata", cfg.Partitions)
	j.Coeff = define("coeff", 1)
	j.Param = define("param", 1)
	j.Grad = define("grad", cfg.Partitions)
	j.GSum = define("gsum", l1)
	j.GNorm = define("gnorm", 1)
	j.Errs = define("errs", cfg.Partitions)
	j.ESum = define("esum", l1)
	j.Error = define("error", 1)
	if err != nil {
		return nil, err
	}

	if err := d.PutFloats(j.Coeff, 0, make([]float64, cfg.Features)); err != nil {
		return nil, err
	}
	if err := d.PutFloats(j.Param, 0, []float64{cfg.LearningRate}); err != nil {
		return nil, err
	}
	if cfg.Simulated {
		// Simulated data partitions are empty placeholders.
		for p := 0; p < cfg.Partitions; p++ {
			if err := d.PutFloats(j.TData, p, nil); err != nil {
				return nil, err
			}
			if err := d.PutFloats(j.EData, p, nil); err != nil {
				return nil, err
			}
		}
		return j, d.Barrier()
	}
	genParams := func(base int64) []params.Blob {
		out := make([]params.Blob, cfg.Partitions)
		for p := 0; p < cfg.Partitions; p++ {
			out[p] = params.NewEncoder(32).
				Int(base + int64(p)).
				Int(int64(cfg.RowsPerPart)).
				Int(int64(cfg.Features)).
				Blob()
		}
		return out
	}
	if err := d.SubmitPerTask(FnGenData, cfg.Partitions, genParams(cfg.Seed), j.TData.Write()); err != nil {
		return nil, err
	}
	if err := d.SubmitPerTask(FnGenData, cfg.Partitions, genParams(cfg.Seed+1<<20), j.EData.Write()); err != nil {
		return nil, err
	}
	return j, d.Barrier()
}

// stageParams returns the parameter blob for compute stages under the
// job's profile.
func (j *Job) taskParams(d time.Duration) params.Blob {
	if j.Cfg.Simulated {
		return fn.SimParams(d)
	}
	return params.NewEncoder(16).Float(j.Cfg.LearningRate).Blob()
}

func (j *Job) fnOr(real ids.FunctionID) ids.FunctionID {
	if j.Cfg.Simulated {
		return fn.FuncSim
	}
	return real
}

// SubmitOptimizeStages submits one inner-loop iteration's stages (the
// "optimization code block" of Figure 3a): gradient, two-level reduction,
// coefficient update.
func (j *Job) SubmitOptimizeStages() error {
	cfg := j.Cfg
	l1 := cfg.Partitions / cfg.ReduceFan
	if err := j.D.Submit(j.fnOr(FnGradient), cfg.Partitions, j.taskParams(cfg.TaskDuration),
		j.TData.Read(), j.Coeff.ReadShared(), j.Grad.Write()); err != nil {
		return err
	}
	if err := j.D.Submit(j.fnOr(FnReduceGrad), l1, j.taskParams(cfg.ReduceDuration),
		j.Grad.ReadGrouped(), j.GSum.Write()); err != nil {
		return err
	}
	// Coeff is declared both read and written: the update mutates it in
	// place, so the read both orders the task and registers the template
	// precondition that the latest coefficients are local.
	return j.D.Submit(j.fnOr(FnApplyGrad), 1, j.taskParams(cfg.ReduceDuration),
		j.GSum.ReadGrouped(), j.Coeff.ReadShared(), j.Coeff.WriteShared(), j.GNorm.WriteShared())
}

// SubmitEstimateStages submits one outer-loop iteration's stages (the
// "estimation code block"): estimate, reduction, model update.
func (j *Job) SubmitEstimateStages() error {
	cfg := j.Cfg
	l1 := cfg.Partitions / cfg.ReduceFan
	if err := j.D.Submit(j.fnOr(FnEstimate), cfg.Partitions, j.taskParams(cfg.TaskDuration),
		j.EData.Read(), j.Coeff.ReadShared(), j.Errs.Write()); err != nil {
		return err
	}
	if err := j.D.Submit(j.fnOr(FnReduceErr), l1, j.taskParams(cfg.ReduceDuration),
		j.Errs.ReadGrouped(), j.ESum.Write()); err != nil {
		return err
	}
	return j.D.Submit(j.fnOr(FnUpdateModel), 1, j.taskParams(cfg.ReduceDuration),
		j.ESum.ReadGrouped(), j.Param.ReadShared(), j.Param.WriteShared(), j.Error.WriteShared())
}

// Template names.
const (
	OptimizeBlock = "lr/optimize"
	EstimateBlock = "lr/estimate"
)

// InstallTemplates records both basic blocks (each executes once during
// recording).
func (j *Job) InstallTemplates() error {
	if err := j.D.BeginTemplate(OptimizeBlock); err != nil {
		return err
	}
	if err := j.SubmitOptimizeStages(); err != nil {
		return err
	}
	if err := j.D.EndTemplate(OptimizeBlock); err != nil {
		return err
	}
	if err := j.D.BeginTemplate(EstimateBlock); err != nil {
		return err
	}
	if err := j.SubmitEstimateStages(); err != nil {
		return err
	}
	return j.D.EndTemplate(EstimateBlock)
}

// Optimize instantiates the inner-loop block.
func (j *Job) Optimize() error { return j.D.Instantiate(OptimizeBlock) }

// Estimate instantiates the outer-loop block.
func (j *Job) Estimate() error { return j.D.Instantiate(EstimateBlock) }

// GradNorm reads back the gradient norm (a synchronization point).
func (j *Job) GradNorm() (float64, error) { return j.scalar(j.GNorm) }

// ErrorValue reads back the estimation error (a synchronization point).
func (j *Job) ErrorValue() (float64, error) { return j.scalar(j.Error) }

// CoeffValue reads back the coefficients.
func (j *Job) CoeffValue() ([]float64, error) { return j.D.GetFloats(j.Coeff, 0) }

func (j *Job) scalar(v Var) (float64, error) {
	vals, err := j.D.GetFloats(v, 0)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("lr: %s is empty", v.Name)
	}
	return vals[0], nil
}

// OptimizeUntil submits the whole inner loop of Figure 3a to the
// controller (driver API v2): optimize until the gradient norm drops
// below gradThreshold or maxInner iterations ran, with the predicate
// evaluated controller-side after each instantiation. One
// driver↔controller round trip covers the entire loop. It returns the
// iteration count and the last gradient norm.
func (j *Job) OptimizeUntil(gradThreshold float64, maxInner int) (int, float64, error) {
	res, err := j.D.InstantiateWhile(OptimizeBlock, j.GNorm.AtLeast(0, gradThreshold), maxInner)
	return res.Iters, res.LastValue, err
}

// Train runs the full nested loop of Figure 3a with data-dependent exit
// conditions, using templates. The inner loop is a controller-evaluated
// predicate loop (OptimizeUntil); the outer loop stays driver-side
// because its body spans two templates. It returns (outer, inner)
// iteration counts.
func (j *Job) Train(gradThreshold, errThreshold float64, maxOuter, maxInner int) (int, int, error) {
	if err := j.InstallTemplates(); err != nil {
		return 0, 0, err
	}
	totalInner := 0
	for outer := 1; ; outer++ {
		inner, _, err := j.OptimizeUntil(gradThreshold, maxInner)
		totalInner += inner
		if err != nil {
			return outer, totalInner, err
		}
		if err := j.Estimate(); err != nil {
			return outer, totalInner, err
		}
		e, err := j.ErrorValue()
		if err != nil {
			return outer, totalInner, err
		}
		if e < errThreshold || outer >= maxOuter {
			return outer, totalInner, nil
		}
	}
}

// TrainExplicit is the v1 form of Train — every inner iteration gated on
// a GradNorm round trip — kept as the reference Train is tested against:
// both must run the same iterations and learn the same coefficients.
func (j *Job) TrainExplicit(gradThreshold, errThreshold float64, maxOuter, maxInner int) (int, int, error) {
	if err := j.InstallTemplates(); err != nil {
		return 0, 0, err
	}
	totalInner := 0
	for outer := 1; ; outer++ {
		for inner := 0; inner < maxInner; inner++ {
			if err := j.Optimize(); err != nil {
				return outer, totalInner, err
			}
			totalInner++
			g, err := j.GradNorm()
			if err != nil {
				return outer, totalInner, err
			}
			if g < gradThreshold {
				break
			}
		}
		if err := j.Estimate(); err != nil {
			return outer, totalInner, err
		}
		e, err := j.ErrorValue()
		if err != nil {
			return outer, totalInner, err
		}
		if e < errThreshold || outer >= maxOuter {
			return outer, totalInner, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Task bodies (real profile)

// trueWeights is the synthetic ground truth the generator labels with.
func trueWeights(features int) []float64 {
	w := make([]float64, features)
	for i := range w {
		w[i] = math.Sin(float64(i + 1))
	}
	return w
}

// genData writes one training partition: rows of [x0..xf-1, y].
func genData(c *fn.Ctx) error {
	dec := params.NewDecoder(c.Params)
	seed := dec.Int()
	rows := int(dec.Int())
	features := int(dec.Int())
	if err := dec.Err(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	w := trueWeights(features)
	out := make([]float64, 0, 2+rows*(features+1))
	out = append(out, float64(rows), float64(features))
	for r := 0; r < rows; r++ {
		dot := 0.0
		for f := 0; f < features; f++ {
			x := rng.NormFloat64()
			out = append(out, x)
			dot += x * w[f]
		}
		y := 0.0
		if sigmoid(dot) > rng.Float64() {
			y = 1.0
		}
		out = append(out, y)
	}
	c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
	return nil
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// decodePartition splits an encoded data partition into rows/features and
// the flat payload.
func decodePartition(raw []byte) (rows, features int, data []float64) {
	vals := params.NewDecoder(params.Blob(raw)).Floats()
	if len(vals) < 2 {
		return 0, 0, nil
	}
	return int(vals[0]), int(vals[1]), vals[2:]
}

// gradient computes a partial logistic-loss gradient over one partition.
// Output layout: [count, g0..gf-1].
func gradient(c *fn.Ctx) error {
	rows, features, data := decodePartition(c.Read(0))
	coeff := params.NewDecoder(params.Blob(c.Read(1))).Floats()
	g := make([]float64, features+1)
	g[0] = float64(rows)
	stride := features + 1
	for r := 0; r < rows; r++ {
		row := data[r*stride : (r+1)*stride]
		dot := 0.0
		for f := 0; f < features && f < len(coeff); f++ {
			dot += row[f] * coeff[f]
		}
		diff := sigmoid(dot) - row[features]
		for f := 0; f < features; f++ {
			g[1+f] += diff * row[f]
		}
	}
	c.SetWrite(0, params.NewEncoder(8*len(g)+8).Floats(g).Blob())
	return nil
}

// reduceVecs sums [count, v...] vectors element-wise.
func reduceVecs(c *fn.Ctx) error {
	var acc []float64
	for i := 0; i < c.NumReads(); i++ {
		v := params.NewDecoder(params.Blob(c.Read(i))).Floats()
		if acc == nil {
			acc = append(acc, v...)
			continue
		}
		for k := 0; k < len(v) && k < len(acc); k++ {
			acc[k] += v[k]
		}
	}
	c.SetWrite(0, params.NewEncoder(8*len(acc)+8).Floats(acc).Blob())
	return nil
}

// applyGrad sums the level-one gradients, steps the coefficients, and
// writes the gradient norm.
func applyGrad(c *fn.Ctx) error {
	lrate := params.NewDecoder(c.Params).Float()
	var acc []float64
	for i := 0; i < c.NumReads()-1; i++ {
		v := params.NewDecoder(params.Blob(c.Read(i))).Floats()
		if acc == nil {
			acc = append(acc, v...)
			continue
		}
		for k := 0; k < len(v) && k < len(acc); k++ {
			acc[k] += v[k]
		}
	}
	coeff := append([]float64(nil),
		params.NewDecoder(params.Blob(c.Read(c.NumReads()-1))).Floats()...)
	if len(acc) < 1 {
		return fmt.Errorf("lr: empty gradient reduction")
	}
	count := acc[0]
	if count == 0 {
		count = 1
	}
	norm := 0.0
	for f := 0; f < len(coeff) && 1+f < len(acc); f++ {
		step := acc[1+f] / count
		coeff[f] -= lrate * step
		norm += step * step
	}
	c.SetWrite(0, params.NewEncoder(8*len(coeff)+8).Floats(coeff).Blob())
	c.SetWrite(1, params.NewEncoder(16).Floats([]float64{math.Sqrt(norm)}).Blob())
	return nil
}

// estimate computes [count, misclassified] over one estimation partition.
func estimate(c *fn.Ctx) error {
	rows, features, data := decodePartition(c.Read(0))
	coeff := params.NewDecoder(params.Blob(c.Read(1))).Floats()
	wrong := 0.0
	stride := features + 1
	for r := 0; r < rows; r++ {
		row := data[r*stride : (r+1)*stride]
		dot := 0.0
		for f := 0; f < features && f < len(coeff); f++ {
			dot += row[f] * coeff[f]
		}
		pred := 0.0
		if dot > 0 {
			pred = 1.0
		}
		if pred != row[features] {
			wrong++
		}
	}
	out := []float64{float64(rows), wrong}
	c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
	return nil
}

// updateModel folds the error reduction into the model parameters
// (learning-rate decay) and exposes the error rate.
func updateModel(c *fn.Ctx) error {
	var acc []float64
	for i := 0; i < c.NumReads()-1; i++ {
		v := params.NewDecoder(params.Blob(c.Read(i))).Floats()
		if acc == nil {
			acc = append(acc, v...)
			continue
		}
		for k := 0; k < len(v) && k < len(acc); k++ {
			acc[k] += v[k]
		}
	}
	param := append([]float64(nil),
		params.NewDecoder(params.Blob(c.Read(c.NumReads()-1))).Floats()...)
	rate := 0.0
	if len(acc) >= 2 && acc[0] > 0 {
		rate = acc[1] / acc[0]
	}
	if len(param) > 0 {
		param[0] *= 0.9 // decay the learning rate each outer iteration
	}
	c.SetWrite(0, params.NewEncoder(8*len(param)+8).Floats(param).Blob())
	c.SetWrite(1, params.NewEncoder(16).Floats([]float64{rate}).Blob())
	return nil
}
