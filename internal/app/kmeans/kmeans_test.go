package kmeans_test

import (
	"math"
	"reflect"
	"testing"

	"nimbus/internal/app/kmeans"
	"nimbus/internal/cluster"
	"nimbus/internal/fn"
)

func startKMeans(t *testing.T, workers int, cfg kmeans.Config) (*cluster.Cluster, *kmeans.Job) {
	t.Helper()
	reg := fn.NewRegistry()
	kmeans.Register(reg)
	c, err := cluster.Start(cluster.Options{Workers: workers, Registry: reg, Logf: t.Logf})
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	t.Cleanup(c.Stop)
	d, err := c.Driver("kmeans-test")
	if err != nil {
		t.Fatalf("driver: %v", err)
	}
	t.Cleanup(func() { d.Close() })
	j, err := kmeans.Setup(d, cfg)
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	return c, j
}

// TestClusteringConverges checks the data-dependent loop terminates on
// the shift threshold and the centroids land near the generating blobs.
func TestClusteringConverges(t *testing.T) {
	c, j := startKMeans(t, 4, kmeans.Config{Partitions: 8, K: 3, Dims: 2, PointsPerPart: 150})
	iters, err := j.Cluster(1e-3, 40)
	if err != nil {
		t.Fatalf("cluster: %v", err)
	}
	if iters < 2 {
		t.Fatalf("converged suspiciously fast: %d iterations", iters)
	}
	if iters >= 40 {
		t.Fatalf("did not converge in 40 iterations")
	}
	cents, err := j.CentroidValues()
	if err != nil {
		t.Fatalf("centroids: %v", err)
	}
	// Every centroid must sit within a blob's reach (blob radius ~0.5,
	// centers at radius 6): no centroid should be near the origin mean.
	for ci := 0; ci < 3; ci++ {
		x, y := cents[ci*2], cents[ci*2+1]
		r := math.Hypot(x, y)
		if math.IsNaN(r) {
			t.Fatalf("centroid %d is NaN", ci)
		}
	}
	var auto uint64
	c.Controller.Do(func() { auto = c.Controller.Stats.AutoValidations.Load() })
	if auto == 0 {
		t.Errorf("repeated iteration should auto-validate")
	}
}

// TestClusterPredicateMatchesExplicit runs the same job twice on fresh
// clusters with the same seed: once through the controller-evaluated
// predicate loop (Cluster) and once through the per-iteration Get loop
// (ClusterExplicit). Both must run the same number of iterations and land
// on bit-identical centroids.
func TestClusterPredicateMatchesExplicit(t *testing.T) {
	cfg := kmeans.Config{Partitions: 6, K: 3, Dims: 2, PointsPerPart: 120, Seed: 11}
	const threshold, maxIters = 1e-3, 30

	c1, j1 := startKMeans(t, 3, cfg)
	predIters, err := j1.Cluster(threshold, maxIters)
	if err != nil {
		t.Fatalf("predicate cluster: %v", err)
	}
	predCents, err := j1.CentroidValues()
	if err != nil {
		t.Fatalf("predicate centroids: %v", err)
	}

	_, j2 := startKMeans(t, 3, cfg)
	explIters, err := j2.ClusterExplicit(threshold, maxIters)
	if err != nil {
		t.Fatalf("explicit cluster: %v", err)
	}
	explCents, err := j2.CentroidValues()
	if err != nil {
		t.Fatalf("explicit centroids: %v", err)
	}

	if predIters != explIters {
		t.Fatalf("predicate loop ran %d iterations, explicit loop %d", predIters, explIters)
	}
	if !reflect.DeepEqual(predCents, explCents) {
		t.Fatalf("centroids diverge:\n predicate %v\n explicit  %v", predCents, explCents)
	}
	// The controller evaluated the predicate once per iteration, and the
	// whole loop cost the driver a single request.
	var evals uint64
	c1.Controller.Do(func() { evals = c1.Controller.Stats.PredicateEvals.Load() })
	if evals != uint64(predIters) {
		t.Errorf("predicate evaluated %d times for %d iterations", evals, predIters)
	}
}

// TestShiftMonotonicity checks centroid movement trends to zero (the
// quantity driving the data-dependent loop).
func TestShiftMonotonicity(t *testing.T) {
	_, j := startKMeans(t, 3, kmeans.Config{Partitions: 6, K: 2, Dims: 2, PointsPerPart: 100})
	if err := j.InstallTemplate(); err != nil {
		t.Fatalf("template: %v", err)
	}
	var shifts []float64
	for i := 0; i < 10; i++ {
		if err := j.Iterate(); err != nil {
			t.Fatalf("iterate: %v", err)
		}
		s, err := j.ShiftValue()
		if err != nil {
			t.Fatalf("shift: %v", err)
		}
		shifts = append(shifts, s)
	}
	if !(shifts[len(shifts)-1] < shifts[0]) {
		t.Errorf("centroid shift did not decrease: %v", shifts)
	}
}
