// Package kmeans implements the paper's second evaluation workload:
// k-means clustering with an assign step over point partitions, a
// two-level application-level reduction tree, and a centroid update
// (paper §5.1, Figure 7b).
//
// Like package lr it offers a real-math profile (examples, correctness
// tests) and a calibrated simulated profile (scaling experiments).
package kmeans

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"nimbus/internal/driver"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// Function IDs.
const (
	FnGenPoints ids.FunctionID = 130 + iota
	FnAssign
	FnReduceSums
	FnUpdateCentroids
)

// Config describes a k-means job.
type Config struct {
	// Partitions is the number of point partitions (= assign tasks).
	Partitions int
	// K is the number of clusters.
	K int
	// Dims is the point dimensionality.
	Dims int
	// PointsPerPart is the number of points per partition.
	PointsPerPart int
	// ReduceFan is the first-level reduction fan-in.
	ReduceFan int
	// Seed makes data generation deterministic.
	Seed int64
	// Simulated switches task bodies to calibrated sleeps. K-means tasks
	// are slightly heavier than LR's (Figure 7b iterations run ~45%
	// longer), so the default simulated duration is 7ms.
	Simulated bool
	// TaskDuration is the simulated assign task time.
	TaskDuration time.Duration
	// ReduceDuration is the simulated reduction task time.
	ReduceDuration time.Duration
}

func (c Config) withDefaults() Config {
	if c.Partitions == 0 {
		c.Partitions = 8
	}
	if c.K == 0 {
		c.K = 4
	}
	if c.Dims == 0 {
		c.Dims = 2
	}
	if c.PointsPerPart == 0 {
		c.PointsPerPart = 128
	}
	if c.ReduceFan == 0 {
		c.ReduceFan = fanFor(c.Partitions)
	}
	if c.TaskDuration == 0 {
		c.TaskDuration = 7 * time.Millisecond
	}
	if c.ReduceDuration == 0 {
		c.ReduceDuration = time.Millisecond
	}
	return c
}

func fanFor(p int) int {
	best := 1
	for f := 1; f*f <= p; f++ {
		if p%f == 0 {
			best = f
		}
	}
	return best
}

// Var aliases driver.Var.
type Var = driver.Var

// Job is a set-up k-means job.
type Job struct {
	Cfg Config
	D   *driver.Driver

	Points    Var // point partitions
	Centroids Var // scalar: K*Dims centroids
	PSums     Var // per-partition [k: count, sum...] accumulators
	L1Sums    Var // level-one reduced sums
	Shift     Var // scalar: centroid movement of the last update
}

// Register installs the k-means functions.
func Register(reg *fn.Registry) {
	reg.MustRegister(FnGenPoints, "kmeans/gen-points", genPoints)
	reg.MustRegister(FnAssign, "kmeans/assign", assign)
	reg.MustRegister(FnReduceSums, "kmeans/reduce-sums", reduceSums)
	reg.MustRegister(FnUpdateCentroids, "kmeans/update-centroids", updateCentroids)
}

// Setup declares variables and generates points on the workers.
func Setup(d *driver.Driver, cfg Config) (*Job, error) {
	cfg = cfg.withDefaults()
	if cfg.Partitions%cfg.ReduceFan != 0 {
		return nil, fmt.Errorf("kmeans: partitions %d not divisible by fan %d",
			cfg.Partitions, cfg.ReduceFan)
	}
	j := &Job{Cfg: cfg, D: d}
	var err error
	define := func(name string, parts int) Var {
		if err != nil {
			return Var{}
		}
		var v Var
		v, err = d.DefineVariable("kmeans/"+name, parts)
		return v
	}
	j.Points = define("points", cfg.Partitions)
	j.Centroids = define("centroids", 1)
	j.PSums = define("psums", cfg.Partitions)
	j.L1Sums = define("l1sums", cfg.Partitions/cfg.ReduceFan)
	j.Shift = define("shift", 1)
	if err != nil {
		return nil, err
	}

	// Initial centroids: deterministic spread.
	init := make([]float64, cfg.K*cfg.Dims)
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	for i := range init {
		init[i] = rng.NormFloat64() * 2
	}
	if err := d.PutFloats(j.Centroids, 0, init); err != nil {
		return nil, err
	}
	if cfg.Simulated {
		for p := 0; p < cfg.Partitions; p++ {
			if err := d.PutFloats(j.Points, p, nil); err != nil {
				return nil, err
			}
		}
		return j, d.Barrier()
	}
	perTask := make([]params.Blob, cfg.Partitions)
	for p := 0; p < cfg.Partitions; p++ {
		perTask[p] = params.NewEncoder(40).
			Int(cfg.Seed + int64(p)).
			Int(int64(cfg.PointsPerPart)).
			Int(int64(cfg.Dims)).
			Int(int64(cfg.K)).
			Blob()
	}
	if err := d.SubmitPerTask(FnGenPoints, cfg.Partitions, perTask, j.Points.Write()); err != nil {
		return nil, err
	}
	return j, d.Barrier()
}

func (j *Job) taskParams(d time.Duration) params.Blob {
	if j.Cfg.Simulated {
		return fn.SimParams(d)
	}
	return params.NewEncoder(24).Int(int64(j.Cfg.K)).Int(int64(j.Cfg.Dims)).Blob()
}

func (j *Job) fnOr(real ids.FunctionID) ids.FunctionID {
	if j.Cfg.Simulated {
		return fn.FuncSim
	}
	return real
}

// IterateBlock is the template name of one clustering iteration.
const IterateBlock = "kmeans/iterate"

// SubmitIterationStages submits one iteration: assign, reduce, update.
func (j *Job) SubmitIterationStages() error {
	cfg := j.Cfg
	l1 := cfg.Partitions / cfg.ReduceFan
	if err := j.D.Submit(j.fnOr(FnAssign), cfg.Partitions, j.taskParams(cfg.TaskDuration),
		j.Points.Read(), j.Centroids.ReadShared(), j.PSums.Write()); err != nil {
		return err
	}
	if err := j.D.Submit(j.fnOr(FnReduceSums), l1, j.taskParams(cfg.ReduceDuration),
		j.PSums.ReadGrouped(), j.L1Sums.Write()); err != nil {
		return err
	}
	return j.D.Submit(j.fnOr(FnUpdateCentroids), 1, j.taskParams(cfg.ReduceDuration),
		j.L1Sums.ReadGrouped(), j.Centroids.ReadShared(),
		j.Centroids.WriteShared(), j.Shift.WriteShared())
}

// InstallTemplate records the iteration block (running it once).
func (j *Job) InstallTemplate() error {
	if err := j.D.BeginTemplate(IterateBlock); err != nil {
		return err
	}
	if err := j.SubmitIterationStages(); err != nil {
		return err
	}
	return j.D.EndTemplate(IterateBlock)
}

// Iterate instantiates one clustering iteration.
func (j *Job) Iterate() error { return j.D.Instantiate(IterateBlock) }

// ShiftValue reads back the last centroid movement (synchronizing).
func (j *Job) ShiftValue() (float64, error) {
	vals, err := j.D.GetFloats(j.Shift, 0)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("kmeans: shift is empty")
	}
	return vals[0], nil
}

// CentroidValues reads back the centroids.
func (j *Job) CentroidValues() ([]float64, error) {
	return j.D.GetFloats(j.Centroids, 0)
}

// Cluster runs until the centroid shift falls below threshold (a
// data-dependent loop) or maxIters is hit; it returns the iteration
// count. The whole loop is submitted to the controller (driver API v2
// InstantiateWhile): the predicate "shift >= threshold" is evaluated
// controller-side after each instantiation, so the loop costs one
// driver↔controller round trip regardless of how many iterations run.
func (j *Job) Cluster(threshold float64, maxIters int) (int, error) {
	if err := j.InstallTemplate(); err != nil {
		return 0, err
	}
	res, err := j.D.InstantiateWhile(IterateBlock, j.Shift.AtLeast(0, threshold), maxIters)
	return res.Iters, err
}

// ClusterExplicit is the v1 form of the same loop — one Get round trip
// per iteration — kept as the reference Cluster is tested against: both
// must run the same iterations and land on the same centroids.
func (j *Job) ClusterExplicit(threshold float64, maxIters int) (int, error) {
	if err := j.InstallTemplate(); err != nil {
		return 0, err
	}
	for i := 1; ; i++ {
		if err := j.Iterate(); err != nil {
			return i, err
		}
		shift, err := j.ShiftValue()
		if err != nil {
			return i, err
		}
		if shift < threshold || i >= maxIters {
			return i, nil
		}
	}
}

// ---------------------------------------------------------------------------
// Task bodies (real profile)

// genPoints writes one partition of points drawn from K well-separated
// Gaussian blobs: [n, dims, x...].
func genPoints(c *fn.Ctx) error {
	dec := params.NewDecoder(c.Params)
	seed := dec.Int()
	n := int(dec.Int())
	dims := int(dec.Int())
	k := int(dec.Int())
	if err := dec.Err(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, 0, 2+n*dims)
	out = append(out, float64(n), float64(dims))
	for i := 0; i < n; i++ {
		blob := rng.Intn(k)
		for d := 0; d < dims; d++ {
			center := 6 * math.Cos(2*math.Pi*(float64(blob)/float64(k))+float64(d))
			out = append(out, center+rng.NormFloat64()*0.5)
		}
	}
	c.SetWrite(0, params.NewEncoder(8*len(out)+8).Floats(out).Blob())
	return nil
}

// assign computes per-cluster [count, sum...] accumulators for one
// partition. Output layout: k rows of (1+dims) values.
func assign(c *fn.Ctx) error {
	dec := params.NewDecoder(c.Params)
	k := int(dec.Int())
	dims := int(dec.Int())
	pts := params.NewDecoder(params.Blob(c.Read(0))).Floats()
	cents := params.NewDecoder(params.Blob(c.Read(1))).Floats()
	acc := make([]float64, k*(1+dims))
	if len(pts) >= 2 {
		n := int(pts[0])
		data := pts[2:]
		for i := 0; i < n; i++ {
			p := data[i*dims : (i+1)*dims]
			best, bestD := 0, math.Inf(1)
			for ci := 0; ci < k && (ci+1)*dims <= len(cents); ci++ {
				d := 0.0
				for di := 0; di < dims; di++ {
					diff := p[di] - cents[ci*dims+di]
					d += diff * diff
				}
				if d < bestD {
					best, bestD = ci, d
				}
			}
			row := acc[best*(1+dims):]
			row[0]++
			for di := 0; di < dims; di++ {
				row[1+di] += p[di]
			}
		}
	}
	c.SetWrite(0, params.NewEncoder(8*len(acc)+8).Floats(acc).Blob())
	return nil
}

// reduceSums sums accumulator vectors element-wise.
func reduceSums(c *fn.Ctx) error {
	var acc []float64
	for i := 0; i < c.NumReads(); i++ {
		v := params.NewDecoder(params.Blob(c.Read(i))).Floats()
		if acc == nil {
			acc = append(acc, v...)
			continue
		}
		for j := 0; j < len(v) && j < len(acc); j++ {
			acc[j] += v[j]
		}
	}
	c.SetWrite(0, params.NewEncoder(8*len(acc)+8).Floats(acc).Blob())
	return nil
}

// updateCentroids recomputes centroids from the reduced sums and writes
// the total movement.
func updateCentroids(c *fn.Ctx) error {
	dec := params.NewDecoder(c.Params)
	k := int(dec.Int())
	dims := int(dec.Int())
	var acc []float64
	for i := 0; i < c.NumReads()-1; i++ {
		v := params.NewDecoder(params.Blob(c.Read(i))).Floats()
		if acc == nil {
			acc = append(acc, v...)
			continue
		}
		for j := 0; j < len(v) && j < len(acc); j++ {
			acc[j] += v[j]
		}
	}
	old := params.NewDecoder(params.Blob(c.Read(c.NumReads() - 1))).Floats()
	next := append([]float64(nil), old...)
	shift := 0.0
	for ci := 0; ci < k && ci*(1+dims) < len(acc); ci++ {
		row := acc[ci*(1+dims):]
		if row[0] == 0 {
			continue
		}
		for di := 0; di < dims && ci*dims+di < len(next); di++ {
			nv := row[1+di] / row[0]
			d := nv - next[ci*dims+di]
			shift += d * d
			next[ci*dims+di] = nv
		}
	}
	c.SetWrite(0, params.NewEncoder(8*len(next)+8).Floats(next).Blob())
	c.SetWrite(1, params.NewEncoder(16).Floats([]float64{math.Sqrt(shift)}).Blob())
	return nil
}
