package ids

import (
	"sync"
	"testing"
)

func TestAllocatorSequence(t *testing.T) {
	var a Allocator
	if a.Peek() != 0 {
		t.Fatal("fresh allocator should have allocated nothing")
	}
	if a.Next() != 1 || a.Next() != 2 {
		t.Fatal("allocation must start at 1 and increment")
	}
	base := a.Block(5)
	if base != 3 {
		t.Fatalf("block base = %d", base)
	}
	if a.Next() != 8 {
		t.Fatal("block must reserve its whole range")
	}
}

func TestBlockPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Block(0) must panic")
		}
	}()
	var a Allocator
	a.Block(0)
}

func TestAllocatorConcurrent(t *testing.T) {
	var a CommandIDs
	const goroutines, per = 8, 1000
	seen := make([]map[CommandID]bool, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		seen[g] = make(map[CommandID]bool, per)
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				seen[g][a.Next()] = true
			}
		}(g)
	}
	wg.Wait()
	all := make(map[CommandID]bool)
	for _, m := range seen {
		for id := range m {
			if all[id] {
				t.Fatalf("duplicate id %v", id)
			}
			all[id] = true
		}
	}
	if len(all) != goroutines*per {
		t.Fatalf("allocated %d unique ids", len(all))
	}
}

func TestStringForms(t *testing.T) {
	if CommandID(5).String() != "cmd:5" {
		t.Fatal("command id string")
	}
	if WorkerID(2).String() != "w:2" {
		t.Fatal("worker id string")
	}
	if TemplateID(9).String() != "tmpl:9" {
		t.Fatal("template id string")
	}
}
