// Package ids defines the typed identifiers used across the Nimbus control
// plane and helpers for allocating them.
//
// Nimbus (and this reproduction) gives every control-plane entity a compact
// integer identity: commands (tasks, copies, ...), physical and logical data
// objects, workers, stages, templates and registered functions. Keeping the
// types distinct catches cross-wiring at compile time; keeping them integers
// keeps the hot control-plane paths allocation-free.
package ids

import (
	"fmt"
	"sync/atomic"
)

// CommandID identifies a single control-plane command (task, copy, data or
// file command). Command IDs are allocated by the controller and are unique
// for the lifetime of a job. Execution templates exploit the allocator's
// contiguity: a template instantiation carries one base CommandID and every
// command in the template derives its ID as base + its index.
type CommandID uint64

// NoCommand is the zero CommandID; it never identifies a real command.
const NoCommand CommandID = 0

// ObjectID identifies one physical instance of a data object living in a
// particular worker's memory. Several physical instances (replicas at
// possibly different versions) may exist for one logical object.
type ObjectID uint64

// NoObject is the zero ObjectID.
const NoObject ObjectID = 0

// LogicalID identifies a logical data object: one partition of one
// application variable. The controller's directory maps a LogicalID to the
// set of physical replicas holding it.
type LogicalID uint64

// NoLogical is the zero LogicalID.
const NoLogical LogicalID = 0

// WorkerID identifies a worker node registered with the controller.
type WorkerID uint32

// NoWorker is the zero WorkerID; real workers are numbered from 1.
const NoWorker WorkerID = 0

// JobID identifies one admitted driver job. Every piece of mutable
// control-plane state — directory entries, ledgers, templates, watermarks,
// checkpoints, worker-side arenas and datastore objects — is scoped by the
// JobID of the driver that created it, so concurrent jobs multiplexed over
// one worker pool cannot observe or disturb each other.
type JobID uint32

// NoJob is the zero JobID. The controller admits real jobs from 1; job 0
// is the implicit namespace used when a worker is driven without a
// controller (tests and benchmarks).
const NoJob JobID = 0

// StageID identifies one stage submitted by the driver (a parallel
// operation that expands into one task per partition).
type StageID uint64

// TemplateID identifies an installed execution template (controller
// template or worker template) within a controller.
type TemplateID uint64

// NoTemplate is the zero TemplateID.
const NoTemplate TemplateID = 0

// PatchID identifies a cached patch (a small block of copy commands that
// fixes up system state to meet a template's preconditions).
type PatchID uint64

// NoPatch is the zero PatchID.
const NoPatch PatchID = 0

// FunctionID identifies an application function registered with the
// framework. Task commands carry the FunctionID to execute.
type FunctionID uint32

// VariableID identifies an application variable declared by the driver.
// A variable with P partitions owns P logical objects.
type VariableID uint32

// String implementations keep logs and test failures readable.

func (id CommandID) String() string  { return fmt.Sprintf("cmd:%d", uint64(id)) }
func (id ObjectID) String() string   { return fmt.Sprintf("obj:%d", uint64(id)) }
func (id LogicalID) String() string  { return fmt.Sprintf("log:%d", uint64(id)) }
func (id WorkerID) String() string   { return fmt.Sprintf("w:%d", uint32(id)) }
func (id JobID) String() string      { return fmt.Sprintf("job:%d", uint32(id)) }
func (id StageID) String() string    { return fmt.Sprintf("stage:%d", uint64(id)) }
func (id TemplateID) String() string { return fmt.Sprintf("tmpl:%d", uint64(id)) }
func (id PatchID) String() string    { return fmt.Sprintf("patch:%d", uint64(id)) }
func (id FunctionID) String() string { return fmt.Sprintf("fn:%d", uint32(id)) }
func (id VariableID) String() string { return fmt.Sprintf("var:%d", uint32(id)) }

// Allocator hands out monotonically increasing uint64 identifiers. It is
// safe for concurrent use. The zero value starts allocating at 1, so the
// zero of each ID type can always mean "none".
type Allocator struct {
	next atomic.Uint64
}

// Next returns the next identifier.
func (a *Allocator) Next() uint64 {
	return a.next.Add(1)
}

// Block reserves n consecutive identifiers and returns the first. n must be
// positive. Template instantiation uses Block to reserve one contiguous ID
// range per instance so that a single base value parameterizes every
// command in the template.
func (a *Allocator) Block(n int) uint64 {
	if n <= 0 {
		panic(fmt.Sprintf("ids: Block(%d): n must be positive", n))
	}
	end := a.next.Add(uint64(n))
	return end - uint64(n) + 1
}

// Peek reports the most recently allocated identifier, or 0 if none has
// been allocated. Intended for tests and introspection only.
func (a *Allocator) Peek() uint64 {
	return a.next.Load()
}

// AdvanceTo raises the allocator's high-water mark so the next identifier
// is strictly above n; it never lowers the mark. A promoted controller
// seeds each restored job's allocators from the replicated marks so no ID
// that surviving workers may still hold state under is ever re-issued.
func (a *Allocator) AdvanceTo(n uint64) {
	for {
		cur := a.next.Load()
		if cur >= n || a.next.CompareAndSwap(cur, n) {
			return
		}
	}
}

// CommandIDs is a convenience wrapper allocating CommandID values.
type CommandIDs struct{ Allocator }

// Next returns the next CommandID.
func (a *CommandIDs) Next() CommandID { return CommandID(a.Allocator.Next()) }

// Block reserves n consecutive CommandIDs and returns the first.
func (a *CommandIDs) Block(n int) CommandID { return CommandID(a.Allocator.Block(n)) }

// ObjectIDs is a convenience wrapper allocating ObjectID values.
type ObjectIDs struct{ Allocator }

// Next returns the next ObjectID.
func (a *ObjectIDs) Next() ObjectID { return ObjectID(a.Allocator.Next()) }

// LogicalIDs is a convenience wrapper allocating LogicalID values.
type LogicalIDs struct{ Allocator }

// Next returns the next LogicalID.
func (a *LogicalIDs) Next() LogicalID { return LogicalID(a.Allocator.Next()) }
