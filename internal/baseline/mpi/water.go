package mpi

import (
	"time"
)

// WaterProfile describes the MPI water-simulation run for the Figure 11
// comparison: the same 23-stage substep pipeline as app/water, executed
// rank-locally with halo exchanges and allreduces in place of control
// messages. Task compute is the calibrated simulated duration, so the
// three systems in Figure 11 run identical work and differ only in
// coordination cost.
type WaterProfile struct {
	// StripsPerRank is the number of grid strips each rank owns.
	StripsPerRank int
	// Slots is per-rank execution concurrency.
	Slots int
	// GridTaskDuration / ReduceTaskDuration calibrate stage compute.
	GridTaskDuration   time.Duration
	ReduceTaskDuration time.Duration
	// Substeps / ReinitIters / JacobiIters are the loop trip counts,
	// matched to the Nimbus run so the compared work is equal.
	Substeps    int
	ReinitIters int
	JacobiIters int
}

// waterStage describes one pipeline stage's coordination shape.
type waterStage struct {
	halo   bool // stencil stage: exchange ghost rows first
	reduce bool // ends in an allreduce
}

// substepStages is the fixed (non-loop) part of the pipeline: the pre
// block (8 stages), the mid block (3), and the post block (6). The two
// solver loops add 3 stages per iteration each.
var (
	preStages = []waterStage{
		{},             // compute-speed
		{reduce: true}, // reduce-max-speed -> dt
		{},             // body-force
		{halo: true},   // advect-u
		{halo: true},   // advect-v
		{},             // velocity-bc
		{halo: true},   // advect-phi
		{},             // phi-bc
	}
	midStages = []waterStage{
		{},           // extrapolate
		{halo: true}, // compute-div
		{},           // build-rhs
	}
	postStages = []waterStage{
		{halo: true},   // apply-pressure
		{halo: true},   // advect-particles
		{},             // particle-correct
		{},             // reseed-particles
		{},             // diagnostics
		{reduce: true}, // reduce-diag
	}
	solverStages = []waterStage{
		{halo: true},   // reinit-step / jacobi-step
		{},             // copy-back
		{reduce: true}, // residual allreduce
	}
)

// RunWaterSubsteps executes the water pipeline for the configured number
// of substeps on every rank and returns the wall-clock time.
func RunWaterSubsteps(c *Comm, p WaterProfile) (time.Duration, error) {
	if p.Slots <= 0 {
		p.Slots = 8
	}
	start := time.Now()
	err := c.Run(func(r *Rank) error {
		tag := 0
		gridCompute := func() {
			// StripsPerRank tasks over Slots executors.
			waves := (p.StripsPerRank + p.Slots - 1) / p.Slots
			if waves < 1 {
				waves = 1
			}
			time.Sleep(time.Duration(waves) * p.GridTaskDuration)
		}
		runStage := func(s waterStage) error {
			if s.halo {
				tag += 2
				if err := r.HaloExchange(tag, []float64{0}); err != nil {
					return err
				}
			}
			if s.reduce {
				time.Sleep(p.ReduceTaskDuration)
				tag += 2
				_, err := r.AllReduce(tag, 0, "sum")
				return err
			}
			gridCompute()
			return nil
		}
		for step := 0; step < p.Substeps; step++ {
			for _, s := range preStages {
				if err := runStage(s); err != nil {
					return err
				}
			}
			for it := 0; it < p.ReinitIters; it++ {
				for _, s := range solverStages {
					if err := runStage(s); err != nil {
						return err
					}
				}
			}
			for _, s := range midStages {
				if err := runStage(s); err != nil {
					return err
				}
			}
			for it := 0; it < p.JacobiIters; it++ {
				for _, s := range solverStages {
					if err := runStage(s); err != nil {
						return err
					}
				}
			}
			for _, s := range postStages {
				if err := runStage(s); err != nil {
					return err
				}
			}
		}
		return nil
	})
	return time.Since(start), err
}
