// Package mpi implements the hand-tuned-MPI baseline of the paper's
// PhysBAM comparison (§5.5, Figure 11): rank-per-worker execution with no
// control plane at all. Partitioning is static and compiled into the
// ranks; neighbors exchange halos directly; global decisions (CFL
// timestep, solver termination) use explicit reductions. There is no
// controller, no scheduler, no fault tolerance and no load balancing —
// exactly the properties the paper contrasts against.
package mpi

import (
	"fmt"
	"sync"
	"time"

	"nimbus/internal/transport"
	"nimbus/internal/wire"
)

// Comm is an MPI-like communicator over the in-memory transport.
type Comm struct {
	n       int
	latency time.Duration
	tr      *transport.Mem
	ranks   []*Rank
}

// Rank is one process of the communicator.
type Rank struct {
	comm *Comm
	id   int

	lis transport.Listener

	mu     sync.Mutex
	cond   *sync.Cond
	inbox  map[msgKey][]float64
	closed bool

	peerMu sync.Mutex
	peers  map[int]transport.Conn

	wg sync.WaitGroup
}

type msgKey struct {
	from int
	tag  int
}

// NewComm starts n ranks with the given one-way latency.
func NewComm(n int, latency time.Duration) (*Comm, error) {
	c := &Comm{n: n, latency: latency, tr: transport.NewMem(latency)}
	for i := 0; i < n; i++ {
		r := &Rank{
			comm: c, id: i,
			inbox: make(map[msgKey][]float64),
			peers: make(map[int]transport.Conn),
		}
		r.cond = sync.NewCond(&r.mu)
		lis, err := c.tr.Listen(fmt.Sprintf("mpi/%d", i))
		if err != nil {
			c.Close()
			return nil, err
		}
		r.lis = lis
		r.wg.Add(1)
		go r.acceptLoop()
		c.ranks = append(c.ranks, r)
	}
	return c, nil
}

// Size returns the communicator size.
func (c *Comm) Size() int { return c.n }

// Rank returns rank i.
func (c *Comm) RankOf(i int) *Rank { return c.ranks[i] }

// Run executes body on every rank concurrently and waits; the first error
// wins.
func (c *Comm) Run(body func(r *Rank) error) error {
	errs := make(chan error, c.n)
	var wg sync.WaitGroup
	for _, r := range c.ranks {
		wg.Add(1)
		go func(r *Rank) {
			defer wg.Done()
			errs <- body(r)
		}(r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Close stops all ranks.
func (c *Comm) Close() {
	for _, r := range c.ranks {
		r.mu.Lock()
		r.closed = true
		r.cond.Broadcast()
		r.mu.Unlock()
		r.lis.Close()
		r.peerMu.Lock()
		for _, conn := range r.peers {
			conn.Close()
		}
		r.peerMu.Unlock()
	}
	for _, r := range c.ranks {
		r.wg.Wait()
	}
}

func (r *Rank) acceptLoop() {
	defer r.wg.Done()
	for {
		conn, err := r.lis.Accept()
		if err != nil {
			return
		}
		r.wg.Add(1)
		go r.pump(conn)
	}
}

func (r *Rank) pump(conn transport.Conn) {
	defer r.wg.Done()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		rd := wire.NewReader(raw)
		from := int(rd.Uvarint())
		tag := int(rd.Uvarint())
		vals := rd.Float64s()
		if rd.Err != nil {
			continue
		}
		r.mu.Lock()
		r.inbox[msgKey{from, tag}] = vals
		r.cond.Broadcast()
		r.mu.Unlock()
	}
}

// ID returns the rank index.
func (r *Rank) ID() int { return r.id }

// Send sends vals to rank dst with a tag.
func (r *Rank) Send(dst, tag int, vals []float64) error {
	if dst == r.id {
		r.mu.Lock()
		r.inbox[msgKey{r.id, tag}] = vals
		r.cond.Broadcast()
		r.mu.Unlock()
		return nil
	}
	r.peerMu.Lock()
	conn, ok := r.peers[dst]
	if !ok {
		var err error
		conn, err = r.comm.tr.Dial(fmt.Sprintf("mpi/%d", dst))
		if err != nil {
			r.peerMu.Unlock()
			return err
		}
		r.peers[dst] = conn
	}
	r.peerMu.Unlock()
	var w wire.Writer
	w.Uvarint(uint64(r.id))
	w.Uvarint(uint64(tag))
	w.Float64s(vals)
	return conn.Send(w.Buf)
}

// Recv blocks until a message with the given source and tag arrives.
func (r *Rank) Recv(src, tag int) ([]float64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := msgKey{src, tag}
	for {
		if vals, ok := r.inbox[key]; ok {
			delete(r.inbox, key)
			return vals, nil
		}
		if r.closed {
			return nil, fmt.Errorf("mpi: rank %d closed", r.id)
		}
		r.cond.Wait()
	}
}

// AllReduce combines one value from every rank with op ("sum" or "max")
// via a gather to rank 0 and a broadcast — the synchronization structure
// of MPI_Allreduce.
func (r *Rank) AllReduce(tag int, v float64, op string) (float64, error) {
	if r.id == 0 {
		acc := v
		for src := 1; src < r.comm.n; src++ {
			vals, err := r.Recv(src, tag)
			if err != nil {
				return 0, err
			}
			if len(vals) > 0 {
				switch op {
				case "max":
					if vals[0] > acc {
						acc = vals[0]
					}
				default:
					acc += vals[0]
				}
			}
		}
		for dst := 1; dst < r.comm.n; dst++ {
			if err := r.Send(dst, tag+1, []float64{acc}); err != nil {
				return 0, err
			}
		}
		return acc, nil
	}
	if err := r.Send(0, tag, []float64{v}); err != nil {
		return 0, err
	}
	vals, err := r.Recv(0, tag+1)
	if err != nil {
		return 0, err
	}
	if len(vals) == 0 {
		return 0, fmt.Errorf("mpi: empty reduction")
	}
	return vals[0], nil
}

// Barrier synchronizes all ranks (an AllReduce of zeros).
func (r *Rank) Barrier(tag int) error {
	_, err := r.AllReduce(tag, 0, "sum")
	return err
}

// HaloExchange swaps one payload with each neighboring rank (id±1),
// blocking until both directions complete — the per-stage ghost-cell
// synchronization of a strip-partitioned grid code.
func (r *Rank) HaloExchange(tag int, payload []float64) error {
	if r.id > 0 {
		if err := r.Send(r.id-1, tag, payload); err != nil {
			return err
		}
	}
	if r.id < r.comm.n-1 {
		if err := r.Send(r.id+1, tag, payload); err != nil {
			return err
		}
	}
	if r.id > 0 {
		if _, err := r.Recv(r.id-1, tag); err != nil {
			return err
		}
	}
	if r.id < r.comm.n-1 {
		if _, err := r.Recv(r.id+1, tag); err != nil {
			return err
		}
	}
	return nil
}
