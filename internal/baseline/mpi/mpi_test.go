package mpi

import (
	"testing"
	"time"
)

func TestAllReduce(t *testing.T) {
	c, err := NewComm(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(r *Rank) error {
		sum, err := r.AllReduce(10, float64(r.ID()+1), "sum")
		if err != nil {
			return err
		}
		if sum != 10 { // 1+2+3+4
			t.Errorf("rank %d: sum = %v", r.ID(), sum)
		}
		max, err := r.AllReduce(20, float64(r.ID()), "max")
		if err != nil {
			return err
		}
		if max != 3 {
			t.Errorf("rank %d: max = %v", r.ID(), max)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHaloExchange(t *testing.T) {
	c, err := NewComm(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(r *Rank) error {
		return r.HaloExchange(30, []float64{float64(r.ID())})
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	c, err := NewComm(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.Run(func(r *Rank) error {
		if r.ID() == 0 {
			return r.Send(1, 5, []float64{42})
		}
		vals, err := r.Recv(0, 5)
		if err != nil {
			return err
		}
		if len(vals) != 1 || vals[0] != 42 {
			t.Errorf("recv = %v", vals)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaterPipeline(t *testing.T) {
	c, err := NewComm(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	d, err := RunWaterSubsteps(c, WaterProfile{
		StripsPerRank: 2, Slots: 2,
		GridTaskDuration: 100 * time.Microsecond, ReduceTaskDuration: 10 * time.Microsecond,
		Substeps: 2, ReinitIters: 2, JacobiIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 {
		t.Fatal("no measured duration")
	}
	// 2 substeps, each: 8 pre + 2*3 reinit + 3 mid + 3*3 jacobi + 6 post
	// stages; grid stages sleep >= 100us each. The run must take at least
	// the serial grid compute of one rank.
	if d < 2*time.Millisecond {
		t.Fatalf("pipeline too fast (%v); stages did not execute", d)
	}
}
