// Package dataflow implements the Naiad-style baseline ("Naiad-opt" in
// the paper's evaluation): a fully distributed control plane that installs
// a static data-flow graph on every worker once, after which workers
// generate and schedule their tasks locally and exchange data directly —
// zero per-iteration controller traffic.
//
// The trade-off the paper measures (§5.2, Table 3; §5.4, Figure 10) is
// that the schedule is static: *any* change — migrating one task, adding a
// worker — stops the job and reinstalls the full graph on every node.
// Install is a real, measured operation here: the graph is built with the
// same template builder as Nimbus, serialized with the production codec,
// and shipped over the transport. Data-dependent control flow is not
// supported (the paper's reason PhysBAM cannot run on static dataflow).
package dataflow

import (
	"fmt"
	"sync"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/core"
	"nimbus/internal/datastore"
	"nimbus/internal/flow"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// Config configures a dataflow runtime.
type Config struct {
	// Workers is the node count.
	Workers int
	// Slots is per-node execution concurrency.
	Slots int
	// Latency is the one-way message latency of the simulated network.
	Latency time.Duration
	// Registry resolves task functions.
	Registry *fn.Registry
}

// Runtime is a running set of dataflow nodes.
type Runtime struct {
	cfg   Config
	tr    *transport.Mem
	nodes []*node
	// installed is the current static graph.
	installed *core.Assignment
	iter      uint64
}

// New starts the nodes of a dataflow runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 8
	}
	if cfg.Registry == nil {
		cfg.Registry = fn.NewRegistry()
	}
	r := &Runtime{cfg: cfg, tr: transport.NewMem(cfg.Latency)}
	for i := 0; i < cfg.Workers; i++ {
		n, err := newNode(r, ids.WorkerID(i+1))
		if err != nil {
			r.Close()
			return nil, err
		}
		r.nodes = append(r.nodes, n)
	}
	return r, nil
}

// Close stops all nodes.
func (r *Runtime) Close() {
	for _, n := range r.nodes {
		n.close()
	}
}

// Install builds the static graph for the given stages and placement and
// ships it to every node, returning the measured install time. Calling
// Install again models Naiad's full reinstall on any schedule change.
func (r *Runtime) Install(stages []*proto.SubmitStage, place core.Placement, dir *flow.Directory) (time.Duration, error) {
	start := time.Now()
	b := core.NewBuilder(dir, place)
	for _, s := range stages {
		if err := b.AddStage(s); err != nil {
			return 0, fmt.Errorf("dataflow: %w", err)
		}
	}
	a := b.Finalize(1)
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		msg := a.InstallMessage(n.id, "dataflow")
		raw := proto.Marshal(msg)
		wg.Add(1)
		go func(n *node, raw []byte) {
			defer wg.Done()
			n.install(raw)
		}(n, raw)
	}
	wg.Wait()
	r.installed = a
	return time.Since(start), nil
}

// RunIteration executes the installed graph once on every node and blocks
// until all complete, returning the measured iteration time.
func (r *Runtime) RunIteration() (time.Duration, error) {
	if r.installed == nil {
		return 0, fmt.Errorf("dataflow: no graph installed")
	}
	r.iter++
	base := ids.CommandID(r.iter * uint64(r.installed.MaxIndex()+1))
	start := time.Now()
	var wg sync.WaitGroup
	for _, n := range r.nodes {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			n.runIteration(base)
		}(n)
	}
	wg.Wait()
	return time.Since(start), nil
}

// node is one dataflow worker: installed entries, an object store, and a
// payload inbox fed by peers.
type node struct {
	r       *Runtime
	id      ids.WorkerID
	store   *datastore.Store
	entries []command.TemplateEntry

	lis transport.Listener

	mu       sync.Mutex
	cond     *sync.Cond
	payloads map[ids.CommandID]*proto.DataPayload
	closed   bool

	peerMu sync.Mutex
	peers  map[ids.WorkerID]transport.Conn
	// accepted holds inbound connections, closed at shutdown so pump
	// goroutines exit even when peers close later.
	accepted []transport.Conn

	wg sync.WaitGroup
}

func dataAddr(id ids.WorkerID) string { return fmt.Sprintf("dataflow/%d", id) }

func newNode(r *Runtime, id ids.WorkerID) (*node, error) {
	lis, err := r.tr.Listen(dataAddr(id))
	if err != nil {
		return nil, err
	}
	n := &node{
		r: r, id: id, store: datastore.New(), lis: lis,
		payloads: make(map[ids.CommandID]*proto.DataPayload),
		peers:    make(map[ids.WorkerID]transport.Conn),
	}
	n.cond = sync.NewCond(&n.mu)
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

func (n *node) close() {
	n.mu.Lock()
	n.closed = true
	n.cond.Broadcast()
	n.mu.Unlock()
	n.lis.Close()
	n.peerMu.Lock()
	for _, c := range n.peers {
		c.Close()
	}
	for _, c := range n.accepted {
		c.Close()
	}
	n.peerMu.Unlock()
	n.wg.Wait()
}

func (n *node) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.lis.Accept()
		if err != nil {
			return
		}
		n.peerMu.Lock()
		n.accepted = append(n.accepted, conn)
		n.peerMu.Unlock()
		n.wg.Add(1)
		go n.pump(conn)
	}
}

func (n *node) pump(conn transport.Conn) {
	defer n.wg.Done()
	for {
		raw, err := conn.Recv()
		if err != nil {
			return
		}
		msg, err := proto.Unmarshal(raw)
		if err != nil {
			continue
		}
		if p, ok := msg.(*proto.DataPayload); ok {
			n.mu.Lock()
			n.payloads[p.DstCommand] = p
			n.cond.Broadcast()
			n.mu.Unlock()
		}
	}
}

// install decodes an InstallTemplate message (real codec round trip, so
// install cost includes serialization on both sides).
func (n *node) install(raw []byte) {
	msg, err := proto.Unmarshal(raw)
	if err != nil {
		return
	}
	if m, ok := msg.(*proto.InstallTemplate); ok {
		n.entries = m.Entries
	}
}

func (n *node) send(dst ids.WorkerID, p *proto.DataPayload) {
	if dst == n.id {
		n.mu.Lock()
		n.payloads[p.DstCommand] = p
		n.cond.Broadcast()
		n.mu.Unlock()
		return
	}
	n.peerMu.Lock()
	conn, ok := n.peers[dst]
	if !ok {
		var err error
		conn, err = n.r.tr.Dial(dataAddr(dst))
		if err != nil {
			n.peerMu.Unlock()
			return
		}
		n.peers[dst] = conn
	}
	n.peerMu.Unlock()
	_ = conn.Send(proto.Marshal(p))
}

// runIteration executes the node's slice of the graph once: local
// dependency resolution, slot-limited task execution, push-model data
// exchange — exactly what the installed static schedule prescribes.
func (n *node) runIteration(base ids.CommandID) {
	type state struct {
		entry   *command.TemplateEntry
		missing int
		waiters []int
	}
	states := make(map[int32]*state, len(n.entries))
	order := make([]int32, 0, len(n.entries))
	for i := range n.entries {
		e := &n.entries[i]
		states[e.Index] = &state{entry: e}
		order = append(order, e.Index)
	}
	// Local edges only: dependencies on entries of other workers are
	// carried by copies, not before sets.
	for _, idx := range order {
		st := states[idx]
		for _, dep := range st.entry.BeforeIdx {
			if ds, ok := states[dep]; ok {
				ds.waiters = append(ds.waiters, int(idx))
				st.missing++
			}
		}
	}

	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	remaining := len(order)
	slots := make(chan struct{}, n.r.cfg.Slots)
	for i := 0; i < n.r.cfg.Slots; i++ {
		slots <- struct{}{}
	}

	var complete func(st *state)
	var launch func(st *state)

	complete = func(st *state) {
		mu.Lock()
		remaining--
		ready := make([]*state, 0, len(st.waiters))
		for _, w := range st.waiters {
			ws := states[int32(w)]
			ws.missing--
			if ws.missing == 0 {
				ready = append(ready, ws)
			}
		}
		mu.Unlock()
		cond.Broadcast()
		for _, ws := range ready {
			launch(ws)
		}
	}

	launch = func(st *state) {
		e := st.entry
		switch e.Kind {
		case command.Task:
			go func() {
				<-slots
				f := n.r.cfg.Registry.Lookup(e.Function)
				if f != nil {
					reads := make([][]byte, len(e.Reads))
					for i, o := range e.Reads {
						reads[i] = n.store.Ensure(o, ids.NoLogical).Data
					}
					writes := make([][]byte, len(e.Writes))
					objs := make([]*datastore.Object, len(e.Writes))
					for i, o := range e.Writes {
						objs[i] = n.store.Ensure(o, ids.NoLogical)
						writes[i] = objs[i].Data
					}
					ctx := fn.NewCtx(n.id, e.Fixed, reads, writes)
					_ = f(ctx)
					for i, o := range objs {
						data, _ := ctx.Result(i)
						o.Data = data
					}
				}
				slots <- struct{}{}
				complete(st)
			}()
		case command.CopySend:
			go func() {
				obj := n.store.Ensure(e.Reads[0], e.Logical)
				n.send(e.DstWorker, &proto.DataPayload{
					DstCommand: base + ids.CommandID(e.DstIdx),
					Object:     e.Reads[0],
					Logical:    e.Logical,
					Data:       obj.Data,
				})
				complete(st)
			}()
		case command.CopyRecv:
			go func() {
				id := base + ids.CommandID(e.Index)
				n.mu.Lock()
				for {
					if p, ok := n.payloads[id]; ok {
						delete(n.payloads, id)
						n.mu.Unlock()
						n.store.Install(e.Writes[0], e.Logical, p.Version, p.Data)
						complete(st)
						return
					}
					if n.closed {
						n.mu.Unlock()
						complete(st)
						return
					}
					n.cond.Wait()
				}
			}()
		default:
			complete(st)
		}
	}

	for _, idx := range order {
		st := states[idx]
		if st.missing == 0 {
			launch(st)
		}
	}
	mu.Lock()
	for remaining > 0 {
		cond.Wait()
	}
	mu.Unlock()
}
