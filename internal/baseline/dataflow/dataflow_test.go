package dataflow

import (
	"testing"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/fn"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
)

func lrishStages(tasks int, taskParams params.Blob, fnID ids.FunctionID) []*proto.SubmitStage {
	return []*proto.SubmitStage{
		{Stage: 1, Fn: fnID, Tasks: tasks, Params: taskParams,
			Refs: []proto.VarRef{
				{Var: 1, Pattern: proto.OnePerTask},
				{Var: 2, Pattern: proto.Shared},
				{Var: 1, Write: true, Pattern: proto.OnePerTask},
			}},
		{Stage: 2, Fn: fnID, Tasks: 1, Params: taskParams,
			Refs: []proto.VarRef{
				{Var: 1, Pattern: proto.Grouped},
				{Var: 2, Write: true, Pattern: proto.Shared},
			}},
	}
}

func installLRish(t *testing.T, rt *Runtime, workers, tasks int, p params.Blob, fnID ids.FunctionID) time.Duration {
	t.Helper()
	place := core.NewStaticPlacement(workers)
	place.Define(1, tasks)
	place.Define(2, 1)
	var alloc ids.ObjectIDs
	dir := flow.NewDirectory(&alloc)
	d, err := rt.Install(lrishStages(tasks, p, fnID), place, dir)
	if err != nil {
		t.Fatalf("install: %v", err)
	}
	return d
}

// TestIterations runs a static graph for several iterations and checks
// completion and timing sanity.
func TestIterations(t *testing.T) {
	rt, err := New(Config{Workers: 3, Slots: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	installLRish(t, rt, 3, 6, fn.SimParams(time.Millisecond), fn.FuncSim)
	for i := 0; i < 3; i++ {
		d, err := rt.RunIteration()
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if d < time.Millisecond {
			t.Fatalf("iteration %d finished in %v; tasks did not run", i, d)
		}
		if d > time.Second {
			t.Fatalf("iteration %d took %v; scheduling stalled", i, d)
		}
	}
}

// TestRealComputation checks that data actually flows through the static
// graph: a counting function accumulates across iterations.
func TestRealComputation(t *testing.T) {
	reg := fn.NewRegistry()
	const fnBump ids.FunctionID = 200
	reg.MustRegister(fnBump, "test/bump", func(c *fn.Ctx) error {
		v := params.NewDecoder(params.Blob(c.WriteBuf(0))).Floats()
		cur := 0.0
		if len(v) > 0 {
			cur = v[0]
		}
		c.SetWrite(0, params.NewEncoder(16).Floats([]float64{cur + 1}).Blob())
		return nil
	})
	rt, err := New(Config{Workers: 2, Slots: 2, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	installLRish(t, rt, 2, 4, nil, fnBump)
	const iters = 3
	for i := 0; i < iters; i++ {
		if _, err := rt.RunIteration(); err != nil {
			t.Fatal(err)
		}
	}
	// Each data partition is bumped once per iteration.
	found := 0
	for _, n := range rt.nodes {
		for _, o := range n.store.Snapshot() {
			v := params.NewDecoder(params.Blob(o.Data)).Floats()
			if len(v) == 1 && v[0] == iters {
				found++
			}
		}
	}
	if found == 0 {
		t.Fatal("no object accumulated across iterations; data plane broken")
	}
}

// TestReinstallCost verifies reinstalling (any schedule change) works and
// is measured.
func TestReinstallCost(t *testing.T) {
	rt, err := New(Config{Workers: 2, Slots: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	d1 := installLRish(t, rt, 2, 4, fn.SimParams(0), fn.FuncSim)
	if _, err := rt.RunIteration(); err != nil {
		t.Fatal(err)
	}
	d2 := installLRish(t, rt, 2, 4, fn.SimParams(0), fn.FuncSim)
	if d1 <= 0 || d2 <= 0 {
		t.Fatalf("install durations not measured: %v %v", d1, d2)
	}
	if _, err := rt.RunIteration(); err != nil {
		t.Fatal(err)
	}
}
