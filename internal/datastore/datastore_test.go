package datastore

import (
	"sync"
	"testing"

	"nimbus/internal/ids"
)

func TestCreateGetDestroy(t *testing.T) {
	s := New()
	if err := s.Create(1, 10, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(1, 10, nil); err == nil {
		t.Fatal("duplicate create should fail")
	}
	o := s.Get(1)
	if o == nil || o.Logical != 10 || len(o.Data) != 1 {
		t.Fatalf("object = %+v", o)
	}
	s.Destroy(1)
	if s.Get(1) != nil {
		t.Fatal("destroyed object still present")
	}
	s.Destroy(1) // idempotent
}

func TestEnsureAndInstall(t *testing.T) {
	s := New()
	o := s.Ensure(2, 20)
	if o.Logical != 20 {
		t.Fatalf("logical = %v", o.Logical)
	}
	if s.Ensure(2, 99) != o {
		t.Fatal("ensure must be stable")
	}
	s.Install(2, 20, 3, []byte{7})
	if o.Version != 3 || o.Data[0] != 7 {
		t.Fatalf("install did not swap: %+v", o)
	}
	// Install creates when absent.
	s.Install(3, 30, 1, []byte{8})
	if s.Get(3) == nil {
		t.Fatal("install did not create")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := New()
	for _, id := range []ids.ObjectID{5, 1, 3} {
		s.Ensure(id, ids.LogicalID(id))
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0].ID != 1 || snap[2].ID != 5 {
		t.Fatalf("snapshot order wrong: %v", snap)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("clear failed")
	}
}

// TestShardCounts verifies shard rounding and that every shard count
// presents the same single-store semantics.
func TestShardCounts(t *testing.T) {
	for _, n := range []int{0, 1, 3, 16} {
		s := NewSharded(n)
		for id := ids.ObjectID(1); id <= 100; id++ {
			s.Install(id, ids.LogicalID(id), uint64(id), []byte{byte(id)})
		}
		if s.Len() != 100 {
			t.Fatalf("shards=%d: len = %d", n, s.Len())
		}
		snap := s.Snapshot()
		for i, o := range snap {
			if o.ID != ids.ObjectID(i+1) {
				t.Fatalf("shards=%d: snapshot[%d] = %s", n, i, o.ID)
			}
		}
		s.Destroy(50)
		if s.Get(50) != nil || s.Len() != 99 {
			t.Fatalf("shards=%d: destroy failed", n)
		}
		s.Clear()
		if s.Len() != 0 {
			t.Fatalf("shards=%d: clear failed", n)
		}
	}
}

// TestInstallSingleCriticalSection hammers Install and Ensure on the same
// object from many goroutines. With the old ensure-unlock-relock window, a
// concurrent Install could interleave between lookup and mutation and the
// final object could hold one call's data with another's version; with one
// critical section, whichever Install runs last leaves a consistent
// (version, data) pair.
func TestInstallSingleCriticalSection(t *testing.T) {
	s := New()
	const goroutines, rounds = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				v := uint64(g*rounds + i + 1)
				s.Install(7, 70, v, []byte{byte(v), byte(v >> 8), byte(v >> 16)})
				s.Ensure(7, 70)
			}
		}(g)
	}
	wg.Wait()
	o := s.Get(7)
	if o == nil || o.Logical != 70 {
		t.Fatalf("object = %+v", o)
	}
	// The surviving data must be the buffer installed with the surviving
	// version — a torn install would pair them inconsistently.
	want := []byte{byte(o.Version), byte(o.Version >> 8), byte(o.Version >> 16)}
	if len(o.Data) != 3 || o.Data[0] != want[0] || o.Data[1] != want[1] || o.Data[2] != want[2] {
		t.Fatalf("version %d paired with data %v", o.Version, o.Data)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := ids.ObjectID(g*100 + i)
				s.Ensure(id, 1)
				s.Get(id)
				s.Install(id, 1, uint64(i), []byte{byte(i)})
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d", s.Len())
	}
}
