package datastore

import (
	"sync"
	"testing"

	"nimbus/internal/ids"
)

func TestCreateGetDestroy(t *testing.T) {
	s := New()
	if err := s.Create(1, 10, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Create(1, 10, nil); err == nil {
		t.Fatal("duplicate create should fail")
	}
	o := s.Get(1)
	if o == nil || o.Logical != 10 || len(o.Data) != 1 {
		t.Fatalf("object = %+v", o)
	}
	s.Destroy(1)
	if s.Get(1) != nil {
		t.Fatal("destroyed object still present")
	}
	s.Destroy(1) // idempotent
}

func TestEnsureAndInstall(t *testing.T) {
	s := New()
	o := s.Ensure(2, 20)
	if o.Logical != 20 {
		t.Fatalf("logical = %v", o.Logical)
	}
	if s.Ensure(2, 99) != o {
		t.Fatal("ensure must be stable")
	}
	s.Install(2, 20, 3, []byte{7})
	if o.Version != 3 || o.Data[0] != 7 {
		t.Fatalf("install did not swap: %+v", o)
	}
	// Install creates when absent.
	s.Install(3, 30, 1, []byte{8})
	if s.Get(3) == nil {
		t.Fatal("install did not create")
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestSnapshotSorted(t *testing.T) {
	s := New()
	for _, id := range []ids.ObjectID{5, 1, 3} {
		s.Ensure(id, ids.LogicalID(id))
	}
	snap := s.Snapshot()
	if len(snap) != 3 || snap[0].ID != 1 || snap[2].ID != 5 {
		t.Fatalf("snapshot order wrong: %v", snap)
	}
	s.Clear()
	if s.Len() != 0 {
		t.Fatal("clear failed")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				id := ids.ObjectID(g*100 + i)
				s.Ensure(id, 1)
				s.Get(id)
				s.Install(id, 1, uint64(i), []byte{byte(i)})
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Fatalf("len = %d", s.Len())
	}
}
