// Package datastore implements a worker's in-memory physical data object
// store.
//
// Nimbus tasks operate on mutable data objects (paper §3.3): supporting
// in-place modification avoids copies, lets loop iterations reuse object
// identifiers (so templates can cache them), and keeps the object
// population small. A physical object is one worker-resident instance of a
// logical object; it has a stable ObjectID, a logical identity, a version
// label and a byte buffer. Received data installs by pointer swap (paper
// §3.4): the transport reads into a fresh buffer and the store swaps it in
// once the receive command's before set is satisfied.
package datastore

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"nimbus/internal/ids"
)

// Object is one physical data object instance.
type Object struct {
	ID      ids.ObjectID
	Logical ids.LogicalID
	// Version labels the data currently held, as assigned by the
	// controller's directory. It is bookkeeping for checkpoints and
	// debugging; ordering correctness comes from command before sets.
	Version uint64
	// Data is the object's buffer. Task functions may mutate it in place
	// or replace it entirely.
	Data []byte
	// spill holds the object's body on disk while it is spilled (Data is
	// nil then); readers fault it back in through the store.
	spill *Spilled
}

// DefaultShards is the shard count New uses. Executor goroutines resolve
// read/write sets concurrently with the control loop's creates and
// installs; sharding keeps them off a single mutex.
const DefaultShards = 16

// shard is one lock domain of the table. The padding rounds the struct to
// 128 bytes so neighbouring shards' mutexes never share a cache line.
type shard struct {
	mu      sync.RWMutex
	objects map[ids.ObjectID]*Object
	_       [128 - 32]byte
}

// Store holds a worker's physical objects. It is safe for concurrent use:
// executor goroutines read and write objects while the control loop creates
// and destroys them.
//
// The table is split into power-of-two shards keyed by a multiplicative
// hash of the ObjectID, so parallel executors resolving disjoint objects do
// not serialize on one RWMutex. Object *contents* are not protected by the
// store: the control plane's before sets guarantee exclusive access during
// writes, which is the same contract Nimbus's C++ workers rely on.
type Store struct {
	shards []shard
	mask   uint64
	// faults counts spilled objects faulted back into memory on read.
	faults atomic.Uint64
}

// New returns an empty store with DefaultShards shards.
func New() *Store { return NewSharded(DefaultShards) }

// NewSharded returns an empty store with n shards, rounded up to a power of
// two (n <= 1 gives a single-lock store, which benchmarks use as the
// pre-sharding baseline).
func NewSharded(n int) *Store {
	size := 1
	for size < n {
		size <<= 1
	}
	s := &Store{shards: make([]shard, size), mask: uint64(size - 1)}
	for i := range s.shards {
		s.shards[i].objects = make(map[ids.ObjectID]*Object)
	}
	return s
}

// shardOf picks the lock domain for an object. Fibonacci hashing spreads
// the controller's sequentially allocated ObjectIDs across shards.
func (s *Store) shardOf(id ids.ObjectID) *shard {
	return &s.shards[(uint64(id)*0x9E3779B97F4A7C15)>>32&s.mask]
}

// Create allocates an object. Creating an existing ID is an error.
func (s *Store) Create(id ids.ObjectID, logical ids.LogicalID, data []byte) error {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.objects[id]; ok {
		return fmt.Errorf("datastore: object %s already exists", id)
	}
	sh.objects[id] = &Object{ID: id, Logical: logical, Data: data}
	return nil
}

// Ensure returns the object with the given ID, creating an empty one bound
// to logical if absent. Copy receives and patches use Ensure so that data
// movement can materialize instances lazily.
func (s *Store) Ensure(id ids.ObjectID, logical ids.LogicalID) *Object {
	sh := s.shardOf(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o := sh.ensureLocked(id, logical)
	if o.spill != nil {
		s.faultLocked(o)
	}
	return o
}

func (sh *shard) ensureLocked(id ids.ObjectID, logical ids.LogicalID) *Object {
	if o, ok := sh.objects[id]; ok {
		return o
	}
	o := &Object{ID: id, Logical: logical}
	sh.objects[id] = o
	return o
}

// Get returns the object or nil if absent, faulting a spilled body back
// into memory so callers always observe Data populated.
func (s *Store) Get(id ids.ObjectID) *Object {
	sh := s.shardOf(id)
	sh.mu.RLock()
	o := sh.objects[id]
	spilled := o != nil && o.spill != nil
	sh.mu.RUnlock()
	if !spilled {
		return o
	}
	// Upgrade to the write lock for the fault; re-check under it, since a
	// concurrent reader may have faulted (or an Install superseded) the
	// spill between the locks.
	sh.mu.Lock()
	defer sh.mu.Unlock()
	o = sh.objects[id]
	if o != nil && o.spill != nil {
		s.faultLocked(o)
	}
	return o
}

// Destroy removes an object. Destroying a missing object is a no-op, which
// keeps Destroy idempotent across recovery replays.
func (s *Store) Destroy(id ids.ObjectID) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	o := sh.objects[id]
	delete(sh.objects, id)
	sh.mu.Unlock()
	if o != nil && o.spill != nil {
		o.spill.Remove()
	}
}

// Install swaps fresh data into the object, creating it if needed, in one
// critical section — lookup, creation and mutation hold the shard lock
// together, so no concurrent Install can interleave between the ensure and
// the swap. It implements the receive-side pointer swap of the push-model
// data plane.
func (s *Store) Install(id ids.ObjectID, logical ids.LogicalID, version uint64, data []byte) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	o := sh.ensureLocked(id, logical)
	old := o.spill
	o.Data = data
	o.Version = version
	o.spill = nil
	if o.Logical == ids.NoLogical {
		o.Logical = logical
	}
	sh.mu.Unlock()
	if old != nil {
		// A fresh install supersedes a spilled body that was never read.
		old.Remove()
	}
}

// Len reports the number of live objects.
func (s *Store) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		n += len(sh.objects)
		sh.mu.RUnlock()
	}
	return n
}

// Snapshot returns the live objects sorted by ID, as one point-in-time
// view: all shard locks are held together (in index order) while
// collecting, so concurrent creates and destroys cannot produce a
// membership set that never existed. Spilled objects are faulted back in
// — checkpointing reads Data — which is why the locks are exclusive.
// The data slices are shared, so the caller must finish with them before
// execution resumes.
func (s *Store) Snapshot() []*Object {
	n := 0
	for i := range s.shards {
		s.shards[i].mu.Lock()
		n += len(s.shards[i].objects)
	}
	out := make([]*Object, 0, n)
	for i := range s.shards {
		for _, o := range s.shards[i].objects {
			if o.spill != nil {
				s.faultLocked(o)
			}
			out = append(out, o)
		}
	}
	for i := range s.shards {
		s.shards[i].mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clear removes every object (recovery reload starts from a clean store).
func (s *Store) Clear() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		old := sh.objects
		sh.objects = make(map[ids.ObjectID]*Object)
		sh.mu.Unlock()
		for _, o := range old {
			if o.spill != nil {
				o.spill.Remove()
			}
		}
	}
}
