// Package datastore implements a worker's in-memory physical data object
// store.
//
// Nimbus tasks operate on mutable data objects (paper §3.3): supporting
// in-place modification avoids copies, lets loop iterations reuse object
// identifiers (so templates can cache them), and keeps the object
// population small. A physical object is one worker-resident instance of a
// logical object; it has a stable ObjectID, a logical identity, a version
// label and a byte buffer. Received data installs by pointer swap (paper
// §3.4): the transport reads into a fresh buffer and the store swaps it in
// once the receive command's before set is satisfied.
package datastore

import (
	"fmt"
	"sort"
	"sync"

	"nimbus/internal/ids"
)

// Object is one physical data object instance.
type Object struct {
	ID      ids.ObjectID
	Logical ids.LogicalID
	// Version labels the data currently held, as assigned by the
	// controller's directory. It is bookkeeping for checkpoints and
	// debugging; ordering correctness comes from command before sets.
	Version uint64
	// Data is the object's buffer. Task functions may mutate it in place
	// or replace it entirely.
	Data []byte
}

// Store holds a worker's physical objects. It is safe for concurrent use:
// executor goroutines read and write objects while the control loop creates
// and destroys them.
//
// Locking granularity is a single RWMutex over the table. Object *contents*
// are not protected by the store: the control plane's before sets guarantee
// exclusive access during writes, which is the same contract Nimbus's C++
// workers rely on.
type Store struct {
	mu      sync.RWMutex
	objects map[ids.ObjectID]*Object
}

// New returns an empty store.
func New() *Store {
	return &Store{objects: make(map[ids.ObjectID]*Object)}
}

// Create allocates an object. Creating an existing ID is an error.
func (s *Store) Create(id ids.ObjectID, logical ids.LogicalID, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.objects[id]; ok {
		return fmt.Errorf("datastore: object %s already exists", id)
	}
	s.objects[id] = &Object{ID: id, Logical: logical, Data: data}
	return nil
}

// Ensure returns the object with the given ID, creating an empty one bound
// to logical if absent. Copy receives and patches use Ensure so that data
// movement can materialize instances lazily.
func (s *Store) Ensure(id ids.ObjectID, logical ids.LogicalID) *Object {
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.objects[id]; ok {
		return o
	}
	o := &Object{ID: id, Logical: logical}
	s.objects[id] = o
	return o
}

// Get returns the object or nil if absent.
func (s *Store) Get(id ids.ObjectID) *Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.objects[id]
}

// Destroy removes an object. Destroying a missing object is a no-op, which
// keeps Destroy idempotent across recovery replays.
func (s *Store) Destroy(id ids.ObjectID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.objects, id)
}

// Install swaps fresh data into the object, creating it if needed. It
// implements the receive-side pointer swap of the push-model data plane.
func (s *Store) Install(id ids.ObjectID, logical ids.LogicalID, version uint64, data []byte) {
	o := s.Ensure(id, logical)
	s.mu.Lock()
	o.Data = data
	o.Version = version
	if o.Logical == ids.NoLogical {
		o.Logical = logical
	}
	s.mu.Unlock()
}

// Len reports the number of live objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// Snapshot returns the live objects sorted by ID. Checkpointing uses it to
// enumerate what must be saved; the data slices are shared, so the caller
// must finish with them before execution resumes.
func (s *Store) Snapshot() []*Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Object, 0, len(s.objects))
	for _, o := range s.objects {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Clear removes every object (recovery reload starts from a clean store).
func (s *Store) Clear() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.objects = make(map[ids.ObjectID]*Object)
}
