package datastore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func newTestSpillFS(t *testing.T) *SpillFS {
	t.Helper()
	fs, err := NewSpillFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func spillBytes(t *testing.T, fs *SpillFS, data []byte) *Spilled {
	t.Helper()
	sw, err := fs.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off += 100 {
		end := off + 100
		if end > len(data) {
			end = len(data)
		}
		if err := sw.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	sp, err := sw.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// A spilled install is disk-backed until the first read faults it in,
// bit-identical, consuming the spill file.
func TestSpillInstallFaultIn(t *testing.T) {
	fs := newTestSpillFS(t)
	data := bytes.Repeat([]byte{7, 11, 13}, 1000)
	sp := spillBytes(t, fs, data)

	s := New()
	s.InstallSpilled(42, 5, 3, sp)
	if got := s.Spilled(); got != 1 {
		t.Fatalf("Spilled() = %d, want 1", got)
	}
	o := s.Get(42)
	if o == nil {
		t.Fatal("object missing")
	}
	if !bytes.Equal(o.Data, data) {
		t.Fatal("faulted data differs from spilled data")
	}
	if o.Version != 3 {
		t.Fatalf("version %d, want 3", o.Version)
	}
	if s.Faults() != 1 {
		t.Fatalf("Faults() = %d, want 1", s.Faults())
	}
	if s.Spilled() != 0 {
		t.Fatal("object still counted as spilled after fault-in")
	}
	if _, err := os.Stat(sp.Path); !os.IsNotExist(err) {
		t.Fatal("spill file not consumed by fault-in")
	}
	// A second read must not fault again.
	s.Get(42)
	if s.Faults() != 1 {
		t.Fatal("second read faulted again")
	}
}

// Ensure faults in just like Get (the task read path uses Ensure).
func TestSpillEnsureFaultIn(t *testing.T) {
	fs := newTestSpillFS(t)
	data := []byte("spilled body")
	s := New()
	s.InstallSpilled(7, 1, 1, spillBytes(t, fs, data))
	if got := s.Ensure(7, 1).Data; !bytes.Equal(got, data) {
		t.Fatalf("Ensure data = %q, want %q", got, data)
	}
	if s.Faults() != 1 {
		t.Fatalf("Faults() = %d, want 1", s.Faults())
	}
}

// Install and Destroy over a never-read spilled body must remove the
// spill file — torn-down jobs cannot leak disk.
func TestSpillSupersedeAndDestroyCleanUp(t *testing.T) {
	fs := newTestSpillFS(t)
	s := New()

	sp1 := spillBytes(t, fs, []byte("one"))
	s.InstallSpilled(1, 1, 1, sp1)
	s.Install(1, 1, 2, []byte("fresh"))
	if _, err := os.Stat(sp1.Path); !os.IsNotExist(err) {
		t.Fatal("superseded spill file not removed")
	}

	sp2 := spillBytes(t, fs, []byte("two"))
	s.InstallSpilled(2, 2, 1, sp2)
	s.Destroy(2)
	if _, err := os.Stat(sp2.Path); !os.IsNotExist(err) {
		t.Fatal("destroyed object's spill file not removed")
	}

	sp3 := spillBytes(t, fs, []byte("three"))
	s.InstallSpilled(3, 3, 1, sp3)
	s.Clear()
	if _, err := os.Stat(sp3.Path); !os.IsNotExist(err) {
		t.Fatal("cleared store's spill file not removed")
	}
	if s.Faults() != 0 {
		t.Fatal("cleanup paths must not count as faults")
	}
}

// Snapshot must surface spilled bodies in Data (checkpointing reads it).
func TestSpillSnapshotFaultsIn(t *testing.T) {
	fs := newTestSpillFS(t)
	data := bytes.Repeat([]byte{9}, 500)
	s := New()
	s.InstallSpilled(9, 4, 2, spillBytes(t, fs, data))
	snap := s.Snapshot()
	if len(snap) != 1 || !bytes.Equal(snap[0].Data, data) {
		t.Fatal("snapshot did not fault spilled body in")
	}
}

// An aborted writer leaves nothing behind.
func TestSpillWriterAbort(t *testing.T) {
	fs := newTestSpillFS(t)
	sw, err := fs.NewWriter()
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	sw.Abort()
	ents, err := os.ReadDir(fs.Dir())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		t.Fatalf("abort left %s behind", filepath.Join(fs.Dir(), e.Name()))
	}
}
