package datastore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"nimbus/internal/ids"
)

// This file implements the store's spill layer. When a receiving worker's
// in-flight reassembly buffers exceed its memory budget, a transfer's
// bytes stream into a spill file instead of RAM; on completion the object
// installs disk-backed and is faulted back into memory on first read.
// Spill files are written with the same crash-safety idiom as
// durable.FS.Save — unique temp file, fsync, rename — so a torn write can
// never masquerade as a completed spill, but unlike checkpoints they are
// cache, not durability: directory fsyncs are skipped and the whole spill
// root is discarded at worker shutdown.

// SpillFS allocates spill files under one directory (one per worker).
type SpillFS struct {
	dir   string
	seq   atomic.Uint64
	fault atomic.Pointer[func(op string) error]
}

// SetFault installs a fault hook consulted before each disk operation
// ("create", "write", "sync"); a non-nil return is surfaced as that
// operation's error (e.g. a synthetic ENOSPC). Pass nil to disarm. Only
// tests use this.
func (s *SpillFS) SetFault(f func(op string) error) {
	if f == nil {
		s.fault.Store(nil)
		return
	}
	s.fault.Store(&f)
}

func (s *SpillFS) injectFault(op string) error {
	if f := s.fault.Load(); f != nil {
		return (*f)(op)
	}
	return nil
}

// NewSpillFS returns a spill allocator rooted at dir, creating it if
// needed.
func NewSpillFS(dir string) (*SpillFS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("datastore: spill root: %w", err)
	}
	return &SpillFS{dir: dir}, nil
}

// Dir returns the spill root.
func (s *SpillFS) Dir() string { return s.dir }

// NewWriter opens a spill file for one in-flight transfer.
func (s *SpillFS) NewWriter() (*SpillWriter, error) {
	if err := s.injectFault("create"); err != nil {
		return nil, fmt.Errorf("datastore: spill create: %w", err)
	}
	f, err := os.CreateTemp(s.dir, "xfer-*.tmp")
	if err != nil {
		return nil, fmt.Errorf("datastore: spill create: %w", err)
	}
	return &SpillWriter{fs: s, f: f, tmp: f.Name()}, nil
}

// SpillWriter streams one transfer's bytes to disk.
type SpillWriter struct {
	fs  *SpillFS
	f   *os.File
	tmp string
	n   int64
}

// Write appends p to the spill file.
func (sw *SpillWriter) Write(p []byte) error {
	if err := sw.fs.injectFault("write"); err != nil {
		return fmt.Errorf("datastore: spill write: %w", err)
	}
	if _, err := sw.f.Write(p); err != nil {
		return fmt.Errorf("datastore: spill write: %w", err)
	}
	sw.n += int64(len(p))
	return nil
}

// Size reports the bytes written so far.
func (sw *SpillWriter) Size() int64 { return sw.n }

// Finalize fsyncs, closes and renames the spill file into place,
// returning the completed handle. After Finalize the writer is spent.
func (sw *SpillWriter) Finalize() (*Spilled, error) {
	if err := sw.fs.injectFault("sync"); err != nil {
		sw.Abort()
		return nil, fmt.Errorf("datastore: spill sync: %w", err)
	}
	if err := sw.f.Sync(); err != nil {
		sw.Abort()
		return nil, fmt.Errorf("datastore: spill sync: %w", err)
	}
	if err := sw.f.Close(); err != nil {
		os.Remove(sw.tmp)
		return nil, fmt.Errorf("datastore: spill close: %w", err)
	}
	final := filepath.Join(sw.fs.dir, fmt.Sprintf("obj-%d.spill", sw.fs.seq.Add(1)))
	if err := os.Rename(sw.tmp, final); err != nil {
		os.Remove(sw.tmp)
		return nil, fmt.Errorf("datastore: spill rename: %w", err)
	}
	return &Spilled{Path: final, Size: sw.n}, nil
}

// Abort discards an incomplete spill (transfer aborted, pump torn down).
func (sw *SpillWriter) Abort() {
	sw.f.Close()
	os.Remove(sw.tmp)
}

// Spilled is a completed on-disk object body awaiting fault-in.
type Spilled struct {
	Path string
	Size int64
}

// Read loads the spilled bytes.
func (sp *Spilled) Read() ([]byte, error) {
	data, err := os.ReadFile(sp.Path)
	if err != nil {
		return nil, fmt.Errorf("datastore: spill read: %w", err)
	}
	return data, nil
}

// Remove deletes the spill file.
func (sp *Spilled) Remove() { os.Remove(sp.Path) }

// InstallSpilled swaps a disk-backed body into the object: Data is nil and
// the spill handle holds the bytes until a reader faults them in. Any
// previous spill for the object is superseded and removed.
func (s *Store) InstallSpilled(id ids.ObjectID, logical ids.LogicalID, version uint64, sp *Spilled) {
	sh := s.shardOf(id)
	sh.mu.Lock()
	o := sh.ensureLocked(id, logical)
	old := o.spill
	o.Data = nil
	o.Version = version
	o.spill = sp
	if o.Logical == ids.NoLogical {
		o.Logical = logical
	}
	sh.mu.Unlock()
	if old != nil {
		old.Remove()
	}
}

// faultLocked loads a spilled object's bytes back into memory (shard lock
// held). The spill file is consumed: objects are mutable in place, so a
// faulted body on disk would instantly be stale.
func (s *Store) faultLocked(o *Object) {
	sp := o.spill
	data, err := sp.Read()
	if err != nil {
		// The spill file is gone or unreadable; surface an empty body
		// rather than wedging every reader. The fault counter still moves,
		// so tests observing spills never mistake this for the no-spill
		// path.
		data = nil
	}
	o.Data = data
	o.spill = nil
	s.faults.Add(1)
	sp.Remove()
}

// Faults reports how many spilled objects have been faulted back into
// memory.
func (s *Store) Faults() uint64 { return s.faults.Load() }

// Spilled reports how many live objects are currently disk-backed.
func (s *Store) Spilled() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for _, o := range sh.objects {
			if o.spill != nil {
				n++
			}
		}
		sh.mu.RUnlock()
	}
	return n
}
