package controller

import "nimbus/internal/ids"

// wmTracker incrementally maintains the done-watermark: the smallest
// command ID still covered by outstanding work. The controller previously
// recomputed it by scanning every outstanding command and instance on each
// block instantiation — O(outstanding) on the hottest control-plane path.
// The tracker replaces the scan with a lazy-deletion min-heap: add/remove
// are O(log n), and min is amortized O(log n) (each stale entry is popped
// exactly once). All operations are allocation-free once the heap slice and
// refcount map have reached steady-state size.
type wmTracker struct {
	// h is a min-heap of candidate IDs. Removed IDs are not deleted from
	// the heap; they linger as stale entries until they surface at the top.
	h []uint64
	// live refcounts the IDs currently tracked. A heap entry whose
	// refcount is zero is stale. Refcounts (not a set) make re-adding an ID
	// whose stale copy is still heap-resident harmless: the stale copy
	// simply becomes a duplicate of a live value.
	live map[uint64]int32
	// refs is the total live reference count (sum of the refcounts).
	// remove compacts the heap when stale entries dominate, bounding heap
	// memory even in workloads that never query min (e.g. central mode,
	// where nothing ever instantiates a template).
	refs int
}

func newWMTracker() *wmTracker {
	return &wmTracker{live: make(map[uint64]int32)}
}

// add starts tracking id as live outstanding work.
func (t *wmTracker) add(id ids.CommandID) {
	v := uint64(id)
	t.live[v]++
	t.refs++
	t.push(v)
}

// remove stops tracking one reference to id. Removing an untracked id is a
// no-op so callers need not pre-check membership on duplicate completions.
func (t *wmTracker) remove(id ids.CommandID) {
	v := uint64(id)
	rc, ok := t.live[v]
	if !ok {
		return
	}
	t.refs--
	if rc <= 1 {
		delete(t.live, v)
	} else {
		t.live[v] = rc - 1
	}
	// Mostly-stale heap: rebuild with one entry per live key. min only
	// needs every live key present, and the O(live) rebuild is amortized
	// against the removes that made the entries stale.
	if len(t.h) > 2*t.refs+64 {
		t.compact()
	}
}

// compact rebuilds the heap from the live set, dropping stale entries and
// duplicates.
func (t *wmTracker) compact() {
	t.h = t.h[:0]
	for v := range t.live {
		t.push(v)
	}
}

// min returns the smallest live ID, or def when nothing is tracked. Stale
// heap tops are pruned on the way.
func (t *wmTracker) min(def ids.CommandID) ids.CommandID {
	for len(t.h) > 0 {
		top := t.h[0]
		if t.live[top] > 0 {
			return ids.CommandID(top)
		}
		t.pop()
	}
	return def
}

// reset drops all tracked work (recovery flushes execution state).
func (t *wmTracker) reset() {
	t.h = t.h[:0]
	clear(t.live)
	t.refs = 0
}

// len reports the number of live tracked references (tests).
func (t *wmTracker) len() int { return t.refs }

// push and pop are a hand-rolled binary min-heap over the raw slice;
// container/heap would force every value through an interface.

func (t *wmTracker) push(v uint64) {
	t.h = append(t.h, v)
	i := len(t.h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if t.h[parent] <= t.h[i] {
			break
		}
		t.h[parent], t.h[i] = t.h[i], t.h[parent]
		i = parent
	}
}

func (t *wmTracker) pop() {
	n := len(t.h) - 1
	t.h[0] = t.h[n]
	t.h = t.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && t.h[l] < t.h[smallest] {
			smallest = l
		}
		if r < n && t.h[r] < t.h[smallest] {
			smallest = r
		}
		if smallest == i {
			return
		}
		t.h[i], t.h[smallest] = t.h[smallest], t.h[i]
		i = smallest
	}
}
