package controller

import (
	"fmt"

	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
)

// This file implements checkpoint-based fault recovery (paper §4.4),
// scoped per job:
//
//	checkpoint: wait until the job's worker queues drain, snapshot its
//	execution state (directory manifest + driver-operation log), and have
//	every worker save the job's live latest objects to durable storage,
//	keyed by (job, checkpoint);
//
//	recovery: on worker failure, every job that was running recovers
//	independently — halt its slice of every surviving worker (halts are
//	job-scoped, so other jobs' in-flight arenas are untouched), flush the
//	job's queues, revert to the job's checkpoint (reload objects onto the
//	surviving workers), rebuild its template assignments for the new
//	placement, and replay only that job's driver-operation log.

func (c *Controller) handleCheckpointReq(j *jobState, m *proto.CheckpointReq) {
	for _, seq := range j.ckpt.requested {
		if seq == m.Seq {
			return // re-issued across a failover; already queued
		}
	}
	j.ckpt.requested = append(j.ckpt.requested, m.Seq)
	c.logOpBeforeCheckpoint()
	c.resolveIfQuiet(j)
}

// logOpBeforeCheckpoint is a marker hook: checkpoint requests themselves
// are not logged (a replay must not re-checkpoint).
func (c *Controller) logOpBeforeCheckpoint() {}

// beginCheckpoint runs at one job's quiesce point: every live latest
// object of the job is saved to durable storage under the job's namespace.
func (c *Controller) beginCheckpoint(j *jobState) {
	j.ckpt.saving = true
	j.ckpt.count++
	j.ckpt.logMark = len(j.oplog)
	id := j.ckpt.count
	j.ckpt.pendingManifest = make(map[ids.LogicalID]uint64)
	key := params.NewEncoder(8).Uint(id).Blob()
	batches := make(map[ids.WorkerID][]*command.Command)
	j.dir.Logicals(func(l ids.LogicalID, latest uint64, replicas map[ids.WorkerID]*flow.Replica) {
		if latest == 0 {
			return
		}
		var holder ids.WorkerID
		var obj ids.ObjectID
		for w, r := range replicas {
			if r.Version == latest && (holder == ids.NoWorker || w < holder) {
				holder, obj = w, r.Object
			}
		}
		if holder == ids.NoWorker {
			c.cfg.Logf("controller: %s checkpoint %d: %s has no live replica", j.id, id, l)
			return
		}
		cmdID := j.cmdIDs.Next()
		before := j.ledgers[holder].Read(obj, cmdID, nil)
		batches[holder] = append(batches[holder], &command.Command{
			ID: cmdID, Kind: command.Save,
			Reads: []ids.ObjectID{obj}, Before: before,
			Params: key, Logical: l, Version: latest,
		})
		j.ckpt.pendingManifest[l] = latest
	})
	// The Save commands allocated IDs outside any logged op; sync the
	// high-water marks so a promotion cannot re-issue them.
	c.replSync(j)
	c.dispatchCommands(j, batches)
	// With nothing to save, commit immediately.
	c.resolveIfQuiet(j)
}

// commitCheckpoint finalizes a job's checkpoint once its saves drained.
// Only the oplog prefix the manifest covers (stamped at begin) is
// cleared: a driver op pipelined in between executed live but is absent
// from the saved state, so its entry must survive for replay — the
// ledgers order each Save before any later write to the same object, so
// the manifest is exactly the at-begin state and replaying the suffix
// reapplies those ops consistently. With v1's blocking Checkpoint the
// window was unreachable; the async surface opens it.
func (c *Controller) commitCheckpoint(j *jobState) {
	if j.ckpt.failed != "" {
		c.abortCheckpoint(j)
		return
	}
	j.ckpt.saving = false
	j.ckpt.last = j.ckpt.count
	j.ckpt.manifest = j.ckpt.pendingManifest
	j.ckpt.pendingManifest = nil
	drop := j.ckpt.logMark
	if tail := j.oplog[j.ckpt.logMark:]; len(tail) > 0 {
		j.oplog = append([]proto.Msg(nil), tail...)
	} else {
		j.oplog = nil
	}
	j.ckpt.logMark = 0
	// Mirror the truncation on the standby: it adopts the manifest and
	// drops the same oplog prefix the checkpoint now subsumes.
	c.replCkpt(j, uint64(drop))
	for _, seq := range j.ckpt.requested {
		c.sendDriver(j, &proto.BarrierDone{Seq: seq, Applied: c.safeApplied(j)})
	}
	j.ckpt.requested = nil
}

// handleSaveFailed records a worker-reported durable Save error against
// the in-progress checkpoint. The report outruns the command's batched
// Complete on the FIFO control link, so the veto always lands before the
// commit it must stop. Reports for a checkpoint no longer in progress
// (a recovery already discarded it) are stale and dropped.
func (c *Controller) handleSaveFailed(j *jobState, m *proto.SaveFailed) {
	c.cfg.Logf("controller: %s checkpoint %d: save %s failed: %s", j.id, m.Ckpt, m.Logical, m.Err)
	if !j.ckpt.saving || m.Ckpt != j.ckpt.count {
		return
	}
	if j.ckpt.failed == "" {
		j.ckpt.failed = fmt.Sprintf("save %s: %s", m.Logical, m.Err)
	}
}

// abortCheckpoint fails the in-progress checkpoint instead of committing
// it: the previous manifest and the full oplog stay authoritative (so
// recovery is untouched), durable keys are not reused (count already
// advanced past the aborted id), and every driver waiting on the barrier
// gets a typed error instead of a success.
func (c *Controller) abortCheckpoint(j *jobState) {
	reason := fmt.Sprintf("checkpoint %d failed: %s", j.ckpt.count, j.ckpt.failed)
	c.cfg.Logf("controller: %s %s", j.id, reason)
	c.Stats.CkptsAborted.Add(1)
	j.ckpt.saving = false
	j.ckpt.failed = ""
	j.ckpt.pendingManifest = nil
	j.ckpt.logMark = 0
	for _, seq := range j.ckpt.requested {
		c.sendDriver(j, &proto.BarrierDone{Seq: seq, Applied: c.safeApplied(j), Err: reason})
	}
	j.ckpt.requested = nil
}

// failWorker handles a worker failure: remove it from the shared pool,
// then start an independent recovery for every admitted job (paper §4.4,
// per tenant). Jobs that lose nothing still rebuild placement, because
// their variables were spread over the failed worker too.
func (c *Controller) failWorker(id ids.WorkerID) {
	ws := c.workers[id]
	if ws == nil || !ws.alive {
		return
	}
	ws.alive = false
	ws.conn.Close()
	for i, a := range c.active {
		if a == id {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	for _, j := range c.jobList() {
		c.failWorkerForJob(j, id)
	}
}

// failWorkerForJob runs one job's reaction to a worker failure: halt the
// job on every surviving worker, then revert and replay once the halts
// ack. Halts carry the job, so no other tenant's state is flushed.
func (c *Controller) failWorkerForJob(j *jobState, id ids.WorkerID) {
	if j.recovering {
		// A second failure during recovery: drop it from the halt set and
		// let the in-progress recovery continue over the smaller set.
		delete(j.haltPending, id)
		if len(j.haltPending) == 0 {
			c.finishRecovery(j)
		}
		return
	}
	c.Stats.Recoveries.Add(1)
	if len(c.active) == 0 {
		c.cfg.Logf("controller: all workers lost; %s cannot recover", j.id)
		return
	}
	if j.ckpt.last == 0 {
		c.cfg.Logf("controller: worker %s failed with no %s checkpoint; the job's data on it is lost", id, j.id)
	}
	j.recovering = true
	j.haltSeq++
	j.haltPending = make(map[ids.WorkerID]bool)
	for _, wid := range c.active {
		j.haltPending[wid] = true
		c.sendWorker(c.workers[wid], &proto.Halt{Job: j.id, Seq: j.haltSeq})
	}
	if len(j.haltPending) == 0 {
		c.finishRecovery(j)
	}
}

func (c *Controller) handleHaltAck(j *jobState, m *proto.HaltAck) {
	if !j.recovering || m.Seq != j.haltSeq {
		return
	}
	delete(j.haltPending, m.Worker)
	if len(j.haltPending) == 0 {
		c.finishRecovery(j)
	}
}

// finishRecovery reverts one job to its checkpoint and replays its logged
// driver operations.
func (c *Controller) finishRecovery(j *jobState) {
	if len(c.active) == 0 {
		c.cfg.Logf("controller: all workers lost during recovery; %s halted", j.id)
		j.recovering = false
		return
	}
	// Flush the job's execution state.
	j.outstanding = make(map[ids.CommandID]ids.WorkerID)
	j.instances = make(map[uint64]*instState)
	j.wm.reset()
	j.central = newCentralGraph(c, j)
	// Discard an in-progress checkpoint: its Save commands were just
	// flushed with the rest of the outstanding work, so committing it at
	// the next quiesce would pin a manifest referencing objects that were
	// never durably written (and trim the oplog prefix that compensates
	// for them). The driver's request stays queued in ckpt.requested, so
	// a fresh checkpoint — under a new id, never reusing the abandoned
	// one's durable keys — runs once the recovered job drains.
	if j.ckpt.saving {
		j.ckpt.saving = false
		j.ckpt.failed = ""
		j.ckpt.pendingManifest = nil
		j.ckpt.logMark = 0
	}
	// Requeue the job's interrupted fetches: driver gets go back on the
	// get queue, and an interrupted predicate fetch re-arms its loop so
	// the next quiesce point re-fetches against the recovered state.
	for seq, pf := range c.fetches {
		if pf.job != j.id {
			continue
		}
		if pf.loop != nil {
			pf.loop.fetching = false
		} else {
			j.gets = append(j.gets, pendingGet{seq: pf.driverSeq, v: pf.v, p: pf.p})
		}
		delete(c.fetches, seq)
	}

	// Fresh directory and ledgers; repartition over the survivors.
	j.dir = flow.NewDirectory(&j.objIDs)
	for _, wid := range c.active {
		j.ledgers[wid] = flow.NewLedger(wid)
	}
	c.reassignAll(j)

	// Reload checkpointed objects onto their new owners.
	logicalOwner := j.logicalOwners()
	key := params.NewEncoder(8).Uint(j.ckpt.last).Blob()
	batches := make(map[ids.WorkerID][]*command.Command)
	for l, ver := range j.ckpt.manifest {
		owner, ok := logicalOwner[l]
		if !ok {
			continue
		}
		obj := j.dir.Instance(l, owner)
		cmdID := j.cmdIDs.Next()
		before := j.ledgers[owner].Write(obj, cmdID, nil)
		batches[owner] = append(batches[owner], &command.Command{
			ID: cmdID, Kind: command.Load,
			Writes: []ids.ObjectID{obj}, Before: before,
			Params: key, Logical: l, Version: ver,
		})
		j.dir.ApplyBlockEffect(l, ver, []ids.WorkerID{owner})
	}
	for _, wid := range c.active {
		c.sendWorker(c.workers[wid], &proto.Resume{Job: j.id})
	}
	c.dispatchCommands(j, batches)

	// Rebuild the job's template assignments for the new placement
	// (parallel group build) and replay the operations since the
	// checkpoint. Templates whose original build is still in flight are
	// skipped here; those zombie builds fail revalidation at commit (the
	// directory object changed) and resolve against the recovered state.
	c.retargetAll(j)
	j.lastBlock = ids.NoTemplate
	j.autoValid = false
	j.recovering = false

	replay := j.oplog
	j.replaying = true
	for _, m := range replay {
		c.replayOp(j, m)
	}
	j.replaying = false
	c.Stats.OpsReplayed.Add(uint64(len(replay)))
	// Replay re-executed every logged op with fresh command and object
	// IDs; sync the high-water marks so a later promotion starts above
	// them.
	c.replSync(j)
	// Driver ops fenced behind the recovery (a reattaching driver's
	// journal resend, or ops queued before the failure) apply on top of
	// the restored state.
	c.drainOps(j)
	c.resolveIfQuiet(j)
}

// logicalOwners maps every logical object of one job to its owning worker
// under the current placement.
func (j *jobState) logicalOwners() map[ids.LogicalID]ids.WorkerID {
	out := make(map[ids.LogicalID]ids.WorkerID)
	for _, vm := range j.vars {
		for p, l := range vm.logicals {
			out[l] = vm.assign[p]
		}
	}
	return out
}

// replayOp re-executes one logged driver operation against the restored
// state. Definitions and template installs are idempotent and skipped;
// data and execution operations re-run.
func (c *Controller) replayOp(j *jobState, m proto.Msg) {
	switch op := m.(type) {
	case *proto.DefineVariable:
		// Variables persist across recovery.
	case *proto.TemplateStart, *proto.TemplateEnd:
		// Templates persist; the block's stages were already recorded.
	case *proto.Put:
		c.handlePut(j, op)
	case *proto.SubmitStage:
		if err := c.scheduleStageLive(j, op); err != nil {
			c.cfg.Logf("controller: %s replaying stage %s: %v", j.id, op.Stage, err)
		}
	case *proto.InstantiateBlock:
		c.handleInstantiateBlock(j, op)
	default:
		c.cfg.Logf("controller: unexpected logged operation %s", m.Kind())
	}
}
