package controller

import (
	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
)

// This file implements checkpoint-based fault recovery (paper §4.4):
//
//	checkpoint: wait until worker queues drain, snapshot the execution
//	state (directory manifest + driver-operation log), and have every
//	worker save its live latest objects to durable storage;
//
//	recovery: on worker failure, halt every worker, flush queues, revert
//	to the checkpoint (reload objects onto the surviving workers), rebuild
//	template assignments for the new placement, and replay the driver
//	operations logged since the checkpoint.

func (c *Controller) handleCheckpointReq(m *proto.CheckpointReq) {
	c.ckpt.requested = append(c.ckpt.requested, m.Seq)
	c.logOpBeforeCheckpoint()
	c.resolveIfQuiet()
}

// logOpBeforeCheckpoint is a marker hook: checkpoint requests themselves
// are not logged (a replay must not re-checkpoint).
func (c *Controller) logOpBeforeCheckpoint() {}

// beginCheckpoint runs at a quiesce point: every live latest object is
// saved to durable storage.
func (c *Controller) beginCheckpoint() {
	c.ckpt.saving = true
	c.ckpt.count++
	id := c.ckpt.count
	c.ckpt.pendingManifest = make(map[ids.LogicalID]uint64)
	key := params.NewEncoder(8).Uint(id).Blob()
	batches := make(map[ids.WorkerID][]*command.Command)
	c.dir.Logicals(func(l ids.LogicalID, latest uint64, replicas map[ids.WorkerID]*flow.Replica) {
		if latest == 0 {
			return
		}
		var holder ids.WorkerID
		var obj ids.ObjectID
		for w, r := range replicas {
			if r.Version == latest && (holder == ids.NoWorker || w < holder) {
				holder, obj = w, r.Object
			}
		}
		if holder == ids.NoWorker {
			c.cfg.Logf("controller: checkpoint %d: %s has no live replica", id, l)
			return
		}
		cmdID := c.cmdIDs.Next()
		before := c.ledgers[holder].Read(obj, cmdID, nil)
		batches[holder] = append(batches[holder], &command.Command{
			ID: cmdID, Kind: command.Save,
			Reads: []ids.ObjectID{obj}, Before: before,
			Params: key, Logical: l, Version: latest,
		})
		c.ckpt.pendingManifest[l] = latest
	})
	c.dispatchCommands(batches)
	// With nothing to save, commit immediately.
	c.resolveIfQuiet()
}

// commitCheckpoint finalizes a checkpoint once its saves drained.
func (c *Controller) commitCheckpoint() {
	c.ckpt.saving = false
	c.ckpt.last = c.ckpt.count
	c.ckpt.manifest = c.ckpt.pendingManifest
	c.ckpt.pendingManifest = nil
	c.oplog = nil
	for _, seq := range c.ckpt.requested {
		c.sendDriver(&proto.BarrierDone{Seq: seq})
	}
	c.ckpt.requested = nil
}

// failWorker handles a worker failure: remove it, halt the survivors,
// revert to the last checkpoint and replay (paper §4.4).
func (c *Controller) failWorker(id ids.WorkerID) {
	ws := c.workers[id]
	if ws == nil || !ws.alive {
		return
	}
	ws.alive = false
	ws.conn.Close()
	for i, a := range c.active {
		if a == id {
			c.active = append(c.active[:i], c.active[i+1:]...)
			break
		}
	}
	if c.recovering {
		// A second failure during recovery: drop it from the halt set and
		// let the in-progress recovery continue over the smaller set.
		delete(c.haltPending, id)
		if len(c.haltPending) == 0 {
			c.finishRecovery()
		}
		return
	}
	c.Stats.Recoveries.Add(1)
	if len(c.active) == 0 {
		c.cfg.Logf("controller: all workers lost; job cannot recover")
		return
	}
	if c.ckpt.last == 0 {
		c.cfg.Logf("controller: worker %s failed with no checkpoint; data on it is lost", id)
	}
	c.recovering = true
	c.haltSeq++
	c.haltPending = make(map[ids.WorkerID]bool)
	for _, wid := range c.active {
		c.haltPending[wid] = true
		c.sendWorker(c.workers[wid], &proto.Halt{Seq: c.haltSeq})
	}
	if len(c.haltPending) == 0 {
		c.finishRecovery()
	}
}

func (c *Controller) handleHaltAck(m *proto.HaltAck) {
	if !c.recovering || m.Seq != c.haltSeq {
		return
	}
	delete(c.haltPending, m.Worker)
	if len(c.haltPending) == 0 {
		c.finishRecovery()
	}
}

// finishRecovery reverts to the checkpoint and replays the logged driver
// operations.
func (c *Controller) finishRecovery() {
	if len(c.active) == 0 {
		c.cfg.Logf("controller: all workers lost during recovery; job halted")
		c.recovering = false
		return
	}
	// Flush execution state.
	c.outstanding = make(map[ids.CommandID]ids.WorkerID)
	c.instances = make(map[uint64]*instState)
	c.wm.reset()
	c.central = newCentralGraph(c)
	// Requeue interrupted fetches as fresh gets.
	for _, pf := range c.fetches {
		c.gets = append(c.gets, pendingGet{seq: pf.driverSeq, v: pf.v, p: pf.p})
	}
	c.fetches = make(map[uint64]*pendingFetch)

	// Fresh directory and ledgers; repartition over the survivors.
	c.dir = flow.NewDirectory(&c.objIDs)
	for _, wid := range c.active {
		c.ledgers[wid] = flow.NewLedger(wid)
	}
	c.reassignAll()

	// Reload checkpointed objects onto their new owners.
	logicalOwner := c.logicalOwners()
	key := params.NewEncoder(8).Uint(c.ckpt.last).Blob()
	batches := make(map[ids.WorkerID][]*command.Command)
	for l, ver := range c.ckpt.manifest {
		owner, ok := logicalOwner[l]
		if !ok {
			continue
		}
		obj := c.dir.Instance(l, owner)
		cmdID := c.cmdIDs.Next()
		before := c.ledgers[owner].Write(obj, cmdID, nil)
		batches[owner] = append(batches[owner], &command.Command{
			ID: cmdID, Kind: command.Load,
			Writes: []ids.ObjectID{obj}, Before: before,
			Params: key, Logical: l, Version: ver,
		})
		c.dir.ApplyBlockEffect(l, ver, []ids.WorkerID{owner})
	}
	for _, wid := range c.active {
		c.sendWorker(c.workers[wid], &proto.Resume{})
	}
	c.dispatchCommands(batches)

	// Rebuild template assignments for the new placement (parallel group
	// build) and replay the operations since the checkpoint. Templates
	// whose original build is still in flight are skipped here; those
	// zombie builds fail revalidation at commit (the directory object
	// changed) and resolve against the recovered state.
	c.retargetAll()
	c.lastBlock = ids.NoTemplate
	c.autoValid = false
	c.recovering = false

	replay := c.oplog
	c.replaying = true
	for _, m := range replay {
		c.replayOp(m)
	}
	c.replaying = false
	c.resolveIfQuiet()
}

// logicalOwners maps every logical object to its owning worker under the
// current placement.
func (c *Controller) logicalOwners() map[ids.LogicalID]ids.WorkerID {
	out := make(map[ids.LogicalID]ids.WorkerID)
	for _, vm := range c.vars {
		for p, l := range vm.logicals {
			out[l] = vm.assign[p]
		}
	}
	return out
}

// replayOp re-executes one logged driver operation against the restored
// state. Definitions and template installs are idempotent and skipped;
// data and execution operations re-run.
func (c *Controller) replayOp(m proto.Msg) {
	switch op := m.(type) {
	case *proto.DefineVariable:
		// Variables persist across recovery.
	case *proto.TemplateStart, *proto.TemplateEnd:
		// Templates persist; the block's stages were already recorded.
	case *proto.Put:
		c.handlePut(op)
	case *proto.SubmitStage:
		if err := c.scheduleStageLive(op); err != nil {
			c.cfg.Logf("controller: replaying stage %s: %v", op.Stage, err)
		}
	case *proto.InstantiateBlock:
		c.handleInstantiateBlock(op)
	default:
		c.cfg.Logf("controller: unexpected logged operation %s", m.Kind())
	}
}
