package controller

import (
	"fmt"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/core"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// editStaged is one staged worker-template edit awaiting the next
// instantiation of its assignment.
type editStaged = command.Edit

// handleTemplateStart begins recording a basic block (paper §4.1: the
// driver marks basic blocks; the controller schedules the block normally
// while simultaneously storing it into a template).
func (c *Controller) handleTemplateStart(m *proto.TemplateStart) {
	if c.recording != nil {
		c.driverError(fmt.Sprintf("template %q started while %q is recording",
			m.Name, c.recording.tmpl.Name))
		return
	}
	if _, ok := c.templates[m.Name]; ok {
		c.driverError(fmt.Sprintf("template %q already installed", m.Name))
		return
	}
	c.recording = &recordingState{
		tmpl: &core.Template{ID: ids.TemplateID(c.tmplIDs.Next()), Name: m.Name},
	}
	c.logOp(m)
}

// handleTemplateEnd finishes recording and hands the block to the
// background build executor: the event loop only snapshots state and
// registers the in-flight build; the O(tasks) assignment construction runs
// off-loop and comes back as a commit event (builds.go). Instantiations
// arriving before the commit queue behind the build fence instead of
// stalling the loop.
func (c *Controller) handleTemplateEnd(m *proto.TemplateEnd) {
	rec := c.recording
	if rec == nil || rec.tmpl.Name != m.Name {
		c.driverError(fmt.Sprintf("template end for %q without matching start", m.Name))
		return
	}
	c.recording = nil
	c.templates[m.Name] = rec.tmpl
	c.logOp(m)
	c.startTemplateBuild(m.Name, rec.tmpl)
}

// installAssignment pushes worker templates to every worker that does not
// hold them yet.
func (c *Controller) installAssignment(t *core.Template, a *core.Assignment) {
	for _, w := range a.Workers() {
		if a.Installed[w] {
			continue
		}
		c.sendWorker(c.workers[w], a.InstallMessage(w, t.Name))
		a.Installed[w] = true
	}
}

// handleInstantiateBlock executes one cached basic block: validate (or
// auto-validate) the active assignment's preconditions, patch if needed,
// then send one instantiation message per participating worker
// (paper §2.2: n+1 control messages in the steady state).
func (c *Controller) handleInstantiateBlock(m *proto.InstantiateBlock) {
	t := c.templates[m.Name]
	if t == nil {
		c.driverError(fmt.Sprintf("instantiate of unknown template %q", m.Name))
		return
	}
	a := t.Active
	if a == nil {
		// Unreachable through the build fence (instantiations queue while
		// the template's build is in flight), kept as a guard.
		c.driverError(fmt.Sprintf("instantiate of template %q before its build finished", m.Name))
		return
	}
	start := time.Now()

	// Validation. A template instantiated immediately after itself
	// auto-validates because its construction guarantees its postcondition
	// covers its precondition (paper §4.2).
	if c.lastBlock == a.ID && c.autoValid {
		c.Stats.AutoValidations.Add(1)
	} else {
		c.Stats.Validations.Add(1)
		vstart := time.Now()
		viols := a.Validate(c.dir)
		c.Stats.ValidateNanos.Add(uint64(time.Since(vstart)))
		if len(viols) > 0 {
			if !c.applyPatch(a, viols) {
				return
			}
		}
	}

	// Stage any pending edits for this assignment.
	edits := c.pendingEdits[a.ID]
	delete(c.pendingEdits, a.ID)

	c.installAssignment(t, a)
	// The watermark must be computed before reserving the instance's ID
	// block: it promises that every ID below it is fully accounted for,
	// which must not cover the IDs about to be issued.
	watermark := c.doneWatermark()
	base := c.cmdIDs.Block(a.MaxIndex())
	c.nextInstance++
	inst := &instState{assignment: a, base: base, pending: make(map[ids.WorkerID]bool)}
	paramArray := m.ParamArray
	for _, w := range a.Workers() {
		inst.pending[w] = true
		msg := &proto.InstantiateTemplate{
			Template:      a.ID,
			Instance:      c.nextInstance,
			Base:          base,
			ParamArray:    paramArray,
			DoneWatermark: watermark,
		}
		if es := edits[w]; len(es) > 0 {
			msg.Edits = es
			for _, e := range es {
				c.Stats.EditsSent.Add(uint64(len(e.Remove) + len(e.Add)))
			}
		}
		c.sendWorker(c.workers[w], msg)
	}
	if len(inst.pending) > 0 {
		c.instances[c.nextInstance] = inst
		c.wm.add(base)
	}
	a.ApplyEffects(base, c.dir, c.ledgers)
	c.lastBlock = a.ID
	c.autoValid = true
	c.Stats.Instantiations.Add(1)
	c.Stats.InstantiateNanos.Add(uint64(time.Since(start)))
	c.logOp(m)
}

// applyPatch fixes precondition violations, preferring a cached patch for
// this control-flow transition (paper §4.2). It reports success.
func (c *Controller) applyPatch(a *core.Assignment, viols []core.Violation) bool {
	tr := core.Transition{Prev: c.lastBlock, Next: a.ID}
	p := c.patchCache.Lookup(tr, c.dir, viols)
	if p == nil {
		pstart := time.Now()
		var err error
		p, err = core.BuildPatch(ids.PatchID(c.patchIDs.Next()), c.dir, viols)
		if err != nil {
			c.driverError(err.Error())
			return false
		}
		c.Stats.PatchBuildNanos.Add(uint64(time.Since(pstart)))
		c.patchCache.Store(tr, p)
		c.Stats.PatchesBuilt.Add(1)
	} else {
		c.Stats.PatchCacheHits.Add(1)
	}
	base := c.cmdIDs.Block(len(p.Entries))
	for w, idxs := range p.PerWorker {
		ws := c.workers[w]
		if !p.Installed[w] {
			// First use on this worker: install the patch alongside the
			// instantiation so later transitions cost a single message.
			entries := make([]command.TemplateEntry, 0, len(idxs))
			for _, i := range idxs {
				entries = append(entries, p.Entries[i])
			}
			c.sendWorker(ws, &proto.InstallPatch{Patch: p.ID, Entries: entries})
			p.Installed[w] = true
		}
		c.sendWorker(ws, &proto.InstantiatePatch{Patch: p.ID, Base: base})
		for _, i := range idxs {
			c.trackOutstanding(base+ids.CommandID(i), w)
		}
	}
	p.ApplyEffects(base, c.dir, c.ledgers)
	return true
}

// doneWatermark returns a command ID below which every command is known
// complete, letting workers prune their completion sets. The minimum over
// outstanding commands and live instance bases is maintained incrementally
// by the wm tracker — this used to be an O(outstanding) scan on every
// block instantiation.
func (c *Controller) doneWatermark() ids.CommandID {
	return c.wm.min(ids.CommandID(c.cmdIDs.Peek()) + 1)
}

// Templates returns the installed template names (call via Do).
func (c *Controller) Templates() []string {
	names := make([]string, 0, len(c.templates))
	for n := range c.templates {
		names = append(names, n)
	}
	return names
}

// TemplateByName returns the installed template (call via Do; nil if
// absent). Exposed for the adaptation APIs and tests.
func (c *Controller) TemplateByName(name string) *core.Template {
	return c.templates[name]
}

// logOp appends a driver operation to the recovery log (paper §4.4: the
// controller replays execution since the last checkpoint after reverting
// to it). Replayed operations are not re-logged.
func (c *Controller) logOp(m proto.Msg) {
	if c.replaying {
		return
	}
	c.oplog = append(c.oplog, m)
}
