package controller

import (
	"fmt"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/core"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// editStaged is one staged worker-template edit awaiting the next
// instantiation of its assignment.
type editStaged = command.Edit

// handleTemplateStart begins recording a basic block for one job (paper
// §4.1: the driver marks basic blocks; the controller schedules the block
// normally while simultaneously storing it into a template). Template
// names are per-job: two jobs may record same-named templates.
func (c *Controller) handleTemplateStart(j *jobState, m *proto.TemplateStart) {
	if j.recording != nil {
		c.rejectOp(j, fmt.Sprintf("template %q started while %q is recording",
			m.Name, j.recording.tmpl.Name))
		return
	}
	if _, ok := j.templates[m.Name]; ok {
		c.rejectOp(j, fmt.Sprintf("template %q already installed", m.Name))
		return
	}
	j.recording = &recordingState{
		tmpl: &core.Template{ID: ids.TemplateID(j.tmplIDs.Next()), Name: m.Name},
	}
	c.logOp(j, m)
}

// handleTemplateEnd finishes recording and hands the block to the
// background build executor: the event loop only snapshots state and
// registers the in-flight build; the O(tasks) assignment construction runs
// off-loop and comes back as a commit event (builds.go). Instantiations
// arriving before the commit queue behind the job's build fence instead of
// stalling the loop — or any other job.
func (c *Controller) handleTemplateEnd(j *jobState, m *proto.TemplateEnd) {
	rec := j.recording
	if rec == nil || rec.tmpl.Name != m.Name {
		c.rejectOp(j, fmt.Sprintf("template end for %q without matching start", m.Name))
		return
	}
	j.recording = nil
	j.templates[m.Name] = rec.tmpl
	c.logOp(j, m)
	c.startTemplateBuild(j, m.Name, rec.tmpl)
}

// installAssignment pushes worker templates to every worker that does not
// hold them yet, tagged with the owning job's namespace.
func (c *Controller) installAssignment(j *jobState, t *core.Template, a *core.Assignment) {
	for _, w := range a.Workers() {
		if a.Installed[w] {
			continue
		}
		msg := a.InstallMessage(w, t.Name)
		msg.Job = j.id
		c.sendWorker(c.workers[w], msg)
		a.Installed[w] = true
	}
}

// handleInstantiateBlock executes one cached basic block: validate (or
// auto-validate) the active assignment's preconditions, patch if needed,
// then send one instantiation message per participating worker
// (paper §2.2: n+1 control messages in the steady state; multi-tenancy
// adds one varint — the job — per message). It reports success so the
// predicate-loop machinery (loops.go) can abort a loop whose iteration
// failed; the error itself already went to the driver.
func (c *Controller) handleInstantiateBlock(j *jobState, m *proto.InstantiateBlock) bool {
	t := j.templates[m.Name]
	if t == nil {
		c.rejectOp(j, fmt.Sprintf("instantiate of unknown template %q", m.Name))
		return false
	}
	a := t.Active
	if a == nil {
		// Unreachable through the build fence (instantiations queue while
		// the template's build is in flight), kept as a guard.
		c.rejectOp(j, fmt.Sprintf("instantiate of template %q before its build finished", m.Name))
		return false
	}
	start := time.Now()

	// Validation. A template instantiated immediately after itself
	// auto-validates because its construction guarantees its postcondition
	// covers its precondition (paper §4.2).
	if j.lastBlock == a.ID && j.autoValid {
		c.Stats.AutoValidations.Add(1)
	} else {
		c.Stats.Validations.Add(1)
		vstart := time.Now()
		viols := a.Validate(j.dir)
		c.Stats.ValidateNanos.Add(uint64(time.Since(vstart)))
		if len(viols) > 0 {
			if !c.applyPatch(j, a, viols) {
				// applyPatch already surfaced the driver error; only the
				// journal accounting remains.
				c.logRejected(j)
				return false
			}
		}
	}

	// Stage any pending edits for this assignment.
	edits := j.pendingEdits[a.ID]
	delete(j.pendingEdits, a.ID)

	c.installAssignment(j, t, a)
	// The watermark must be computed before reserving the instance's ID
	// block: it promises that every ID below it is fully accounted for,
	// which must not cover the IDs about to be issued.
	watermark := j.doneWatermark()
	base := j.cmdIDs.Block(a.MaxIndex())
	j.nextInstance++
	inst := &instState{assignment: a, base: base, pending: make(map[ids.WorkerID]bool)}
	paramArray := m.ParamArray
	for _, w := range a.Workers() {
		inst.pending[w] = true
		msg := &proto.InstantiateTemplate{
			Job:           j.id,
			Template:      a.ID,
			Instance:      j.nextInstance,
			Base:          base,
			ParamArray:    paramArray,
			DoneWatermark: watermark,
		}
		if es := edits[w]; len(es) > 0 {
			msg.Edits = es
			for _, e := range es {
				c.Stats.EditsSent.Add(uint64(len(e.Remove) + len(e.Add)))
			}
		}
		c.sendWorker(c.workers[w], msg)
	}
	if len(inst.pending) > 0 {
		j.instances[j.nextInstance] = inst
		j.wm.add(base)
	}
	a.ApplyEffects(base, j.dir, j.ledgers)
	j.lastBlock = a.ID
	j.autoValid = true
	c.Stats.Instantiations.Add(1)
	c.Stats.InstantiateNanos.Add(uint64(time.Since(start)))
	c.logOp(j, m)
	return true
}

// applyPatch fixes precondition violations, preferring a cached patch for
// this control-flow transition (paper §4.2). It reports success.
func (c *Controller) applyPatch(j *jobState, a *core.Assignment, viols []core.Violation) bool {
	tr := core.Transition{Prev: j.lastBlock, Next: a.ID}
	p := j.patchCache.Lookup(tr, j.dir, viols)
	if p == nil {
		pstart := time.Now()
		var err error
		p, err = core.BuildPatch(ids.PatchID(j.patchIDs.Next()), j.dir, viols)
		if err != nil {
			c.driverError(j, err.Error())
			return false
		}
		c.Stats.PatchBuildNanos.Add(uint64(time.Since(pstart)))
		j.patchCache.Store(tr, p)
		c.Stats.PatchesBuilt.Add(1)
	} else {
		c.Stats.PatchCacheHits.Add(1)
	}
	base := j.cmdIDs.Block(len(p.Entries))
	for w, idxs := range p.PerWorker {
		ws := c.workers[w]
		if !p.Installed[w] {
			// First use on this worker: install the patch alongside the
			// instantiation so later transitions cost a single message.
			entries := make([]command.TemplateEntry, 0, len(idxs))
			for _, i := range idxs {
				entries = append(entries, p.Entries[i])
			}
			c.sendWorker(ws, &proto.InstallPatch{Job: j.id, Patch: p.ID, Entries: entries})
			p.Installed[w] = true
		}
		c.sendWorker(ws, &proto.InstantiatePatch{Job: j.id, Patch: p.ID, Base: base})
		for _, i := range idxs {
			c.trackOutstanding(j, base+ids.CommandID(i), w)
		}
	}
	p.ApplyEffects(base, j.dir, j.ledgers)
	return true
}

// doneWatermark returns a command ID below which every one of the job's
// commands is known complete, letting workers prune the job's completion
// records. Per-job command IDs make the per-job watermark sound: another
// job's older outstanding IDs live in a different namespace entirely. The
// minimum over outstanding commands and live instance bases is maintained
// incrementally by the job's wm tracker — this used to be an
// O(outstanding) scan on every block instantiation.
func (j *jobState) doneWatermark() ids.CommandID {
	return j.wm.min(ids.CommandID(j.cmdIDs.Peek()) + 1)
}

// Templates returns the installed template names across all jobs (call
// via Do).
func (c *Controller) Templates() []string {
	var names []string
	for _, j := range c.jobList() {
		for n := range j.templates {
			names = append(names, n)
		}
	}
	return names
}

// TemplateByName returns an installed template by name, searching jobs in
// admission order (call via Do; nil if absent). Exposed for the adaptation
// APIs and tests.
func (c *Controller) TemplateByName(name string) *core.Template {
	for _, j := range c.jobList() {
		if t := j.templates[name]; t != nil {
			return t
		}
	}
	return nil
}

// logOp appends a driver operation to the job's recovery log (paper §4.4:
// the controller replays a job's execution since its last checkpoint after
// reverting to it), bumps the job's applied-op counter and streams the op
// to an attached standby (repl.go). Replayed operations are not re-logged,
// not re-counted and not re-replicated: the standby already holds them.
func (c *Controller) logOp(j *jobState, m proto.Msg) {
	if j.replaying {
		return
	}
	j.oplog = append(j.oplog, m)
	if !j.loopStepping {
		// Controller-originated ops (loop iterations) replay after a
		// failure but are not driver journal entries; counting them would
		// desynchronize reattach reconciliation.
		j.applied++
	}
	c.replOp(j, m)
}
