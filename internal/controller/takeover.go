package controller

import (
	"fmt"
	"sort"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// This file is the promoted controller's half of failover: rebuilding the
// control plane from the replicated shadow and taking the cluster over.
//
// When the standby's lease expires (standby.go) it calls NewFromReplica
// with its shadow state and StartTakeover to re-bind the primary's listen
// endpoint. Restored jobs park behind pendingTakeover while the worker
// roster reassembles via WorkerReconnect; once every expected worker is
// back, beginTakeover replays each job's definition history to rebuild
// variables and template recordings, then drives the job through the
// existing halt → revert-to-checkpoint → replay-oplog recovery path
// (recovery.go). Reattaching drivers learn the job's applied-op count and
// resend the journaled suffix the dead primary never logged.

// NewFromReplica builds a controller from a replicated snapshot. The
// result is inert until StartTakeover; epoch is the promoted leadership
// epoch (strictly above the deposed primary's).
func NewFromReplica(cfg Config, snap *proto.ReplSnapshot, epoch uint64) *Controller {
	c := New(cfg)
	c.epoch = epoch
	c.jobSeq = snap.JobSeq
	c.nextWorker = ids.WorkerID(snap.NextWorker)
	c.expectRejoin = make(map[ids.WorkerID]struct{}, len(snap.Workers))
	for _, w := range snap.Workers {
		c.expectRejoin[w] = struct{}{}
	}
	c.takeoverWait = true
	for _, rj := range snap.Jobs {
		c.restoreJob(rj)
	}
	return c
}

// restoreJob rebuilds one job's control-plane skeleton from its replicated
// shadow. Jobs keep their original IDs — drivers hold them. Variables,
// templates and directory state are NOT rebuilt here: they come from the
// definition replay and checkpoint revert in beginTakeover, once workers
// are back. The allocators advance past the replicated high-water marks
// first, before the directory captures the object allocator, so no ID a
// surviving worker may still hold state under is ever re-issued.
func (c *Controller) restoreJob(rj *proto.ReplJob) {
	weight := rj.Weight
	if weight <= 0 {
		weight = 1
	}
	j := &jobState{
		id:           rj.Job,
		name:         rj.Name,
		weight:       weight,
		vars:         make(map[ids.VariableID]*varMeta),
		ledgers:      make(map[ids.WorkerID]*flow.Ledger),
		templates:    make(map[string]*core.Template),
		patchCache:   core.NewPatchCache(),
		pendingEdits: make(map[ids.TemplateID]map[ids.WorkerID][]editStaged),
		building:     make(map[string]*buildJob),
		outstanding:  make(map[ids.CommandID]ids.WorkerID),
		instances:    make(map[uint64]*instState),
		wm:           newWMTracker(),
	}
	j.cmdIDs.AdvanceTo(rj.NextCmd)
	j.objIDs.AdvanceTo(rj.NextObj)
	j.dir = flow.NewDirectory(&j.objIDs)
	j.central = newCentralGraph(c, j)
	j.ckpt.last = rj.Ckpt
	j.ckpt.count = rj.CkptCount
	j.ckpt.manifest = make(map[ids.LogicalID]uint64, len(rj.Manifest))
	for _, e := range rj.Manifest {
		j.ckpt.manifest[e.Logical] = e.Version
	}
	j.defs = decodeOps(rj.Defs, c.cfg.Logf)
	j.oplog = decodeOps(rj.Oplog, c.cfg.Logf)
	j.applied = rj.Applied
	j.tenant = rj.Tenant
	j.pendingTakeover = true
	c.jobs[j.id] = j
	c.totalWeight += j.weight
	c.adoptJobTenant(j)
}

// decodeOps unmarshals a replicated raw-op list.
func decodeOps(raws [][]byte, logf func(string, ...any)) []proto.Msg {
	out := make([]proto.Msg, 0, len(raws))
	for _, raw := range raws {
		m, err := proto.Unmarshal(raw)
		if err != nil {
			logf("controller: bad replicated op: %v", err)
			continue
		}
		out = append(out, m)
	}
	return out
}

// StartTakeover binds the deposed primary's listen endpoint and starts the
// event loop. The bind retries up to deadline: on Mem the dead primary's
// teardown frees the address, and on TCP the kernel releases the port —
// either way the old listener's disappearance is the fence that proves
// the deposed primary can no longer accept. Once listening, takeover
// recovery fires as soon as the expected workers have reconnected.
func (c *Controller) StartTakeover(deadline time.Duration, cancel <-chan struct{}) error {
	lis, err := transport.ListenRetry(c.cfg.Transport, c.cfg.ControlAddr, transport.Backoff{}, deadline, cancel)
	if err != nil {
		return fmt.Errorf("controller: takeover bind: %w", err)
	}
	c.startWith(lis)
	c.Do(func() {
		c.takeoverAt = time.Now()
		c.maybeStartTakeover()
	})
	return nil
}

// maybeStartTakeover fires takeover recovery once the promoted
// controller's worker roster has reassembled. It waits for every worker
// the snapshot listed (a reconnecting worker holds job state the recovery
// revert needs to halt and reload); a worker that truly died during the
// outage is struck from the roster by checkTakeoverEviction once the
// heartbeat timeout elapses, so a permanent death shrinks the roster and
// routes the dead worker's partitions through the ordinary
// halt → revert → replay recovery instead of stalling takeover.
func (c *Controller) maybeStartTakeover() {
	if !c.takeoverWait || len(c.expectRejoin) > 0 {
		return
	}
	if len(c.jobs) > 0 && len(c.active) == 0 {
		return // jobs to recover but no capacity yet
	}
	c.takeoverWait = false
	for _, j := range c.jobList() {
		c.beginTakeover(j)
	}
}

// beginTakeover unparks one restored job: replay its definition history
// to rebuild variables and template recordings, then run it through the
// standard recovery path — halt every worker's slice of the job, revert
// to the checkpoint, replay the oplog suffix. The definition replay is
// record-only: handleDefineVariable and the template handlers run with
// j.replaying set, so nothing is re-logged or re-replicated, and stage
// specs append to their recording without scheduling live work.
func (c *Controller) beginTakeover(j *jobState) {
	if len(c.active) == 0 {
		c.cfg.Logf("controller: %s takeover parked: no workers", j.id)
		return
	}
	c.Stats.Takeovers.Add(1)
	j.replaying = true
	for _, m := range j.defs {
		c.replayDef(j, m)
	}
	j.replaying = false
	j.defs = nil
	j.pendingTakeover = false

	// Halt fan-out, exactly as a worker failure would: every surviving
	// worker flushes the job's queues and acks; finishRecovery then
	// reverts to the checkpoint and replays the oplog.
	j.recovering = true
	j.haltSeq++
	j.haltPending = make(map[ids.WorkerID]bool)
	for _, wid := range c.active {
		j.haltPending[wid] = true
		c.sendWorker(c.workers[wid], &proto.Halt{Job: j.id, Seq: j.haltSeq})
	}
	if len(j.haltPending) == 0 {
		c.finishRecovery(j)
	}
}

// replayDef re-applies one definition op on the promoted controller.
// Completed templates are installed without a build: retargetAll inside
// finishRecovery constructs their first assignment for the actual
// placement, exactly like a post-failure rebuild.
func (c *Controller) replayDef(j *jobState, m proto.Msg) {
	switch op := m.(type) {
	case *proto.DefineVariable:
		c.handleDefineVariable(j, op)
	case *proto.TemplateStart:
		c.handleTemplateStart(j, op)
	case *proto.SubmitStage:
		if j.recording != nil {
			j.recording.tmpl.Stages = append(j.recording.tmpl.Stages, op)
			j.recording.tmpl.TaskCount += op.Tasks
		}
	case *proto.TemplateEnd:
		if rec := j.recording; rec != nil && rec.tmpl.Name == op.Name {
			j.recording = nil
			j.templates[op.Name] = rec.tmpl
		}
	default:
		c.cfg.Logf("controller: unexpected replicated definition %s", m.Kind())
	}
}

// reconnectWorker readmits a worker under its prior identity after a
// controller switch (or a transient connection drop). The ID is the
// worker's data-plane identity — peers address fetches by it and the
// promoted directory will rebind the job state it still holds — so unlike
// registration it is preserved, not allocated.
func (c *Controller) reconnectWorker(m *proto.WorkerReconnect, conn transport.Conn) {
	if ws := c.workers[m.Worker]; ws != nil && ws.alive {
		c.cfg.Logf("controller: reconnect for live %s rejected", m.Worker)
		conn.Close()
		c.untrackConn(conn)
		return
	}
	if m.Worker > c.nextWorker {
		c.nextWorker = m.Worker
	}
	ws := &workerState{
		id: m.Worker, conn: conn, dataAddr: m.DataAddr,
		slots: m.Slots, alive: true, lastBeat: time.Now(),
	}
	c.workers[m.Worker] = ws
	c.active = append(c.active, m.Worker)
	sort.Slice(c.active, func(i, j int) bool { return c.active[i] < c.active[j] })
	for _, j := range c.jobs {
		j.ledgers[m.Worker] = flow.NewLedger(m.Worker)
	}
	peers := c.peerMap()
	c.sendWorker(ws, &proto.RegisterWorkerAck{
		Worker: m.Worker, Peers: peers, Eager: c.cfg.Mode == ModeCentral,
	})
	for _, other := range c.workers {
		if other.id != m.Worker && other.alive {
			c.sendWorker(other, &proto.RegisterWorkerAck{
				Worker: other.id, Peers: peers, Eager: c.cfg.Mode == ModeCentral,
			})
		}
	}
	c.sendQuotas(ws)
	c.wg.Add(1)
	go c.pump(conn, m.Worker, ids.NoJob, false)
	delete(c.expectRejoin, m.Worker)
	c.maybeStartTakeover()
}

// reattachDriver rebinds a driver to its restored job on the promoted
// controller. The ack carries the job's applied-op count: the driver
// resends its journal suffix past it, which applies on top of the
// takeover recovery through the op fence in program order.
func (c *Controller) reattachDriver(m *proto.DriverReattach, conn transport.Conn, gw *gwConn, sess uint64) {
	j := c.jobs[m.Job]
	if j == nil || j.dead {
		// Unknown job: the job ended before the failover, or this is not
		// the controller the driver thinks it is. Nack the session — for a
		// gateway session the shared connection stays up for its neighbors.
		nack := &proto.ReattachAck{Job: m.Job, Err: fmt.Sprintf("no such job %s", m.Job)}
		if gw != nil {
			c.stageGateway(gw, sess, nack)
			c.stageGatewayTop(gw, &proto.SessionClose{Session: sess})
			return
		}
		buf := proto.MarshalAppend(proto.GetBuf(), nack)
		if owned, _ := transport.SendOwned(conn, buf); !owned {
			proto.PutBuf(buf)
		}
		conn.Close()
		c.untrackConn(conn)
		return
	}
	// Unbind the stale attachment: a dedicated conn is closed, a gateway
	// session binding removed. Its pump exit (or SessionClose) must not
	// tear the job down, which the current-conn checks guarantee.
	if j.gw != nil && j.gw.sessions[j.sess] == j.id {
		delete(j.gw.sessions, j.sess)
	}
	if j.conn != nil {
		j.conn.Close()
	}
	if gw != nil {
		j.conn = nil
		j.gw = gw
		j.sess = sess
		gw.sessions[sess] = j.id
		c.sendDriver(j, &proto.ReattachAck{Job: j.id, Applied: j.applied, Ok: true})
		return
	}
	j.conn = conn
	j.gw = nil
	j.sess = 0
	c.sendDriver(j, &proto.ReattachAck{Job: j.id, Applied: j.applied, Ok: true})
	c.wg.Add(1)
	go c.pump(conn, ids.NoWorker, j.id, true)
}

// checkTakeoverEviction runs on the failure-detector tick of a promoted
// controller still waiting on its rejoin roster: snapshot-listed workers
// that have not reconnected within the heartbeat timeout are evicted.
// The roster shrinks and takeover recovery proceeds on the survivors —
// the evicted worker's partitions revert to the checkpoint and replay
// there, exactly as a live-worker failure would. An evicted worker that
// turns out to be merely slow readmits harmlessly through the ordinary
// reconnect path: its stale state is never referenced (the allocators
// are already past every ID it holds) and the roster no longer waits on
// it.
func (c *Controller) checkTakeoverEviction() {
	if !c.takeoverWait || len(c.expectRejoin) == 0 || c.cfg.HeartbeatTimeout <= 0 {
		return
	}
	if time.Since(c.takeoverAt) <= c.cfg.HeartbeatTimeout {
		return
	}
	for id := range c.expectRejoin {
		c.cfg.Logf("controller: takeover evicting %s: never reconnected", id)
		c.Stats.Evictions.Add(1)
		delete(c.expectRejoin, id)
	}
	c.maybeStartTakeover()
}

// checkReattachDeadline tears down restored jobs whose driver never
// reattached within Config.ReattachDeadline: without a driver there is
// nobody to resend the journal suffix or consume results, so instead of
// parking the job (possibly forever, behind pendingTakeover) it ends
// cleanly and frees its weight and worker state. A driver reattaching
// later gets the ordinary unknown-job nack.
func (c *Controller) checkReattachDeadline() {
	if c.cfg.ReattachDeadline <= 0 || c.takeoverAt.IsZero() {
		return
	}
	if time.Since(c.takeoverAt) <= c.cfg.ReattachDeadline {
		return
	}
	for _, j := range c.jobList() {
		if j.conn == nil && !j.dead {
			c.Stats.JobsExpired.Add(1)
			c.endJob(j, "driver never reattached within deadline")
		}
	}
}

// JobApplied returns one job's applied driver-operation count (zero for
// an unknown job). After a failover it must equal the driver's OpsSent:
// no logged operation lost, none double-applied.
func (c *Controller) JobApplied(job ids.JobID) uint64 {
	var n uint64
	c.Do(func() {
		if j := c.jobs[job]; j != nil {
			n = j.applied
		}
	})
	return n
}
