package controller

import (
	"math/rand"
	"testing"

	"nimbus/internal/ids"
)

// TestWMTrackerAgainstScan drives the tracker with a randomized
// add/remove/min workload and checks every min against a brute-force scan
// of the live multiset — the scan the tracker replaced.
func TestWMTrackerAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := newWMTracker()
	ref := make(map[uint64]int)
	refMin := func(def ids.CommandID) ids.CommandID {
		low := def
		first := true
		for id := range ref {
			if first || ids.CommandID(id) < low {
				low = ids.CommandID(id)
				first = false
			}
		}
		return low
	}
	var livePool []uint64
	for op := 0; op < 20000; op++ {
		switch r := rng.Intn(10); {
		case r < 5: // add a fresh ID
			id := uint64(rng.Intn(5000) + 1)
			tr.add(ids.CommandID(id))
			ref[id]++
			livePool = append(livePool, id)
		case r < 8 && len(livePool) > 0: // remove a live ID
			i := rng.Intn(len(livePool))
			id := livePool[i]
			livePool[i] = livePool[len(livePool)-1]
			livePool = livePool[:len(livePool)-1]
			tr.remove(ids.CommandID(id))
			if ref[id] <= 1 {
				delete(ref, id)
			} else {
				ref[id]--
			}
		case r == 8: // remove an untracked ID: must be a no-op
			tr.remove(ids.CommandID(1 << 50))
		default:
			def := ids.CommandID(uint64(rng.Intn(10000)) + 1)
			if got, want := tr.min(def), refMin(def); got != want {
				t.Fatalf("op %d: min(%d) = %d, want %d (live %d)",
					op, def, got, want, len(ref))
			}
		}
	}
	if got, want := tr.len(), len(livePool); got != want {
		t.Fatalf("tracker len = %d, want %d", got, want)
	}
	tr.reset()
	if got := tr.min(42); got != 42 {
		t.Fatalf("min after reset = %d, want default 42", got)
	}
	if tr.len() != 0 {
		t.Fatalf("len after reset = %d, want 0", tr.len())
	}
}

// TestWMTrackerDuplicateIDs checks the refcount semantics: an ID added
// twice stays the min until both references are removed.
func TestWMTrackerDuplicateIDs(t *testing.T) {
	tr := newWMTracker()
	tr.add(10)
	tr.add(10)
	tr.add(20)
	tr.remove(10)
	if got := tr.min(99); got != 10 {
		t.Fatalf("min = %d, want 10 (one reference still live)", got)
	}
	tr.remove(10)
	if got := tr.min(99); got != 20 {
		t.Fatalf("min = %d, want 20", got)
	}
	// Re-add while a stale heap copy exists.
	tr.add(10)
	if got := tr.min(99); got != 10 {
		t.Fatalf("min after re-add = %d, want 10", got)
	}
	tr.remove(10)
	tr.remove(20)
	if got := tr.min(99); got != 99 {
		t.Fatalf("min when empty = %d, want default", got)
	}
}

// TestWMTrackerHeapBounded drives the central-mode shape — heavy
// add/remove churn with min never queried — and checks the lazy heap
// compacts instead of accumulating one stale entry per removed command.
func TestWMTrackerHeapBounded(t *testing.T) {
	tr := newWMTracker()
	for i := 1; i <= 200000; i++ {
		tr.add(ids.CommandID(i))
		tr.remove(ids.CommandID(i))
	}
	if len(tr.h) > 128 {
		t.Fatalf("heap holds %d entries after draining every command", len(tr.h))
	}
	if got := tr.min(7); got != 7 {
		t.Fatalf("min = %d, want default 7", got)
	}
	// Live entries survive compaction.
	for i := 1; i <= 1000; i++ {
		tr.add(ids.CommandID(1000 + i))
	}
	for i := 1; i <= 20000; i++ {
		tr.add(ids.CommandID(100000 + i))
		tr.remove(ids.CommandID(100000 + i))
	}
	if got := tr.min(7); got != 1001 {
		t.Fatalf("min after churn = %d, want 1001", got)
	}
}

// BenchmarkWatermark measures the done-watermark query with K outstanding
// commands, comparing the incremental tracker against the O(K) scan it
// replaced. "tracker" is the shipped path: steady-state instantiation adds
// one base, completes one, and queries the min.
func BenchmarkWatermark(b *testing.B) {
	const outstanding = 8192
	b.Run("tracker", func(b *testing.B) {
		tr := newWMTracker()
		for i := 1; i <= outstanding; i++ {
			tr.add(ids.CommandID(i * 10))
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			id := ids.CommandID((outstanding + i + 1) * 10)
			tr.add(id)
			if tr.min(id) == 0 {
				b.Fatal("empty tracker")
			}
			tr.remove(id)
		}
	})
	b.Run("scan", func(b *testing.B) {
		m := make(map[ids.CommandID]ids.WorkerID, outstanding)
		for i := 1; i <= outstanding; i++ {
			m[ids.CommandID(i*10)] = 1
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			low := ids.CommandID(1 << 62)
			for id := range m {
				if id < low {
					low = id
				}
			}
			if low == 0 {
				b.Fatal("empty map")
			}
		}
	})
}
