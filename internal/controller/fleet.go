package controller

import (
	"fmt"
	"sort"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// This file implements the elastic worker fleet lifecycle (DESIGN.md
// "Elastic fleet"):
//
//	announce → admit → warm → ready          (join)
//	drain → (retarget + eager flush) → decommission
//
// A joining worker is admitted outside the active set, warmed — every live
// job's retargeted templates are installed and compiled on it before it
// takes any traffic — and only then entered into placement and the
// fair-share allocator. Drain is the reverse: the departing worker's
// partitions retarget onto the survivors atomically (the SetActive/Migrate
// machinery from the adaptation path), its latest data is eagerly flushed,
// and it is decommissioned only once its outstanding work reaches zero, so
// a drain never fails a command.
//
// None of the lifecycle state is replicated to a standby: a promoted
// controller's snapshot carries only the active roster. A worker caught
// mid-drain reconnects through the ordinary PR 6 reconcile path and rejoins
// as a plain active worker (drain-abort); a worker caught mid-warm rejoins
// cold. Both are safe because warm is a latency optimization and drain is
// re-issuable.

// workerPhase is a worker's fleet lifecycle state. Workers registered
// through the fixed-fleet RegisterWorker path are born active.
type workerPhase uint8

const (
	// phaseActive: in c.active, eligible for placement.
	phaseActive workerPhase = iota
	// phaseWarming: admitted via FleetAnnounce, receiving template
	// installs; not in c.active, owns no ledgers, takes no traffic.
	phaseWarming
	// phaseDraining: removed from c.active, still serving its in-flight
	// commands and eager data flush; decommission follows quiescence.
	phaseDraining
	// phaseDecommissioned: released; the worker state lingers only until
	// its connection closes.
	phaseDecommissioned
)

// maxWarmRetries bounds re-warm rounds when placement moves underneath a
// warm in flight; past it the join commits synchronously (installs ride
// the first instantiation instead, exactly like the SetActive grow path).
const maxWarmRetries = 3

// warmJob is one job's planned retarget for a joining worker.
type warmJob struct {
	id    ids.JobID
	epoch uint64
	dir   *flow.Directory
	sig   string
	plans []retargetPlan
	view  *flow.BuildView
}

// warmState tracks one joining worker's warm round.
type warmState struct {
	seq     uint64
	start   time.Time
	retries int
	jobs    []warmJob
}

// FleetStats is a point-in-time snapshot of fleet lifecycle metrics
// (taken on the event loop via Do).
type FleetStats struct {
	// Workers / Warming / Draining gauge the fleet: active roster size
	// and lifecycle transitions in flight.
	Workers  int
	Warming  int
	Draining int
	// Joins / Drains count completed lifecycle transitions.
	Joins  uint64
	Drains uint64
	// WarmP50/P99 are quantiles of announce-to-ready latency over the
	// recent window; RebalanceP50/P99 of drain-to-decommission latency.
	WarmP50      time.Duration
	WarmP99      time.Duration
	RebalanceP50 time.Duration
	RebalanceP99 time.Duration
}

// FleetStats snapshots the fleet lifecycle metrics.
func (c *Controller) FleetStats() FleetStats {
	var s FleetStats
	c.Do(func() {
		s.Workers = len(c.active)
		for _, ws := range c.workers {
			switch ws.phase {
			case phaseWarming:
				s.Warming++
			case phaseDraining:
				s.Draining++
			}
		}
		s.Joins = c.Stats.FleetJoins.Load()
		s.Drains = c.Stats.FleetDrains.Load()
		s.WarmP50 = c.warmLat.quantile(0.50)
		s.WarmP99 = c.warmLat.quantile(0.99)
		s.RebalanceP50 = c.drainLat.quantile(0.50)
		s.RebalanceP99 = c.drainLat.quantile(0.99)
	})
	return s
}

// FleetSample is one autoscaler observation of cluster load (see
// internal/fleet). Pending aggregates the per-worker queue depths the
// heartbeats already carry; Slots is the fleet's total executor capacity.
type FleetSample struct {
	Workers  int
	Warming  int
	Draining int
	Jobs     int
	Slots    int
	Pending  int
}

// FleetSample snapshots the load signal the autoscaler policy consumes.
func (c *Controller) FleetSample() FleetSample {
	var s FleetSample
	c.Do(func() {
		s.Workers = len(c.active)
		s.Jobs = len(c.jobs)
		for _, ws := range c.workers {
			switch ws.phase {
			case phaseWarming:
				s.Warming++
			case phaseDraining:
				s.Draining++
			case phaseActive:
				if ws.alive {
					s.Slots += ws.slots
					s.Pending += ws.pending
				}
			}
		}
	})
	return s
}

// fleetAnnounce admits an elastically-joining worker: allocate its ID and
// state outside the active set, reply with the admit, and start the warm
// round. The admit, every template install and the warm marker coalesce
// into one frame on the FIFO control channel, so the worker processes them
// strictly in order.
func (c *Controller) fleetAnnounce(m *proto.FleetAnnounce, conn transport.Conn) {
	c.nextWorker++
	id := c.nextWorker
	ws := &workerState{
		id: id, conn: conn, dataAddr: m.DataAddr,
		slots: m.Slots, alive: true, lastBeat: time.Now(),
		phase: phaseWarming,
	}
	c.workers[id] = ws
	c.sendWorker(ws, &proto.FleetAdmit{
		Worker: id, Peers: c.peerMap(), Eager: c.cfg.Mode == ModeCentral,
	})
	ws.warm = &warmState{start: time.Now()}
	c.planWarm(ws)
	c.wg.Add(1)
	go c.pump(conn, id, ids.NoJob, false)
}

// planWarm plans every live job's retarget onto the prospective set
// (active + the warming worker), stages the joining worker's installs, and
// sends the warm marker. A planning error aborts the join: warm plans are
// all-fresh builds (the new ID has never been in any cached set), so an
// error here is the same class SetActive refuses on.
func (c *Controller) planWarm(ws *workerState) {
	set := append(append([]ids.WorkerID(nil), c.active...), ws.id)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	sig := workerSigOf(set)
	warm := ws.warm
	warm.jobs = warm.jobs[:0]
	for _, j := range c.jobList() {
		plans, view := c.planRetargets(j, set, sig)
		for k := range plans {
			if plans[k].err != nil {
				c.cfg.Logf("controller: warming %s: retargeting %s %q: %v",
					ws.id, j.id, plans[k].name, plans[k].err)
				c.abortJoin(ws)
				return
			}
		}
		warm.jobs = append(warm.jobs, warmJob{
			id: j.id, epoch: j.placeEpoch, dir: j.dir,
			sig: sig, plans: plans, view: view,
		})
		// Stage the newcomer's installs now, ahead of the warm marker; the
		// worker compiles each template as it lands.
		for i := range plans {
			a := plans[i].built
			if a == nil {
				a = plans[i].cached
			}
			if a == nil {
				continue
			}
			for _, w := range a.Workers() {
				if w != ws.id {
					continue
				}
				msg := a.InstallMessage(ws.id, plans[i].name)
				msg.Job = j.id
				c.sendWorker(ws, msg)
				break
			}
		}
	}
	warm.seq++
	c.sendWorker(ws, &proto.FleetWarm{Seq: warm.seq})
}

// abortJoin discards a warming worker. It never entered the active set or
// any job's ledgers, so there is nothing to recover — the state simply
// goes away.
func (c *Controller) abortJoin(ws *workerState) {
	ws.alive = false
	ws.warm = nil
	ws.conn.Close()
	delete(c.workers, ws.id)
}

// fleetWarmAck completes (or retries) a join. The worker has compiled
// every install up to Seq; if placement is unchanged since the plan, the
// planned retargets commit and the worker turns active. If anything moved
// — a migration, another join, a recovery — the round re-plans, bounded by
// maxWarmRetries, after which the join commits synchronously.
func (c *Controller) fleetWarmAck(m *proto.FleetWarmAck) {
	ws := c.workers[m.Worker]
	if ws == nil || !ws.alive || ws.phase != phaseWarming || ws.warm == nil || ws.warm.seq != m.Seq {
		return
	}
	warm := ws.warm
	fresh := true
	for i := range warm.jobs {
		wj := &warm.jobs[i]
		j := c.jobs[wj.id]
		if j == nil {
			continue // job ended mid-warm; its plan is simply dropped
		}
		if j.placeEpoch != wj.epoch || j.dir != wj.dir {
			fresh = false
			break
		}
	}
	if fresh {
		// Adopt the planned builds' instance allocations first: a conflict
		// (the directory moved in a way the epoch check cannot see) demotes
		// the round to stale. Partially adopted pairs are harmless — they
		// are valid allocations for objects a re-plan introduces anyway.
		for i := range warm.jobs {
			wj := &warm.jobs[i]
			j := c.jobs[wj.id]
			if j == nil || wj.view == nil {
				continue
			}
			if err := wj.view.Commit(j.dir); err != nil {
				fresh = false
				break
			}
			wj.view = nil
		}
	}
	if !fresh {
		if warm.retries < maxWarmRetries {
			warm.retries++
			c.planWarm(ws)
			return
		}
		c.finishJoin(ws, nil)
		return
	}
	planned := make(map[ids.JobID]*warmJob, len(warm.jobs))
	for i := range warm.jobs {
		planned[warm.jobs[i].id] = &warm.jobs[i]
	}
	c.finishJoin(ws, planned)
}

// finishJoin enters a warmed worker into the active set and retargets
// every job onto the grown placement. Jobs with a fresh plan adopt it (and
// mark the pre-sent installs so the first instantiation sends none); jobs
// without one — admitted mid-warm, or a stale round past its retries —
// retarget synchronously like recovery does.
func (c *Controller) finishJoin(ws *workerState, planned map[ids.JobID]*warmJob) {
	warm := ws.warm
	ws.warm = nil
	ws.phase = phaseActive
	c.active = append(c.active, ws.id)
	sort.Slice(c.active, func(i, j int) bool { return c.active[i] < c.active[j] })
	for _, j := range c.jobList() {
		j.ledgers[ws.id] = flow.NewLedger(ws.id)
		c.reassignAll(j)
		if wj := planned[j.id]; wj != nil {
			c.commitRetargets(j, wj.plans, nil, wj.sig)
			for i := range wj.plans {
				a := wj.plans[i].built
				if a == nil {
					a = wj.plans[i].cached
				}
				if t := j.templates[wj.plans[i].name]; t != nil && a != nil && a.Installed != nil && a == t.Active {
					a.Installed[ws.id] = true
				}
			}
		} else {
			c.retargetAll(j)
		}
		j.autoValid = false
	}
	peers := c.peerMap()
	for _, other := range c.workers {
		if other.id != ws.id && other.alive && other.phase != phaseDecommissioned {
			c.sendWorker(other, &proto.RegisterWorkerAck{
				Worker: other.id, Peers: peers, Eager: c.cfg.Mode == ModeCentral,
			})
		}
	}
	c.sendQuotas(ws)
	c.sendWorker(ws, &proto.FleetReady{Worker: ws.id})
	c.Stats.FleetJoins.Add(1)
	c.warmLat.record(time.Since(warm.start))
	c.cfg.Logf("controller: worker %s joined fleet (%d active, warmed in %v)",
		ws.id, len(c.active), time.Since(warm.start).Round(time.Microsecond))
	c.maybeStartTakeover()
}

// DrainWorker removes one worker from the fleet gracefully (call via Do):
// every job's templates retarget onto the survivors atomically, the
// worker's latest data flushes eagerly to the new owners, and the worker
// is decommissioned once its outstanding work drains — zero failed
// commands, unlike a kill. The drained worker keeps serving until then.
func (c *Controller) DrainWorker(id ids.WorkerID) error {
	ws := c.workers[id]
	if ws == nil || !ws.alive {
		return fmt.Errorf("controller: drain of unknown worker %s", id)
	}
	if ws.phase != phaseActive {
		return fmt.Errorf("controller: worker %s is not active (lifecycle phase %d)", id, ws.phase)
	}
	if len(c.active) <= 1 {
		return fmt.Errorf("controller: cannot drain the last worker")
	}
	if c.takeoverWait {
		return fmt.Errorf("controller: drain refused during takeover recovery")
	}
	survivors := make([]ids.WorkerID, 0, len(c.active)-1)
	for _, a := range c.active {
		if a != id {
			survivors = append(survivors, a)
		}
	}
	// Plan every job against the shrunken placement before touching live
	// state; an error anywhere leaves the fleet unchanged (SetActive's
	// atomicity contract).
	sig := workerSigOf(survivors)
	jobs := c.jobList()
	plansByJob := make([][]retargetPlan, len(jobs))
	viewsByJob := make([]*flow.BuildView, len(jobs))
	for i, j := range jobs {
		plans, view := c.planRetargets(j, survivors, sig)
		for k := range plans {
			if plans[k].err != nil {
				return fmt.Errorf("controller: draining %s: retargeting %s %q: %w",
					id, j.id, plans[k].name, plans[k].err)
			}
		}
		plansByJob[i], viewsByJob[i] = plans, view
	}
	start := time.Now()
	c.active = survivors
	ws.phase = phaseDraining
	ws.drainStart = start
	c.draining[id] = struct{}{}
	for i, j := range jobs {
		c.reassignAll(j)
		c.commitRetargets(j, plansByJob[i], viewsByJob[i], sig)
		j.autoValid = false
		// Eagerly flush every logical object whose latest version lives on
		// the departing worker to its new owner. RecordCopy updates the
		// directory at schedule time, so nothing scheduled after this pass
		// reads from the victim.
		batches := make(map[ids.WorkerID][]*command.Command)
		for _, vm := range j.vars {
			for p, l := range vm.logicals {
				if j.dir.Latest(l) != 0 && j.dir.LatestHolder(l) == id {
					c.ensureLatestAt(j, l, vm.assign[p], batches)
				}
			}
		}
		c.dispatchCommands(j, batches)
	}
	c.sendWorker(ws, &proto.FleetDrain{Worker: id})
	c.cfg.Logf("controller: draining worker %s (%d active remain)", id, len(c.active))
	c.checkDrains()
	return nil
}

// DrainWorkers drains n workers, picking the highest IDs first (the most
// recently joined — LIFO keeps long-lived workers' caches hot). Returns
// the drained IDs; fewer than n when the fleet cannot shrink further.
func (c *Controller) DrainWorkers(n int) []ids.WorkerID {
	var out []ids.WorkerID
	for i := len(c.active) - 1; i >= 0 && len(out) < n && len(c.active) > 1; i-- {
		id := c.active[i]
		if err := c.DrainWorker(id); err != nil {
			c.cfg.Logf("controller: autoscale drain %s: %v", id, err)
			continue
		}
		out = append(out, id)
	}
	return out
}

// drainBusy reports whether a draining worker still has dispatched
// commands, pending template-instance acks, or central-mode graph nodes
// anywhere.
func (c *Controller) drainBusy(id ids.WorkerID) bool {
	for _, j := range c.jobs {
		for _, w := range j.outstanding {
			if w == id {
				return true
			}
		}
		for _, inst := range j.instances {
			if inst.pending[id] {
				return true
			}
		}
		for _, n := range j.central.nodes {
			if n.worker == id {
				return true
			}
		}
	}
	return false
}

// checkDrains decommissions every draining worker that has gone quiet. It
// runs after each event while drains are in flight (the len guard in the
// event loop keeps the steady state free of it).
func (c *Controller) checkDrains() {
	for id := range c.draining {
		ws := c.workers[id]
		if ws == nil || !ws.alive || ws.phase != phaseDraining {
			delete(c.draining, id)
			continue
		}
		if c.drainBusy(id) {
			continue
		}
		c.decommission(ws)
	}
}

// decommission releases a drained, quiet worker: its directory replicas
// and ledgers drop (every latest version already lives on a survivor —
// that is what the eager flush and the outstanding-work wait guarantee),
// peers stop addressing it, and it is told to shut down. The worker state
// lingers, decommissioned, until its connection closes.
func (c *Controller) decommission(ws *workerState) {
	delete(c.draining, ws.id)
	ws.phase = phaseDecommissioned
	for _, j := range c.jobs {
		j.dir.DropWorker(ws.id)
		delete(j.ledgers, ws.id)
	}
	c.sendWorker(ws, &proto.FleetDecommission{Worker: ws.id})
	peers := c.peerMap()
	for _, other := range c.workers {
		if other.id != ws.id && other.alive && other.phase != phaseDecommissioned {
			c.sendWorker(other, &proto.RegisterWorkerAck{
				Worker: other.id, Peers: peers, Eager: c.cfg.Mode == ModeCentral,
			})
		}
	}
	c.Stats.FleetDrains.Add(1)
	c.drainLat.record(time.Since(ws.drainStart))
	c.cfg.Logf("controller: worker %s decommissioned (drained in %v)",
		ws.id, time.Since(ws.drainStart).Round(time.Microsecond))
}

// fleetWorkerGone cleans up a warming, draining or decommissioned worker
// whose connection dropped (or heartbeats stopped), and reports whether it
// handled the departure. A warming or decommissioned worker owns no
// placement, ledgers or outstanding work, so removal is a pure delete — no
// recovery. A draining worker that dies before decommission still holds
// in-flight work and possibly sole latest replicas, so it falls through to
// the ordinary failure path (checkpoint revert + replay).
func (c *Controller) fleetWorkerGone(ws *workerState) bool {
	switch ws.phase {
	case phaseWarming:
		c.cfg.Logf("controller: worker %s lost mid-warm; join aborted", ws.id)
		c.abortJoin(ws)
		return true
	case phaseDecommissioned:
		ws.alive = false
		ws.conn.Close()
		delete(c.workers, ws.id)
		return true
	case phaseDraining:
		delete(c.draining, ws.id)
		return false
	}
	return false
}
