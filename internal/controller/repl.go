package controller

import (
	"sort"
	"sync"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// This file is the primary's half of controller failover: the hot-standby
// replication stream and the leadership lease it carries.
//
// A standby (standby.go) dials the controller's listen endpoint and sends
// ReplAttach. The primary answers with a full ReplSnapshot — every job's
// definition history, oplog suffix, checkpoint manifest and allocator
// high-water marks — then streams increments: one ReplOp per logged
// driver operation, ReplCkpt on checkpoint commits, ReplJobStart/End on
// admissions and teardowns, and LeaseRenew every LeaseTTL/3 as the
// transport-level leadership lease. The standby acks each op; the
// driver-op fence (builds.go) stalls while replWindow ops are unacked, so
// the standby stays within one applied driver op of the primary. Losing
// the standby just drains the fence — replication never blocks progress
// for longer than the window.

// replWindow bounds unacknowledged replicated driver ops: the op fence
// holds further driver ops until the standby acks, bounding how far a
// promoted controller's state can trail what the driver saw accepted.
const replWindow = 1

// defaultLeaseTTL applies when Config.LeaseTTL is zero.
const defaultLeaseTTL = time.Second

// replState is the attached standby's stream.
type replState struct {
	conn transport.Conn
	// sendMu serializes frame sends: the event loop streams ops while
	// the lease goroutine streams renewals on the same connection.
	sendMu sync.Mutex
	// inflight counts replicated-but-unacked driver ops.
	inflight int
	// stop cancels the lease goroutine when the standby is replaced.
	stop chan struct{}
}

func (r *replState) send(m proto.Msg) error {
	buf := proto.MarshalAppend(proto.GetBuf(), m)
	r.sendMu.Lock()
	owned, err := transport.SendOwned(r.conn, buf)
	r.sendMu.Unlock()
	if !owned {
		proto.PutBuf(buf)
	}
	return err
}

func (c *Controller) leaseTTL() time.Duration {
	if c.cfg.LeaseTTL > 0 {
		return c.cfg.LeaseTTL
	}
	return defaultLeaseTTL
}

// handleReplAttach admits a hot standby: send it the full state snapshot,
// then start streaming increments and lease renewals. A second attach
// replaces the first standby.
func (c *Controller) handleReplAttach(conn transport.Conn) {
	if c.repl != nil {
		close(c.repl.stop)
		c.repl.conn.Close()
		c.repl = nil
	}
	c.hadStandby = true
	c.standbyDownAt = time.Time{}
	r := &replState{conn: conn, stop: make(chan struct{})}
	snap := c.snapshotReplica()
	if err := r.send(snap); err != nil {
		c.cfg.Logf("controller: standby snapshot send failed: %v", err)
		conn.Close()
		c.untrackConn(conn)
		return
	}
	r.send(&proto.LeaseRenew{Epoch: c.epoch, TTLMillis: uint64(c.leaseTTL() / time.Millisecond)})
	c.repl = r
	c.wg.Add(2)
	go c.leaseLoop(r)
	go c.pump(conn, ids.NoWorker, ids.NoJob, false)
}

// leaseLoop renews the primary's leadership lease on the replication
// stream every TTL/3. It stops with the stream or the controller; a
// killed controller stops renewing, and that silence is what the standby
// detects.
func (c *Controller) leaseLoop(r *replState) {
	defer c.wg.Done()
	ttl := c.leaseTTL()
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if err := r.send(&proto.LeaseRenew{Epoch: c.epoch, TTLMillis: uint64(ttl / time.Millisecond)}); err != nil {
				return
			}
		case <-r.stop:
			return
		case <-c.stopped:
			return
		}
	}
}

// snapshotReplica captures the full replicated state for a fresh standby.
func (c *Controller) snapshotReplica() *proto.ReplSnapshot {
	snap := &proto.ReplSnapshot{
		JobSeq:     c.jobSeq,
		NextWorker: uint32(c.nextWorker),
		Workers:    append([]ids.WorkerID(nil), c.active...),
	}
	for _, j := range c.jobList() {
		rj := &proto.ReplJob{
			Job: j.id, Name: j.name, Weight: j.weight, Tenant: j.tenant, Applied: j.applied,
			Ckpt: j.ckpt.last, CkptCount: j.ckpt.count,
			NextCmd: j.cmdIDs.Peek(), NextObj: j.objIDs.Peek(),
		}
		rj.Manifest = manifestEntries(j.ckpt.manifest)
		// A job parked behind pendingTakeover has not replayed its
		// definition history yet — j.vars and j.templates stay empty until
		// beginTakeover — so defMessages would hand a fresh standby an
		// empty history and a second failover would lose every variable.
		// Forward the restored definitions verbatim instead.
		defs := j.defs
		if !j.pendingTakeover {
			defs = j.defMessages()
		}
		for _, m := range defs {
			rj.Defs = append(rj.Defs, proto.Marshal(m))
		}
		for _, m := range j.oplog {
			rj.Oplog = append(rj.Oplog, proto.Marshal(m))
		}
		snap.Jobs = append(snap.Jobs, rj)
	}
	return snap
}

func manifestEntries(m map[ids.LogicalID]uint64) []proto.ManifestEntry {
	if len(m) == 0 {
		return nil
	}
	out := make([]proto.ManifestEntry, 0, len(m))
	for l, v := range m {
		out = append(out, proto.ManifestEntry{Logical: l, Version: v})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Logical < out[k].Logical })
	return out
}

// defMessages reconstructs one job's definition history: the ops a
// promoted controller replays to rebuild variables and template
// recordings before reverting to the checkpoint. Checkpoints never
// truncate definitions, so they are rebuilt from live state instead of a
// second log. Variables come first in VariableID order — the driver
// allocates variable IDs in define order, so replaying them sorted
// reproduces the primary's LogicalID assignment exactly, which the
// checkpoint manifest is keyed by.
func (j *jobState) defMessages() []proto.Msg {
	var out []proto.Msg
	varIDs := make([]ids.VariableID, 0, len(j.vars))
	for id := range j.vars {
		varIDs = append(varIDs, id)
	}
	sort.Slice(varIDs, func(i, k int) bool { return varIDs[i] < varIDs[k] })
	for _, id := range varIDs {
		vm := j.vars[id]
		out = append(out, &proto.DefineVariable{Var: vm.id, Name: vm.name, Partitions: vm.partitions})
	}
	names := make([]string, 0, len(j.templates))
	for name := range j.templates {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		out = append(out, &proto.TemplateStart{Name: name})
		for _, s := range j.templates[name].Stages {
			out = append(out, s)
		}
		out = append(out, &proto.TemplateEnd{Name: name})
	}
	if j.recording != nil {
		out = append(out, &proto.TemplateStart{Name: j.recording.tmpl.Name})
		for _, s := range j.recording.tmpl.Stages {
			out = append(out, s)
		}
	}
	return out
}

// replOp streams one just-logged driver op to the standby, stamped with
// the job's applied-op index and allocator high-water marks.
func (c *Controller) replOp(j *jobState, m proto.Msg) {
	if c.repl == nil {
		return
	}
	op := &proto.ReplOp{
		Job: j.id, Index: j.applied,
		NextCmd: j.cmdIDs.Peek(), NextObj: j.objIDs.Peek(),
		Raw: proto.Marshal(m),
	}
	c.repl.inflight++
	if err := c.repl.send(op); err != nil {
		c.standbyLost(err)
	}
}

// replSync streams allocator high-water marks alone (an empty-Raw
// ReplOp): the checkpoint and recovery paths allocate command IDs outside
// any logged op, and a promotion must never re-issue them.
func (c *Controller) replSync(j *jobState) {
	if c.repl == nil {
		return
	}
	op := &proto.ReplOp{Job: j.id, Index: j.applied, NextCmd: j.cmdIDs.Peek(), NextObj: j.objIDs.Peek()}
	if err := c.repl.send(op); err != nil {
		c.standbyLost(err)
	}
}

// replCkpt mirrors a committed checkpoint on the standby.
func (c *Controller) replCkpt(j *jobState, drop uint64) {
	if c.repl == nil {
		return
	}
	m := &proto.ReplCkpt{
		Job: j.id, Ckpt: j.ckpt.last, Count: j.ckpt.count, Drop: drop,
		Manifest: manifestEntries(j.ckpt.manifest),
	}
	if err := c.repl.send(m); err != nil {
		c.standbyLost(err)
	}
}

// replJobStart / replJobEnd mirror job admission and teardown.
func (c *Controller) replJobStart(j *jobState) {
	if c.repl == nil {
		return
	}
	if err := c.repl.send(&proto.ReplJobStart{Job: j.id, Name: j.name, Weight: j.weight, Tenant: j.tenant}); err != nil {
		c.standbyLost(err)
	}
}

func (c *Controller) replJobEnd(j *jobState) {
	if c.repl == nil {
		return
	}
	if err := c.repl.send(&proto.ReplJobEnd{Job: j.id}); err != nil {
		c.standbyLost(err)
	}
}

// safeApplied is the applied-op count every controller this driver
// session could ever reattach to is guaranteed to report at least — the
// journal-truncation point BarrierDone carries. With no standby ever
// attached it is the job's own count: a transient reconnect lands back
// here, and a standby attaching later starts from a full snapshot. Once a
// standby has attached, only its acked prefix is safe — even after it
// detaches, its stale shadow may still be promoted — but only within the
// promotion horizon.
//
// staleShadowHorizonTTLs bounds that horizon in lease TTLs: a detached
// standby's lease expires within one TTL of the detach and its takeover
// bind retries for ten more (standby.go promote), so twenty TTLs past
// the detach no controller can ever surface that shadow. After the
// horizon safeApplied stops capping truncation at the stale shadow's
// acked prefix — otherwise a long standby-less run after a detach would
// grow every driver journal without bound.
const staleShadowHorizonTTLs = 20

func (c *Controller) safeApplied(j *jobState) uint64 {
	if c.hadStandby && c.repl == nil && !c.standbyDownAt.IsZero() &&
		time.Since(c.standbyDownAt) > staleShadowHorizonTTLs*c.leaseTTL() {
		c.hadStandby = false
		c.standbyDownAt = time.Time{}
	}
	if c.hadStandby {
		return j.replAcked
	}
	return j.applied
}

// replStalled reports whether the replication window is full: driver ops
// queue behind the fence until the standby acks.
func (c *Controller) replStalled() bool {
	return c.repl != nil && c.repl.inflight >= replWindow
}

// handleReplAck drains the replication window and releases any driver
// ops it fenced. The acked index is remembered per job: it is the prefix
// a promotion from this standby cannot lose, and so the point up to which
// drivers may truncate their failover journals.
func (c *Controller) handleReplAck(m *proto.ReplAck) {
	if j := c.jobs[m.Job]; j != nil && m.Index > j.replAcked {
		j.replAcked = m.Index
	}
	if c.repl == nil {
		return
	}
	if c.repl.inflight > 0 {
		c.repl.inflight--
	}
	if c.replStalled() {
		return
	}
	for _, j := range c.jobList() {
		c.drainOps(j)
		c.resolveIfQuiet(j)
	}
}

// standbyLost tears down the replication stream. The drain is posted
// rather than run inline: a send failure surfaces mid-logOp, inside a
// driver-op handler whose remaining work (e.g. raising the build fence)
// must finish before queued ops may dispatch.
func (c *Controller) standbyLost(err error) {
	if c.repl == nil {
		return
	}
	c.cfg.Logf("controller: standby lost: %v", err)
	close(c.repl.stop)
	c.repl.conn.Close()
	c.repl = nil
	c.standbyDownAt = time.Now()
	c.post(func() {
		for _, j := range c.jobList() {
			c.drainOps(j)
			c.resolveIfQuiet(j)
		}
	})
}
