package controller

import (
	"fmt"
	"sort"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// This file implements the off-loop template build pipeline
// (snapshot -> build -> commit). Template assignment construction is
// O(tasks) and used to run inside the event loop, freezing heartbeats,
// completion processing and every other template's dispatch while it ran.
// Now:
//
//   - TemplateEnd snapshots the job's directory and placement, enqueues a
//     build on a bounded background executor (shared by all jobs), and
//     returns to the loop. The finished assignment comes back as a commit
//     event; if placement or the directory moved underneath the build, it
//     is discarded and retried from a fresh snapshot
//     (revalidate-and-retry). A build whose job was torn down while it ran
//     is simply dropped at commit.
//   - While a job's build is in flight, that job's driver operations that
//     mutate execution state (defines, puts, stage submissions, template
//     ops, instantiations) queue in arrival order behind it, preserving
//     the driver's program order; heartbeats, completions, gets, barriers
//     — and every other job's traffic — keep flowing through the loop.
//   - SetActive / Migrate / recovery retarget every installed template of
//     the affected job(s) in one parallel group build over a shared
//     snapshot view, then commit atomically on the loop.

// maxBuildRetries bounds revalidate-and-retry; after it the build runs
// synchronously on the loop, which cannot be invalidated.
const maxBuildRetries = 4

// Hooks are optional instrumentation points for tests and fault
// injection. They are called from build goroutines, off the event loop.
type Hooks struct {
	// OnBuildStart runs in the build goroutine before an off-loop
	// template build begins (tests stall here to hold a build in flight).
	OnBuildStart func(template string)
	// RetargetError, when non-nil, can veto one template's rebuild during
	// a group retarget (SetActive/Migrate/recovery), exercising the
	// atomic-commit failure path.
	RetargetError func(template string) error
}

// buildJob is one in-flight off-loop template build, pinned to the job
// that recorded the template.
type buildJob struct {
	j          *jobState
	name       string
	tmpl       *core.Template
	id         ids.TemplateID
	view       *flow.BuildView
	place      *placeSnap
	placeEpoch uint64
	dir        *flow.Directory // directory identity at snapshot time
	retries    int
}

// placeSnap is an immutable copy of one job's placement, readable by build
// goroutines while the loop keeps mutating the live tables.
type placeSnap struct {
	vars map[ids.VariableID]placeVar
}

type placeVar struct {
	partitions int
	logicals   []ids.LogicalID // shared: immutable after DefineVariable
	assign     []ids.WorkerID  // copied
}

func (p *placeSnap) WorkerOf(v ids.VariableID, partition int) ids.WorkerID {
	pv, ok := p.vars[v]
	if !ok || partition < 0 || partition >= len(pv.assign) {
		return ids.NoWorker
	}
	return pv.assign[partition]
}

func (p *placeSnap) Logical(v ids.VariableID, partition int) ids.LogicalID {
	pv, ok := p.vars[v]
	if !ok || partition < 0 || partition >= len(pv.logicals) {
		return ids.NoLogical
	}
	return pv.logicals[partition]
}

func (p *placeSnap) Partitions(v ids.VariableID) int {
	if pv, ok := p.vars[v]; ok {
		return pv.partitions
	}
	return 0
}

// placementSnapshot copies one job's placement. With a non-nil override
// the assignment is the round-robin layout over that worker set — the
// placement SetActive would commit — without touching live state.
func (j *jobState) placementSnapshot(override []ids.WorkerID) *placeSnap {
	vars := make(map[ids.VariableID]placeVar, len(j.vars))
	for id, vm := range j.vars {
		assign := make([]ids.WorkerID, vm.partitions)
		if override != nil {
			for p := range assign {
				assign[p] = override[p%len(override)]
			}
		} else {
			copy(assign, vm.assign)
		}
		vars[id] = placeVar{partitions: vm.partitions, logicals: vm.logicals, assign: assign}
	}
	return &placeSnap{vars: vars}
}

// post injects fn into the event loop without waiting for it to run
// (build goroutines hand their results back through it).
func (c *Controller) post(fn func()) {
	select {
	case c.events <- cevent{kind: cevDo, fn: fn}:
	case <-c.stopped:
	}
}

// driverOp routes one driver operation through its job's op fence: while
// any of the job's off-loop builds or controller-evaluated loops is in
// flight (or earlier operations are still queued behind one), operations
// that mutate execution state queue in arrival order so the driver's
// program order is preserved — an async driver may pipeline operations
// behind an InstantiateWhile, and they must not interleave with its
// iterations. The fence is per-job: one job's build or loop never delays
// another job's operations.
//
// The fence also holds while the job is recovering or parked for takeover
// (ops re-sent by a reattaching driver must not execute against
// pre-revert state) and while the replication window is full (keeping an
// attached standby within one applied-op of the primary).
func (c *Controller) driverOp(j *jobState, m proto.Msg) {
	if j.pendingTakeover || j.recovering ||
		len(j.building) > 0 || len(j.opq) > 0 || len(j.loops) > 0 ||
		c.replStalled() {
		j.opq = append(j.opq, m)
		return
	}
	c.dispatchDriverOp(j, m)
}

// dispatchDriverOp executes one fenced driver operation.
func (c *Controller) dispatchDriverOp(j *jobState, m proto.Msg) {
	switch op := m.(type) {
	case *proto.DefineVariable:
		c.handleDefineVariable(j, op)
	case *proto.Put:
		c.handlePut(j, op)
	case *proto.SubmitStage:
		c.handleSubmitStage(j, op)
	case *proto.TemplateStart:
		c.handleTemplateStart(j, op)
	case *proto.TemplateEnd:
		c.handleTemplateEnd(j, op)
	case *proto.InstantiateBlock:
		c.handleInstantiateBlock(j, op)
	case *proto.InstantiateWhile:
		c.handleInstantiateWhile(j, op)
	default:
		c.cfg.Logf("controller: unexpected fenced operation %s", m.Kind())
	}
}

// drainOps runs a job's queued driver operations until the queue empties
// or one of them re-raises the fence (another build or loop, a full
// replication window, or recovery).
func (c *Controller) drainOps(j *jobState) {
	for len(j.opq) > 0 && len(j.building) == 0 && len(j.loops) == 0 &&
		!j.recovering && !j.pendingTakeover && !c.replStalled() {
		m := j.opq[0]
		j.opq[0] = nil
		j.opq = j.opq[1:]
		if len(j.opq) == 0 {
			j.opq = nil
		}
		c.dispatchDriverOp(j, m)
	}
}

// startTemplateBuild begins the off-loop build of a just-recorded
// template: snapshot the job's directory + placement on the loop, build in
// the background, commit via a posted event.
func (c *Controller) startTemplateBuild(j *jobState, name string, t *core.Template) {
	job := &buildJob{
		j:    j,
		name: name,
		tmpl: t,
		id:   ids.TemplateID(j.tmplIDs.Next()),
	}
	c.snapshotFor(job)
	j.building[name] = job
	c.Stats.BuildsInFlight.Add(1)
	c.wg.Add(1)
	go c.runBuild(job)
}

// snapshotFor (re)stamps the job with the loop's current snapshot state.
func (c *Controller) snapshotFor(job *buildJob) {
	job.view = job.j.dir.Snapshot().View()
	job.place = job.j.placementSnapshot(nil)
	job.placeEpoch = job.j.placeEpoch
	job.dir = job.j.dir
}

// runBuild executes one build job off the loop and posts its result back.
func (c *Controller) runBuild(job *buildJob) {
	defer c.wg.Done()
	c.buildSem <- struct{}{}
	defer func() { <-c.buildSem }()
	if h := c.cfg.Hooks.OnBuildStart; h != nil {
		h(job.name)
	}
	start := time.Now()
	a, err := core.BuildAssignment(job.id, job.view, job.place, job.tmpl.Stages, c.buildPar)
	nanos := uint64(time.Since(start))
	c.post(func() { c.commitBuild(job, a, err, nanos) })
}

// commitBuild runs on the event loop when a background build finishes:
// revalidate the snapshot, then either install the assignment, retry from
// a fresh snapshot, or surface the failure. A torn-down job's build is
// dropped outright.
func (c *Controller) commitBuild(job *buildJob, a *core.Assignment, err error, nanos uint64) {
	c.Stats.BuildNanos.Add(nanos)
	j := job.j
	if j.dead {
		c.Stats.BuildsInFlight.Add(-1)
		return
	}
	if j.building[job.name] != job {
		// Superseded (e.g. the template was rebuilt by recovery while this
		// build was in flight and the job already resolved another way).
		return
	}
	if err != nil {
		delete(j.templates, job.name)
		c.finishBuild(j, job.name)
		c.driverError(j, fmt.Sprintf("building template %q: %v", job.name, err))
		return
	}
	// Revalidate: if placement changed, the directory was replaced
	// (recovery), or the directory allocated conflicting instances while
	// we built, the result describes a world that no longer exists —
	// discard and retry against fresh state.
	if job.placeEpoch != j.placeEpoch || job.dir != j.dir || job.view.Commit(j.dir) != nil {
		c.Stats.BuildRetries.Add(1)
		c.retryBuild(job)
		return
	}
	c.adoptAssignment(j, job.tmpl, a)
	c.finishBuild(j, job.name)
}

// adoptAssignment commits a freshly built assignment as the template's
// active one and installs it.
func (c *Controller) adoptAssignment(j *jobState, t *core.Template, a *core.Assignment) {
	start := time.Now()
	t.Assignments = append(t.Assignments, a)
	t.Active = a
	c.Stats.TemplatesBuilt.Add(1)
	c.installAssignment(j, t, a)
	c.Stats.FinalizeNanos.Add(uint64(time.Since(start)))
	c.cacheActiveAssignments(j)
}

// retryBuild re-snapshots and requeues a discarded build. If another path
// (recovery's retarget) already produced an assignment for the current
// worker set, that one is adopted instead; past the retry budget the build
// runs synchronously on the loop, which cannot be invalidated.
func (c *Controller) retryBuild(job *buildJob) {
	j := job.j
	if bySig := j.assignCache[job.name]; bySig != nil {
		if a, ok := bySig[c.workerSig()]; ok {
			job.tmpl.Active = a
			c.finishBuild(j, job.name)
			return
		}
	}
	job.retries++
	if job.retries >= maxBuildRetries {
		a, err := core.BuildAssignment(job.id, j.dir, j.placement(), job.tmpl.Stages, c.buildPar)
		if err != nil {
			delete(j.templates, job.name)
			c.finishBuild(j, job.name)
			c.driverError(j, fmt.Sprintf("building template %q: %v", job.name, err))
			return
		}
		c.adoptAssignment(j, job.tmpl, a)
		c.finishBuild(j, job.name)
		return
	}
	c.snapshotFor(job)
	c.wg.Add(1)
	go c.runBuild(job)
}

// finishBuild retires a job's build and lowers its fence: queued driver
// operations drain in order, and quiescence (barriers, gets, checkpoints)
// is re-evaluated.
func (c *Controller) finishBuild(j *jobState, name string) {
	delete(j.building, name)
	c.Stats.BuildsInFlight.Add(-1)
	c.drainOps(j)
	c.resolveIfQuiet(j)
}

// retargetPlan is one template's planned outcome of a group retarget.
type retargetPlan struct {
	name   string
	t      *core.Template
	cached *core.Assignment // restore path: reuse a cached assignment
	built  *core.Assignment // fresh build for the new placement
	err    error
}

// planRetargets builds (in parallel, over one shared snapshot view) or
// cache-restores an assignment per installed template of one job for the
// worker set, without mutating any controller state. Templates whose build
// is still in flight are skipped: their commit will revalidate against the
// new placement and rebuild. The returned view holds the builds' instance
// allocations, to be committed with commitRetargets.
func (c *Controller) planRetargets(j *jobState, set []ids.WorkerID, sig string) ([]retargetPlan, *flow.BuildView) {
	names := make([]string, 0, len(j.templates))
	for name, t := range j.templates {
		if t.Active == nil {
			if _, inFlight := j.building[name]; inFlight {
				continue // build in flight; its commit re-resolves
			}
			// No assignment and no build in flight: a promoted
			// controller's replayed recording. Build its first
			// assignment here like any other retarget.
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var plans []retargetPlan
	var toBuild []int
	for _, name := range names {
		p := retargetPlan{name: name, t: j.templates[name]}
		if bySig := j.assignCache[name]; bySig != nil {
			if a, ok := bySig[sig]; ok {
				p.cached = a
			}
		}
		if p.cached == nil {
			toBuild = append(toBuild, len(plans))
		}
		plans = append(plans, p)
	}
	if len(toBuild) == 0 {
		return plans, nil
	}

	view := j.dir.Snapshot().View()
	place := j.placementSnapshot(set)
	ivals := make([]ids.TemplateID, len(toBuild))
	for i := range toBuild {
		ivals[i] = ids.TemplateID(j.tmplIDs.Next())
	}
	c.groupBuild(len(toBuild), func(i, inner int) {
		p := &plans[toBuild[i]]
		if err := c.retargetFault(p.name); err != nil {
			p.err = err
			return
		}
		p.built, p.err = p.t.RebuildPar(ivals[i], view, place, nil, inner)
	})
	return plans, view
}

// groupBuild runs n independent build closures, splitting the build pool
// between group concurrency and intra-build sharding so the group uses
// ~buildPar goroutines total. fn receives the item index and its
// per-build parallelism bound.
func (c *Controller) groupBuild(n int, fn func(i, inner int)) {
	if n == 0 {
		return
	}
	conc := c.buildPar
	if conc > n {
		conc = n
	}
	inner := c.buildPar / conc
	if inner < 1 {
		inner = 1
	}
	sem := make(chan struct{}, conc)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			fn(i, inner)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// retargetFault consults the fault-injection hook for one template's
// rebuild within a group retarget.
func (c *Controller) retargetFault(name string) error {
	if h := c.cfg.Hooks.RetargetError; h != nil {
		return h(name)
	}
	return nil
}

// commitRetargets applies a planned group retarget to one job: adopt the
// view's instance allocations and switch every successfully planned
// template. Plans with errors are skipped (the caller decides whether that
// aborts the whole operation; SetActive does, recovery logs and
// continues).
func (c *Controller) commitRetargets(j *jobState, plans []retargetPlan, view *flow.BuildView, sig string) {
	if view != nil {
		if err := view.Commit(j.dir); err != nil {
			// Unreachable: the snapshot, builds and commit all happen
			// within one event-loop call, so nothing can move underneath.
			c.cfg.Logf("controller: %s retarget commit conflict: %v", j.id, err)
			return
		}
	}
	if j.assignCache == nil {
		j.assignCache = make(map[string]map[string]*core.Assignment)
	}
	for i := range plans {
		p := &plans[i]
		switch {
		case p.err != nil:
		case p.cached != nil:
			p.t.Active = p.cached
		default:
			p.t.Assignments = append(p.t.Assignments, p.built)
			p.t.Active = p.built
			bySig := j.assignCache[p.name]
			if bySig == nil {
				bySig = make(map[string]*core.Assignment)
				j.assignCache[p.name] = bySig
			}
			bySig[sig] = p.built
			c.Stats.TemplatesBuilt.Add(1)
		}
	}
}

// OutstandingCommands returns the number of dispatched-but-unfinished
// data-plane commands and template instances across all jobs (call via
// Do). Unlike barriers it does not count in-flight template builds, so
// tests can observe completion processing while a build is stalled.
func (c *Controller) OutstandingCommands() int {
	n := 0
	for _, j := range c.jobs {
		n += len(j.outstanding) + len(j.instances) + j.central.pendingCount()
	}
	return n
}

// BuildQueueDepth returns the number of driver operations fenced behind
// in-flight template builds, summed across jobs (call via Do).
func (c *Controller) BuildQueueDepth() int {
	n := 0
	for _, j := range c.jobs {
		n += len(j.opq)
	}
	return n
}

// InvalidateAssignmentCache drops every job's per-worker-set assignment
// cache so the next retarget rebuilds every template (benchmarks and
// operational tooling use it to force the rebuild path; call via Do).
// Non-active assignments are released too: without the cache they can
// never be restored.
func (c *Controller) InvalidateAssignmentCache() {
	for _, j := range c.jobs {
		j.assignCache = nil
		for _, t := range j.templates {
			// Fresh slice: re-truncating would keep the dropped assignments
			// reachable through the old backing array.
			if t.Active != nil {
				t.Assignments = []*core.Assignment{t.Active}
			} else {
				t.Assignments = nil
			}
		}
	}
}
