package controller

import (
	"fmt"
	"sort"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// This file implements the off-loop template build pipeline
// (snapshot -> build -> commit). Template assignment construction is
// O(tasks) and used to run inside the event loop, freezing heartbeats,
// completion processing and every other template's dispatch while it ran.
// Now:
//
//   - TemplateEnd snapshots the directory and placement, enqueues a build
//     on a bounded background executor, and returns to the loop. The
//     finished assignment comes back as a commit event; if placement or
//     the directory moved underneath the build, it is discarded and
//     retried from a fresh snapshot (revalidate-and-retry).
//   - While a build is in flight, driver operations that mutate execution
//     state (defines, puts, stage submissions, template ops,
//     instantiations) queue in arrival order behind it, preserving the
//     driver's program order; heartbeats, completions, gets and barriers
//     keep flowing through the loop.
//   - SetActive / Migrate / recovery retarget every installed template in
//     one parallel group build over a shared snapshot view, then commit
//     atomically on the loop.

// maxBuildRetries bounds revalidate-and-retry; after it the build runs
// synchronously on the loop, which cannot be invalidated.
const maxBuildRetries = 4

// Hooks are optional instrumentation points for tests and fault
// injection. They are called from build goroutines, off the event loop.
type Hooks struct {
	// OnBuildStart runs in the build goroutine before an off-loop
	// template build begins (tests stall here to hold a build in flight).
	OnBuildStart func(template string)
	// RetargetError, when non-nil, can veto one template's rebuild during
	// a group retarget (SetActive/Migrate/recovery), exercising the
	// atomic-commit failure path.
	RetargetError func(template string) error
}

// buildJob is one in-flight off-loop template build.
type buildJob struct {
	name       string
	tmpl       *core.Template
	id         ids.TemplateID
	view       *flow.BuildView
	place      *placeSnap
	placeEpoch uint64
	dir        *flow.Directory // directory identity at snapshot time
	retries    int
}

// placeSnap is an immutable copy of the controller's placement, readable
// by build goroutines while the loop keeps mutating the live tables.
type placeSnap struct {
	vars map[ids.VariableID]placeVar
}

type placeVar struct {
	partitions int
	logicals   []ids.LogicalID // shared: immutable after DefineVariable
	assign     []ids.WorkerID  // copied
}

func (p *placeSnap) WorkerOf(v ids.VariableID, partition int) ids.WorkerID {
	pv, ok := p.vars[v]
	if !ok || partition < 0 || partition >= len(pv.assign) {
		return ids.NoWorker
	}
	return pv.assign[partition]
}

func (p *placeSnap) Logical(v ids.VariableID, partition int) ids.LogicalID {
	pv, ok := p.vars[v]
	if !ok || partition < 0 || partition >= len(pv.logicals) {
		return ids.NoLogical
	}
	return pv.logicals[partition]
}

func (p *placeSnap) Partitions(v ids.VariableID) int {
	if pv, ok := p.vars[v]; ok {
		return pv.partitions
	}
	return 0
}

// placementSnapshot copies the placement. With a non-nil override the
// assignment is the round-robin layout over that worker set — the
// placement SetActive would commit — without touching live state.
func (c *Controller) placementSnapshot(override []ids.WorkerID) *placeSnap {
	vars := make(map[ids.VariableID]placeVar, len(c.vars))
	for id, vm := range c.vars {
		assign := make([]ids.WorkerID, vm.partitions)
		if override != nil {
			for p := range assign {
				assign[p] = override[p%len(override)]
			}
		} else {
			copy(assign, vm.assign)
		}
		vars[id] = placeVar{partitions: vm.partitions, logicals: vm.logicals, assign: assign}
	}
	return &placeSnap{vars: vars}
}

// post injects fn into the event loop without waiting for it to run
// (build goroutines hand their results back through it).
func (c *Controller) post(fn func()) {
	select {
	case c.events <- cevent{kind: cevDo, fn: fn}:
	case <-c.stopped:
	}
}

// driverOp routes one driver operation through the build fence: while any
// off-loop build is in flight (or earlier operations are still queued
// behind one), operations that mutate execution state queue in arrival
// order so the driver's program order is preserved.
func (c *Controller) driverOp(m proto.Msg) {
	if len(c.building) > 0 || len(c.opq) > 0 {
		c.opq = append(c.opq, m)
		return
	}
	c.dispatchDriverOp(m)
}

// dispatchDriverOp executes one fenced driver operation.
func (c *Controller) dispatchDriverOp(m proto.Msg) {
	switch op := m.(type) {
	case *proto.DefineVariable:
		c.handleDefineVariable(op)
	case *proto.Put:
		c.handlePut(op)
	case *proto.SubmitStage:
		c.handleSubmitStage(op)
	case *proto.TemplateStart:
		c.handleTemplateStart(op)
	case *proto.TemplateEnd:
		c.handleTemplateEnd(op)
	case *proto.InstantiateBlock:
		c.handleInstantiateBlock(op)
	default:
		c.cfg.Logf("controller: unexpected fenced operation %s", m.Kind())
	}
}

// drainOps runs queued driver operations until the queue empties or one of
// them starts another build (re-raising the fence).
func (c *Controller) drainOps() {
	for len(c.opq) > 0 && len(c.building) == 0 {
		m := c.opq[0]
		c.opq[0] = nil
		c.opq = c.opq[1:]
		if len(c.opq) == 0 {
			c.opq = nil
		}
		c.dispatchDriverOp(m)
	}
}

// startTemplateBuild begins the off-loop build of a just-recorded
// template: snapshot directory + placement on the loop, build in the
// background, commit via a posted event.
func (c *Controller) startTemplateBuild(name string, t *core.Template) {
	job := &buildJob{
		name: name,
		tmpl: t,
		id:   ids.TemplateID(c.tmplIDs.Next()),
	}
	c.snapshotFor(job)
	c.building[name] = job
	c.Stats.BuildsInFlight.Add(1)
	c.wg.Add(1)
	go c.runBuild(job)
}

// snapshotFor (re)stamps the job with the loop's current snapshot state.
func (c *Controller) snapshotFor(job *buildJob) {
	job.view = c.dir.Snapshot().View()
	job.place = c.placementSnapshot(nil)
	job.placeEpoch = c.placeEpoch
	job.dir = c.dir
}

// runBuild executes one build job off the loop and posts its result back.
func (c *Controller) runBuild(job *buildJob) {
	defer c.wg.Done()
	c.buildSem <- struct{}{}
	defer func() { <-c.buildSem }()
	if h := c.cfg.Hooks.OnBuildStart; h != nil {
		h(job.name)
	}
	start := time.Now()
	a, err := core.BuildAssignment(job.id, job.view, job.place, job.tmpl.Stages, c.buildPar)
	nanos := uint64(time.Since(start))
	c.post(func() { c.commitBuild(job, a, err, nanos) })
}

// commitBuild runs on the event loop when a background build finishes:
// revalidate the snapshot, then either install the assignment, retry from
// a fresh snapshot, or surface the failure.
func (c *Controller) commitBuild(job *buildJob, a *core.Assignment, err error, nanos uint64) {
	c.Stats.BuildNanos.Add(nanos)
	if c.building[job.name] != job {
		// Superseded (e.g. the template was rebuilt by recovery while this
		// build was in flight and the job already resolved another way).
		return
	}
	if err != nil {
		delete(c.templates, job.name)
		c.finishBuild(job.name)
		c.driverError(fmt.Sprintf("building template %q: %v", job.name, err))
		return
	}
	// Revalidate: if placement changed, the directory was replaced
	// (recovery), or the directory allocated conflicting instances while
	// we built, the result describes a world that no longer exists —
	// discard and retry against fresh state.
	if job.placeEpoch != c.placeEpoch || job.dir != c.dir || job.view.Commit(c.dir) != nil {
		c.Stats.BuildRetries.Add(1)
		c.retryBuild(job)
		return
	}
	c.adoptAssignment(job.tmpl, a)
	c.finishBuild(job.name)
}

// adoptAssignment commits a freshly built assignment as the template's
// active one and installs it.
func (c *Controller) adoptAssignment(t *core.Template, a *core.Assignment) {
	start := time.Now()
	t.Assignments = append(t.Assignments, a)
	t.Active = a
	c.Stats.TemplatesBuilt.Add(1)
	c.installAssignment(t, a)
	c.Stats.FinalizeNanos.Add(uint64(time.Since(start)))
	c.cacheActiveAssignments()
}

// retryBuild re-snapshots and requeues a discarded build. If another path
// (recovery's retarget) already produced an assignment for the current
// worker set, that one is adopted instead; past the retry budget the build
// runs synchronously on the loop, which cannot be invalidated.
func (c *Controller) retryBuild(job *buildJob) {
	if bySig := c.assignCache[job.name]; bySig != nil {
		if a, ok := bySig[c.workerSig()]; ok {
			job.tmpl.Active = a
			c.finishBuild(job.name)
			return
		}
	}
	job.retries++
	if job.retries >= maxBuildRetries {
		a, err := core.BuildAssignment(job.id, c.dir, c.placement(), job.tmpl.Stages, c.buildPar)
		if err != nil {
			delete(c.templates, job.name)
			c.finishBuild(job.name)
			c.driverError(fmt.Sprintf("building template %q: %v", job.name, err))
			return
		}
		c.adoptAssignment(job.tmpl, a)
		c.finishBuild(job.name)
		return
	}
	c.snapshotFor(job)
	c.wg.Add(1)
	go c.runBuild(job)
}

// finishBuild retires a job and lowers the fence: queued driver operations
// drain in order, and quiescence (barriers, gets, checkpoints) is
// re-evaluated.
func (c *Controller) finishBuild(name string) {
	delete(c.building, name)
	c.Stats.BuildsInFlight.Add(-1)
	c.drainOps()
	c.resolveIfQuiet()
}

// retargetPlan is one template's planned outcome of a group retarget.
type retargetPlan struct {
	name   string
	t      *core.Template
	cached *core.Assignment // restore path: reuse a cached assignment
	built  *core.Assignment // fresh build for the new placement
	err    error
}

// planRetargets builds (in parallel, over one shared snapshot view) or
// cache-restores an assignment per installed template for the worker set,
// without mutating any controller state. Templates whose build is still in
// flight are skipped: their commit will revalidate against the new
// placement and rebuild. The returned view holds the builds' instance
// allocations, to be committed with commitRetargets.
func (c *Controller) planRetargets(set []ids.WorkerID, sig string) ([]retargetPlan, *flow.BuildView) {
	names := make([]string, 0, len(c.templates))
	for name, t := range c.templates {
		if t.Active == nil {
			continue // build in flight; its commit re-resolves
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var plans []retargetPlan
	var toBuild []int
	for _, name := range names {
		p := retargetPlan{name: name, t: c.templates[name]}
		if bySig := c.assignCache[name]; bySig != nil {
			if a, ok := bySig[sig]; ok {
				p.cached = a
			}
		}
		if p.cached == nil {
			toBuild = append(toBuild, len(plans))
		}
		plans = append(plans, p)
	}
	if len(toBuild) == 0 {
		return plans, nil
	}

	view := c.dir.Snapshot().View()
	place := c.placementSnapshot(set)
	ivals := make([]ids.TemplateID, len(toBuild))
	for i := range toBuild {
		ivals[i] = ids.TemplateID(c.tmplIDs.Next())
	}
	c.groupBuild(len(toBuild), func(i, inner int) {
		p := &plans[toBuild[i]]
		if err := c.retargetFault(p.name); err != nil {
			p.err = err
			return
		}
		p.built, p.err = p.t.RebuildPar(ivals[i], view, place, nil, inner)
	})
	return plans, view
}

// groupBuild runs n independent build closures, splitting the build pool
// between group concurrency and intra-build sharding so the group uses
// ~buildPar goroutines total. fn receives the item index and its
// per-build parallelism bound.
func (c *Controller) groupBuild(n int, fn func(i, inner int)) {
	if n == 0 {
		return
	}
	conc := c.buildPar
	if conc > n {
		conc = n
	}
	inner := c.buildPar / conc
	if inner < 1 {
		inner = 1
	}
	sem := make(chan struct{}, conc)
	done := make(chan struct{})
	for i := 0; i < n; i++ {
		go func(i int) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			fn(i, inner)
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}
}

// retargetFault consults the fault-injection hook for one template's
// rebuild within a group retarget.
func (c *Controller) retargetFault(name string) error {
	if h := c.cfg.Hooks.RetargetError; h != nil {
		return h(name)
	}
	return nil
}

// commitRetargets applies a planned group retarget: adopt the view's
// instance allocations and switch every successfully planned template.
// Plans with errors are skipped (the caller decides whether that aborts
// the whole operation; SetActive does, recovery logs and continues).
func (c *Controller) commitRetargets(plans []retargetPlan, view *flow.BuildView, sig string) {
	if view != nil {
		if err := view.Commit(c.dir); err != nil {
			// Unreachable: the snapshot, builds and commit all happen
			// within one event-loop call, so nothing can move underneath.
			c.cfg.Logf("controller: retarget commit conflict: %v", err)
			return
		}
	}
	if c.assignCache == nil {
		c.assignCache = make(map[string]map[string]*core.Assignment)
	}
	for i := range plans {
		p := &plans[i]
		switch {
		case p.err != nil:
		case p.cached != nil:
			p.t.Active = p.cached
		default:
			p.t.Assignments = append(p.t.Assignments, p.built)
			p.t.Active = p.built
			bySig := c.assignCache[p.name]
			if bySig == nil {
				bySig = make(map[string]*core.Assignment)
				c.assignCache[p.name] = bySig
			}
			bySig[sig] = p.built
			c.Stats.TemplatesBuilt.Add(1)
		}
	}
}

// OutstandingCommands returns the number of dispatched-but-unfinished
// data-plane commands and template instances (call via Do). Unlike
// barriers it does not count in-flight template builds, so tests can
// observe completion processing while a build is stalled.
func (c *Controller) OutstandingCommands() int {
	return len(c.outstanding) + len(c.instances) + c.central.pendingCount()
}

// BuildQueueDepth returns the number of driver operations fenced behind
// in-flight template builds (call via Do).
func (c *Controller) BuildQueueDepth() int { return len(c.opq) }

// InvalidateAssignmentCache drops the per-worker-set assignment cache so
// the next retarget rebuilds every template (benchmarks and operational
// tooling use it to force the rebuild path; call via Do). Non-active
// assignments are released too: without the cache they can never be
// restored.
func (c *Controller) InvalidateAssignmentCache() {
	c.assignCache = nil
	for _, t := range c.templates {
		// Fresh slice: re-truncating would keep the dropped assignments
		// reachable through the old backing array.
		if t.Active != nil {
			t.Assignments = []*core.Assignment{t.Active}
		} else {
			t.Assignments = nil
		}
	}
}
