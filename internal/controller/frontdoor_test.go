package controller

import (
	"testing"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/proto"
)

// fakeJob fabricates the minimal jobState the tenant fair-share
// aggregates operate on.
func fakeJob(id uint32, tenant string, weight int) *jobState {
	return &jobState{id: ids.JobID(id), tenant: tenant, weight: weight}
}

// TestFrontDoorFairShareRatios: executor slots divide among tenants by
// configured weight, then within a tenant by job weight. The acceptance
// bound is 10%; the floored integer shares here land exact.
func TestFrontDoorFairShareRatios(t *testing.T) {
	c := New(Config{TenantWeights: map[string]int{"gold": 3, "bronze": 1}})
	ws := &workerState{slots: 240, alive: true}

	goldA := fakeJob(1, "gold", 1)
	goldB := fakeJob(2, "gold", 2)
	bronzeA := fakeJob(3, "bronze", 1)
	bronzeB := fakeJob(4, "bronze", 1)
	for _, j := range []*jobState{goldA, goldB, bronzeA, bronzeB} {
		c.adoptJobTenant(j)
	}

	share := func(j *jobState) int { return c.classShareFor(ws, j) }
	// activeTW = 4. gold jobWeight = 3: 240*3*1/(4*3) = 60 and twice that
	// for the weight-2 job. bronze jobWeight = 2: 240*1*1/(4*2) = 30.
	if got := share(goldA); got != 60 {
		t.Errorf("gold weight-1 share = %d, want 60", got)
	}
	if got := share(goldB); got != 120 {
		t.Errorf("gold weight-2 share = %d, want 120", got)
	}
	if got := share(bronzeA); got != 30 {
		t.Errorf("bronze share = %d, want 30", got)
	}

	goldSum := float64(share(goldA) + share(goldB))
	bronzeSum := float64(share(bronzeA) + share(bronzeB))
	if ratio := goldSum / bronzeSum; ratio < 2.7 || ratio > 3.3 {
		t.Errorf("tenant share ratio = %.2f, want 3.0 ±10%%", ratio)
	}

	// A tenant going idle re-divides the pool among the survivors.
	c.dropJobTenant(bronzeA)
	c.dropJobTenant(bronzeB)
	if !c.allTenantsDirty {
		t.Error("tenant going idle must mark all tenants dirty")
	}
	// activeTW = 3: gold weight-1 share = 240*3*1/(3*3) = 80.
	if got := share(goldA); got != 80 {
		t.Errorf("gold share after bronze idle = %d, want 80", got)
	}

	// Unknown tenants default to weight 1; the share never drops below one
	// slot, so every admitted job can make progress.
	tiny := &workerState{slots: 1, alive: true}
	swarm := fakeJob(10, "swarm", 1)
	c.adoptJobTenant(swarm)
	if got := c.classShareFor(tiny, swarm); got != 1 {
		t.Errorf("floored share = %d, want 1", got)
	}
}

// TestAdmissionQueueOrder: the bounded queue admits by descending
// priority, FIFO within a band.
func TestAdmissionQueueOrder(t *testing.T) {
	c := New(Config{})
	enq := func(name string, prio uint8) {
		c.enqueueAdmission(&admitWait{m: &proto.RegisterDriver{Name: name, Priority: prio}})
	}
	enq("low", 0)
	enq("high-1", 2)
	enq("mid", 1)
	enq("high-2", 2)

	want := []string{"high-1", "high-2", "mid", "low"}
	if len(c.admitQ) != len(want) {
		t.Fatalf("queue length = %d, want %d", len(c.admitQ), len(want))
	}
	for i, w := range c.admitQ {
		if w.m.Name != want[i] {
			t.Errorf("queue[%d] = %s, want %s", i, w.m.Name, want[i])
		}
	}
}

// TestAdmissionRateLimit: the per-tenant token bucket admits the burst,
// then rejects with a positive wait hint, and refills over time.
func TestAdmissionRateLimit(t *testing.T) {
	c := New(Config{TenantRate: 10, TenantBurst: 2})
	now := time.Unix(1000, 0)
	for i := 0; i < 2; i++ {
		if wait, limited := c.admitRateLimited("acme", now); limited {
			t.Fatalf("burst admission %d rate limited (wait %v)", i, wait)
		}
	}
	wait, limited := c.admitRateLimited("acme", now)
	if !limited || wait <= 0 {
		t.Fatalf("drained bucket: limited=%v wait=%v, want limited with positive wait", limited, wait)
	}
	// Tenants do not share buckets.
	if _, limited := c.admitRateLimited("other", now); limited {
		t.Fatal("fresh tenant must not inherit a drained bucket")
	}
	// 10 tokens/s: 100ms refills the one token the admission needs.
	if wait, limited := c.admitRateLimited("acme", now.Add(150*time.Millisecond)); limited {
		t.Fatalf("refilled bucket still limited (wait %v)", wait)
	}
}

// TestFrontDoorLatencyQuantiles: the ring recorder's quantiles track the
// recent window.
func TestFrontDoorLatencyQuantiles(t *testing.T) {
	var r latencyRecorder
	if r.quantile(0.99) != 0 {
		t.Fatal("empty recorder must report zero")
	}
	for i := 1; i <= 100; i++ {
		r.record(time.Duration(i) * time.Millisecond)
	}
	if p50 := r.quantile(0.50); p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Errorf("p50 = %v, want ~50ms", p50)
	}
	if p99 := r.quantile(0.99); p99 < 95*time.Millisecond || p99 > 100*time.Millisecond {
		t.Errorf("p99 = %v, want ~99ms", p99)
	}
	// Overflow wraps: a window of identical newer samples displaces the
	// old distribution.
	for i := 0; i < latencyWindow; i++ {
		r.record(7 * time.Millisecond)
	}
	if p99 := r.quantile(0.99); p99 != 7*time.Millisecond {
		t.Errorf("post-wrap p99 = %v, want 7ms", p99)
	}
}
