package controller

// This file is the controller's driver front door: the gateway mux/demux
// pump, the bounded admission queue, hierarchical (tenant → job) fair
// share, per-tenant admission rate limits, and the SLO latency recorders.
//
// Gateway connections. A connection whose handshake is GatewayHello
// carries many driver sessions multiplexed by the driver-side Mux
// (internal/driver/mux.go): each inbound frame is a batch of MuxData
// envelopes, each envelope one session's frame. gatewayPump unpacks them
// into per-session events; outbound driver messages for gateway sessions
// are staged per session and coalesced — inner batch per session, outer
// batch per connection — by flushGateway, so one event's fan-out to many
// sessions of one gateway costs one transport frame.
//
// Bounded admission. registerDriver no longer admits unconditionally:
// past Config.MaxJobs, registrations wait in a priority-ordered bounded
// queue (Config.AdmitQueue) and are admitted as jobs end; past the queue
// they are rejected with a typed AdmissionReject carrying a retry-after
// hint, so no driver ever blocks forever on a saturated controller.
//
// Hierarchical fair share. Executor slots divide first among tenants in
// proportion to Config.TenantWeights, then among each tenant's jobs in
// proportion to job weight. Quota pushes are diffed per (tenant, job
// weight) class: admitting the 10-thousandth job re-sends nothing to the
// 9,999 whose floored share did not change, which is what keeps admission
// O(workers) instead of O(jobs × workers) at scale.

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// queueRetryAfter is the retry-after hint attached to queue-full and
// job-cap rejections: long enough that an immediate retry storm does not
// re-saturate the queue, short enough to keep rejected drivers live.
const queueRetryAfter = 50 * time.Millisecond

// gwConn is one gateway connection: the session → job bindings and the
// per-session outbound staging the coalesced flush drains.
type gwConn struct {
	conn     transport.Conn
	sessions map[uint64]ids.JobID
	// pend stages outbound messages per session; order lists sessions
	// with staged messages in first-staged order so the outer frame is
	// deterministic. pendTop stages top-level (unenveloped) messages —
	// SessionClose notices for the driver-side mux.
	pend    map[uint64][]proto.Msg
	order   []uint64
	pendTop []proto.Msg
	// dead marks a lost gateway so late staging drops instead of queuing
	// for a connection whose pump already exited.
	dead bool
	// sendSeq/recvSeq are the per-direction envelope counters (see
	// proto.MuxData.Seq): sendSeq is owned by the event loop's flush,
	// recvSeq by the gateway pump goroutine.
	sendSeq uint64
	recvSeq uint64
}

// admitWait is one registration parked in the bounded admission queue
// (or, transiently, one being admitted). Exactly one of conn/gw is set:
// dedicated connections carry a jobRef their pump loads per event, since
// the job binding does not exist until admission.
type admitWait struct {
	m      *proto.RegisterDriver
	conn   transport.Conn
	jobRef *atomic.Uint32
	gw     *gwConn
	sess   uint64
	at     time.Time
}

// tenantState aggregates one tenant's live jobs for hierarchical fair
// share. classes groups them by job weight: every job in a (tenant,
// weight) class has the same slot share, so quota pushes diff and send
// per class, not per job.
type tenantState struct {
	name      string
	weight    int
	jobCount  int
	jobWeight int
	classes   map[int]map[*jobState]struct{}
}

// tenantClass keys a worker's last-sent quota per (tenant, job weight)
// share class.
type tenantClass struct {
	tenant string
	weight int
}

// tokenBucket is one tenant's admission rate limiter.
type tokenBucket struct {
	tokens float64
	last   time.Time
}

// latencyWindow bounds the SLO latency rings: quantiles reflect the most
// recent window, and recording stays O(1) on the event loop.
const latencyWindow = 4096

// latencyRecorder is an event-loop-confined ring of recent durations.
type latencyRecorder struct {
	samples []time.Duration
	idx     int
}

func (r *latencyRecorder) record(d time.Duration) {
	if len(r.samples) < latencyWindow {
		r.samples = append(r.samples, d)
		return
	}
	r.samples[r.idx] = d
	r.idx = (r.idx + 1) % latencyWindow
}

// quantile returns the q-th (0..1) quantile of the recorded window,
// sorting a copy so the ring itself stays in arrival order.
func (r *latencyRecorder) quantile(q float64) time.Duration {
	if len(r.samples) == 0 {
		return 0
	}
	tmp := append([]time.Duration(nil), r.samples...)
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q*float64(len(tmp)-1) + 0.5)
	if i < 0 {
		i = 0
	}
	if i >= len(tmp) {
		i = len(tmp) - 1
	}
	return tmp[i]
}

// FrontDoorStats is a point-in-time snapshot of the front door's SLO
// metrics (taken on the event loop via Do).
type FrontDoorStats struct {
	// Jobs / QueueLen are the admitted-job and admission-queue gauges.
	Jobs     int
	QueueLen int
	// AdmissionP50/P99 are quantiles of registration-to-ack latency over
	// the recent window (includes time spent queued).
	AdmissionP50 time.Duration
	AdmissionP99 time.Duration
	// LoopIterP50/P99 are quantiles of controller-evaluated loop
	// iteration latency (instantiation to predicate evaluation).
	LoopIterP50 time.Duration
	LoopIterP99 time.Duration
	// GatewayConns / GatewaySessions gauge the mux fan-in.
	GatewayConns    int
	GatewaySessions int
	// Conns counts every tracked transport connection (workers, drivers,
	// gateways, standby) — the leak gauge for admission-path tests.
	Conns int
}

// FrontDoorStats snapshots the front door's SLO metrics.
func (c *Controller) FrontDoorStats() FrontDoorStats {
	var s FrontDoorStats
	c.Do(func() {
		s.Jobs = len(c.jobs)
		s.QueueLen = len(c.admitQ)
		s.AdmissionP50 = c.admLat.quantile(0.50)
		s.AdmissionP99 = c.admLat.quantile(0.99)
		s.LoopIterP50 = c.loopLat.quantile(0.50)
		s.LoopIterP99 = c.loopLat.quantile(0.99)
		s.GatewayConns = len(c.gateways)
		for _, gw := range c.gateways {
			s.GatewaySessions += len(gw.sessions)
		}
	})
	c.connMu.Lock()
	s.Conns = len(c.conns)
	c.connMu.Unlock()
	return s
}

// registerGateway admits one gateway connection and starts its demux
// pump. Sessions arrive later as RegisterDriver messages inside MuxData
// envelopes.
func (c *Controller) registerGateway(conn transport.Conn) {
	gw := &gwConn{
		conn:     conn,
		sessions: make(map[uint64]ids.JobID),
		pend:     make(map[uint64][]proto.Msg),
	}
	c.gateways[conn] = gw
	c.wg.Add(1)
	go c.gatewayPump(gw)
}

// gatewayPump forwards one gateway connection's demuxed messages into the
// event loop: each MuxData envelope's inner messages become events
// stamped with the gateway and session (the session → job resolution
// happens on the event loop, where the binding lives). Top-level
// SessionClose notices route as ordinary events.
func (c *Controller) gatewayPump(gw *gwConn) {
	defer c.wg.Done()
	defer c.untrackConn(gw.conn)
	emit := func(ev cevent) error {
		select {
		case c.events <- ev:
			return nil
		case <-c.stopped:
			return errPumpStopped
		}
	}
	for {
		raw, err := gw.conn.Recv()
		if err != nil {
			select {
			case c.events <- cevent{kind: cevConnClosed, conn: gw.conn, rerr: err}:
			case <-c.stopped:
			}
			return
		}
		err = proto.ForEachMsg(raw, func(m proto.Msg) error {
			switch m := m.(type) {
			case *proto.MuxData:
				gw.recvSeq++
				if m.Seq != gw.recvSeq {
					return fmt.Errorf("gateway envelope seq %d, want %d: frame lost or reordered", m.Seq, gw.recvSeq)
				}
				return proto.ForEachMsg(m.Raw, func(inner proto.Msg) error {
					ev := cevent{kind: cevMsg, msg: inner, gw: gw, sess: m.Session, isDrv: true}
					if _, ok := inner.(*proto.RegisterDriver); ok {
						ev.at = time.Now()
					}
					return emit(ev)
				})
			case *proto.SessionClose:
				return emit(cevent{kind: cevMsg, msg: m, gw: gw, sess: m.Session, isDrv: true})
			default:
				c.cfg.Logf("controller: unexpected top-level %s on gateway connection", m.Kind())
				return nil
			}
		})
		proto.PutBuf(raw)
		if errors.Is(err, errPumpStopped) {
			return
		}
		if err != nil {
			// A corrupt mux stream poisons every session riding it: close the
			// connection so both sides fail those sessions and no more.
			c.cfg.Logf("controller: bad gateway frame: %v", err)
			gw.conn.Close()
		}
	}
}

// stageGateway stages one driver-bound message for a gateway session; the
// end-of-event flush wraps each session's run into one inner batch.
func (c *Controller) stageGateway(gw *gwConn, sess uint64, m proto.Msg) {
	if gw.dead {
		return
	}
	if len(gw.pend) == 0 && len(gw.pendTop) == 0 {
		c.dirtyGws = append(c.dirtyGws, gw)
	}
	q, ok := gw.pend[sess]
	if !ok {
		gw.order = append(gw.order, sess)
	}
	gw.pend[sess] = append(q, m)
}

// stageGatewayTop stages one top-level (unenveloped) gateway message —
// the SessionClose notices addressed to the driver-side mux itself.
func (c *Controller) stageGatewayTop(gw *gwConn, m proto.Msg) {
	if gw.dead {
		return
	}
	if len(gw.pend) == 0 && len(gw.pendTop) == 0 {
		c.dirtyGws = append(c.dirtyGws, gw)
	}
	gw.pendTop = append(gw.pendTop, m)
}

// flushGateways sends one coalesced frame per dirty gateway. Runs on the
// event loop as part of the end-of-event flush.
func (c *Controller) flushGateways() {
	if len(c.dirtyGws) == 0 {
		return
	}
	dirty := c.dirtyGws
	c.dirtyGws = c.dirtyGws[:0]
	for _, gw := range dirty {
		c.flushGateway(gw)
	}
}

// flushGateway packs each staged session's messages into one MuxData
// envelope (inner batch), appends top-level notices, and sends the whole
// thing as one outer batch frame.
func (c *Controller) flushGateway(gw *gwConn) {
	if len(gw.pend) == 0 && len(gw.pendTop) == 0 {
		return
	}
	outer := make([]proto.Msg, 0, len(gw.order)+len(gw.pendTop))
	inner := make([][]byte, 0, len(gw.order))
	for _, sess := range gw.order {
		msgs := gw.pend[sess]
		if len(msgs) == 0 {
			continue
		}
		raw := proto.AppendBatch(proto.GetBuf(), msgs)
		inner = append(inner, raw)
		gw.sendSeq++
		outer = append(outer, &proto.MuxData{Session: sess, Seq: gw.sendSeq, Raw: raw})
		delete(gw.pend, sess)
	}
	gw.order = gw.order[:0]
	outer = append(outer, gw.pendTop...)
	for i := range gw.pendTop {
		gw.pendTop[i] = nil
	}
	gw.pendTop = gw.pendTop[:0]
	if gw.dead || len(outer) == 0 {
		for _, b := range inner {
			proto.PutBuf(b)
		}
		return
	}
	buf := proto.AppendBatch(proto.GetBuf(), outer)
	for _, b := range inner {
		proto.PutBuf(b)
	}
	owned, err := transport.SendOwned(gw.conn, buf)
	if !owned {
		proto.PutBuf(buf)
	}
	if err != nil {
		c.cfg.Logf("controller: gateway send failed: %v", err)
	}
}

// handleSessionClose retires one gateway session: a bound job ends
// exactly as a dedicated driver disconnect would end it; an unbound
// session may still be waiting in the admission queue, in which case the
// queue entry is dropped — the canceled driver must leave neither a
// jobState nor a queue slot behind.
func (c *Controller) handleSessionClose(gw *gwConn, sess uint64) {
	if gw == nil {
		return
	}
	if job, ok := gw.sessions[sess]; ok {
		if j := c.jobs[job]; j != nil {
			c.endJob(j, "session closed")
		}
		delete(gw.sessions, sess)
		return
	}
	for i, w := range c.admitQ {
		if w.gw == gw && w.sess == sess {
			c.admitQ = append(c.admitQ[:i], c.admitQ[i+1:]...)
			return
		}
	}
}

// handleGatewayClosed tears down a lost gateway connection: every bound
// session's job ends (their drivers reattach through the mux if they
// care), and queued admissions riding the connection are dropped.
func (c *Controller) handleGatewayClosed(gw *gwConn, err error) {
	delete(c.gateways, gw.conn)
	gw.dead = true
	keep := c.admitQ[:0]
	for _, w := range c.admitQ {
		if w.gw != gw {
			keep = append(keep, w)
		}
	}
	c.admitQ = keep
	select {
	case <-c.stopped:
		return
	default:
	}
	c.cfg.Logf("controller: gateway connection lost (%d sessions): %v", len(gw.sessions), err)
	for _, job := range gw.sessions {
		if j := c.jobs[job]; j != nil {
			c.endJob(j, "gateway connection lost")
		}
	}
	gw.sessions = make(map[uint64]ids.JobID)
}

// pumpRef is the driver pump for dedicated connections admitted through
// the bounded front door: the job binding may not exist at pump start
// (the registration can sit in the admission queue), so every event loads
// it from jobRef, which admitNow stores before sending the ack. Starting
// the pump before admission is what detects a driver that gives up —
// closes or cancels — while queued.
func (c *Controller) pumpRef(conn transport.Conn, jobRef *atomic.Uint32) {
	defer c.wg.Done()
	defer c.untrackConn(conn)
	for {
		raw, err := conn.Recv()
		if err != nil {
			select {
			case c.events <- cevent{kind: cevConnClosed, job: ids.JobID(jobRef.Load()), isDrv: true, rerr: err, conn: conn}:
			case <-c.stopped:
			}
			return
		}
		err = proto.ForEachMsg(raw, func(msg proto.Msg) error {
			select {
			case c.events <- cevent{kind: cevMsg, msg: msg, job: ids.JobID(jobRef.Load()), isDrv: true}:
				return nil
			case <-c.stopped:
				return errPumpStopped
			}
		})
		proto.PutBuf(raw)
		if errors.Is(err, errPumpStopped) {
			return
		}
		if err != nil {
			c.cfg.Logf("controller: bad driver message: %v", err)
		}
	}
}

// registerDriver is the front door's admission path: rate-limit check,
// then admit, queue, or reject against the MaxJobs/AdmitQueue bounds.
// conn is the dedicated connection (nil for a gateway session); gw/sess
// identify a gateway session (gw nil for a dedicated connection).
func (c *Controller) registerDriver(m *proto.RegisterDriver, conn transport.Conn, gw *gwConn, sess uint64, at time.Time) {
	now := time.Now()
	if at.IsZero() {
		at = now
	}
	w := &admitWait{m: m, conn: conn, gw: gw, sess: sess, at: at}
	if conn != nil {
		w.jobRef = new(atomic.Uint32)
		c.wg.Add(1)
		go c.pumpRef(conn, w.jobRef)
	}
	if wait, limited := c.admitRateLimited(m.Tenant, now); limited {
		c.rejectAdmission(w, proto.RejectRateLimited, wait,
			fmt.Sprintf("tenant %q admission rate limit", m.Tenant))
		return
	}
	if c.cfg.MaxJobs > 0 && len(c.jobs) >= c.cfg.MaxJobs {
		if len(c.admitQ) < c.cfg.AdmitQueue {
			c.Stats.AdmissionsQueued.Add(1)
			c.enqueueAdmission(w)
			return
		}
		code := uint8(proto.RejectQueueFull)
		reason := "admission queue full"
		if c.cfg.AdmitQueue <= 0 {
			code = proto.RejectMaxJobs
			reason = fmt.Sprintf("job cap %d reached", c.cfg.MaxJobs)
		}
		c.rejectAdmission(w, code, queueRetryAfter, reason)
		return
	}
	c.admitNow(w, now)
}

// enqueueAdmission inserts one registration into the bounded queue:
// descending priority, FIFO within a priority band.
func (c *Controller) enqueueAdmission(w *admitWait) {
	i := len(c.admitQ)
	for i > 0 && c.admitQ[i-1].m.Priority < w.m.Priority {
		i--
	}
	c.admitQ = append(c.admitQ, nil)
	copy(c.admitQ[i+1:], c.admitQ[i:])
	c.admitQ[i] = w
}

// admitNow creates the job for one registration and acks it. now is the
// admission instant; w.at is the arrival instant — their difference is
// the admission latency the SLO quantiles track.
func (c *Controller) admitNow(w *admitWait, now time.Time) {
	j := c.newJobState(w.m.Name, w.m.Weight, w.conn)
	j.tenant = w.m.Tenant
	j.priority = w.m.Priority
	j.gw = w.gw
	j.sess = w.sess
	c.jobs[j.id] = j
	c.totalWeight += j.weight
	c.adoptJobTenant(j)
	c.Stats.JobsAdmitted.Add(1)
	c.admLat.record(now.Sub(w.at))
	c.replJobStart(j)
	if w.gw != nil {
		w.gw.sessions[w.sess] = j.id
	}
	if w.jobRef != nil {
		// Store before the ack send: the pump loads the binding per event,
		// and the driver's first op can only follow the ack.
		w.jobRef.Store(uint32(j.id))
	}
	c.sendDriver(j, &proto.RegisterDriverAck{Job: j.id})
	// The newcomer's quota goes to every worker unconditionally; its
	// class's other members are diffed by flushQuotas at end of event.
	for _, ws := range c.workers {
		if ws.alive {
			c.sendWorker(ws, &proto.JobQuota{Job: j.id, Slots: c.classShareFor(ws, j)})
		}
	}
}

// rejectAdmission answers one registration with a typed AdmissionReject.
// A dedicated connection is closed (its pump exit is inert: jobRef still
// holds NoJob and no queue entry exists); a gateway session gets the
// rejection enveloped, leaving the shared connection untouched.
func (c *Controller) rejectAdmission(w *admitWait, code uint8, retryAfter time.Duration, reason string) {
	c.Stats.AdmissionsRejected.Add(1)
	rej := &proto.AdmissionReject{
		Code:             code,
		RetryAfterMillis: uint64(retryAfter / time.Millisecond),
		Err:              reason,
	}
	if w.gw != nil {
		c.stageGateway(w.gw, w.sess, rej)
		return
	}
	buf := proto.MarshalAppend(proto.GetBuf(), rej)
	if owned, _ := transport.SendOwned(w.conn, buf); !owned {
		proto.PutBuf(buf)
	}
	w.conn.Close()
}

// drainAdmissions admits queued registrations into freed job slots.
// Called whenever a job ends.
func (c *Controller) drainAdmissions() {
	for len(c.admitQ) > 0 && (c.cfg.MaxJobs <= 0 || len(c.jobs) < c.cfg.MaxJobs) {
		w := c.admitQ[0]
		c.admitQ[0] = nil
		c.admitQ = c.admitQ[1:]
		c.admitNow(w, time.Now())
	}
	if len(c.admitQ) == 0 {
		c.admitQ = nil
	}
}

// dropQueuedConn removes the admission-queue entry (if any) for a
// dedicated connection that closed while waiting. Reports whether one was
// found.
func (c *Controller) dropQueuedConn(conn transport.Conn) bool {
	for i, w := range c.admitQ {
		if w.conn == conn {
			c.admitQ = append(c.admitQ[:i], c.admitQ[i+1:]...)
			return true
		}
	}
	return false
}

// rejectAllQueued empties the admission queue with the given code —
// the controller is shutting down.
func (c *Controller) rejectAllQueued(code uint8, reason string) {
	for _, w := range c.admitQ {
		c.rejectAdmission(w, code, 0, reason)
	}
	c.admitQ = nil
}

// admitRateLimited charges one admission against the tenant's token
// bucket. It reports the wait until a token would be available when the
// bucket is empty.
func (c *Controller) admitRateLimited(tenant string, now time.Time) (time.Duration, bool) {
	if c.cfg.TenantRate <= 0 {
		return 0, false
	}
	burst := float64(c.cfg.TenantBurst)
	if burst < 1 {
		burst = 1
	}
	b := c.rateBuckets[tenant]
	if b == nil {
		b = &tokenBucket{tokens: burst, last: now}
		c.rateBuckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * c.cfg.TenantRate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / c.cfg.TenantRate * float64(time.Second))
		return wait, true
	}
	b.tokens--
	return 0, false
}

// tenantWeight resolves one tenant's configured fair-share weight.
func (c *Controller) tenantWeight(name string) int {
	if w := c.cfg.TenantWeights[name]; w > 0 {
		return w
	}
	return 1
}

// adoptJobTenant folds one admitted (or restored) job into its tenant's
// fair-share aggregates. A tenant going from idle to active changes every
// tenant's share (the active-weight denominator moved), so all go dirty;
// otherwise only the job's own tenant does.
func (c *Controller) adoptJobTenant(j *jobState) {
	t := c.tenants[j.tenant]
	if t == nil {
		t = &tenantState{
			name:    j.tenant,
			weight:  c.tenantWeight(j.tenant),
			classes: make(map[int]map[*jobState]struct{}),
		}
		c.tenants[j.tenant] = t
	}
	if t.jobCount == 0 {
		c.activeTW += t.weight
		c.allTenantsDirty = true
	} else {
		c.dirtyTenants[t] = struct{}{}
	}
	t.jobCount++
	t.jobWeight += j.weight
	cl := t.classes[j.weight]
	if cl == nil {
		cl = make(map[*jobState]struct{})
		t.classes[j.weight] = cl
	}
	cl[j] = struct{}{}
}

// dropJobTenant removes one ended job from its tenant's aggregates,
// mirroring adoptJobTenant.
func (c *Controller) dropJobTenant(j *jobState) {
	t := c.tenants[j.tenant]
	if t == nil {
		return
	}
	if cl := t.classes[j.weight]; cl != nil {
		delete(cl, j)
		if len(cl) == 0 {
			delete(t.classes, j.weight)
		}
	}
	t.jobCount--
	t.jobWeight -= j.weight
	if t.jobCount <= 0 {
		t.jobCount = 0
		t.jobWeight = 0
		c.activeTW -= t.weight
		c.allTenantsDirty = true
		return
	}
	c.dirtyTenants[t] = struct{}{}
}

// classShare computes the per-worker slot share of one (tenant, job
// weight) class: slots divide among active tenants by tenant weight, then
// within the tenant by job weight, floored at one slot so every job can
// make progress.
func (c *Controller) classShare(ws *workerState, t *tenantState, weight int) int {
	den := c.activeTW * t.jobWeight
	if den <= 0 {
		return 1
	}
	s := ws.slots * t.weight * weight / den
	if s < 1 {
		s = 1
	}
	return s
}

// classShareFor is classShare looked up from a job.
func (c *Controller) classShareFor(ws *workerState, j *jobState) int {
	t := c.tenants[j.tenant]
	if t == nil {
		return 1
	}
	return c.classShare(ws, t, j.weight)
}

// flushQuotas pushes changed slot quotas for dirty tenants, diffed per
// (tenant, job weight) class against what each worker last heard. Runs on
// the event loop before every flushSends. In the saturated regime — every
// share floored at one — an admission re-sends nothing beyond the
// newcomer's own quota, which admitNow pushed directly.
func (c *Controller) flushQuotas() {
	if !c.allTenantsDirty && len(c.dirtyTenants) == 0 {
		return
	}
	var dirty []*tenantState
	if c.allTenantsDirty {
		for _, t := range c.tenants {
			if t.jobCount > 0 {
				dirty = append(dirty, t)
			}
		}
	} else {
		for t := range c.dirtyTenants {
			if t.jobCount > 0 {
				dirty = append(dirty, t)
			}
		}
	}
	c.allTenantsDirty = false
	clear(c.dirtyTenants)
	if len(dirty) == 0 {
		return
	}
	c.Stats.SlotRebalances.Add(1)
	for _, t := range dirty {
		for _, ws := range c.workers {
			if !ws.alive {
				continue
			}
			if ws.quotaSent == nil {
				ws.quotaSent = make(map[tenantClass]int)
			}
			for weight, jobs := range t.classes {
				if len(jobs) == 0 {
					continue
				}
				s := c.classShare(ws, t, weight)
				key := tenantClass{t.name, weight}
				if ws.quotaSent[key] == s {
					continue
				}
				ws.quotaSent[key] = s
				for j := range jobs {
					c.sendWorker(ws, &proto.JobQuota{Job: j.id, Slots: s})
				}
			}
		}
	}
}
