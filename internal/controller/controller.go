// Package controller implements the Nimbus controller node.
//
// The controller is multi-tenant: it admits N concurrent driver jobs and
// multiplexes them over one shared worker pool. Each RegisterDriver
// admission creates a job — identified by an ids.JobID — that owns a full
// copy of the mutable control-plane machinery: object directory
// (mutable-object versioning, §3.3), per-worker dependency ledgers,
// execution templates (§4), watermark tracking, checkpointing and failure
// recovery (§4.4), the off-loop build pipeline, and all ID allocators.
// Jobs cannot observe each other: their command, object and template IDs
// live in disjoint per-job namespaces carried on every worker-bound
// message, worker halts are job-scoped (recovering one job never flushes
// another's in-flight work), and checkpoints are keyed by job in durable
// storage. Executor capacity is split by a weighted fair-share slot
// allocator, rebalanced on job arrival and exit, so one hot tenant cannot
// starve the rest. Driver disconnect or JobEnd tears down exactly that
// job's templates, outstanding builds, directory and worker-side state.
//
// Per job, the controller receives the driver's task stream, transforms it
// into an execution plan (assigning tasks to workers and inserting
// explicit copy commands for cross-worker data movement, paper §3.2), and
// dispatches commands to workers.
//
// Scheduling modes:
//
//   - ModeNimbus (default): whole stages are pushed to workers, which
//     resolve dependencies locally; basic blocks marked by the driver are
//     recorded into execution templates and re-executed by instantiation.
//   - ModeCentral: a Spark-like centralized dispatcher — every command is
//     sent individually once its predecessors' completions have been
//     reported back, with a configurable per-task scheduling cost. This is
//     the paper's Spark-opt baseline.
//
// All controller state is confined to one event loop goroutine; external
// callers inject work through Do.
package controller

import (
	"errors"
	"fmt"
	"log"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// Mode selects the scheduling regime.
type Mode int

// Modes.
const (
	// ModeNimbus is the paper's system: batched dispatch, worker-local
	// dependency resolution, execution templates.
	ModeNimbus Mode = iota
	// ModeCentral is the Spark-like baseline: per-task central dispatch.
	ModeCentral
)

// Config configures a controller.
type Config struct {
	// ControlAddr is the listen address for drivers and workers.
	ControlAddr string
	// Transport supplies connectivity.
	Transport transport.Transport
	// Mode selects the scheduling regime.
	Mode Mode
	// CentralPerTaskCost models the baseline scheduler's per-task CPU cost
	// in ModeCentral (the paper measures 166µs/task for Spark 2.0; zero
	// disables the model and measures this implementation's native cost).
	CentralPerTaskCost time.Duration
	// LivePerTaskCost models the per-task cost of non-templated central
	// scheduling in ModeNimbus (the paper measures 134µs/task for Nimbus,
	// including the RPC and syscall overhead an in-memory loopback does
	// not pay; zero measures this implementation's native cost). It is
	// what makes templates matter: templated instantiation bypasses it.
	LivePerTaskCost time.Duration
	// HeartbeatTimeout marks a worker failed after silence (zero disables
	// heartbeat-based detection; connection errors still trigger it).
	HeartbeatTimeout time.Duration
	// BuildParallelism bounds the goroutine pool template builds use,
	// both the background executor and the intra-build sharding (0 =
	// GOMAXPROCS, 1 = serial builds). The pool is shared by all jobs.
	BuildParallelism int
	// LeaseTTL is the leadership lease duration for controller failover:
	// with a standby attached, the primary renews its lease every
	// LeaseTTL/3 over the replication stream, and the standby promotes
	// itself once LeaseTTL elapses without a renewal. Zero defaults to
	// one second.
	LeaseTTL time.Duration
	// ReattachDeadline bounds how long a promoted controller parks a
	// restored job whose driver has not reattached: past the deadline
	// the job is torn down cleanly instead of waiting (and replaying)
	// forever. Zero disables the deadline.
	ReattachDeadline time.Duration
	// MaxJobs caps concurrently admitted driver jobs (0 = unlimited).
	// Past the cap, registrations wait in the bounded admission queue or
	// are rejected with a typed AdmissionReject — never blocked forever.
	MaxJobs int
	// AdmitQueue bounds how many registrations may wait for a job slot
	// once MaxJobs is reached (0 = reject immediately). The queue orders
	// by descending driver priority, FIFO within a band.
	AdmitQueue int
	// TenantWeights sets hierarchical fair-share weights per tenant
	// (missing or non-positive = 1): executor slots divide first among
	// tenants with live jobs by these weights, then among each tenant's
	// jobs by job weight.
	TenantWeights map[string]int
	// TenantRate rate-limits admissions per tenant (admissions/second,
	// 0 = unlimited); TenantBurst is the token-bucket depth (min 1).
	// Past the limit, registration is rejected with a retry-after hint.
	TenantRate  float64
	TenantBurst int
	// Hooks are optional test/fault-injection instrumentation points.
	Hooks Hooks
	// Logf receives diagnostics. Nil defaults to log.Printf.
	Logf func(format string, args ...any)
}

// Stats exposes controller counters, aggregated across jobs. The *Nanos
// fields accumulate controller CPU time in the corresponding operations;
// the microbenchmarks (paper Tables 1-3) divide them by task counts.
type Stats struct {
	TasksScheduled atomic.Uint64
	CopiesInserted atomic.Uint64
	MsgsToWorkers  atomic.Uint64
	// FramesToWorkers counts transport frames actually sent: the send
	// coalescer packs all messages staged for a worker during one event
	// into one frame, so FramesToWorkers <= MsgsToWorkers. In the
	// steady state an InstantiateBlock fan-out is exactly one frame per
	// participating worker.
	FramesToWorkers atomic.Uint64
	BytesToWorkers  atomic.Uint64
	Instantiations  atomic.Uint64
	TemplatesBuilt  atomic.Uint64
	PatchesBuilt    atomic.Uint64
	PatchCacheHits  atomic.Uint64
	Validations     atomic.Uint64
	AutoValidations atomic.Uint64
	EditsSent       atomic.Uint64
	Recoveries      atomic.Uint64
	// BuildRetries counts off-loop builds discarded at commit because
	// placement or the directory moved underneath them.
	BuildRetries atomic.Uint64
	// BuildsInFlight gauges template builds currently running off-loop.
	BuildsInFlight atomic.Int64
	// JobsAdmitted / JobsEnded count driver-job lifecycle events;
	// SlotRebalances counts fair-share recomputations of the per-worker
	// executor-slot quotas. AdmissionsQueued counts registrations that
	// waited in the bounded admission queue; AdmissionsRejected counts
	// typed rejections (queue full, job cap, rate limit, shutdown).
	JobsAdmitted       atomic.Uint64
	JobsEnded          atomic.Uint64
	SlotRebalances     atomic.Uint64
	AdmissionsQueued   atomic.Uint64
	AdmissionsRejected atomic.Uint64
	// PredicateEvals counts controller-side loop-predicate evaluations
	// (driver API v2 InstantiateWhile); PipelinedGets counts driver Gets
	// that arrived while earlier Gets of the same job were still
	// unresolved — overlap only possible with the async driver surface.
	PredicateEvals atomic.Uint64
	PipelinedGets  atomic.Uint64
	// Takeovers counts jobs this controller recovered through standby
	// promotion (always 0 on a controller that was never promoted);
	// OpsReplayed counts logged driver operations re-executed by
	// recovery or takeover replay.
	Takeovers   atomic.Uint64
	OpsReplayed atomic.Uint64
	// Evictions counts snapshot-listed workers a promoted controller
	// struck from the rejoin roster because they never reconnected
	// within the heartbeat timeout; JobsExpired counts restored jobs
	// torn down because their driver never reattached within
	// Config.ReattachDeadline. CkptsAborted counts checkpoints vetoed by
	// a worker-reported durable Save failure.
	Evictions    atomic.Uint64
	JobsExpired  atomic.Uint64
	CkptsAborted atomic.Uint64
	// FleetJoins / FleetDrains count completed elastic-fleet lifecycle
	// transitions (fleet.go): a join is announce→warm→ready, a drain is
	// drain→quiesce→decommission. Neither counts fixed-fleet
	// registrations or failures.
	FleetJoins  atomic.Uint64
	FleetDrains atomic.Uint64

	ScheduleNanos    atomic.Uint64 // live per-task scheduling
	RecordNanos      atomic.Uint64 // template recording (stage capture) time
	BuildNanos       atomic.Uint64 // off-loop assignment construction time
	FinalizeNanos    atomic.Uint64 // controller-template commit + install
	InstantiateNanos atomic.Uint64 // block instantiation (controller side)
	ValidateNanos    atomic.Uint64 // precondition validation
	PatchBuildNanos  atomic.Uint64 // patch construction
	MigrateNanos     atomic.Uint64 // edit generation (rebuild + diff)
}

// Controller is the Nimbus controller node.
type Controller struct {
	cfg Config

	events  chan cevent
	stopped chan struct{}
	wg      sync.WaitGroup
	lis     transport.Listener

	// Cluster state (shared by all jobs).
	workers    map[ids.WorkerID]*workerState
	active     []ids.WorkerID
	nextWorker ids.WorkerID

	// Admitted jobs, by ID. jobSeq allocates JobIDs; totalWeight is the
	// fair-share denominator.
	jobs        map[ids.JobID]*jobState
	jobSeq      uint32
	totalWeight int

	// Shared build executor: per-job builds contend for one bounded pool.
	buildSem chan struct{}
	buildPar int

	// Driver fetches in flight, keyed by a global sequence (the worker
	// echo carries no job; the table does).
	fetchSeq uint64
	fetches  map[uint64]*pendingFetch
	// chunkRx reassembles chunked fetch replies (large objects stream
	// from workers as ChunkFetch-flagged DataChunk runs), keyed by the
	// same fetch sequence.
	chunkRx map[uint64]*fetchChunks

	// dirty lists workers with staged messages awaiting the end-of-event
	// coalesced flush.
	dirty []*workerState

	// Front door (frontdoor.go): gateway connections with per-session
	// staging, the bounded admission queue, tenant fair-share aggregates
	// (activeTW sums the weights of tenants with live jobs; dirty sets
	// drive the diffed quota flush), per-tenant admission rate buckets,
	// and the SLO latency rings.
	gateways        map[transport.Conn]*gwConn
	dirtyGws        []*gwConn
	admitQ          []*admitWait
	tenants         map[string]*tenantState
	activeTW        int
	dirtyTenants    map[*tenantState]struct{}
	allTenantsDirty bool
	rateBuckets     map[string]*tokenBucket
	admLat          latencyRecorder
	loopLat         latencyRecorder

	// Elastic fleet (fleet.go): workers mid-drain awaiting quiescence,
	// and the lifecycle latency rings (announce→ready warm latency,
	// drain→decommission rebalance latency).
	draining map[ids.WorkerID]struct{}
	warmLat  latencyRecorder
	drainLat latencyRecorder

	// Failover state (repl.go, takeover.go): the attached standby's
	// replication stream (nil without one), whether any standby ever
	// attached (it caps the journal-truncation point drivers learn — a
	// detached standby may still promote from its stale shadow), the
	// lease epoch renewals carry, the rejoin roster a promoted controller
	// waits on before takeover recovery, and the tracked connection set
	// Kill tears down.
	repl         *replState
	hadStandby   bool
	epoch        uint64
	expectRejoin map[ids.WorkerID]struct{}
	takeoverWait bool
	// takeoverAt stamps when a promoted controller began accepting
	// reconnects; the tick loop measures the eviction and driver-
	// reattach deadlines from it. standbyDownAt stamps when the last
	// standby detached, bounding how long hadStandby keeps capping the
	// journal-truncation point at the stale shadow's replAcked.
	takeoverAt    time.Time
	standbyDownAt time.Time

	connMu   sync.Mutex
	conns    map[transport.Conn]struct{}
	stopOnce sync.Once

	// Stats is exported for benchmarks and tests.
	Stats Stats
}

// jobState is one admitted driver job: a complete, isolated copy of the
// mutable control plane. Everything in it is event-loop confined.
type jobState struct {
	id     ids.JobID
	name   string
	weight int
	conn   transport.Conn
	// Front-door identity: the fair-share tenant, the admission-queue
	// priority, and — for sessions multiplexed over a gateway connection
	// — the gateway and session the job is bound to (conn is nil then;
	// driver-bound sends stage through the gateway's coalescer).
	tenant   string
	priority uint8
	gw       *gwConn
	sess     uint64
	// dead marks a torn-down job so late build commits and stray events
	// drop instead of resurrecting state.
	dead bool

	// Data model.
	vars     map[ids.VariableID]*varMeta
	dir      *flow.Directory
	ledgers  map[ids.WorkerID]*flow.Ledger
	cmdIDs   ids.CommandIDs
	objIDs   ids.ObjectIDs
	logIDs   ids.LogicalIDs
	tmplIDs  ids.Allocator
	patchIDs ids.Allocator

	// Templates.
	templates map[string]*core.Template
	recording *recordingState
	lastBlock ids.TemplateID
	autoValid bool
	// assignCache caches assignments per template name and worker-set
	// signature so returning to a previous schedule reuses installed
	// worker templates (Figure 9's restore path).
	assignCache map[string]map[string]*core.Assignment
	patchCache  *core.PatchCache
	// pendingEdits stages per-worker edits to attach to the next
	// instantiation of each assignment.
	pendingEdits map[ids.TemplateID]map[ids.WorkerID][]editStaged
	// Off-loop builds: in-flight jobs by template name, the driver-op
	// fence queue, and the placement epoch that stales snapshots (bumped
	// by reassignment and migration).
	building   map[string]*buildJob
	opq        []proto.Msg
	placeEpoch uint64

	// Outstanding work. wm incrementally tracks the minimum outstanding
	// command ID / instance base so doneWatermark never rescans the maps.
	outstanding  map[ids.CommandID]ids.WorkerID
	instances    map[uint64]*instState
	nextInstance uint64
	wm           *wmTracker

	// Central-mode dispatch graph.
	central *centralGraph

	// Driver synchronization.
	barriers []pendingBarrier
	gets     []pendingGet
	// loops holds in-flight controller-evaluated loops (loops.go). The
	// op fence admits at most one at a time; queued InstantiateWhiles
	// wait in opq, so the slice is effectively 0 or 1 long.
	loops []*loopState

	// Checkpoint / recovery.
	ckpt        ckptState
	oplog       []proto.Msg
	replaying   bool
	haltSeq     uint64
	haltPending map[ids.WorkerID]bool
	recovering  bool

	// Failover. applied counts the job's logged driver operations
	// (replayed ops do not re-count); it is streamed to the standby and
	// echoed to a reattaching driver, which resumes its journal from it.
	// defs is a promoted job's definition replay list (variables and
	// template recordings), set at restoration and consumed by takeover
	// recovery; live jobs reconstruct definitions on demand for the
	// replication snapshot instead. pendingTakeover parks a promoted job
	// between restoration and its takeover recovery: driver ops queue
	// behind the fence and quiescence checks stand down until the worker
	// roster reassembles.
	applied         uint64
	defs            []proto.Msg
	pendingTakeover bool
	// replAcked is the highest applied-op index the standby has acked for
	// this job: the prefix a promotion from that standby is guaranteed to
	// hold, hence the driver's safe journal-truncation point while a
	// standby is (or ever was) attached.
	replAcked uint64
	// loopStepping marks a controller-originated instantiation (a loop
	// iteration): logged and replicated, but not counted in applied.
	loopStepping bool
}

type workerState struct {
	id       ids.WorkerID
	conn     transport.Conn
	dataAddr string
	slots    int
	alive    bool
	lastBeat time.Time
	// phase is the fleet lifecycle state (fleet.go); fixed-fleet workers
	// are born phaseActive. pending mirrors the last heartbeat's queue
	// depth — the autoscaler's load signal. warm/drainStart track the
	// lifecycle transition in flight, if any.
	phase      workerPhase
	pending    int
	warm       *warmState
	drainStart time.Time
	// outq stages messages for the coalesced per-event flush (event-loop
	// confined between flushes; a flush goroutine owns it transiently).
	outq []proto.Msg
	// quotaSent caches the last slot quota sent per (tenant, job weight)
	// share class, so the fair-share flush re-sends only classes whose
	// share actually moved (event-loop confined).
	quotaSent map[tenantClass]int
}

// varMeta is the controller's record of one application variable.
type varMeta struct {
	id         ids.VariableID
	name       string
	partitions int
	logicals   []ids.LogicalID
	assign     []ids.WorkerID // partition -> owning worker
}

// recordingState captures the basic block being recorded. Only the stage
// specs are kept: assignment construction is a pure function over them and
// runs off-loop at TemplateEnd.
type recordingState struct {
	tmpl *core.Template
}

type instState struct {
	assignment *core.Assignment
	base       ids.CommandID
	pending    map[ids.WorkerID]bool
}

type pendingBarrier struct {
	seq uint64
}

type pendingGet struct {
	seq uint64
	v   ids.VariableID
	p   int
}

type pendingFetch struct {
	job       ids.JobID
	driverSeq uint64
	v         ids.VariableID
	p         int
	// loop, when non-nil, marks a predicate fetch: the echo feeds the
	// loop's evaluation instead of a driver GetResult.
	loop *loopState
}

type ckptState struct {
	count     uint64
	last      uint64
	requested []uint64 // driver seqs awaiting the next checkpoint commit
	saving    bool
	// logMark is the oplog length at beginCheckpoint: the manifest covers
	// exactly those entries, so commit must clear only them. Ops arriving
	// while the saves drain (reachable since the async driver surface)
	// stay logged for replay on top of the reverted state.
	logMark int
	// pendingManifest collects what the in-progress checkpoint saves;
	// manifest is the committed one recovery loads from.
	pendingManifest map[ids.LogicalID]uint64
	manifest        map[ids.LogicalID]uint64
	// failed carries the first worker-reported Save error of the
	// in-progress checkpoint; commit turns into an abort when set.
	failed string
}

type cevent struct {
	kind  ceventKind
	msg   proto.Msg
	from  ids.WorkerID
	job   ids.JobID
	conn  transport.Conn
	fn    func()
	rerr  error
	isDrv bool
	// gw/sess stamp events demuxed from a gateway connection; the
	// session → job resolution happens on the event loop, where the
	// binding lives.
	gw   *gwConn
	sess uint64
	// at is the decode instant of RegisterDriver messages, stamped off
	// the event loop so admission latency includes time spent waiting in
	// the event queue — the dominant term under a thundering herd.
	at time.Time
}

type ceventKind uint8

const (
	cevMsg ceventKind = iota + 1
	cevConnClosed
	cevDo
	cevTick
)

// New creates a controller; Start launches it.
func New(cfg Config) *Controller {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.BuildParallelism <= 0 {
		cfg.BuildParallelism = runtime.GOMAXPROCS(0)
	}
	c := &Controller{
		cfg:      cfg,
		events:   make(chan cevent, 4096),
		stopped:  make(chan struct{}),
		workers:  make(map[ids.WorkerID]*workerState),
		jobs:     make(map[ids.JobID]*jobState),
		fetches:  make(map[uint64]*pendingFetch),
		chunkRx:  make(map[uint64]*fetchChunks),
		buildSem: make(chan struct{}, cfg.BuildParallelism),
		buildPar: cfg.BuildParallelism,
		conns:    make(map[transport.Conn]struct{}),

		gateways:     make(map[transport.Conn]*gwConn),
		tenants:      make(map[string]*tenantState),
		dirtyTenants: make(map[*tenantState]struct{}),
		rateBuckets:  make(map[string]*tokenBucket),
		draining:     make(map[ids.WorkerID]struct{}),
	}
	return c
}

// newJobState admits one driver job, wiring up its isolated control-plane
// machinery.
func (c *Controller) newJobState(name string, weight int, conn transport.Conn) *jobState {
	if weight <= 0 {
		weight = 1
	}
	c.jobSeq++
	j := &jobState{
		id:           ids.JobID(c.jobSeq),
		name:         name,
		weight:       weight,
		conn:         conn,
		vars:         make(map[ids.VariableID]*varMeta),
		ledgers:      make(map[ids.WorkerID]*flow.Ledger),
		templates:    make(map[string]*core.Template),
		patchCache:   core.NewPatchCache(),
		pendingEdits: make(map[ids.TemplateID]map[ids.WorkerID][]editStaged),
		building:     make(map[string]*buildJob),
		outstanding:  make(map[ids.CommandID]ids.WorkerID),
		instances:    make(map[uint64]*instState),
		wm:           newWMTracker(),
	}
	j.dir = flow.NewDirectory(&j.objIDs)
	j.central = newCentralGraph(c, j)
	j.ckpt.manifest = make(map[ids.LogicalID]uint64)
	for _, wid := range c.active {
		j.ledgers[wid] = flow.NewLedger(wid)
	}
	return j
}

// Start begins listening and runs the event loop.
func (c *Controller) Start() error {
	lis, err := c.cfg.Transport.Listen(c.cfg.ControlAddr)
	if err != nil {
		return fmt.Errorf("controller: listen: %w", err)
	}
	c.startWith(lis)
	return nil
}

func (c *Controller) startWith(lis transport.Listener) {
	c.lis = lis
	c.wg.Add(2)
	go c.acceptLoop()
	go c.run()
	if c.tickEvery() > 0 {
		c.wg.Add(1)
		go c.tickLoop()
	}
}

// tickEvery is the failure-detector tick period: half the tightest of
// the heartbeat and driver-reattach deadlines, zero when neither is
// configured (no tick loop runs).
func (c *Controller) tickEvery() time.Duration {
	d := c.cfg.HeartbeatTimeout
	if c.cfg.ReattachDeadline > 0 && (d == 0 || c.cfg.ReattachDeadline < d) {
		d = c.cfg.ReattachDeadline
	}
	return d / 2
}

// Stop shuts the controller down: workers, every driver and an attached
// standby receive Shutdown — so none of them treats this as a failure —
// and every connection is closed so pump goroutines exit.
func (c *Controller) Stop() {
	c.Do(func() {
		for _, ws := range c.workers {
			if ws.alive {
				c.sendWorker(ws, &proto.Shutdown{})
			}
		}
		for _, j := range c.jobs {
			c.sendDriver(j, &proto.Shutdown{})
		}
		// Waiting registrations get a typed rejection, not silence.
		c.rejectAllQueued(proto.RejectShuttingDown, "controller shutting down")
		// Flush before closing: staged shutdowns must hit the wire.
		c.flushSends()
		for _, ws := range c.workers {
			ws.conn.Close()
		}
		for _, j := range c.jobs {
			if j.conn != nil {
				j.conn.Close()
			}
		}
		for conn := range c.gateways {
			conn.Close()
		}
		if c.repl != nil {
			// A graceful stop must not trigger a takeover: the standby
			// sees the Shutdown and stands down instead of waiting out
			// the lease.
			c.repl.send(&proto.Shutdown{})
			c.repl.conn.Close()
			c.repl = nil
		}
	})
	c.stopOnce.Do(func() { close(c.stopped) })
	c.lis.Close()
	c.wg.Wait()
}

// Kill terminates the controller abruptly: no shutdown handshake, no
// flush — every connection just drops, exactly as a crashed process
// appears to its workers, drivers and standby. Failover tests use it;
// production paths call Stop.
func (c *Controller) Kill() {
	c.stopOnce.Do(func() { close(c.stopped) })
	if c.lis != nil {
		c.lis.Close()
	}
	c.connMu.Lock()
	conns := make([]transport.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	c.conns = nil
	c.connMu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
	c.wg.Wait()
}

// trackConn records a handshaken connection so Kill can sever it. The
// event-loop-confined worker/job tables cannot be read from Kill's
// goroutine, hence the separate mutex-protected registry.
func (c *Controller) trackConn(conn transport.Conn) {
	c.connMu.Lock()
	if c.conns != nil {
		c.conns[conn] = struct{}{}
	}
	c.connMu.Unlock()
}

// untrackConn forgets a tracked connection once it is done — its pump
// exited, or its handshake was rejected without one — so reconnect churn
// over a long-lived controller does not pin dead Conn objects.
func (c *Controller) untrackConn(conn transport.Conn) {
	c.connMu.Lock()
	if c.conns != nil {
		delete(c.conns, conn)
	}
	c.connMu.Unlock()
}

// Addr returns the controller's actual listen address (useful with
// ":0"-style TCP addresses).
func (c *Controller) Addr() string { return c.lis.Addr() }

// Do injects fn into the controller's event loop and waits for it to run.
// The cluster harness uses it for out-of-band operations (resource
// manager events, migration requests, metric snapshots).
func (c *Controller) Do(fn func()) {
	done := make(chan struct{})
	select {
	case c.events <- cevent{kind: cevDo, fn: func() { fn(); close(done) }}:
		<-done
	case <-c.stopped:
	}
}

func (c *Controller) tickLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.tickEvery())
	defer t.Stop()
	for {
		select {
		case <-t.C:
			select {
			case c.events <- cevent{kind: cevTick}:
			case <-c.stopped:
				return
			}
		case <-c.stopped:
			return
		}
	}
}

func (c *Controller) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.lis.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handshake(conn)
	}
}

// handshake reads the first message of a new connection to decide whether
// it is a worker or a driver, then hands the connection to the event loop.
func (c *Controller) handshake(conn transport.Conn) {
	defer c.wg.Done()
	raw, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	msg, err := proto.Unmarshal(raw)
	proto.PutBuf(raw)
	if err != nil {
		c.cfg.Logf("controller: bad handshake: %v", err)
		conn.Close()
		return
	}
	switch msg.(type) {
	case *proto.RegisterWorker, *proto.RegisterDriver, *proto.GatewayHello,
		*proto.ReplAttach, *proto.WorkerReconnect, *proto.DriverReattach,
		*proto.FleetAnnounce:
		c.trackConn(conn)
		select {
		case c.events <- cevent{kind: cevMsg, msg: msg, conn: conn, at: time.Now()}:
		case <-c.stopped:
			conn.Close()
		}
	default:
		c.cfg.Logf("controller: unexpected handshake message %s", msg.Kind())
		conn.Close()
	}
}

// errPumpStopped aborts a frame iteration when the node shuts down
// mid-batch.
var errPumpStopped = errors.New("pump stopped")

// pump forwards a registered connection's messages into the event loop,
// unpacking batch frames and recycling each frame buffer after decode.
// Driver pumps stamp events with their job so every operation on the
// connection is scoped to the job admitted at registration.
func (c *Controller) pump(conn transport.Conn, from ids.WorkerID, job ids.JobID, isDriver bool) {
	defer c.wg.Done()
	defer c.untrackConn(conn)
	for {
		raw, err := conn.Recv()
		if err != nil {
			select {
			case c.events <- cevent{kind: cevConnClosed, from: from, job: job, isDrv: isDriver, rerr: err, conn: conn}:
			case <-c.stopped:
			}
			return
		}
		err = proto.ForEachMsg(raw, func(msg proto.Msg) error {
			select {
			case c.events <- cevent{kind: cevMsg, msg: msg, from: from, job: job, isDrv: isDriver}:
				return nil
			case <-c.stopped:
				return errPumpStopped
			}
		})
		proto.PutBuf(raw)
		if errors.Is(err, errPumpStopped) {
			return
		}
		if err != nil {
			c.cfg.Logf("controller: bad message from %s: %v", from, err)
		}
	}
}

func (c *Controller) run() {
	defer c.wg.Done()
	for {
		select {
		case ev := <-c.events:
			switch ev.kind {
			case cevMsg:
				c.handleMsg(ev)
			case cevConnClosed:
				c.handleClosed(ev)
			case cevDo:
				ev.fn()
			case cevTick:
				c.checkHeartbeats()
				c.checkTakeoverEviction()
				c.checkReattachDeadline()
			}
			if len(c.draining) != 0 {
				c.checkDrains()
			}
			// Everything one event staged goes out as one frame per
			// worker before the next event is considered.
			c.flushSends()
		case <-c.stopped:
			return
		}
	}
}

func (c *Controller) handleMsg(ev cevent) {
	// Worker-originated and registration messages route themselves; every
	// driver operation resolves its job from the connection that carried
	// it. A nil job means the job was torn down while the message was in
	// flight — drop it.
	switch m := ev.msg.(type) {
	case *proto.RegisterWorker:
		c.registerWorker(m, ev.conn)
		return
	case *proto.FleetAnnounce:
		c.fleetAnnounce(m, ev.conn)
		return
	case *proto.FleetWarmAck:
		c.fleetWarmAck(m)
		return
	case *proto.RegisterDriver:
		c.registerDriver(m, ev.conn, ev.gw, ev.sess, ev.at)
		return
	case *proto.GatewayHello:
		c.registerGateway(ev.conn)
		return
	case *proto.SessionClose:
		c.handleSessionClose(ev.gw, m.Session)
		return
	case *proto.ReplAttach:
		c.handleReplAttach(ev.conn)
		return
	case *proto.ReplAck:
		c.handleReplAck(m)
		return
	case *proto.WorkerReconnect:
		c.reconnectWorker(m, ev.conn)
		return
	case *proto.DriverReattach:
		c.reattachDriver(m, ev.conn, ev.gw, ev.sess)
		return
	case *proto.Complete:
		if j := c.jobs[m.Job]; j != nil {
			c.handleComplete(j, m)
		}
		return
	case *proto.BlockDone:
		if j := c.jobs[m.Job]; j != nil {
			c.handleBlockDone(j, m)
		}
		return
	case *proto.Heartbeat:
		if ws := c.workers[m.Worker]; ws != nil {
			ws.lastBeat = time.Now()
			ws.pending = m.Pending
		}
		return
	case *proto.ObjectData:
		c.handleObjectData(m)
		return
	case *proto.DataChunk:
		c.handleFetchChunk(m)
		return
	case *proto.HaltAck:
		if j := c.jobs[m.Job]; j != nil {
			c.handleHaltAck(j, m)
		}
		return
	case *proto.SaveFailed:
		if j := c.jobs[m.Job]; j != nil {
			c.handleSaveFailed(j, m)
		}
		return
	case *proto.ErrorMsg:
		c.cfg.Logf("controller: error from %s: %s", ev.from, m.Text)
		return
	}

	job := ev.job
	if ev.gw != nil {
		// Gateway events resolve their job through the session binding;
		// an unbound session means it was rejected or already torn down.
		job = ev.gw.sessions[ev.sess]
	}
	j := c.jobs[job]
	if j == nil {
		c.cfg.Logf("controller: %s for unknown %s dropped", ev.msg.Kind(), job)
		return
	}
	switch m := ev.msg.(type) {
	// Driver operations that mutate execution state go through the job's
	// build fence: while one of its off-loop template builds is in flight
	// they queue in arrival order so driver program order is preserved.
	// Gets, barriers and checkpoints stay un-fenced — they park on the
	// job's quiescence, which counts in-flight builds and queued
	// operations.
	case *proto.DefineVariable, *proto.Put, *proto.SubmitStage,
		*proto.TemplateStart, *proto.TemplateEnd, *proto.InstantiateBlock,
		*proto.InstantiateWhile:
		c.driverOp(j, m)
	case *proto.Get:
		c.handleGet(j, m)
	case *proto.Barrier:
		c.handleBarrier(j, m)
	case *proto.CheckpointReq:
		c.handleCheckpointReq(j, m)
	case *proto.JobEnd:
		c.endJob(j, "driver ended job")
	case *proto.Shutdown:
		// Graceful driver exit; equivalent to JobEnd.
		c.endJob(j, "driver shutdown")
	default:
		c.cfg.Logf("controller: unexpected message %s", ev.msg.Kind())
	}
}

func (c *Controller) registerWorker(m *proto.RegisterWorker, conn transport.Conn) {
	c.nextWorker++
	id := c.nextWorker
	ws := &workerState{
		id: id, conn: conn, dataAddr: m.DataAddr,
		slots: m.Slots, alive: true, lastBeat: time.Now(),
	}
	c.workers[id] = ws
	c.active = append(c.active, id)
	sort.Slice(c.active, func(i, j int) bool { return c.active[i] < c.active[j] })
	for _, j := range c.jobs {
		j.ledgers[id] = flow.NewLedger(id)
	}

	peers := c.peerMap()
	c.sendWorker(ws, &proto.RegisterWorkerAck{
		Worker: id, Peers: peers, Eager: c.cfg.Mode == ModeCentral,
	})
	// Refresh every other worker's peer map.
	for _, other := range c.workers {
		if other.id != id && other.alive {
			c.sendWorker(other, &proto.RegisterWorkerAck{
				Worker: other.id, Peers: peers, Eager: c.cfg.Mode == ModeCentral,
			})
		}
	}
	// The new worker needs every admitted job's slot quota. Existing
	// workers' shares are unchanged by a join (shares are per-worker
	// slots × weight / totalWeight), so only the newcomer is told.
	c.sendQuotas(ws)
	c.wg.Add(1)
	go c.pump(conn, id, ids.NoJob, false)
	c.maybeStartTakeover()
}

func (c *Controller) peerMap() map[ids.WorkerID]string {
	peers := make(map[ids.WorkerID]string, len(c.workers))
	for id, ws := range c.workers {
		if ws.alive && ws.phase != phaseDecommissioned {
			peers[id] = ws.dataAddr
		}
	}
	return peers
}

// endJob tears one job down: worker-side namespaces are dropped, in-flight
// builds are orphaned (their commits see dead and drop), fetches for the
// job will no longer resolve, and slot quotas rebalance over the
// survivors. Only this job's state is touched — that containment is the
// tenancy contract.
func (c *Controller) endJob(j *jobState, reason string) {
	if j.dead {
		return
	}
	j.dead = true
	delete(c.jobs, j.id)
	c.totalWeight -= j.weight
	c.dropJobTenant(j)
	c.Stats.JobsEnded.Add(1)
	c.replJobEnd(j)
	c.cfg.Logf("controller: %s ended (%s): %d templates, %d outstanding dropped",
		j.id, reason, len(j.templates), len(j.outstanding))
	for _, ws := range c.workers {
		if ws.alive {
			c.sendWorker(ws, &proto.JobEnd{Job: j.id})
		}
	}
	// Drop the job's in-flight fetches: no driver is left to receive the
	// results, and if the fetch's worker dies the echo never comes — the
	// entries would otherwise sit in the global table forever.
	for seq, pf := range c.fetches {
		if pf.job == j.id {
			delete(c.fetches, seq)
			delete(c.chunkRx, seq)
		}
	}
	if j.gw != nil {
		// A multiplexed session: unbind it and tell the driver-side mux to
		// retire the virtual channel. The shared connection lives on — its
		// other sessions are not this job's business.
		if j.gw.sessions[j.sess] == j.id {
			delete(j.gw.sessions, j.sess)
			c.stageGatewayTop(j.gw, &proto.SessionClose{Session: j.sess})
		}
	} else if j.conn != nil {
		j.conn.Close()
	}
	// A freed job slot admits the head of the bounded admission queue.
	c.drainAdmissions()
}

// rebalanceSlots marks every tenant's fair-share quotas dirty; the
// end-of-event flushQuotas recomputes and pushes only the (tenant, job
// weight) classes whose share actually moved. The worker-side dispatcher
// is work-conserving, so slots a tenant leaves idle are still usable by
// others.
func (c *Controller) rebalanceSlots() {
	if len(c.jobs) == 0 {
		return
	}
	c.allTenantsDirty = true
}

// sendQuotas pushes every admitted job's fair-share quota to one worker —
// the full seed a joining (or reconnecting) worker needs — and primes its
// per-class quota cache for the diffed flush.
func (c *Controller) sendQuotas(ws *workerState) {
	if ws.quotaSent == nil {
		ws.quotaSent = make(map[tenantClass]int)
	} else {
		clear(ws.quotaSent)
	}
	for _, t := range c.tenants {
		for weight, jobs := range t.classes {
			if len(jobs) == 0 {
				continue
			}
			s := c.classShare(ws, t, weight)
			ws.quotaSent[tenantClass{t.name, weight}] = s
			for j := range jobs {
				c.sendWorker(ws, &proto.JobQuota{Job: j.id, Slots: s})
			}
		}
	}
}

// sendWorker stages m for ws. Messages staged while handling one event are
// coalesced into a single transport frame at the end-of-event flush, so an
// InstantiateBlock fan-out (install + patch + instantiate per worker) costs
// one frame — one syscall on TCP — per worker. The staged message must not
// be mutated afterwards.
func (c *Controller) sendWorker(ws *workerState, m proto.Msg) {
	if ws == nil || !ws.alive {
		return
	}
	if len(ws.outq) == 0 {
		c.dirty = append(c.dirty, ws)
	}
	ws.outq = append(ws.outq, m)
	c.Stats.MsgsToWorkers.Add(1)
}

// parallelFlushMin is the dirty-worker count at which flushSends fans the
// per-worker frame encodes out to goroutines. Below it the goroutine
// handoff costs more than the encodes.
const parallelFlushMin = 4

// flushSends encodes and sends one frame per dirty worker. It runs on the
// event loop after every event (and explicitly in Stop, before connections
// close). Wide fan-outs encode in parallel: per-worker frames touch
// disjoint state, so only the shared Stats counters (atomics) and the pools
// (sync.Pool) are contended.
func (c *Controller) flushSends() {
	// Fair-share quota diffs stage worker messages, so they flush first;
	// gateway frames are per-connection and flush independently.
	c.flushQuotas()
	c.flushGateways()
	if len(c.dirty) == 0 {
		return
	}
	dirty := c.dirty
	c.dirty = c.dirty[:0]
	if len(dirty) < parallelFlushMin {
		for _, ws := range dirty {
			c.flushWorker(ws)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(dirty))
	for _, ws := range dirty {
		go func(ws *workerState) {
			defer wg.Done()
			c.flushWorker(ws)
		}(ws)
	}
	wg.Wait()
}

// flushWorker packs ws's staged messages into one frame and sends it,
// transferring the pooled buffer to the transport when it can take
// ownership (Mem) and recycling it otherwise (TCP).
func (c *Controller) flushWorker(ws *workerState) {
	msgs := ws.outq
	if len(msgs) == 0 {
		return
	}
	defer func() {
		for i := range msgs {
			msgs[i] = nil
		}
		ws.outq = msgs[:0]
	}()
	if !ws.alive {
		return
	}
	buf := proto.GetBuf()
	buf = proto.AppendBatch(buf, msgs)
	c.Stats.FramesToWorkers.Add(1)
	c.Stats.BytesToWorkers.Add(uint64(len(buf)))
	owned, err := transport.SendOwned(ws.conn, buf)
	if err != nil {
		c.cfg.Logf("controller: send to %s failed: %v", ws.id, err)
	}
	if !owned {
		proto.PutBuf(buf)
	}
}

func (c *Controller) sendDriver(j *jobState, m proto.Msg) {
	if j == nil || j.dead {
		return
	}
	if j.gw != nil {
		// A multiplexed session: stage under its session for the
		// per-gateway coalesced flush.
		c.stageGateway(j.gw, j.sess, m)
		return
	}
	// A nil conn is a promoted job whose driver has not reattached yet:
	// the message is dropped, and the driver's reattach reconciliation
	// (journal resend + re-issued requests) recreates anything it missed.
	if j.conn == nil {
		return
	}
	buf := proto.MarshalAppend(proto.GetBuf(), m)
	owned, err := transport.SendOwned(j.conn, buf)
	if err != nil {
		c.cfg.Logf("controller: send to %s driver failed: %v", j.id, err)
	}
	if !owned {
		proto.PutBuf(buf)
	}
}

func (c *Controller) handleClosed(ev cevent) {
	if c.repl != nil && ev.conn == c.repl.conn {
		c.standbyLost(ev.rerr)
		return
	}
	if gw := c.gateways[ev.conn]; gw != nil {
		c.handleGatewayClosed(gw, ev.rerr)
		return
	}
	if ev.isDrv {
		if ev.job == ids.NoJob {
			// The connection closed before admission: drop its queue entry.
			// If admission raced the close (the pump loaded the binding just
			// before admitNow stored it), find the job by connection.
			if c.dropQueuedConn(ev.conn) {
				return
			}
			for _, j := range c.jobs {
				if j.conn == ev.conn {
					c.endJob(j, "driver disconnected")
					return
				}
			}
			return
		}
		// Only the job's current connection may end it: a reattach closes
		// the stale connection, whose pump exit must not tear the job down.
		if j := c.jobs[ev.job]; j != nil && (ev.conn == nil || ev.conn == j.conn) {
			c.endJob(j, "driver disconnected")
		}
		return
	}
	ws := c.workers[ev.from]
	if ws == nil || !ws.alive {
		return
	}
	select {
	case <-c.stopped:
		return
	default:
	}
	if c.fleetWorkerGone(ws) {
		return
	}
	c.cfg.Logf("controller: worker %s connection lost: %v", ev.from, ev.rerr)
	c.failWorker(ev.from)
}

func (c *Controller) checkHeartbeats() {
	if c.cfg.HeartbeatTimeout <= 0 {
		return
	}
	cutoff := time.Now().Add(-c.cfg.HeartbeatTimeout)
	for id, ws := range c.workers {
		if ws.alive && ws.lastBeat.Before(cutoff) {
			if c.fleetWorkerGone(ws) {
				continue
			}
			c.cfg.Logf("controller: worker %s missed heartbeats", id)
			c.failWorker(id)
		}
	}
}

// ActiveWorkers returns the active worker IDs (call via Do).
func (c *Controller) ActiveWorkers() []ids.WorkerID {
	return append([]ids.WorkerID(nil), c.active...)
}

// WorkerCount returns the number of active workers (call via Do).
func (c *Controller) WorkerCount() int { return len(c.active) }

// Jobs returns the admitted job IDs in ascending order (call via Do).
func (c *Controller) Jobs() []ids.JobID {
	out := make([]ids.JobID, 0, len(c.jobs))
	for id := range c.jobs {
		out = append(out, id)
	}
	sort.Slice(out, func(i, k int) bool { return out[i] < out[k] })
	return out
}

// jobList returns admitted jobs in ID order (deterministic iteration for
// multi-job operations).
func (c *Controller) jobList() []*jobState {
	out := make([]*jobState, 0, len(c.jobs))
	for _, j := range c.jobs {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// soleJob returns the only admitted job, or nil when zero or several are
// admitted (single-tenant compatibility APIs use it).
func (c *Controller) soleJob() *jobState {
	if len(c.jobs) != 1 {
		return nil
	}
	for _, j := range c.jobs {
		return j
	}
	return nil
}
