package controller

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
)

// This file implements dynamic scheduling: growing/shrinking the active
// worker set (new worker-template sets, paper Figure 9) and migrating
// partitions between workers (template edits, paper Figure 10). Both are
// invoked by the cluster harness through Controller.Do, playing the role
// of the cluster resource manager in Figure 2.
//
// Both operations rebuild every installed template. The rebuilds run as
// one parallel group over a shared directory-snapshot view (builds.go):
// validate and build everything first, then commit atomically — an error
// in any template's rebuild leaves the controller fully unchanged.

// SetActive changes the set of workers the job runs on (call via Do). All
// named workers must be registered and alive. Variables are repartitioned
// round-robin over the new set; every installed template switches to an
// assignment for the new placement — reusing a cached one when this worker
// set has been active before (Figure 9's restore path revalidates cached
// templates instead of reinstalling). Templates are rebuilt in parallel
// and committed atomically: on error no placement or template state
// changes. Data moves lazily via patches at the next instantiation.
func (c *Controller) SetActive(workersWanted []ids.WorkerID) error {
	if len(workersWanted) == 0 {
		return fmt.Errorf("controller: cannot run with zero workers")
	}
	set := append([]ids.WorkerID(nil), workersWanted...)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	for _, id := range set {
		ws := c.workers[id]
		if ws == nil || !ws.alive {
			return fmt.Errorf("controller: worker %s not available", id)
		}
	}
	// Plan every retarget against the prospective placement before
	// touching live state.
	sig := workerSigOf(set)
	plans, view := c.planRetargets(set, sig)
	for i := range plans {
		if plans[i].err != nil {
			return fmt.Errorf("controller: retargeting %q: %w", plans[i].name, plans[i].err)
		}
	}
	// Commit.
	c.active = set
	c.reassignAll()
	c.commitRetargets(plans, view, sig)
	c.autoValid = false
	return nil
}

// reassignAll recomputes every variable's partition placement over the
// active workers and bumps the placement epoch, staling any in-flight
// build snapshot.
func (c *Controller) reassignAll() {
	for _, vm := range c.vars {
		for p := range vm.assign {
			vm.assign[p] = c.active[p%len(c.active)]
		}
	}
	c.placeEpoch++
}

// workerSig canonically names the active worker set for the assignment
// cache.
func (c *Controller) workerSig() string { return workerSigOf(c.active) }

// workerSigOf canonically names a sorted worker set.
func workerSigOf(set []ids.WorkerID) string {
	var b strings.Builder
	for _, w := range set {
		fmt.Fprintf(&b, "%d,", uint32(w))
	}
	return b.String()
}

// retargetAll points every installed template at an assignment matching
// the current placement (recovery's rebuild step): cached assignments when
// available, parallel fresh builds otherwise. Failures are logged per
// template and do not block the others.
func (c *Controller) retargetAll() {
	sig := c.workerSig()
	plans, view := c.planRetargets(c.active, sig)
	for i := range plans {
		if plans[i].err != nil {
			c.cfg.Logf("controller: recovery rebuild of %q: %v", plans[i].name, plans[i].err)
		}
	}
	c.commitRetargets(plans, view, sig)
}

// cacheActiveAssignments snapshots each template's current assignment
// under the current worker signature so SetActive can restore it later.
// Called after template installation.
func (c *Controller) cacheActiveAssignments() {
	if c.assignCache == nil {
		c.assignCache = make(map[string]map[string]*core.Assignment)
	}
	sig := c.workerSig()
	for name, t := range c.templates {
		bySig := c.assignCache[name]
		if bySig == nil {
			bySig = make(map[string]*core.Assignment)
			c.assignCache[name] = bySig
		}
		if _, ok := bySig[sig]; !ok && t.Active != nil {
			bySig[sig] = t.Active
		}
	}
}

// Migrate moves the given partitions of the given variables to worker dst
// (call via Do). Installed templates are updated in place through edits:
// the controller rebuilds each template's entry array under the new
// placement (in parallel, over a shared snapshot view), keeps unchanged
// entries' indexes via provenance matching, and stages the per-worker
// deltas to ride the next instantiation message (paper §4.3, Figure 6).
// Partition data moves lazily via the next validation's patch.
func (c *Controller) Migrate(vars []ids.VariableID, parts []int, dst ids.WorkerID) error {
	ws := c.workers[dst]
	if ws == nil || !ws.alive {
		return fmt.Errorf("controller: migration target %s not available", dst)
	}
	for _, v := range vars {
		vm := c.vars[v]
		if vm == nil {
			return fmt.Errorf("controller: migrate of unknown variable %s", v)
		}
		for _, p := range parts {
			if p < 0 || p >= vm.partitions {
				return fmt.Errorf("controller: migrate of %s partition %d out of %d",
					v, p, vm.partitions)
			}
		}
	}
	start := time.Now()
	// Build every installed template's rebuilt assignment against the
	// *prospective* placement (a snapshot with the moves applied) before
	// mutating anything: an error in any rebuild leaves the controller
	// fully unchanged, like SetActive.
	type editPlan struct {
		name string
		t    *core.Template
		old  *core.Assignment
		next *core.Assignment
		err  error
	}
	var plans []editPlan
	for name, t := range c.templates {
		if t.Active == nil {
			continue // build in flight; its commit rebuilds under the new placement
		}
		plans = append(plans, editPlan{name: name, t: t, old: t.Active})
	}
	sort.Slice(plans, func(i, j int) bool { return plans[i].name < plans[j].name })
	var view *flow.BuildView
	if len(plans) > 0 {
		view = c.dir.Snapshot().View()
		place := c.placementSnapshot(nil)
		for _, v := range vars {
			for _, p := range parts {
				place.vars[v].assign[p] = dst
			}
		}
		c.groupBuild(len(plans), func(i, inner int) {
			p := &plans[i]
			if err := c.retargetFault(p.name); err != nil {
				p.err = err
				return
			}
			p.next, p.err = p.t.RebuildPar(p.old.ID, view, place, p.old, inner)
		})
		for i := range plans {
			if plans[i].err != nil {
				return fmt.Errorf("controller: migrating %q: %w", plans[i].name, plans[i].err)
			}
		}
		if err := view.Commit(c.dir); err != nil {
			// Unreachable: snapshot, build and commit happen within one
			// event-loop call.
			return err
		}
	}
	// Commit: apply the placement change, then stage the diffs.
	for _, v := range vars {
		vm := c.vars[v]
		for _, p := range parts {
			vm.assign[p] = dst
		}
	}
	c.placeEpoch++
	for i := range plans {
		c.stageEdits(plans[i].name, plans[i].t, plans[i].old, plans[i].next)
	}
	c.Stats.MigrateNanos.Add(uint64(time.Since(start)))
	c.autoValid = false
	return nil
}

// stageEdits swaps a rebuilt assignment in for its predecessor and stages
// the per-worker deltas as edits riding the next instantiation.
func (c *Controller) stageEdits(name string, t *core.Template, old, next *core.Assignment) {
	diff := core.Diff(old, next)
	next.Installed = make(map[ids.WorkerID]bool, len(old.Installed))
	for w, in := range old.Installed {
		next.Installed[w] = in
	}
	for _, w := range diff.NewWorkers {
		next.Installed[w] = false
	}
	// Workers that lost every entry keep a stale cached template; force a
	// reinstall if they ever rejoin this assignment.
	for _, w := range diff.EmptiedWorkers {
		next.Installed[w] = false
		delete(diff.Edits, w)
	}
	// Swap the assignment in place (same ID — workers keep their cache and
	// receive only edits).
	t.Active = next
	for i, a := range t.Assignments {
		if a == old {
			t.Assignments[i] = next
		}
	}
	if c.assignCache != nil {
		for sig, a := range c.assignCache[name] {
			if a == old {
				c.assignCache[name][sig] = next
			}
		}
	}
	staged := c.pendingEdits[next.ID]
	if staged == nil {
		staged = make(map[ids.WorkerID][]editStaged)
		c.pendingEdits[next.ID] = staged
	}
	for w, e := range diff.Edits {
		if len(e.Remove) == 0 && len(e.Add) == 0 {
			continue
		}
		staged[w] = append(staged[w], *e)
	}
}
