package controller

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/ids"
)

// This file implements dynamic scheduling: growing/shrinking the active
// worker set (new worker-template sets, paper Figure 9) and migrating
// partitions between workers (template edits, paper Figure 10). Both are
// invoked by the cluster harness through Controller.Do, playing the role
// of the cluster resource manager in Figure 2.

// SetActive changes the set of workers the job runs on (call via Do). All
// named workers must be registered and alive. Variables are repartitioned
// round-robin over the new set; every installed template switches to an
// assignment for the new placement — reusing a cached one when this worker
// set has been active before (Figure 9's restore path revalidates cached
// templates instead of reinstalling). Data moves lazily via patches at the
// next instantiation.
func (c *Controller) SetActive(workersWanted []ids.WorkerID) error {
	if len(workersWanted) == 0 {
		return fmt.Errorf("controller: cannot run with zero workers")
	}
	set := append([]ids.WorkerID(nil), workersWanted...)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	for _, id := range set {
		ws := c.workers[id]
		if ws == nil || !ws.alive {
			return fmt.Errorf("controller: worker %s not available", id)
		}
	}
	c.active = set
	c.reassignAll()
	for name, t := range c.templates {
		if err := c.retargetTemplate(name, t); err != nil {
			return err
		}
	}
	c.autoValid = false
	return nil
}

// reassignAll recomputes every variable's partition placement over the
// active workers.
func (c *Controller) reassignAll() {
	for _, vm := range c.vars {
		for p := range vm.assign {
			vm.assign[p] = c.active[p%len(c.active)]
		}
	}
}

// workerSig canonically names the active worker set for the assignment
// cache.
func (c *Controller) workerSig() string {
	var b strings.Builder
	for _, w := range c.active {
		fmt.Fprintf(&b, "%d,", uint32(w))
	}
	return b.String()
}

// retargetTemplate points a template at an assignment matching the current
// placement: a cached assignment when available, otherwise a fresh build
// (generating new worker templates, paper Figure 9 iterations 20-21).
func (c *Controller) retargetTemplate(name string, t *core.Template) error {
	sig := c.workerSig()
	if c.assignCache == nil {
		c.assignCache = make(map[string]map[string]*core.Assignment)
	}
	bySig := c.assignCache[name]
	if bySig == nil {
		bySig = make(map[string]*core.Assignment)
		c.assignCache[name] = bySig
	}
	if a, ok := bySig[sig]; ok {
		t.Active = a
		return nil
	}
	a, err := t.Rebuild(ids.TemplateID(c.tmplIDs.Next()), c.dir, c.placement(), nil)
	if err != nil {
		return err
	}
	t.Assignments = append(t.Assignments, a)
	t.Active = a
	bySig[sig] = a
	c.Stats.TemplatesBuilt.Add(1)
	return nil
}

// cacheActiveAssignments snapshots each template's current assignment
// under the current worker signature so SetActive can restore it later.
// Called after template installation.
func (c *Controller) cacheActiveAssignments() {
	if c.assignCache == nil {
		c.assignCache = make(map[string]map[string]*core.Assignment)
	}
	sig := c.workerSig()
	for name, t := range c.templates {
		bySig := c.assignCache[name]
		if bySig == nil {
			bySig = make(map[string]*core.Assignment)
			c.assignCache[name] = bySig
		}
		if _, ok := bySig[sig]; !ok && t.Active != nil {
			bySig[sig] = t.Active
		}
	}
}

// Migrate moves the given partitions of the given variables to worker dst
// (call via Do). Installed templates are updated in place through edits:
// the controller rebuilds each template's entry array under the new
// placement, keeps unchanged entries' indexes via provenance matching, and
// stages the per-worker deltas to ride the next instantiation message
// (paper §4.3, Figure 6). Partition data moves lazily via the next
// validation's patch.
func (c *Controller) Migrate(vars []ids.VariableID, parts []int, dst ids.WorkerID) error {
	ws := c.workers[dst]
	if ws == nil || !ws.alive {
		return fmt.Errorf("controller: migration target %s not available", dst)
	}
	for _, v := range vars {
		vm := c.vars[v]
		if vm == nil {
			return fmt.Errorf("controller: migrate of unknown variable %s", v)
		}
		for _, p := range parts {
			if p < 0 || p >= vm.partitions {
				return fmt.Errorf("controller: migrate of %s partition %d out of %d",
					v, p, vm.partitions)
			}
			vm.assign[p] = dst
		}
	}
	start := time.Now()
	for name, t := range c.templates {
		if t.Active == nil {
			continue
		}
		if err := c.editTemplate(name, t); err != nil {
			return err
		}
	}
	c.Stats.MigrateNanos.Add(uint64(time.Since(start)))
	c.autoValid = false
	return nil
}

// editTemplate rebuilds the template's active assignment under the current
// placement and stages the diff as edits.
func (c *Controller) editTemplate(name string, t *core.Template) error {
	old := t.Active
	next, err := t.Rebuild(old.ID, c.dir, c.placement(), old)
	if err != nil {
		return err
	}
	diff := core.Diff(old, next)
	next.Installed = make(map[ids.WorkerID]bool, len(old.Installed))
	for w, in := range old.Installed {
		next.Installed[w] = in
	}
	for _, w := range diff.NewWorkers {
		next.Installed[w] = false
	}
	// Workers that lost every entry keep a stale cached template; force a
	// reinstall if they ever rejoin this assignment.
	for _, w := range diff.EmptiedWorkers {
		next.Installed[w] = false
		delete(diff.Edits, w)
	}
	// Swap the assignment in place (same ID — workers keep their cache and
	// receive only edits).
	t.Active = next
	for i, a := range t.Assignments {
		if a == old {
			t.Assignments[i] = next
		}
	}
	if c.assignCache != nil {
		for sig, a := range c.assignCache[name] {
			if a == old {
				c.assignCache[name][sig] = next
			}
		}
	}
	staged := c.pendingEdits[next.ID]
	if staged == nil {
		staged = make(map[ids.WorkerID][]editStaged)
		c.pendingEdits[next.ID] = staged
	}
	for w, e := range diff.Edits {
		if len(e.Remove) == 0 && len(e.Add) == 0 {
			continue
		}
		staged[w] = append(staged[w], *e)
	}
	return nil
}
