package controller

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"nimbus/internal/core"
	"nimbus/internal/flow"
	"nimbus/internal/ids"
)

// This file implements dynamic scheduling: growing/shrinking the active
// worker set (new worker-template sets, paper Figure 9) and migrating
// partitions between workers (template edits, paper Figure 10). Both are
// invoked by the cluster harness through Controller.Do, playing the role
// of the cluster resource manager in Figure 2.
//
// The worker set is shared by every admitted job, so SetActive retargets
// every job's installed templates; Migrate moves partitions within one
// job (variable IDs are per-job). Rebuilds run as parallel groups over a
// shared directory-snapshot view per job (builds.go): validate and build
// everything first, then commit atomically — an error in any template's
// rebuild leaves the controller fully unchanged.

// SetActive changes the set of workers the cluster runs on (call via Do).
// All named workers must be registered and alive. Every job's variables
// are repartitioned round-robin over the new set; every installed template
// of every job switches to an assignment for the new placement — reusing a
// cached one when this worker set has been active before (Figure 9's
// restore path revalidates cached templates instead of reinstalling).
// Templates are rebuilt in parallel and committed atomically across all
// jobs: on error no placement or template state changes anywhere. Data
// moves lazily via patches at the next instantiation.
func (c *Controller) SetActive(workersWanted []ids.WorkerID) error {
	if len(workersWanted) == 0 {
		return fmt.Errorf("controller: cannot run with zero workers")
	}
	set := append([]ids.WorkerID(nil), workersWanted...)
	sort.Slice(set, func(i, j int) bool { return set[i] < set[j] })
	for _, id := range set {
		ws := c.workers[id]
		if ws == nil || !ws.alive {
			return fmt.Errorf("controller: worker %s not available", id)
		}
	}
	// Plan every job's retargets against the prospective placement before
	// touching live state.
	sig := workerSigOf(set)
	jobs := c.jobList()
	plansByJob := make([][]retargetPlan, len(jobs))
	viewsByJob := make([]*flow.BuildView, len(jobs))
	for i, j := range jobs {
		plans, view := c.planRetargets(j, set, sig)
		for k := range plans {
			if plans[k].err != nil {
				return fmt.Errorf("controller: retargeting %s %q: %w", j.id, plans[k].name, plans[k].err)
			}
		}
		plansByJob[i], viewsByJob[i] = plans, view
	}
	// Commit.
	c.active = set
	for i, j := range jobs {
		c.reassignAll(j)
		c.commitRetargets(j, plansByJob[i], viewsByJob[i], sig)
		j.autoValid = false
	}
	return nil
}

// reassignAll recomputes one job's partition placement over the active
// workers and bumps the job's placement epoch, staling any in-flight
// build snapshot.
func (c *Controller) reassignAll(j *jobState) {
	for _, vm := range j.vars {
		for p := range vm.assign {
			vm.assign[p] = c.active[p%len(c.active)]
		}
	}
	j.placeEpoch++
}

// workerSig canonically names the active worker set for the assignment
// caches.
func (c *Controller) workerSig() string { return workerSigOf(c.active) }

// workerSigOf canonically names a sorted worker set.
func workerSigOf(set []ids.WorkerID) string {
	var b strings.Builder
	for _, w := range set {
		fmt.Fprintf(&b, "%d,", uint32(w))
	}
	return b.String()
}

// retargetAll points every installed template of one job at an assignment
// matching the current placement (recovery's rebuild step): cached
// assignments when available, parallel fresh builds otherwise. Failures
// are logged per template and do not block the others.
func (c *Controller) retargetAll(j *jobState) {
	sig := c.workerSig()
	plans, view := c.planRetargets(j, c.active, sig)
	for i := range plans {
		if plans[i].err != nil {
			c.cfg.Logf("controller: recovery rebuild of %s %q: %v", j.id, plans[i].name, plans[i].err)
		}
	}
	c.commitRetargets(j, plans, view, sig)
}

// cacheActiveAssignments snapshots each of one job's templates' current
// assignment under the current worker signature so SetActive can restore
// it later. Called after template installation.
func (c *Controller) cacheActiveAssignments(j *jobState) {
	if j.assignCache == nil {
		j.assignCache = make(map[string]map[string]*core.Assignment)
	}
	sig := c.workerSig()
	for name, t := range j.templates {
		bySig := j.assignCache[name]
		if bySig == nil {
			bySig = make(map[string]*core.Assignment)
			j.assignCache[name] = bySig
		}
		if _, ok := bySig[sig]; !ok && t.Active != nil {
			bySig[sig] = t.Active
		}
	}
}

// Migrate moves the given partitions of the given variables to worker dst
// within the sole admitted job (call via Do). Variable IDs are per-job;
// with several jobs admitted, use MigrateJob. Installed templates are
// updated in place through edits: the controller rebuilds each template's
// entry array under the new placement (in parallel, over a shared snapshot
// view), keeps unchanged entries' indexes via provenance matching, and
// stages the per-worker deltas to ride the next instantiation message
// (paper §4.3, Figure 6). Partition data moves lazily via the next
// validation's patch.
func (c *Controller) Migrate(vars []ids.VariableID, parts []int, dst ids.WorkerID) error {
	j := c.soleJob()
	if j == nil {
		return fmt.Errorf("controller: Migrate needs exactly one admitted job (have %d); use MigrateJob", len(c.jobs))
	}
	return c.MigrateJob(j.id, vars, parts, dst)
}

// MigrateJob moves the given partitions of one job's variables to worker
// dst (call via Do).
func (c *Controller) MigrateJob(job ids.JobID, vars []ids.VariableID, parts []int, dst ids.WorkerID) error {
	j := c.jobs[job]
	if j == nil {
		return fmt.Errorf("controller: migrate for unknown %s", job)
	}
	ws := c.workers[dst]
	if ws == nil || !ws.alive {
		return fmt.Errorf("controller: migration target %s not available", dst)
	}
	for _, v := range vars {
		vm := j.vars[v]
		if vm == nil {
			return fmt.Errorf("controller: migrate of unknown variable %s", v)
		}
		for _, p := range parts {
			if p < 0 || p >= vm.partitions {
				return fmt.Errorf("controller: migrate of %s partition %d out of %d",
					v, p, vm.partitions)
			}
		}
	}
	start := time.Now()
	// Build every installed template's rebuilt assignment against the
	// *prospective* placement (a snapshot with the moves applied) before
	// mutating anything: an error in any rebuild leaves the controller
	// fully unchanged, like SetActive.
	type editPlan struct {
		name string
		t    *core.Template
		old  *core.Assignment
		next *core.Assignment
		err  error
	}
	var plans []editPlan
	for name, t := range j.templates {
		if t.Active == nil {
			continue // build in flight; its commit rebuilds under the new placement
		}
		plans = append(plans, editPlan{name: name, t: t, old: t.Active})
	}
	sort.Slice(plans, func(i, k int) bool { return plans[i].name < plans[k].name })
	var view *flow.BuildView
	if len(plans) > 0 {
		view = j.dir.Snapshot().View()
		place := j.placementSnapshot(nil)
		for _, v := range vars {
			for _, p := range parts {
				place.vars[v].assign[p] = dst
			}
		}
		c.groupBuild(len(plans), func(i, inner int) {
			p := &plans[i]
			if err := c.retargetFault(p.name); err != nil {
				p.err = err
				return
			}
			p.next, p.err = p.t.RebuildPar(p.old.ID, view, place, p.old, inner)
		})
		for i := range plans {
			if plans[i].err != nil {
				return fmt.Errorf("controller: migrating %q: %w", plans[i].name, plans[i].err)
			}
		}
		if err := view.Commit(j.dir); err != nil {
			// Unreachable: snapshot, build and commit happen within one
			// event-loop call.
			return err
		}
	}
	// Commit: apply the placement change, then stage the diffs.
	for _, v := range vars {
		vm := j.vars[v]
		for _, p := range parts {
			vm.assign[p] = dst
		}
	}
	j.placeEpoch++
	for i := range plans {
		c.stageEdits(j, plans[i].name, plans[i].t, plans[i].old, plans[i].next)
	}
	c.Stats.MigrateNanos.Add(uint64(time.Since(start)))
	j.autoValid = false
	return nil
}

// stageEdits swaps a rebuilt assignment in for its predecessor and stages
// the per-worker deltas as edits riding the job's next instantiation.
func (c *Controller) stageEdits(j *jobState, name string, t *core.Template, old, next *core.Assignment) {
	diff := core.Diff(old, next)
	next.Installed = make(map[ids.WorkerID]bool, len(old.Installed))
	for w, in := range old.Installed {
		next.Installed[w] = in
	}
	for _, w := range diff.NewWorkers {
		next.Installed[w] = false
	}
	// Workers that lost every entry keep a stale cached template; force a
	// reinstall if they ever rejoin this assignment.
	for _, w := range diff.EmptiedWorkers {
		next.Installed[w] = false
		delete(diff.Edits, w)
	}
	// Swap the assignment in place (same ID — workers keep their cache and
	// receive only edits).
	t.Active = next
	for i, a := range t.Assignments {
		if a == old {
			t.Assignments[i] = next
		}
	}
	if j.assignCache != nil {
		for sig, a := range j.assignCache[name] {
			if a == old {
				j.assignCache[name][sig] = next
			}
		}
	}
	staged := j.pendingEdits[next.ID]
	if staged == nil {
		staged = make(map[ids.WorkerID][]editStaged)
		j.pendingEdits[next.ID] = staged
	}
	for w, e := range diff.Edits {
		if len(e.Remove) == 0 && len(e.Add) == 0 {
			continue
		}
		staged[w] = append(staged[w], *e)
	}
}
