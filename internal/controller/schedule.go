package controller

import (
	"fmt"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/core"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
)

// placement adapts the controller's variable table to core.Placement.
type placement struct{ c *Controller }

func (p placement) WorkerOf(v ids.VariableID, partition int) ids.WorkerID {
	vm := p.c.vars[v]
	if vm == nil || partition < 0 || partition >= len(vm.assign) {
		return ids.NoWorker
	}
	return vm.assign[partition]
}

func (p placement) Logical(v ids.VariableID, partition int) ids.LogicalID {
	vm := p.c.vars[v]
	if vm == nil || partition < 0 || partition >= len(vm.logicals) {
		return ids.NoLogical
	}
	return vm.logicals[partition]
}

func (p placement) Partitions(v ids.VariableID) int {
	if vm := p.c.vars[v]; vm != nil {
		return vm.partitions
	}
	return 0
}

func (c *Controller) placement() core.Placement { return placement{c} }

func (c *Controller) handleDefineVariable(m *proto.DefineVariable) {
	if m.Partitions <= 0 {
		c.driverError(fmt.Sprintf("variable %q: partition count %d", m.Name, m.Partitions))
		return
	}
	if len(c.active) == 0 {
		c.driverError(fmt.Sprintf("variable %q defined with no workers", m.Name))
		return
	}
	vm := &varMeta{
		id:         m.Var,
		name:       m.Name,
		partitions: m.Partitions,
		logicals:   make([]ids.LogicalID, m.Partitions),
		assign:     make([]ids.WorkerID, m.Partitions),
	}
	for p := 0; p < m.Partitions; p++ {
		vm.logicals[p] = c.logIDs.Next()
		vm.assign[p] = c.active[p%len(c.active)]
	}
	c.vars[m.Var] = vm
	c.logOp(m)
}

func (c *Controller) driverError(text string) {
	c.cfg.Logf("controller: driver error: %s", text)
	c.sendDriver(&proto.ErrorMsg{Text: text})
}

// handlePut uploads initial data for one partition as a Create command on
// the owning worker, ordered by the worker's ledger like any other write.
func (c *Controller) handlePut(m *proto.Put) {
	vm := c.vars[m.Var]
	if vm == nil || m.Partition < 0 || m.Partition >= vm.partitions {
		c.driverError(fmt.Sprintf("put to unknown variable %s partition %d", m.Var, m.Partition))
		return
	}
	l := vm.logicals[m.Partition]
	w := vm.assign[m.Partition]
	obj := c.dir.Instance(l, w)
	id := c.cmdIDs.Next()
	before := c.ledgers[w].Write(obj, id, nil)
	version := c.dir.RecordWrite(l, w)
	cmd := &command.Command{
		ID: id, Kind: command.Create,
		Writes: []ids.ObjectID{obj}, Before: before,
		Params: params.Blob(m.Data), Logical: l, Version: version,
	}
	c.autoValid = false
	c.dispatchCommands(map[ids.WorkerID][]*command.Command{w: {cmd}})
	c.logOp(m)
}

// handleGet registers a synchronized read: the reply is sent once all
// outstanding work has drained (Gets are the synchronization points that
// drive data-dependent control flow, paper §2.4).
func (c *Controller) handleGet(m *proto.Get) {
	c.gets = append(c.gets, pendingGet{seq: m.Seq, v: m.Var, p: m.Partition})
	c.resolveIfQuiet()
}

func (c *Controller) handleBarrier(m *proto.Barrier) {
	c.barriers = append(c.barriers, pendingBarrier{seq: m.Seq})
	c.resolveIfQuiet()
}

// totalOutstanding counts unfinished work: dispatched commands and
// instances, plus in-flight template builds and the driver operations
// queued behind them — barriers, gets and checkpoints must not resolve
// while queued operations still have effects to apply.
func (c *Controller) totalOutstanding() int {
	return len(c.outstanding) + len(c.instances) + c.central.pendingCount() +
		len(c.building) + len(c.opq)
}

// resolveIfQuiet answers barriers and gets once the system has drained.
func (c *Controller) resolveIfQuiet() {
	if c.totalOutstanding() > 0 {
		return
	}
	for _, b := range c.barriers {
		c.sendDriver(&proto.BarrierDone{Seq: b.seq})
	}
	c.barriers = nil
	gets := c.gets
	c.gets = nil
	for _, g := range gets {
		c.startFetch(g)
	}
	if c.ckpt.saving {
		c.commitCheckpoint()
	} else if len(c.ckpt.requested) > 0 {
		c.beginCheckpoint()
	}
}

func (c *Controller) startFetch(g pendingGet) {
	vm := c.vars[g.v]
	if vm == nil || g.p < 0 || g.p >= vm.partitions {
		c.sendDriver(&proto.GetResult{Seq: g.seq})
		return
	}
	l := vm.logicals[g.p]
	holder := c.dir.LatestHolder(l)
	if holder == ids.NoWorker {
		c.sendDriver(&proto.GetResult{Seq: g.seq})
		return
	}
	rep := c.dir.Lookup(l, holder)
	c.fetchSeq++
	c.fetches[c.fetchSeq] = &pendingFetch{driverSeq: g.seq}
	c.sendWorker(c.workers[holder], &proto.FetchObject{Seq: c.fetchSeq, Object: rep.Object})
}

func (c *Controller) handleObjectData(m *proto.ObjectData) {
	pf := c.fetches[m.Seq]
	if pf == nil {
		return
	}
	delete(c.fetches, m.Seq)
	c.sendDriver(&proto.GetResult{Seq: pf.driverSeq, Data: m.Data})
}

// handleSubmitStage expands one stage into commands. In Nimbus mode whole
// per-worker batches are pushed at once; in central mode commands enter
// the central dispatch graph. If a template is recording, the stage is
// additionally recorded into the builder.
func (c *Controller) handleSubmitStage(m *proto.SubmitStage) {
	if c.recording != nil {
		rstart := time.Now()
		// Recording only validates and captures the stage spec; the
		// O(tasks) assignment construction happens off-loop at
		// TemplateEnd. Every build-time error is shape-dependent, so
		// validation here guarantees the deferred build cannot fail.
		if err := core.ValidateStage(m, c.placement()); err != nil {
			c.driverError(err.Error())
			c.recording = nil
		} else {
			c.recording.tmpl.Stages = append(c.recording.tmpl.Stages, m)
			c.recording.tmpl.TaskCount += m.Tasks
			c.Stats.RecordNanos.Add(uint64(time.Since(rstart)))
		}
	}
	if err := c.scheduleStageLive(m); err != nil {
		c.driverError(err.Error())
		return
	}
	c.logOp(m)
}

// scheduleStageLive schedules a stage the non-templated way: per-task
// dependency analysis against the live directory and ledgers, with eager
// copies for any data a task needs that is not latest on its worker.
func (c *Controller) scheduleStageLive(m *proto.SubmitStage) error {
	start := time.Now()
	defer func() { c.Stats.ScheduleNanos.Add(uint64(time.Since(start))) }()
	place := c.placement()
	batches := make(map[ids.WorkerID][]*command.Command)
	c.autoValid = false
	for t := 0; t < m.Tasks; t++ {
		reads, writes, err := core.TaskAccesses(m, place, t)
		if err != nil {
			return err
		}
		w, err := core.AnchorWorker(m, place, t)
		if err != nil {
			return err
		}
		if w == ids.NoWorker {
			return fmt.Errorf("stage %s task %d has no placement", m.Stage, t)
		}
		// Data movement first, so copies precede the task per worker.
		for _, l := range reads {
			c.ensureLatestAt(l, w, batches)
		}
		id := c.cmdIDs.Next()
		led := c.ledgers[w]
		var before []ids.CommandID
		readObjs := make([]ids.ObjectID, len(reads))
		for i, l := range reads {
			obj := c.dir.Instance(l, w)
			readObjs[i] = obj
			before = led.Read(obj, id, before)
		}
		writeObjs := make([]ids.ObjectID, len(writes))
		for i, l := range writes {
			obj := c.dir.Instance(l, w)
			writeObjs[i] = obj
			before = led.Write(obj, id, before)
			c.dir.RecordWrite(l, w)
		}
		p := m.Params
		if t < len(m.PerTask) {
			p = m.PerTask[t]
		}
		batches[w] = append(batches[w], &command.Command{
			ID: id, Kind: command.Task, Function: m.Fn,
			Reads: readObjs, Writes: writeObjs, Before: before, Params: p,
		})
		c.Stats.TasksScheduled.Add(1)
		if c.cfg.Mode == ModeNimbus && c.cfg.LivePerTaskCost > 0 {
			spinWait(c.cfg.LivePerTaskCost)
		}
	}
	c.dispatchCommands(batches)
	return nil
}

// ensureLatestAt inserts a copy pair if worker w does not hold the latest
// version of l. Objects that have never been written need no movement.
func (c *Controller) ensureLatestAt(l ids.LogicalID, w ids.WorkerID, batches map[ids.WorkerID][]*command.Command) {
	if c.dir.Latest(l) == 0 || c.dir.IsLatest(l, w) {
		return
	}
	src := c.dir.LatestHolder(l)
	if src == ids.NoWorker {
		c.cfg.Logf("controller: %s has no live replica; reader at %s gets stale data", l, w)
		return
	}
	srcObj := c.dir.Instance(l, src)
	dstObj := c.dir.Instance(l, w)
	sendID := c.cmdIDs.Next()
	recvID := c.cmdIDs.Next()
	sendBefore := c.ledgers[src].Read(srcObj, sendID, nil)
	recvBefore := c.ledgers[w].Write(dstObj, recvID, nil)
	version := c.dir.Latest(l)
	batches[src] = append(batches[src], &command.Command{
		ID: sendID, Kind: command.CopySend,
		Reads: []ids.ObjectID{srcObj}, Before: sendBefore,
		DstWorker: w, DstCommand: recvID, Logical: l, Version: version,
	})
	batches[w] = append(batches[w], &command.Command{
		ID: recvID, Kind: command.CopyRecv,
		Writes: []ids.ObjectID{dstObj}, Before: recvBefore,
		Logical: l, Version: version,
	})
	c.dir.RecordCopy(l, w)
	c.Stats.CopiesInserted.Add(1)
}

// dispatchCommands routes generated commands according to the mode:
// batched pushes in Nimbus mode, graph-driven per-task dispatch in central
// mode. All commands are tracked as outstanding.
func (c *Controller) dispatchCommands(batches map[ids.WorkerID][]*command.Command) {
	if c.cfg.Mode == ModeCentral {
		for w, cmds := range batches {
			for _, cmd := range cmds {
				c.central.add(cmd, w)
			}
		}
		c.central.dispatchReady()
		return
	}
	for w, cmds := range batches {
		for _, cmd := range cmds {
			c.trackOutstanding(cmd.ID, w)
		}
		c.sendWorker(c.workers[w], &proto.SpawnCommands{Cmds: cmds})
	}
}

// spawnBarrierBatch sends commands to one worker as a barrier unit
// (uncached patches).
func (c *Controller) spawnBarrierBatch(w ids.WorkerID, cmds []*command.Command) {
	for _, cmd := range cmds {
		c.trackOutstanding(cmd.ID, w)
	}
	c.sendWorker(c.workers[w], &proto.SpawnCommands{Cmds: cmds, Barrier: true})
}

// trackOutstanding records a dispatched command, feeding the watermark
// tracker alongside the outstanding map.
func (c *Controller) trackOutstanding(id ids.CommandID, w ids.WorkerID) {
	c.outstanding[id] = w
	c.wm.add(id)
}

func (c *Controller) handleComplete(m *proto.Complete) {
	for _, id := range m.IDs {
		if _, ok := c.outstanding[id]; ok {
			delete(c.outstanding, id)
			c.wm.remove(id)
		}
	}
	if c.cfg.Mode == ModeCentral {
		c.central.complete(m.IDs)
		c.central.dispatchReady()
	}
	c.resolveIfQuiet()
}

func (c *Controller) handleBlockDone(m *proto.BlockDone) {
	inst := c.instances[m.Instance]
	if inst == nil {
		return
	}
	delete(inst.pending, m.Worker)
	if len(inst.pending) == 0 {
		delete(c.instances, m.Instance)
		c.wm.remove(inst.base)
		c.resolveIfQuiet()
	}
}

// centralGraph is the Spark-like dispatcher: it holds every undispatched
// or in-flight command and releases a command to its worker only when all
// predecessors have completed, paying a per-task scheduling cost. This is
// the control-plane bottleneck Figures 1, 7 and 8 measure.
type centralGraph struct {
	c     *Controller
	nodes map[ids.CommandID]*cnode
}

type cnode struct {
	cmd        *command.Command
	worker     ids.WorkerID
	missing    int
	dependents []ids.CommandID
	dispatched bool
	ready      bool
}

func newCentralGraph(c *Controller) *centralGraph {
	return &centralGraph{c: c, nodes: make(map[ids.CommandID]*cnode)}
}

func (g *centralGraph) pendingCount() int { return len(g.nodes) }

func (g *centralGraph) add(cmd *command.Command, w ids.WorkerID) {
	n := &cnode{cmd: cmd, worker: w}
	for _, dep := range cmd.Before {
		if dn, ok := g.nodes[dep]; ok {
			dn.dependents = append(dn.dependents, cmd.ID)
			n.missing++
		}
	}
	// Cross-worker data dependencies are command-pair implicit: a receive
	// is released with its sender; the data plane orders the payload.
	g.nodes[cmd.ID] = n
	if n.missing == 0 {
		n.ready = true
	}
}

func (g *centralGraph) complete(done []ids.CommandID) {
	for _, id := range done {
		n, ok := g.nodes[id]
		if !ok {
			continue
		}
		delete(g.nodes, id)
		for _, dep := range n.dependents {
			dn, ok := g.nodes[dep]
			if !ok {
				continue
			}
			dn.missing--
			if dn.missing == 0 && !dn.dispatched {
				dn.ready = true
			}
		}
	}
}

// dispatchReady sends every ready command, modeling the baseline
// scheduler's per-task cost with a calibrated busy wait.
func (g *centralGraph) dispatchReady() {
	for {
		progressed := false
		for id, n := range g.nodes {
			if !n.ready || n.dispatched {
				continue
			}
			n.dispatched = true
			n.ready = false
			progressed = true
			if cost := g.c.cfg.CentralPerTaskCost; cost > 0 {
				spinWait(cost)
			}
			g.c.sendWorker(g.c.workers[n.worker], &proto.SpawnCommands{
				Cmds: []*command.Command{n.cmd},
			})
			_ = id
		}
		if !progressed {
			return
		}
	}
}

// spinWait models scheduler CPU time.
func spinWait(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
