package controller

import (
	"errors"
	"fmt"
	"time"

	"nimbus/internal/command"
	"nimbus/internal/core"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
	"nimbus/internal/stream"
)

// placement adapts one job's variable table to core.Placement.
type placement struct{ j *jobState }

func (p placement) WorkerOf(v ids.VariableID, partition int) ids.WorkerID {
	vm := p.j.vars[v]
	if vm == nil || partition < 0 || partition >= len(vm.assign) {
		return ids.NoWorker
	}
	return vm.assign[partition]
}

func (p placement) Logical(v ids.VariableID, partition int) ids.LogicalID {
	vm := p.j.vars[v]
	if vm == nil || partition < 0 || partition >= len(vm.logicals) {
		return ids.NoLogical
	}
	return vm.logicals[partition]
}

func (p placement) Partitions(v ids.VariableID) int {
	if vm := p.j.vars[v]; vm != nil {
		return vm.partitions
	}
	return 0
}

func (j *jobState) placement() core.Placement { return placement{j} }

func (c *Controller) handleDefineVariable(j *jobState, m *proto.DefineVariable) {
	if m.Partitions <= 0 {
		c.rejectOp(j, fmt.Sprintf("variable %q: partition count %d", m.Name, m.Partitions))
		return
	}
	if len(c.active) == 0 {
		c.rejectOp(j, fmt.Sprintf("variable %q defined with no workers", m.Name))
		return
	}
	vm := &varMeta{
		id:         m.Var,
		name:       m.Name,
		partitions: m.Partitions,
		logicals:   make([]ids.LogicalID, m.Partitions),
		assign:     make([]ids.WorkerID, m.Partitions),
	}
	for p := 0; p < m.Partitions; p++ {
		vm.logicals[p] = j.logIDs.Next()
		vm.assign[p] = c.active[p%len(c.active)]
	}
	j.vars[m.Var] = vm
	c.logOp(j, m)
}

func (c *Controller) driverError(j *jobState, text string) {
	c.cfg.Logf("controller: %s driver error: %s", j.id, text)
	c.sendDriver(j, &proto.ErrorMsg{Text: text})
}

// logRejected accounts one rejected logged driver operation. The driver
// journals every logged op and counts it in opsSent before sending — it
// cannot know the controller will refuse it — so the job's applied counter
// must advance for rejected ops too, or a reattaching driver's journal
// resend starts one entry early and re-applies operations the controller
// already executed. A rejected op never joins the oplog (it had no effect,
// so recovery must not replay it); only the counter moves, mirrored to an
// attached standby as an allocator-sync ReplOp.
func (c *Controller) logRejected(j *jobState) {
	if j.replaying || j.loopStepping {
		return
	}
	j.applied++
	c.replSync(j)
}

// rejectOp refuses one logged driver operation: surface the error and keep
// the applied counter in lockstep with the driver's journal.
func (c *Controller) rejectOp(j *jobState, text string) {
	c.driverError(j, text)
	c.logRejected(j)
}

// handlePut uploads initial data for one partition as a Create command on
// the owning worker, ordered by the job's worker ledger like any other
// write.
func (c *Controller) handlePut(j *jobState, m *proto.Put) {
	vm := j.vars[m.Var]
	if vm == nil || m.Partition < 0 || m.Partition >= vm.partitions {
		c.rejectOp(j, fmt.Sprintf("put to unknown variable %s partition %d", m.Var, m.Partition))
		return
	}
	l := vm.logicals[m.Partition]
	w := vm.assign[m.Partition]
	obj := j.dir.Instance(l, w)
	id := j.cmdIDs.Next()
	before := j.ledgers[w].Write(obj, id, nil)
	version := j.dir.RecordWrite(l, w)
	cmd := &command.Command{
		ID: id, Kind: command.Create,
		Writes: []ids.ObjectID{obj}, Before: before,
		Params: params.Blob(m.Data), Logical: l, Version: version,
	}
	j.autoValid = false
	c.dispatchCommands(j, map[ids.WorkerID][]*command.Command{w: {cmd}})
	c.logOp(j, m)
}

// handleGet registers a synchronized read: the reply is sent once all the
// job's outstanding work has drained (Gets are the synchronization points
// that drive data-dependent control flow, paper §2.4). Another job's
// outstanding work never delays a Get.
func (c *Controller) handleGet(j *jobState, m *proto.Get) {
	// A driver re-issues unresolved Gets with their original seq after a
	// failover; against a surviving controller the first issue may still
	// be parked or fetching, so the duplicate is dropped.
	for _, g := range j.gets {
		if g.seq == m.Seq {
			return
		}
	}
	for _, pf := range c.fetches {
		if pf.job == j.id && pf.loop == nil && pf.driverSeq == m.Seq {
			return
		}
	}
	if len(j.gets) > 0 {
		// Another read is already parked: the driver pipelined its Gets
		// (v2 GetAsync) instead of gating each on the previous reply.
		c.Stats.PipelinedGets.Add(1)
	}
	j.gets = append(j.gets, pendingGet{seq: m.Seq, v: m.Var, p: m.Partition})
	c.resolveIfQuiet(j)
}

func (c *Controller) handleBarrier(j *jobState, m *proto.Barrier) {
	for _, b := range j.barriers {
		if b.seq == m.Seq {
			return // re-issued across a failover; already parked
		}
	}
	j.barriers = append(j.barriers, pendingBarrier{seq: m.Seq})
	c.resolveIfQuiet(j)
}

// workOutstanding counts one job's unfinished execution: dispatched
// commands and template instances.
func (j *jobState) workOutstanding() int {
	return len(j.outstanding) + len(j.instances) + j.central.pendingCount()
}

// totalOutstanding adds in-flight template builds and the driver
// operations queued behind the op fence — barriers, gets and checkpoints
// must not resolve while queued operations still have effects to apply.
func (j *jobState) totalOutstanding() int {
	return j.workOutstanding() + len(j.building) + len(j.opq)
}

// resolveIfQuiet answers a job's barriers and gets once it has drained.
// In-flight predicate loops advance as soon as execution drains — before
// the opq check, NOT behind it: ops queued in opq are fenced precisely
// because the loop is in flight, so gating the loop on an empty opq
// would deadlock the job (the loop waits for the queue, the queue waits
// for the loop). Barriers and gets still wait for everything, loops
// included, so they observe the loop's final state.
func (c *Controller) resolveIfQuiet(j *jobState) {
	// A recovering or takeover-parked job must not resolve anything: its
	// apparent quiescence is the halt flush, not real completion, and a
	// reattached driver's parked gets would read pre-revert state.
	if j.recovering || j.pendingTakeover {
		return
	}
	if j.workOutstanding() > 0 {
		return
	}
	if len(j.loops) > 0 {
		c.advanceLoop(j)
		return
	}
	if len(j.building) > 0 || len(j.opq) > 0 {
		return
	}
	for _, b := range j.barriers {
		c.sendDriver(j, &proto.BarrierDone{Seq: b.seq, Applied: c.safeApplied(j)})
	}
	j.barriers = nil
	gets := j.gets
	j.gets = nil
	for _, g := range gets {
		c.startFetch(j, g)
	}
	if j.ckpt.saving {
		c.commitCheckpoint(j)
	} else if len(j.ckpt.requested) > 0 {
		c.beginCheckpoint(j)
	}
}

func (c *Controller) startFetch(j *jobState, g pendingGet) {
	vm := j.vars[g.v]
	if vm == nil || g.p < 0 || g.p >= vm.partitions {
		c.sendDriver(j, &proto.GetResult{Seq: g.seq})
		return
	}
	l := vm.logicals[g.p]
	holder := j.dir.LatestHolder(l)
	if holder == ids.NoWorker {
		c.sendDriver(j, &proto.GetResult{Seq: g.seq})
		return
	}
	rep := j.dir.Lookup(l, holder)
	c.fetchSeq++
	c.fetches[c.fetchSeq] = &pendingFetch{job: j.id, driverSeq: g.seq, v: g.v, p: g.p}
	c.sendWorker(c.workers[holder], &proto.FetchObject{Job: j.id, Seq: c.fetchSeq, Object: rep.Object})
}

// fetchChunks reassembles one chunked fetch reply.
type fetchChunks struct {
	ra  stream.Reassembler
	buf []byte
}

// handleFetchChunk lands one chunk of a large fetch reply. Chunks are
// only accepted for fetches actually outstanding, so a misbehaving worker
// cannot grow the reassembly table; on the last chunk the buffered body
// resolves through the ordinary ObjectData path. A protocol violation
// drops the partial state and resolves the fetch empty rather than
// leaving the driver hanging.
func (c *Controller) handleFetchChunk(m *proto.DataChunk) {
	if m.Flags&proto.ChunkFetch == 0 || c.fetches[m.Fetch] == nil {
		return
	}
	st := c.chunkRx[m.Fetch]
	if st == nil {
		if m.Seq != 0 {
			return // stale tail of an already-dropped reassembly
		}
		// The chunk-size bound here is hostile-input protection, not the
		// workers' configured chunk size (the controller does not know
		// it); cap at the transport frame limit.
		st = &fetchChunks{ra: stream.Reassembler{Xfer: m.Xfer, Total: m.Total, ChunkSize: 1 << 28}}
		c.chunkRx[m.Fetch] = st
	}
	raw, err := st.ra.Accept(m)
	if err != nil {
		if errors.Is(err, stream.ErrDup) {
			return
		}
		c.cfg.Logf("controller: fetch %d chunk: %v", m.Fetch, err)
		delete(c.chunkRx, m.Fetch)
		c.handleObjectData(&proto.ObjectData{Seq: m.Fetch, Object: m.Object, Version: m.Version})
		return
	}
	st.buf = append(st.buf, raw...)
	if !m.Last {
		return
	}
	delete(c.chunkRx, m.Fetch)
	c.handleObjectData(&proto.ObjectData{Seq: m.Fetch, Object: m.Object, Version: m.Version, Data: st.buf})
}

func (c *Controller) handleObjectData(m *proto.ObjectData) {
	pf := c.fetches[m.Seq]
	if pf == nil {
		return
	}
	delete(c.fetches, m.Seq)
	j := c.jobs[pf.job]
	if j == nil {
		return // job torn down while the fetch was in flight
	}
	if pf.loop != nil {
		c.evalLoopPred(j, pf.loop, m.Data)
		return
	}
	c.sendDriver(j, &proto.GetResult{Seq: pf.driverSeq, Data: m.Data})
}

// handleSubmitStage expands one stage into commands. In Nimbus mode whole
// per-worker batches are pushed at once; in central mode commands enter
// the job's central dispatch graph. If the job is recording a template,
// the stage is additionally recorded into the builder.
func (c *Controller) handleSubmitStage(j *jobState, m *proto.SubmitStage) {
	if j.recording != nil {
		rstart := time.Now()
		// Recording only validates and captures the stage spec; the
		// O(tasks) assignment construction happens off-loop at
		// TemplateEnd. Every build-time error is shape-dependent, so
		// validation here guarantees the deferred build cannot fail.
		if err := core.ValidateStage(m, j.placement()); err != nil {
			c.driverError(j, err.Error())
			j.recording = nil
		} else {
			j.recording.tmpl.Stages = append(j.recording.tmpl.Stages, m)
			j.recording.tmpl.TaskCount += m.Tasks
			c.Stats.RecordNanos.Add(uint64(time.Since(rstart)))
		}
	}
	if err := c.scheduleStageLive(j, m); err != nil {
		c.rejectOp(j, err.Error())
		return
	}
	c.logOp(j, m)
}

// scheduleStageLive schedules a stage the non-templated way: per-task
// dependency analysis against the job's live directory and ledgers, with
// eager copies for any data a task needs that is not latest on its worker.
func (c *Controller) scheduleStageLive(j *jobState, m *proto.SubmitStage) error {
	start := time.Now()
	defer func() { c.Stats.ScheduleNanos.Add(uint64(time.Since(start))) }()
	place := j.placement()
	batches := make(map[ids.WorkerID][]*command.Command)
	j.autoValid = false
	for t := 0; t < m.Tasks; t++ {
		reads, writes, err := core.TaskAccesses(m, place, t)
		if err != nil {
			return err
		}
		w, err := core.AnchorWorker(m, place, t)
		if err != nil {
			return err
		}
		if w == ids.NoWorker {
			return fmt.Errorf("stage %s task %d has no placement", m.Stage, t)
		}
		// Data movement first, so copies precede the task per worker.
		for _, l := range reads {
			c.ensureLatestAt(j, l, w, batches)
		}
		id := j.cmdIDs.Next()
		led := j.ledgers[w]
		var before []ids.CommandID
		readObjs := make([]ids.ObjectID, len(reads))
		for i, l := range reads {
			obj := j.dir.Instance(l, w)
			readObjs[i] = obj
			before = led.Read(obj, id, before)
		}
		writeObjs := make([]ids.ObjectID, len(writes))
		for i, l := range writes {
			obj := j.dir.Instance(l, w)
			writeObjs[i] = obj
			before = led.Write(obj, id, before)
			j.dir.RecordWrite(l, w)
		}
		p := m.Params
		if t < len(m.PerTask) {
			p = m.PerTask[t]
		}
		batches[w] = append(batches[w], &command.Command{
			ID: id, Kind: command.Task, Function: m.Fn,
			Reads: readObjs, Writes: writeObjs, Before: before, Params: p,
		})
		c.Stats.TasksScheduled.Add(1)
		if c.cfg.Mode == ModeNimbus && c.cfg.LivePerTaskCost > 0 {
			spinWait(c.cfg.LivePerTaskCost)
		}
	}
	c.dispatchCommands(j, batches)
	return nil
}

// ensureLatestAt inserts a copy pair if worker w does not hold the latest
// version of l within the job. Objects that have never been written need
// no movement.
func (c *Controller) ensureLatestAt(j *jobState, l ids.LogicalID, w ids.WorkerID, batches map[ids.WorkerID][]*command.Command) {
	if j.dir.Latest(l) == 0 || j.dir.IsLatest(l, w) {
		return
	}
	src := j.dir.LatestHolder(l)
	if src == ids.NoWorker {
		c.cfg.Logf("controller: %s %s has no live replica; reader at %s gets stale data", j.id, l, w)
		return
	}
	srcObj := j.dir.Instance(l, src)
	dstObj := j.dir.Instance(l, w)
	sendID := j.cmdIDs.Next()
	recvID := j.cmdIDs.Next()
	sendBefore := j.ledgers[src].Read(srcObj, sendID, nil)
	recvBefore := j.ledgers[w].Write(dstObj, recvID, nil)
	version := j.dir.Latest(l)
	batches[src] = append(batches[src], &command.Command{
		ID: sendID, Kind: command.CopySend,
		Reads: []ids.ObjectID{srcObj}, Before: sendBefore,
		DstWorker: w, DstCommand: recvID, Logical: l, Version: version,
	})
	batches[w] = append(batches[w], &command.Command{
		ID: recvID, Kind: command.CopyRecv,
		Writes: []ids.ObjectID{dstObj}, Before: recvBefore,
		Logical: l, Version: version,
	})
	j.dir.RecordCopy(l, w)
	c.Stats.CopiesInserted.Add(1)
}

// dispatchCommands routes generated commands according to the mode:
// batched pushes in Nimbus mode, graph-driven per-task dispatch in central
// mode. All commands are tracked as the job's outstanding work, and every
// frame carries the job so the worker lands them in the right namespace.
func (c *Controller) dispatchCommands(j *jobState, batches map[ids.WorkerID][]*command.Command) {
	if c.cfg.Mode == ModeCentral {
		for w, cmds := range batches {
			for _, cmd := range cmds {
				j.central.add(cmd, w)
			}
		}
		j.central.dispatchReady()
		return
	}
	for w, cmds := range batches {
		for _, cmd := range cmds {
			c.trackOutstanding(j, cmd.ID, w)
		}
		c.sendWorker(c.workers[w], &proto.SpawnCommands{Job: j.id, Cmds: cmds})
	}
}

// spawnBarrierBatch sends commands to one worker as a barrier unit
// (uncached patches).
func (c *Controller) spawnBarrierBatch(j *jobState, w ids.WorkerID, cmds []*command.Command) {
	for _, cmd := range cmds {
		c.trackOutstanding(j, cmd.ID, w)
	}
	c.sendWorker(c.workers[w], &proto.SpawnCommands{Job: j.id, Cmds: cmds, Barrier: true})
}

// trackOutstanding records a dispatched command, feeding the job's
// watermark tracker alongside its outstanding map.
func (c *Controller) trackOutstanding(j *jobState, id ids.CommandID, w ids.WorkerID) {
	j.outstanding[id] = w
	j.wm.add(id)
}

func (c *Controller) handleComplete(j *jobState, m *proto.Complete) {
	for _, id := range m.IDs {
		if _, ok := j.outstanding[id]; ok {
			delete(j.outstanding, id)
			j.wm.remove(id)
		}
	}
	if c.cfg.Mode == ModeCentral {
		j.central.complete(m.IDs)
		j.central.dispatchReady()
	}
	c.resolveIfQuiet(j)
}

func (c *Controller) handleBlockDone(j *jobState, m *proto.BlockDone) {
	inst := j.instances[m.Instance]
	if inst == nil {
		return
	}
	delete(inst.pending, m.Worker)
	if len(inst.pending) == 0 {
		delete(j.instances, m.Instance)
		j.wm.remove(inst.base)
		c.resolveIfQuiet(j)
	}
}

// centralGraph is the Spark-like dispatcher for one job: it holds every
// undispatched or in-flight command and releases a command to its worker
// only when all predecessors have completed, paying a per-task scheduling
// cost. This is the control-plane bottleneck Figures 1, 7 and 8 measure.
type centralGraph struct {
	c     *Controller
	j     *jobState
	nodes map[ids.CommandID]*cnode
}

type cnode struct {
	cmd        *command.Command
	worker     ids.WorkerID
	missing    int
	dependents []ids.CommandID
	dispatched bool
	ready      bool
}

func newCentralGraph(c *Controller, j *jobState) *centralGraph {
	return &centralGraph{c: c, j: j, nodes: make(map[ids.CommandID]*cnode)}
}

func (g *centralGraph) pendingCount() int { return len(g.nodes) }

func (g *centralGraph) add(cmd *command.Command, w ids.WorkerID) {
	n := &cnode{cmd: cmd, worker: w}
	for _, dep := range cmd.Before {
		if dn, ok := g.nodes[dep]; ok {
			dn.dependents = append(dn.dependents, cmd.ID)
			n.missing++
		}
	}
	// Cross-worker data dependencies are command-pair implicit: a receive
	// is released with its sender; the data plane orders the payload.
	g.nodes[cmd.ID] = n
	if n.missing == 0 {
		n.ready = true
	}
}

func (g *centralGraph) complete(done []ids.CommandID) {
	for _, id := range done {
		n, ok := g.nodes[id]
		if !ok {
			continue
		}
		delete(g.nodes, id)
		for _, dep := range n.dependents {
			dn, ok := g.nodes[dep]
			if !ok {
				continue
			}
			dn.missing--
			if dn.missing == 0 && !dn.dispatched {
				dn.ready = true
			}
		}
	}
}

// dispatchReady sends every ready command, modeling the baseline
// scheduler's per-task cost with a calibrated busy wait.
func (g *centralGraph) dispatchReady() {
	for {
		progressed := false
		for id, n := range g.nodes {
			if !n.ready || n.dispatched {
				continue
			}
			n.dispatched = true
			n.ready = false
			progressed = true
			if cost := g.c.cfg.CentralPerTaskCost; cost > 0 {
				spinWait(cost)
			}
			g.c.sendWorker(g.c.workers[n.worker], &proto.SpawnCommands{
				Job:  g.j.id,
				Cmds: []*command.Command{n.cmd},
			})
			_ = id
		}
		if !progressed {
			return
		}
	}
}

// spinWait models scheduler CPU time.
func spinWait(d time.Duration) {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}
