package controller

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/proto"
	"nimbus/internal/transport"
)

// ErrStandbyChain rejects attaching a standby behind another unpromoted
// standby. Replication is strictly primary→standby: a standby never
// listens, never re-streams the oplog, and its shadow state is not a
// replication source, so a chained standby would silently protect
// nothing. Deploy standbys in parallel against the primary instead, or
// attach the next one after a promotion (see DESIGN.md, "Controller
// failover").
var ErrStandbyChain = errors.New("controller: standby cannot attach behind an unpromoted standby")

// Standby is a hot-standby controller: it attaches to a running primary,
// mirrors its replicated state (repl.go) into a shadow, and watches the
// leadership lease the stream carries. While the primary renews on time,
// the standby only applies and acks. When the lease expires — the primary
// stopped renewing, whether its process died or its connection dropped
// without a graceful Shutdown — the standby promotes itself: it builds a
// ReplSnapshot from the shadow, constructs a Controller from it
// (takeover.go) under the next leadership epoch, and re-binds the
// primary's listen endpoint. A graceful primary Stop sends Shutdown on
// the stream instead, and the standby stands down without promoting.
type Standby struct {
	cfg Config

	conn transport.Conn
	// epoch is the primary's leadership epoch as last renewed; promotion
	// uses epoch+1.
	epoch uint64
	// ttl is the lease duration the primary last announced.
	ttl time.Duration

	shadow *shadowState

	mu       sync.Mutex
	promoted *Controller
	err      error

	stopped    chan struct{}
	stopOnce   sync.Once
	done       chan struct{}
	promotedCh chan struct{}
}

// shadowState mirrors the primary's replicated cluster state.
type shadowState struct {
	jobSeq     uint32
	nextWorker uint32
	workers    []ids.WorkerID
	jobs       map[ids.JobID]*shadowJob
	order      []ids.JobID // admission order, for a deterministic snapshot
}

// shadowJob mirrors one job. Defs and oplog hold raw marshaled ops: the
// standby never interprets them beyond classification — interpretation is
// the promoted controller's replay.
type shadowJob struct {
	name      string
	weight    int
	tenant    string
	applied   uint64
	ckpt      uint64
	ckptCount uint64
	manifest  []proto.ManifestEntry
	defs      [][]byte
	oplog     [][]byte
	nextCmd   uint64
	nextObj   uint64
	// recording tracks whether the def history ends inside an open
	// template recording, so streamed SubmitStages classify as definition
	// history (they are part of the recording) in addition to the oplog.
	recording bool
}

// NewStandby creates a standby for the primary at cfg.ControlAddr. The
// same Config later seeds the promoted controller, which re-binds that
// address.
func NewStandby(cfg Config) *Standby {
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Standby{
		cfg:        cfg,
		stopped:    make(chan struct{}),
		done:       make(chan struct{}),
		promotedCh: make(chan struct{}),
	}
}

// Start attaches to the primary: dial, send ReplAttach, receive the full
// snapshot, then watch the stream. It returns once attached (the shadow
// holds the snapshot), with the watcher running. On error the standby is
// finished: Stop is a no-op and Done is already closed.
func (s *Standby) Start() (retErr error) {
	defer func() {
		if retErr != nil {
			close(s.done)
		}
	}()
	conn, err := transport.DialRetry(s.cfg.Transport, s.cfg.ControlAddr, transport.Backoff{}, 0, 2*time.Second, s.stopped)
	if err != nil {
		return fmt.Errorf("standby: attach dial: %w", err)
	}
	buf := proto.MarshalAppend(proto.GetBuf(), &proto.ReplAttach{})
	if owned, err := transport.SendOwned(conn, buf); err != nil {
		if !owned {
			proto.PutBuf(buf)
		}
		conn.Close()
		return fmt.Errorf("standby: attach send: %w", err)
	} else if !owned {
		proto.PutBuf(buf)
	}
	// The first frame is the snapshot (possibly with the first lease
	// renewal behind it in a later frame).
	raw, err := conn.Recv()
	if err != nil {
		conn.Close()
		return fmt.Errorf("standby: snapshot recv: %w", err)
	}
	var pending []proto.Msg
	err = proto.ForEachMsg(raw, func(m proto.Msg) error {
		pending = append(pending, m)
		return nil
	})
	proto.PutBuf(raw)
	if err == nil && (len(pending) == 0 || pending[0].Kind() != proto.KindReplSnapshot) {
		err = errors.New("standby: primary did not send a snapshot")
	}
	if err != nil {
		conn.Close()
		return err
	}
	s.conn = conn
	s.ttl = defaultLeaseTTL
	if s.cfg.LeaseTTL > 0 {
		s.ttl = s.cfg.LeaseTTL
	}
	s.adoptSnapshot(pending[0].(*proto.ReplSnapshot))
	for _, m := range pending[1:] {
		s.apply(m)
	}
	go s.watch()
	return nil
}

func (s *Standby) adoptSnapshot(snap *proto.ReplSnapshot) {
	sh := &shadowState{
		jobSeq:     snap.JobSeq,
		nextWorker: snap.NextWorker,
		workers:    append([]ids.WorkerID(nil), snap.Workers...),
		jobs:       make(map[ids.JobID]*shadowJob, len(snap.Jobs)),
	}
	for _, rj := range snap.Jobs {
		sj := &shadowJob{
			name: rj.Name, weight: rj.Weight, tenant: rj.Tenant, applied: rj.Applied,
			ckpt: rj.Ckpt, ckptCount: rj.CkptCount,
			manifest: rj.Manifest, defs: rj.Defs, oplog: rj.Oplog,
			nextCmd: rj.NextCmd, nextObj: rj.NextObj,
		}
		// The def history ends inside a recording iff it has an unmatched
		// TemplateStart (the primary appends TemplateEnd on completion).
		for _, raw := range rj.Defs {
			switch classify(raw) {
			case proto.KindTemplateStart:
				sj.recording = true
			case proto.KindTemplateEnd:
				sj.recording = false
			}
		}
		sh.jobs[rj.Job] = sj
		sh.order = append(sh.order, rj.Job)
	}
	s.shadow = sh
}

func classify(raw []byte) proto.MsgKind {
	if len(raw) == 0 {
		return 0
	}
	return proto.MsgKind(raw[0])
}

// watch runs the standby's two loops: a reader feeding stream messages
// into a channel, and the lease watchdog. The watchdog promotes on lease
// expiry regardless of connection state: a dropped stream without a
// graceful Shutdown is treated exactly like a silent primary — wait out
// the lease (the primary may be alive with only the standby link down),
// then take over.
func (s *Standby) watch() {
	defer close(s.done)
	// watchDone releases the reader goroutine when this loop returns for
	// any reason (promotion, graceful shutdown, lease expiry). Without it
	// a reader blocked on a full msgs channel would be stranded forever:
	// s.stopped only closes on an explicit Stop.
	watchDone := make(chan struct{})
	defer close(watchDone)
	msgs := make(chan proto.Msg, 256)
	readErr := make(chan error, 1)
	go func() {
		for {
			raw, err := s.conn.Recv()
			if err != nil {
				readErr <- err
				return
			}
			err = proto.ForEachMsg(raw, func(m proto.Msg) error {
				select {
				case msgs <- m:
					return nil
				case <-s.stopped:
					return errPumpStopped
				case <-watchDone:
					return errPumpStopped
				}
			})
			proto.PutBuf(raw)
			if err != nil {
				readErr <- err
				return
			}
		}
	}()

	lease := time.NewTimer(s.ttl)
	defer lease.Stop()
	streamDown := false
	for {
		select {
		case m := <-msgs:
			switch v := m.(type) {
			case *proto.LeaseRenew:
				s.epoch = v.Epoch
				if v.TTLMillis > 0 {
					s.ttl = time.Duration(v.TTLMillis) * time.Millisecond
				}
				if !lease.Stop() {
					<-lease.C
				}
				lease.Reset(s.ttl)
			case *proto.Shutdown:
				// Graceful primary stop: stand down, never promote.
				s.conn.Close()
				s.fail(nil)
				return
			default:
				s.apply(m)
			}
		case err := <-readErr:
			// Stream lost without a Shutdown. Do not promote yet — the
			// lease may still be renewed through a primary that is alive
			// but unreachable from here; promotion waits for expiry.
			if !streamDown {
				streamDown = true
				s.cfg.Logf("standby: stream lost, waiting out lease: %v", err)
			}
		case <-lease.C:
			s.conn.Close()
			s.promote()
			return
		case <-s.stopped:
			s.conn.Close()
			s.fail(errors.New("standby: stopped"))
			return
		}
	}
}

// promote builds a controller from the shadow and takes the cluster over.
// The bind deadline is generous relative to the lease: the deposed
// primary's endpoint frees as its process tears down.
func (s *Standby) promote() {
	snap := s.snapshot()
	c := NewFromReplica(s.cfg, snap, s.epoch+1)
	if err := c.StartTakeover(10*s.ttl, s.stopped); err != nil {
		s.fail(err)
		return
	}
	s.mu.Lock()
	s.promoted = c
	s.mu.Unlock()
	close(s.promotedCh)
}

// snapshot re-materializes a ReplSnapshot from the shadow.
func (s *Standby) snapshot() *proto.ReplSnapshot {
	sh := s.shadow
	snap := &proto.ReplSnapshot{
		JobSeq:     sh.jobSeq,
		NextWorker: sh.nextWorker,
		Workers:    sh.workers,
	}
	for _, id := range sh.order {
		sj := sh.jobs[id]
		snap.Jobs = append(snap.Jobs, &proto.ReplJob{
			Job: id, Name: sj.name, Weight: sj.weight, Tenant: sj.tenant, Applied: sj.applied,
			Ckpt: sj.ckpt, CkptCount: sj.ckptCount, Manifest: sj.manifest,
			Defs: sj.defs, Oplog: sj.oplog,
			NextCmd: sj.nextCmd, NextObj: sj.nextObj,
		})
	}
	return snap
}

// apply folds one replicated increment into the shadow and acks ops.
func (s *Standby) apply(m proto.Msg) {
	sh := s.shadow
	switch v := m.(type) {
	case *proto.ReplOp:
		sj := sh.jobs[v.Job]
		if sj == nil {
			return
		}
		sj.nextCmd = v.NextCmd
		sj.nextObj = v.NextObj
		if len(v.Raw) == 0 {
			// Allocator sync (checkpoint saves, recovery replay) or a
			// rejected driver op's applied bump: adopt the counters,
			// nothing to append or ack. The applied adoption keeps the
			// shadow's reattach reconciliation point in lockstep with the
			// driver's journal, which counts rejected ops too.
			if v.Index > sj.applied {
				sj.applied = v.Index
			}
			return
		}
		switch classify(v.Raw) {
		case proto.KindDefineVariable:
			sj.defs = append(sj.defs, v.Raw)
		case proto.KindTemplateStart:
			sj.defs = append(sj.defs, v.Raw)
			sj.recording = true
		case proto.KindTemplateEnd:
			sj.defs = append(sj.defs, v.Raw)
			sj.recording = false
		case proto.KindSubmitStage:
			if sj.recording {
				sj.defs = append(sj.defs, v.Raw)
			}
		}
		// Every logged op joins the oplog mirror (definitions too: the
		// primary logs them, and replayOp skips what recovery re-derives).
		sj.oplog = append(sj.oplog, v.Raw)
		sj.applied = v.Index
		s.ack(v.Job, v.Index)
	case *proto.ReplCkpt:
		sj := sh.jobs[v.Job]
		if sj == nil {
			return
		}
		sj.ckpt = v.Ckpt
		sj.ckptCount = v.Count
		sj.manifest = v.Manifest
		if v.Drop >= uint64(len(sj.oplog)) {
			sj.oplog = nil
		} else {
			sj.oplog = append([][]byte(nil), sj.oplog[v.Drop:]...)
		}
	case *proto.ReplJobStart:
		sj := &shadowJob{name: v.Name, weight: v.Weight, tenant: v.Tenant}
		sh.jobs[v.Job] = sj
		sh.order = append(sh.order, v.Job)
		if seq := uint32(v.Job); seq > sh.jobSeq {
			sh.jobSeq = seq
		}
	case *proto.ReplJobEnd:
		delete(sh.jobs, v.Job)
		for i, id := range sh.order {
			if id == v.Job {
				sh.order = append(sh.order[:i], sh.order[i+1:]...)
				break
			}
		}
	default:
		s.cfg.Logf("standby: unexpected stream message %s", m.Kind())
	}
}

func (s *Standby) ack(job ids.JobID, index uint64) {
	buf := proto.MarshalAppend(proto.GetBuf(), &proto.ReplAck{Job: job, Index: index})
	if owned, err := transport.SendOwned(s.conn, buf); err != nil {
		s.cfg.Logf("standby: ack send: %v", err)
	} else if !owned {
		proto.PutBuf(buf)
	}
}

func (s *Standby) fail(err error) {
	s.mu.Lock()
	s.err = err
	s.mu.Unlock()
}

// Promoted returns a channel closed when the standby has taken over.
func (s *Standby) Promoted() <-chan struct{} { return s.promotedCh }

// Controller returns the promoted controller (nil before promotion). The
// caller owns its lifecycle; Stop on the standby does not stop it.
func (s *Standby) Controller() *Controller {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.promoted
}

// Err reports why the standby stood down (nil after a graceful primary
// shutdown or a successful promotion).
func (s *Standby) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Stop halts the watcher. A controller already promoted keeps running —
// the caller owns it.
func (s *Standby) Stop() {
	s.stopOnce.Do(func() { close(s.stopped) })
	<-s.done
}

// Done returns a channel closed when the watcher has exited (promotion,
// graceful shutdown, or Stop).
func (s *Standby) Done() <-chan struct{} { return s.done }
