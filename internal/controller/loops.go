package controller

import (
	"fmt"
	"time"

	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/proto"
)

// This file implements controller-evaluated loop predicates (driver API
// v2). An InstantiateWhile submits a whole data-dependent loop: the
// controller instantiates the template, waits for the job's work to
// drain (the same quiesce point a driver Get synchronizes on), fetches
// the predicate variable's reduced scalar from its holder, evaluates the
// predicate, and either instantiates again or answers with one LoopDone —
// turning one driver↔controller round trip per basic-block iteration
// into one per loop. Predicate evaluation rides the job's existing
// completion/watermark path: every completion that quiesces the job
// advances its loop through resolveIfQuiet.
//
// Loops participate in the job's driver-op fence: while a loop is in
// flight, later execution-mutating driver operations queue behind it in
// arrival order, preserving driver program order exactly as the off-loop
// build fence does. Each iteration is logged as an InstantiateBlock so
// failure recovery replays the iterations that already ran.

// loopState is one in-flight controller-evaluated loop.
type loopState struct {
	seq       uint64
	name      string
	pred      proto.Pred
	maxIters  int
	params    []params.Blob
	iters     int
	lastValue float64
	// iterStart is when the current iteration was instantiated; the
	// instantiate → quiesce → predicate-eval span feeds the loop-iteration
	// latency SLO window.
	iterStart time.Time
	// fetching marks a predicate fetch in flight so repeated quiesce
	// events do not issue duplicate fetches.
	fetching bool
}

// handleInstantiateWhile starts a loop. It arrives through the job's op
// fence like any other execution-mutating driver operation, so the
// template's off-loop build is already committed when it runs.
func (c *Controller) handleInstantiateWhile(j *jobState, m *proto.InstantiateWhile) {
	reject := func(text string) {
		// A rejected loop still answers on its own seq: a seq-less
		// ErrorMsg alone would fail whatever future the driver happens to
		// be waiting on and leave the loop's future unresolvable.
		c.cfg.Logf("controller: %s loop error: %s", j.id, text)
		c.sendDriver(j, &proto.LoopDone{Seq: m.Seq, Err: text})
	}
	if j.templates[m.Name] == nil {
		reject(fmt.Sprintf("loop over unknown template %q", m.Name))
		return
	}
	if m.MaxIters <= 0 {
		reject(fmt.Sprintf("loop over %q: MaxIters must be >= 1, got %d", m.Name, m.MaxIters))
		return
	}
	if !m.Pred.Op.Valid() {
		reject(fmt.Sprintf("loop over %q: unknown predicate op %d", m.Name, m.Pred.Op))
		return
	}
	vm := j.vars[m.Pred.Var]
	if vm == nil || m.Pred.Partition < 0 || m.Pred.Partition >= vm.partitions {
		reject(fmt.Sprintf("loop over %q: predicate names unknown %s[%d]",
			m.Name, m.Pred.Var, m.Pred.Partition))
		return
	}
	lp := &loopState{seq: m.Seq, name: m.Name, pred: m.Pred, maxIters: m.MaxIters, params: m.ParamArray}
	j.loops = append(j.loops, lp)
	if c.stepLoop(j, lp) {
		// A template whose slice of work is empty quiesces immediately;
		// re-check so the loop cannot stall waiting for completions that
		// will never come.
		c.resolveIfQuiet(j)
	}
}

// stepLoop runs one more iteration of lp, logging it as an
// InstantiateBlock so recovery replays the iterations that already ran.
// It reports whether the instantiation succeeded; on failure the loop is
// aborted (the instantiation path already surfaced the driver error).
func (c *Controller) stepLoop(j *jobState, lp *loopState) bool {
	// Loop iterations are controller-originated: they join the oplog (a
	// recovery replays them) but must not advance the job's applied
	// driver-op count, which indexes the DRIVER's journal for reattach
	// reconciliation — the driver never journaled these.
	lp.iterStart = time.Now()
	j.loopStepping = true
	ok := c.handleInstantiateBlock(j, &proto.InstantiateBlock{Name: lp.name, ParamArray: lp.params})
	j.loopStepping = false
	if !ok {
		c.abortLoop(j, lp)
		return false
	}
	lp.iters++
	return true
}

// advanceLoop fires the head loop's predicate fetch at a quiesce point
// (called from resolveIfQuiet once the job's work has drained).
func (c *Controller) advanceLoop(j *jobState) {
	lp := j.loops[0]
	if lp.fetching {
		return
	}
	vm := j.vars[lp.pred.Var]
	l := vm.logicals[lp.pred.Partition]
	holder := j.dir.LatestHolder(l)
	if holder == ids.NoWorker {
		// The predicate variable has never been written: the predicate
		// cannot be evaluated, which the driver must be able to tell
		// apart from a genuine predicate-false exit.
		c.finishLoop(j, lp, fmt.Sprintf("predicate %s[%d] has no live value",
			lp.pred.Var, lp.pred.Partition))
		return
	}
	rep := j.dir.Lookup(l, holder)
	c.fetchSeq++
	c.fetches[c.fetchSeq] = &pendingFetch{job: j.id, loop: lp}
	lp.fetching = true
	c.sendWorker(c.workers[holder], &proto.FetchObject{Job: j.id, Seq: c.fetchSeq, Object: rep.Object})
}

// evalLoopPred evaluates the head loop's predicate against the fetched
// scalar and either re-instantiates the template or finishes the loop.
func (c *Controller) evalLoopPred(j *jobState, lp *loopState, data []byte) {
	lp.fetching = false
	if len(j.loops) == 0 || j.loops[0] != lp {
		return // loop aborted while the fetch was in flight
	}
	c.Stats.PredicateEvals.Add(1)
	if !lp.iterStart.IsZero() {
		c.loopLat.record(time.Since(lp.iterStart))
	}
	vals, err := params.DecodeFloats(data)
	if err != nil || len(vals) == 0 {
		c.finishLoop(j, lp, fmt.Sprintf("predicate %s[%d] value empty or unreadable (%v)",
			lp.pred.Var, lp.pred.Partition, err))
		return
	}
	lp.lastValue = vals[0]
	if lp.iters < lp.maxIters && lp.pred.Holds(lp.lastValue) {
		if c.stepLoop(j, lp) {
			c.resolveIfQuiet(j) // zero-work templates quiesce immediately
		}
		return
	}
	c.finishLoop(j, lp, "")
}

// finishLoop pops lp and reports its outcome in one message — the single
// driver-bound reply that replaces one RTT per iteration — then lowers
// the fence for the driver operations queued behind the loop. A non-empty
// errText marks the loop unevaluable rather than converged; the driver's
// future fails with it.
func (c *Controller) finishLoop(j *jobState, lp *loopState, errText string) {
	if errText != "" {
		c.cfg.Logf("controller: %s loop %q: %s", j.id, lp.name, errText)
	}
	c.removeLoop(j, lp)
	c.sendDriver(j, &proto.LoopDone{Seq: lp.seq, Iters: lp.iters, LastValue: lp.lastValue, Err: errText})
	c.drainOps(j)
	c.resolveIfQuiet(j)
}

// abortLoop drops a loop whose iteration failed and lowers the fence.
// The instantiation path already sent the driver an ErrorMsg; the
// seq-addressed LoopDone (via finishLoop) guarantees the loop's own
// future resolves even if that ErrorMsg was attributed to a different
// pipelined operation's wait.
func (c *Controller) abortLoop(j *jobState, lp *loopState) {
	c.finishLoop(j, lp, fmt.Sprintf("aborted after %d iterations", lp.iters))
}

func (c *Controller) removeLoop(j *jobState, lp *loopState) {
	for i, l := range j.loops {
		if l == lp {
			j.loops = append(j.loops[:i], j.loops[i+1:]...)
			return
		}
	}
}
