package proto

import (
	"reflect"
	"testing"

	"nimbus/internal/command"
	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// everyMessage returns one populated instance of each message type.
func everyMessage() []Msg {
	return []Msg{
		&RegisterWorker{DataAddr: "data/1", Slots: 8},
		&RegisterWorkerAck{Worker: 3, Peers: map[ids.WorkerID]string{1: "a", 2: "b"}, Eager: true},
		&RegisterDriver{Name: "drv", Weight: 2, Tenant: "acme", Priority: 3},
		&RegisterDriverAck{Job: 2},
		&JobEnd{Job: 2},
		&JobQuota{Job: 2, Slots: 4},
		&DefineVariable{Var: 4, Name: "x", Partitions: 16},
		&Put{Var: 4, Partition: 2, Data: []byte{1, 2, 3}},
		&Get{Seq: 9, Var: 4, Partition: 1},
		&GetResult{Seq: 9, Data: []byte{7}},
		&SubmitStage{
			Stage: 5, Fn: 6, Tasks: 8,
			Refs: []VarRef{
				{Var: 4, Pattern: OnePerTask},
				{Var: 5, Write: true, Pattern: Shared},
				{Var: 6, Pattern: Stencil, Fixed: 1},
			},
			Params:  params.Blob{1},
			PerTask: []params.Blob{{2}, {3}},
		},
		&TemplateStart{Name: "blk"},
		&TemplateEnd{Name: "blk"},
		&InstantiateBlock{Name: "blk", ParamArray: []params.Blob{{4}, nil}},
		&InstantiateWhile{
			Seq: 21, Name: "blk",
			Pred:     Pred{Var: 4, Partition: 1, Op: PredGE, Threshold: 0.125},
			MaxIters: 30, ParamArray: []params.Blob{{6}},
		},
		&LoopDone{Seq: 21, Iters: 7, LastValue: 0.0625, Err: "bad loop"},
		&Barrier{Seq: 11},
		&BarrierDone{Seq: 11, Applied: 7, Err: "ckpt 2 failed"},
		&CheckpointReq{Seq: 12},
		&Shutdown{},
		&SpawnCommands{Barrier: true, Cmds: []*command.Command{
			{ID: 1, Kind: command.Task, Function: 2, Reads: []ids.ObjectID{3}},
		}},
		&InstallTemplate{Template: 7, Name: "blk", Entries: []command.TemplateEntry{
			{Index: 0, Kind: command.Task, Function: 1, ParamSlot: command.NoParamSlot},
		}},
		&InstantiateTemplate{
			Template: 7, Instance: 2, Base: 1000,
			ParamArray: []params.Blob{{9}},
			Edits: []command.Edit{{
				Remove: []int32{1},
				Add:    []command.TemplateEntry{{Index: 2, Kind: command.Task, ParamSlot: command.NoParamSlot}},
			}},
			DoneWatermark: 900,
		},
		&InstallPatch{Patch: 8, Entries: []command.TemplateEntry{
			{Index: 0, Kind: command.CopySend, DstWorker: 2, DstIdx: 1, ParamSlot: command.NoParamSlot},
		}},
		&InstantiatePatch{Patch: 8, Base: 2000},
		&Complete{Worker: 2, IDs: []ids.CommandID{5, 6}},
		&BlockDone{Worker: 2, Instance: 3},
		&Heartbeat{Worker: 2, Pending: 4, Done: 100},
		&FetchObject{Seq: 13, Object: 44},
		&ObjectData{Seq: 13, Object: 44, Version: 2, Data: []byte{5}},
		&Halt{Seq: 14},
		&HaltAck{Seq: 14, Worker: 2},
		&Resume{},
		&DataPayload{DstCommand: 77, Object: 44, Logical: 9, Version: 2, Data: []byte{6}},
		&DataChunk{
			Job: 2, Xfer: 31, Seq: 4, Last: true, Flags: ChunkCompressed,
			DstCommand: 77, Object: 44, Logical: 9, Version: 2, Fetch: 13,
			Total: 1 << 20, Raw: []byte{1, 2, 3},
		},
		&DataCredit{Xfer: 31, Chunks: 8},
		&XferAbort{Xfer: 31, Reason: "seq gap"},
		&SaveFailed{Job: 4, Ckpt: 2, Logical: 9, Err: "no space left on device"},
		&ErrorMsg{Text: "boom"},
		&ReplAttach{},
		&ReplSnapshot{
			JobSeq: 3, NextWorker: 5, Workers: []ids.WorkerID{1, 2},
			Jobs: []*ReplJob{{
				Job: 2, Name: "drv", Weight: 1, Tenant: "acme", Applied: 17, Ckpt: 2, CkptCount: 3,
				Manifest: []ManifestEntry{{Logical: 4, Version: 9}},
				Defs:     [][]byte{{byte(KindDefineVariable), 1}},
				Oplog:    [][]byte{{byte(KindPut), 2}, {byte(KindInstantiateBlock), 3}},
				NextCmd:  900, NextObj: 120,
			}},
		},
		&ReplOp{Job: 2, Index: 18, NextCmd: 910, NextObj: 121, Raw: []byte{byte(KindPut), 4, 1}},
		&ReplAck{Job: 2, Index: 18},
		&ReplCkpt{Job: 2, Ckpt: 3, Count: 4, Drop: 12, Manifest: []ManifestEntry{{Logical: 5, Version: 10}}},
		&ReplJobStart{Job: 3, Name: "late", Weight: 2, Tenant: "acme"},
		&ReplJobEnd{Job: 3},
		&LeaseRenew{Epoch: 1, TTLMillis: 500},
		&WorkerReconnect{Worker: 2, DataAddr: "data/2", Slots: 8},
		&DriverReattach{Job: 2, Name: "drv", Weight: 1},
		&ReattachAck{Job: 2, Applied: 18, Ok: true, Err: "none"},
		&GatewayHello{},
		&MuxData{Session: 5, Seq: 9, Raw: []byte{byte(KindPut), 1, 2}},
		&SessionClose{Session: 5},
		&AdmissionReject{Code: RejectQueueFull, RetryAfterMillis: 250, Err: "admission queue full"},
		&FleetAnnounce{DataAddr: "data/9", Slots: 8},
		&FleetAdmit{Worker: 9, Peers: map[ids.WorkerID]string{1: "a", 2: "b"}, Eager: true},
		&FleetWarm{Seq: 3},
		&FleetWarmAck{Worker: 9, Seq: 3},
		&FleetReady{Worker: 9},
		&FleetDrain{Worker: 9},
		&FleetDecommission{Worker: 9},
	}
}

// TestEveryMessageRoundTrips marshals and unmarshals one instance of every
// message kind, verifying full fidelity.
func TestEveryMessageRoundTrips(t *testing.T) {
	for _, m := range everyMessage() {
		raw := Marshal(m)
		got, err := Unmarshal(raw)
		if err != nil {
			t.Fatalf("%s: unmarshal: %v", m.Kind(), err)
		}
		if !reflect.DeepEqual(m, got) {
			t.Errorf("%s round trip mismatch:\n got %#v\nwant %#v", m.Kind(), got, m)
		}
	}
}

// TestAllKindsCovered ensures everyMessage covers every registered kind.
func TestAllKindsCovered(t *testing.T) {
	seen := make(map[MsgKind]bool)
	for _, m := range everyMessage() {
		seen[m.Kind()] = true
	}
	for k := KindRegisterWorker; k < KindMax; k++ {
		if newMsg(k) == nil {
			continue
		}
		if !seen[k] {
			t.Errorf("message kind %s not covered by round-trip test", k)
		}
	}
}

func TestUnknownKind(t *testing.T) {
	if _, err := Unmarshal([]byte{0xff}); err == nil {
		t.Fatal("expected error for unknown kind")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("expected error for empty buffer")
	}
}

func TestTruncatedMessage(t *testing.T) {
	raw := Marshal(&SubmitStage{Stage: 1, Fn: 2, Tasks: 3, Refs: []VarRef{{Var: 1}}})
	for cut := 1; cut < len(raw); cut++ {
		if _, err := Unmarshal(raw[:cut]); err == nil {
			// Some prefixes decode cleanly (trailing fields default); that
			// is acceptable as long as no panic occurs.
			continue
		}
	}
}

func TestKindStrings(t *testing.T) {
	for k := KindRegisterWorker; k < KindMax; k++ {
		if s := k.String(); s == "" {
			t.Errorf("kind %d has empty name", k)
		}
	}
}
