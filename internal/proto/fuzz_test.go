package proto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestUnmarshalNeverPanics feeds arbitrary bytes to the decoder: network
// input must produce errors, never panics. Both fully random buffers and
// corrupted valid messages are exercised.
func TestUnmarshalNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", b, r)
			}
		}()
		_, _ = Unmarshal(b)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalCorruptedMessages truncates and bit-flips every valid
// message form.
func TestUnmarshalCorruptedMessages(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, m := range everyMessage() {
		raw := Marshal(m)
		// Every truncation point.
		for cut := 0; cut <= len(raw); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic at truncation %d: %v", m.Kind(), cut, r)
					}
				}()
				_, _ = Unmarshal(raw[:cut])
			}()
		}
		// Random bit flips.
		for trial := 0; trial < 50; trial++ {
			mut := append([]byte(nil), raw...)
			if len(mut) == 0 {
				continue
			}
			mut[rng.Intn(len(mut))] ^= byte(1 << rng.Intn(8))
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic on bit flip: %v", m.Kind(), r)
					}
				}()
				_, _ = Unmarshal(mut)
			}()
		}
	}
}

// TestMarshalSizes documents the control-message sizes that matter for
// the paper's message-count arguments: a steady-state instantiation
// message must be tiny relative to per-task scheduling traffic.
func TestMarshalSizes(t *testing.T) {
	inst := Marshal(&InstantiateTemplate{Template: 1000, Instance: 50, Base: 1 << 40, DoneWatermark: 1 << 39})
	if len(inst) > 64 {
		t.Errorf("instantiation message is %d bytes; the steady-state cost should stay tens of bytes", len(inst))
	}
	blockDone := Marshal(&BlockDone{Worker: 100, Instance: 50})
	if len(blockDone) > 16 {
		t.Errorf("block-done message is %d bytes", len(blockDone))
	}
}
