//go:build race

package proto

// raceEnabled reports that this build runs under the race detector, whose
// sync.Pool instrumentation randomly drops puts — making pool-based
// zero-allocation guarantees unverifiable.
const raceEnabled = true
