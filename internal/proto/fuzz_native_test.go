package proto

import (
	"testing"

	"nimbus/internal/wire"
)

// Native Go fuzz targets for the two decoders that face the network:
// single-frame Unmarshal and the batch iterator ForEachMsg. Hostile frames
// must return errors, never panic and never hand a nil message to the
// caller. `go test` runs the seed corpus below as regular tests; CI runs
// exactly that as decode smoke, and `go test -fuzz=FuzzForEachMsg
// ./internal/proto/` explores from the seeds.

// hostileSeeds is the wire-level hostile-input corpus: the attack shapes
// wire's hostile-count tests guard against (length prefixes far larger
// than the remaining input), expressed as frames, plus malformed frame
// scaffolding.
func hostileSeeds() [][]byte {
	huge := func(prefix ...byte) []byte {
		var w wire.Writer
		w.Buf = append(w.Buf, prefix...)
		w.Uvarint(1 << 50) // hostile count over an empty tail
		return w.Buf
	}
	seeds := [][]byte{
		{},                    // empty frame
		{0xff},                // unknown kind
		{byte(KindBatch)},     // batch with no count
		huge(byte(KindBatch)), // batch claiming 2^50 messages
		append(huge(byte(KindBatch)), 0x01, 0x02, 0x03), // hostile count + junk tail
		{byte(KindBatch), 0x02, 0xff},                   // batch of 2 with an unknown kind inside
		{byte(KindBatch), 0x00, 0x00},                   // empty batch with trailing bytes
		huge(),                                          // hostile count as a bare kind stream
		// Replication/lease frames: hostile counts in the nested job shadow
		// (manifest, defs and oplog lists) and in the snapshot's rosters, a
		// ReplOp whose raw body claims more bytes than it carries, and a
		// bare lease renewal missing its TTL.
		huge(byte(KindReplSnapshot)),                     // snapshot claiming 2^50 workers
		huge(byte(KindReplSnapshot), 0x00, 0x00, 0x00),   // 2^50 jobs after empty rosters
		huge(byte(KindReplOp), 0x02, 0x01, 0x01, 0x01),   // raw-op length prefix over empty tail
		huge(byte(KindReplCkpt), 0x02, 0x01, 0x01, 0x01), // 2^50 manifest entries
		{byte(KindLeaseRenew), 0x01},                     // truncated lease renewal
		{byte(KindReattachAck), 0x02, 0x01, 0x02},        // truncated reattach ack
		// Gateway frames: an envelope whose inner-frame length prefix claims
		// more bytes than the tail carries, and a bare session close.
		huge(byte(KindMuxData), 0x05, 0x01), // envelope raw-length over empty tail
		{byte(KindSessionClose)},            // session close missing its id
	}
	// Every valid message, marshaled, plus a truncated and a corrupted
	// variant: the fuzzer mutates from realistic frames, not just noise.
	for _, m := range everyMessage() {
		raw := Marshal(m)
		seeds = append(seeds, raw)
		if len(raw) > 1 {
			seeds = append(seeds, raw[:len(raw)/2])
			mut := append([]byte(nil), raw...)
			mut[len(mut)-1] ^= 0x80
			seeds = append(seeds, mut)
		}
	}
	// A well-formed multi-message batch frame and truncations of it.
	msgs := everyMessage()
	batch := AppendBatch(nil, msgs[:len(msgs)/2])
	seeds = append(seeds, batch, batch[:len(batch)/2], batch[:1])
	return seeds
}

// FuzzUnmarshal: single-frame decode must never panic and must return
// exactly one of (message, error).
func FuzzUnmarshal(f *testing.F) {
	for _, s := range hostileSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		m, err := Unmarshal(b)
		if err == nil && m == nil {
			t.Fatalf("Unmarshal(%x) returned neither message nor error", b)
		}
	})
}

// FuzzForEachMsg: batch-frame iteration must never panic, never yield a
// nil message, and must error out instead of over-reading on hostile
// counts.
func FuzzForEachMsg(f *testing.F) {
	for _, s := range hostileSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		n := 0
		err := ForEachMsg(b, func(m Msg) error {
			if m == nil {
				t.Fatal("ForEachMsg yielded a nil message")
			}
			n++
			return nil
		})
		if err == nil && n == 0 {
			t.Fatalf("ForEachMsg(%x) yielded nothing and no error", b)
		}
		// Hostile counts must not turn into unbounded yields: a frame can
		// hold at most one message per remaining payload byte.
		if n > len(b) {
			t.Fatalf("ForEachMsg(%x) yielded %d messages from %d bytes", b, n, len(b))
		}
	})
}
