// Package proto defines the Nimbus control-plane and data-plane messages
// and their binary wire codec.
//
// Message flows (paper Figure 2):
//
//	driver     → controller : variables, stages, template start/end,
//	                          block instantiation, gets, barriers
//	controller → driver     : get results, barrier acks
//	controller → worker     : command spawning, worker-template install/
//	                          instantiate (with edits), patch install/
//	                          instantiate, halt/resume, checkpoint
//	worker     → controller : registration, batched completions, block
//	                          completion, heartbeats, fetched objects
//	worker     → worker     : data payloads (push model)
//
// The codec is a one-byte message kind followed by the message body in the
// wire package's varint encoding. Marshal/Unmarshal round every message
// through a flat []byte so the same messages flow over the in-memory and
// TCP transports unchanged.
package proto

import (
	"fmt"

	"nimbus/internal/command"
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/wire"
)

// Msg is implemented by every control-plane message.
type Msg interface {
	// Kind returns the message discriminator byte.
	Kind() MsgKind
	encode(w *wire.Writer)
	decode(r *wire.Reader) error
}

// MsgKind discriminates message types on the wire.
type MsgKind uint8

// Message kinds.
const (
	KindRegisterWorker MsgKind = iota + 1
	KindRegisterWorkerAck
	KindRegisterDriver
	KindDefineVariable
	KindPut
	KindGet
	KindGetResult
	KindSubmitStage
	KindTemplateStart
	KindTemplateEnd
	KindInstantiateBlock
	KindBarrier
	KindBarrierDone
	KindCheckpointReq
	KindShutdown
	KindSpawnCommands
	KindInstallTemplate
	KindInstantiateTemplate
	KindInstallPatch
	KindInstantiatePatch
	KindComplete
	KindBlockDone
	KindHeartbeat
	KindFetchObject
	KindObjectData
	KindHalt
	KindHaltAck
	KindResume
	KindDataPayload
	KindErrorMsg
	KindRegisterDriverAck
	KindJobEnd
	KindJobQuota
	KindInstantiateWhile
	KindLoopDone
	KindReplAttach
	KindReplSnapshot
	KindReplOp
	KindReplAck
	KindReplCkpt
	KindReplJobStart
	KindReplJobEnd
	KindLeaseRenew
	KindWorkerReconnect
	KindDriverReattach
	KindReattachAck
	KindDataChunk
	KindDataCredit
	KindXferAbort
	KindSaveFailed
	KindGatewayHello
	KindMuxData
	KindSessionClose
	KindAdmissionReject
	KindFleetAnnounce
	KindFleetAdmit
	KindFleetWarm
	KindFleetWarmAck
	KindFleetReady
	KindFleetDrain
	KindFleetDecommission
	// KindMax is one past the last registered message kind; coverage
	// tests iterate [KindRegisterWorker, KindMax).
	KindMax
)

// KindBatch is the frame-level discriminator for a coalesced batch of
// messages (see batch.go). It is not a Msg kind: newMsg rejects it, and it
// is deliberately far from the iota block so future message kinds cannot
// collide with it.
const KindBatch MsgKind = 0xFF

// kindNames is the static name table indexed by MsgKind; it exists so
// String never allocates on the hot logging/error paths.
var kindNames = [...]string{
	KindRegisterWorker:      "register-worker",
	KindRegisterWorkerAck:   "register-worker-ack",
	KindRegisterDriver:      "register-driver",
	KindDefineVariable:      "define-variable",
	KindPut:                 "put",
	KindGet:                 "get",
	KindGetResult:           "get-result",
	KindSubmitStage:         "submit-stage",
	KindTemplateStart:       "template-start",
	KindTemplateEnd:         "template-end",
	KindInstantiateBlock:    "instantiate-block",
	KindBarrier:             "barrier",
	KindBarrierDone:         "barrier-done",
	KindCheckpointReq:       "checkpoint",
	KindShutdown:            "shutdown",
	KindSpawnCommands:       "spawn-commands",
	KindInstallTemplate:     "install-template",
	KindInstantiateTemplate: "instantiate-template",
	KindInstallPatch:        "install-patch",
	KindInstantiatePatch:    "instantiate-patch",
	KindComplete:            "complete",
	KindBlockDone:           "block-done",
	KindHeartbeat:           "heartbeat",
	KindFetchObject:         "fetch-object",
	KindObjectData:          "object-data",
	KindHalt:                "halt",
	KindHaltAck:             "halt-ack",
	KindResume:              "resume",
	KindDataPayload:         "data-payload",
	KindErrorMsg:            "error",
	KindRegisterDriverAck:   "register-driver-ack",
	KindJobEnd:              "job-end",
	KindJobQuota:            "job-quota",
	KindInstantiateWhile:    "instantiate-while",
	KindLoopDone:            "loop-done",
	KindReplAttach:          "repl-attach",
	KindReplSnapshot:        "repl-snapshot",
	KindReplOp:              "repl-op",
	KindReplAck:             "repl-ack",
	KindReplCkpt:            "repl-ckpt",
	KindReplJobStart:        "repl-job-start",
	KindReplJobEnd:          "repl-job-end",
	KindLeaseRenew:          "lease-renew",
	KindWorkerReconnect:     "worker-reconnect",
	KindDriverReattach:      "driver-reattach",
	KindReattachAck:         "reattach-ack",
	KindDataChunk:           "data-chunk",
	KindDataCredit:          "data-credit",
	KindXferAbort:           "xfer-abort",
	KindSaveFailed:          "save-failed",
	KindGatewayHello:        "gateway-hello",
	KindMuxData:             "mux-data",
	KindSessionClose:        "session-close",
	KindAdmissionReject:     "admission-reject",
	KindFleetAnnounce:       "fleet-announce",
	KindFleetAdmit:          "fleet-admit",
	KindFleetWarm:           "fleet-warm",
	KindFleetWarmAck:        "fleet-warm-ack",
	KindFleetReady:          "fleet-ready",
	KindFleetDrain:          "fleet-drain",
	KindFleetDecommission:   "fleet-decommission",
}

// String returns the message kind name.
func (k MsgKind) String() string {
	if k == KindBatch {
		return "batch"
	}
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("msg(%d)", uint8(k))
}

// Marshal encodes m with its kind prefix.
func Marshal(m Msg) []byte {
	var w wire.Writer
	w.Buf = make([]byte, 0, 64)
	w.Byte(byte(m.Kind()))
	m.encode(&w)
	return w.Buf
}

// MarshalAppend encodes m (kind prefix included) onto buf and returns the
// extended slice. With a buffer of sufficient capacity — e.g. one from
// GetBuf — it performs no allocations, which is what keeps the controller's
// steady-state instantiation path allocation-free. (The Writer is pooled:
// encode is an interface call, so a stack Writer would escape and cost one
// allocation per message.)
func MarshalAppend(buf []byte, m Msg) []byte {
	w := getWriter(buf)
	w.Byte(byte(m.Kind()))
	m.encode(w)
	return putWriter(w)
}

// MarshalInto encodes m into w (kind prefix included), reusing w's buffer.
func MarshalInto(m Msg, w *wire.Writer) {
	w.Byte(byte(m.Kind()))
	m.encode(w)
}

// Unmarshal decodes one message from b. Batch frames need ForEachMsg.
func Unmarshal(b []byte) (Msg, error) {
	r := wire.NewReader(b)
	kind := MsgKind(r.Byte())
	if r.Err != nil {
		return nil, r.Err
	}
	return unmarshalBody(kind, r)
}

func newMsg(kind MsgKind) Msg {
	switch kind {
	case KindRegisterWorker:
		return &RegisterWorker{}
	case KindRegisterWorkerAck:
		return &RegisterWorkerAck{}
	case KindRegisterDriver:
		return &RegisterDriver{}
	case KindDefineVariable:
		return &DefineVariable{}
	case KindPut:
		return &Put{}
	case KindGet:
		return &Get{}
	case KindGetResult:
		return &GetResult{}
	case KindSubmitStage:
		return &SubmitStage{}
	case KindTemplateStart:
		return &TemplateStart{}
	case KindTemplateEnd:
		return &TemplateEnd{}
	case KindInstantiateBlock:
		return &InstantiateBlock{}
	case KindBarrier:
		return &Barrier{}
	case KindBarrierDone:
		return &BarrierDone{}
	case KindCheckpointReq:
		return &CheckpointReq{}
	case KindShutdown:
		return &Shutdown{}
	case KindSpawnCommands:
		return &SpawnCommands{}
	case KindInstallTemplate:
		return &InstallTemplate{}
	case KindInstantiateTemplate:
		return &InstantiateTemplate{}
	case KindInstallPatch:
		return &InstallPatch{}
	case KindInstantiatePatch:
		return &InstantiatePatch{}
	case KindComplete:
		return &Complete{}
	case KindBlockDone:
		return &BlockDone{}
	case KindHeartbeat:
		return &Heartbeat{}
	case KindFetchObject:
		return &FetchObject{}
	case KindObjectData:
		return &ObjectData{}
	case KindHalt:
		return &Halt{}
	case KindHaltAck:
		return &HaltAck{}
	case KindResume:
		return &Resume{}
	case KindDataPayload:
		return &DataPayload{}
	case KindErrorMsg:
		return &ErrorMsg{}
	case KindRegisterDriverAck:
		return &RegisterDriverAck{}
	case KindJobEnd:
		return &JobEnd{}
	case KindJobQuota:
		return &JobQuota{}
	case KindInstantiateWhile:
		return &InstantiateWhile{}
	case KindLoopDone:
		return &LoopDone{}
	case KindReplAttach:
		return &ReplAttach{}
	case KindReplSnapshot:
		return &ReplSnapshot{}
	case KindReplOp:
		return &ReplOp{}
	case KindReplAck:
		return &ReplAck{}
	case KindReplCkpt:
		return &ReplCkpt{}
	case KindReplJobStart:
		return &ReplJobStart{}
	case KindReplJobEnd:
		return &ReplJobEnd{}
	case KindLeaseRenew:
		return &LeaseRenew{}
	case KindWorkerReconnect:
		return &WorkerReconnect{}
	case KindDriverReattach:
		return &DriverReattach{}
	case KindReattachAck:
		return &ReattachAck{}
	case KindDataChunk:
		return &DataChunk{}
	case KindDataCredit:
		return &DataCredit{}
	case KindXferAbort:
		return &XferAbort{}
	case KindSaveFailed:
		return &SaveFailed{}
	case KindGatewayHello:
		return &GatewayHello{}
	case KindMuxData:
		return &MuxData{}
	case KindSessionClose:
		return &SessionClose{}
	case KindAdmissionReject:
		return &AdmissionReject{}
	case KindFleetAnnounce:
		return &FleetAnnounce{}
	case KindFleetAdmit:
		return &FleetAdmit{}
	case KindFleetWarm:
		return &FleetWarm{}
	case KindFleetWarmAck:
		return &FleetWarmAck{}
	case KindFleetReady:
		return &FleetReady{}
	case KindFleetDrain:
		return &FleetDrain{}
	case KindFleetDecommission:
		return &FleetDecommission{}
	default:
		return nil
	}
}

// ---------------------------------------------------------------------------
// Registration

// RegisterWorker is the first message a worker sends to the controller.
// DataAddr is the worker's data-plane listen address, which the controller
// distributes so workers can exchange data directly (control-plane
// requirement 2, paper §3.1).
type RegisterWorker struct {
	DataAddr string
	// Slots is the number of tasks the worker executes concurrently
	// (c3.2xlarge workers in the paper have 8 cores).
	Slots int
}

// Kind implements Msg.
func (*RegisterWorker) Kind() MsgKind { return KindRegisterWorker }

func (m *RegisterWorker) encode(w *wire.Writer) {
	w.String(m.DataAddr)
	w.Uvarint(uint64(m.Slots))
}

func (m *RegisterWorker) decode(r *wire.Reader) error {
	m.DataAddr = r.String()
	m.Slots = int(r.Uvarint())
	return r.Err
}

// RegisterWorkerAck assigns the worker its ID and tells it about its peers'
// data-plane addresses. Peers is keyed by worker ID; updates arrive as new
// workers join.
type RegisterWorkerAck struct {
	Worker ids.WorkerID
	Peers  map[ids.WorkerID]string
	// Eager selects per-command completion reporting (central/Spark-like
	// mode, where the controller dispatches successors itself) instead of
	// batched reporting (Nimbus mode).
	Eager bool
}

// Kind implements Msg.
func (*RegisterWorkerAck) Kind() MsgKind { return KindRegisterWorkerAck }

func (m *RegisterWorkerAck) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Worker))
	w.Uvarint(uint64(len(m.Peers)))
	for id, addr := range m.Peers {
		w.Uvarint(uint64(id))
		w.String(addr)
	}
	w.Bool(m.Eager)
}

func (m *RegisterWorkerAck) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.Peers = make(map[ids.WorkerID]string, n)
	for i := 0; i < n; i++ {
		id := ids.WorkerID(r.Uvarint())
		m.Peers[id] = r.String()
	}
	m.Eager = r.Bool()
	return r.Err
}

// RegisterDriver is the first message a driver sends to the controller.
// Admission creates a new job: the controller replies with a
// RegisterDriverAck carrying the job handle, and every operation on the
// connection thereafter is scoped to that job.
type RegisterDriver struct {
	Name string
	// Weight biases the fair-share slot allocator (zero means 1). A job
	// with weight 2 receives twice the executor-slot share of a weight-1
	// job on every worker.
	Weight int
	// Tenant groups jobs for hierarchical fair share and per-tenant rate
	// limits; empty means the default tenant.
	Tenant string
	// Priority orders the admission queue (higher first; FIFO within a
	// priority band).
	Priority uint8
}

// Kind implements Msg.
func (*RegisterDriver) Kind() MsgKind { return KindRegisterDriver }

func (m *RegisterDriver) encode(w *wire.Writer) {
	w.String(m.Name)
	w.Uvarint(uint64(m.Weight))
	w.String(m.Tenant)
	w.Byte(m.Priority)
}

func (m *RegisterDriver) decode(r *wire.Reader) error {
	m.Name = r.String()
	m.Weight = int(r.Uvarint())
	m.Tenant = r.String()
	m.Priority = r.Byte()
	return r.Err
}

// RegisterDriverAck admits a driver and hands it its job handle.
type RegisterDriverAck struct {
	Job ids.JobID
}

// Kind implements Msg.
func (*RegisterDriverAck) Kind() MsgKind { return KindRegisterDriverAck }

func (m *RegisterDriverAck) encode(w *wire.Writer) { w.Uvarint(uint64(m.Job)) }

func (m *RegisterDriverAck) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	return r.Err
}

// JobEnd ends a job. Driver → controller it is the graceful variant of a
// disconnect (the controller tears the job down either way); controller →
// worker it tells the worker to drop the job's entire namespace —
// templates, patches, arenas, completion records and datastore objects.
type JobEnd struct {
	Job ids.JobID
}

// Kind implements Msg.
func (*JobEnd) Kind() MsgKind { return KindJobEnd }

func (m *JobEnd) encode(w *wire.Writer) { w.Uvarint(uint64(m.Job)) }

func (m *JobEnd) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	return r.Err
}

// JobQuota sets one job's executor-slot share on a worker. The controller
// recomputes shares whenever a job arrives or exits (weighted fair share
// over the admitted jobs) so one hot tenant cannot starve the rest.
type JobQuota struct {
	Job ids.JobID
	// Slots is the number of executor slots the job may occupy
	// concurrently on this worker.
	Slots int
}

// Kind implements Msg.
func (*JobQuota) Kind() MsgKind { return KindJobQuota }

func (m *JobQuota) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.Slots))
}

func (m *JobQuota) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Slots = int(r.Uvarint())
	return r.Err
}

// ---------------------------------------------------------------------------
// Driver → controller: data model and stages

// DefineVariable declares an application variable with a partition count.
type DefineVariable struct {
	Var        ids.VariableID
	Name       string
	Partitions int
}

// Kind implements Msg.
func (*DefineVariable) Kind() MsgKind { return KindDefineVariable }

func (m *DefineVariable) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Var))
	w.String(m.Name)
	w.Uvarint(uint64(m.Partitions))
}

func (m *DefineVariable) decode(r *wire.Reader) error {
	m.Var = ids.VariableID(r.Uvarint())
	m.Name = r.String()
	m.Partitions = int(r.Uvarint())
	return r.Err
}

// Put uploads initial contents for one partition of a variable. The
// controller forwards the bytes to the owning worker.
type Put struct {
	Var       ids.VariableID
	Partition int
	Data      []byte
}

// Kind implements Msg.
func (*Put) Kind() MsgKind { return KindPut }

func (m *Put) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Var))
	w.Uvarint(uint64(m.Partition))
	w.Bytes(m.Data)
}

func (m *Put) decode(r *wire.Reader) error {
	m.Var = ids.VariableID(r.Uvarint())
	m.Partition = int(r.Uvarint())
	m.Data = r.BytesCopy()
	return r.Err
}

// Get requests the current contents of one partition. It is a
// synchronization point: the controller answers after all submitted work
// that writes the partition has completed. Data-dependent loop conditions
// (paper §2.4) are driven by Gets.
type Get struct {
	Seq       uint64
	Var       ids.VariableID
	Partition int
}

// Kind implements Msg.
func (*Get) Kind() MsgKind { return KindGet }

func (m *Get) encode(w *wire.Writer) {
	w.Uvarint(m.Seq)
	w.Uvarint(uint64(m.Var))
	w.Uvarint(uint64(m.Partition))
}

func (m *Get) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Var = ids.VariableID(r.Uvarint())
	m.Partition = int(r.Uvarint())
	return r.Err
}

// GetResult answers a Get.
type GetResult struct {
	Seq  uint64
	Data []byte
}

// Kind implements Msg.
func (*GetResult) Kind() MsgKind { return KindGetResult }

func (m *GetResult) encode(w *wire.Writer) {
	w.Uvarint(m.Seq)
	w.Bytes(m.Data)
}

func (m *GetResult) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Data = r.BytesCopy()
	return r.Err
}

// AccessPattern describes how a stage's tasks map onto a variable's
// partitions.
type AccessPattern uint8

// Access patterns.
const (
	// OnePerTask: task t accesses partition t. Requires the variable's
	// partition count to equal the stage's task count.
	OnePerTask AccessPattern = iota + 1
	// Shared: every task accesses partition 0 (broadcast reads of scalars
	// such as model parameters; single-writer scalars when Tasks == 1).
	Shared
	// Grouped: task t accesses the contiguous group of partitions
	// [t*K, (t+1)*K) where K = partitions/tasks. Reduction trees use this.
	Grouped
	// FixedPartition: every task accesses the partition named in the ref.
	FixedPartition
	// Stencil: task t accesses partitions [t-r, t+r] clamped to the
	// variable's range, where r is the ref's Fixed field (default radius
	// 1 when Fixed is 0). Grid codes use it for halo exchange between
	// neighboring strips; the copies it implies live inside templates.
	Stencil
)

// VarRef names one variable access of a stage.
type VarRef struct {
	Var     ids.VariableID
	Write   bool
	Pattern AccessPattern
	// Fixed is the partition for FixedPartition.
	Fixed int
}

func (v *VarRef) encode(w *wire.Writer) {
	w.Uvarint(uint64(v.Var))
	w.Bool(v.Write)
	w.Byte(byte(v.Pattern))
	w.Uvarint(uint64(v.Fixed))
}

func (v *VarRef) decode(r *wire.Reader) error {
	v.Var = ids.VariableID(r.Uvarint())
	v.Write = r.Bool()
	v.Pattern = AccessPattern(r.Byte())
	v.Fixed = int(r.Uvarint())
	return r.Err
}

// SubmitStage submits one parallel operation. The controller expands it
// into Tasks task commands plus whatever copy commands data placement
// requires.
type SubmitStage struct {
	Stage ids.StageID
	Fn    ids.FunctionID
	Tasks int
	Refs  []VarRef
	// Params is the shared parameter blob passed to every task. Inside a
	// template recording it becomes a parameter slot (re-supplied on each
	// instantiation); outside, it is sent as-is.
	Params params.Blob
	// PerTask optionally carries distinct parameters per task (used by
	// data-generation stages). Stages with PerTask parameters cannot be
	// recorded into templates.
	PerTask []params.Blob
}

// Kind implements Msg.
func (*SubmitStage) Kind() MsgKind { return KindSubmitStage }

func (m *SubmitStage) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Stage))
	w.Uvarint(uint64(m.Fn))
	w.Uvarint(uint64(m.Tasks))
	w.Uvarint(uint64(len(m.Refs)))
	for i := range m.Refs {
		m.Refs[i].encode(w)
	}
	w.Bytes(m.Params)
	w.Uvarint(uint64(len(m.PerTask)))
	for _, p := range m.PerTask {
		w.Bytes(p)
	}
}

func (m *SubmitStage) decode(r *wire.Reader) error {
	m.Stage = ids.StageID(r.Uvarint())
	m.Fn = ids.FunctionID(r.Uvarint())
	m.Tasks = int(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.Refs = make([]VarRef, n)
	for i := range m.Refs {
		if err := m.Refs[i].decode(r); err != nil {
			return err
		}
	}
	m.Params = params.Blob(r.BytesCopy())
	np := r.Count()
	if r.Err != nil {
		return r.Err
	}
	if np > 0 {
		m.PerTask = make([]params.Blob, np)
		for i := range m.PerTask {
			m.PerTask[i] = params.Blob(r.BytesCopy())
		}
	}
	return r.Err
}

// TemplateStart marks the beginning of a basic block in the driver's task
// stream (paper §4.1: the programmer marks basic blocks explicitly).
type TemplateStart struct {
	Name string
}

// Kind implements Msg.
func (*TemplateStart) Kind() MsgKind { return KindTemplateStart }

func (m *TemplateStart) encode(w *wire.Writer) { w.String(m.Name) }

func (m *TemplateStart) decode(r *wire.Reader) error {
	m.Name = r.String()
	return r.Err
}

// TemplateEnd marks the end of a basic block. On receipt the controller
// post-processes the recorded task graph into a controller template and
// generates the associated worker templates.
type TemplateEnd struct {
	Name string
}

// Kind implements Msg.
func (*TemplateEnd) Kind() MsgKind { return KindTemplateEnd }

func (m *TemplateEnd) encode(w *wire.Writer) { w.String(m.Name) }

func (m *TemplateEnd) decode(r *wire.Reader) error {
	m.Name = r.String()
	return r.Err
}

// InstantiateBlock asks the controller to execute an installed controller
// template again. ParamArray is indexed by the parameter slots recorded at
// install time (one slot per parameterized stage).
type InstantiateBlock struct {
	Name       string
	ParamArray []params.Blob
}

// Kind implements Msg.
func (*InstantiateBlock) Kind() MsgKind { return KindInstantiateBlock }

func (m *InstantiateBlock) encode(w *wire.Writer) {
	w.String(m.Name)
	w.Uvarint(uint64(len(m.ParamArray)))
	for _, p := range m.ParamArray {
		w.Bytes(p)
	}
}

func (m *InstantiateBlock) decode(r *wire.Reader) error {
	m.Name = r.String()
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.ParamArray = make([]params.Blob, n)
	for i := range m.ParamArray {
		m.ParamArray[i] = params.Blob(r.BytesCopy())
	}
	return r.Err
}

// PredOp is a loop predicate's comparison operator.
type PredOp uint8

// Predicate operators. A loop continues while `value <op> threshold`
// holds.
const (
	PredLT PredOp = iota + 1 // value < threshold
	PredLE                   // value <= threshold
	PredGT                   // value > threshold
	PredGE                   // value >= threshold
)

// Valid reports whether op is a known comparison.
func (op PredOp) Valid() bool { return op >= PredLT && op <= PredGE }

// Holds evaluates `v <op> threshold`.
func (op PredOp) Holds(v, threshold float64) bool {
	switch op {
	case PredLT:
		return v < threshold
	case PredLE:
		return v <= threshold
	case PredGT:
		return v > threshold
	case PredGE:
		return v >= threshold
	}
	return false
}

// Pred is a controller-evaluated loop predicate: the first float64 of one
// partition's contents (the reduced scalar a basic block writes, paper
// §2.4) compared against a threshold.
type Pred struct {
	Var       ids.VariableID
	Partition int
	Op        PredOp
	Threshold float64
}

// Holds evaluates the predicate against a fetched scalar.
func (p Pred) Holds(v float64) bool { return p.Op.Holds(v, p.Threshold) }

func (p *Pred) encode(w *wire.Writer) {
	w.Uvarint(uint64(p.Var))
	w.Uvarint(uint64(p.Partition))
	w.Byte(byte(p.Op))
	w.Float64(p.Threshold)
}

func (p *Pred) decode(r *wire.Reader) error {
	p.Var = ids.VariableID(r.Uvarint())
	p.Partition = int(r.Uvarint())
	p.Op = PredOp(r.Byte())
	p.Threshold = r.Float64()
	return r.Err
}

// InstantiateWhile submits a whole data-dependent loop in one message
// (driver API v2): the controller instantiates the named template
// back-to-back, evaluating Pred against the reduced scalar after each
// completion, and answers with a single LoopDone — turning one
// driver↔controller round trip per iteration (the Figure 3 Get loop) into
// one per loop. The loop runs at least once and at most MaxIters times,
// continuing while Pred holds.
type InstantiateWhile struct {
	Seq      uint64
	Name     string
	Pred     Pred
	MaxIters int
	// ParamArray is passed to every iteration's instantiation.
	ParamArray []params.Blob
}

// Kind implements Msg.
func (*InstantiateWhile) Kind() MsgKind { return KindInstantiateWhile }

func (m *InstantiateWhile) encode(w *wire.Writer) {
	w.Uvarint(m.Seq)
	w.String(m.Name)
	m.Pred.encode(w)
	w.Uvarint(uint64(m.MaxIters))
	w.Uvarint(uint64(len(m.ParamArray)))
	for _, p := range m.ParamArray {
		w.Bytes(p)
	}
}

func (m *InstantiateWhile) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Name = r.String()
	if err := m.Pred.decode(r); err != nil {
		return err
	}
	m.MaxIters = int(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.ParamArray = make([]params.Blob, n)
	for i := range m.ParamArray {
		m.ParamArray[i] = params.Blob(r.BytesCopy())
	}
	return r.Err
}

// LoopDone answers an InstantiateWhile once its loop exits: how many
// iterations ran and the scalar the final predicate evaluation saw. A
// loop that could not run (or failed mid-iteration) still answers, with
// Err set: the reply is seq-addressed, so the driver's loop future always
// resolves even when the driver is currently waiting on a different
// pipelined operation.
type LoopDone struct {
	Seq       uint64
	Iters     int
	LastValue float64
	Err       string
}

// Kind implements Msg.
func (*LoopDone) Kind() MsgKind { return KindLoopDone }

func (m *LoopDone) encode(w *wire.Writer) {
	w.Uvarint(m.Seq)
	w.Uvarint(uint64(m.Iters))
	w.Float64(m.LastValue)
	w.String(m.Err)
}

func (m *LoopDone) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Iters = int(r.Uvarint())
	m.LastValue = r.Float64()
	m.Err = r.String()
	return r.Err
}

// Barrier asks the controller to reply (BarrierDone) once all previously
// submitted work has completed.
type Barrier struct {
	Seq uint64
}

// Kind implements Msg.
func (*Barrier) Kind() MsgKind { return KindBarrier }

func (m *Barrier) encode(w *wire.Writer) { w.Uvarint(m.Seq) }

func (m *Barrier) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	return r.Err
}

// BarrierDone answers a Barrier (and a CheckpointReq, whose commit is a
// barrier from the driver's point of view). Applied is the job's logged
// driver-operation count that every controller this session could ever
// reattach to is guaranteed to report at least — the driver drops its
// failover journal entries at or below it, bounding journal growth.
type BarrierDone struct {
	Seq     uint64
	Applied uint64
	// Err is non-empty when the barrier was a checkpoint that failed to
	// commit (a worker's durable Save errored); the driver surfaces it as
	// a typed checkpoint failure instead of success.
	Err string
}

// Kind implements Msg.
func (*BarrierDone) Kind() MsgKind { return KindBarrierDone }

func (m *BarrierDone) encode(w *wire.Writer) {
	w.Uvarint(m.Seq)
	w.Uvarint(m.Applied)
	w.String(m.Err)
}

func (m *BarrierDone) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Applied = r.Uvarint()
	m.Err = r.String()
	return r.Err
}

// CheckpointReq asks the controller to take a checkpoint (paper §4.4):
// drain worker queues, snapshot the execution state, save live objects.
type CheckpointReq struct {
	Seq uint64
}

// Kind implements Msg.
func (*CheckpointReq) Kind() MsgKind { return KindCheckpointReq }

func (m *CheckpointReq) encode(w *wire.Writer) { w.Uvarint(m.Seq) }

func (m *CheckpointReq) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	return r.Err
}

// Shutdown terminates a node.
type Shutdown struct{}

// Kind implements Msg.
func (*Shutdown) Kind() MsgKind { return KindShutdown }

func (m *Shutdown) encode(*wire.Writer)         {}
func (m *Shutdown) decode(r *wire.Reader) error { return r.Err }

// ---------------------------------------------------------------------------
// Controller → worker

// SpawnCommands dispatches concrete commands to a worker. This is the
// non-template path (and the uncached-patch path). In central mode it
// carries one command at a time; in Nimbus mode whole stages are batched.
type SpawnCommands struct {
	// Job scopes the commands: they execute in, and record completions
	// against, the job's namespace on the worker.
	Job  ids.JobID
	Cmds []*command.Command
	// Barrier orders the batch as a unit: its commands activate only after
	// all previously enqueued work of the same job on the worker
	// completes. Patches use it, which is why patch commands need no
	// before sets.
	Barrier bool
}

// Kind implements Msg.
func (*SpawnCommands) Kind() MsgKind { return KindSpawnCommands }

func (m *SpawnCommands) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Bool(m.Barrier)
	w.Uvarint(uint64(len(m.Cmds)))
	for _, c := range m.Cmds {
		c.Encode(w)
	}
}

func (m *SpawnCommands) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Barrier = r.Bool()
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.Cmds = make([]*command.Command, n)
	for i := range m.Cmds {
		m.Cmds[i] = &command.Command{}
		if err := m.Cmds[i].Decode(r); err != nil {
			return err
		}
	}
	return r.Err
}

// InstallTemplate installs a worker template: the worker's slice of a basic
// block with index-based dependencies (paper §4.1, Figure 5b).
type InstallTemplate struct {
	// Job namespaces the installed template: two jobs may install
	// templates with the same name (and, with per-job ID allocators, the
	// same TemplateID) without colliding.
	Job      ids.JobID
	Template ids.TemplateID
	Name     string
	Entries  []command.TemplateEntry
}

// Kind implements Msg.
func (*InstallTemplate) Kind() MsgKind { return KindInstallTemplate }

func (m *InstallTemplate) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.Template))
	w.String(m.Name)
	w.Uvarint(uint64(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].Encode(w)
	}
}

func (m *InstallTemplate) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Template = ids.TemplateID(r.Uvarint())
	m.Name = r.String()
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.Entries = make([]command.TemplateEntry, n)
	for i := range m.Entries {
		if err := m.Entries[i].Decode(r); err != nil {
			return err
		}
	}
	return r.Err
}

// InstantiateTemplate executes an installed worker template: one message
// per worker per block in the steady state (paper §2.2). Edits, if present,
// are applied to the installed template before materialization (paper
// §4.3). DoneWatermark tells the worker that every command with an ID below
// it has been fully accounted for, letting it prune its completion set.
type InstantiateTemplate struct {
	// Job selects the namespace the template was installed under. It is
	// the only multi-tenancy cost on the steady-state fan-out path: one
	// varint per message.
	Job      ids.JobID
	Template ids.TemplateID
	// Instance identifies this instantiation for BlockDone reporting.
	Instance uint64
	// Base is the first CommandID of the instance's contiguous ID block.
	Base ids.CommandID
	// ParamArray is indexed by the entries' ParamSlot values.
	ParamArray []params.Blob
	// Edits are applied (persistently) before materialization.
	Edits []command.Edit
	// DoneWatermark allows pruning the worker's completed-command set.
	DoneWatermark ids.CommandID
}

// Kind implements Msg.
func (*InstantiateTemplate) Kind() MsgKind { return KindInstantiateTemplate }

func (m *InstantiateTemplate) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.Template))
	w.Uvarint(m.Instance)
	w.Uvarint(uint64(m.Base))
	w.Uvarint(uint64(len(m.ParamArray)))
	for _, p := range m.ParamArray {
		w.Bytes(p)
	}
	w.Uvarint(uint64(len(m.Edits)))
	for i := range m.Edits {
		m.Edits[i].Encode(w)
	}
	w.Uvarint(uint64(m.DoneWatermark))
}

func (m *InstantiateTemplate) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Template = ids.TemplateID(r.Uvarint())
	m.Instance = r.Uvarint()
	m.Base = ids.CommandID(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.ParamArray = make([]params.Blob, n)
	for i := range m.ParamArray {
		m.ParamArray[i] = params.Blob(r.BytesCopy())
	}
	ne := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.Edits = make([]command.Edit, ne)
	for i := range m.Edits {
		if err := m.Edits[i].Decode(r); err != nil {
			return err
		}
	}
	m.DoneWatermark = ids.CommandID(r.Uvarint())
	return r.Err
}

// InstallPatch caches a patch (a small block of copy commands that
// satisfies template preconditions) on a worker so later instantiations of
// the same control-flow transition cost one message (paper §4.2).
type InstallPatch struct {
	Job     ids.JobID
	Patch   ids.PatchID
	Entries []command.TemplateEntry
}

// Kind implements Msg.
func (*InstallPatch) Kind() MsgKind { return KindInstallPatch }

func (m *InstallPatch) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.Patch))
	w.Uvarint(uint64(len(m.Entries)))
	for i := range m.Entries {
		m.Entries[i].Encode(w)
	}
}

func (m *InstallPatch) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Patch = ids.PatchID(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.Entries = make([]command.TemplateEntry, n)
	for i := range m.Entries {
		if err := m.Entries[i].Decode(r); err != nil {
			return err
		}
	}
	return r.Err
}

// InstantiatePatch executes a cached patch.
type InstantiatePatch struct {
	Job   ids.JobID
	Patch ids.PatchID
	Base  ids.CommandID
}

// Kind implements Msg.
func (*InstantiatePatch) Kind() MsgKind { return KindInstantiatePatch }

func (m *InstantiatePatch) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.Patch))
	w.Uvarint(uint64(m.Base))
}

func (m *InstantiatePatch) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Patch = ids.PatchID(r.Uvarint())
	m.Base = ids.CommandID(r.Uvarint())
	return r.Err
}

// Halt tells a worker to stop executing one job's work, flush that job's
// queues and acknowledge (fault recovery, paper §4.4). Halts are
// job-scoped: recovery of one failed job must not flush another job's
// in-flight arenas.
type Halt struct {
	Job ids.JobID
	Seq uint64
}

// Kind implements Msg.
func (*Halt) Kind() MsgKind { return KindHalt }

func (m *Halt) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Seq)
}

func (m *Halt) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Seq = r.Uvarint()
	return r.Err
}

// HaltAck acknowledges a Halt.
type HaltAck struct {
	Job    ids.JobID
	Seq    uint64
	Worker ids.WorkerID
}

// Kind implements Msg.
func (*HaltAck) Kind() MsgKind { return KindHaltAck }

func (m *HaltAck) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Seq)
	w.Uvarint(uint64(m.Worker))
}

func (m *HaltAck) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Seq = r.Uvarint()
	m.Worker = ids.WorkerID(r.Uvarint())
	return r.Err
}

// SaveFailed reports a durable Save that errored on a worker
// (worker → controller). It is sent immediately — ahead of the batched
// Complete for the same command on the FIFO control link — so the
// controller learns of the failure before the checkpoint could commit
// and aborts it instead of committing a manifest that references an
// object that was never durably written.
type SaveFailed struct {
	Job     ids.JobID
	Ckpt    uint64
	Logical ids.LogicalID
	Err     string
}

// Kind implements Msg.
func (*SaveFailed) Kind() MsgKind { return KindSaveFailed }

func (m *SaveFailed) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Ckpt)
	w.Uvarint(uint64(m.Logical))
	w.String(m.Err)
}

func (m *SaveFailed) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Ckpt = r.Uvarint()
	m.Logical = ids.LogicalID(r.Uvarint())
	m.Err = r.String()
	return r.Err
}

// Resume lifts one job's Halt.
type Resume struct {
	Job ids.JobID
}

// Kind implements Msg.
func (*Resume) Kind() MsgKind { return KindResume }

func (m *Resume) encode(w *wire.Writer) { w.Uvarint(uint64(m.Job)) }

func (m *Resume) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	return r.Err
}

// ---------------------------------------------------------------------------
// Worker → controller

// Complete reports finished commands. Workers batch completions to keep
// control traffic proportional to progress, not task count; in central
// (Spark-like) mode every command is reported individually because the
// controller dispatches successors itself.
type Complete struct {
	// Job scopes the completions: command IDs are allocated per job, so
	// the controller must route them to the right job's outstanding set.
	Job    ids.JobID
	Worker ids.WorkerID
	IDs    []ids.CommandID
}

// Kind implements Msg.
func (*Complete) Kind() MsgKind { return KindComplete }

func (m *Complete) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.Worker))
	w.Uvarint(uint64(len(m.IDs)))
	for _, id := range m.IDs {
		w.Uvarint(uint64(id))
	}
}

func (m *Complete) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Worker = ids.WorkerID(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.IDs = make([]ids.CommandID, n)
	for i := range m.IDs {
		m.IDs[i] = ids.CommandID(r.Uvarint())
	}
	return r.Err
}

// BlockDone reports that every command of a template instance assigned to
// this worker has completed.
type BlockDone struct {
	Job      ids.JobID
	Worker   ids.WorkerID
	Instance uint64
}

// Kind implements Msg.
func (*BlockDone) Kind() MsgKind { return KindBlockDone }

func (m *BlockDone) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.Worker))
	w.Uvarint(m.Instance)
}

func (m *BlockDone) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Worker = ids.WorkerID(r.Uvarint())
	m.Instance = r.Uvarint()
	return r.Err
}

// Heartbeat carries liveness and load statistics. Missed heartbeats mark a
// worker failed (paper §4.4).
type Heartbeat struct {
	Worker  ids.WorkerID
	Pending int
	Done    uint64
}

// Kind implements Msg.
func (*Heartbeat) Kind() MsgKind { return KindHeartbeat }

func (m *Heartbeat) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Worker))
	w.Uvarint(uint64(m.Pending))
	w.Uvarint(m.Done)
}

func (m *Heartbeat) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	m.Pending = int(r.Uvarint())
	m.Done = r.Uvarint()
	return r.Err
}

// FetchObject asks a worker for a physical object's contents (serving
// driver Gets and checkpoint verification).
type FetchObject struct {
	// Job selects the datastore namespace to read from (object IDs are
	// allocated per job).
	Job    ids.JobID
	Seq    uint64
	Object ids.ObjectID
}

// Kind implements Msg.
func (*FetchObject) Kind() MsgKind { return KindFetchObject }

func (m *FetchObject) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Seq)
	w.Uvarint(uint64(m.Object))
}

func (m *FetchObject) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Seq = r.Uvarint()
	m.Object = ids.ObjectID(r.Uvarint())
	return r.Err
}

// ObjectData answers FetchObject.
type ObjectData struct {
	Seq     uint64
	Object  ids.ObjectID
	Version uint64
	Data    []byte
}

// Kind implements Msg.
func (*ObjectData) Kind() MsgKind { return KindObjectData }

func (m *ObjectData) encode(w *wire.Writer) {
	w.Uvarint(m.Seq)
	w.Uvarint(uint64(m.Object))
	w.Uvarint(m.Version)
	w.Bytes(m.Data)
}

func (m *ObjectData) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	m.Object = ids.ObjectID(r.Uvarint())
	m.Version = r.Uvarint()
	m.Data = r.BytesCopy()
	return r.Err
}

// ---------------------------------------------------------------------------
// Worker ↔ worker (data plane)

// DataPayload pushes object contents to the worker running the matching
// CopyRecv command (paper §3.4: asynchronous push model).
type DataPayload struct {
	// Job routes the payload to the destination command's namespace:
	// command and object IDs are per-job, so the data plane must carry
	// the job alongside them.
	Job        ids.JobID
	DstCommand ids.CommandID
	Object     ids.ObjectID
	Logical    ids.LogicalID
	Version    uint64
	Data       []byte
}

// Kind implements Msg.
func (*DataPayload) Kind() MsgKind { return KindDataPayload }

func (m *DataPayload) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(uint64(m.DstCommand))
	w.Uvarint(uint64(m.Object))
	w.Uvarint(uint64(m.Logical))
	w.Uvarint(m.Version)
	w.Bytes(m.Data)
}

func (m *DataPayload) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.DstCommand = ids.CommandID(r.Uvarint())
	m.Object = ids.ObjectID(r.Uvarint())
	m.Logical = ids.LogicalID(r.Uvarint())
	m.Version = r.Uvarint()
	m.Data = r.BytesCopy()
	return r.Err
}

// DataChunk flag bits.
const (
	// ChunkCompressed marks Raw as flate-compressed; the receiver inflates
	// it before reassembly.
	ChunkCompressed uint8 = 1 << 0
	// ChunkFetch marks a chunked FetchObject reply riding the control
	// connection: Fetch carries the FetchObject sequence number and the
	// controller reassembles the chunks into one ObjectData.
	ChunkFetch uint8 = 1 << 1
)

// DataChunk is one slice of a streamed transfer. Large objects no longer
// travel as monolithic DataPayload frames: the sender slices them into
// fixed-size chunks so the receiver can bound its reassembly memory
// (spilling to disk past a budget) and meter the sender with per-transfer
// credits. Every chunk repeats the routing header — a handful of varints
// against a quarter-megabyte body — so chunks are self-describing and the
// receiver needs no per-transfer setup message.
type DataChunk struct {
	Job ids.JobID
	// Xfer identifies the transfer within its connection (sender-unique).
	Xfer uint64
	// Seq is the chunk's position; chunks are sent and landed in order.
	Seq  uint32
	Last bool
	// Flags carries the Chunk* bits.
	Flags uint8
	// DstCommand/Object/Logical/Version mirror DataPayload's routing for
	// copy-command transfers; Fetch carries the FetchObject Seq for
	// ChunkFetch transfers.
	DstCommand ids.CommandID
	Object     ids.ObjectID
	Logical    ids.LogicalID
	Version    uint64
	Fetch      uint64
	// Total is the transfer's full uncompressed size in bytes; the
	// receiver validates reassembly against it.
	Total uint64
	Raw   []byte
}

// Kind implements Msg.
func (*DataChunk) Kind() MsgKind { return KindDataChunk }

func (m *DataChunk) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Xfer)
	w.Uvarint(uint64(m.Seq))
	w.Bool(m.Last)
	w.Byte(m.Flags)
	w.Uvarint(uint64(m.DstCommand))
	w.Uvarint(uint64(m.Object))
	w.Uvarint(uint64(m.Logical))
	w.Uvarint(m.Version)
	w.Uvarint(m.Fetch)
	w.Uvarint(m.Total)
	w.Bytes(m.Raw)
}

func (m *DataChunk) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Xfer = r.Uvarint()
	m.Seq = uint32(r.Uvarint())
	m.Last = r.Bool()
	m.Flags = r.Byte()
	m.DstCommand = ids.CommandID(r.Uvarint())
	m.Object = ids.ObjectID(r.Uvarint())
	m.Logical = ids.LogicalID(r.Uvarint())
	m.Version = r.Uvarint()
	m.Fetch = r.Uvarint()
	m.Total = r.Uvarint()
	m.Raw = r.BytesCopy()
	return r.Err
}

// DataCredit replenishes a transfer's flow-control window: the receiver
// grants Chunks more chunks as it lands (or spills) previous ones, keeping
// the amount of data in flight toward a slow receiver bounded.
type DataCredit struct {
	Xfer   uint64
	Chunks uint32
}

// Kind implements Msg.
func (*DataCredit) Kind() MsgKind { return KindDataCredit }

func (m *DataCredit) encode(w *wire.Writer) {
	w.Uvarint(m.Xfer)
	w.Uvarint(uint64(m.Chunks))
}

func (m *DataCredit) decode(r *wire.Reader) error {
	m.Xfer = r.Uvarint()
	m.Chunks = uint32(r.Uvarint())
	return r.Err
}

// XferAbort cancels a transfer (receiver → sender): the receiver hit a
// protocol violation (sequence gap, corrupt chunk, size overflow) or lost
// interest (job teardown). The sender drops the transfer's unsent chunks.
type XferAbort struct {
	Xfer   uint64
	Reason string
}

// Kind implements Msg.
func (*XferAbort) Kind() MsgKind { return KindXferAbort }

func (m *XferAbort) encode(w *wire.Writer) {
	w.Uvarint(m.Xfer)
	w.String(m.Reason)
}

func (m *XferAbort) decode(r *wire.Reader) error {
	m.Xfer = r.Uvarint()
	m.Reason = r.String()
	return r.Err
}

// ErrorMsg reports a fatal error to the peer.
type ErrorMsg struct {
	Text string
}

// Kind implements Msg.
func (*ErrorMsg) Kind() MsgKind { return KindErrorMsg }

func (m *ErrorMsg) encode(w *wire.Writer) { w.String(m.Text) }

func (m *ErrorMsg) decode(r *wire.Reader) error {
	m.Text = r.String()
	return r.Err
}

// ---------------------------------------------------------------------------
// Controller failover: replication, lease and reconnect reconcile
//
// A hot standby attaches to the primary over the ordinary control listen
// address (ReplAttach), receives one full ReplSnapshot, then tails the
// primary's applied driver ops (ReplOp, acked with ReplAck so the primary
// can bound the replication window), checkpoint commits (ReplCkpt), job
// admissions/teardowns (ReplJobStart/ReplJobEnd) and lease renewals
// (LeaseRenew). After a takeover, workers re-present their identity with
// WorkerReconnect and drivers re-bind their job with DriverReattach /
// ReattachAck.

// ReplAttach is the first message a hot-standby controller sends on its
// replication connection. The primary answers with a ReplSnapshot and then
// streams incremental state.
type ReplAttach struct{}

// Kind implements Msg.
func (*ReplAttach) Kind() MsgKind { return KindReplAttach }

func (m *ReplAttach) encode(*wire.Writer)         {}
func (m *ReplAttach) decode(r *wire.Reader) error { return r.Err }

// ManifestEntry names one logical object's durably saved version inside a
// replicated checkpoint manifest.
type ManifestEntry struct {
	Logical ids.LogicalID
	Version uint64
}

// ReplJob is one job's replicated shadow inside a ReplSnapshot: everything
// a standby needs to rebuild the job after a takeover. Defs carries the
// job's full definition history (variables and template recordings, which
// checkpoints never truncate); Oplog carries the raw ops applied since the
// last committed checkpoint; NextCmd/NextObj are allocator high-water
// marks so a promoted controller never re-issues an ID that live workers
// may still hold state under.
type ReplJob struct {
	Job    ids.JobID
	Name   string
	Weight int
	// Tenant preserves the job's fair-share tenant across a failover.
	Tenant  string
	Applied uint64
	Ckpt      uint64
	CkptCount uint64
	Manifest  []ManifestEntry
	Defs      [][]byte
	Oplog     [][]byte
	NextCmd   uint64
	NextObj   uint64
}

func (jb *ReplJob) encode(w *wire.Writer) {
	w.Uvarint(uint64(jb.Job))
	w.String(jb.Name)
	w.Uvarint(uint64(jb.Weight))
	w.String(jb.Tenant)
	w.Uvarint(jb.Applied)
	w.Uvarint(jb.Ckpt)
	w.Uvarint(jb.CkptCount)
	w.Uvarint(uint64(len(jb.Manifest)))
	for _, e := range jb.Manifest {
		w.Uvarint(uint64(e.Logical))
		w.Uvarint(e.Version)
	}
	w.Uvarint(uint64(len(jb.Defs)))
	for _, b := range jb.Defs {
		w.Bytes(b)
	}
	w.Uvarint(uint64(len(jb.Oplog)))
	for _, b := range jb.Oplog {
		w.Bytes(b)
	}
	w.Uvarint(jb.NextCmd)
	w.Uvarint(jb.NextObj)
}

func (jb *ReplJob) decode(r *wire.Reader) error {
	jb.Job = ids.JobID(r.Uvarint())
	jb.Name = r.String()
	jb.Weight = int(r.Uvarint())
	jb.Tenant = r.String()
	jb.Applied = r.Uvarint()
	jb.Ckpt = r.Uvarint()
	jb.CkptCount = r.Uvarint()
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	if n > 0 {
		jb.Manifest = make([]ManifestEntry, n)
		for i := range jb.Manifest {
			jb.Manifest[i].Logical = ids.LogicalID(r.Uvarint())
			jb.Manifest[i].Version = r.Uvarint()
		}
	}
	nd := r.Count()
	if r.Err != nil {
		return r.Err
	}
	if nd > 0 {
		jb.Defs = make([][]byte, nd)
		for i := range jb.Defs {
			jb.Defs[i] = r.BytesCopy()
		}
	}
	no := r.Count()
	if r.Err != nil {
		return r.Err
	}
	if no > 0 {
		jb.Oplog = make([][]byte, no)
		for i := range jb.Oplog {
			jb.Oplog[i] = r.BytesCopy()
		}
	}
	jb.NextCmd = r.Uvarint()
	jb.NextObj = r.Uvarint()
	return r.Err
}

// ReplSnapshot is the primary's full state transfer to a freshly attached
// standby: the admitted jobs' shadows plus the identity allocators and the
// live worker roster (the set a promoted controller waits to see
// reconnect before it starts takeover recovery).
type ReplSnapshot struct {
	JobSeq     uint32
	NextWorker uint32
	Workers    []ids.WorkerID
	Jobs       []*ReplJob
}

// Kind implements Msg.
func (*ReplSnapshot) Kind() MsgKind { return KindReplSnapshot }

func (m *ReplSnapshot) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.JobSeq))
	w.Uvarint(uint64(m.NextWorker))
	w.Uvarint(uint64(len(m.Workers)))
	for _, id := range m.Workers {
		w.Uvarint(uint64(id))
	}
	w.Uvarint(uint64(len(m.Jobs)))
	for _, jb := range m.Jobs {
		jb.encode(w)
	}
}

func (m *ReplSnapshot) decode(r *wire.Reader) error {
	m.JobSeq = uint32(r.Uvarint())
	m.NextWorker = uint32(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	if n > 0 {
		m.Workers = make([]ids.WorkerID, n)
		for i := range m.Workers {
			m.Workers[i] = ids.WorkerID(r.Uvarint())
		}
	}
	nj := r.Count()
	if r.Err != nil {
		return r.Err
	}
	if nj > 0 {
		m.Jobs = make([]*ReplJob, nj)
		for i := range m.Jobs {
			m.Jobs[i] = &ReplJob{}
			if err := m.Jobs[i].decode(r); err != nil {
				return err
			}
		}
	}
	return r.Err
}

// ReplOp streams one applied driver op to the standby. Index is the job's
// cumulative applied-op count (the same counter ReattachAck reports to a
// reattaching driver); Raw is the op's marshaled frame; NextCmd/NextObj
// are the job's allocator high-water marks after applying the op.
type ReplOp struct {
	Job     ids.JobID
	Index   uint64
	NextCmd uint64
	NextObj uint64
	Raw     []byte
}

// Kind implements Msg.
func (*ReplOp) Kind() MsgKind { return KindReplOp }

func (m *ReplOp) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Index)
	w.Uvarint(m.NextCmd)
	w.Uvarint(m.NextObj)
	w.Bytes(m.Raw)
}

func (m *ReplOp) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Index = r.Uvarint()
	m.NextCmd = r.Uvarint()
	m.NextObj = r.Uvarint()
	m.Raw = r.BytesCopy()
	return r.Err
}

// ReplAck acknowledges a ReplOp. The primary counts unacked ops and
// queues further driver ops behind the replication window, keeping the
// standby within one applied-op of the primary.
type ReplAck struct {
	Job   ids.JobID
	Index uint64
}

// Kind implements Msg.
func (*ReplAck) Kind() MsgKind { return KindReplAck }

func (m *ReplAck) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Index)
}

func (m *ReplAck) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Index = r.Uvarint()
	return r.Err
}

// ReplCkpt replicates a committed checkpoint: the standby adopts the
// manifest and drops the first Drop entries of its shadow oplog (the
// prefix the checkpoint subsumes), mirroring the primary's truncation.
type ReplCkpt struct {
	Job      ids.JobID
	Ckpt     uint64
	Count    uint64
	Drop     uint64
	Manifest []ManifestEntry
}

// Kind implements Msg.
func (*ReplCkpt) Kind() MsgKind { return KindReplCkpt }

func (m *ReplCkpt) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Ckpt)
	w.Uvarint(m.Count)
	w.Uvarint(m.Drop)
	w.Uvarint(uint64(len(m.Manifest)))
	for _, e := range m.Manifest {
		w.Uvarint(uint64(e.Logical))
		w.Uvarint(e.Version)
	}
}

func (m *ReplCkpt) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Ckpt = r.Uvarint()
	m.Count = r.Uvarint()
	m.Drop = r.Uvarint()
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	if n > 0 {
		m.Manifest = make([]ManifestEntry, n)
		for i := range m.Manifest {
			m.Manifest[i].Logical = ids.LogicalID(r.Uvarint())
			m.Manifest[i].Version = r.Uvarint()
		}
	}
	return r.Err
}

// ReplJobStart replicates a job admission that happened after the
// snapshot.
type ReplJobStart struct {
	Job    ids.JobID
	Name   string
	Weight int
	// Tenant preserves the job's fair-share tenant across a failover.
	Tenant string
}

// Kind implements Msg.
func (*ReplJobStart) Kind() MsgKind { return KindReplJobStart }

func (m *ReplJobStart) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.String(m.Name)
	w.Uvarint(uint64(m.Weight))
	w.String(m.Tenant)
}

func (m *ReplJobStart) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Name = r.String()
	m.Weight = int(r.Uvarint())
	m.Tenant = r.String()
	return r.Err
}

// ReplJobEnd replicates a job teardown: the standby drops the shadow.
type ReplJobEnd struct {
	Job ids.JobID
}

// Kind implements Msg.
func (*ReplJobEnd) Kind() MsgKind { return KindReplJobEnd }

func (m *ReplJobEnd) encode(w *wire.Writer) { w.Uvarint(uint64(m.Job)) }

func (m *ReplJobEnd) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	return r.Err
}

// LeaseRenew is the primary's leadership lease heartbeat on the
// replication stream (the transport-level lease service). The standby
// promotes itself once TTLMillis elapses without a renewal and the
// replication connection is gone. Epoch increases across takeovers so a
// deposed primary's stale renewals are recognizable.
type LeaseRenew struct {
	Epoch     uint64
	TTLMillis uint64
}

// Kind implements Msg.
func (*LeaseRenew) Kind() MsgKind { return KindLeaseRenew }

func (m *LeaseRenew) encode(w *wire.Writer) {
	w.Uvarint(m.Epoch)
	w.Uvarint(m.TTLMillis)
}

func (m *LeaseRenew) decode(r *wire.Reader) error {
	m.Epoch = r.Uvarint()
	m.TTLMillis = r.Uvarint()
	return r.Err
}

// WorkerReconnect re-registers a worker that survived a controller
// outage: it presents its previously assigned identity so the promoted
// controller can match it against the replicated roster and reconcile
// instead of treating it as new capacity. The controller answers with the
// usual RegisterWorkerAck echoing the preserved ID.
type WorkerReconnect struct {
	Worker   ids.WorkerID
	DataAddr string
	Slots    int
}

// Kind implements Msg.
func (*WorkerReconnect) Kind() MsgKind { return KindWorkerReconnect }

func (m *WorkerReconnect) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Worker))
	w.String(m.DataAddr)
	w.Uvarint(uint64(m.Slots))
}

func (m *WorkerReconnect) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	m.DataAddr = r.String()
	m.Slots = int(r.Uvarint())
	return r.Err
}

// DriverReattach re-binds a driver to its job after a controller switch.
// Name must match the job's admitted name (a cheap identity check).
type DriverReattach struct {
	Job    ids.JobID
	Name   string
	Weight int
}

// Kind implements Msg.
func (*DriverReattach) Kind() MsgKind { return KindDriverReattach }

func (m *DriverReattach) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.String(m.Name)
	w.Uvarint(uint64(m.Weight))
}

func (m *DriverReattach) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Name = r.String()
	m.Weight = int(r.Uvarint())
	return r.Err
}

// ReattachAck answers a DriverReattach. Applied is the job's cumulative
// applied-op count: the driver re-sends every journaled op with a higher
// index, so the op stream resumes exactly where the controller's state
// ends — nothing lost, nothing applied twice.
type ReattachAck struct {
	Job     ids.JobID
	Applied uint64
	Ok      bool
	Err     string
}

// Kind implements Msg.
func (*ReattachAck) Kind() MsgKind { return KindReattachAck }

func (m *ReattachAck) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Job))
	w.Uvarint(m.Applied)
	w.Bool(m.Ok)
	w.String(m.Err)
}

func (m *ReattachAck) decode(r *wire.Reader) error {
	m.Job = ids.JobID(r.Uvarint())
	m.Applied = r.Uvarint()
	m.Ok = r.Bool()
	m.Err = r.String()
	return r.Err
}

// ---------------------------------------------------------------------------
// Gateway front door: session multiplexing and bounded admission

// GatewayHello opens a shared gateway connection. Many lightweight driver
// sessions are multiplexed over it as MuxData envelopes; the connection
// itself carries no job identity.
type GatewayHello struct{}

// Kind implements Msg.
func (*GatewayHello) Kind() MsgKind { return KindGatewayHello }

func (m *GatewayHello) encode(w *wire.Writer) {}

func (m *GatewayHello) decode(r *wire.Reader) error { return r.Err }

// MuxData carries one session's traffic across a shared gateway
// connection. Raw is a standard frame — a single message or a KindBatch
// batch — decoded with ForEachMsg; the inner protocol is identical to a
// dedicated driver connection's, so the session handshake
// (RegisterDriver/RegisterDriverAck) and every later op ride inside
// envelopes unchanged.
//
// Seq is a per-connection, per-direction envelope counter starting at 1.
// A receiver that observes a gap or disorder treats the whole shared
// connection as corrupt and closes it: a dropped or reordered wire frame
// becomes a connection error (failing only that connection's sessions)
// instead of a silently lost op that would hang a session forever.
type MuxData struct {
	Session uint64
	Seq     uint64
	Raw     []byte
}

// Kind implements Msg.
func (*MuxData) Kind() MsgKind { return KindMuxData }

func (m *MuxData) encode(w *wire.Writer) {
	w.Uvarint(m.Session)
	w.Uvarint(m.Seq)
	w.Bytes(m.Raw)
}

func (m *MuxData) decode(r *wire.Reader) error {
	m.Session = r.Uvarint()
	m.Seq = r.Uvarint()
	m.Raw = r.BytesCopy()
	return r.Err
}

// SessionClose closes one session on a shared gateway connection — the
// per-session equivalent of a dedicated connection closing. Either side
// may send it; the controller tears the session's job down as if its
// connection dropped, and the driver fails the session's pending futures.
type SessionClose struct {
	Session uint64
}

// Kind implements Msg.
func (*SessionClose) Kind() MsgKind { return KindSessionClose }

func (m *SessionClose) encode(w *wire.Writer) { w.Uvarint(m.Session) }

func (m *SessionClose) decode(r *wire.Reader) error {
	m.Session = r.Uvarint()
	return r.Err
}

// Admission rejection codes.
const (
	// RejectQueueFull: the bounded admission queue is at capacity.
	RejectQueueFull uint8 = 1 + iota
	// RejectMaxJobs: the controller is at its MaxJobs cap and the
	// admission queue is disabled.
	RejectMaxJobs
	// RejectRateLimited: the tenant exceeded its admission rate limit.
	RejectRateLimited
	// RejectShuttingDown: the controller is draining.
	RejectShuttingDown
)

// AdmissionReject answers a RegisterDriver the controller will not admit:
// the queue is full, the MaxJobs cap is reached, or the tenant is over its
// rate limit. It replaces block-forever admission — the driver surfaces a
// typed error with the retry hint instead of hanging.
type AdmissionReject struct {
	Code             uint8
	RetryAfterMillis uint64
	Err              string
}

// Kind implements Msg.
func (*AdmissionReject) Kind() MsgKind { return KindAdmissionReject }

func (m *AdmissionReject) encode(w *wire.Writer) {
	w.Byte(m.Code)
	w.Uvarint(m.RetryAfterMillis)
	w.String(m.Err)
}

func (m *AdmissionReject) decode(r *wire.Reader) error {
	m.Code = r.Byte()
	m.RetryAfterMillis = r.Uvarint()
	m.Err = r.String()
	return r.Err
}

// ---------------------------------------------------------------------------
// Elastic fleet lifecycle (announce → admit → warm → ready; drain →
// decommission). A joining worker announces itself instead of registering:
// the controller admits it outside the active set, streams every live job's
// active templates at it, and only enters it into placement once the worker
// acknowledges the warm marker — so a new worker never takes traffic with a
// cold template cache.

// FleetAnnounce is the first message an elastically-joining worker sends.
// Unlike RegisterWorker it does not enter the worker into the active set:
// the controller replies with FleetAdmit and runs the warm protocol first.
type FleetAnnounce struct {
	DataAddr string
	Slots    int
}

// Kind implements Msg.
func (*FleetAnnounce) Kind() MsgKind { return KindFleetAnnounce }

func (m *FleetAnnounce) encode(w *wire.Writer) {
	w.String(m.DataAddr)
	w.Uvarint(uint64(m.Slots))
}

func (m *FleetAnnounce) decode(r *wire.Reader) error {
	m.DataAddr = r.String()
	m.Slots = int(r.Uvarint())
	return r.Err
}

// FleetAdmit assigns an announcing worker its ID and peer map. The worker
// is admitted but not yet active: template installs follow, then a
// FleetWarm marker.
type FleetAdmit struct {
	Worker ids.WorkerID
	Peers  map[ids.WorkerID]string
	Eager  bool
}

// Kind implements Msg.
func (*FleetAdmit) Kind() MsgKind { return KindFleetAdmit }

func (m *FleetAdmit) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Worker))
	w.Uvarint(uint64(len(m.Peers)))
	for id, addr := range m.Peers {
		w.Uvarint(uint64(id))
		w.String(addr)
	}
	w.Bool(m.Eager)
}

func (m *FleetAdmit) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	n := r.Count()
	if r.Err != nil {
		return r.Err
	}
	m.Peers = make(map[ids.WorkerID]string, n)
	for i := 0; i < n; i++ {
		id := ids.WorkerID(r.Uvarint())
		m.Peers[id] = r.String()
	}
	m.Eager = r.Bool()
	return r.Err
}

// FleetWarm is the controller's warm marker: it follows the batch of
// template installs for a joining worker on the FIFO control channel, so
// when the worker sees it every preceding install has been processed and
// compiled. Seq guards against a stale ack after the controller re-plans
// (a build or migration committed mid-warm).
type FleetWarm struct {
	Seq uint64
}

// Kind implements Msg.
func (*FleetWarm) Kind() MsgKind { return KindFleetWarm }

func (m *FleetWarm) encode(w *wire.Writer) { w.Uvarint(m.Seq) }

func (m *FleetWarm) decode(r *wire.Reader) error {
	m.Seq = r.Uvarint()
	return r.Err
}

// FleetWarmAck is the worker's reply to FleetWarm: all installs up to Seq
// are resident and compiled.
type FleetWarmAck struct {
	Worker ids.WorkerID
	Seq    uint64
}

// Kind implements Msg.
func (*FleetWarmAck) Kind() MsgKind { return KindFleetWarmAck }

func (m *FleetWarmAck) encode(w *wire.Writer) {
	w.Uvarint(uint64(m.Worker))
	w.Uvarint(m.Seq)
}

func (m *FleetWarmAck) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	m.Seq = r.Uvarint()
	return r.Err
}

// FleetReady tells a warmed worker it has entered the active set and will
// start receiving traffic.
type FleetReady struct {
	Worker ids.WorkerID
}

// Kind implements Msg.
func (*FleetReady) Kind() MsgKind { return KindFleetReady }

func (m *FleetReady) encode(w *wire.Writer) { w.Uvarint(uint64(m.Worker)) }

func (m *FleetReady) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	return r.Err
}

// FleetDrain tells a worker it is leaving the fleet: it keeps serving
// in-flight work but the controller has stopped placing new partitions on
// it. FleetDecommission follows once the worker is quiet.
type FleetDrain struct {
	Worker ids.WorkerID
}

// Kind implements Msg.
func (*FleetDrain) Kind() MsgKind { return KindFleetDrain }

func (m *FleetDrain) encode(w *wire.Writer) { w.Uvarint(uint64(m.Worker)) }

func (m *FleetDrain) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	return r.Err
}

// FleetDecommission releases a drained worker: no outstanding commands or
// live data remain on it, and it may shut down.
type FleetDecommission struct {
	Worker ids.WorkerID
}

// Kind implements Msg.
func (*FleetDecommission) Kind() MsgKind { return KindFleetDecommission }

func (m *FleetDecommission) encode(w *wire.Writer) { w.Uvarint(uint64(m.Worker)) }

func (m *FleetDecommission) decode(r *wire.Reader) error {
	m.Worker = ids.WorkerID(r.Uvarint())
	return r.Err
}
