package proto

import (
	"fmt"
	"sync"

	"nimbus/internal/wire"
)

// This file implements the control-plane fast path's two codec pieces
// (DESIGN.md §"Control-plane fast path"):
//
//   - a sync.Pool-backed encode-buffer pool (GetBuf/PutBuf) so steady-state
//     frame encoding allocates nothing, and
//   - the Batch frame: one KindBatch byte, a message count, and the
//     concatenated kind-prefixed messages. The controller's per-worker send
//     coalescer uses it to turn an InstantiateBlock fan-out into exactly
//     one transport frame per worker.
//
// Messages are self-delimiting (every decoder consumes exactly the bytes
// its encoder produced), so a batch needs no per-message length prefixes.

// maxPooledBuf caps the capacity of buffers accepted back into the pool.
// Data-plane payloads can be megabytes; pinning them in the pool would
// trade allocation rate for resident memory. The cap leaves headroom over
// the default data-plane chunk size (256 KiB) so a marshaled DataChunk
// frame — chunk body plus a few dozen header bytes — still recycles.
const maxPooledBuf = 1<<18 + 1024

// pooledBuf wraps a byte slice so pool round trips move only pointers.
// Spent headers (B == nil) park in hdrPool, so neither GetBuf nor PutBuf
// allocates once both pools are warm.
type pooledBuf struct{ b []byte }

var bufPool = sync.Pool{New: func() any { return &pooledBuf{b: make([]byte, 0, 1024)} }}
var hdrPool = sync.Pool{New: func() any { return new(pooledBuf) }}

// writerPool recycles wire.Writers for MarshalAppend/AppendBatch: encode is
// an interface method, so a stack-allocated Writer would escape.
var writerPool = sync.Pool{New: func() any { return new(wire.Writer) }}

func getWriter(buf []byte) *wire.Writer {
	w := writerPool.Get().(*wire.Writer)
	w.Buf = buf
	return w
}

// putWriter detaches and returns the writer's buffer, recycling the writer.
func putWriter(w *wire.Writer) []byte {
	buf := w.Buf
	w.Buf = nil
	writerPool.Put(w)
	return buf
}

// GetBuf returns an empty encode buffer from the pool. Pass it to
// MarshalAppend/AppendBatch and release it with PutBuf — or hand it to a
// transport via SendOwned, in which case the receiver releases it.
func GetBuf() []byte {
	h := bufPool.Get().(*pooledBuf)
	b := h.b[:0]
	h.b = nil
	hdrPool.Put(h)
	return b
}

// PutBuf returns a buffer to the pool. The caller must not use b after.
// Oversized buffers are dropped so payload-sized frames do not pin memory.
func PutBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledBuf {
		return
	}
	h := hdrPool.Get().(*pooledBuf)
	h.b = b
	bufPool.Put(h)
}

// AppendBatch encodes msgs as a single batch frame onto buf and returns
// the extended slice. A one-message batch is encoded as the bare message —
// the frame tax is only paid when there is something to coalesce. Decoders
// must therefore accept both forms; ForEachMsg does.
func AppendBatch(buf []byte, msgs []Msg) []byte {
	if len(msgs) == 1 {
		return MarshalAppend(buf, msgs[0])
	}
	w := getWriter(buf)
	w.Byte(byte(KindBatch))
	w.Uvarint(uint64(len(msgs)))
	for _, m := range msgs {
		w.Byte(byte(m.Kind()))
		m.encode(w)
	}
	return putWriter(w)
}

// ForEachMsg decodes a received frame — either a single message or a batch
// — invoking fn for each message in order. Decoded messages do not alias b,
// so the caller may recycle b (PutBuf) once ForEachMsg returns. A decode
// error aborts the iteration; fn errors propagate unchanged.
func ForEachMsg(b []byte, fn func(Msg) error) error {
	r := wire.NewReader(b)
	kind := MsgKind(r.Byte())
	if r.Err != nil {
		return r.Err
	}
	if kind != KindBatch {
		m, err := unmarshalBody(kind, r)
		if err != nil {
			return err
		}
		return fn(m)
	}
	n := r.Count()
	if r.Err != nil {
		return fmt.Errorf("proto: batch count: %w", r.Err)
	}
	if n == 0 {
		// No sender coalesces zero messages (a one-message batch is the
		// bare message); an empty batch is a malformed frame, and
		// rejecting it keeps the invariant that every accepted frame
		// yields at least one message.
		return fmt.Errorf("proto: empty batch frame")
	}
	for i := 0; i < n; i++ {
		k := MsgKind(r.Byte())
		if r.Err != nil {
			return fmt.Errorf("proto: batch message %d/%d: %w", i, n, r.Err)
		}
		m, err := unmarshalBody(k, r)
		if err != nil {
			return fmt.Errorf("proto: batch message %d/%d: %w", i, n, err)
		}
		if err := fn(m); err != nil {
			return err
		}
	}
	if r.Remaining() != 0 {
		return fmt.Errorf("proto: batch frame has %d trailing bytes", r.Remaining())
	}
	return nil
}

// unmarshalBody decodes one message body of the given kind from r.
func unmarshalBody(kind MsgKind, r *wire.Reader) (Msg, error) {
	m := newMsg(kind)
	if m == nil {
		return nil, fmt.Errorf("proto: unknown message kind %d", kind)
	}
	if err := m.decode(r); err != nil {
		return nil, fmt.Errorf("proto: decoding %s: %w", kind, err)
	}
	return m, nil
}
