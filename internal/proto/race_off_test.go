//go:build !race

package proto

// raceEnabled reports whether this build runs under the race detector.
const raceEnabled = false
