package proto

import (
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"nimbus/internal/wire"
)

// TestBatchRoundTrip coalesces one instance of every message kind into a
// single batch frame and verifies order and fidelity on decode.
func TestBatchRoundTrip(t *testing.T) {
	msgs := everyMessage()
	frame := AppendBatch(nil, msgs)
	if MsgKind(frame[0]) != KindBatch {
		t.Fatalf("frame kind = %d, want KindBatch", frame[0])
	}
	var got []Msg
	if err := ForEachMsg(frame, func(m Msg) error {
		got = append(got, m)
		return nil
	}); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(msgs) {
		t.Fatalf("decoded %d messages, want %d", len(got), len(msgs))
	}
	for i := range msgs {
		if !reflect.DeepEqual(msgs[i], got[i]) {
			t.Errorf("message %d (%s) mismatch:\n got %#v\nwant %#v",
				i, msgs[i].Kind(), got[i], msgs[i])
		}
	}
}

// TestBatchSingleMessageIsBare verifies the one-message optimization: a
// batch of one is encoded as the bare message (no frame tax) and still
// decodes through ForEachMsg.
func TestBatchSingleMessageIsBare(t *testing.T) {
	m := &Heartbeat{Worker: 3, Pending: 1, Done: 42}
	frame := AppendBatch(nil, []Msg{m})
	if !reflect.DeepEqual(frame, Marshal(m)) {
		t.Fatalf("one-message batch = %x, want bare marshal %x", frame, Marshal(m))
	}
	n := 0
	if err := ForEachMsg(frame, func(got Msg) error {
		n++
		if !reflect.DeepEqual(got, m) {
			t.Errorf("got %#v, want %#v", got, m)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("decoded %d messages, want 1", n)
	}
}

// TestBatchTruncated decodes every truncation of a batch frame: each must
// return an error or a clean prefix, never panic, and never silently
// deliver a partial final message.
func TestBatchTruncated(t *testing.T) {
	msgs := []Msg{
		&InstallTemplate{Template: 1, Name: "blk"},
		&InstantiateTemplate{Template: 1, Instance: 2, Base: 1000, DoneWatermark: 900},
		&InstantiatePatch{Patch: 3, Base: 2000},
	}
	frame := AppendBatch(nil, msgs)
	for cut := 0; cut < len(frame); cut++ {
		err := ForEachMsg(frame[:cut], func(Msg) error { return nil })
		if err == nil {
			t.Errorf("truncation at %d/%d decoded cleanly", cut, len(frame))
		}
	}
}

// TestBatchHostileCounts feeds batch frames with oversized or corrupt
// counts: the count validation must reject them before any allocation
// proportional to the claimed count.
func TestBatchHostileCounts(t *testing.T) {
	var w wire.Writer
	w.Byte(byte(KindBatch))
	w.Uvarint(1 << 40) // claims a trillion messages, carries none
	if err := ForEachMsg(w.Buf, func(Msg) error { return nil }); err == nil {
		t.Fatal("oversized count decoded cleanly")
	}

	// Count larger than the actual message tail.
	w.Buf = w.Buf[:0]
	w.Byte(byte(KindBatch))
	w.Uvarint(3)
	w.Buf = MarshalAppend(w.Buf, &Barrier{Seq: 1})
	if err := ForEachMsg(w.Buf, func(Msg) error { return nil }); err == nil {
		t.Fatal("count exceeding payload decoded cleanly")
	}

	// Trailing garbage after the declared count.
	w.Buf = w.Buf[:0]
	w.Byte(byte(KindBatch))
	w.Uvarint(1)
	w.Buf = MarshalAppend(w.Buf, &Barrier{Seq: 1})
	w.Byte(0xEE)
	if err := ForEachMsg(w.Buf, func(Msg) error { return nil }); err == nil {
		t.Fatal("trailing bytes after batch decoded cleanly")
	}

	// A nested batch kind inside a batch is not a message.
	w.Buf = w.Buf[:0]
	w.Byte(byte(KindBatch))
	w.Uvarint(1)
	w.Byte(byte(KindBatch))
	if err := ForEachMsg(w.Buf, func(Msg) error { return nil }); err == nil {
		t.Fatal("nested batch decoded cleanly")
	}
}

// TestForEachMsgNeverPanics fuzzes the frame decoder the same way
// TestUnmarshalNeverPanics fuzzes the message decoder.
func TestForEachMsgNeverPanics(t *testing.T) {
	f := func(b []byte) bool {
		defer func() {
			if r := recover(); r != nil {
				t.Errorf("panic on %x: %v", b, r)
			}
		}()
		_ = ForEachMsg(b, func(Msg) error { return nil })
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// TestBufPool exercises the Get/Put cycle and the oversize drop.
func TestBufPool(t *testing.T) {
	b := GetBuf()
	if len(b) != 0 {
		t.Fatalf("GetBuf returned %d bytes of content", len(b))
	}
	b = append(b, 1, 2, 3)
	PutBuf(b)
	// Oversized buffers must be dropped, not pooled.
	PutBuf(make([]byte, 0, maxPooledBuf+1))
	// Recycling a buffer we do not own again would corrupt the pool; the
	// API contract (not the implementation) prevents that, so just verify
	// a fresh Get is usable.
	c := GetBuf()
	c = MarshalAppend(c, &Barrier{Seq: 7})
	if _, err := Unmarshal(c); err != nil {
		t.Fatalf("pooled buffer round trip: %v", err)
	}
	PutBuf(c)
}

// TestMarshalSteadyStateZeroAlloc is the regression guard for the pooled
// fast path: re-encoding the steady-state instantiation message into a
// pooled buffer must not allocate.
func TestMarshalSteadyStateZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("race-mode sync.Pool randomly drops puts; zero-alloc is unverifiable")
	}
	msg := steadyStateInstantiate()
	// Warm the buffer and header pools.
	for i := 0; i < 64; i++ {
		b := GetBuf()
		b = MarshalAppend(b, msg)
		PutBuf(b)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		b := GetBuf()
		b = MarshalAppend(b, msg)
		PutBuf(b)
	})
	if allocs != 0 {
		t.Fatalf("steady-state marshal allocates %.1f times per op, want 0", allocs)
	}
}

// TestMarshalSteadyStatePooledCorrectness is the race-safe companion to
// TestMarshalSteadyStateZeroAlloc: the alloc assertion above is meaningless
// under -race (sync.Pool randomly drops puts there), but the pooled
// GetBuf/MarshalAppend/PutBuf cycle itself must still produce faithful
// frames, including when buffers are recycled across goroutines. This
// variant runs everywhere, so the codec fast path is exercised under the
// race detector too.
func TestMarshalSteadyStatePooledCorrectness(t *testing.T) {
	want := steadyStateInstantiate()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ref := Marshal(want)
			for i := 0; i < 500; i++ {
				b := GetBuf()
				b = MarshalAppend(b, want)
				if !reflect.DeepEqual(b, ref) {
					t.Errorf("pooled marshal produced %x, want %x", b, ref)
				} else if got, err := Unmarshal(b); err != nil {
					t.Errorf("pooled marshal round trip: %v", err)
				} else if got.(*InstantiateTemplate).Base != want.Base {
					t.Errorf("round trip Base = %d, want %d", got.(*InstantiateTemplate).Base, want.Base)
				}
				PutBuf(b)
			}
		}()
	}
	wg.Wait()
}

// steadyStateInstantiate is the message the controller sends each worker on
// every steady-state block instantiation (no edits, cached parameters).
func steadyStateInstantiate() *InstantiateTemplate {
	return &InstantiateTemplate{
		Template:      7,
		Instance:      941,
		Base:          1 << 40,
		DoneWatermark: 1<<40 - 8101,
	}
}
