// Package fleet implements load-based autoscaling for an elastic worker
// fleet. It is deliberately mechanism-free: the controller exposes load
// samples, a Policy maps a sample to a desired fleet size, and a
// Provisioner launches or drains workers. The Autoscaler in between adds
// the operational damping — min/max bounds, a hysteresis deadband, a
// cooldown after every action, and a hold while any lifecycle transition
// (warm or drain) is still in flight — so a noisy load signal cannot
// thrash the fleet. The package imports nothing from the control plane;
// the cluster harness (and a real deployment) adapts both ends.
package fleet

import (
	"sync"
	"time"
)

// Sample is one observation of fleet load, taken on the controller's
// event loop so all fields are mutually consistent.
type Sample struct {
	// Workers is the number of active (schedulable) workers.
	Workers int
	// Warming and Draining count lifecycle transitions in flight.
	Warming  int
	Draining int
	// Jobs is the number of live jobs.
	Jobs int
	// Slots is the total executor concurrency across active workers.
	Slots int
	// Pending is the total unfinished commands across active workers, as
	// last reported by heartbeats.
	Pending int
}

// Policy maps an observed load sample to a desired fleet size. The
// Autoscaler clamps and damps the result; policies should just state the
// ideal.
type Policy interface {
	Desired(s Sample) int
}

// TargetPending sizes the fleet so each active worker carries about
// PerWorker pending commands. It never proposes below one worker; the
// Autoscaler's Min bound raises the floor further.
type TargetPending struct {
	// PerWorker is the pending-command load one worker should carry
	// (default 8).
	PerWorker int
}

// Desired implements Policy.
func (p TargetPending) Desired(s Sample) int {
	per := p.PerWorker
	if per <= 0 {
		per = 8
	}
	n := (s.Pending + per - 1) / per
	if n < 1 {
		n = 1
	}
	return n
}

// PolicyFunc adapts a plain function to the Policy interface.
type PolicyFunc func(s Sample) int

// Desired implements Policy.
func (f PolicyFunc) Desired(s Sample) int { return f(s) }

// Provisioner launches and retires workers. Launch starts n fresh
// workers joining through the fleet lifecycle; Drain retires n workers
// (the implementation picks victims — the controller drains
// newest-first). Both are called from the autoscaler's loop goroutine.
type Provisioner interface {
	Launch(n int) error
	Drain(n int) error
}

// Decision explains one Step outcome, for logs and tests.
type Decision struct {
	Sample   Sample
	Desired  int // post-clamp target
	Launched int
	Drained  int
	// Hold names why no action was taken ("" when one was): "inflight",
	// "deadband", "cooldown", or "error".
	Hold string
	Err  error
}

// Config parameterizes an Autoscaler.
type Config struct {
	// Min and Max bound the fleet size (Min defaults to 1; Max <= 0 means
	// unbounded).
	Min int
	Max int
	// Interval is the sampling period for the background loop (default
	// 100ms); Step-driven tests ignore it.
	Interval time.Duration
	// Cooldown is the minimum quiet time after an action before the next
	// one (zero: none).
	Cooldown time.Duration
	// Hysteresis is the deadband: a desired size within this distance of
	// the current size is ignored (zero: any drift acts). Bound
	// violations override the deadband.
	Hysteresis int
	// Sample observes current load (required).
	Sample func() Sample
	// Policy maps load to a desired size (default TargetPending{}).
	Policy Policy
	// Prov executes scaling actions (required).
	Prov Provisioner
	// Logf receives one line per action (nil: silent).
	Logf func(format string, args ...any)
}

// Stats counts autoscaler outcomes; read them after Stop.
type Stats struct {
	Steps  uint64
	Ups    uint64
	Downs  uint64
	Holds  uint64
	Errors uint64
}

// Autoscaler drives a Provisioner from load samples. Step is the whole
// algorithm and is deterministic given (sample, now); Start/Stop wrap it
// in a ticker loop for live use.
type Autoscaler struct {
	cfg        Config
	lastAction time.Time

	mu      sync.Mutex
	stats   Stats
	stopped chan struct{}
	done    chan struct{}

	// Stats are guarded by mu; Step itself is single-threaded (the loop
	// goroutine, or the test driving it).
}

// New validates cfg and builds an Autoscaler.
func New(cfg Config) *Autoscaler {
	if cfg.Min < 1 {
		cfg.Min = 1
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if cfg.Policy == nil {
		cfg.Policy = TargetPending{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Autoscaler{
		cfg:     cfg,
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Step runs one autoscaling round at the given time: sample, clamp the
// policy's desire into [Min, Max], and act unless damped. Deterministic:
// no wall-clock reads, so tests drive it with synthetic times.
func (a *Autoscaler) Step(now time.Time) Decision {
	a.count(func(s *Stats) { s.Steps++ })
	s := a.cfg.Sample()
	d := Decision{Sample: s}

	// A transition in flight means the last action (or an operator's) has
	// not converged; acting on a sample that still counts the old size
	// double-applies the correction.
	if s.Warming > 0 || s.Draining > 0 {
		d.Hold = "inflight"
		a.count(func(st *Stats) { st.Holds++ })
		return d
	}

	desired := a.cfg.Policy.Desired(s)
	if desired < a.cfg.Min {
		desired = a.cfg.Min
	}
	if a.cfg.Max > 0 && desired > a.cfg.Max {
		desired = a.cfg.Max
	}
	d.Desired = desired
	delta := desired - s.Workers

	// Bound violations always act; within bounds the deadband and the
	// cooldown suppress small or rapid corrections.
	outOfBounds := s.Workers < a.cfg.Min || (a.cfg.Max > 0 && s.Workers > a.cfg.Max)
	if !outOfBounds {
		if abs(delta) <= a.cfg.Hysteresis || delta == 0 {
			d.Hold = "deadband"
			a.count(func(st *Stats) { st.Holds++ })
			return d
		}
		if a.cfg.Cooldown > 0 && !a.lastAction.IsZero() && now.Sub(a.lastAction) < a.cfg.Cooldown {
			d.Hold = "cooldown"
			a.count(func(st *Stats) { st.Holds++ })
			return d
		}
	}

	var err error
	switch {
	case delta > 0:
		err = a.cfg.Prov.Launch(delta)
		if err == nil {
			d.Launched = delta
			a.count(func(st *Stats) { st.Ups++ })
		}
	case delta < 0:
		err = a.cfg.Prov.Drain(-delta)
		if err == nil {
			d.Drained = -delta
			a.count(func(st *Stats) { st.Downs++ })
		}
	default:
		d.Hold = "deadband"
		a.count(func(st *Stats) { st.Holds++ })
		return d
	}
	if err != nil {
		d.Hold = "error"
		d.Err = err
		a.count(func(st *Stats) { st.Errors++ })
		return d
	}
	a.lastAction = now
	a.cfg.Logf("fleet: autoscale %d -> %d (pending %d over %d workers)",
		s.Workers, desired, s.Pending, s.Workers)
	return d
}

// Start launches the background loop. Call Stop to end it.
func (a *Autoscaler) Start() {
	go func() {
		defer close(a.done)
		t := time.NewTicker(a.cfg.Interval)
		defer t.Stop()
		for {
			select {
			case now := <-t.C:
				a.Step(now)
			case <-a.stopped:
				return
			}
		}
	}()
}

// Stop ends the background loop and waits for it.
func (a *Autoscaler) Stop() {
	select {
	case <-a.stopped:
	default:
		close(a.stopped)
	}
	<-a.done
}

// Stats returns a snapshot of the counters.
func (a *Autoscaler) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

func (a *Autoscaler) count(f func(*Stats)) {
	a.mu.Lock()
	f(&a.stats)
	a.mu.Unlock()
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
