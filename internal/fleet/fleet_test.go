package fleet

import (
	"errors"
	"testing"
	"time"
)

// fakeProv records scaling actions and mirrors them into the sample so
// the next Step sees the new size.
type fakeProv struct {
	s        *Sample
	launches []int
	drains   []int
	err      error
}

func (p *fakeProv) Launch(n int) error {
	if p.err != nil {
		return p.err
	}
	p.launches = append(p.launches, n)
	p.s.Workers += n
	return nil
}

func (p *fakeProv) Drain(n int) error {
	if p.err != nil {
		return p.err
	}
	p.drains = append(p.drains, n)
	p.s.Workers -= n
	return nil
}

func harness(s *Sample, cfg Config) (*Autoscaler, *fakeProv) {
	p := &fakeProv{s: s}
	cfg.Sample = func() Sample { return *s }
	cfg.Prov = p
	return New(cfg), p
}

func TestAutoscaleGrowAndShrink(t *testing.T) {
	s := &Sample{Workers: 4, Pending: 320}
	a, p := harness(s, Config{Min: 2, Max: 64, Policy: TargetPending{PerWorker: 8}})
	now := time.Unix(0, 0)

	d := a.Step(now)
	if d.Launched != 36 || s.Workers != 40 {
		t.Fatalf("grow: launched %d, workers %d; want 36, 40", d.Launched, s.Workers)
	}
	s.Pending = 16
	d = a.Step(now.Add(time.Second))
	if d.Drained != 38 || s.Workers != 2 {
		t.Fatalf("shrink: drained %d, workers %d; want 38, 2", d.Drained, s.Workers)
	}
	if len(p.launches) != 1 || len(p.drains) != 1 {
		t.Fatalf("actions: %v launches, %v drains", p.launches, p.drains)
	}
}

func TestAutoscaleBounds(t *testing.T) {
	s := &Sample{Workers: 4, Pending: 1 << 20}
	a, _ := harness(s, Config{Min: 2, Max: 8, Policy: TargetPending{PerWorker: 1}})
	if d := a.Step(time.Unix(0, 0)); d.Desired != 8 || s.Workers != 8 {
		t.Fatalf("max clamp: desired %d, workers %d; want 8, 8", d.Desired, s.Workers)
	}
	s.Pending = 0
	if d := a.Step(time.Unix(1, 0)); d.Desired != 2 || s.Workers != 2 {
		t.Fatalf("min clamp: desired %d, workers %d; want 2, 2", d.Desired, s.Workers)
	}
}

func TestAutoscaleHysteresis(t *testing.T) {
	s := &Sample{Workers: 8, Pending: 80}
	a, _ := harness(s, Config{Min: 1, Max: 64, Hysteresis: 2, Policy: TargetPending{PerWorker: 8}})
	// Desired 10, delta 2 == deadband: hold.
	if d := a.Step(time.Unix(0, 0)); d.Hold != "deadband" || s.Workers != 8 {
		t.Fatalf("within deadband: hold %q, workers %d", d.Hold, s.Workers)
	}
	s.Pending = 88 // desired 11, delta 3: acts
	if d := a.Step(time.Unix(1, 0)); d.Launched != 3 {
		t.Fatalf("past deadband: %+v", d)
	}
}

func TestAutoscaleCooldown(t *testing.T) {
	s := &Sample{Workers: 2, Pending: 64}
	a, _ := harness(s, Config{Min: 1, Max: 64, Cooldown: time.Minute, Policy: TargetPending{PerWorker: 8}})
	now := time.Unix(0, 0)
	if d := a.Step(now); d.Launched != 6 {
		t.Fatalf("first action: %+v", d)
	}
	s.Pending = 640
	if d := a.Step(now.Add(10 * time.Second)); d.Hold != "cooldown" {
		t.Fatalf("inside cooldown: %+v", d)
	}
	if d := a.Step(now.Add(2 * time.Minute)); d.Launched == 0 {
		t.Fatalf("after cooldown: %+v", d)
	}
}

func TestAutoscaleHoldsWhileTransitioning(t *testing.T) {
	s := &Sample{Workers: 4, Warming: 1, Pending: 1000}
	a, _ := harness(s, Config{Min: 1, Max: 64})
	if d := a.Step(time.Unix(0, 0)); d.Hold != "inflight" {
		t.Fatalf("warming: %+v", d)
	}
	s.Warming, s.Draining = 0, 2
	if d := a.Step(time.Unix(1, 0)); d.Hold != "inflight" {
		t.Fatalf("draining: %+v", d)
	}
	st := a.Stats()
	if st.Holds != 2 || st.Ups != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestAutoscaleProvisionerError(t *testing.T) {
	s := &Sample{Workers: 2, Pending: 64}
	a, p := harness(s, Config{Min: 1, Max: 64})
	p.err = errors.New("no capacity")
	d := a.Step(time.Unix(0, 0))
	if d.Hold != "error" || d.Err == nil || s.Workers != 2 {
		t.Fatalf("error path: %+v", d)
	}
	// The failed action must not arm the cooldown: once capacity returns
	// the next step retries immediately.
	p.err = nil
	if d := a.Step(time.Unix(0, 1)); d.Launched == 0 {
		t.Fatalf("retry after error: %+v", d)
	}
}

func TestAutoscaleLoopLifecycle(t *testing.T) {
	s := &Sample{Workers: 1, Pending: 0}
	a, _ := harness(s, Config{Min: 1, Interval: time.Millisecond})
	a.Start()
	time.Sleep(20 * time.Millisecond)
	a.Stop()
	if st := a.Stats(); st.Steps == 0 {
		t.Fatal("loop never stepped")
	}
}
