package flow

import (
	"nimbus/internal/ids"
)

// objectOrder tracks the access ordering state for one physical object on
// one worker: the last command that wrote it and the commands that have
// read it since. From these two pieces the controller derives every
// same-worker before edge:
//
//   - a reader depends on the last writer (read-after-write);
//   - a writer depends on the last writer (write-after-write) and every
//     reader since (write-after-read, so in-place mutation cannot clobber
//     a value still being read).
type objectOrder struct {
	lastWriter ids.CommandID
	readers    []ids.CommandID
}

// Ledger is the per-worker dependency ledger. The controller keeps one per
// worker and consults it while emitting commands; execution templates apply
// cached "ledger effects" in bulk at instantiation time so that commands
// scheduled after a template instance still pick up correct edges onto the
// instance's commands.
type Ledger struct {
	worker ids.WorkerID
	orders map[ids.ObjectID]*objectOrder
}

// NewLedger returns an empty ledger for worker w.
func NewLedger(w ids.WorkerID) *Ledger {
	return &Ledger{worker: w, orders: make(map[ids.ObjectID]*objectOrder)}
}

// Worker returns the worker this ledger orders.
func (l *Ledger) Worker() ids.WorkerID { return l.worker }

func (l *Ledger) orderOf(o ids.ObjectID) *objectOrder {
	ord, ok := l.orders[o]
	if !ok {
		ord = &objectOrder{}
		l.orders[o] = ord
	}
	return ord
}

// Read registers command c as a reader of object o and appends the
// resulting before edges (the last writer, if any) to deps. It returns the
// extended slice.
func (l *Ledger) Read(o ids.ObjectID, c ids.CommandID, deps []ids.CommandID) []ids.CommandID {
	ord := l.orderOf(o)
	if ord.lastWriter != ids.NoCommand {
		deps = appendUnique(deps, ord.lastWriter)
	}
	ord.readers = append(ord.readers, c)
	return deps
}

// Write registers command c as the new last writer of object o and appends
// the resulting before edges (previous writer plus all readers since) to
// deps. It returns the extended slice.
func (l *Ledger) Write(o ids.ObjectID, c ids.CommandID, deps []ids.CommandID) []ids.CommandID {
	ord := l.orderOf(o)
	if ord.lastWriter != ids.NoCommand {
		deps = appendUnique(deps, ord.lastWriter)
	}
	for _, r := range ord.readers {
		if r != c {
			deps = appendUnique(deps, r)
		}
	}
	ord.lastWriter = c
	ord.readers = ord.readers[:0]
	return deps
}

// SetState overwrites the ordering state of object o. Template
// instantiation uses it to apply cached ledger effects: after an instance,
// o's last writer and readers are specific commands of the instance.
func (l *Ledger) SetState(o ids.ObjectID, lastWriter ids.CommandID, readers []ids.CommandID) {
	ord := l.orderOf(o)
	ord.lastWriter = lastWriter
	ord.readers = append(ord.readers[:0], readers...)
}

// LastWriter returns the command currently recorded as object o's last
// writer, or NoCommand.
func (l *Ledger) LastWriter(o ids.ObjectID) ids.CommandID {
	if ord, ok := l.orders[o]; ok {
		return ord.lastWriter
	}
	return ids.NoCommand
}

// Reset drops all ordering state (worker failure recovery restarts the
// ledger from the checkpoint's quiesced state).
func (l *Ledger) Reset() {
	l.orders = make(map[ids.ObjectID]*objectOrder)
}

// LedgerSnapshot is an immutable copy of a ledger's ordering state, safe
// to read off the event loop. Template builds do not need it (they derive
// dependencies index-relatively from the directory alone), so taking one
// is a plain copy and the ledger's hot-path Read/Write pay nothing for
// its existence; it is the sanctioned way for any future off-loop
// consumer to read ordering state without racing the loop.
type LedgerSnapshot struct {
	worker ids.WorkerID
	orders map[ids.ObjectID]objectOrder
}

// Snapshot returns an immutable copy of the ledger's ordering state.
func (l *Ledger) Snapshot() *LedgerSnapshot {
	s := &LedgerSnapshot{
		worker: l.worker,
		orders: make(map[ids.ObjectID]objectOrder, len(l.orders)),
	}
	for o, ord := range l.orders {
		s.orders[o] = objectOrder{
			lastWriter: ord.lastWriter,
			readers:    append([]ids.CommandID(nil), ord.readers...),
		}
	}
	return s
}

// Worker returns the worker the snapshot orders.
func (s *LedgerSnapshot) Worker() ids.WorkerID { return s.worker }

// LastWriter returns the last writer of o at snapshot time, or NoCommand.
func (s *LedgerSnapshot) LastWriter(o ids.ObjectID) ids.CommandID {
	return s.orders[o].lastWriter
}

// Readers returns the readers of o since its last write, at snapshot time.
func (s *LedgerSnapshot) Readers(o ids.ObjectID) []ids.CommandID {
	return s.orders[o].readers
}

func appendUnique(deps []ids.CommandID, c ids.CommandID) []ids.CommandID {
	for _, d := range deps {
		if d == c {
			return deps
		}
	}
	return append(deps, c)
}
