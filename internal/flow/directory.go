// Package flow implements the controller's data-flow bookkeeping: the
// object directory (which worker holds which version of each logical data
// object) and the per-worker dependency ledgers from which command before
// sets are derived.
//
// Nimbus data objects are mutable, so several physical replicas of a
// logical object can coexist at different versions (paper §3.3). The
// directory tracks, per logical object, the latest version number and every
// replica's version, and guarantees — through the copies the controller
// inserts — that tasks always read the latest value according to program
// order. The ledgers record, per worker and per physical object, the last
// writing command and the readers since, which is exactly the information
// needed to emit before sets (write-after-read and read-after-write edges)
// for newly scheduled commands.
package flow

import (
	"fmt"

	"nimbus/internal/ids"
)

// Replica is one physical instance of a logical object.
type Replica struct {
	Worker ids.WorkerID
	Object ids.ObjectID
	// Version is the data version this replica holds. A replica is live
	// when Version equals the logical object's Latest.
	Version uint64
}

// entry is the directory's per-logical-object record.
type entry struct {
	logical  ids.LogicalID
	latest   uint64
	replicas map[ids.WorkerID]*Replica
}

// Directory tracks every logical object's replicas. It is confined to the
// controller's event loop and is not safe for concurrent use; Snapshot
// produces immutable views that background builds may read concurrently.
type Directory struct {
	objectIDs *ids.ObjectIDs
	entries   map[ids.LogicalID]*entry
	// byObject maps physical instances back to their logical identity,
	// serving driver Gets and checkpoint manifests.
	byObject map[ids.ObjectID]*Replica
	// snap caches the snapshot of the current instance table; any
	// instance-table mutation (allocation, adoption, worker drop) drops
	// it, so repeat snapshots between mutations are free. Version bumps
	// deliberately do not: template builds read only the instance table.
	snap *Snapshot
}

// NewDirectory returns an empty directory drawing physical object IDs from
// alloc.
func NewDirectory(alloc *ids.ObjectIDs) *Directory {
	return &Directory{
		objectIDs: alloc,
		entries:   make(map[ids.LogicalID]*entry),
		byObject:  make(map[ids.ObjectID]*Replica),
	}
}

func (d *Directory) entryOf(l ids.LogicalID) *entry {
	e, ok := d.entries[l]
	if !ok {
		e = &entry{logical: l, replicas: make(map[ids.WorkerID]*Replica)}
		d.entries[l] = e
	}
	return e
}

// Instance returns the stable physical instance of logical object l on
// worker w, allocating one on first use. Stability is what lets execution
// templates cache physical object IDs across iterations (paper §3.3).
func (d *Directory) Instance(l ids.LogicalID, w ids.WorkerID) ids.ObjectID {
	e := d.entryOf(l)
	if r, ok := e.replicas[w]; ok {
		return r.Object
	}
	r := &Replica{Worker: w, Object: d.objectIDs.Next()}
	// A brand-new replica holds no data yet; version 0 is stale unless the
	// logical object has never been written (latest == 0).
	e.replicas[w] = r
	d.byObject[r.Object] = r
	d.mutated()
	return r.Object
}

// AdoptInstance installs a pre-allocated physical instance for (l, w) —
// the commit half of an off-loop build, replaying the build view's overlay
// allocations. It panics if the pair already has a different instance; the
// caller must have checked for conflicts (BuildView.Commit does).
func (d *Directory) AdoptInstance(l ids.LogicalID, w ids.WorkerID, o ids.ObjectID) {
	e := d.entryOf(l)
	if r, ok := e.replicas[w]; ok {
		if r.Object != o {
			panic(fmt.Sprintf("flow: adopt of %s at %s conflicts: have %s, adopting %s",
				l, w, r.Object, o))
		}
		return
	}
	r := &Replica{Worker: w, Object: o}
	e.replicas[w] = r
	d.byObject[o] = r
	d.mutated()
}

// mutated drops the cached snapshot after an instance-table mutation.
func (d *Directory) mutated() {
	d.snap = nil
}

// Snapshot returns an immutable copy of the instance table for off-loop
// template builds. The copy is cached: in a mutation-free steady state
// repeated snapshots return the same object without copying.
func (d *Directory) Snapshot() *Snapshot {
	if d.snap != nil {
		return d.snap
	}
	base := make(map[ids.LogicalID]map[ids.WorkerID]ids.ObjectID, len(d.entries))
	for l, e := range d.entries {
		m := make(map[ids.WorkerID]ids.ObjectID, len(e.replicas))
		for w, r := range e.replicas {
			m[w] = r.Object
		}
		base[l] = m
	}
	d.snap = &Snapshot{base: base, alloc: d.objectIDs}
	return d.snap
}

// Lookup returns the replica of l on w, or nil.
func (d *Directory) Lookup(l ids.LogicalID, w ids.WorkerID) *Replica {
	if e, ok := d.entries[l]; ok {
		return e.replicas[w]
	}
	return nil
}

// LookupObject resolves a physical object ID to its replica record, or nil.
func (d *Directory) LookupObject(o ids.ObjectID) *Replica {
	return d.byObject[o]
}

// Latest returns the latest version number of l (0 if never written).
func (d *Directory) Latest(l ids.LogicalID) uint64 {
	if e, ok := d.entries[l]; ok {
		return e.latest
	}
	return 0
}

// IsLatest reports whether worker w holds the latest version of l. An
// unwritten logical object (latest 0) is trivially latest everywhere a
// replica exists.
func (d *Directory) IsLatest(l ids.LogicalID, w ids.WorkerID) bool {
	e, ok := d.entries[l]
	if !ok {
		return false
	}
	r, ok := e.replicas[w]
	if !ok {
		return false
	}
	return r.Version == e.latest
}

// LatestHolder returns some worker holding the latest version of l, or
// NoWorker if none does (an unwritten object has no holder unless a replica
// was Put).
func (d *Directory) LatestHolder(l ids.LogicalID) ids.WorkerID {
	e, ok := d.entries[l]
	if !ok {
		return ids.NoWorker
	}
	var best ids.WorkerID
	for w, r := range e.replicas {
		if r.Version == e.latest {
			// Prefer the lowest worker ID for determinism.
			if best == ids.NoWorker || w < best {
				best = w
			}
		}
	}
	return best
}

// Holders returns every worker holding the latest version of l.
func (d *Directory) Holders(l ids.LogicalID) []ids.WorkerID {
	e, ok := d.entries[l]
	if !ok {
		return nil
	}
	var out []ids.WorkerID
	for w, r := range e.replicas {
		if r.Version == e.latest {
			out = append(out, w)
		}
	}
	return out
}

// RecordWrite registers that worker w produced a new version of l and
// returns the new version number. Every other replica becomes stale.
func (d *Directory) RecordWrite(l ids.LogicalID, w ids.WorkerID) uint64 {
	e := d.entryOf(l)
	r, ok := e.replicas[w]
	if !ok {
		panic(fmt.Sprintf("flow: write of %s at %s without instance", l, w))
	}
	e.latest++
	r.Version = e.latest
	return e.latest
}

// RecordCopy registers that the latest version of l was copied to worker w.
func (d *Directory) RecordCopy(l ids.LogicalID, w ids.WorkerID) {
	e := d.entryOf(l)
	r, ok := e.replicas[w]
	if !ok {
		panic(fmt.Sprintf("flow: copy of %s to %s without instance", l, w))
	}
	r.Version = e.latest
}

// ApplyBlockEffect advances the directory state by a template instance's
// summarized effect: the logical object gains bumps new versions and the
// final holders end at the new latest (paper §2.2: instantiating a
// controller template replays its cached bookkeeping).
func (d *Directory) ApplyBlockEffect(l ids.LogicalID, bumps uint64, finalHolders []ids.WorkerID) {
	e := d.entryOf(l)
	e.latest += bumps
	for _, w := range finalHolders {
		r, ok := e.replicas[w]
		if !ok {
			panic(fmt.Sprintf("flow: block effect on %s names %s without instance", l, w))
		}
		r.Version = e.latest
	}
}

// ReplicasOf returns all replicas of l (any version).
func (d *Directory) ReplicasOf(l ids.LogicalID) []*Replica {
	e, ok := d.entries[l]
	if !ok {
		return nil
	}
	out := make([]*Replica, 0, len(e.replicas))
	for _, r := range e.replicas {
		out = append(out, r)
	}
	return out
}

// DropWorker removes every replica held by worker w (worker failure).
// Logical objects whose only live replica was on w are left without a
// latest holder; recovery reloads them from the checkpoint.
func (d *Directory) DropWorker(w ids.WorkerID) {
	dropped := false
	for _, e := range d.entries {
		if r, ok := e.replicas[w]; ok {
			delete(e.replicas, w)
			delete(d.byObject, r.Object)
			dropped = true
		}
	}
	if dropped {
		d.mutated()
	}
}

// Logicals calls fn for every logical object with at least one replica.
func (d *Directory) Logicals(fn func(l ids.LogicalID, latest uint64, replicas map[ids.WorkerID]*Replica)) {
	for l, e := range d.entries {
		fn(l, e.latest, e.replicas)
	}
}
