package flow

import (
	"fmt"
	"sync"

	"nimbus/internal/ids"
)

// This file implements the snapshot half of the off-loop template build
// pipeline (snapshot -> build -> commit). The controller's event loop takes
// an immutable Snapshot of the directory's instance table, hands it to a
// background builder, and later commits the builder's newly allocated
// instances back — or discards them if the directory moved underneath.
//
// Snapshots are cached: the directory keeps the last snapshot it produced
// and reuses it until an instance-table mutation invalidates it, so
// repeated snapshots in a mutation-free steady state are O(1).

// Snapshot is an immutable copy of a Directory's instance table (which
// physical object backs each (logical, worker) pair). Staleness is
// detected at commit time by conflict, not by epoch: the controller
// additionally guards commits with its own placement epoch and the
// directory's identity.
type Snapshot struct {
	base  map[ids.LogicalID]map[ids.WorkerID]ids.ObjectID
	alloc *ids.ObjectIDs
}

// View returns a fresh build view over the snapshot. Each build group gets
// its own view; the view is safe for concurrent use by the goroutines of
// one build group.
func (s *Snapshot) View() *BuildView {
	return &BuildView{snap: s, overlay: make(map[instKey]ids.ObjectID)}
}

type instKey struct {
	l ids.LogicalID
	w ids.WorkerID
}

// BuildView is a Snapshot plus an overlay of instances allocated during an
// off-loop build. Lookups hit the immutable base first; misses allocate
// from the directory's shared (atomic) object-ID allocator and are recorded
// in the overlay for the commit step. A BuildView is safe for concurrent
// use.
type BuildView struct {
	mu      sync.Mutex
	snap    *Snapshot
	overlay map[instKey]ids.ObjectID
}

// Instance implements the builder's instance resolution against the
// snapshot: stable IDs for pairs the directory already knew, fresh IDs
// (staged in the overlay) for pairs first touched by this build. The base
// is immutable, so the common case — a pair the directory already tracks —
// is lock-free; only overlay allocations take the mutex.
func (v *BuildView) Instance(l ids.LogicalID, w ids.WorkerID) ids.ObjectID {
	if m, ok := v.snap.base[l]; ok {
		if o, ok := m[w]; ok {
			return o
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	k := instKey{l, w}
	if o, ok := v.overlay[k]; ok {
		return o
	}
	o := v.snap.alloc.Next()
	v.overlay[k] = o
	return o
}

// ErrStaleSnapshot reports a commit conflict: the directory allocated a
// different instance for a (logical, worker) pair the build also allocated,
// so the built assignment references objects the directory will never
// track. The caller must rebuild from a fresh snapshot.
var ErrStaleSnapshot = fmt.Errorf("flow: snapshot stale: directory changed during build")

// Commit replays the view's overlay allocations into dir. It fails with
// ErrStaleSnapshot (committing nothing further) if dir concurrently
// allocated a conflicting instance for any overlaid pair. Pairs adopted
// before the conflict was found are harmless: they are valid allocations
// for objects the discarded build would have introduced anyway.
func (v *BuildView) Commit(dir *Directory) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	for k, o := range v.overlay {
		if r := dir.Lookup(k.l, k.w); r != nil {
			if r.Object == o {
				continue
			}
			return ErrStaleSnapshot
		}
		dir.AdoptInstance(k.l, k.w, o)
	}
	return nil
}
