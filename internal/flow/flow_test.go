package flow

import (
	"testing"
	"testing/quick"

	"nimbus/internal/ids"
)

func TestDirectoryVersioning(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 1
	o1 := d.Instance(l, 1)
	o2 := d.Instance(l, 2)
	if o1 == o2 {
		t.Fatal("instances on different workers must differ")
	}
	if d.Instance(l, 1) != o1 {
		t.Fatal("instance must be stable")
	}
	// Unwritten object: everyone with a replica is trivially latest.
	if !d.IsLatest(l, 1) || !d.IsLatest(l, 2) {
		t.Fatal("latest of unwritten object")
	}
	if v := d.RecordWrite(l, 1); v != 1 {
		t.Fatalf("version = %d", v)
	}
	if d.IsLatest(l, 2) {
		t.Fatal("stale replica considered latest")
	}
	if h := d.LatestHolder(l); h != 1 {
		t.Fatalf("holder = %v", h)
	}
	d.RecordCopy(l, 2)
	if !d.IsLatest(l, 2) {
		t.Fatal("copy should make replica latest")
	}
	if hs := d.Holders(l); len(hs) != 2 {
		t.Fatalf("holders = %v", hs)
	}
	d.RecordWrite(l, 2)
	if d.IsLatest(l, 1) {
		t.Fatal("old holder still latest after write elsewhere")
	}
}

func TestDirectoryBlockEffect(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 1
	d.Instance(l, 1)
	d.Instance(l, 2)
	d.RecordWrite(l, 1)
	d.ApplyBlockEffect(l, 3, []ids.WorkerID{2})
	if d.Latest(l) != 4 {
		t.Fatalf("latest = %d", d.Latest(l))
	}
	if d.IsLatest(l, 1) || !d.IsLatest(l, 2) {
		t.Fatal("block effect holders wrong")
	}
}

func TestDirectoryDropWorker(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 1
	o := d.Instance(l, 1)
	d.Instance(l, 2)
	d.RecordWrite(l, 1)
	d.DropWorker(1)
	if d.LatestHolder(l) != ids.NoWorker {
		t.Fatal("dropped worker still a holder")
	}
	if d.LookupObject(o) != nil {
		t.Fatal("dropped replica still resolvable")
	}
}

func TestLedgerEdges(t *testing.T) {
	l := NewLedger(1)
	const o ids.ObjectID = 1
	// First reader: no edges.
	if deps := l.Read(o, 10, nil); len(deps) != 0 {
		t.Fatalf("deps = %v", deps)
	}
	// Writer after readers: write-after-read edges.
	l.Read(o, 11, nil)
	deps := l.Write(o, 12, nil)
	if len(deps) != 2 {
		t.Fatalf("write deps = %v, want readers 10 and 11", deps)
	}
	// Reader after write: read-after-write edge.
	deps = l.Read(o, 13, nil)
	if len(deps) != 1 || deps[0] != 12 {
		t.Fatalf("read deps = %v", deps)
	}
	// Writer after write+read: both edges, deduplicated.
	deps = l.Write(o, 14, nil)
	if len(deps) != 2 {
		t.Fatalf("write deps = %v", deps)
	}
	if l.LastWriter(o) != 14 {
		t.Fatalf("last writer = %v", l.LastWriter(o))
	}
}

func TestLedgerSetState(t *testing.T) {
	l := NewLedger(1)
	const o ids.ObjectID = 1
	l.SetState(o, 100, []ids.CommandID{101, 102})
	deps := l.Write(o, 103, nil)
	if len(deps) != 3 {
		t.Fatalf("deps = %v, want writer+2 readers", deps)
	}
}

// Property: after any sequence of reads and writes, a new writer depends
// on the last writer (transitively ordering all prior access).
func TestQuickLedgerWriterOrdering(t *testing.T) {
	f := func(ops []bool) bool {
		l := NewLedger(1)
		const o ids.ObjectID = 1
		var lastWrite ids.CommandID
		id := ids.CommandID(1)
		for _, isWrite := range ops {
			id++
			if isWrite {
				deps := l.Write(o, id, nil)
				if lastWrite != ids.NoCommand {
					found := false
					for _, d := range deps {
						if d == lastWrite {
							found = true
						}
					}
					// The previous writer may be ordered transitively
					// through intervening readers; if there were no
					// readers, the edge must be direct.
					if !found && len(deps) == 0 {
						return false
					}
				}
				lastWrite = id
			} else {
				l.Read(o, id, nil)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
