package flow

import (
	"testing"
	"testing/quick"

	"nimbus/internal/ids"
)

func TestDirectoryVersioning(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 1
	o1 := d.Instance(l, 1)
	o2 := d.Instance(l, 2)
	if o1 == o2 {
		t.Fatal("instances on different workers must differ")
	}
	if d.Instance(l, 1) != o1 {
		t.Fatal("instance must be stable")
	}
	// Unwritten object: everyone with a replica is trivially latest.
	if !d.IsLatest(l, 1) || !d.IsLatest(l, 2) {
		t.Fatal("latest of unwritten object")
	}
	if v := d.RecordWrite(l, 1); v != 1 {
		t.Fatalf("version = %d", v)
	}
	if d.IsLatest(l, 2) {
		t.Fatal("stale replica considered latest")
	}
	if h := d.LatestHolder(l); h != 1 {
		t.Fatalf("holder = %v", h)
	}
	d.RecordCopy(l, 2)
	if !d.IsLatest(l, 2) {
		t.Fatal("copy should make replica latest")
	}
	if hs := d.Holders(l); len(hs) != 2 {
		t.Fatalf("holders = %v", hs)
	}
	d.RecordWrite(l, 2)
	if d.IsLatest(l, 1) {
		t.Fatal("old holder still latest after write elsewhere")
	}
}

func TestDirectoryBlockEffect(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 1
	d.Instance(l, 1)
	d.Instance(l, 2)
	d.RecordWrite(l, 1)
	d.ApplyBlockEffect(l, 3, []ids.WorkerID{2})
	if d.Latest(l) != 4 {
		t.Fatalf("latest = %d", d.Latest(l))
	}
	if d.IsLatest(l, 1) || !d.IsLatest(l, 2) {
		t.Fatal("block effect holders wrong")
	}
}

func TestDirectoryDropWorker(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 1
	o := d.Instance(l, 1)
	d.Instance(l, 2)
	d.RecordWrite(l, 1)
	d.DropWorker(1)
	if d.LatestHolder(l) != ids.NoWorker {
		t.Fatal("dropped worker still a holder")
	}
	if d.LookupObject(o) != nil {
		t.Fatal("dropped replica still resolvable")
	}
}

func TestLedgerEdges(t *testing.T) {
	l := NewLedger(1)
	const o ids.ObjectID = 1
	// First reader: no edges.
	if deps := l.Read(o, 10, nil); len(deps) != 0 {
		t.Fatalf("deps = %v", deps)
	}
	// Writer after readers: write-after-read edges.
	l.Read(o, 11, nil)
	deps := l.Write(o, 12, nil)
	if len(deps) != 2 {
		t.Fatalf("write deps = %v, want readers 10 and 11", deps)
	}
	// Reader after write: read-after-write edge.
	deps = l.Read(o, 13, nil)
	if len(deps) != 1 || deps[0] != 12 {
		t.Fatalf("read deps = %v", deps)
	}
	// Writer after write+read: both edges, deduplicated.
	deps = l.Write(o, 14, nil)
	if len(deps) != 2 {
		t.Fatalf("write deps = %v", deps)
	}
	if l.LastWriter(o) != 14 {
		t.Fatalf("last writer = %v", l.LastWriter(o))
	}
}

func TestLedgerSetState(t *testing.T) {
	l := NewLedger(1)
	const o ids.ObjectID = 1
	l.SetState(o, 100, []ids.CommandID{101, 102})
	deps := l.Write(o, 103, nil)
	if len(deps) != 3 {
		t.Fatalf("deps = %v, want writer+2 readers", deps)
	}
}

// Property: after any sequence of reads and writes, a new writer depends
// on the last writer (transitively ordering all prior access).
func TestQuickLedgerWriterOrdering(t *testing.T) {
	f := func(ops []bool) bool {
		l := NewLedger(1)
		const o ids.ObjectID = 1
		var lastWrite ids.CommandID
		id := ids.CommandID(1)
		for _, isWrite := range ops {
			id++
			if isWrite {
				deps := l.Write(o, id, nil)
				if lastWrite != ids.NoCommand {
					found := false
					for _, d := range deps {
						if d == lastWrite {
							found = true
						}
					}
					// The previous writer may be ordered transitively
					// through intervening readers; if there were no
					// readers, the edge must be direct.
					if !found && len(deps) == 0 {
						return false
					}
				}
				lastWrite = id
			} else {
				l.Read(o, id, nil)
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDirectorySnapshotEpochCache: snapshots are cached per epoch and
// invalidated by instance-table mutations, not version bumps.
func TestDirectorySnapshotEpochCache(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 1
	o1 := d.Instance(l, 1)

	s1 := d.Snapshot()
	if s2 := d.Snapshot(); s2 != s1 {
		t.Fatal("mutation-free snapshot was recopied")
	}
	// Version bumps must not stale the snapshot: builds read only the
	// instance table.
	d.RecordWrite(l, 1)
	if s2 := d.Snapshot(); s2 != s1 {
		t.Fatal("version bump invalidated the snapshot")
	}
	// A new instance must.
	o2 := d.Instance(l, 2)
	s3 := d.Snapshot()
	if s3 == s1 {
		t.Fatal("instance allocation did not invalidate the cached snapshot")
	}

	// The view resolves existing pairs to their stable IDs and stages
	// fresh pairs in its overlay.
	v := s3.View()
	if got := v.Instance(l, 1); got != o1 {
		t.Fatalf("view resolved (l,1) to %s, want %s", got, o1)
	}
	fresh := v.Instance(l, 3)
	if again := v.Instance(l, 3); again != fresh {
		t.Fatal("overlay allocation not stable within the view")
	}
	if got := v.Instance(l, 2); got != o2 {
		t.Fatalf("view resolved (l,2) to %s, want %s", got, o2)
	}
	if err := v.Commit(d); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if got := d.Instance(l, 3); got != fresh {
		t.Fatalf("directory did not adopt the view's allocation: %s != %s", got, fresh)
	}
}

// TestSnapshotCommitConflict: if the directory allocates a different
// instance for a pair the build also allocated, the commit must fail so
// the controller rebuilds from a fresh snapshot.
func TestSnapshotCommitConflict(t *testing.T) {
	var alloc ids.ObjectIDs
	d := NewDirectory(&alloc)
	const l ids.LogicalID = 7
	d.Instance(l, 1)

	v := d.Snapshot().View()
	buildObj := v.Instance(l, 2) // staged off-loop
	liveObj := d.Instance(l, 2)  // racing on-loop allocation
	if buildObj == liveObj {
		t.Fatal("distinct allocations collided")
	}
	if err := v.Commit(d); err == nil {
		t.Fatal("conflicting commit succeeded")
	}
	// The live allocation must be untouched.
	if got := d.Instance(l, 2); got != liveObj {
		t.Fatalf("conflict clobbered the live instance: %s != %s", got, liveObj)
	}
}

// TestLedgerSnapshot: ledger snapshots are immutable copies.
func TestLedgerSnapshot(t *testing.T) {
	led := NewLedger(1)
	const o ids.ObjectID = 9
	led.Write(o, 10, nil)
	led.Read(o, 11, nil)

	s := led.Snapshot()
	if s.Worker() != 1 {
		t.Fatalf("snapshot worker = %s, want w:1", s.Worker())
	}
	if s.LastWriter(o) != 10 {
		t.Fatalf("snapshot last writer = %s, want cmd:10", s.LastWriter(o))
	}
	if rs := s.Readers(o); len(rs) != 1 || rs[0] != 11 {
		t.Fatalf("snapshot readers = %v, want [cmd:11]", rs)
	}
	// Later mutations must not leak into the taken snapshot.
	led.Write(o, 12, nil)
	if s.LastWriter(o) != 10 {
		t.Fatal("snapshot mutated by later ledger write")
	}
	if s2 := led.Snapshot(); s2.LastWriter(o) != 12 {
		t.Fatal("fresh snapshot missing later write")
	}
}
