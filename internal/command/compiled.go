package command

import (
	"sort"

	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// CompiledEntry is the immutable, instantiation-ready form of one template
// entry. Where TemplateEntry stores dependencies as global indexes that the
// worker must resolve through completion maps at every instantiation, a
// compiled entry pre-resolves everything that does not vary between
// instances:
//
//   - LocalBefore holds the *positions* (not global indexes) of
//     same-template dependencies, so the scheduler wires intra-instance
//     edges with array indexing instead of map lookups;
//   - LocalWaiters is the reverse adjacency — the positions of entries that
//     list this one in their before set — so a completion wakes its waiters
//     without consulting a waiter map;
//   - ExtBefore keeps the (rare) global indexes with no matching entry in
//     this template; they still resolve through the worker's completion
//     state at activation, preserving the map-based path's semantics for
//     dangling edges.
//
// Reads, Writes and Fixed are shared with the installed template entries
// and must be treated as immutable.
type CompiledEntry struct {
	Index    int32
	Kind     Kind
	Function ids.FunctionID
	Reads    []ids.ObjectID
	Writes   []ids.ObjectID
	Logical  ids.LogicalID
	// ParamSlot selects the instantiation parameter array entry, or
	// NoParamSlot to use Fixed.
	ParamSlot int32
	Fixed     params.Blob
	DstWorker ids.WorkerID
	DstIdx    int32

	LocalBefore  []int32
	LocalWaiters []int32
	ExtBefore    []int32
}

// CompiledTemplate is an installed worker template compiled to a dense
// immutable form (built once at install/edit time, shared by every
// subsequent instantiation). Entries are sorted by ascending global index —
// the controller assigns indexes in program order, so this is a
// topologically friendly order in which before-edges predominantly point
// backwards and inline cascades resolve in one pass.
//
// A CompiledTemplate is never mutated after Compile returns: template edits
// produce a fresh compilation. Completed-instance records may therefore
// hold references to the compilation they ran with even after further
// edits.
type CompiledTemplate struct {
	Entries []CompiledEntry
	// pos maps a global entry index (offset by Lo) to its position in
	// Entries, or -1 for a hole (index absent from this template). nil
	// when the index range is too sparse to back densely — hostile
	// frames may scatter indexes across the whole int32 range — in which
	// case sparse carries the mapping instead.
	pos    []int32
	sparse map[int32]int32
	// Lo is the smallest entry index. Controller-built templates use
	// non-negative dense indexes (Lo is then the worker slice's first
	// global index); hostile frames may carry anything, so lookups offset
	// by Lo rather than assume zero.
	Lo int32
	// Span is MaxIndex+1: instance command IDs cover [base+Lo, base+Span).
	Span int32
	// Tasks counts Task-kind entries (executor-slot consumers).
	Tasks int
}

// Has reports whether the template contains an entry with the given global
// index. IDs of completed instances are answered with Has instead of a hash
// lookup: id is done iff id-base is a real entry's index.
func (ct *CompiledTemplate) Has(index int32) bool { return ct.PosOf(index) >= 0 }

// PosOf returns the position in Entries of the entry with the given global
// index, or -1. The dense table answers without hashing; the sparse
// fallback only exists for hostile index distributions.
func (ct *CompiledTemplate) PosOf(index int32) int32 {
	if ct.sparse != nil {
		if p, ok := ct.sparse[index]; ok {
			return p
		}
		return -1
	}
	i := int64(index) - int64(ct.Lo)
	if i < 0 || i >= int64(len(ct.pos)) {
		return -1
	}
	return ct.pos[i]
}

// Compile builds the dense form from a template's entries (any order,
// typically the values of the installed entry map). The input entries are
// not retained, but their Reads/Writes/Fixed slices are shared with the
// compiled entries.
func Compile(entries []*TemplateEntry) *CompiledTemplate {
	ct := &CompiledTemplate{Entries: make([]CompiledEntry, len(entries))}
	minIdx, maxIdx := int32(0), int32(-1)
	for i, e := range entries {
		ct.Entries[i] = CompiledEntry{
			Index:     e.Index,
			Kind:      e.Kind,
			Function:  e.Function,
			Reads:     e.Reads,
			Writes:    e.Writes,
			Logical:   e.Logical,
			ParamSlot: e.ParamSlot,
			Fixed:     e.Fixed,
			DstWorker: e.DstWorker,
			DstIdx:    e.DstIdx,
		}
		if i == 0 || e.Index < minIdx {
			minIdx = e.Index
		}
		if i == 0 || e.Index > maxIdx {
			maxIdx = e.Index
		}
	}
	sort.Slice(ct.Entries, func(i, j int) bool { return ct.Entries[i].Index < ct.Entries[j].Index })
	ct.Lo = minIdx
	ct.Span = maxIdx + 1
	if span := int64(maxIdx) - int64(minIdx) + 1; len(entries) > 0 && span <= 4*int64(len(entries))+1024 {
		ct.pos = make([]int32, span)
		for i := range ct.pos {
			ct.pos[i] = -1
		}
		for i := range ct.Entries {
			ct.pos[int64(ct.Entries[i].Index)-int64(minIdx)] = int32(i)
		}
	} else if len(entries) > 0 {
		ct.sparse = make(map[int32]int32, len(entries))
		for i := range ct.Entries {
			ct.sparse[ct.Entries[i].Index] = int32(i)
		}
	}

	// Resolve before-edges. Edge lists for the whole template live in two
	// shared backing arrays (one forward, one reverse) carved into
	// per-entry sub-slices, so compilation allocates O(1) slices however
	// many entries there are.
	var nLocal, nExt int
	for _, e := range entries {
		for _, gi := range e.BeforeIdx {
			if ct.Has(gi) {
				nLocal++
			} else {
				nExt++
			}
		}
	}
	localBuf := make([]int32, 0, nLocal)
	extBuf := make([]int32, 0, nExt)
	waiterCount := make([]int32, len(ct.Entries))
	for _, e := range entries {
		ce := &ct.Entries[ct.PosOf(e.Index)]
		lb, eb := len(localBuf), len(extBuf)
		for _, gi := range e.BeforeIdx {
			if dep := ct.PosOf(gi); dep >= 0 {
				localBuf = append(localBuf, dep)
				waiterCount[dep]++
			} else {
				extBuf = append(extBuf, gi)
			}
		}
		ce.LocalBefore = localBuf[lb:len(localBuf):len(localBuf)]
		ce.ExtBefore = extBuf[eb:len(extBuf):len(extBuf)]
	}
	waiterBuf := make([]int32, nLocal)
	// Carve each entry's waiter sub-slice, then fill by a second pass over
	// the forward edges.
	off := int32(0)
	for i := range ct.Entries {
		n := waiterCount[i]
		ct.Entries[i].LocalWaiters = waiterBuf[off : off : off+n]
		off += n
	}
	for i := range ct.Entries {
		for _, dep := range ct.Entries[i].LocalBefore {
			d := &ct.Entries[dep]
			d.LocalWaiters = d.LocalWaiters[:len(d.LocalWaiters)+1]
			d.LocalWaiters[len(d.LocalWaiters)-1] = int32(i)
		}
		if ct.Entries[i].Kind == Task {
			ct.Tasks++
		}
	}
	return ct
}

// MaterializeInto patches the entry into out for the instance identified by
// base: ID arithmetic, parameter selection and copy routing only. Unlike
// TemplateEntry.Materialize it does not build a Before slice — intra-
// instance edges are pre-resolved in the compilation and external edges are
// resolved by the scheduler from ExtBefore. out's other fields are fully
// overwritten, so arenas can reuse command storage across instances.
func (ce *CompiledEntry) MaterializeInto(base ids.CommandID, paramArray []params.Blob, out *Command) {
	out.ID = base + ids.CommandID(ce.Index)
	out.Kind = ce.Kind
	out.Function = ce.Function
	out.Reads = ce.Reads
	out.Writes = ce.Writes
	out.Logical = ce.Logical
	out.Before = nil
	if ce.ParamSlot >= 0 && int(ce.ParamSlot) < len(paramArray) {
		out.Params = paramArray[ce.ParamSlot]
	} else {
		out.Params = ce.Fixed
	}
	out.DstWorker = ce.DstWorker
	if ce.Kind == CopySend {
		out.DstCommand = base + ids.CommandID(ce.DstIdx)
	} else {
		out.DstCommand = ids.NoCommand
	}
	out.Version = 0
}
