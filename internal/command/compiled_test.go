package command

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"nimbus/internal/ids"
	"nimbus/internal/params"
)

// randTemplate builds a random template shape: n entries at (possibly
// sparse) global indexes, random kinds, random before edges — including,
// with probability extProb, dangling edges to indexes that are not in the
// template (the hole case edits create).
func randTemplate(r *rand.Rand, n int, sparse bool, extProb float64) []*TemplateEntry {
	idxs := make([]int32, n)
	next := int32(0)
	for i := range idxs {
		if sparse && r.Intn(3) == 0 {
			next += int32(r.Intn(3)) // leave holes
		}
		idxs[i] = next
		next++
	}
	kinds := []Kind{Task, Create, LocalCopy, Destroy, CopySend, CopyRecv}
	entries := make([]*TemplateEntry, n)
	for i := range entries {
		e := &TemplateEntry{
			Index:     idxs[i],
			Kind:      kinds[r.Intn(len(kinds))],
			Function:  ids.FunctionID(r.Intn(5) + 1),
			Logical:   ids.LogicalID(r.Intn(100)),
			ParamSlot: int32(r.Intn(4)) - 1, // NoParamSlot..2
			DstWorker: ids.WorkerID(r.Intn(4) + 1),
			DstIdx:    idxs[r.Intn(n)],
		}
		for k := 0; k < r.Intn(3); k++ {
			e.Reads = append(e.Reads, ids.ObjectID(r.Intn(50)+1))
		}
		for k := 0; k < r.Intn(2)+1; k++ {
			e.Writes = append(e.Writes, ids.ObjectID(r.Intn(50)+1))
		}
		if e.ParamSlot == NoParamSlot {
			e.Fixed = params.Blob{byte(i), byte(i >> 8)}
		}
		// Random backward edges keep the DAG acyclic; occasionally a
		// dangling edge beyond the template's span.
		for k := 0; k < r.Intn(4); k++ {
			if r.Float64() < extProb {
				e.BeforeIdx = append(e.BeforeIdx, next+int32(r.Intn(5)))
			} else if i > 0 {
				e.BeforeIdx = append(e.BeforeIdx, idxs[r.Intn(i)])
			}
		}
		entries[i] = e
	}
	return entries
}

// beforeSet reconstructs the concrete before set a compiled entry implies:
// local positions translate back through entry indexes, external edges stay
// raw index arithmetic — exactly what Materialize computes from BeforeIdx.
func beforeSet(ct *CompiledTemplate, pos int, base ids.CommandID) []ids.CommandID {
	ce := &ct.Entries[pos]
	var out []ids.CommandID
	for _, lp := range ce.LocalBefore {
		out = append(out, base+ids.CommandID(ct.Entries[lp].Index))
	}
	for _, gi := range ce.ExtBefore {
		out = append(out, base+ids.CommandID(gi))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestCompiledMatchesMaterialize is the command-level half of the
// equivalence property: for random templates (sparse indexes, dangling
// edges, varied param slots), the compiled path must produce the same
// command set — IDs, kinds, access sets, params, routing and before-set
// semantics — as the map-based Materialize path.
func TestCompiledMatchesMaterialize(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	paramArray := []params.Blob{{1}, {2, 2}, {3, 3, 3}}
	for trial := 0; trial < 200; trial++ {
		n := r.Intn(40) + 1
		entries := randTemplate(r, n, trial%2 == 0, 0.15)
		ct := Compile(entries)
		if len(ct.Entries) != n {
			t.Fatalf("trial %d: compiled %d entries, want %d", trial, len(ct.Entries), n)
		}
		base := ids.CommandID(r.Intn(1<<20) + 1)
		var pa []params.Blob
		if trial%3 != 0 {
			pa = paramArray
		}
		for _, e := range entries {
			pos := ct.PosOf(e.Index)
			if pos < 0 {
				t.Fatalf("trial %d: entry %d missing from position table", trial, e.Index)
			}
			var want, got Command
			e.Materialize(base, pa, &want)
			ct.Entries[pos].MaterializeInto(base, pa, &got)

			wantBefore := append([]ids.CommandID(nil), want.Before...)
			sort.Slice(wantBefore, func(i, j int) bool { return wantBefore[i] < wantBefore[j] })
			gotBefore := beforeSet(ct, int(pos), base)
			if !reflect.DeepEqual(wantBefore, gotBefore) {
				t.Fatalf("trial %d idx %d: before %v, want %v", trial, e.Index, gotBefore, wantBefore)
			}
			want.Before, got.Before = nil, nil
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("trial %d idx %d:\n got %+v\nwant %+v", trial, e.Index, got, want)
			}
		}
	}
}

// TestCompileStructure pins the structural invariants DESIGN.md documents:
// ascending index order, correct reverse edges, Has() membership.
func TestCompileStructure(t *testing.T) {
	entries := []*TemplateEntry{
		{Index: 4, Kind: Task, BeforeIdx: []int32{0, 2, 9}},
		{Index: 0, Kind: Create},
		{Index: 2, Kind: Task, BeforeIdx: []int32{0}},
	}
	ct := Compile(entries)
	if ct.Span != 5 {
		t.Fatalf("span = %d", ct.Span)
	}
	order := []int32{0, 2, 4}
	for i, want := range order {
		if ct.Entries[i].Index != want {
			t.Fatalf("entry %d has index %d, want %d", i, ct.Entries[i].Index, want)
		}
	}
	for _, idx := range []int32{0, 2, 4} {
		if !ct.Has(idx) {
			t.Fatalf("Has(%d) = false", idx)
		}
	}
	for _, idx := range []int32{-1, 1, 3, 5, 9} {
		if ct.Has(idx) {
			t.Fatalf("Has(%d) = true", idx)
		}
	}
	// Entry 4 (pos 2): local deps on 0 and 2, external on 9.
	e4 := ct.Entries[2]
	if !reflect.DeepEqual(e4.LocalBefore, []int32{0, 1}) {
		t.Fatalf("local before = %v", e4.LocalBefore)
	}
	if !reflect.DeepEqual(e4.ExtBefore, []int32{9}) {
		t.Fatalf("ext before = %v", e4.ExtBefore)
	}
	// Entry 0 (pos 0) is waited on by positions 1 and 2.
	w0 := append([]int32(nil), ct.Entries[0].LocalWaiters...)
	sort.Slice(w0, func(i, j int) bool { return w0[i] < w0[j] })
	if !reflect.DeepEqual(w0, []int32{1, 2}) {
		t.Fatalf("waiters of 0 = %v", w0)
	}
	if ct.Tasks != 2 {
		t.Fatalf("tasks = %d", ct.Tasks)
	}
}

// TestCompileHostileIndexes pins tolerance of protocol-invalid entries:
// negative indexes must not panic (the map-based path tolerated them),
// and absurdly sparse index ranges must not cause huge dense-table
// allocations — the sparse fallback answers the same queries.
func TestCompileHostileIndexes(t *testing.T) {
	// Negative index, including as an edge target.
	ct := Compile([]*TemplateEntry{
		{Index: -5, Kind: Create},
		{Index: 3, Kind: Task, BeforeIdx: []int32{-5, 1}},
	})
	if !ct.Has(-5) || !ct.Has(3) || ct.Has(0) || ct.Has(-4) {
		t.Fatalf("membership wrong: %v %v %v %v", ct.Has(-5), ct.Has(3), ct.Has(0), ct.Has(-4))
	}
	e3 := ct.Entries[ct.PosOf(3)]
	if !reflect.DeepEqual(e3.LocalBefore, []int32{int32(ct.PosOf(-5))}) {
		t.Fatalf("local before = %v", e3.LocalBefore)
	}
	if !reflect.DeepEqual(e3.ExtBefore, []int32{1}) {
		t.Fatalf("ext before = %v", e3.ExtBefore)
	}
	// All-negative indexes: Span must still be MaxIndex+1 (modular ID
	// arithmetic makes base+Span the end of the instance's range even
	// when it is negative).
	if neg := Compile([]*TemplateEntry{{Index: -5, Kind: Create}}); neg.Span != -4 {
		t.Fatalf("all-negative span = %d, want -4", neg.Span)
	}
	// Extreme sparse range: must compile in bounded memory and still
	// resolve edges across the whole range.
	ct = Compile([]*TemplateEntry{
		{Index: -1 << 31, Kind: Create},
		{Index: 1<<31 - 1, Kind: Task, BeforeIdx: []int32{-1 << 31}},
	})
	if !ct.Has(-1<<31) || !ct.Has(1<<31-1) || ct.Has(0) {
		t.Fatal("sparse membership wrong")
	}
	top := ct.Entries[ct.PosOf(1<<31-1)]
	if len(top.LocalBefore) != 1 || ct.Entries[top.LocalBefore[0]].Index != -1<<31 {
		t.Fatalf("sparse edge not resolved: %v", top.LocalBefore)
	}
	// A negative ParamSlot other than NoParamSlot must fall back to Fixed
	// (not index the parameter array) on both materialize paths.
	hostile := &TemplateEntry{Index: 0, Kind: Task, ParamSlot: -2, Fixed: params.Blob{7}}
	pa := []params.Blob{{1}, {2}}
	var c1, c2 Command
	hostile.Materialize(10, pa, &c1)
	Compile([]*TemplateEntry{hostile}).Entries[0].MaterializeInto(10, pa, &c2)
	if len(c1.Params) != 1 || c1.Params[0] != 7 || len(c2.Params) != 1 || c2.Params[0] != 7 {
		t.Fatalf("negative param slot not treated as fixed: %v %v", c1.Params, c2.Params)
	}
}
