package command

import (
	"nimbus/internal/ids"
	"nimbus/internal/params"
	"nimbus/internal/wire"
)

// TemplateEntry is the cached, parameterizable form of a command inside an
// execution template (paper §2.1, §4.1).
//
// The fixed structure — kind, function, data access sets, relative ordering
// and copy routing — is stored once at install time. What varies between
// instantiations is factored out: the command ID becomes base+Index (one
// base CommandID parameterizes the whole template) and the task parameters
// become a slot index into the instantiation message's parameter array.
// Dependencies are stored as indexes into the same template (BeforeIdx), so
// translating an entry to a concrete Command is a handful of integer adds —
// this is what makes instantiation orders of magnitude cheaper than
// scheduling (Table 2 vs Table 1).
type TemplateEntry struct {
	// Index is this entry's position in the controller template's global
	// command array. Worker templates hold a subset of the global entries
	// but keep global indexes so that one base ID parameterizes every
	// worker's slice consistently.
	Index int32
	// Kind, Function, Reads, Writes and Logical mirror Command.
	Kind     Kind
	Function ids.FunctionID
	Reads    []ids.ObjectID
	Writes   []ids.ObjectID
	Logical  ids.LogicalID
	// BeforeIdx lists the global indexes of same-worker entries that must
	// complete before this one.
	BeforeIdx []int32
	// ParamSlot selects which entry of the instantiation parameter array
	// this command receives, or NoParamSlot to use Fixed.
	ParamSlot int32
	// Fixed is the parameter blob cached in the template when the
	// parameters do not vary between instantiations.
	Fixed params.Blob
	// DstWorker and DstIdx route CopySend entries: the payload goes to
	// DstWorker addressed to command base+DstIdx (the matching CopyRecv).
	DstWorker ids.WorkerID
	DstIdx    int32
}

// NoParamSlot marks an entry whose parameters are cached in Fixed.
const NoParamSlot int32 = -1

// Materialize converts the entry into a concrete Command for the
// instantiation identified by base. params is the instantiation parameter
// array. The returned command shares the entry's read/write/param slices;
// callers must treat them as immutable.
func (e *TemplateEntry) Materialize(base ids.CommandID, paramArray []params.Blob, out *Command) {
	out.ID = base + ids.CommandID(e.Index)
	out.Kind = e.Kind
	out.Function = e.Function
	out.Reads = e.Reads
	out.Writes = e.Writes
	out.Logical = e.Logical
	if cap(out.Before) < len(e.BeforeIdx) {
		out.Before = make([]ids.CommandID, len(e.BeforeIdx))
	} else {
		out.Before = out.Before[:len(e.BeforeIdx)]
	}
	for i, idx := range e.BeforeIdx {
		out.Before[i] = base + ids.CommandID(idx)
	}
	if e.ParamSlot >= 0 && int(e.ParamSlot) < len(paramArray) {
		out.Params = paramArray[e.ParamSlot]
	} else {
		out.Params = e.Fixed
	}
	out.DstWorker = e.DstWorker
	if e.Kind == CopySend {
		out.DstCommand = base + ids.CommandID(e.DstIdx)
	} else {
		out.DstCommand = ids.NoCommand
	}
	out.Version = 0
}

// Clone returns a deep copy of the entry.
func (e *TemplateEntry) Clone() *TemplateEntry {
	d := *e
	d.Reads = append([]ids.ObjectID(nil), e.Reads...)
	d.Writes = append([]ids.ObjectID(nil), e.Writes...)
	d.BeforeIdx = append([]int32(nil), e.BeforeIdx...)
	d.Fixed = append(params.Blob(nil), e.Fixed...)
	return &d
}

// Encode appends the entry's wire form to w.
func (e *TemplateEntry) Encode(w *wire.Writer) {
	w.Varint(int64(e.Index))
	w.Byte(byte(e.Kind))
	w.Uvarint(uint64(e.Function))
	w.Uvarint(uint64(len(e.Reads)))
	for _, o := range e.Reads {
		w.Uvarint(uint64(o))
	}
	w.Uvarint(uint64(len(e.Writes)))
	for _, o := range e.Writes {
		w.Uvarint(uint64(o))
	}
	w.Uvarint(uint64(e.Logical))
	w.Uvarint(uint64(len(e.BeforeIdx)))
	for _, b := range e.BeforeIdx {
		w.Varint(int64(b))
	}
	w.Varint(int64(e.ParamSlot))
	w.Bytes(e.Fixed)
	w.Uvarint(uint64(e.DstWorker))
	w.Varint(int64(e.DstIdx))
}

// Decode reads an entry from r into e, replacing its contents.
func (e *TemplateEntry) Decode(r *wire.Reader) error {
	e.Index = int32(r.Varint())
	e.Kind = Kind(r.Byte())
	e.Function = ids.FunctionID(r.Uvarint())
	nr := r.Count()
	if r.Err != nil {
		return r.Err
	}
	e.Reads = nil
	if nr > 0 {
		e.Reads = make([]ids.ObjectID, nr)
		for i := range e.Reads {
			e.Reads[i] = ids.ObjectID(r.Uvarint())
		}
	}
	nw := r.Count()
	if r.Err != nil {
		return r.Err
	}
	e.Writes = nil
	if nw > 0 {
		e.Writes = make([]ids.ObjectID, nw)
		for i := range e.Writes {
			e.Writes[i] = ids.ObjectID(r.Uvarint())
		}
	}
	e.Logical = ids.LogicalID(r.Uvarint())
	nb := r.Count()
	if r.Err != nil {
		return r.Err
	}
	e.BeforeIdx = nil
	if nb > 0 {
		e.BeforeIdx = make([]int32, nb)
		for i := range e.BeforeIdx {
			e.BeforeIdx[i] = int32(r.Varint())
		}
	}
	e.ParamSlot = int32(r.Varint())
	e.Fixed = params.Blob(r.BytesCopy())
	e.DstWorker = ids.WorkerID(r.Uvarint())
	e.DstIdx = int32(r.Varint())
	return r.Err
}

// Edit is an in-place modification to an installed worker template
// (paper §2.3, §4.3). Edits ride on instantiation messages: the worker
// removes the entries named in Remove (by global index) and splices in the
// Add entries before materializing the instance. Edits are persistent —
// they modify the installed template, not just one instance.
type Edit struct {
	// Remove lists global entry indexes to delete from the template.
	Remove []int32
	// Add lists entries to insert. Added entries carry fresh global
	// indexes beyond the template's previous maximum, assigned by the
	// controller.
	Add []TemplateEntry
}

// Encode appends the edit's wire form to w.
func (e *Edit) Encode(w *wire.Writer) {
	w.Uvarint(uint64(len(e.Remove)))
	for _, idx := range e.Remove {
		w.Varint(int64(idx))
	}
	w.Uvarint(uint64(len(e.Add)))
	for i := range e.Add {
		e.Add[i].Encode(w)
	}
}

// Decode reads an edit from r into e, replacing its contents.
func (e *Edit) Decode(r *wire.Reader) error {
	nrm := r.Count()
	if r.Err != nil {
		return r.Err
	}
	e.Remove = make([]int32, nrm)
	for i := range e.Remove {
		e.Remove[i] = int32(r.Varint())
	}
	na := r.Count()
	if r.Err != nil {
		return r.Err
	}
	e.Add = make([]TemplateEntry, na)
	for i := range e.Add {
		if err := e.Add[i].Decode(r); err != nil {
			return err
		}
	}
	return r.Err
}
